package main

import (
	"fmt"
	"io"

	"lhg"
	"lhg/internal/graph"
	"lhg/internal/overlay"
)

// runE14 measures reconfiguration cost in the motivating P2P setting: a
// node joins, the canonical topology for n+1 is built, and the overlay pays
// one link operation per changed edge.
func runE14(w io.Writer) error {
	const (
		k     = 3
		start = 6  // 2k
		joins = 60 //
	)
	topologies := []struct {
		name  string
		build overlay.TopologyFunc
	}{
		{name: "harary", build: topo(lhg.Harary)},
		{name: "ktree", build: topo(lhg.KTree)},
		{name: "kdiamond", build: topo(lhg.KDiamond)},
	}
	fmt.Fprintf(w, "k=%d, %d consecutive joins from n=%d; churn = links changed per join\n", k, joins, start)
	fmt.Fprintf(w, "%-10s %-12s %-12s %-12s %-12s\n", "topology", "mean churn", "max churn", "min churn", "final edges")
	for _, tt := range topologies {
		o, err := overlay.New(k, start, tt.build)
		if err != nil {
			return err
		}
		total, maxC := 0, 0
		minC := int(^uint(0) >> 1)
		for i := 0; i < joins; i++ {
			c, err := o.Join()
			if err != nil {
				return err
			}
			total += c.Total()
			if c.Total() > maxC {
				maxC = c.Total()
			}
			if c.Total() < minC {
				minC = c.Total()
			}
		}
		fmt.Fprintf(w, "%-10s %-12.1f %-12d %-12d %-12d\n",
			tt.name, float64(total)/float64(joins), maxC, minC, o.Graph().Size())
	}
	fmt.Fprintln(w, "note: canonical rebuild churn; an incremental deployment would amortize it")
	return nil
}

func topo(c lhg.Constraint) overlay.TopologyFunc {
	return func(n, k int) (*graph.Graph, error) { return lhg.Build(expCtx, c, n, k) }
}

package check

// Incremental re-verification under churn.
//
// A full verification is O(n) max-flow probes; under sustained churn the
// topology changes by O(k²) edges per event, so re-running the campaign
// from scratch throws away almost everything the previous report already
// established. VerifyDelta re-derives the full report from (previous
// report, edge delta) with a handful of LOCALIZED probes, falling back to
// the full campaign whenever the fast path cannot certify exactness.
//
// Soundness. Let G be the previous graph with κ(G) >= c and λ(G) >= c
// (from the previous report), and G′ the graph after the delta. Write
// survivors for the labels present in both. The fast path certifies
// κ(G′) >= c by a localization argument with every probe running in G′
// itself. Suppose X, |X| < c, disconnects G′; consider the components of
// G′−X:
//
//   - A component with no survivor consists of newly admitted labels; the
//     expansion check below (every subset S of admissions sees >= c
//     distinct outside vertices) rules it out, since its neighborhood
//     lies inside X.
//   - Otherwise take survivors x,y in different components. |X| < κ(G)
//     gives an x-y path in G−X; walking it, some deleted element must
//     bridge the components — an edge of G absent from G′ is either a
//     removed survivor-survivor edge (u,v), or lies in a maximal run of
//     departed labels whose survivor boundary now spans two components.
//     The probe set is exactly: endpoints of removed survivor edges, plus
//     all boundary pairs of each connected component of the departed
//     subgraph. Such a bridging pair sits in different components of
//     G′−X, so its vertex-cut probe in G′ would report < c. If every
//     probe passes, no small cut exists. (Probing G′ rather than a
//     survivor-only view matters: after a batched admission the new
//     labels may carry the very connectivity the removed edges used to.)
//
// The same argument with edge cuts certifies λ(G′) >= c (a subset of
// admissions also needs >= c outgoing edges, checked alongside). Choosing
// c = δ(G′) then PINS both values exactly — κ <= λ <= δ (Whitney) forces
// κ(G′) = λ(G′) = δ(G′) — which is the only case the fast path reports;
// anything weaker falls back to VerifyCtx so the report stays bit-identical
// to a fresh full verification (timing phases aside, which are wall-clock).
// P3 runs through the SAME verifyLinkMinimality as the full campaign (free
// for regular graphs via the Δ = λ shortcut, the identical edge sweep
// otherwise), and P4 distances are always recomputed exactly — diameter
// does not localize. What the fast path elides is precisely the κ and λ
// phases: two O(n)-probe campaigns become O(|frontier|) localized probes.

import (
	"context"
	"fmt"
	"time"

	"lhg/internal/flow"
	"lhg/internal/graph"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
)

var (
	mDeltaRuns      = obs.NewCounter("check.delta.runs")
	mDeltaFastPaths = obs.NewCounter("check.delta.fastpath")
	mDeltaFallbacks = obs.NewCounter("check.delta.fallbacks")
	mDeltaPairs     = obs.NewCounter("check.delta.pair_probes")
	tPhaseDelta     = obs.NewTimer("check.phase.delta_probes")
)

// deltaProbeGate bounds the localized campaign: if the planned pair count
// exceeds n/deltaProbeGateDiv (min deltaProbeGateFloor), the touched
// frontier is so large that the full campaign is competitive — fall back.
const (
	deltaProbeGateDiv   = 4
	deltaProbeGateFloor = 16
)

// expansionCompCap bounds the exhaustive subset check over one connected
// component of the admitted-label subgraph (2^cap masks). The engines admit
// in O(k)-sized clusters, so real components are far smaller.
const expansionCompCap = 12

// DeltaVerifier carries verification state across a churn stream: the
// current graph, its full report, and the incrementally maintained sparse
// certificate whose membership diff sizes the re-probe frontier. It is the
// engine behind the daemon's stateful reconfigure sessions. Not safe for
// concurrent use; callers serialize Advance.
type DeltaVerifier struct {
	k       int
	opt     Options
	g       *graph.Graph
	tracker *graph.CertTracker
	report  *Report
}

// NewDeltaVerifier runs one full verification of g and arms the
// incremental state.
func NewDeltaVerifier(ctx context.Context, g *graph.Graph, k int, opt Options) (*DeltaVerifier, error) {
	r, err := VerifyCtx(ctx, g, k, opt)
	if err != nil {
		return nil, err
	}
	return &DeltaVerifier{
		k:       k,
		opt:     opt,
		g:       g,
		tracker: graph.NewCertTracker(g, k+1),
		report:  r,
	}, nil
}

// Graph returns the current epoch's graph.
func (dv *DeltaVerifier) Graph() *graph.Graph { return dv.g }

// Report returns the current epoch's report.
func (dv *DeltaVerifier) Report() *Report { return dv.report }

// K returns the connectivity target.
func (dv *DeltaVerifier) K() int { return dv.k }

// Advance applies d (resizing to n nodes), re-verifies incrementally and
// returns the new report — bit-identical to a fresh full verification of
// the new graph. On error the verifier keeps its previous epoch.
func (dv *DeltaVerifier) Advance(ctx context.Context, d graph.EdgeDelta, n int) (*Report, error) {
	next, err := dv.g.ApplyDelta(d, n)
	if err != nil {
		return nil, err
	}
	changed := dv.tracker.Advance(next, d)
	r, err := verifyDelta(ctx, dv.g, dv.report, d, next, len(changed), dv.k, dv.opt)
	if err != nil {
		// The tracker already moved; rewind it so the verifier's epochs
		// stay coherent (cheap: the certificate scan is flow-free).
		dv.tracker = graph.NewCertTracker(dv.g, dv.k+1)
		return nil, err
	}
	dv.g, dv.report = next, r
	return r, nil
}

// VerifyDelta re-verifies prevGraph after the edge delta d (resizing to n
// nodes): given prev — the report of a verification of prevGraph — it
// returns the report of the resulting graph, bit-identical to a fresh
// VerifyCtx, probing only the delta's frontier when the localization
// conditions hold. One-shot form of DeltaVerifier for callers that do not
// hold a session.
func VerifyDelta(ctx context.Context, prevGraph *graph.Graph, prev *Report, d graph.EdgeDelta, n int, opt Options) (*Report, error) {
	next, err := prevGraph.ApplyDelta(d, n)
	if err != nil {
		return nil, err
	}
	tracker := graph.NewCertTracker(prevGraph, prev.K+1)
	changed := tracker.Advance(next, d)
	return verifyDelta(ctx, prevGraph, prev, d, next, len(changed), prev.K, opt)
}

func verifyDelta(ctx context.Context, prevG *graph.Graph, prev *Report, d graph.EdgeDelta, next *graph.Graph, frontier, k int, opt Options) (*Report, error) {
	n := next.Order()
	if k < 1 {
		return nil, fmt.Errorf("check: connectivity target k=%d must be >= 1", k)
	}
	if n <= k {
		return nil, fmt.Errorf("check: k=%d must be < n=%d", k, n)
	}
	mDeltaRuns.Inc()
	fctx, fsp := trace.StartSpan(ctx, "check.delta.fastpath")
	r, ok, err := deltaFastPath(fctx, prevG, prev, d, next, frontier, k, opt)
	if fsp.Live() {
		fsp.SetAttr(trace.Int("frontier", int64(frontier)))
		if ok {
			fsp.SetAttr(trace.Str("outcome", "certified"))
		} else {
			fsp.SetAttr(trace.Str("outcome", "fallback"))
		}
	}
	fsp.End()
	if err != nil {
		return nil, err
	}
	if ok {
		mDeltaFastPaths.Inc()
		return r, nil
	}
	mDeltaFallbacks.Inc()
	bctx, bsp := trace.StartSpan(ctx, "check.delta.fallback")
	r, err = VerifyCtx(bctx, next, k, opt)
	bsp.End()
	return r, err
}

// deltaFastPath attempts the localized re-verification. ok=false means
// "cannot certify, run the full campaign" — never an incorrect report.
func deltaFastPath(ctx context.Context, prevG *graph.Graph, prev *Report, d graph.EdgeDelta, next *graph.Graph, frontier, k int, opt Options) (*Report, bool, error) {
	props := opt.Props.normalized()
	if props != PropAll {
		return nil, false, nil // partial reports: no previous values to lean on
	}
	if prev == nil || !prev.Checked.Has(PropNodeConnectivity|PropLinkConnectivity) {
		return nil, false, nil
	}
	workers := graph.ClampWorkers(opt.Workers, 0)
	n, oldN := next.Order(), prevG.Order()
	r := &Report{N: n, M: next.Size(), K: k, Workers: workers, Checked: props}
	r.MinDegree, _ = next.MinDegree()
	r.MaxDegree, _ = next.MaxDegree()
	r.Regular = next.IsRegular(k)

	// The pin target: both connectivities will be certified equal to δ(G′).
	c := r.MinDegree
	if c < 1 || prev.NodeConnectivity < c || prev.EdgeConnectivity < c {
		return nil, false, nil
	}
	if frontier > n/2 {
		return nil, false, nil // certificate membership moved wholesale
	}

	// Plan the localized pair probes.
	nSurv := oldN
	if n < nSurv {
		nSurv = n
	}
	gate := n / deltaProbeGateDiv
	if gate < deltaProbeGateFloor {
		gate = deltaProbeGateFloor
	}
	pairs, ok := planDeltaPairs(prevG, d, nSurv, gate)
	if !ok {
		return nil, false, nil
	}
	// Every subset of the new admissions must expand into >= c outside
	// vertices and >= c outgoing edges (the all-admitted-side cut case).
	if n > oldN && !newSideExpansion(next, oldN, c) {
		return nil, false, nil
	}

	// Probe phase: every planned pair must keep vertex- and edge-cut >= c
	// in next. Early-exit flows; any miss aborts to the full campaign.
	healthy := true
	start := time.Now()
	p0 := mFlowProbes.Value()
	for _, p := range pairs {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		mDeltaPairs.Inc()
		if !next.HasEdge(p[0], p[1]) {
			ok, err := flow.VertexCutAtLeastCtx(ctx, next, p[0], p[1], c)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				healthy = false
				break
			}
		}
		ok, err := flow.EdgeCutAtLeastCtx(ctx, next, p[0], p[1], c)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			healthy = false
			break
		}
	}
	dur := time.Since(start)
	tPhaseDelta.Observe(dur)
	r.Phases = append(r.Phases, PhaseTiming{
		Phase:  "delta-probes",
		Ms:     float64(dur) / 1e6,
		Probes: mFlowProbes.Value() - p0,
	})
	if !healthy {
		return nil, false, nil
	}

	// Pin: c <= κ(G′) (localization + expansion) and κ(G′) <= δ(G′) = c
	// (Whitney), so both connectivities are exactly c — no regularity
	// assumption needed.
	r.NodeConnectivity = c
	r.EdgeConnectivity = c
	r.KNodeConnected = c >= k
	r.KLinkConnected = c >= k

	// P3 and P4 use the exact same code as the full campaign, so the
	// values (and the P3 witness edge, if any) are identical by
	// construction.
	start = time.Now()
	p0 = mFlowProbes.Value()
	lm, err := verifyLinkMinimality(ctx, next, r, workers)
	if err != nil {
		return nil, false, err
	}
	r.LinkMinimal = lm
	dur = time.Since(start)
	tPhaseMinimality.Observe(dur)
	r.Phases = append(r.Phases, PhaseTiming{
		Phase:  "minimality",
		Ms:     float64(dur) / 1e6,
		Probes: mFlowProbes.Value() - p0,
	})

	start = time.Now()
	r.Diameter, r.AvgPathLen, err = next.DistanceStatsCtx(ctx, workers)
	if err != nil {
		return nil, false, err
	}
	dur = time.Since(start)
	tPhaseDistances.Observe(dur)
	r.Phases = append(r.Phases, PhaseTiming{Phase: "distances", Ms: float64(dur) / 1e6})
	r.DiameterBound = DiameterBound(n, k)
	r.LogDiameter = r.Diameter >= 0 && r.Diameter <= r.DiameterBound
	return r, true, nil
}

// planDeltaPairs derives the probe pairs of the localization lemma:
// endpoints of removed survivor-survivor edges, plus — for every connected
// component of the subgraph induced on departed labels — every pair of its
// survivor boundary. Returns ok=false when the plan exceeds the gate.
func planDeltaPairs(prevG *graph.Graph, d graph.EdgeDelta, nSurv, gate int) ([][2]int, bool) {
	seen := make(map[[2]int]bool)
	var pairs [][2]int
	addPair := func(u, v int) bool {
		if u == v || u >= nSurv || v >= nSurv {
			return true
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			return true
		}
		seen[key] = true
		pairs = append(pairs, key)
		return len(pairs) <= gate
	}
	for _, e := range d.Removed {
		if e.U < nSurv && e.V < nSurv {
			if !addPair(e.U, e.V) {
				return nil, false
			}
		}
	}
	oldN := prevG.Order()
	if oldN > nSurv {
		// Departed components and their survivor boundaries, via BFS over
		// the induced subgraph on labels [nSurv, oldN).
		visited := make([]bool, oldN-nSurv)
		for s := nSurv; s < oldN; s++ {
			if visited[s-nSurv] {
				continue
			}
			var stack []int
			boundary := make(map[int]bool)
			visited[s-nSurv] = true
			stack = append(stack, s)
			for len(stack) > 0 {
				z := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, nb := range prevG.Neighbors(z) {
					if nb >= nSurv {
						if !visited[nb-nSurv] {
							visited[nb-nSurv] = true
							stack = append(stack, nb)
						}
					} else {
						boundary[nb] = true
					}
				}
			}
			bs := make([]int, 0, len(boundary))
			for b := range boundary {
				bs = append(bs, b)
			}
			for i := 0; i < len(bs); i++ {
				for j := i + 1; j < len(bs); j++ {
					if !addPair(bs[i], bs[j]) {
						return nil, false
					}
				}
			}
		}
	}
	return pairs, true
}

// newSideExpansion certifies the all-admitted-side case of both cut
// lemmas: every nonempty set S of newly admitted labels [oldN, n) must see
// >= c distinct vertices outside S (else S's neighborhood is a < c vertex
// cut) and >= c edges leaving S (else its coboundary is a < c edge cut).
// A set that splits into non-adjacent pieces inherits both bounds from its
// pieces — N(S₁)\S₁ ⊆ N(S)\S and the coboundaries add up — so
// enumerating the subsets of each connected component of the
// admitted-label subgraph is exhaustive. Declines (false) when a component
// exceeds expansionCompCap; batched admissions wire into O(k)-sized
// clusters, so that only trips on adversarial deltas.
func newSideExpansion(next *graph.Graph, oldN, c int) bool {
	n := next.Order()
	visited := make([]bool, n-oldN)
	for s := oldN; s < n; s++ {
		if visited[s-oldN] {
			continue
		}
		comp := []int{s}
		visited[s-oldN] = true
		for i := 0; i < len(comp); i++ {
			next.EachNeighbor(comp[i], func(nb int) {
				if nb >= oldN && !visited[nb-oldN] {
					visited[nb-oldN] = true
					comp = append(comp, nb)
				}
			})
		}
		if len(comp) > expansionCompCap {
			return false
		}
		idx := make(map[int]int, len(comp))
		for i, v := range comp {
			idx[v] = i
		}
		for mask := 1; mask < 1<<len(comp); mask++ {
			outEdges := 0
			outVerts := make(map[int]bool)
			for i, v := range comp {
				if mask&(1<<i) == 0 {
					continue
				}
				next.EachNeighbor(v, func(nb int) {
					if j, in := idx[nb]; in && mask&(1<<j) != 0 {
						return
					}
					outEdges++
					outVerts[nb] = true
				})
			}
			if outEdges < c || len(outVerts) < c {
				return false
			}
		}
	}
	return true
}

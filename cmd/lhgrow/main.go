// Command lhgrow runs the incremental LHG maintenance procedures (the
// constructive proofs of Theorems 2 and 5) as a control plane: starting
// from the minimal (2k,k) overlay it admits nodes one at a time and emits
// the exact link operations a deployment would execute, as JSON lines.
//
// Usage:
//
//	lhgrow -constraint kdiamond -k 4 -joins 20            # one JSON line per join
//	lhgrow -constraint ktree -k 3 -joins 100 -summary     # aggregate churn stats
//
// Each JSON line has the shape
//
//	{"n":9,"added":[[0,8],[1,8],[2,8]],"removed":[],"regular":false}
//
// where n is the size after the join and added/removed list the link
// surgery (pairs of stable node ids).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lhg"
	"lhg/internal/obs"
)

type joinRecord struct {
	N       int      `json:"n"`
	Added   [][2]int `json:"added"`
	Removed [][2]int `json:"removed"`
	Regular bool     `json:"regular"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lhgrow:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lhgrow", flag.ContinueOnError)
	var (
		constraint = fs.String("constraint", "kdiamond", "grower: ktree or kdiamond")
		k          = fs.Int("k", 3, "connectivity target")
		joins      = fs.Int("joins", 10, "number of joins to perform")
		summary    = fs.Bool("summary", false, "print aggregate churn stats instead of JSON lines")
		metrics    = fs.Bool("metrics", false, "dump the JSON metrics report to stderr at exit")
		httpAddr   = fs.String("http", "", "serve /debug/vars, /metrics and /debug/pprof/ on this address for the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopObs, err := obs.StartCLI(*metrics, *httpAddr, os.Stderr)
	if err != nil {
		return err
	}
	defer stopObs()
	if *joins < 0 {
		return fmt.Errorf("joins must be non-negative, got %d", *joins)
	}

	var (
		grow func() (lhg.EdgeDelta, error)
		size func() int
		snap func() *lhg.Graph
	)
	switch *constraint {
	case "ktree":
		gr, err := lhg.NewKTreeGrower(*k)
		if err != nil {
			return err
		}
		grow, size, snap = gr.Grow, gr.N, gr.Snapshot
	case "kdiamond":
		gr, err := lhg.NewKDiamondGrower(*k)
		if err != nil {
			return err
		}
		grow, size, snap = gr.Grow, gr.N, gr.Snapshot
	default:
		return fmt.Errorf("unknown grower %q (want ktree or kdiamond)", *constraint)
	}

	enc := json.NewEncoder(out)
	total, maxChurn := 0, 0
	for i := 0; i < *joins; i++ {
		d, err := grow()
		if err != nil {
			return err
		}
		churn := d.Total()
		total += churn
		if churn > maxChurn {
			maxChurn = churn
		}
		if *summary {
			continue
		}
		rec := joinRecord{
			N:       size(),
			Added:   pairs(d.Added),
			Removed: pairs(d.Removed),
			Regular: snap().IsRegular(*k),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	if *summary {
		mean := 0.0
		if *joins > 0 {
			mean = float64(total) / float64(*joins)
		}
		fmt.Fprintf(out, "constraint: %s\nk: %d\njoins: %d\nfinal n: %d\nfinal edges: %d\nmean churn: %.2f\nmax churn: %d\n",
			*constraint, *k, *joins, size(), snap().Size(), mean, maxChurn)
	}
	return nil
}

func pairs(es []lhg.Edge) [][2]int {
	out := make([][2]int, 0, len(es))
	for _, e := range es {
		out = append(out, [2]int{e.U, e.V})
	}
	return out
}

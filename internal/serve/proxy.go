package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"lhg/internal/obs"
	"lhg/internal/obs/trace"
	"lhg/internal/shard"
)

// Shard frontend. With Options.Shards set, the server stops computing and
// starts routing: every keyed request (build/verify/flood/budget by graph
// key, reconfigure by session name) is forwarded to its home backend on the
// consistent-hash ring, with the ring's failover sequence retried in order
// when the home dies mid-request — any backend can serve any key, the ring
// only decides who serves it FIRST so each backend's LRU stays hot on its
// own arc. A health-probe loop (GET /healthz per backend) demotes dead
// backends between requests; a connection failure during forwarding demotes
// immediately. The outgoing hop carries the frontend's traceparent, so one
// request — or one whole batch — is a single trace fleet-wide.
var (
	mShardForwarded  = obs.NewCounter("serve.shard.forwarded")
	mShardRerouted   = obs.NewCounter("serve.shard.rerouted")
	mShardUnroutable = obs.NewCounter("serve.shard.unroutable")
	mShardProbes     = obs.NewCounter("serve.shard.probes")
	gShardHealthy    = obs.NewGauge("serve.shard.healthy")
)

type proxy struct {
	s      *Server
	ring   *shard.Ring
	mux    *http.ServeMux
	client *http.Client
}

func newProxy(s *Server, ring *shard.Ring, probeEvery time.Duration) *proxy {
	if probeEvery <= 0 {
		probeEvery = time.Second
	}
	p := &proxy{s: s, ring: ring, mux: http.NewServeMux(), client: &http.Client{}}
	p.mux.HandleFunc("/v1/build", p.handleGraphKeyed)
	p.mux.HandleFunc("/v1/verify", p.handleVerify)
	p.mux.HandleFunc("/v1/flood", p.handleGraphKeyed)
	p.mux.HandleFunc("/v1/budget", p.handleBudget)
	p.mux.HandleFunc("/v1/reconfigure", p.handleReconfigure)
	p.mux.HandleFunc("/v1/constraints", s.handleConstraints)
	p.mux.HandleFunc("/healthz", s.handleHealth)
	gShardHealthy.Set(int64(len(ring.Backends())))
	go p.probeLoop(probeEvery)
	return p
}

// probeLoop keeps the ring's health map honest: demoted backends that came
// back are restored, silently dead ones are demoted before a request finds
// out the hard way.
func (p *proxy) probeLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-p.s.base.Done():
			return
		case <-t.C:
			p.probeOnce(every)
		}
	}
}

func (p *proxy) probeOnce(timeout time.Duration) {
	healthy := int64(0)
	for _, b := range p.ring.Backends() {
		mShardProbes.Inc()
		ctx, cancel := context.WithTimeout(p.s.base, timeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+b+"/healthz", nil)
		up := false
		if err == nil {
			resp, derr := p.client.Do(req)
			if derr == nil {
				up = resp.StatusCode == http.StatusOK
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		cancel()
		p.ring.SetHealthy(b, up)
		if up {
			healthy++
		}
	}
	gShardHealthy.Set(healthy)
}

// readBody drains a bounded copy of the request body for re-sending.
func readBody(r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(nil, r.Body, maxRequestBody))
}

// graphRouteKey extracts the routing key of any body embedding the graph
// selector fields (build, verify, flood): unknown fields are ignored here —
// full validation is the home backend's job.
func graphRouteKey(body []byte) (string, error) {
	var br BuildRequest
	if err := json.Unmarshal(body, &br); err != nil {
		return "", err
	}
	c, err := br.validate()
	if err != nil {
		return "", err
	}
	return br.graphKey(c), nil
}

// handleGraphKeyed forwards one POSTed graph-keyed request.
func (p *proxy) handleGraphKeyed(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		p.s.notAllowed(w, r, http.MethodPost)
		return
	}
	body, err := readBody(r)
	if err != nil {
		writeError(w, r, badRequest(err))
		return
	}
	key, err := graphRouteKey(body)
	if err != nil {
		writeError(w, r, badRequest(err))
		return
	}
	p.forward(w, r, key, body)
}

func (p *proxy) handleVerify(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	switch {
	case r.Method == http.MethodGet && q.Has("stream"):
		req, err := parseVerifyQuery(r)
		if err != nil {
			writeError(w, r, badRequest(err))
			return
		}
		c, err := req.validate()
		if err != nil {
			writeError(w, r, badRequest(err))
			return
		}
		p.forward(w, r, req.graphKey(c), nil)
	case r.Method == http.MethodPost && q.Has("batch"):
		reqs, err := decodeBatch(r)
		if err != nil {
			writeError(w, r, badRequest(err))
			return
		}
		writeJSON(w, http.StatusOK, p.runBatch(r, reqs))
	case r.Method == http.MethodPost:
		p.handleGraphKeyed(w, r)
	default:
		// GET is only meaningful with ?stream; anything else wants POST.
		p.s.notAllowed(w, r, http.MethodPost)
	}
}

func (p *proxy) handleBudget(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		p.s.notAllowed(w, r, http.MethodGet)
		return
	}
	req, err := parseBudgetQuery(r)
	if err != nil {
		writeError(w, r, badRequest(err))
		return
	}
	c, err := req.validate()
	if err != nil {
		writeError(w, r, badRequest(err))
		return
	}
	p.forward(w, r, req.graphKey(c), nil)
}

// handleReconfigure routes by session name: a session is live state on ONE
// backend, so every epoch of a session must land on the same process.
func (p *proxy) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Query().Has("stream"):
		name := r.URL.Query().Get("session")
		if name == "" {
			writeError(w, r, badRequest(fmt.Errorf("serve: stream needs a session name")))
			return
		}
		p.forward(w, r, "session|"+name, nil)
	case r.Method == http.MethodPost:
		body, err := readBody(r)
		if err != nil {
			writeError(w, r, badRequest(err))
			return
		}
		var req struct {
			Session string `json:"session"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, r, badRequest(err))
			return
		}
		if req.Session == "" {
			writeError(w, r, badRequest(fmt.Errorf("serve: reconfigure needs a session name")))
			return
		}
		p.forward(w, r, "session|"+req.Session, body)
	default:
		// GET is only meaningful with ?stream; anything else wants POST.
		p.s.notAllowed(w, r, http.MethodPost)
	}
}

// forward sends the request to the key's home backend, walking the ring's
// failover sequence when a backend fails at the transport layer. HTTP-level
// responses — including errors — come from the right process and stream
// back verbatim.
func (p *proxy) forward(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	seq := p.ring.Sequence(key)
	var lastErr error
	for i, backend := range seq {
		if i > 0 {
			mShardRerouted.Inc()
		}
		resp, err := p.send(r.Context(), r, backend, body)
		if err != nil {
			p.ring.SetHealthy(backend, false)
			lastErr = err
			continue
		}
		mShardForwarded.Inc()
		copyResponse(w, resp)
		return
	}
	mShardUnroutable.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("no healthy backend")
	}
	writeError(w, r, backendDown(fmt.Errorf("serve: cannot route %q: %v", key, lastErr)))
}

// send issues one forwarded request; the traceparent hop header keeps the
// backend's spans in the frontend's trace.
func (p *proxy) send(ctx context.Context, r *http.Request, backend string, body []byte) (*http.Response, error) {
	u := *r.URL
	u.Scheme = "http"
	u.Host = backend
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u.String(), rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if accept := r.Header.Get("Accept"); accept != "" {
		req.Header.Set("Accept", accept)
	}
	if sp := trace.FromContext(ctx); sp.Live() {
		req.Header.Set("Traceparent", trace.Traceparent(sp.TraceID(), sp.ID()))
	}
	return p.client.Do(req)
}

// copyResponse relays status, headers and body; flushing per write keeps
// proxied SSE streams live.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	fw := io.Writer(w)
	if f, ok := w.(http.Flusher); ok {
		fw = flushWriter{w, f}
	}
	_, _ = io.Copy(fw, resp.Body)
}

type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(b []byte) (int, error) {
	n, err := fw.w.Write(b)
	fw.f.Flush()
	return n, err
}

// runBatch splits the expanded items by ring ownership and fans the
// sub-batches out concurrently: each group goes to its home backend as one
// POST /v1/verify?batch, and a group whose backend dies mid-sweep reroutes
// whole to the next backend in its failover sequence — any backend can
// compute any item, so a rerouted group completes, just colder. Item order
// and the shared trace root are preserved in the merged response.
func (p *proxy) runBatch(r *http.Request, reqs []VerifyRequest) *BatchResponse {
	mBatchRequests.Inc()
	out := &BatchResponse{Total: len(reqs), Items: make([]BatchItem, len(reqs))}
	if sp := trace.FromContext(r.Context()); sp.Live() {
		out.TraceID = sp.TraceID().String()
	}
	groups := make(map[string][]int)
	for i := range reqs {
		out.Items[i].Request = reqs[i]
		c, err := reqs[i].validate()
		if err != nil {
			body := errorBody(nil, badRequest(err))
			out.Items[i].Error = &body
			continue
		}
		key := reqs[i].graphKey(c)
		home, ok := p.ring.Lookup(key)
		if !ok {
			mShardUnroutable.Inc()
			body := errorBody(nil, backendDown(fmt.Errorf("serve: no healthy backend for %q", key)))
			out.Items[i].Error = &body
			continue
		}
		groups[home] = append(groups[home], i)
	}
	var wg sync.WaitGroup
	for home, idx := range groups {
		wg.Add(1)
		go func(home string, idx []int) {
			defer wg.Done()
			p.forwardSubBatch(r, home, idx, reqs, out)
		}(home, idx)
	}
	wg.Wait()
	for i := range out.Items {
		switch {
		case out.Items[i].Error != nil:
			out.Failed++
		case out.Items[i].Response != nil && out.Items[i].Response.Cached:
			out.Cached++
		}
	}
	mBatchItems.Add(int64(out.Total))
	mBatchFailed.Add(int64(out.Failed))
	return out
}

// forwardSubBatch delivers one ownership group, rerouting the whole group
// down the failover sequence on transport failure. Distinct goroutines
// write disjoint out.Items indices, so no lock is needed.
func (p *proxy) forwardSubBatch(r *http.Request, home string, idx []int, reqs []VerifyRequest, out *BatchResponse) {
	sub := make([]VerifyRequest, len(idx))
	for j, i := range idx {
		sub[j] = reqs[i]
	}
	body, err := json.Marshal(sub)
	if err != nil {
		p.failGroup(idx, out, err)
		return
	}
	c, _ := sub[0].validate()
	seq := p.ring.Sequence(sub[0].graphKey(c))
	if !contains(seq, home) {
		seq = append([]string{home}, seq...)
	}
	var lastErr error
	for attempt, backend := range seq {
		if attempt > 0 {
			mShardRerouted.Inc()
		}
		resp, err := p.send(r.Context(), r, backend, body)
		if err != nil {
			p.ring.SetHealthy(backend, false)
			lastErr = err
			continue
		}
		mShardForwarded.Inc()
		var br BatchResponse
		derr := json.NewDecoder(resp.Body).Decode(&br)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || derr != nil || len(br.Items) != len(idx) {
			lastErr = fmt.Errorf("backend %s answered %d (decode: %v)", backend, resp.StatusCode, derr)
			continue
		}
		for j, i := range idx {
			out.Items[i].Response = br.Items[j].Response
			out.Items[i].Error = br.Items[j].Error
		}
		return
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no healthy backend")
	}
	mShardUnroutable.Inc()
	p.failGroup(idx, out, lastErr)
}

func (p *proxy) failGroup(idx []int, out *BatchResponse, err error) {
	body := errorBody(nil, backendDown(fmt.Errorf("serve: sub-batch failed: %v", err)))
	for _, i := range idx {
		b := body
		out.Items[i].Error = &b
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

package core_test

import (
	"fmt"
	"log"

	"lhg/internal/core"
)

// ExampleBuildKTree shows the decomposition the canonical builder chooses.
func ExampleBuildKTree() {
	kt, err := core.BuildKTree(21, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d k=%d alpha=%d j=%d positions=%d height=%d\n",
		kt.N, kt.K, kt.Alpha, kt.J, kt.Blue.Positions(), kt.Blue.Height())
	// Output: n=21 k=3 alpha=3 j=3 positions=13 height=2
}

// ExampleBuildKDiamond shows an odd-α instance with an unshared clique.
func ExampleBuildKDiamond() {
	kd, err := core.BuildKDiamond(8, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unshared groups: %d, regular: %t\n",
		kd.Blue.UnsharedLeaves(), kd.Real.Graph.IsRegular(3))
	// Output: unshared groups: 1, regular: true
}

// ExampleExistsJD shows the (9,3) gap from §4.4: the Jenkins–Demers rule
// cannot reach it, the K-TREE constraint can.
func ExampleExistsJD() {
	fmt.Println(core.ExistsJD(9, 3), core.ExistsKTree(9, 3))
	// Output: false true
}

// ExampleNewKTreeGrower admits two nodes incrementally.
func ExampleNewKTreeGrower() {
	gr, err := core.NewKTreeGrower(3)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		delta, err := gr.Grow()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d links+%d links-%d\n", gr.N(), len(delta.Added), len(delta.Removed))
	}
	// Output:
	// n=7 links+3 links-0
	// n=8 links+3 links-0
}

// ExampleNewRouter routes between two tree copies via a shared leaf.
func ExampleNewRouter() {
	kt, err := core.BuildKTree(10, 3)
	if err != nil {
		log.Fatal(err)
	}
	router, err := core.NewRouter(kt.Blue, kt.Real)
	if err != nil {
		log.Fatal(err)
	}
	path, err := router.Route(0, 2) // root copy 0 -> root copy 2
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range path {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(kt.Real.Labels[v])
	}
	fmt.Println()
	// Output: R0 -> N1.0 -> L4 -> N1.2 -> R2
}

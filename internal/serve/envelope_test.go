package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestErrorEnvelopeEveryRoute pins the unified error contract: every /v1
// route answers every failure class with the same envelope —
// {"error":{"code","message","trace_id"}} — at its one mapped status, and
// wrong verbs carry an Allow header. This is the table the satellite
// requirement asks for; extending the API without extending this table
// should feel wrong.
func TestErrorEnvelopeEveryRoute(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	// Seed a session so conflict classes have something to conflict with.
	if status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"pinned","constraint":"ktree","n":14,"k":3}`, nil); status != 200 {
		t.Fatalf("seed session: %d", status)
	}

	cases := []struct {
		name, method, url, body string
		wantStatus              int
		wantCode                string
		wantAllow               string
	}{
		// 400 bad_request: malformed body / params, per route.
		{"build bad json", "POST", "/v1/build", `{"constraint":`, 400, CodeBadRequest, ""},
		{"build unknown field", "POST", "/v1/build", `{"constraint":"ktree","n":14,"k":3,"bogus":1}`, 400, CodeBadRequest, ""},
		{"build unknown constraint", "POST", "/v1/build", `{"constraint":"petersen","n":10,"k":3}`, 400, CodeBadRequest, ""},
		{"build seed on harary", "POST", "/v1/build", `{"constraint":"harary","n":20,"k":3,"seed":1}`, 400, CodeBadRequest, ""},
		{"verify bad property", "POST", "/v1/verify", `{"constraint":"ktree","n":14,"k":3,"properties":["P9"]}`, 400, CodeBadRequest, ""},
		{"verify bad json", "POST", "/v1/verify", `not json`, 400, CodeBadRequest, ""},
		{"verify stream bad query", "GET", "/v1/verify?stream&constraint=ktree&n=x&k=3", "", 400, CodeBadRequest, ""},
		{"flood bad source", "POST", "/v1/flood", `{"constraint":"ktree","n":14,"k":3,"source":99}`, 400, CodeBadRequest, ""},
		{"budget missing n", "GET", "/v1/budget?constraint=ktree&k=3", "", 400, CodeBadRequest, ""},
		{"budget bad source", "GET", "/v1/budget?constraint=ktree&n=14&k=3&source=99", "", 400, CodeBadRequest, ""},
		{"budget bad policy", "GET", "/v1/budget?constraint=ktree&n=14&k=3&timeout_ms=0", "", 400, CodeBadRequest, ""},
		{"batch empty", "POST", "/v1/verify?batch", `[]`, 400, CodeBadRequest, ""},
		{"batch bad sweep", "POST", "/v1/verify?batch", `{"constraint":"ktree","n":[],"k":[3]}`, 400, CodeBadRequest, ""},
		{"reconfigure no session", "POST", "/v1/reconfigure", `{"joins":1}`, 400, CodeBadRequest, ""},
		{"reconfigure stream no session", "GET", "/v1/reconfigure?stream", "", 400, CodeBadRequest, ""},

		// 404 not_found.
		{"reconfigure unknown session", "POST", "/v1/reconfigure", `{"session":"ghost","joins":1}`, 404, CodeNotFound, ""},
		{"reconfigure stream unknown", "GET", "/v1/reconfigure?stream&session=ghost", "", 404, CodeNotFound, ""},

		// 405 method_not_allowed, Allow header pinned.
		{"build wrong verb", "GET", "/v1/build", "", 405, CodeMethodNotAllowed, "POST"},
		{"verify wrong verb", "DELETE", "/v1/verify", "", 405, CodeMethodNotAllowed, "POST"},
		{"verify bare GET", "GET", "/v1/verify", "", 405, CodeMethodNotAllowed, "POST"},
		{"flood wrong verb", "PUT", "/v1/flood", "", 405, CodeMethodNotAllowed, "POST"},
		{"budget wrong verb", "POST", "/v1/budget", `{}`, 405, CodeMethodNotAllowed, "GET"},
		{"reconfigure wrong verb", "DELETE", "/v1/reconfigure", "", 405, CodeMethodNotAllowed, "POST"},
		{"constraints wrong verb", "POST", "/v1/constraints", `{}`, 405, CodeMethodNotAllowed, "GET"},
		{"healthz wrong verb", "POST", "/healthz", `{}`, 405, CodeMethodNotAllowed, "GET"},

		// 409 conflict: epoch/parameter races.
		{"reconfigure stale epoch", "POST", "/v1/reconfigure", `{"session":"pinned","joins":1,"epoch":7}`, 409, CodeConflict, ""},
		{"reconfigure k mismatch", "POST", "/v1/reconfigure", `{"session":"pinned","k":4,"joins":1}`, 409, CodeConflict, ""},

		// 422 not_constructible: impossible (n, k).
		{"build not constructible", "POST", "/v1/build", `{"constraint":"ktree","n":5,"k":3}`, 422, CodeNotConstructible, ""},
		{"verify not constructible", "POST", "/v1/verify", `{"constraint":"ktree","n":5,"k":3}`, 422, CodeNotConstructible, ""},
		{"flood not constructible", "POST", "/v1/flood", `{"constraint":"ktree","n":5,"k":3,"source":0}`, 422, CodeNotConstructible, ""},
		{"budget not constructible", "GET", "/v1/budget?constraint=ktree&n=5&k=3", "", 422, CodeNotConstructible, ""},
		{"reconfigure below floor", "POST", "/v1/reconfigure", `{"session":"pinned","leaves":10}`, 422, CodeNotConstructible, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			if tc.body != "" {
				rd = bytes.NewBufferString(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.url, rd)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			var env ErrorEnvelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("failure is not the envelope shape: %v (body %s)", err, raw)
			}
			if env.Error.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q (message %q)", env.Error.Code, tc.wantCode, env.Error.Message)
			}
			if env.Error.Message == "" {
				t.Fatal("envelope must carry a message")
			}
			// Tracing is on for the whole test binary, so the envelope's
			// trace id must match the response header: one grep handle.
			if got, want := env.Error.TraceID, resp.Header.Get("X-Trace-Id"); want == "" || got != want {
				t.Fatalf("trace_id = %q, X-Trace-Id = %q; want matching non-empty ids", got, want)
			}
			if tc.wantAllow != "" {
				if allow := resp.Header.Get("Allow"); allow != tc.wantAllow {
					t.Fatalf("Allow = %q, want %q", allow, tc.wantAllow)
				}
			}
			// Extra fields beyond "error" would widen the contract silently.
			var loose map[string]json.RawMessage
			_ = json.Unmarshal(raw, &loose)
			if len(loose) != 1 {
				t.Fatalf("envelope has %d top-level fields, want exactly {error}: %s", len(loose), raw)
			}
		})
	}

	// 504 timeout needs its own strangled server.
	t.Run("verify timeout", func(t *testing.T) {
		slow := newTestServer(t, Options{CacheSize: 16, Timeout: time.Nanosecond})
		var env ErrorEnvelope
		if status := postJSON(t, slow.URL+"/v1/verify", `{"constraint":"kdiamond","n":120,"k":4}`, &env); status != 504 {
			t.Fatalf("status = %d, want 504", status)
		}
		if env.Error.Code != CodeTimeout {
			t.Fatalf("code = %q, want %q", env.Error.Code, CodeTimeout)
		}
	})

	// 429 too_many_sessions needs a capped server.
	t.Run("session limit", func(t *testing.T) {
		capped := newTestServer(t, Options{CacheSize: 16, MaxSessions: 1})
		if status := postJSON(t, capped.URL+"/v1/reconfigure",
			`{"session":"one","constraint":"ktree","n":14,"k":3}`, nil); status != 200 {
			t.Fatalf("first session: %d", status)
		}
		var env ErrorEnvelope
		if status := postJSON(t, capped.URL+"/v1/reconfigure",
			`{"session":"two","constraint":"ktree","n":14,"k":3}`, &env); status != 429 {
			t.Fatalf("status = %d, want 429", status)
		}
		if env.Error.Code != CodeTooManySessions {
			t.Fatalf("code = %q, want %q", env.Error.Code, CodeTooManySessions)
		}
	})

	// 502 backend_unavailable: a frontend whose whole fleet is down.
	t.Run("backend down", func(t *testing.T) {
		front := newTestServer(t, Options{CacheSize: 16, Shards: []string{"127.0.0.1:1"}})
		var env ErrorEnvelope
		if status := postJSON(t, front.URL+"/v1/verify", `{"constraint":"ktree","n":14,"k":3}`, &env); status != 502 {
			t.Fatalf("status = %d, want 502", status)
		}
		if env.Error.Code != CodeBackendDown {
			t.Fatalf("code = %q, want %q", env.Error.Code, CodeBackendDown)
		}
	})
}

// TestEnvelopeCodesAreDistinct guards against two codes colliding as the
// table grows.
func TestEnvelopeCodesAreDistinct(t *testing.T) {
	codes := []string{CodeBadRequest, CodeNotFound, CodeMethodNotAllowed, CodeConflict,
		CodeNotConstructible, CodeTooManySessions, CodeClientClosed, CodeInternal,
		CodeBackendDown, CodeTimeout}
	seen := map[string]bool{}
	for _, c := range codes {
		if c == "" || strings.ContainsAny(c, " \t") || seen[c] {
			t.Fatalf("bad or duplicate code %q", c)
		}
		seen[c] = true
	}
}

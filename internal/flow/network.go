// Package flow implements unit-capacity maximum flow (Dinic's algorithm)
// and the connectivity queries built on it: s-t edge/vertex min cuts,
// global edge connectivity, global vertex connectivity (Esfahanian–Hakimi),
// parallel variants of both, and Menger-style extraction of vertex-disjoint
// paths.
//
// These are the verification workhorses for the LHG properties P1 and P2:
// a graph is k-node (k-link) connected iff its vertex (edge) connectivity
// is at least k, by Menger's theorem.
//
// Networks are recycled through a sync.Pool and rebuilt in place from the
// frozen CSR graph view, so the steady state of a connectivity sweep —
// thousands of small max-flow probes — allocates nothing.
//
// The residual network itself is a flat arena: arc targets and capacities
// live in paired flat arrays (arc e and its reverse e^1 adjacent, the
// standard Dinic layout), the per-node adjacency is a CSR index over arc
// ids built by one counting pass (finish), and the BFS level array doubles
// as the visited set (-1 = unreached) so the augmenting DFS tests a single
// int32 per arc. There are no per-node structs and no per-node slices:
// BFS and DFS walk cache-dense int32 arrays. Probe sweeps that reuse one
// topology re-arm capacities from a pristine snapshot (rearm) instead of
// rebuilding the CSR index per probe, and the level BFS stops expanding at
// t's distance — on expander-like probe targets the untouched final
// frontier is most of the graph.
package flow

import (
	"context"
	"sync"

	"lhg/internal/graph"
	"lhg/internal/obs"
)

// Flow-layer telemetry. Probes and augmenting paths are counted per
// maxflow call (one add each, outside the inner loops); pool gets/misses
// expose the recycling behaviour the zero-alloc steady state depends on.
// The arena counters split topology construction (builds: addArc loops +
// the CSR finish pass) from capacity restores (rearms: one copy from the
// pristine snapshot), which is the ratio the build-once probe sweeps exist
// to improve.
var (
	mMaxflowProbes = obs.NewCounter("flow.maxflow.probes")
	mAugPaths      = obs.NewCounter("flow.maxflow.augmenting_paths")
	mNetPoolGets   = obs.NewCounter("flow.pool.gets")
	mNetPoolMisses = obs.NewCounter("flow.pool.misses")
	mArenaBuilds   = obs.NewCounter("flow.arena.builds")
	mArenaRearms   = obs.NewCounter("flow.arena.rearms")
)

// network is a directed flow network stored as a flat arc arena: the arc
// with index e and its reverse e^1 are stored adjacently, and a CSR index
// (arcOff/arcIdx, built once per topology by finish) lists the arc ids
// leaving each node.
type network struct {
	n   int
	to  []int32 // arc targets; e and e^1 paired
	cap []int32 // residual capacities, parallel to to

	// CSR arc index: the arcs leaving v are arcIdx[arcOff[v]:arcOff[v+1]].
	// Built by finish after the addArc loop; invalid until then.
	arcOff []int32 // len n+1
	arcIdx []int32 // len == len(to)

	// cap0 is the pristine capacity snapshot taken by finish, so sweeps
	// over one topology restore capacities with a single copy (rearm)
	// instead of rebuilding the arena per probe.
	cap0 []int32

	// done, when non-nil, is the cancellation signal of the context the
	// probe runs under. maxflow polls it between augmenting-path
	// iterations — never mid-path — so a canceled probe stops within one
	// augmentation and leaves the network in a consistent, reusable state.
	done <-chan struct{}

	// scratch buffers reused across maxflow runs
	level []int32 // BFS levels; -1 = not in the current level graph
	iter  []int32 // per-node cursor into its CSR arc row
	queue []int32 // BFS queue
	path  []int32 // arc stack of the iterative DFS
}

// watch arms the network's cancellation signal from ctx. A background (or
// nil-Done) context disarms it; the signal is cleared again by reset, so a
// pooled network never carries a stale context across probes.
func (nw *network) watch(ctx context.Context) {
	if ctx == nil {
		nw.done = nil
		return
	}
	nw.done = ctx.Done()
}

// canceled is the poll point of the cancellation signal: one non-blocking
// channel receive when armed, a nil check when not.
func (nw *network) canceled() bool {
	if nw.done == nil {
		return false
	}
	select {
	case <-nw.done:
		return true
	default:
		return false
	}
}

// netPool recycles networks across probes. A recycled network keeps the
// capacity of every buffer it ever grew to, so rebuilding one for a graph
// of similar size costs appends into retained storage — zero allocations.
var netPool = sync.Pool{New: func() any {
	mNetPoolMisses.Inc()
	return new(network)
}}

func getNetwork(n int) *network {
	mNetPoolGets.Inc()
	nw := netPool.Get().(*network)
	nw.reset(n)
	return nw
}

func putNetwork(nw *network) {
	nw.done = nil // never pool an armed cancellation signal
	netPool.Put(nw)
}

// grow32 returns s resized to length n, reusing its storage when possible.
func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// reset prepares the network for n nodes, reusing all prior storage. The
// cancellation signal is left alone: sweeps rebuild the network per probe
// under one armed context (putNetwork disarms it before pooling).
func (nw *network) reset(n int) {
	nw.n = n
	nw.to = nw.to[:0]
	nw.cap = nw.cap[:0]
	nw.arcOff = grow32(nw.arcOff, n+1)
	for i := range nw.arcOff {
		nw.arcOff[i] = 0
	}
	nw.level = grow32(nw.level, n)
	nw.iter = grow32(nw.iter, n)
	if nw.queue == nil {
		nw.queue = make([]int32, 0, n)
	}
}

// addArc inserts a directed arc u->v with capacity c and its zero-capacity
// reverse. It returns the forward arc index. The CSR index is not usable
// until finish runs.
func (nw *network) addArc(u, v, c int) int {
	e := len(nw.to)
	nw.to = append(nw.to, int32(v), int32(u))
	nw.cap = append(nw.cap, int32(c), 0)
	return e
}

// finish builds the CSR arc index over everything addArc appended (one
// counting pass — the source of arc e is to[e^1]) and snapshots the
// pristine capacities for rearm. It must run once after the addArc loop
// and before the first maxflow.
func (nw *network) finish() {
	mArenaBuilds.Inc()
	m := len(nw.to)
	off := nw.arcOff // zeroed by reset
	for e := 0; e < m; e += 2 {
		off[nw.to[e+1]+1]++ // source of forward arc e
		off[nw.to[e]+1]++   // source of reverse arc e+1
	}
	for v := 0; v < nw.n; v++ {
		off[v+1] += off[v]
	}
	nw.arcIdx = grow32(nw.arcIdx, m)
	fill := nw.iter // clobbered: maxflow re-zeroes iter per phase
	for i := range fill {
		fill[i] = 0
	}
	for e := 0; e < m; e++ {
		src := nw.to[e^1]
		nw.arcIdx[off[src]+fill[src]] = int32(e)
		fill[src]++
	}
	nw.cap0 = append(nw.cap0[:0], nw.cap...)
}

// rearm restores every capacity to the pristine post-finish snapshot, so a
// sweep over one topology pays one copy per probe instead of a rebuild.
func (nw *network) rearm() {
	mArenaRearms.Inc()
	copy(nw.cap, nw.cap0)
}

// arcs returns the CSR row of arc ids leaving v.
func (nw *network) arcs(v int32) []int32 {
	return nw.arcIdx[nw.arcOff[v]:nw.arcOff[v+1]]
}

// noEdge is the sentinel "exclude nothing" mask.
var noEdge = graph.Edge{U: -1, V: -1}

// buildEdge assembles the directed network for edge-connectivity queries:
// every undirected edge becomes a pair of opposing unit-capacity arcs. The
// edge `skip` (if present in g) is masked out, which probes G−e without
// materializing the smaller graph.
func (nw *network) buildEdge(g *graph.Graph, skip graph.Edge) {
	nw.reset(g.Order())
	g.EachEdge(func(u, v int) {
		if u == skip.U && v == skip.V {
			return
		}
		nw.addArc(u, v, 1)
		nw.addArc(v, u, 1)
	})
	nw.finish()
}

// buildVertex assembles the split-node network for vertex-connectivity
// queries. Node v becomes vIn=2v and vOut=2v+1 joined by a unit arc, so a
// unit of flow "uses up" the node. The terminals s and t get unbounded
// internal capacity. The edge `skip` is masked out as in buildEdge.
//
// edgeCap controls the capacity of the arcs derived from graph edges:
//   - cut queries pass an effectively infinite capacity so that minimum
//     cuts consist of node arcs only (requires s,t non-adjacent);
//   - path extraction passes 1 so that a physical edge carries at most one
//     path (vertex-disjoint paths are automatically edge-disjoint, so this
//     does not change the maximum).
func (nw *network) buildVertex(g *graph.Graph, s, t, edgeCap int, skip graph.Edge) {
	nw.buildVertexBase(g, edgeCap, skip)
	nw.armVertexPair(s, t)
}

// buildVertexBase assembles the split-node network with every internal arc
// at capacity 1 (no terminals boosted). Sweeps build it once per graph and
// select the probe pair with armVertexPair; the node-internal arc of v is
// arc 2v by construction.
func (nw *network) buildVertexBase(g *graph.Graph, edgeCap int, skip graph.Edge) {
	n := g.Order()
	nw.reset(2 * n)
	for v := 0; v < n; v++ {
		nw.addArc(2*v, 2*v+1, 1)
	}
	g.EachEdge(func(u, v int) {
		if u == skip.U && v == skip.V {
			return
		}
		nw.addArc(2*u+1, 2*v, edgeCap)
		nw.addArc(2*v+1, 2*u, edgeCap)
	})
	nw.finish()
}

// armVertexPair rearms the pristine capacities and lifts the node-internal
// capacity of the terminals s and t to "unbounded" (n+1), preparing one
// vertex-cut probe on a buildVertexBase arena.
func (nw *network) armVertexPair(s, t int) {
	nw.rearm()
	c := int32(nw.n/2 + 1)
	nw.cap[2*s] = c
	nw.cap[2*t] = c
}

// Edge masking by canonical index. EachEdge enumerates edges in the same
// (u,v) order as graph.Edges, and every edge contributes two addArc calls
// (four arc slots), so on an arena built without a skip the i-th canonical
// edge owns a fixed arc window. Zeroing those capacities after rearm probes
// G−e without rebuilding — the core of the P3 minimality sweep, which runs
// two masked flows per edge.

// maskEdgeInEdgeNet removes the i-th canonical edge from a buildEdge arena
// (built with skip == noEdge). Call after rearm.
func (nw *network) maskEdgeInEdgeNet(i int) {
	base := 4 * i
	nw.cap[base] = 0
	nw.cap[base+1] = 0
	nw.cap[base+2] = 0
	nw.cap[base+3] = 0
}

// maskEdgeInVertexNet removes the i-th canonical edge from a
// buildVertexBase arena (skip == noEdge): the first 2n arc slots are the
// node-internal pairs, edge arcs follow. Call after armVertexPair.
func (nw *network) maskEdgeInVertexNet(i int) {
	base := nw.n + 4*i // nw.n == 2·(graph order): the internal-arc slots
	nw.cap[base] = 0
	nw.cap[base+1] = 0
	nw.cap[base+2] = 0
	nw.cap[base+3] = 0
}

// bfs builds the level graph; it reports whether t is reachable in the
// residual network. The level array doubles as the visited set (-1 =
// unreached), which removes the per-arc bitset test from the hot loop,
// and expansion stops once the frontier reaches t's level: no shortest
// augmenting path leaves a node at distance >= level(t), and on the
// expander-like instances the sweeps probe, the final BFS frontier holds
// most of the graph — truncating it is most of a phase's cost.
func (nw *network) bfs(s, t int) bool {
	lev := nw.level
	for i := range lev {
		lev[i] = -1
	}
	nw.queue = nw.queue[:0]
	nw.queue = append(nw.queue, int32(s))
	lev[s] = 0
	tLevel := int32(-1)
	for qi := 0; qi < len(nw.queue); qi++ {
		u := nw.queue[qi]
		if tLevel >= 0 && lev[u] >= tLevel {
			break
		}
		lv := lev[u] + 1
		for _, e := range nw.arcs(u) {
			v := nw.to[e]
			if nw.cap[e] > 0 && lev[v] < 0 {
				lev[v] = lv
				nw.queue = append(nw.queue, v)
				if v == int32(t) {
					tLevel = lv
				}
			}
		}
	}
	return lev[t] >= 0
}

// augment finds one augmenting path from s to t in the current level
// graph, pushes its bottleneck and returns the amount (0 when the blocking
// flow is complete). It is iterative — the DFS stack is the arc path — so
// probe depth is bounded by memory, not goroutine stack growth, which the
// n=10^6 arenas rely on. Dead ends are pruned by dropping the node's level
// to -2, the classic level-graph retreat.
func (nw *network) augment(s, t int32) int32 {
	nw.path = nw.path[:0]
	u := s
	for {
		if u == t {
			pushed := nw.cap[nw.path[0]]
			for _, e := range nw.path[1:] {
				if nw.cap[e] < pushed {
					pushed = nw.cap[e]
				}
			}
			for _, e := range nw.path {
				nw.cap[e] -= pushed
				nw.cap[e^1] += pushed
			}
			return pushed
		}
		advanced := false
		row := nw.arcs(u)
		for ; int(nw.iter[u]) < len(row); nw.iter[u]++ {
			e := row[nw.iter[u]]
			v := nw.to[e]
			if nw.cap[e] > 0 && nw.level[v] == nw.level[u]+1 {
				nw.path = append(nw.path, e)
				u = v
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		if u == s {
			return 0
		}
		// Retreat: u is a dead end in this phase; remove it from the level
		// graph and step back past the arc that led here.
		nw.level[u] = -2
		e := nw.path[len(nw.path)-1]
		nw.path = nw.path[:len(nw.path)-1]
		u = nw.to[e^1]
		nw.iter[u]++
	}
}

const inf = int(^uint(0) >> 1)

// maxflow computes the maximum s-t flow, optionally stopping early once the
// flow reaches `limit` (pass a negative limit for no bound). Early stopping
// makes global-connectivity sweeps cheap: once the running minimum is m, any
// pair with flow >= m cannot improve it.
func (nw *network) maxflow(s, t, limit int) int {
	f, paths := nw.maxflowCounted(s, t, limit)
	mMaxflowProbes.Inc()
	mAugPaths.Add(paths)
	return f
}

// maxflowCounted is maxflow returning the number of augmenting paths found
// alongside the flow value. The path count is tallied in a local so the
// hot loop stays free of atomics; the caller publishes it once.
//
// When the network is armed with a context (watch), cancellation is polled
// between augmenting-path iterations and before each level-graph rebuild —
// never inside a path search — so a canceled probe returns promptly with a
// partial (lower-bound) flow value. Callers that armed a context must check
// it after the probe and discard the value; the network itself stays
// consistent and reusable.
func (nw *network) maxflowCounted(s, t, limit int) (flow int, paths int64) {
	if s == t {
		return inf, 0
	}
	for !nw.canceled() && nw.bfs(s, t) {
		for i := range nw.iter {
			nw.iter[i] = 0
		}
		for {
			f := nw.augment(int32(s), int32(t))
			if f == 0 {
				break
			}
			paths++
			flow += int(f)
			if limit >= 0 && flow >= limit {
				return flow, paths
			}
			if nw.canceled() {
				return flow, paths
			}
		}
	}
	return flow, paths
}

// residualReach marks every node reachable from s in the residual network.
func (nw *network) residualReach(s int) []bool {
	seen := make([]bool, nw.n)
	seen[s] = true
	stack := []int32{int32(s)}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range nw.arcs(u) {
			if v := nw.to[e]; nw.cap[e] > 0 && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lhg/internal/obs"
)

// sseEvent is one parsed text/event-stream frame.
type sseEvent struct {
	Name string
	Data string
}

// readSSE consumes an event stream until the `done` event, an error
// event, or EOF, returning the frames in arrival order.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.Name != "":
			events = append(events, cur)
			if cur.Name == "done" {
				return events
			}
			cur = sseEvent{}
		}
	}
	return events
}

func streamURL(base, query string) string {
	return base + "/v1/verify?stream&" + query
}

func TestVerifyStreamOrderingAndResult(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	resp, err := http.Get(streamURL(ts.URL, "constraint=kdiamond&n=61&k=4"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := readSSE(t, resp)
	if len(events) < 3 {
		t.Fatalf("stream too short: %+v", events)
	}
	if events[0].Name != "start" {
		t.Fatalf("first event %q, want start", events[0].Name)
	}
	last, prev := events[len(events)-1], events[len(events)-2]
	if last.Name != "done" || prev.Name != "result" {
		t.Fatalf("tail events %q,%q, want result,done", prev.Name, last.Name)
	}
	var vr VerifyResponse
	if err := json.Unmarshal([]byte(prev.Data), &vr); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if !vr.IsLHG || vr.Report == nil {
		t.Fatalf("streamed verify result wrong: %+v", vr)
	}
	// Tracing is on (TestMain): the feed must carry span lifecycle events
	// between start and result, opening before closing.
	var sawPhaseStart, sawPhaseEnd bool
	for _, ev := range events {
		if !strings.Contains(ev.Data, "check.") {
			continue
		}
		switch ev.Name {
		case "span-start":
			sawPhaseStart = true
		case "span-end":
			if !sawPhaseStart {
				t.Fatal("a check phase ended before any started")
			}
			sawPhaseEnd = true
		}
	}
	if !sawPhaseStart || !sawPhaseEnd {
		t.Fatalf("stream missing check phase span events:\n%+v", events)
	}
	var startPayload struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal([]byte(events[0].Data), &startPayload); err != nil || startPayload.TraceID == "" {
		t.Fatalf("start event carries no trace id: %q (%v)", events[0].Data, err)
	}
}

// TestVerifyStreamSharedFeed is the tentpole invariant: a burst of
// streaming watchers of one campaign shares a single span stream — the
// campaign runs exactly once (asserted on check.verify.runs).
func TestVerifyStreamSharedFeed(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	before := obs.Counters()

	const clients = 64
	var wg sync.WaitGroup
	var okCount, gotResult atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(streamURL(ts.URL, "constraint=kdiamond&n=120&k=4"))
			if err != nil {
				return
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				return
			}
			okCount.Add(1)
			for _, ev := range readSSE(t, resp) {
				if ev.Name == "result" {
					gotResult.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	after := obs.Counters()
	if ok := okCount.Load(); ok != clients {
		t.Fatalf("%d/%d streams opened", ok, clients)
	}
	if got := gotResult.Load(); got != clients {
		t.Fatalf("%d/%d streams observed the result", got, clients)
	}
	campaigns := after["check.verify.runs"] - before["check.verify.runs"]
	if campaigns != 1 {
		t.Fatalf("burst of %d streaming watchers ran %d campaigns, want exactly 1", clients, campaigns)
	}
}

func TestVerifyStreamBadParams(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	for _, query := range []string{
		"constraint=kdiamond",                        // missing n,k
		"constraint=nope&n=50&k=4",                   // unknown constraint
		"constraint=kdiamond&n=x&k=4",                // non-numeric
		"constraint=kdiamond&n=50&k=4&properties=P9", // unknown property
	} {
		resp, err := http.Get(streamURL(ts.URL, query))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", query, resp.StatusCode)
		}
	}
}

// TestVerifyStreamDisconnectCancels: when the only watcher of an
// unfinished streamed campaign disconnects, the feed-owned context is
// cancelled and the feed unmaps — the campaign does not run on
// abandoned.
func TestVerifyStreamDisconnectCancels(t *testing.T) {
	srv := New(Options{CacheSize: 16})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	// n large enough that the P3 sweep outlives the disconnect.
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		streamURL(ts.URL, "constraint=kdiamond&n=1200&k=6"), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the stream to open, then vanish.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("stream never produced a byte: %v", err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.feedMu.Lock()
		live := len(srv.verifyFeeds)
		srv.feedMu.Unlock()
		if live == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("feed still live %d after sole watcher disconnected", live)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReconfigureStream watches a topology session across an epoch: the
// watcher sees epoch-start, the campaign's span events, and epoch-end
// with the applied surgery.
func TestReconfigureStream(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})

	// Create the session (epoch 0 baseline).
	var created ReconfigureResponse
	if status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"watched","constraint":"kdiamond","n":24,"k":3}`, &created); status != http.StatusOK {
		t.Fatalf("session create: status %d", status)
	}

	// Streaming an unknown session is 404; a missing name is 400.
	resp, err := http.Get(ts.URL + "/v1/reconfigure?stream&session=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost session: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/reconfigure?stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless stream: status %d, want 400", resp.StatusCode)
	}

	// Watch, then drive one epoch.
	resp, err = http.Get(ts.URL + "/v1/reconfigure?stream&session=watched")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	type evRec struct {
		Name string
		Data string
	}
	events := make(chan evRec, 256)
	go func() {
		defer close(events)
		var cur evRec
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.Name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.Data = strings.TrimPrefix(line, "data: ")
			case line == "" && cur.Name != "":
				events <- cur
				cur = evRec{}
			}
		}
	}()

	// Give the subscriber a moment to attach before the campaign runs.
	time.Sleep(50 * time.Millisecond)
	var epoch ReconfigureResponse
	if status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"watched","joins":2,"leaves":1}`, &epoch); status != http.StatusOK {
		t.Fatalf("epoch: status %d", status)
	}
	if epoch.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", epoch.Epoch)
	}

	var names []string
	deadline := time.After(10 * time.Second)
	for len(names) == 0 || names[len(names)-1] != "epoch-end" {
		select {
		case ev, open := <-events:
			if !open {
				t.Fatalf("stream ended early; events: %v", names)
			}
			names = append(names, ev.Name)
			if ev.Name == "epoch-end" {
				var got ReconfigureResponse
				if err := json.Unmarshal([]byte(ev.Data), &got); err != nil {
					t.Fatalf("decode epoch-end: %v", err)
				}
				if got.Epoch != 1 || got.N != created.N+1 {
					t.Fatalf("epoch-end payload wrong: %+v", got)
				}
			}
		case <-deadline:
			t.Fatalf("no epoch-end within deadline; events: %v", names)
		}
	}
	if names[0] != "epoch-start" {
		t.Fatalf("first streamed event %q, want epoch-start; all: %v", names[0], names)
	}
	resp.Body.Close()
}

// TestStreamHeartbeat pins the keep-alive: an idle session stream gets
// comment heartbeats at the configured period.
func TestStreamHeartbeat(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16, StreamHeartbeat: 20 * time.Millisecond})
	var created ReconfigureResponse
	if status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"idle","constraint":"kdiamond","n":24,"k":3}`, &created); status != http.StatusOK {
		t.Fatalf("session create: status %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/reconfigure?stream&session=idle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(5*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ": hb") {
			return // heartbeat observed
		}
	}
	t.Fatal("no heartbeat on an idle stream")
}

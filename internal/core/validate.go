package core

import "fmt"

// This file validates blueprints against the structural rules of each
// constraint. The builders always produce valid blueprints; the validators
// exist so tests (and users assembling blueprints by hand) can prove it,
// and so the set inclusion "every JD graph satisfies K-TREE" is checkable.

// ValidateKTree checks the blueprint against Definition 1 (K-TREE):
//  1. k copies of a tree T            — implied by Compile
//  2. shared leaves                   — no unshared positions allowed
//  3. T height-balanced, root has k children, other internal nodes have
//     k-1 children, nodes just above the leaves may carry up to 2k-3
//     added leaves.
func ValidateKTree(b *Blueprint) error {
	if err := validateCommon(b); err != nil {
		return err
	}
	for p, kind := range b.Kind {
		if kind == UnsharedLeaf {
			return fmt.Errorf("core: K-TREE forbids unshared leaves (position %d)", p)
		}
	}
	return validateAddedLeaves(b, 2*b.K-3, true /* root may host added leaves */)
}

// ValidateKDiamond checks the blueprint against Definition 2 (K-DIAMOND):
// like K-TREE but leaves may be shared or unshared and above-leaf nodes may
// carry at most k-2 added leaves.
func ValidateKDiamond(b *Blueprint) error {
	if err := validateCommon(b); err != nil {
		return err
	}
	return validateAddedLeaves(b, b.K-2, true)
}

// ValidateJD checks the blueprint against the Jenkins–Demers rule: shared
// leaves only; exceptional nodes are non-root interior nodes above the
// leaves carrying exactly two added leaves (k+1 children), and at most k
// nodes are exceptional.
func ValidateJD(b *Blueprint) error {
	if err := validateCommon(b); err != nil {
		return err
	}
	for p, kind := range b.Kind {
		if kind == UnsharedLeaf {
			return fmt.Errorf("core: JD forbids unshared leaves (position %d)", p)
		}
	}
	exceptional := 0
	for p, kind := range b.Kind {
		if kind != Internal {
			continue
		}
		added := addedChildren(b, p)
		switch {
		case added == 0:
		case added == 2:
			if p == 0 {
				return fmt.Errorf("core: JD root cannot take extra children")
			}
			if !hasBaseLeafChild(b, p) {
				return fmt.Errorf("core: JD exception node %d is not above the leaves", p)
			}
			exceptional++
		default:
			return fmt.Errorf("core: JD node %d has %d added leaves (must be 0 or 2)", p, added)
		}
	}
	if exceptional > b.K {
		return fmt.Errorf("core: JD allows at most k=%d exception nodes, found %d", b.K, exceptional)
	}
	return nil
}

// validateCommon checks the rules shared by all constraints: positions form
// a tree rooted at 0; the root has k base children; non-root internal nodes
// have k-1 base children; leaves have no children; the tree is
// height-balanced (all leaves within one depth level).
func validateCommon(b *Blueprint) error {
	if b.K < 3 {
		return fmt.Errorf("core: blueprint k=%d must be >= 3", b.K)
	}
	np := b.Positions()
	if np == 0 || b.Kind[0] != Internal || b.Parent[0] != -1 {
		return fmt.Errorf("core: blueprint must be rooted at internal position 0")
	}
	if len(b.Kind) != np || len(b.Children) != np || len(b.Depth) != np || len(b.Added) != np {
		return fmt.Errorf("core: blueprint slices have inconsistent lengths")
	}
	minLeaf, maxLeaf := -1, -1
	for p := 0; p < np; p++ {
		if p > 0 {
			parent := b.Parent[p]
			if parent < 0 || parent >= np || b.Kind[parent] != Internal {
				return fmt.Errorf("core: position %d has invalid parent %d", p, parent)
			}
			if b.Depth[p] != b.Depth[parent]+1 {
				return fmt.Errorf("core: position %d depth %d inconsistent with parent depth %d",
					p, b.Depth[p], b.Depth[parent])
			}
		}
		switch b.Kind[p] {
		case Internal:
			base := len(b.Children[p]) - addedChildren(b, p)
			want := b.K - 1
			if p == 0 {
				want = b.K
			}
			if base != want {
				return fmt.Errorf("core: internal position %d has %d base children, want %d", p, base, want)
			}
		case SharedLeaf, UnsharedLeaf:
			if len(b.Children[p]) != 0 {
				return fmt.Errorf("core: leaf position %d has children", p)
			}
			d := b.Depth[p]
			if minLeaf < 0 || d < minLeaf {
				minLeaf = d
			}
			if d > maxLeaf {
				maxLeaf = d
			}
		default:
			return fmt.Errorf("core: position %d has invalid kind", p)
		}
	}
	if minLeaf < 0 {
		return fmt.Errorf("core: blueprint has no leaves")
	}
	if maxLeaf-minLeaf > 1 {
		return fmt.Errorf("core: tree is not height-balanced (leaf depths span %d..%d)", minLeaf, maxLeaf)
	}
	return nil
}

// validateAddedLeaves enforces the per-node added-leaf budget and the
// "just above the leaves" placement rule.
func validateAddedLeaves(b *Blueprint, perNode int, rootAllowed bool) error {
	for p, kind := range b.Kind {
		if kind != Internal {
			continue
		}
		added := addedChildren(b, p)
		if added == 0 {
			continue
		}
		if added > perNode {
			return fmt.Errorf("core: node %d has %d added leaves, budget %d", p, added, perNode)
		}
		if p == 0 && !rootAllowed {
			return fmt.Errorf("core: root cannot host added leaves")
		}
		if !hasBaseLeafChild(b, p) {
			return fmt.Errorf("core: node %d hosts added leaves but is not above the leaves", p)
		}
	}
	return nil
}

func addedChildren(b *Blueprint, p int) int {
	n := 0
	for _, c := range b.Children[p] {
		if b.Added[c] {
			n++
		}
	}
	return n
}

// hasBaseLeafChild reports whether p has a non-added leaf child, i.e.
// whether p sits "just above the leaves" of the underlying balanced tree.
func hasBaseLeafChild(b *Blueprint, p int) bool {
	for _, c := range b.Children[p] {
		if b.Kind[c] != Internal && !b.Added[c] {
			return true
		}
	}
	return false
}

package graph

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDOTOutput(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}})
	var buf bytes.Buffer
	if err := g.DOT(&buf, "demo graph!", map[int]string{0: "root"}); err != nil {
		t.Fatalf("DOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph demo_graph_ {",
		`n0 [label="root"]`,
		`n1 [label="1"]`,
		"n0 -- n1;",
		"n1 -- n2;",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "n2 -- n1") {
		t.Fatal("DOT must emit each undirected edge once")
	}
}

func TestDOTEmptyName(t *testing.T) {
	g := New(1)
	var buf bytes.Buffer
	if err := g.DOT(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "graph G {") {
		t.Fatalf("DOT with empty name = %q", buf.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 3}, {1, 2}})
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Order() != 4 || back.Size() != 2 {
		t.Fatalf("round trip: %s", back.String())
	}
	if !back.HasEdge(0, 3) || !back.HasEdge(1, 2) {
		t.Fatal("round trip lost edges")
	}
}

func TestJSONRejectsBadEdges(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"nodes":2,"edges":[[0,5]]}`), &g); err == nil {
		t.Fatal("out-of-range edge must fail to decode")
	}
	if err := json.Unmarshal([]byte(`{"nodes":2,"edges":[[1,1]]}`), &g); err == nil {
		t.Fatal("self-loop must fail to decode")
	}
	if err := json.Unmarshal([]byte(`not json`), &g); err == nil {
		t.Fatal("garbage must fail to decode")
	}
}

func TestStringSummary(t *testing.T) {
	g := cycle(4)
	want := "graph(n=4, m=4, degmin=2, degmax=2)"
	if got := g.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

package faultnet

import (
	"io"
	"net"
	"testing"
	"time"

	"lhg/internal/sim"
)

// frameReader consumes fixed-size frames from one end of a pipe and sends
// them on a channel until the conn closes.
func frameReader(c net.Conn, size int) <-chan []byte {
	out := make(chan []byte, 1024)
	go func() {
		defer close(out)
		for {
			buf := make([]byte, size)
			if _, err := io.ReadFull(c, buf); err != nil {
				return
			}
			out <- buf
		}
	}()
	return out
}

func drain(ch <-chan []byte, wait time.Duration) [][]byte {
	var got [][]byte
	deadline := time.After(wait)
	for {
		select {
		case b, ok := <-ch:
			if !ok {
				return got
			}
			got = append(got, b)
		case <-deadline:
			return got
		}
	}
}

func TestWrapInactivePlanIsIdentity(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if Wrap(a, Plan{}, sim.NewRNG(1)) != a {
		t.Fatal("inactive plan must return the conn unchanged")
	}
	if (Plan{Drop: 0.1}).Active() != true {
		t.Fatal("Drop plan must be active")
	}
}

func TestDropIsSeededAndDeterministic(t *testing.T) {
	const frames = 200
	run := func(seed uint64) int {
		a, b := net.Pipe()
		w := Wrap(a, Plan{Drop: 0.5}, sim.NewRNG(seed))
		ch := frameReader(b, 4)
		for i := 0; i < frames; i++ {
			if _, err := w.Write([]byte{byte(i), 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		got := len(drain(ch, time.Second))
		b.Close()
		return got
	}
	first := run(42)
	if first == 0 || first == frames {
		t.Fatalf("Drop=0.5 passed %d of %d frames, want a strict subset", first, frames)
	}
	if again := run(42); again != first {
		t.Fatalf("same seed passed %d then %d frames", first, again)
	}
	if other := run(43); other == first {
		t.Logf("different seed coincidentally passed the same count (%d); acceptable", other)
	}
}

func TestDuplicationWritesFrameTwice(t *testing.T) {
	a, b := net.Pipe()
	w := Wrap(a, Plan{Dup: 1}, sim.NewRNG(7))
	ch := frameReader(b, 2)
	for i := 0; i < 5; i++ {
		if _, err := w.Write([]byte{byte(i), 0xee}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	got := drain(ch, time.Second)
	b.Close()
	if len(got) != 10 {
		t.Fatalf("got %d frames, want 10 (every frame duplicated)", len(got))
	}
	for i := 0; i < 5; i++ {
		if got[2*i][0] != got[2*i+1][0] {
			t.Fatalf("frame %d and its duplicate differ: %v vs %v", i, got[2*i], got[2*i+1])
		}
	}
}

func TestDelayHoldsFrameButReturnsImmediately(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	w := Wrap(a, Plan{Delay: 1, DelayMin: 30 * time.Millisecond, DelayMax: 30 * time.Millisecond}, sim.NewRNG(3))
	defer w.Close()
	ch := frameReader(b, 3)
	start := time.Now()
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 20*time.Millisecond {
		t.Fatalf("delayed Write blocked the sender for %v", took)
	}
	select {
	case <-ch:
		if early := time.Since(start); early < 20*time.Millisecond {
			t.Fatalf("frame arrived after %v, want >= ~30ms", early)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed frame never arrived")
	}
}

func TestDelayReordersFrames(t *testing.T) {
	// Frame 0 is delayed 50ms; frame 1 is written right after with no delay
	// path left in the stream budget. With Delay=0.5 and a fixed seed the
	// decisions are deterministic, so instead force it structurally: one
	// wrapped conn that delays everything, one write through it, then a
	// direct write on the same pipe end serialized afterwards.
	a, b := net.Pipe()
	defer b.Close()
	w := Wrap(a, Plan{Delay: 1, DelayMin: 50 * time.Millisecond, DelayMax: 50 * time.Millisecond}, sim.NewRNG(9))
	defer w.Close()
	ch := frameReader(b, 1)
	if _, err := w.Write([]byte{0xAA}); err != nil { // held 50ms
		t.Fatal(err)
	}
	if _, err := a.Write([]byte{0xBB}); err != nil { // immediate, overtakes
		t.Fatal(err)
	}
	got := drain(ch, time.Second)
	if len(got) != 2 || got[0][0] != 0xBB || got[1][0] != 0xAA {
		t.Fatalf("frames arrived %v, want late frame overtaken", got)
	}
}

func TestFlapWindowDropsEverything(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	// Down window covers the whole period: the link is permanently down.
	w := Wrap(a, Plan{FlapPeriod: 10 * time.Millisecond, FlapDown: 10 * time.Millisecond}, sim.NewRNG(5))
	ch := frameReader(b, 1)
	for i := 0; i < 20; i++ {
		if _, err := w.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if got := drain(ch, 100*time.Millisecond); len(got) != 0 {
		t.Fatalf("%d frames crossed a permanently down link", len(got))
	}
}

func TestCloseCancelsDelayedWritesAndIsIdempotent(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	w := Wrap(a, Plan{Delay: 1, DelayMin: 50 * time.Millisecond, DelayMax: 50 * time.Millisecond}, sim.NewRNG(11))
	ch := frameReader(b, 1)
	if _, err := w.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_ = w.Close() // double close must not panic
	if got := drain(ch, 120*time.Millisecond); len(got) != 0 {
		t.Fatal("delayed frame escaped after Close")
	}
}

func TestWriteDeadlineBudgetAppliesPerFrame(t *testing.T) {
	// No reader on the far end: a net.Pipe write can only finish by
	// deadline. The wrapper must translate SetWriteDeadline into a
	// per-frame budget and surface the timeout.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	w := Wrap(a, Plan{Dup: 0.0000001}, sim.NewRNG(1)) // active but effectively clean
	if err := w.SetWriteDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := w.Write([]byte{1, 2, 3})
	if err == nil {
		t.Fatal("write with no reader must time out")
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("error %v, want a net timeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far longer than the budget")
	}
}

// TestBurstWindowRaisesLoss pins the loss-burst plan: with the burst window
// covering the whole period and BurstDrop = 1, every frame is lost to the
// burst even though the background Drop probability is zero — and the loss
// is attributed to the burst counter, not the steady-state one.
func TestBurstWindowRaisesLoss(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	plan := Plan{BurstPeriod: 10 * time.Millisecond, BurstLen: 10 * time.Millisecond, BurstDrop: 1}
	if !plan.Active() {
		t.Fatal("burst plan must be active")
	}
	w := Wrap(a, plan, sim.NewRNG(5))
	ch := frameReader(b, 1)
	for i := 0; i < 20; i++ {
		if _, err := w.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if got := drain(ch, 100*time.Millisecond); len(got) != 0 {
		t.Fatalf("%d frames crossed a permanent loss burst", len(got))
	}
}

// TestBurstPlanValidation pins the activation edge cases: a burst needs all
// three of period, length and probability; partial configurations inject
// nothing.
func TestBurstPlanValidation(t *testing.T) {
	for _, p := range []Plan{
		{BurstPeriod: time.Second},
		{BurstLen: time.Second},
		{BurstDrop: 1},
		{BurstPeriod: time.Second, BurstLen: time.Second},
		{BurstPeriod: time.Second, BurstDrop: 1},
	} {
		if p.Active() {
			t.Fatalf("partial burst plan %+v reports active", p)
		}
	}
	// A partial burst inside an otherwise active plan injects no burst
	// drops: every frame passes the zero-probability ladder.
	a, b := net.Pipe()
	defer b.Close()
	w := Wrap(a, Plan{Dup: 0.0001, BurstPeriod: time.Second, BurstDrop: 1}, sim.NewRNG(5))
	ch := frameReader(b, 1)
	for i := 0; i < 10; i++ {
		if _, err := w.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if got := drain(ch, 100*time.Millisecond); len(got) != 10 {
		t.Fatalf("partial burst plan interfered with traffic: %d/10 frames", len(got))
	}
}

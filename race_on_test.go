//go:build race

package lhg_test

// raceEnabled reports whether the race detector instruments this build.
// The detector intentionally randomizes and bypasses sync.Pool reuse, so
// allocation-count assertions are meaningless under -race.
const raceEnabled = true

package core

import (
	"fmt"

	"lhg/internal/graph"
)

// This file implements *incremental* LHG maintenance: the constructive
// procedures inside the proofs of Theorem 2 (K-TREE) and Theorem 5
// (K-DIAMOND) executed as graph-surgery steps. Each Grow() call adds
// exactly one node and rewires O(k²) edges — independent of n — while the
// graph satisfies its constraint (and hence is an LHG) after every step.
// This is the operational payoff of the existence theorems for the P2P
// setting: a membership service can admit one joiner at a time without
// ever rebuilding the overlay.
//
// K-TREE growth (proof of Theorem 2):
//
//	state (α, j): while j < 2k-3, a new node becomes an added leaf on the
//	node just above the leaves (Part 1). At j = 2k-3 the next node triggers
//	the Part 2 restructure: the 2k-3 waiting added leaves plus the joiner
//	(2k-2 nodes total) convert the oldest base leaf s into an internal
//	node: k-1 of them become s's copies in the other trees, the remaining
//	k-1 become the new level of shared leaves under all k copies.
//
// K-DIAMOND growth (proof of Theorem 5):
//
//	state (α, j): while j < k-2, added leaves accumulate (Part 1). At
//	j = k-2 the joiner completes a batch of k-1 nodes and α increments:
//	on even→odd transitions the batch plus the oldest base leaf form an
//	*unshared leaf* — a k-clique, member i keeping exactly one link into
//	tree copy i (Part 2); on odd→even transitions the pending clique
//	dissolves into the k copies of a new internal node (each member
//	already holds exactly one tree link, which becomes its parent link)
//	and the batch becomes its k-1 shared leaf children (Part 3).

// EdgeDelta records the edge surgery of one reconfiguration step. The type
// lives in internal/graph (Graph.ApplyDelta consumes it); the alias keeps
// the historical core.EdgeDelta name working for every existing caller.
// Deltas returned by the growers are canonical: Added and Removed sorted by
// (U,V), so every serialization of a step is byte-deterministic.
type EdgeDelta = graph.EdgeDelta

// pendingLeaf is a base shared leaf awaiting conversion, with its parent
// nodes ordered by tree copy.
type pendingLeaf struct {
	node    int
	parents []int // parents[i] is the leaf's neighbor in tree copy i
}

// KTreeGrower maintains a K-TREE LHG incrementally. Node ids are stable:
// once assigned, a process keeps its id across every growth step.
type KTreeGrower struct {
	k     int
	g     *graph.Builder
	queue []pendingLeaf // base leaves in creation (BFS) order
	added []int         // waiting added leaves, attached to queue[0].parents
}

// NewKTreeGrower starts from the minimal K-TREE graph (2k, k): nodes
// 0..k-1 are the root copies, k..2k-1 the initial shared leaves.
func NewKTreeGrower(k int) (*KTreeGrower, error) {
	if k < 3 {
		return nil, notConstructible("K-TREE", 2*k, k, "k must be >= 3")
	}
	g := graph.NewBuilder(2 * k)
	roots := make([]int, k)
	for i := range roots {
		roots[i] = i
	}
	gr := &KTreeGrower{k: k, g: g}
	for leaf := k; leaf < 2*k; leaf++ {
		for _, r := range roots {
			g.MustAddEdge(r, leaf)
		}
		gr.queue = append(gr.queue, pendingLeaf{node: leaf, parents: roots})
	}
	return gr, nil
}

// N returns the current number of nodes.
func (gr *KTreeGrower) N() int { return gr.g.Order() }

// K returns the connectivity target.
func (gr *KTreeGrower) K() int { return gr.k }

// Graph returns the current topology as a frozen, immutable view. The
// freeze is cached between growth steps, so repeated calls are free.
func (gr *KTreeGrower) Graph() *graph.Graph { return gr.g.Freeze() }

// Snapshot is Graph under its historical name: the frozen view needs no
// copy-vs-live distinction anymore.
func (gr *KTreeGrower) Snapshot() *graph.Graph { return gr.g.Freeze() }

// Grow admits one node and returns the edge surgery performed, in
// canonical (sorted) form.
func (gr *KTreeGrower) Grow() (EdgeDelta, error) {
	var d EdgeDelta
	var err error
	if len(gr.added) < 2*gr.k-3 {
		d, err = gr.growAddedLeaf()
	} else {
		d, err = gr.restructure()
	}
	d.Normalize()
	return d, err
}

// growAddedLeaf is Part 1 of the Theorem 2 proof: the joiner hangs off the
// node just above the leaves, in every tree copy.
func (gr *KTreeGrower) growAddedLeaf() (EdgeDelta, error) {
	if len(gr.queue) == 0 {
		return EdgeDelta{}, fmt.Errorf("core: grower has no pending leaves")
	}
	var d EdgeDelta
	host := gr.queue[0].parents
	id := gr.g.AddNode()
	for _, p := range host {
		gr.g.MustAddEdge(p, id)
		d.Added = append(d.Added, edge(p, id))
	}
	gr.added = append(gr.added, id)
	return d, nil
}

// restructure is Part 2 of the Theorem 2 proof: the waiting 2k-3 added
// leaves plus the joiner convert the oldest base leaf into an internal
// node with a fresh level of k-1 shared leaves.
func (gr *KTreeGrower) restructure() (EdgeDelta, error) {
	k := gr.k
	if len(gr.queue) == 0 {
		return EdgeDelta{}, fmt.Errorf("core: grower has no pending leaves")
	}
	var d EdgeDelta
	front := gr.queue[0]
	gr.queue = gr.queue[1:]
	s, parents := front.node, front.parents

	// s stays the copy-0 internal node: keep the edge to parents[0] only.
	for i := 1; i < k; i++ {
		gr.removeEdge(&d, s, parents[i])
	}
	// Added leaves 0..k-2 become s's copies in trees 1..k-1: copy i keeps
	// its edge to parents[i] and drops the rest.
	internals := make([]int, k)
	internals[0] = s
	for i := 1; i < k; i++ {
		c := gr.added[i-1]
		internals[i] = c
		for j := 0; j < k; j++ {
			if j != i {
				gr.removeEdge(&d, c, parents[j])
			}
		}
	}
	// The remaining k-2 added leaves plus the joiner become the k-1 new
	// shared leaves under every copy of s.
	children := make([]int, 0, k-1)
	for _, c := range gr.added[k-1:] {
		for j := 0; j < k; j++ {
			gr.removeEdge(&d, c, parents[j])
		}
		children = append(children, c)
	}
	children = append(children, gr.g.AddNode())
	for _, child := range children {
		for _, in := range internals {
			gr.g.MustAddEdge(in, child)
			d.Added = append(d.Added, edge(in, child))
		}
		gr.queue = append(gr.queue, pendingLeaf{node: child, parents: internals})
	}
	gr.added = gr.added[:0]
	return d, nil
}

func (gr *KTreeGrower) removeEdge(d *EdgeDelta, u, v int) {
	if gr.g.RemoveEdge(u, v) {
		d.Removed = append(d.Removed, edge(u, v))
	}
}

func edge(u, v int) graph.Edge {
	if u > v {
		u, v = v, u
	}
	return graph.Edge{U: u, V: v}
}

// Package check verifies the defining properties of Logarithmic Harary
// Graphs (Jenkins & Demers, ICDCS 2001; formalized by Baldoni et al.):
//
//	P1  k-node connectivity    — removing any k-1 nodes leaves G connected
//	P2  k-link connectivity    — removing any k-1 links leaves G connected
//	P3  link minimality        — removing any link lowers node or link
//	                             connectivity
//	P4  logarithmic diameter   — diameter is O(log n)
//	P5  k-regularity           — every node has degree exactly k (optional:
//	                             it characterizes edge-minimal LHGs)
//
// P1 and P2 are checked exactly via max-flow (Menger's theorem), not by
// sampling. P4 is checked against the bound the constructions guarantee,
// diameter <= 2*log_{k-1}(n) + DiameterSlack, and the raw values are
// reported so callers can apply their own bound.
package check

import (
	"context"
	"fmt"
	"math"
	"strings"

	"lhg/internal/flow"
	"lhg/internal/graph"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
)

// Verification telemetry. The phase timers mirror Report.Phases into the
// metrics registry; the probe counter handles are the same registered
// metrics the flow layer increments (registration is idempotent), so the
// per-phase probe deltas in Report come from the authoritative counters.
var (
	mVerifyRuns      = obs.NewCounter("check.verify.runs")
	mQuickRuns       = obs.NewCounter("check.quickverify.runs")
	gVerifyWorkers   = obs.NewGauge("check.verify.workers")
	mP3EdgesProbed   = obs.NewCounter("check.p3.edges_probed")
	tPhaseKappa      = obs.NewTimer("check.phase.kappa")
	tPhaseLambda     = obs.NewTimer("check.phase.lambda")
	tPhaseMinimality = obs.NewTimer("check.phase.minimality")
	tPhaseDistances  = obs.NewTimer("check.phase.distances")
	tPhaseSparsify   = obs.NewTimer("check.phase.sparsify")
	tPhaseRestricted = obs.NewTimer("check.phase.restricted")
	mFlowProbes      = obs.NewCounter("flow.maxflow.probes")

	mSparsifyPasses  = obs.NewCounter("check.sparsify.passes")
	mSparsifyKept    = obs.NewCounter("check.sparsify.edges_kept")
	mSparsifyDropped = obs.NewCounter("check.sparsify.edges_dropped")
)

// SparsifyCutoff is the density threshold of the automatic sparsify fast
// path: the κ/λ probe phases switch from the full edge set to the
// Nagamochi–Ibaraki certificate when m > SparsifyCutoff·k·n. Below the
// cutoff the certificate cannot drop enough edges to pay for its own
// construction, so sparse graphs — every well-formed LHG — keep the
// historical probe-everything path.
const SparsifyCutoff = 2

// SparseProbeView resolves the graph the κ/λ connectivity probes should
// run on under the given policy. The second return reports whether a
// certificate is in use.
//
// The certificate is built for q = δ(G)+1, one past the minimum degree.
// Since κ(G) <= λ(G) <= δ(G) < q (Whitney), the Nagamochi–Ibaraki bounds
// pin both connectivity values of the certificate to the exact values of
// G — not just the "≥ k" verdicts — so every field of the Report is
// bit-identical with and without sparsification. P3 minimality and P4
// distance probes must NOT use the view: removing edges changes distances
// and per-edge removability, so those phases always run on g itself.
func SparseProbeView(g *graph.Graph, k int, policy Sparsify) (*graph.Graph, bool) {
	minDeg, _ := g.MinDegree()
	return sparseView(g, k, minDeg+1, policy)
}

// sparsifyEligible is the cheap pre-gate shared by the exact and quick
// drivers: it decides from the policy and the edge count alone whether
// building a certificate is worth attempting.
func sparsifyEligible(g *graph.Graph, k int, policy Sparsify) bool {
	if policy == SparsifyOff {
		return false
	}
	n, m := g.Order(), g.Size()
	if n < 2 || m == 0 {
		return false
	}
	return policy == SparsifyAlways || m > SparsifyCutoff*k*n
}

// sparseView builds the q-certificate probe view, falling back to g when
// the certificate would not actually shed edges (dense-regular graphs,
// where δ ≈ 2m/n keeps every edge in the first δ forests).
func sparseView(g *graph.Graph, k, q int, policy Sparsify) (*graph.Graph, bool) {
	if !sparsifyEligible(g, k, policy) {
		return g, false
	}
	cert := graph.SparseCertificate(g, q)
	if cert.Size() >= g.Size() && policy != SparsifyAlways {
		return g, false
	}
	mSparsifyPasses.Inc()
	mSparsifyKept.Add(int64(cert.Size()))
	mSparsifyDropped.Add(int64(g.Size() - cert.Size()))
	return cert, true
}

// DiameterSlack is the additive slack allowed on top of 2*log_{k-1}(n) when
// evaluating P4. The constructions in this repository satisfy the bound with
// slack 2; the default leaves headroom for the k-diamond clique hop and the
// added-leaf level.
const DiameterSlack = 3

// Report holds the outcome of verifying every LHG property of a graph for a
// target connectivity k.
type Report struct {
	N int // number of nodes
	M int // number of edges
	K int // target connectivity

	NodeConnectivity int  // exact κ(G)
	EdgeConnectivity int  // exact λ(G)
	KNodeConnected   bool // P1: κ >= k
	KLinkConnected   bool // P2: λ >= k

	LinkMinimal   bool       // P3
	ViolatingEdge graph.Edge // a removable edge when P3 fails
	hasViolation  bool

	// RestrictedEdgeConnectivity is λ′(G) — the smallest edge cut that
	// disconnects G without isolating a node — when PropRestrictedEdge is
	// selected; -1 when λ′ is undefined for g (stars, triangles, graphs
	// with isolated nodes). Zero when unchecked.
	RestrictedEdgeConnectivity int
	// SuperEdgeConnected reports (when PropSuperEdge is selected) that
	// every minimum edge cut isolates a single node: λ ≥ 1, λ = δ, and
	// λ′ > λ or λ′ undefined.
	SuperEdgeConnected bool

	Diameter      int     // exact diameter (-1 if disconnected)
	DiameterBound int     // the bound used for P4
	LogDiameter   bool    // P4
	Regular       bool    // P5
	MinDegree     int     // smallest degree
	MaxDegree     int     // largest degree
	AvgPathLen    float64 // mean shortest-path length (-1 if disconnected)

	// Workers is the goroutine budget the run used (1 = serial).
	Workers int `json:"workers"`
	// Checked records which properties this run computed (PropAll for the
	// full report). Fields of unchecked properties hold their zero values.
	Checked Properties `json:"checked"`
	// Phases records per-phase wall time in execution order. Probe counts
	// are filled from the metrics registry when the obs sink is enabled.
	Phases []PhaseTiming `json:"phases,omitempty"`
}

// PhaseTiming is the wall time (and, with the obs sink enabled, the
// max-flow probe count) of one verification phase.
type PhaseTiming struct {
	Phase  string  `json:"phase"`
	Ms     float64 `json:"ms"`
	Probes int64   `json:"probes,omitempty"`
}

// PhaseBreakdown renders the structured timing block printed by
// `lhcheck -v`: one line per phase plus a total.
func (r *Report) PhaseBreakdown() string {
	if len(r.Phases) == 0 {
		return ""
	}
	var b strings.Builder
	total := 0.0
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "  %-12s %10.2fms", p.Phase+":", p.Ms)
		if p.Probes > 0 {
			fmt.Fprintf(&b, "  (%d max-flow probes)", p.Probes)
		}
		b.WriteByte('\n')
		total += p.Ms
	}
	fmt.Fprintf(&b, "  %-12s %10.2fms  (workers: %d)\n", "total:", total, r.Workers)
	return b.String()
}

// IsLHG reports whether all four mandatory LHG properties hold.
func (r *Report) IsLHG() bool {
	return r.KNodeConnected && r.KLinkConnected && r.LinkMinimal && r.LogDiameter
}

// String renders a one-line summary of the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d k=%d κ=%d λ=%d diam=%d(bound %d)",
		r.N, r.M, r.K, r.NodeConnectivity, r.EdgeConnectivity, r.Diameter, r.DiameterBound)
	fmt.Fprintf(&b, " P1=%t P2=%t P3=%t P4=%t regular=%t", r.KNodeConnected,
		r.KLinkConnected, r.LinkMinimal, r.LogDiameter, r.Regular)
	if r.Checked.Has(PropRestrictedEdge) {
		fmt.Fprintf(&b, " λ'=%d", r.RestrictedEdgeConnectivity)
	}
	if r.Checked.Has(PropSuperEdge) {
		fmt.Fprintf(&b, " super=%t", r.SuperEdgeConnected)
	}
	return b.String()
}

// Verify computes the full report for g against target connectivity k,
// serially and without cancellation. It is exact and therefore
// O(n·maxflow) — intended for verification, not for hot paths. k must be
// at least 1 and less than n. Service and interactive callers should use
// VerifyCtx, which adds cancellation, a worker budget and property
// selection.
func Verify(g *graph.Graph, k int) (*Report, error) {
	return VerifyCtx(context.Background(), g, k, Options{Workers: 1})
}

// VerifyCtx is the context-first verification driver: it computes the
// selected properties (Options.Props; zero means all) for g against
// target connectivity k with the independent probes fanned across
// Options.Workers goroutines (<= 0 means GOMAXPROCS, 1 runs serially).
//
// Cancellation is honored at three granularities: between phases, between
// max-flow probes, and — inside each probe — between augmenting-path
// iterations, so even a verification dominated by one huge max-flow
// campaign stops within one augmentation of ctx firing. A canceled run
// joins its workers, returns ctx.Err() and leaves the pooled flow
// networks and BFS scratch reusable.
//
// The report is deterministic: identical values (and the same P3 witness
// edge) as the serial path, regardless of the worker count.
func VerifyCtx(ctx context.Context, g *graph.Graph, k int, opt Options) (*Report, error) {
	n := g.Order()
	if k < 1 {
		return nil, fmt.Errorf("check: connectivity target k=%d must be >= 1", k)
	}
	if n <= k {
		return nil, fmt.Errorf("check: k=%d must be < n=%d", k, n)
	}
	workers := graph.ClampWorkers(opt.Workers, 0)
	props := opt.Props.normalized()
	r := &Report{N: n, M: g.Size(), K: k, Workers: workers, Checked: props}
	r.MinDegree, _ = g.MinDegree()
	r.MaxDegree, _ = g.MaxDegree()
	r.Regular = g.IsRegular(k)
	mVerifyRuns.Inc()
	gVerifyWorkers.Set(int64(workers))

	// runPhase opens a span around one verification phase and fills
	// Report.Phases from the span's measured duration — the span is the
	// single timing source, whether or not tracing is enabled (see
	// trace.StartTimed). The phase context descends from the span so
	// flow-layer worker spans nest under their phase, the obs timers
	// observe the same duration, and max-flow probes are attributed via
	// the shared flow counter. A phase error (cancellation) aborts the
	// run.
	runPhase := func(name string, t *obs.Timer, fn func(context.Context) error) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		p0 := mFlowProbes.Value()
		pctx, span := trace.StartTimed(ctx, "check."+name)
		err := fn(pctx)
		probes := mFlowProbes.Value() - p0
		if sp := span.Span(); sp.Live() {
			sp.SetAttr(trace.Int("probes", probes))
		}
		d := span.End()
		t.Observe(d)
		r.Phases = append(r.Phases, PhaseTiming{
			Phase:  name,
			Ms:     float64(d) / 1e6,
			Probes: probes,
		})
		return err
	}

	// The κ/λ probes may run on a sparse certificate instead of g (see
	// SparseProbeView — the q = δ+1 choice keeps the exact values, not
	// just the verdicts, identical). P3 and P4 below always use g itself.
	probeView := g
	if props&(PropNodeConnectivity|PropLinkConnectivity) != 0 &&
		sparsifyEligible(g, k, opt.Sparsify) {
		if err := runPhase("sparsify", tPhaseSparsify, func(context.Context) error {
			probeView, _ = SparseProbeView(g, k, opt.Sparsify)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// The Monte Carlo prescreen runs on g itself (its cuts are cuts of g,
	// and λ(probeView) = λ(g) by the certificate choice, so the certified
	// upper bound transfers). Hints only reorder probes and tighten
	// early-exit limits; see flow.SweepHints.
	hints := flow.NoHints
	if props&(PropNodeConnectivity|PropLinkConnectivity) != 0 &&
		prescreenEligible(g, opt.Prescreen) {
		if err := runPhase("prescreen", tPhasePrescreen, func(pctx context.Context) error {
			hints = prescreenHints(g)
			return pctx.Err()
		}); err != nil {
			return nil, err
		}
	}

	if props.Has(PropNodeConnectivity) {
		if err := runPhase("kappa", tPhaseKappa, func(pctx context.Context) (err error) {
			r.NodeConnectivity, err = flow.VertexConnectivityHinted(pctx, probeView, workers, hints)
			return err
		}); err != nil {
			return nil, err
		}
		r.KNodeConnected = r.NodeConnectivity >= k
	}
	if props.Has(PropLinkConnectivity) {
		if err := runPhase("lambda", tPhaseLambda, func(pctx context.Context) (err error) {
			r.EdgeConnectivity, err = flow.EdgeConnectivityHinted(pctx, probeView, workers, hints)
			return err
		}); err != nil {
			return nil, err
		}
		r.KLinkConnected = r.EdgeConnectivity >= k
	}

	if props.Has(PropRestrictedEdge) {
		if err := runPhase("restricted", tPhaseRestricted, func(pctx context.Context) (err error) {
			r.RestrictedEdgeConnectivity, err = flow.RestrictedEdgeConnectivityCtx(pctx, g, workers)
			return err
		}); err != nil {
			return nil, err
		}
		if props.Has(PropSuperEdge) {
			lp := r.RestrictedEdgeConnectivity
			r.SuperEdgeConnected = r.EdgeConnectivity >= 1 &&
				r.EdgeConnectivity == r.MinDegree &&
				(lp == -1 || lp > r.EdgeConnectivity)
		}
	}

	if props.Has(PropLinkMinimality) {
		if err := runPhase("minimality", tPhaseMinimality, func(pctx context.Context) (err error) {
			r.LinkMinimal, err = verifyLinkMinimality(pctx, g, r, workers)
			return err
		}); err != nil {
			return nil, err
		}
	}

	if props.Has(PropDiameter) {
		if err := runPhase("distances", tPhaseDistances, func(pctx context.Context) (err error) {
			r.Diameter, r.AvgPathLen, err = g.DistanceStatsCtx(pctx, workers)
			return err
		}); err != nil {
			return nil, err
		}
		r.DiameterBound = DiameterBound(n, k)
		r.LogDiameter = r.Diameter >= 0 && r.Diameter <= r.DiameterBound
	}
	return r, nil
}

// DiameterBound returns the P4 acceptance bound 2*ceil(log_{k-1}(n)) +
// DiameterSlack. For k <= 2 the logarithm base degenerates, so the bound
// falls back to n (no graph can exceed it; P4 is then vacuous, which
// mirrors the paper's implicit k >= 3 assumption).
func DiameterBound(n, k int) int {
	if k <= 2 || n < 2 {
		return n
	}
	logv := math.Log(float64(n)) / math.Log(float64(k-1))
	return 2*int(math.Ceil(logv)) + DiameterSlack
}

// verifyLinkMinimality checks P3: every single-edge removal must reduce the
// node or link connectivity below its current value. For k-regular graphs
// this is immediate (removing an edge drops a degree below κ=λ=k), so the
// per-edge probes only run for irregular graphs.
//
// Each probe is two single-pair max flows on the masked CSR view
// (flow.EdgeIsRemovable) — connectivity under an edge removal can only drop
// through cuts separating that edge's endpoints, so no clone and no global
// re-sweep is needed. With workers > 1 the probes fan out across a worker
// pool.
func verifyLinkMinimality(ctx context.Context, g *graph.Graph, r *Report, workers int) (bool, error) {
	kappa, lambda := r.NodeConnectivity, r.EdgeConnectivity
	if kappa == 0 || lambda == 0 {
		return false, nil // already disconnected; nothing to preserve
	}
	if r.MaxDegree == lambda {
		// λ <= δ <= Δ == λ, so the graph is λ-regular: removing any edge
		// lowers a degree below λ and with it the link connectivity.
		return true, nil
	}
	edges := g.Edges()
	mP3EdgesProbed.Add(int64(len(edges)))
	removable, err := flow.EdgesRemovableCtx(ctx, g, edges, kappa, lambda, workers)
	if err != nil {
		return false, err
	}
	// Report the first removable edge in canonical order, so the parallel
	// and serial drivers return identical witnesses.
	for i, e := range edges {
		if removable[i] {
			r.ViolatingEdge = e
			r.hasViolation = true
			return false, nil
		}
	}
	return true, nil
}

// Violation returns the edge witnessing a P3 failure, if any.
func (r *Report) Violation() (graph.Edge, bool) {
	return r.ViolatingEdge, r.hasViolation
}

// QuickVerify checks only the boolean LHG properties with early-exit flows
// (no exact connectivity values, no P3 edge sweep for regular graphs, no
// average path length). It is the fast path used by large sweeps.
func QuickVerify(g *graph.Graph, k int) (bool, error) {
	return QuickVerifyCtx(context.Background(), g, k)
}

// QuickVerifyCtx is QuickVerify under a context: cancellation is polled
// between probes and between augmenting-path iterations, and surfaces as
// ctx.Err().
func QuickVerifyCtx(ctx context.Context, g *graph.Graph, k int) (bool, error) {
	return QuickVerifyOpts(ctx, g, k, Options{})
}

// QuickVerifyOpts is QuickVerifyCtx with explicit Options. Only the
// Sparsify policy is consulted — the quick path is inherently serial and
// always checks every property. Because it only needs the boolean "≥ k"
// verdicts, its certificate uses q = k (not δ+1): κ(G) >= k iff
// κ(cert_k) >= k, and likewise for λ, so the verdict is unchanged while
// the view is as small as the NI bound allows.
func QuickVerifyOpts(ctx context.Context, g *graph.Graph, k int, opt Options) (bool, error) {
	n := g.Order()
	if k < 1 || n <= k {
		return false, fmt.Errorf("check: invalid pair n=%d k=%d", n, k)
	}
	mQuickRuns.Inc()
	if k >= 2 {
		// Linear-time pre-filter: a single articulation point or bridge
		// already refutes 2-connectivity, far cheaper than max-flow.
		if len(g.ArticulationPoints()) > 0 || len(g.Bridges()) > 0 {
			return false, nil
		}
	}
	if prescreenEligible(g, opt.Prescreen) {
		// A contraction round that surfaces a real cut below k refutes P2
		// outright — the cut is certified, no flow needed to confirm it.
		if h := prescreenHints(g); h.Upper >= 0 && h.Upper < k {
			return false, nil
		}
	}
	view, _ := sparseView(g, k, k, opt.Sparsify)
	if ok, err := flow.IsKNodeConnectedCtx(ctx, view, k); err != nil || !ok {
		return false, err
	}
	if ok, err := flow.IsKEdgeConnectedCtx(ctx, view, k); err != nil || !ok {
		return false, err
	}
	diam, _, err := g.DistanceStatsCtx(ctx, 1)
	if err != nil {
		return false, err
	}
	if diam < 0 || diam > DiameterBound(n, k) {
		return false, nil
	}
	if g.IsRegular(k) {
		return true, nil // P3 immediate for k-regular k-connected graphs
	}
	for _, e := range g.Edges() {
		mP3EdgesProbed.Inc()
		removable, err := flow.EdgeIsRemovableCtx(ctx, g, e, k, k)
		if err != nil {
			return false, err
		}
		if removable {
			return false, nil
		}
	}
	return true, nil
}

// MooreDiameterLowerBound returns the smallest diameter any graph with n
// nodes and maximum degree k can possibly have (the Moore bound):
// n <= 1 + k·Σ_{i=0}^{D-1}(k-1)^i. The LHG constructions sit within a
// small constant factor of this optimum, which is the content of E10's
// comparison column.
func MooreDiameterLowerBound(n, k int) int {
	if n <= 1 {
		return 0
	}
	if k <= 1 {
		return n - 1
	}
	if k == 2 {
		return (n - 1 + 1) / 2 // a path/cycle: ceil((n-1)/2) for cycles
	}
	reach := 1
	layer := k
	for d := 1; ; d++ {
		reach += layer
		if reach >= n {
			return d
		}
		layer *= k - 1
	}
}

package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"lhg/internal/obs/trace"
)

// DebugHandler returns the debug mux served by the -http CLI flag:
//
//	/debug/vars    expvar JSON (includes the lhg_metrics snapshot)
//	/metrics       Prometheus text exposition
//	/debug/trace   span flight recorder as Chrome trace_event JSON
//	/debug/pprof/  the standard pprof index and profiles
//
// The pprof handlers are mounted explicitly rather than via the
// net/http/pprof side-effect import so nothing leaks onto
// http.DefaultServeMux.
func DebugHandler() http.Handler {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w)
	})
	mux.Handle("/debug/trace", trace.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug endpoint on addr (e.g. "localhost:6060" or
// ":0" for an ephemeral port) in a background goroutine. It returns the
// bound address and a stop function that shuts the listener down.
func Serve(addr string) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: DebugHandler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Close, nil
}

package core

// Jenkins–Demers operational construction (ICDCS 2001), as quoted by
// Baldoni et al. §4.4:
//
//	"The construction consists of k copies of a tree whose root node has k
//	 children, and whose other interior nodes mostly have k-1 children
//	 (except for at most k interior nodes just above the leaf nodes, which
//	 may have up to k+1 children). These trees are then pasted together at
//	 the leaves — i.e. each leaf is a leaf of all k trees."
//
// Interpretation (documented substitution, see DESIGN.md): an exceptional
// interior node takes exactly two extra leaves (k+1 children instead of
// k-1); at most k interior — i.e. non-root — nodes with leaf children may
// be exceptional. This is the only reading consistent with §4.4's claim
// that, for every k, JD cannot build any pair with an odd offset such as
// n = 2k + 2α(k-1) + 3: the reachable sizes are exactly
//
//	n = 2k + (I-1)·2(k-1) + 2β,  0 <= β <= min(k, #interior nodes above leaves).
//
// Every JD graph satisfies the K-TREE constraint (each exception node adds
// 2 <= 2k-3 leaves for k >= 3), but K-TREE reaches every n >= 2k while JD
// leaves infinitely many gaps per k — the motivation for K-TREE.

// JD holds a compiled Jenkins–Demers LHG with its blueprint and the
// decomposition parameters of the pair (n,k).
type JD struct {
	N, K  int
	Alpha int // number of leaf->internal conversions (I-1)
	Beta  int // number of exceptional interior nodes (2 extra leaves each)
	Blue  *Blueprint
	Real  *Realization
}

// BuildJD constructs the Jenkins–Demers LHG for the pair (n,k), or fails
// with ErrNotConstructible when the operational rule cannot reach n.
func BuildJD(n, k int) (*JD, error) {
	if err := validatePair("JD", n, k); err != nil {
		return nil, err
	}
	alpha, beta, ok := jdDecompose(n, k)
	if !ok {
		return nil, notConstructible("JD", n, k,
			"n is not reachable by the Jenkins-Demers rule (n = 2k + 2a(k-1) + 2b, b <= min(k, interior nodes above leaves))")
	}
	s := newShape(k)
	for c := 0; c < alpha; c++ {
		if err := s.convert(); err != nil {
			return nil, err
		}
	}
	hosts := s.interiorAboveLeaves()
	if len(hosts) < beta {
		return nil, notConstructible("JD", n, k, "not enough interior nodes above the leaves")
	}
	for i := 0; i < beta; i++ {
		s.addLeaf(hosts[i], true)
		s.addLeaf(hosts[i], true)
	}
	real, err := s.b.Compile()
	if err != nil {
		return nil, err
	}
	return &JD{N: n, K: k, Alpha: alpha, Beta: beta, Blue: s.b, Real: real}, nil
}

// jdDecompose searches for a feasible (alpha, beta) with
// n = 2k + alpha·2(k-1) + 2·beta and beta <= min(k, hosts(alpha)).
// It prefers the largest feasible alpha (fewest exception nodes).
func jdDecompose(n, k int) (alpha, beta int, ok bool) {
	rem := n - 2*k
	if rem < 0 || rem%2 != 0 {
		return 0, 0, false
	}
	for a := rem / (2 * (k - 1)); a >= 0; a-- {
		left := rem - a*2*(k-1)
		if left%2 != 0 {
			continue
		}
		b := left / 2
		if b > k {
			continue
		}
		if b > jdHostCount(k, a) {
			continue
		}
		return a, b, true
	}
	return 0, 0, false
}

// jdHostCount returns how many non-root interior nodes have at least one
// leaf child after `alpha` BFS-order conversions of the minimal tree.
func jdHostCount(k, alpha int) int {
	s := newShape(k)
	for c := 0; c < alpha; c++ {
		if err := s.convert(); err != nil {
			return 0
		}
	}
	return len(s.interiorAboveLeaves())
}

// ExistsJD is the characteristic function of the Jenkins–Demers rule under
// the interpretation above: true iff the decomposition search succeeds.
func ExistsJD(n, k int) bool {
	if k < 3 || n < 2*k {
		return false
	}
	_, _, ok := jdDecompose(n, k)
	return ok
}

// RegularJD reports whether the JD rule yields a k-regular graph for
// (n,k): exception nodes have degree k+2, so only β = 0 instances are
// regular — exactly the K-TREE regular set n = 2k + 2α(k-1).
func RegularJD(n, k int) bool {
	if k < 3 || n < 2*k {
		return false
	}
	return (n-2*k)%(2*(k-1)) == 0
}

package graph

import (
	"math/rand"
	"testing"
)

// randomCertGraph draws a deterministic G(n, p‰) instance from seed.
func randomCertGraph(t *testing.T, n int, perMille int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(1000) < perMille {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Freeze()
}

// componentCount returns the number of connected components of g.
func componentCount(g *Graph) int {
	n := g.Order()
	seen := make([]bool, n)
	count := 0
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		count++
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			g.EachNeighbor(u, func(w int) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			})
		}
	}
	return count
}

func isSubgraph(t *testing.T, sub, g *Graph) {
	t.Helper()
	if sub.Order() != g.Order() {
		t.Fatalf("certificate has %d nodes, graph %d", sub.Order(), g.Order())
	}
	for _, e := range sub.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("certificate edge (%d,%d) not in the graph", e.U, e.V)
		}
	}
}

// TestSparseCertificateStructure pins the structural guarantees on random
// graphs: the certificate is a spanning subgraph, has at most k(n-1)
// edges, nests monotonically in k, and its first forest is a maximal
// spanning forest (same components as g, forest-sized edge count).
func TestSparseCertificateStructure(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, perMille := range []int{50, 200, 600, 1000} {
			g := randomCertGraph(t, 24, perMille, seed)
			n := g.Order()
			comps := componentCount(g)
			prev := New(n)
			for k := 1; k <= 6; k++ {
				cert := SparseCertificate(g, k)
				isSubgraph(t, cert, g)
				if cert.Size() > k*(n-1) {
					t.Fatalf("seed=%d p=%d k=%d: %d edges > k(n-1)=%d",
						seed, perMille, k, cert.Size(), k*(n-1))
				}
				if componentCount(cert) != comps {
					t.Fatalf("seed=%d p=%d k=%d: certificate has %d components, graph %d",
						seed, perMille, k, componentCount(cert), comps)
				}
				isSubgraph(t, prev, cert) // cert_k ⊆ cert_{k+1}
				prev = cert
			}
			f1 := SparseCertificate(g, 1)
			if f1.Size() != n-comps {
				t.Fatalf("seed=%d p=%d: F1 has %d edges, want spanning-forest %d",
					seed, perMille, f1.Size(), n-comps)
			}
		}
	}
}

// TestSparseCertificateDegenerate covers the edge cases: empty graphs,
// k < 1, complete graphs (certificate is g itself) and k past the largest
// forest index.
func TestSparseCertificateDegenerate(t *testing.T) {
	if got := SparseCertificate(New(0), 3); got.Order() != 0 {
		t.Fatalf("empty graph: %v", got)
	}
	g := randomCertGraph(t, 10, 500, 1)
	if got := SparseCertificate(g, 0); got.Size() != 0 || got.Order() != 10 {
		t.Fatalf("k=0 must be edgeless on the same nodes: %v", got)
	}
	complete := randomCertGraph(t, 8, 1000, 1)
	if got := SparseCertificate(complete, 7); got != complete {
		t.Fatal("k >= Δ must return the graph itself")
	}
	if got := SparseCertificate(g, 100); got != g {
		t.Fatal("huge k must return the graph itself")
	}
}

// TestSparseCertificateDeterministic: two runs over the same graph yield
// the identical edge set.
func TestSparseCertificateDeterministic(t *testing.T) {
	g := randomCertGraph(t, 32, 400, 7)
	a := SparseCertificate(g, 3)
	b := SparseCertificate(g, 3)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("sizes differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

// TestForestIndicesPartition: the forest decomposition labels every edge
// exactly once with an index in [1, Δ], and the edges of index <= i form
// exactly SparseCertificate(g, i).
func TestForestIndicesPartition(t *testing.T) {
	g := randomCertGraph(t, 20, 500, 3)
	forest := forestIndices(g)
	if len(forest) != g.Size() {
		t.Fatalf("%d labels for %d edges", len(forest), g.Size())
	}
	maxDeg, _ := g.MaxDegree()
	for i, f := range forest {
		if f < 1 || int(f) > maxDeg {
			t.Fatalf("edge %d has forest index %d outside [1,%d]", i, f, maxDeg)
		}
	}
	for k := 1; k <= 4; k++ {
		want := 0
		for _, f := range forest {
			if int(f) <= k {
				want++
			}
		}
		if got := SparseCertificate(g, k).Size(); got != want {
			t.Fatalf("k=%d: certificate %d edges, forest labels say %d", k, got, want)
		}
	}
}

package overlay

import (
	"testing"
	"testing/quick"

	"lhg/internal/core"
	"lhg/internal/flood"
	"lhg/internal/graph"
)

func TestAsyncBroadcastUnitLatencyMatchesRounds(t *testing.T) {
	kt, err := core.BuildKTree(30, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := kt.Real.Graph
	sync, err := flood.Run(g, 0, flood.Failures{})
	if err != nil {
		t.Fatal(err)
	}
	async, err := AsyncBroadcast(g, 0, flood.Failures{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if async.MakeSpan != int64(sync.Rounds) {
		t.Fatalf("makespan %d != rounds %d", async.MakeSpan, sync.Rounds)
	}
	if async.Messages != sync.Messages {
		t.Fatalf("messages %d != %d", async.Messages, sync.Messages)
	}
	for v := range async.Times {
		if async.Times[v] != int64(sync.FirstHeard[v]) {
			t.Fatalf("node %d delivered at %d, sync round %d", v, async.Times[v], sync.FirstHeard[v])
		}
	}
}

func TestAsyncBroadcastWithFailures(t *testing.T) {
	kt, err := core.BuildKTree(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := kt.Real.Graph
	fails := flood.Failures{Nodes: []int{4, 9}}
	res, err := AsyncBroadcast(g, 0, fails, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("3-connected graph must survive 2 crashes: %s", res)
	}
	if res.Alive != 18 || res.Delivered != 18 {
		t.Fatalf("alive=%d delivered=%d, want 18/18", res.Alive, res.Delivered)
	}
	for _, v := range fails.Nodes {
		if res.Times[v] != -1 {
			t.Fatalf("crashed node %d has delivery time %d", v, res.Times[v])
		}
	}
}

func TestAsyncBroadcastCustomLatency(t *testing.T) {
	// A path with latency 2 per hop: makespan is 2*(n-1).
	b := graph.NewBuilder(5)
	for v := 0; v+1 < 5; v++ {
		b.MustAddEdge(v, v+1)
	}
	g := b.Freeze()
	res, err := AsyncBroadcast(g, 0, flood.Failures{}, func(u, v int) int64 { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	if res.MakeSpan != 8 {
		t.Fatalf("makespan = %d, want 8", res.MakeSpan)
	}
}

func TestAsyncBroadcastErrors(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if _, err := AsyncBroadcast(g, 9, flood.Failures{}, nil); err == nil {
		t.Fatal("bad source must error")
	}
	if _, err := AsyncBroadcast(g, 0, flood.Failures{Nodes: []int{0}}, nil); err == nil {
		t.Fatal("crashed source must error")
	}
	if _, err := AsyncBroadcast(g, 0, flood.Failures{Nodes: []int{7}}, nil); err == nil {
		t.Fatal("bad crashed node must error")
	}
}

func TestPropertyAsyncEquivalentToSync(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%12) + 3
		b := graph.NewBuilder(n)
		state := uint64(seed) | 1
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if next()%3 == 0 {
					b.MustAddEdge(u, v)
				}
			}
		}
		g := b.Freeze()
		syncRes, err := flood.Run(g, 0, flood.Failures{})
		if err != nil {
			return false
		}
		asyncRes, err := AsyncBroadcast(g, 0, flood.Failures{}, nil)
		if err != nil {
			return false
		}
		if asyncRes.Delivered != syncRes.Reached || asyncRes.Messages != syncRes.Messages {
			return false
		}
		for v := 0; v < n; v++ {
			if asyncRes.Times[v] != int64(syncRes.FirstHeard[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

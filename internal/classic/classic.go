// Package classic implements the richly connected topology families the
// papers' related work compares against: hypercubes, cube-connected
// cycles, and undirected de Bruijn graphs. All have logarithmic diameter
// and good connectivity — but, as the papers argue, they exist only for
// very restricted pairs (n,k): hypercubes need n = 2^k, cube-connected
// cycles are 3-regular with n = d·2^d, de Bruijn graphs need n = b^d.
// Experiment E22 quantifies this against the LHG constraints' full
// coverage of n >= 2k.
package classic

import (
	"fmt"

	"lhg/internal/graph"
)

// Hypercube returns Q_d: 2^d nodes, ids adjacent iff they differ in one
// bit. Q_d is d-regular, d-connected, with diameter d = log2(n).
func Hypercube(d int) (*graph.Graph, error) {
	if d < 1 || d > 20 {
		return nil, fmt.Errorf("classic: hypercube dimension %d out of [1,20]", d)
	}
	n := 1 << d
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.MustAddEdge(v, w)
			}
		}
	}
	return b.Freeze(), nil
}

// HypercubeExists reports whether a hypercube matches the pair (n,k):
// exactly when n = 2^k.
func HypercubeExists(n, k int) bool {
	return k >= 1 && k <= 20 && n == 1<<k
}

// CCC returns the cube-connected cycles network CCC(d) for d >= 3: each
// hypercube corner is replaced by a d-cycle whose members handle one
// dimension each. CCC(d) is 3-regular and 3-connected with n = d·2^d.
func CCC(d int) (*graph.Graph, error) {
	if d < 3 || d > 16 {
		return nil, fmt.Errorf("classic: CCC dimension %d out of [3,16]", d)
	}
	corners := 1 << d
	n := d * corners
	b := graph.NewBuilder(n)
	id := func(corner, pos int) int { return corner*d + pos }
	for corner := 0; corner < corners; corner++ {
		for pos := 0; pos < d; pos++ {
			// Cycle edge within the corner.
			b.MustAddEdge(id(corner, pos), id(corner, (pos+1)%d))
			// Hypercube edge along dimension pos.
			other := corner ^ (1 << pos)
			if corner < other {
				b.MustAddEdge(id(corner, pos), id(other, pos))
			}
		}
	}
	return b.Freeze(), nil
}

// CCCExists reports whether CCC matches the pair (n,k): k must be 3 and
// n = d·2^d for some d >= 3.
func CCCExists(n, k int) bool {
	if k != 3 {
		return false
	}
	for d := 3; d <= 16; d++ {
		if d*(1<<d) == n {
			return true
		}
		if d*(1<<d) > n {
			break
		}
	}
	return false
}

// DeBruijn returns the undirected de Bruijn graph UB(b,d) on n = b^d
// nodes: x is adjacent to (b·x + c) mod n and its inverses, for
// c = 0..b-1, with self-loops discarded. Its minimum degree is 2b-2 and
// its connectivity is 2b-2 (Imase–Soneoka–Okada), so it serves the pair
// (b^d, 2b-2).
func DeBruijn(b, d int) (*graph.Graph, error) {
	if b < 2 || b > 8 {
		return nil, fmt.Errorf("classic: de Bruijn base %d out of [2,8]", b)
	}
	n, ok := powCapped(b, d, 1<<22)
	if d < 2 || !ok {
		return nil, fmt.Errorf("classic: de Bruijn dimension %d out of range", d)
	}
	bld := graph.NewBuilder(n)
	for x := 0; x < n; x++ {
		for c := 0; c < b; c++ {
			y := (b*x + c) % n
			if x != y {
				bld.MustAddEdge(x, y)
			}
		}
	}
	return bld.Freeze(), nil
}

// DeBruijnExists reports whether a de Bruijn graph matches the pair (n,k):
// k = 2b-2 and n = b^d for some base b and d >= 2.
func DeBruijnExists(n, k int) bool {
	if k < 2 || k%2 != 0 {
		return false
	}
	b := k/2 + 1
	if b < 2 || b > 8 {
		return false
	}
	for v := b * b; ; v *= b {
		if v == n {
			return true
		}
		if v > n || v > 1<<22 {
			return false
		}
	}
}

// powCapped returns b^d, reporting false once the value exceeds limit
// (guarding against integer overflow).
func powCapped(b, d, limit int) (int, bool) {
	out := 1
	for i := 0; i < d; i++ {
		if out > limit/b {
			return 0, false
		}
		out *= b
	}
	return out, true
}

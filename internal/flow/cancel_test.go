package flow

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// cancelLatency runs campaign, cancels its context after delay, and returns
// the error plus how long the campaign overstayed the cancellation signal.
func cancelLatency(t *testing.T, delay time.Duration, campaign func(context.Context) error) (error, time.Duration) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	canceledAt := make(chan time.Time, 1)
	go func() {
		time.Sleep(delay)
		canceledAt <- time.Now()
		cancel()
	}()
	err := campaign(ctx)
	returned := time.Now()
	return err, returned.Sub(<-canceledAt)
}

// TestVertexConnectivityCtxCancelsPromptly is the 100ms regression bound:
// cancellation is polled between augmenting-path iterations, so even on a
// dense graph whose campaign runs for seconds the call must return within
// 100ms of the signal, for both the serial and the parallel driver.
func TestVertexConnectivityCtxCancelsPromptly(t *testing.T) {
	// Complete graphs have no non-adjacent probe pairs, so κ needs a dense
	// graph that still leaves the Esfahanian–Hakimi sweep real work.
	g := completeBipartite(130, 130) // serial campaign runs for several seconds
	for _, workers := range []int{1, 4} {
		err, overstay := cancelLatency(t, 30*time.Millisecond, func(ctx context.Context) error {
			_, err := VertexConnectivityCtx(ctx, g, workers)
			return err
		})
		if err == nil {
			t.Fatalf("workers=%d: campaign finished before the cancel signal; grow the fixture", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if overstay > 100*time.Millisecond {
			t.Fatalf("workers=%d: campaign returned %v after cancellation, want <= 100ms", workers, overstay)
		}
	}
}

func TestEdgeConnectivityCtxCancelsPromptly(t *testing.T) {
	// A complete graph is dominated by one node, which would give the
	// shared-λ pass zero probes; the bipartite fixture keeps a whole side
	// in the dominating set so the campaign stays long.
	g := completeBipartite(250, 250)
	for _, workers := range []int{1, 4} {
		err, overstay := cancelLatency(t, 30*time.Millisecond, func(ctx context.Context) error {
			_, err := EdgeConnectivityCtx(ctx, g, workers)
			return err
		})
		if err == nil {
			t.Fatalf("workers=%d: campaign finished before the cancel signal; grow the fixture", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if overstay > 100*time.Millisecond {
			t.Fatalf("workers=%d: campaign returned %v after cancellation, want <= 100ms", workers, overstay)
		}
	}
}

// TestCtxAPIPreCanceled: an already-canceled context must short-circuit
// before any probe runs.
func TestCtxAPIPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := complete(40)
	if _, err := VertexConnectivityCtx(ctx, g, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("VertexConnectivityCtx: err = %v, want context.Canceled", err)
	}
	if _, err := EdgeConnectivityCtx(ctx, g, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("EdgeConnectivityCtx: err = %v, want context.Canceled", err)
	}
	if _, err := IsKNodeConnectedCtx(ctx, g, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("IsKNodeConnectedCtx: err = %v, want context.Canceled", err)
	}
	if _, err := EdgesRemovableCtx(ctx, g, g.Edges(), 39, 39, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("EdgesRemovableCtx: err = %v, want context.Canceled", err)
	}
}

// TestCancelDoesNotLeakWorkers: a canceled parallel campaign must wind down
// its worker pool completely.
func TestCancelDoesNotLeakWorkers(t *testing.T) {
	g := completeBipartite(130, 130)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		if _, err := VertexConnectivityCtx(ctx, g, 8); err == nil {
			t.Fatal("campaign finished before the cancel signal; grow the fixture")
		}
		cancel()
	}
	// Workers exit after wg.Wait in the driver, so any surplus here is a
	// real leak, modulo runtime background noise.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after canceled campaigns", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPooledNetworksSurviveCancellation: a canceled campaign returns its
// Dinic networks to the pool mid-flight; later campaigns drawing the same
// networks must still compute exact values.
func TestPooledNetworksSurviveCancellation(t *testing.T) {
	big := complete(120)
	for round := 0; round < 4; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		_, _ = VertexConnectivityCtx(ctx, big, 4) // poisoned run: canceled mid-sweep
		cancel()

		// Correctness after reuse, across several shapes and both drivers.
		if got, err := VertexConnectivityCtx(context.Background(), completeBipartite(5, 7), 1+round%2*3); err != nil || got != 5 {
			t.Fatalf("round %d: κ(K_{5,7}) = %d, %v; want 5", round, got, err)
		}
		if got, err := EdgeConnectivityCtx(context.Background(), cycle(9), 1); err != nil || got != 2 {
			t.Fatalf("round %d: λ(C_9) = %d, %v; want 2", round, got, err)
		}
		if got, err := VertexConnectivityCtx(context.Background(), twoTriangles(), 2); err != nil || got != 1 {
			t.Fatalf("round %d: κ(two triangles) = %d, %v; want 1", round, got, err)
		}
	}
}

// TestCtxWrappersMatchLegacyAPI pins the deprecated-path equivalence: the
// Background-context wrappers must agree with the ctx drivers exactly.
func TestCtxWrappersMatchLegacyAPI(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomGraph(12, seed)
		kCtx, err := VertexConnectivityCtx(context.Background(), g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if legacy := VertexConnectivity(g); legacy != kCtx {
			t.Fatalf("seed %d: VertexConnectivity = %d, Ctx = %d", seed, legacy, kCtx)
		}
		lCtx, err := EdgeConnectivityCtx(context.Background(), g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if legacy := EdgeConnectivity(g); legacy != lCtx {
			t.Fatalf("seed %d: EdgeConnectivity = %d, Ctx = %d", seed, legacy, lCtx)
		}
	}
}

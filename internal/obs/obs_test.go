package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// withSink enables the sink on a clean registry state for one test and
// restores the disabled default afterwards.
func withSink(t *testing.T) {
	t.Helper()
	Reset()
	Enable()
	t.Cleanup(func() {
		Disable()
		Reset()
	})
}

func TestCounterDisabledByDefault(t *testing.T) {
	Reset()
	c := NewCounter("test.disabled.counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter accumulated %d, want 0", got)
	}
}

func TestCounterEnabled(t *testing.T) {
	withSink(t)
	c := NewCounter("test.enabled.counter")
	c.Inc()
	c.Add(41)
	c.Add(-5) // negative deltas ignored: counters are monotone
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	withSink(t)
	a := NewCounter("test.idempotent")
	b := NewCounter("test.idempotent")
	if a != b {
		t.Fatal("same name must return the same counter handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles do not share state")
	}
}

func TestGaugeSetAndMax(t *testing.T) {
	withSink(t)
	g := NewGauge("test.gauge")
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	g.SetMax(3)
	if g.Value() != 7 {
		t.Fatalf("SetMax lowered the gauge to %d", g.Value())
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Fatalf("SetMax did not raise the gauge: %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	withSink(t)
	h := NewHistogram("test.hist", 1, 2, 4, 8)
	for _, v := range []int64{0, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 120 {
		t.Fatalf("sum = %d, want 120", h.Sum())
	}
	s := h.snapshot()
	want := []int64{2, 1, 1, 1, 2} // le1, le2, le4, le8, +Inf
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds must panic")
		}
	}()
	NewHistogram("test.hist.bad", 5, 1)
}

func TestTimerSpan(t *testing.T) {
	withSink(t)
	tm := NewTimer("test.timer")
	s := tm.Start()
	time.Sleep(time.Millisecond)
	d := s.End()
	if d <= 0 {
		t.Fatal("span measured nothing")
	}
	if tm.Count() != 1 || tm.Total() < d {
		t.Fatalf("timer count=%d total=%v, want 1 and >= %v", tm.Count(), tm.Total(), d)
	}
}

func TestSpanInertWhenDisabled(t *testing.T) {
	Reset()
	tm := NewTimer("test.timer.disabled")
	s := tm.Start()
	if d := s.End(); d != 0 {
		t.Fatalf("disabled span measured %v", d)
	}
	if tm.Count() != 0 {
		t.Fatal("disabled span recorded")
	}
}

func TestCountersRaceSafe(t *testing.T) {
	withSink(t)
	c := NewCounter("test.race.counter")
	h := NewHistogram("test.race.hist", 10, 100)
	g := NewGauge("test.race.gauge")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i % 200))
				g.SetMax(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 7999 {
		t.Fatalf("gauge max = %d, want 7999", g.Value())
	}
}

func TestResetClearsValuesKeepsHandles(t *testing.T) {
	withSink(t)
	c := NewCounter("test.reset.counter")
	h := NewHistogram("test.reset.hist", 1)
	c.Add(5)
	h.Observe(3)
	Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset left values behind")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("handle dead after Reset")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	withSink(t)
	NewCounter("test.json.counter").Add(9)
	NewHistogram("test.json.hist", 2, 4).Observe(3)
	var buf bytes.Buffer
	if err := WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Counters["test.json.counter"] != 9 {
		t.Fatalf("counter missing from report: %+v", rep.Counters)
	}
	if rep.Histograms["test.json.hist"].Count != 1 {
		t.Fatalf("histogram missing from report: %+v", rep.Histograms)
	}
	if !rep.Enabled || rep.GOMAXPROCS < 1 || rep.GoVersion == "" {
		t.Fatalf("report metadata incomplete: %+v", rep)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	withSink(t)
	NewCounter("test.prom.counter").Add(3)
	NewGauge("test.prom.gauge").Set(4)
	NewHistogram("test.prom.hist", 1, 10).Observe(5)
	NewTimer("test.prom.timer").Observe(2 * time.Millisecond)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lhg_test_prom_counter counter",
		"lhg_test_prom_counter 3",
		"# TYPE lhg_test_prom_gauge gauge",
		"lhg_test_prom_gauge 4",
		"lhg_test_prom_hist_bucket{le=\"10\"} 1",
		"lhg_test_prom_hist_bucket{le=\"+Inf\"} 1",
		"lhg_test_prom_hist_count 1",
		"lhg_test_prom_timer_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestProgressThrottlesAndFinishes(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep", 10)
	for i := 0; i < 10; i++ {
		p.Add(1)
	}
	p.Finish()
	out := buf.String()
	if !strings.Contains(out, "sweep: 10/10 (100.0%)") {
		t.Fatalf("missing final line: %q", out)
	}
	// Throttled: far fewer than 10 lines.
	if n := strings.Count(out, "\n"); n > 3 {
		t.Fatalf("progress printed %d lines for 10 adds within the interval", n)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Add(1) // must not panic
	p.Finish()
	p2 := NewProgress(nil, "x", 0)
	p2.Add(1)
	p2.Finish()
}

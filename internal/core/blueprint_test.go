package core

import (
	"strings"
	"testing"
)

func TestPositionKindString(t *testing.T) {
	tests := []struct {
		kind PositionKind
		want string
	}{
		{kind: Internal, want: "internal"},
		{kind: SharedLeaf, want: "shared-leaf"},
		{kind: UnsharedLeaf, want: "unshared-leaf"},
		{kind: PositionKind(0), want: "invalid"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Fatalf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestBlueprintCounting(t *testing.T) {
	kd, err := BuildKDiamond(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := kd.Blue
	if b.Internals() != 1 {
		t.Fatalf("Internals = %d, want 1", b.Internals())
	}
	if b.SharedLeaves() != 2 {
		t.Fatalf("SharedLeaves = %d, want 2", b.SharedLeaves())
	}
	if b.UnsharedLeaves() != 1 {
		t.Fatalf("UnsharedLeaves = %d, want 1", b.UnsharedLeaves())
	}
	if b.NodeCount() != 8 {
		t.Fatalf("NodeCount = %d, want 8", b.NodeCount())
	}
	if b.Height() != 1 {
		t.Fatalf("Height = %d, want 1", b.Height())
	}
}

func TestBlueprintHeightGrows(t *testing.T) {
	// α = k conversions fill level 1; height becomes 2.
	k := 3
	kt, err := BuildKTree(2*k+2*k*(k-1), k) // α = k
	if err != nil {
		t.Fatal(err)
	}
	if kt.Blue.Height() != 2 {
		t.Fatalf("Height = %d, want 2", kt.Blue.Height())
	}
}

func TestCompileLabels(t *testing.T) {
	kd, err := BuildKDiamond(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	var roots, leaves, members int
	for _, label := range kd.Real.Labels {
		switch {
		case strings.HasPrefix(label, "R"):
			roots++
		case strings.HasPrefix(label, "L"):
			leaves++
		case strings.HasPrefix(label, "U"):
			members++
		}
	}
	if roots != 3 || leaves != 2 || members != 3 {
		t.Fatalf("labels R=%d L=%d U=%d, want 3/2/3", roots, leaves, members)
	}
	if len(kd.Real.Labels) != 8 {
		t.Fatalf("labels cover %d nodes, want 8", len(kd.Real.Labels))
	}
}

func TestCompileInternalLabels(t *testing.T) {
	kt, err := BuildKTree(10, 3) // α=1: one internal node beyond the root
	if err != nil {
		t.Fatal(err)
	}
	foundInternal := false
	for _, label := range kt.Real.Labels {
		if strings.HasPrefix(label, "N") && strings.Contains(label, ".") {
			foundInternal = true
		}
	}
	if !foundInternal {
		t.Fatal("expected N<p>.<i> labels for non-root internal copies")
	}
}

func TestCompileRejectsInvalidBlueprints(t *testing.T) {
	tests := []struct {
		name string
		b    *Blueprint
	}{
		{
			name: "bad k",
			b:    &Blueprint{K: 0, Parent: []int{-1}, Children: [][]int{nil}, Kind: []PositionKind{Internal}, Depth: []int{0}, Added: []bool{false}},
		},
		{
			name: "invalid kind",
			b: &Blueprint{
				K:        3,
				Parent:   []int{-1, 0},
				Children: [][]int{{1}, nil},
				Kind:     []PositionKind{Internal, PositionKind(99)},
				Depth:    []int{0, 1},
				Added:    []bool{false, false},
			},
		},
		{
			name: "leaf parent",
			b: &Blueprint{
				K:        3,
				Parent:   []int{-1, 0, 1},
				Children: [][]int{{1}, {2}, nil},
				Kind:     []PositionKind{Internal, SharedLeaf, SharedLeaf},
				Depth:    []int{0, 1, 2},
				Added:    []bool{false, false, false},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.b.Compile(); err == nil {
				t.Fatal("Compile succeeded, want error")
			}
		})
	}
}

func TestRealizationMappingsConsistent(t *testing.T) {
	kt, err := BuildKTree(14, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, r := kt.Blue, kt.Real
	seen := make(map[int]bool)
	record := func(id int) {
		if id < 0 || id >= r.Graph.Order() {
			t.Fatalf("node id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("node id %d assigned twice", id)
		}
		seen[id] = true
	}
	for p := 0; p < b.Positions(); p++ {
		switch b.Kind[p] {
		case Internal:
			for i := 0; i < b.K; i++ {
				record(r.CopyNode[i][p])
			}
			if r.LeafNode[p] != -1 {
				t.Fatalf("internal position %d has a leaf id", p)
			}
		case SharedLeaf:
			record(r.LeafNode[p])
			for i := 0; i < b.K; i++ {
				if r.CopyNode[i][p] != -1 {
					t.Fatalf("leaf position %d has copy ids", p)
				}
			}
		case UnsharedLeaf:
			for _, id := range r.GroupNode[p] {
				record(id)
			}
		}
	}
	if len(seen) != r.Graph.Order() {
		t.Fatalf("mapped %d ids, graph has %d", len(seen), r.Graph.Order())
	}
}

// TestTreeCopiesAreIsomorphicTrees: within one copy, internal nodes and
// their tree edges form a connected acyclic subgraph of the right size.
func TestTreeCopiesAreIsomorphicTrees(t *testing.T) {
	kt, err := BuildKTree(18, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, r := kt.Blue, kt.Real
	for i := 0; i < b.K; i++ {
		edges := 0
		for p := 1; p < b.Positions(); p++ {
			parent := b.Parent[p]
			var u, v int
			u = r.CopyNode[i][parent]
			switch b.Kind[p] {
			case Internal:
				v = r.CopyNode[i][p]
			case SharedLeaf:
				v = r.LeafNode[p]
			case UnsharedLeaf:
				v = r.GroupNode[p][i]
			}
			if !r.Graph.HasEdge(u, v) {
				t.Fatalf("copy %d: tree edge for position %d missing in graph", i, p)
			}
			edges++
		}
		if edges != b.Positions()-1 {
			t.Fatalf("copy %d has %d tree edges, want %d", i, edges, b.Positions()-1)
		}
	}
}

package flow

import (
	"context"
	"sync"
	"sync/atomic"

	"lhg/internal/graph"
	"lhg/internal/obs"
)

// Work-stealing probe scheduler.
//
// The fan-out drivers distribute a fixed index set [0, total) of probes
// whose costs can be wildly skewed: one near-critical pair can cost a full
// Dinic run while its neighbors early-exit after one BFS. A single shared
// counter balances load but destroys locality (adjacent probe targets share
// BFS frontiers and cache lines in the CSR graph); a static split keeps
// locality but strands workers behind one expensive probe. The stealer
// keeps both properties: every worker owns a contiguous range it consumes
// front-to-back (locality), and a worker that drains its range steals the
// top half of the largest remaining victim range (balance). Ranges are
// packed (lo,hi) into one uint64 and moved by CAS, so both the owner's pop
// and a thief's split are lock-free and O(1).
//
// Because the task set is fixed — no probe enqueues another probe — an
// empty pass over all victims means the work is genuinely done, so workers
// never park: termination needs no handshake beyond the final nil fetch.
var (
	mStealAttempts = obs.NewCounter("flow.steal.attempts")
	mStealHits     = obs.NewCounter("flow.steal.hits")
	mStealProbes   = obs.NewCounter("flow.steal.probes")
)

// stealQueue is the per-sweep scheduler state: one packed (lo,hi) range per
// worker. Padding keeps each slot on its own cache line so an owner's pop
// never false-shares with a neighbor's steal.
type stealQueue struct {
	slots []paddedRange
}

type paddedRange struct {
	r atomic.Uint64
	_ [56]byte
}

func packRange(lo, hi int) uint64 { return uint64(lo)<<32 | uint64(uint32(hi)) }
func unpackRange(r uint64) (lo, hi int) {
	return int(r >> 32), int(uint32(r))
}

// newStealQueue splits [0, total) into one contiguous range per worker.
// The split is even (remainder spread over the first ranges), which is the
// same initial assignment a static partition would make — stealing only
// changes who finishes the tail.
func newStealQueue(total, workers int) *stealQueue {
	q := &stealQueue{slots: make([]paddedRange, workers)}
	chunk, rem := total/workers, total%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		q.slots[w].r.Store(packRange(lo, hi))
		lo = hi
	}
	return q
}

// next returns the next probe index for worker w, stealing when w's own
// range is empty. ok=false means the whole queue is drained.
func (q *stealQueue) next(w int) (idx int, ok bool) {
	// Fast path: pop the front of our own range.
	for {
		r := q.slots[w].r.Load()
		lo, hi := unpackRange(r)
		if lo >= hi {
			break
		}
		if q.slots[w].r.CompareAndSwap(r, packRange(lo+1, hi)) {
			return lo, true
		}
	}
	return q.steal(w)
}

// steal scans for the victim with the most remaining work and takes the
// top half of its range (the half the owner would reach last, preserving
// the owner's locality). It retries the scan until every slot reads empty
// in one pass, which for a fixed task set is a stable termination signal:
// a lost CAS race means someone else made progress.
func (q *stealQueue) steal(w int) (idx int, ok bool) {
	for {
		mStealAttempts.Inc()
		victim, victimLoad := -1, 0
		var victimRange uint64
		for v := range q.slots {
			if v == w {
				continue
			}
			r := q.slots[v].r.Load()
			lo, hi := unpackRange(r)
			if hi-lo > victimLoad {
				victim, victimLoad, victimRange = v, hi-lo, r
			}
		}
		if victim < 0 {
			return 0, false
		}
		lo, hi := unpackRange(victimRange)
		mid := lo + (hi-lo+1)/2 // thief takes [mid, hi); a 1-element range moves whole
		if mid == hi {
			mid = lo
		}
		if !q.slots[victim].r.CompareAndSwap(victimRange, packRange(lo, mid)) {
			continue // raced with the owner or another thief; rescan
		}
		mStealHits.Inc()
		// Keep one index, park the rest as our own range.
		q.slots[w].r.Store(packRange(mid+1, hi))
		return mid, true
	}
}

// runStealing fans probes [0, total) across `workers` goroutines scheduled
// by the work stealer. Each worker goroutine calls `body` once; body pulls
// indices from next() until it returns ok=false (queue drained) and owns
// whatever per-worker state it needs (pooled networks, built topologies).
// spanName labels the per-worker trace spans. Cancellation is the body's
// concern between probes (body sees ctx); runStealing always joins every
// worker before returning.
func runStealing(ctx context.Context, spanName string, total, workers int, body func(w int, next func() (int, bool))) {
	workers = graph.ClampWorkers(workers, total)
	if workers < 1 || total == 0 {
		return
	}
	q := newStealQueue(total, workers)
	mWorkersSpawned.Add(int64(workers))
	var executed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer tWorkerBusy.Start().End()
			wsp := workerSpan(ctx, spanName, w)
			defer wsp.End()
			done := 0
			body(w, func() (int, bool) {
				if ctx.Err() != nil {
					return 0, false
				}
				idx, ok := q.next(w)
				if ok {
					done++
					probeProgress(wsp, done-1, total)
				}
				return idx, ok
			})
			executed.Add(int64(done))
		}(w)
	}
	wg.Wait()
	mStealProbes.Add(executed.Load())
}

package check

import (
	"context"
	"testing"

	"lhg/internal/graph"
	"lhg/internal/harary"
	"lhg/internal/obs"
)

// denseFixture builds the core–periphery graph the sparsify path is made
// for: Harary H(k,n) — which pins δ = k and κ = λ = k — plus a clique on
// the first `core` nodes, which inflates m far past k·n without touching
// the minimum degree. The (δ+1)-certificate keeps O(k·n) edges out of
// O(core²), so the fast path triggers under SparsifyAuto.
func denseFixture(tb testing.TB, n, k, core int) *graph.Graph {
	tb.Helper()
	h, err := harary.Build(n, k)
	if err != nil {
		tb.Fatal(err)
	}
	b := h.Thaw()
	for u := 0; u < core; u++ {
		for v := u + 1; v < core; v++ {
			if !b.HasEdge(u, v) {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Freeze()
}

// TestSparsifyTriggersOnDenseFixture proves the fast path actually runs
// on a dense graph (the sparsify phase appears, the counters move, the
// certificate is much smaller than the graph) and that every reported
// value — κ, λ, diameter, verdicts — matches the full pipeline.
func TestSparsifyTriggersOnDenseFixture(t *testing.T) {
	withSink(t)
	const n, k, core = 96, 4, 40
	g := denseFixture(t, n, k, core)
	if g.Size() <= SparsifyCutoff*k*n {
		t.Fatalf("fixture too sparse to trigger the fast path: m=%d", g.Size())
	}
	ctx := context.Background()
	props := PropNodeConnectivity | PropLinkConnectivity | PropDiameter

	full, err := VerifyCtx(ctx, g, k, Options{Workers: 1, Props: props, Sparsify: SparsifyOff})
	if err != nil {
		t.Fatal(err)
	}
	if c := obs.Counters()["check.sparsify.passes"]; c != 0 {
		t.Fatalf("SparsifyOff must not build certificates, passes=%d", c)
	}

	fast, err := VerifyCtx(ctx, g, k, Options{Workers: 1, Props: props}) // zero = SparsifyAuto
	if err != nil {
		t.Fatal(err)
	}
	counters := obs.Counters()
	if counters["check.sparsify.passes"] != 1 {
		t.Fatalf("auto sparsify did not trigger: passes=%d", counters["check.sparsify.passes"])
	}
	kept, dropped := counters["check.sparsify.edges_kept"], counters["check.sparsify.edges_dropped"]
	if kept+dropped != int64(g.Size()) {
		t.Fatalf("kept %d + dropped %d != m=%d", kept, dropped, g.Size())
	}
	if kept > int64((k+1)*(n-1)) {
		t.Fatalf("certificate kept %d edges, bound (δ+1)(n-1)=%d", kept, (k+1)*(n-1))
	}
	if dropped == 0 {
		t.Fatal("dense fixture must shed edges")
	}
	foundPhase := false
	for _, p := range fast.Phases {
		if p.Phase == "sparsify" {
			foundPhase = true
		}
	}
	if !foundPhase {
		t.Fatalf("sparsify phase missing from %+v", fast.Phases)
	}

	if reportCore(full) != reportCore(fast) {
		t.Fatalf("reports diverged:\n full %+v\n fast %+v", reportCore(full), reportCore(fast))
	}
	if full.NodeConnectivity != k || full.EdgeConnectivity != k {
		t.Fatalf("fixture sanity: κ=%d λ=%d, want %d", full.NodeConnectivity, full.EdgeConnectivity, k)
	}
}

// TestSparsifyAutoSkipsSparseGraphs pins the cutoff behavior the probe
// count tests depend on: an LHG-sized sparse graph (m ≈ k·n/2) never
// builds a certificate under SparsifyAuto.
func TestSparsifyAutoSkipsSparseGraphs(t *testing.T) {
	withSink(t)
	g := petersen()
	if _, err := VerifyCtx(context.Background(), g, 3, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if c := obs.Counters()["check.sparsify.passes"]; c != 0 {
		t.Fatalf("sparse graph must not trigger sparsify, passes=%d", c)
	}
}

// TestSparseProbeViewPolicies covers the helper directly.
func TestSparseProbeViewPolicies(t *testing.T) {
	g := denseFixture(t, 48, 3, 24)
	if v, ok := SparseProbeView(g, 3, SparsifyOff); ok || v != g {
		t.Fatal("off must return the graph itself")
	}
	v, ok := SparseProbeView(g, 3, SparsifyAuto)
	if !ok || v.Size() >= g.Size() {
		t.Fatalf("auto must sparsify the dense fixture: ok=%t m=%d", ok, v.Size())
	}
	if v.Order() != g.Order() {
		t.Fatal("view must span the same nodes")
	}
	sparse := petersen()
	if _, ok := SparseProbeView(sparse, 3, SparsifyAuto); ok {
		t.Fatal("auto must skip sparse graphs")
	}
	if _, ok := SparseProbeView(sparse, 3, SparsifyAlways); !ok {
		t.Fatal("always must force the certificate")
	}
}

// Failure resilience: pits the flooding protocol against a max-flow
// adversary. For every f <= k-1 no choice of f crashes can stop a flood on
// a k-connected LHG (Menger's theorem); at f = k the adversary computes an
// actual minimum vertex cut and partitions the network.
//
//	go run ./examples/failure-resilience
package main

import (
	"context"
	"fmt"
	"log"

	"lhg"
	"lhg/internal/flood"
	"lhg/internal/sim"
)

func main() {
	const (
		n = 80
		k = 5
	)
	g, err := lhg.Build(context.Background(), lhg.KTree, n, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K-TREE(%d,%d): %v, diameter %d\n\n", n, k, g, g.Diameter())

	fmt.Printf("%-4s %-22s %-14s %-12s %-10s\n", "f", "adversarial outcome", "worst rounds", "random rel.", "guarantee")
	rng := sim.NewRNG(99)
	for f := 0; f <= k; f++ {
		adv, err := flood.AdversarialNodeFailures(g, 0, f)
		if err != nil {
			log.Fatal(err)
		}
		res, err := flood.Run(g, 0, adv)
		if err != nil {
			log.Fatal(err)
		}
		rel, err := flood.Reliability(g, 0, f, 150, rng)
		if err != nil {
			log.Fatal(err)
		}
		outcome := "full delivery"
		if !res.Complete {
			outcome = fmt.Sprintf("PARTITIONED %d/%d", res.Reached, res.Alive)
		}
		guarantee := "guaranteed"
		if f >= k {
			guarantee = "none (f >= k)"
		}
		fmt.Printf("%-4d %-22s %-14d %-12.3f %-10s\n", f, outcome, res.Rounds, rel, guarantee)

		if f < k && !res.Complete {
			log.Fatalf("BUG: %d-connected graph partitioned by %d failures", k, f)
		}
	}

	fmt.Println("\nthe adversary needed the full minimum vertex cut (size k) to stop the flood")
}

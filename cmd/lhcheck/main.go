// Command lhcheck builds a topology and verifies every Logarithmic Harary
// Graph property exactly (max-flow based): k-node connectivity, k-link
// connectivity, link minimality, logarithmic diameter and k-regularity.
// It can also check a graph supplied as JSON on stdin (the lhgen -format
// json encoding).
//
// Usage:
//
//	lhcheck -constraint ktree -n 21 -k 3
//	lhgen -constraint kdiamond -n 50 -k 4 -format json | lhcheck -stdin -k 4
//	lhcheck -constraint kdiamond -n 200 -k 4 -v -metrics
//
// -v prints the per-phase timing breakdown of the verification run;
// -metrics dumps the JSON metrics report to stderr at exit; -http serves
// /debug/vars, /metrics and /debug/pprof/ for the duration of the run;
// -trace out.json records every span of the run and writes a Chrome
// trace_event file at exit (load in chrome://tracing or Perfetto).
// The report goes to stdout, diagnostics to stderr.
//
// Exit status 0 means every mandatory property holds.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"lhg"
	"lhg/internal/core"
	"lhg/internal/obs"
)

var errNotLHG = errors.New("graph is not an LHG")

func main() {
	err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lhcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("lhcheck", flag.ContinueOnError)
	var (
		constraint = fs.String("constraint", "kdiamond", "topology: harary, jd, ktree or kdiamond")
		n          = fs.Int("n", 20, "number of nodes")
		k          = fs.Int("k", 3, "connectivity target")
		stdin      = fs.Bool("stdin", false, "read a JSON graph from stdin instead of building one")
		workers    = fs.Int("workers", 0, "verification worker goroutines (0 = all cores)")
		blueprint  = fs.Bool("blueprint", false, "read a blueprint JSON (lhgen -format blueprint) from stdin, validate its constraints, compile and verify")
		verbose    = fs.Bool("v", false, "print the per-phase timing breakdown of the verification run")
		metrics    = fs.Bool("metrics", false, "dump the JSON metrics report to stderr at exit")
		httpAddr   = fs.String("http", "", "serve /debug/vars, /metrics and /debug/pprof/ on this address for the run")
		jsonOut    = fs.Bool("json", false, "emit the report as one JSON object on stdout (byte-stable: same graph, same bytes, regardless of -workers, -sparsify or -prescreen)")
		sparsify   = fs.Bool("sparsify", true, "probe κ/λ on a sparse certificate when the graph is dense enough (results are identical; off = escape hatch)")
		prescreen  = fs.Bool("prescreen", true, "seed the κ/λ sweeps with Monte Carlo contraction cuts on large graphs (results are identical; off = escape hatch)")
		tracePath  = fs.String("trace", "", "enable tracing and write the span flight recorder to this file (Chrome trace_event JSON) at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Interrupts cancel the verification campaign mid-probe instead of
	// killing the process between phases.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *verbose {
		// Verbose mode wants probe counts in the phase block, which come
		// from the metrics registry.
		obs.Enable()
	}
	stopObs, err := obs.StartCLI(*metrics, *httpAddr, os.Stderr)
	if err != nil {
		return err
	}
	defer stopObs()
	stopTrace := obs.StartTrace(*tracePath, os.Stderr)
	defer stopTrace()

	var g *lhg.Graph
	usedConstraint := ""
	switch {
	case *blueprint:
		var blue core.Blueprint
		if err := json.NewDecoder(in).Decode(&blue); err != nil {
			return fmt.Errorf("decode blueprint: %w", err)
		}
		if !*jsonOut {
			fmt.Fprintf(out, "blueprint:            k=%d, %d positions, height %d\n",
				blue.K, blue.Positions(), blue.Height())
			fmt.Fprintf(out, "satisfies K-TREE:     %s\n", constraintVerdict(core.ValidateKTree(&blue)))
			fmt.Fprintf(out, "satisfies K-DIAMOND:  %s\n", constraintVerdict(core.ValidateKDiamond(&blue)))
			fmt.Fprintf(out, "satisfies JD:         %s\n", constraintVerdict(core.ValidateJD(&blue)))
		}
		real, err := blue.Compile()
		if err != nil {
			return err
		}
		g = real.Graph
		*k = blue.K
	case *stdin:
		var decoded lhg.Graph
		if err := json.NewDecoder(in).Decode(&decoded); err != nil {
			return fmt.Errorf("decode graph: %w", err)
		}
		g = &decoded
	default:
		c, perr := lhg.ParseConstraint(*constraint)
		if perr != nil {
			return perr
		}
		g, err = lhg.Build(ctx, c, *n, *k)
		if err != nil {
			return err
		}
		usedConstraint = c.String()
	}

	r, err := lhg.Verify(ctx, g, *k,
		lhg.WithWorkers(*workers), lhg.WithSparsify(*sparsify),
		lhg.WithPrescreen(*prescreen))
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := writeStableJSON(out, usedConstraint, r); err != nil {
			return err
		}
		if !r.IsLHG() {
			return errNotLHG
		}
		return nil
	}
	fmt.Fprintf(out, "nodes:                %d\n", r.N)
	fmt.Fprintf(out, "edges:                %d\n", r.M)
	fmt.Fprintf(out, "node connectivity:    %d (P1 %s)\n", r.NodeConnectivity, pass(r.KNodeConnected))
	fmt.Fprintf(out, "link connectivity:    %d (P2 %s)\n", r.EdgeConnectivity, pass(r.KLinkConnected))
	fmt.Fprintf(out, "link minimality:      P3 %s\n", pass(r.LinkMinimal))
	if e, bad := r.Violation(); bad {
		fmt.Fprintf(out, "  removable edge:     (%d,%d)\n", e.U, e.V)
	}
	fmt.Fprintf(out, "diameter:             %d (bound %d, P4 %s)\n", r.Diameter, r.DiameterBound, pass(r.LogDiameter))
	fmt.Fprintf(out, "k-regular:            %t (P5, optional)\n", r.Regular)
	fmt.Fprintf(out, "avg path length:      %.3f\n", r.AvgPathLen)
	if *verbose {
		fmt.Fprintln(out, "phase timings:")
		fmt.Fprint(out, r.PhaseBreakdown())
	}
	if !r.IsLHG() {
		return errNotLHG
	}
	fmt.Fprintln(out, "verdict:              LHG ✓")
	return nil
}

// stableReport is the -json output shape. It deliberately excludes every
// run-dependent field of lhg.Report — worker count, phase wall times,
// probe counts — so the bytes depend only on the graph and k: the same
// input yields the same output across -workers values and -sparsify /
// -prescreen on/off, which the golden tests enforce.
type stableReport struct {
	Constraint    string  `json:"constraint,omitempty"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	K             int     `json:"k"`
	Kappa         int     `json:"kappa"`
	Lambda        int     `json:"lambda"`
	P1            bool    `json:"p1"`
	P2            bool    `json:"p2"`
	P3            bool    `json:"p3"`
	P4            bool    `json:"p4"`
	P5            bool    `json:"p5"`
	MinDegree     int     `json:"min_degree"`
	MaxDegree     int     `json:"max_degree"`
	Diameter      int     `json:"diameter"`
	DiameterBound int     `json:"diameter_bound"`
	AvgPathLen    float64 `json:"avg_path_len"`
	RemovableEdge *[2]int `json:"removable_edge,omitempty"`
	IsLHG         bool    `json:"is_lhg"`
}

// writeStableJSON emits the byte-stable report (one indented JSON object,
// trailing newline).
func writeStableJSON(out io.Writer, constraint string, r *lhg.Report) error {
	s := stableReport{
		Constraint: constraint,
		N:          r.N, M: r.M, K: r.K,
		Kappa: r.NodeConnectivity, Lambda: r.EdgeConnectivity,
		P1: r.KNodeConnected, P2: r.KLinkConnected, P3: r.LinkMinimal,
		P4: r.LogDiameter, P5: r.Regular,
		MinDegree: r.MinDegree, MaxDegree: r.MaxDegree,
		Diameter: r.Diameter, DiameterBound: r.DiameterBound,
		AvgPathLen: r.AvgPathLen,
		IsLHG:      r.IsLHG(),
	}
	if e, bad := r.Violation(); bad {
		s.RemovableEdge = &[2]int{e.U, e.V}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(&s)
}

// constraintVerdict renders a validator outcome.
func constraintVerdict(err error) string {
	if err == nil {
		return "yes"
	}
	return "no (" + err.Error() + ")"
}

func pass(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

// Command lhcheck builds a topology and verifies every Logarithmic Harary
// Graph property exactly (max-flow based): k-node connectivity, k-link
// connectivity, link minimality, logarithmic diameter and k-regularity.
// It can also check a graph supplied as JSON on stdin (the lhgen -format
// json encoding).
//
// Usage:
//
//	lhcheck -constraint ktree -n 21 -k 3
//	lhgen -constraint kdiamond -n 50 -k 4 -format json | lhcheck -stdin -k 4
//	lhcheck -constraint kdiamond -n 200 -k 4 -v -metrics
//
// -v prints the per-phase timing breakdown of the verification run;
// -metrics dumps the JSON metrics report to stderr at exit; -http serves
// /debug/vars, /metrics and /debug/pprof/ for the duration of the run.
// The report goes to stdout, diagnostics to stderr.
//
// Exit status 0 means every mandatory property holds.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"lhg"
	"lhg/internal/core"
	"lhg/internal/obs"
)

var errNotLHG = errors.New("graph is not an LHG")

func main() {
	err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lhcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("lhcheck", flag.ContinueOnError)
	var (
		constraint = fs.String("constraint", "kdiamond", "topology: harary, jd, ktree or kdiamond")
		n          = fs.Int("n", 20, "number of nodes")
		k          = fs.Int("k", 3, "connectivity target")
		stdin      = fs.Bool("stdin", false, "read a JSON graph from stdin instead of building one")
		workers    = fs.Int("workers", 0, "verification worker goroutines (0 = all cores)")
		blueprint  = fs.Bool("blueprint", false, "read a blueprint JSON (lhgen -format blueprint) from stdin, validate its constraints, compile and verify")
		verbose    = fs.Bool("v", false, "print the per-phase timing breakdown of the verification run")
		metrics    = fs.Bool("metrics", false, "dump the JSON metrics report to stderr at exit")
		httpAddr   = fs.String("http", "", "serve /debug/vars, /metrics and /debug/pprof/ on this address for the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Interrupts cancel the verification campaign mid-probe instead of
	// killing the process between phases.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *verbose {
		// Verbose mode wants probe counts in the phase block, which come
		// from the metrics registry.
		obs.Enable()
	}
	stopObs, err := obs.StartCLI(*metrics, *httpAddr, os.Stderr)
	if err != nil {
		return err
	}
	defer stopObs()

	var g *lhg.Graph
	switch {
	case *blueprint:
		var blue core.Blueprint
		if err := json.NewDecoder(in).Decode(&blue); err != nil {
			return fmt.Errorf("decode blueprint: %w", err)
		}
		fmt.Fprintf(out, "blueprint:            k=%d, %d positions, height %d\n",
			blue.K, blue.Positions(), blue.Height())
		fmt.Fprintf(out, "satisfies K-TREE:     %s\n", constraintVerdict(core.ValidateKTree(&blue)))
		fmt.Fprintf(out, "satisfies K-DIAMOND:  %s\n", constraintVerdict(core.ValidateKDiamond(&blue)))
		fmt.Fprintf(out, "satisfies JD:         %s\n", constraintVerdict(core.ValidateJD(&blue)))
		real, err := blue.Compile()
		if err != nil {
			return err
		}
		g = real.Graph
		*k = blue.K
	case *stdin:
		var decoded lhg.Graph
		if err := json.NewDecoder(in).Decode(&decoded); err != nil {
			return fmt.Errorf("decode graph: %w", err)
		}
		g = &decoded
	default:
		c, perr := lhg.ParseConstraint(*constraint)
		if perr != nil {
			return perr
		}
		g, err = lhg.Build(ctx, c, *n, *k)
		if err != nil {
			return err
		}
	}

	r, err := lhg.Verify(ctx, g, *k, lhg.WithWorkers(*workers))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "nodes:                %d\n", r.N)
	fmt.Fprintf(out, "edges:                %d\n", r.M)
	fmt.Fprintf(out, "node connectivity:    %d (P1 %s)\n", r.NodeConnectivity, pass(r.KNodeConnected))
	fmt.Fprintf(out, "link connectivity:    %d (P2 %s)\n", r.EdgeConnectivity, pass(r.KLinkConnected))
	fmt.Fprintf(out, "link minimality:      P3 %s\n", pass(r.LinkMinimal))
	if e, bad := r.Violation(); bad {
		fmt.Fprintf(out, "  removable edge:     (%d,%d)\n", e.U, e.V)
	}
	fmt.Fprintf(out, "diameter:             %d (bound %d, P4 %s)\n", r.Diameter, r.DiameterBound, pass(r.LogDiameter))
	fmt.Fprintf(out, "k-regular:            %t (P5, optional)\n", r.Regular)
	fmt.Fprintf(out, "avg path length:      %.3f\n", r.AvgPathLen)
	if *verbose {
		fmt.Fprintln(out, "phase timings:")
		fmt.Fprint(out, r.PhaseBreakdown())
	}
	if !r.IsLHG() {
		return errNotLHG
	}
	fmt.Fprintln(out, "verdict:              LHG ✓")
	return nil
}

// constraintVerdict renders a validator outcome.
func constraintVerdict(err error) string {
	if err == nil {
		return "yes"
	}
	return "no (" + err.Error() + ")"
}

func pass(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

// Package netflood runs the flooding protocol over real TCP sockets on the
// loopback interface: one node per topology vertex, one connection per
// edge, length-prefixed JSON frames, duplicate suppression, and forwarding
// on every link — the deployment shape of the paper's protocol, in
// miniature. The cluster supports *live reconfiguration* (AddNode, Connect,
// Disconnect, Apply), so the incremental growers of package core can drive
// a real socket overlay one admission at a time.
//
// The simulators (flood, proc) answer "what does the topology guarantee";
// this package demonstrates the same protocol working over the standard
// library's actual networking stack.
package netflood

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"lhg/internal/core"
	"lhg/internal/graph"
	"lhg/internal/obs"
)

// Cluster telemetry. Frames are counted at the sender, deliveries and
// duplicates at the receiver; hops is the socket-level analog of the
// simulator's per-round delivery latency (each forward adds one hop).
var (
	mNetBroadcasts  = obs.NewCounter("netflood.broadcasts")
	mNetFramesSent  = obs.NewCounter("netflood.frames.sent")
	mNetDelivered   = obs.NewCounter("netflood.msgs.delivered")
	mNetDuplicates  = obs.NewCounter("netflood.msgs.duplicate")
	mNetNodesAdded  = obs.NewCounter("netflood.nodes.added")
	mNetCrashes     = obs.NewCounter("netflood.nodes.crashed")
	mNetConnects    = obs.NewCounter("netflood.links.connected")
	mNetDisconnects = obs.NewCounter("netflood.links.disconnected")
	hNetHops        = obs.NewHistogram("netflood.delivery.hops", 1, 2, 4, 8, 16, 32)
)

// Message is one flooded payload. Hops counts the links the copy crossed
// before its first delivery at a node (0 at the source), the socket-level
// delivery-latency measure.
type Message struct {
	Src     int    `json:"src"`
	Seq     int    `json:"seq"`
	Payload string `json:"payload"`
	Hops    int    `json:"hops,omitempty"`
}

// frame is the wire envelope: either a hello (link handshake identifying
// the dialing node) or a flooded message.
type frame struct {
	Kind string   `json:"kind"` // "hello" or "msg"
	From int      `json:"from,omitempty"`
	Msg  *Message `json:"msg,omitempty"`
}

// id is the dedup key of a message.
type id struct {
	src, seq int
}

// maxFrame bounds a frame to keep a corrupted length prefix from
// allocating unbounded memory.
const maxFrame = 1 << 20

// node is one process: a TCP listener plus one registered connection per
// incident topology edge.
type node struct {
	idx      int
	ln       net.Listener
	mu       sync.Mutex
	peers    map[int]*peerConn // remote node id -> connection
	seen     map[id]Message
	order    []Message
	nextSeq  int
	delivery chan<- Message

	wg     sync.WaitGroup
	closed chan struct{}
}

type peerConn struct {
	mu   sync.Mutex // serializes frame writes
	conn net.Conn
}

// Cluster is a set of nodes wired along a topology's edges.
type Cluster struct {
	mu         sync.Mutex
	nodes      []*node
	deliveries chan Message
}

// Start launches one node per vertex of g on loopback TCP ports and dials
// every edge. The returned cluster must be Shutdown.
func Start(g *graph.Graph) (*Cluster, error) {
	n := g.Order()
	if n == 0 {
		return nil, errors.New("netflood: empty topology")
	}
	c := &Cluster{
		// Deliveries across the whole cluster; sized generously so reader
		// goroutines never block in tests.
		deliveries: make(chan Message, 64*n),
	}
	for i := 0; i < n; i++ {
		if _, err := c.AddNode(); err != nil {
			c.Shutdown()
			return nil, err
		}
	}
	for _, e := range g.Edges() {
		if err := c.Connect(e.U, e.V); err != nil {
			c.Shutdown()
			return nil, err
		}
	}
	return c, nil
}

// StartEmpty creates a cluster with no nodes; grow it with AddNode,
// Connect and Apply.
func StartEmpty() *Cluster {
	return &Cluster{deliveries: make(chan Message, 4096)}
}

// Size returns the number of nodes (alive or crashed).
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// AddNode spawns a new process with its own listener and returns its id.
func (c *Cluster) AddNode() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, fmt.Errorf("netflood: listen: %w", err)
	}
	c.mu.Lock()
	idx := len(c.nodes)
	nd := &node{
		idx:      idx,
		ln:       ln,
		peers:    make(map[int]*peerConn),
		seen:     make(map[id]Message),
		delivery: c.deliveries,
		closed:   make(chan struct{}),
	}
	c.nodes = append(c.nodes, nd)
	c.mu.Unlock()
	mNetNodesAdded.Inc()
	nd.wg.Add(1)
	go nd.acceptLoop()
	return idx, nil
}

// Connect dials a link between two nodes. It is idempotent for an
// existing link.
func (c *Cluster) Connect(u, v int) error {
	nu, nv, err := c.pair(u, v)
	if err != nil {
		return err
	}
	nu.mu.Lock()
	_, exists := nu.peers[v]
	nu.mu.Unlock()
	if exists {
		return nil
	}
	conn, err := net.Dial("tcp", nv.ln.Addr().String())
	if err != nil {
		return fmt.Errorf("netflood: dial (%d,%d): %w", u, v, err)
	}
	p := &peerConn{conn: conn}
	// Handshake: tell the acceptor who is calling.
	if err := writeFrame(p, frame{Kind: "hello", From: u}); err != nil {
		conn.Close()
		return fmt.Errorf("netflood: hello (%d,%d): %w", u, v, err)
	}
	nu.register(v, p)
	mNetConnects.Inc()
	// Wait until the acceptor has processed the hello: the link is then
	// usable in both directions before Connect returns, which keeps
	// reconfiguration deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		nv.mu.Lock()
		_, ready := nv.peers[u]
		nv.mu.Unlock()
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("netflood: handshake (%d,%d) timed out", u, v)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Disconnect tears down the link between two nodes (no-op if absent).
func (c *Cluster) Disconnect(u, v int) error {
	nu, nv, err := c.pair(u, v)
	if err != nil {
		return err
	}
	// Tear down both directions unconditionally (|| would short-circuit
	// and leave the reverse registration behind).
	removedU := nu.unregister(v)
	removedV := nv.unregister(u)
	if removedU || removedV {
		mNetDisconnects.Inc()
	}
	return nil
}

// Apply executes an edge delta from an incremental grower against the live
// cluster: removed links are torn down, added links dialed. Node ids
// beyond the current size must have been created with AddNode first.
func (c *Cluster) Apply(delta core.EdgeDelta) error {
	for _, e := range delta.Removed {
		if err := c.Disconnect(e.U, e.V); err != nil {
			return err
		}
	}
	for _, e := range delta.Added {
		if err := c.Connect(e.U, e.V); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) pair(u, v int) (*node, *node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if u < 0 || v < 0 || u >= len(c.nodes) || v >= len(c.nodes) || u == v {
		return nil, nil, fmt.Errorf("netflood: bad link (%d,%d)", u, v)
	}
	return c.nodes[u], c.nodes[v], nil
}

// Broadcast floods a payload from node src.
func (c *Cluster) Broadcast(src int, payload string) (Message, error) {
	c.mu.Lock()
	if src < 0 || src >= len(c.nodes) {
		c.mu.Unlock()
		return Message{}, fmt.Errorf("netflood: unknown node %d", src)
	}
	nd := c.nodes[src]
	c.mu.Unlock()
	nd.mu.Lock()
	msg := Message{Src: src, Seq: nd.nextSeq, Payload: payload}
	nd.nextSeq++
	nd.mu.Unlock()
	mNetBroadcasts.Inc()
	nd.handle(msg)
	return msg, nil
}

// Deliveries exposes the cluster-wide delivery stream: one entry per
// (node, message) first delivery.
func (c *Cluster) Deliveries() <-chan Message { return c.deliveries }

// Delivered returns the messages node idx has delivered so far, in order.
func (c *Cluster) Delivered(idx int) []Message {
	c.mu.Lock()
	if idx < 0 || idx >= len(c.nodes) {
		c.mu.Unlock()
		return nil
	}
	nd := c.nodes[idx]
	c.mu.Unlock()
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return append([]Message(nil), nd.order...)
}

// CrashNode closes node idx's listener and connections, simulating a
// process crash. Returns false if idx is out of range or already down.
func (c *Cluster) CrashNode(idx int) bool {
	c.mu.Lock()
	if idx < 0 || idx >= len(c.nodes) {
		c.mu.Unlock()
		return false
	}
	nd := c.nodes[idx]
	c.mu.Unlock()
	select {
	case <-nd.closed:
		return false
	default:
	}
	nd.shutdown()
	mNetCrashes.Inc()
	return true
}

// Alive reports whether node idx is still running.
func (c *Cluster) Alive(idx int) bool {
	c.mu.Lock()
	if idx < 0 || idx >= len(c.nodes) {
		c.mu.Unlock()
		return false
	}
	nd := c.nodes[idx]
	c.mu.Unlock()
	select {
	case <-nd.closed:
		return false
	default:
		return true
	}
}

// Shutdown closes every listener and connection and waits for all node
// goroutines to exit.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	nodes := append([]*node(nil), c.nodes...)
	c.mu.Unlock()
	for _, nd := range nodes {
		nd.shutdown()
	}
	for _, nd := range nodes {
		nd.wg.Wait()
	}
}

func (n *node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p := &peerConn{conn: conn}
		n.wg.Add(1)
		go n.readLoop(p, true)
	}
}

// register records a peer connection under its remote id and starts its
// reader (dialer side).
func (n *node) register(remote int, p *peerConn) {
	n.mu.Lock()
	if old, ok := n.peers[remote]; ok {
		old.conn.Close()
	}
	n.peers[remote] = p
	n.mu.Unlock()
	n.wg.Add(1)
	go n.readLoop(p, false)
}

// unregister closes and forgets the link to remote, reporting whether it
// existed.
func (n *node) unregister(remote int) bool {
	n.mu.Lock()
	p, ok := n.peers[remote]
	if ok {
		delete(n.peers, remote)
	}
	n.mu.Unlock()
	if ok {
		p.conn.Close()
	}
	return ok
}

// readLoop consumes frames from one connection. Acceptor-side loops expect
// a hello first to learn the remote id and register the link.
func (n *node) readLoop(p *peerConn, expectHello bool) {
	defer n.wg.Done()
	r := bufio.NewReader(p.conn)
	if expectHello {
		f, err := readFrame(r)
		if err != nil || f.Kind != "hello" {
			p.conn.Close()
			return
		}
		n.mu.Lock()
		if old, ok := n.peers[f.From]; ok {
			old.conn.Close()
		}
		n.peers[f.From] = p
		n.mu.Unlock()
	}
	for {
		f, err := readFrame(r)
		if err != nil {
			return // peer closed, link removed, or shutdown
		}
		if f.Kind == "msg" && f.Msg != nil {
			n.handle(*f.Msg)
		}
	}
}

// handle delivers msg if new and forwards it on every registered link.
func (n *node) handle(msg Message) {
	select {
	case <-n.closed:
		return
	default:
	}
	key := id{src: msg.Src, seq: msg.Seq}
	n.mu.Lock()
	if _, dup := n.seen[key]; dup {
		n.mu.Unlock()
		mNetDuplicates.Inc()
		return
	}
	n.seen[key] = msg
	n.order = append(n.order, msg)
	peers := make([]*peerConn, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	mNetDelivered.Inc()
	hNetHops.Observe(int64(msg.Hops))

	select {
	case n.delivery <- msg:
	case <-n.closed:
		return
	}
	// Forwarded copies are one hop further from the source.
	m := msg
	m.Hops++
	for _, p := range peers {
		// Best effort: a closed peer just drops the frame — the crash
		// model of the paper.
		mNetFramesSent.Inc()
		_ = writeFrame(p, frame{Kind: "msg", Msg: &m})
	}
}

func (n *node) shutdown() {
	select {
	case <-n.closed:
		return
	default:
	}
	close(n.closed)
	_ = n.ln.Close()
	n.mu.Lock()
	peers := make([]*peerConn, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		_ = p.conn.Close()
	}
}

func writeFrame(p *peerConn, f frame) error {
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.conn.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = p.conn.Write(data)
	return err
}

func readFrame(r io.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size > maxFrame {
		return frame{}, fmt.Errorf("netflood: frame of %d bytes exceeds limit", size)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(r, data); err != nil {
		return frame{}, err
	}
	var f frame
	if err := json.Unmarshal(data, &f); err != nil {
		return frame{}, fmt.Errorf("netflood: decode frame: %w", err)
	}
	return f, nil
}

// Command lhgrow runs the incremental LHG maintenance procedures (the
// constructive proofs of Theorems 2 and 5) as a control plane: starting
// from the minimal (2k,k) overlay it admits and removes nodes one at a
// time and emits the exact link operations a deployment would execute, as
// JSON lines.
//
// Usage:
//
//	lhgrow -constraint kdiamond -k 4 -joins 20             # one JSON line per join
//	lhgrow -constraint ktree -k 3 -joins 12 -leaves 4      # grow, then shrink
//	lhgrow -constraint ktree -k 3 -trace jjljlljj          # interleaved churn
//	lhgrow -constraint ktree -k 3 -joins 100 -summary      # aggregate churn stats
//
// Each JSON line has the shape
//
//	{"op":"join","n":9,"added":[[0,8],[1,8],[2,8]],"removed":[],"regular":false}
//
// where op is the membership event, n is the size after the event and
// added/removed list the link surgery (pairs of stable node ids). Leaves
// are exact inverse surgery: replaying a join-only run backwards yields the
// same deltas with added and removed swapped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lhg"
	"lhg/internal/obs"
)

type opRecord struct {
	Op      string   `json:"op"`
	N       int      `json:"n"`
	Added   [][2]int `json:"added"`
	Removed [][2]int `json:"removed"`
	Regular bool     `json:"regular"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lhgrow:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lhgrow", flag.ContinueOnError)
	var (
		constraint = fs.String("constraint", "kdiamond", "grower: ktree or kdiamond")
		k          = fs.Int("k", 3, "connectivity target")
		joins      = fs.Int("joins", 10, "number of joins to perform (before any -leaves)")
		leaves     = fs.Int("leaves", 0, "number of leaves to perform after the joins")
		trace      = fs.String("trace", "", "explicit churn trace: one 'j' (join) or 'l' (leave) per event; overrides -joins/-leaves")
		summary    = fs.Bool("summary", false, "print aggregate churn stats instead of JSON lines")
		metrics    = fs.Bool("metrics", false, "dump the JSON metrics report to stderr at exit")
		httpAddr   = fs.String("http", "", "serve /debug/vars, /metrics and /debug/pprof/ on this address for the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopObs, err := obs.StartCLI(*metrics, *httpAddr, os.Stderr)
	if err != nil {
		return err
	}
	defer stopObs()
	ops, err := churnTrace(fs, *trace, *joins, *leaves)
	if err != nil {
		return err
	}

	var gr lhg.Reconfigurer
	switch *constraint {
	case "ktree":
		gr, err = lhg.NewKTreeGrower(*k)
	case "kdiamond":
		gr, err = lhg.NewKDiamondGrower(*k)
	default:
		return fmt.Errorf("unknown grower %q (want ktree or kdiamond)", *constraint)
	}
	if err != nil {
		return err
	}

	enc := json.NewEncoder(out)
	var stats churnStats
	for i, op := range ops {
		var d lhg.EdgeDelta
		var name string
		switch op {
		case lhg.ChangeJoin:
			name = "join"
			d, err = gr.Grow()
		case lhg.ChangeLeave:
			name = "leave"
			d, err = gr.Shrink()
		}
		if err != nil {
			return fmt.Errorf("event %d (%s): %w", i, name, err)
		}
		stats.record(d)
		if *summary {
			continue
		}
		rec := opRecord{
			Op:      name,
			N:       gr.N(),
			Added:   pairs(d.Added),
			Removed: pairs(d.Removed),
			Regular: gr.Snapshot().IsRegular(*k),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	if *summary {
		stats.print(out, *constraint, *k, ops, gr)
	}
	return nil
}

// churnTrace resolves the flag surface into an explicit op sequence: an
// explicit -trace wins; otherwise -joins joins followed by -leaves leaves.
func churnTrace(fs *flag.FlagSet, trace string, joins, leaves int) ([]lhg.Change, error) {
	if trace != "" {
		set := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "joins" || f.Name == "leaves" {
				set = true
			}
		})
		if set {
			return nil, fmt.Errorf("-trace replaces -joins/-leaves; give one or the other")
		}
		ops := make([]lhg.Change, 0, len(trace))
		for _, c := range trace {
			switch c {
			case 'j':
				ops = append(ops, lhg.ChangeJoin)
			case 'l':
				ops = append(ops, lhg.ChangeLeave)
			default:
				return nil, fmt.Errorf("trace event %q: want 'j' or 'l'", c)
			}
		}
		return ops, nil
	}
	if joins < 0 {
		return nil, fmt.Errorf("joins must be non-negative, got %d", joins)
	}
	if leaves < 0 {
		return nil, fmt.Errorf("leaves must be non-negative, got %d", leaves)
	}
	ops := make([]lhg.Change, 0, joins+leaves)
	for i := 0; i < joins; i++ {
		ops = append(ops, lhg.ChangeJoin)
	}
	for i := 0; i < leaves; i++ {
		ops = append(ops, lhg.ChangeLeave)
	}
	return ops, nil
}

// churnStats aggregates link surgery with setup and teardown counted
// separately — a leave's churn is almost all removals, and folding both
// into one figure (as -summary once did) hides that asymmetry.
type churnStats struct {
	added, removed int
	maxChurn       int
}

func (s *churnStats) record(d lhg.EdgeDelta) {
	s.added += len(d.Added)
	s.removed += len(d.Removed)
	if churn := d.Total(); churn > s.maxChurn {
		s.maxChurn = churn
	}
}

func (s *churnStats) print(out io.Writer, constraint string, k int, ops []lhg.Change, gr lhg.Reconfigurer) {
	joins, leaves := 0, 0
	for _, op := range ops {
		if op == lhg.ChangeJoin {
			joins++
		} else {
			leaves++
		}
	}
	mean := 0.0
	if len(ops) > 0 {
		mean = float64(s.added+s.removed) / float64(len(ops))
	}
	fmt.Fprintf(out, "constraint: %s\nk: %d\njoins: %d\nleaves: %d\nfinal n: %d\nfinal edges: %d\nlinks added: %d\nlinks removed: %d\nmean churn: %.2f\nmax churn: %d\n",
		constraint, k, joins, leaves, gr.N(), gr.Snapshot().Size(), s.added, s.removed, mean, s.maxChurn)
}

func pairs(es []lhg.Edge) [][2]int {
	out := make([][2]int, 0, len(es))
	for _, e := range es {
		out = append(out, [2]int{e.U, e.V})
	}
	return out
}

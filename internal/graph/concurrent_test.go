package graph

import (
	"sync"
	"testing"
)

// TestFrozenGraphConcurrentReaders hammers one frozen graph from 8
// goroutines running every read-only query. Under `go test -race` this
// verifies the central claim of the freeze design: a frozen Graph is safe
// to share without cloning or locks.
func TestFrozenGraphConcurrentReaders(t *testing.T) {
	g := randomGraph(64, 0xfeedface)
	want := g.Diameter()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				if d := g.Diameter(); d != want {
					t.Errorf("worker %d: Diameter = %d, want %d", w, d, want)
					return
				}
				g.BFSFrom(w % g.Order())
				g.Connected()
				g.Components()
				g.Edges()
				g.EachEdge(func(u, v int) {})
				g.Neighbors(w % g.Order())
				g.Degrees()
				g.MinDegree()
				g.MaxDegree()
				g.BFSTree(w % g.Order())
				g.WithoutEdge(0, 1)
			}
		}(w)
	}
	wg.Wait()
}

// TestParallelSweepMatchesSerial cross-checks the parallel all-sources
// distance sweep against the serial one on a batch of random graphs,
// including disconnected ones.
func TestParallelSweepMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed < 12; seed++ {
		g := randomGraph(40, seed)
		wantDiam, wantAvg := g.DistanceStats(1)
		gotDiam, gotAvg := g.DistanceStats(8)
		if wantDiam != gotDiam || wantAvg != gotAvg {
			t.Fatalf("seed %d: parallel stats (%d,%v) != serial (%d,%v)",
				seed, gotDiam, gotAvg, wantDiam, wantAvg)
		}
		if got := g.DiameterParallel(8); got != g.Diameter() {
			t.Fatalf("seed %d: DiameterParallel = %d, Diameter = %d", seed, got, g.Diameter())
		}
	}
}

func TestClampWorkers(t *testing.T) {
	if got := ClampWorkers(1, 100); got != 1 {
		t.Fatalf("ClampWorkers(1,100) = %d, want 1", got)
	}
	if got := ClampWorkers(4, 2); got != 2 {
		t.Fatalf("ClampWorkers(4,2) = %d, want item cap 2", got)
	}
	if got := ClampWorkers(8, 100); got != 8 {
		t.Fatalf("ClampWorkers(8,100) = %d, want explicit request honored", got)
	}
	if got := ClampWorkers(0, 100); got < 1 {
		t.Fatalf("ClampWorkers(0,100) = %d, want >= 1", got)
	}
	if got := ClampWorkers(-5, 0); got < 1 {
		t.Fatalf("ClampWorkers(-5,0) = %d, want >= 1", got)
	}
}

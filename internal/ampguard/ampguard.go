// Package ampguard is the static retry-amplification analyzer for the
// reliable flood: it prices the paper's f ≤ k−1 delivery guarantee under the
// netflood retry policy *before* a single frame is sent.
//
// The paper's construction guarantees k internally vertex-disjoint paths
// between every vertex pair; the reliable protocol (package netflood) makes
// delivery over those paths true under loss by retransmitting each hop with
// exponential backoff. Nothing in the protocol alone makes that guarantee
// affordable: per-edge (timeout, max-retries) budgets multiply along a path
// into a compound worst case — a path of h hops whose every edge may retry R
// times admits (1+R)^h message-equivalents if each retry cascades into fresh
// downstream work, and Σ_h (timeout·(attempts) + backoff series) of latency
// even when it does not. This package enumerates the path families the
// topology guarantees and computes, per path and per (source, target) pair:
//
//   - the compound amplification factor ∏_e (1 + Retries_e), the cascade
//     hazard metric (what an unguarded retry policy admits in the worst
//     case);
//   - the additive frame ceiling 2m·(1 + Retries), what the flood's
//     duplicate suppression plus a per-(link,message) retry budget actually
//     permit — the enforceable bound;
//   - the worst-case delivery latency: the maximum over the family's paths
//     of the per-edge worst cases, since an adversary killing f ≤ k−1 nodes
//     chooses which single path survives.
//
// Report.Guard derives the runtime enforcement parameters (hop budget,
// per-link retry budget, token-bucket rate) that package netflood applies so
// a broadcast can never cost more than the statically computed ceiling.
// The analyzer is deliberately independent of netflood — it prices any
// (topology, policy) pair — and the floodsim CLI bridges the two.
package ampguard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"lhg/internal/flow"
	"lhg/internal/graph"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
)

var (
	mAnalyses = obs.NewCounter("ampguard.analyses")
	mPairs    = obs.NewCounter("ampguard.pairs")
	mPaths    = obs.NewCounter("ampguard.paths")
)

// Policy is the per-edge retry policy being priced: one attempt costs at
// most Timeout of wall clock; each of the Retries retransmissions waits a
// backoff of min(Base·2^(i−1), Max), widened by the Jitter fraction, before
// costing another Timeout. The zero value is invalid; DefaultPolicy mirrors
// the netflood defaults.
type Policy struct {
	Timeout time.Duration `json:"timeout"`     // per-attempt write deadline
	Base    time.Duration `json:"base"`        // first backoff
	Max     time.Duration `json:"max"`         // backoff cap
	Retries int           `json:"max_retries"` // retransmissions per (link, message)
	Jitter  float64       `json:"jitter"`      // backoff widening fraction (worst case = 1+Jitter)
}

// DefaultPolicy returns the netflood reliable-mode defaults.
func DefaultPolicy() Policy {
	return Policy{
		Timeout: 2 * time.Second,
		Base:    15 * time.Millisecond,
		Max:     250 * time.Millisecond,
		Retries: 12,
		Jitter:  0.25,
	}
}

func (p Policy) validate() error {
	if p.Timeout <= 0 || p.Base <= 0 || p.Max < p.Base {
		return fmt.Errorf("ampguard: bad policy timings (timeout %v, base %v, max %v)", p.Timeout, p.Base, p.Max)
	}
	if p.Retries < 0 || p.Jitter < 0 {
		return fmt.Errorf("ampguard: negative retries (%d) or jitter (%g)", p.Retries, p.Jitter)
	}
	return nil
}

// EdgeAttempts is the transmission budget of one edge: the original send
// plus every permitted retransmission.
func (p Policy) EdgeAttempts() int { return 1 + p.Retries }

// backoff returns the worst-case wait before retransmission attempt i
// (1-based), jitter included.
func (p Policy) backoff(i int) time.Duration {
	b := p.Max
	if shift := uint(i - 1); shift < 63 {
		if d := p.Base << shift; d > 0 && d < p.Max {
			b = d
		}
	}
	return time.Duration(float64(b) * (1 + p.Jitter))
}

// RetryWindow is the worst-case span of the backoff series alone — the time
// a fully exercised retry budget spreads its Retries retransmissions over,
// excluding the write timeouts. The token-bucket admission rate derives from
// it: a link refilling at Retries/RetryWindow tokens per second admits the
// policy's own intended worst-case retry rate and nothing above it.
func (p Policy) RetryWindow() time.Duration {
	var w time.Duration
	for i := 1; i <= p.Retries; i++ {
		w += p.backoff(i)
	}
	return w
}

// EdgeWorstLatency is the worst-case time one edge may take to deliver under
// its full retry budget: every attempt burns its write timeout and every
// retransmission waits its (jittered) backoff first.
func (p Policy) EdgeWorstLatency() time.Duration {
	return time.Duration(p.EdgeAttempts())*p.Timeout + p.RetryWindow()
}

// PathBudget prices one path of a disjoint family.
type PathBudget struct {
	Path []int `json:"path"`
	Hops int   `json:"hops"`

	// Amplification is the compound cascade factor ∏_e (1+Retries_e) — the
	// worst-case message multiplication if every hop's retries spawned
	// fresh downstream traffic (the unguarded hazard, not the enforced
	// bound). float64 because (1+R)^h overflows int64 fast.
	Amplification float64 `json:"amplification"`

	// WorstLatency is Σ_e EdgeWorstLatency: the path's delivery bound when
	// every edge exhausts its retry budget.
	WorstLatency time.Duration `json:"worst_latency_ns"`
}

// PairBudget prices one (source, target) pair through its disjoint family.
type PairBudget struct {
	Target    int          `json:"target"`
	Diversity int          `json:"diversity"` // internally vertex-disjoint paths found
	Paths     []PathBudget `json:"paths,omitempty"`

	// Amplification and WorstLatency take the family maximum: an adversary
	// spending f ≤ Diversity−1 failures chooses which path survives, so the
	// guarantee must be priced at the costliest member.
	Amplification float64       `json:"amplification"`
	WorstLatency  time.Duration `json:"worst_latency_ns"`
}

// Report is the full budget analysis of one (topology, source, policy).
type Report struct {
	N      int    `json:"n"`
	Edges  int    `json:"edges"`
	K      int    `json:"k"`
	Source int    `json:"source"`
	Policy Policy `json:"policy"`

	// FrameCeiling is the enforceable per-broadcast message bound: the
	// flood's duplicate suppression sends at most one original per directed
	// link (2m frames) and the runtime retry budget caps each (link,
	// message) at Retries retransmissions, so originals + retransmissions
	// ≤ 2m·(1+Retries) no matter how hostile the links are.
	FrameCeiling int64 `json:"frame_ceiling"`

	// MaxHops is the longest path across all enumerated families — the hop
	// radius the delivery guarantee actually needs.
	MaxHops int `json:"max_hops"`

	// MinDiversity is the smallest family size over all targets; the paper
	// guarantees ≥ k. It feeds the runtime escalation gate: a node with
	// MinDiversity−1 healthy alternatives degrades instead of redialing.
	MinDiversity int `json:"min_diversity"`

	// MaxAmplification and MaxLatency are the worst pair budgets.
	MaxAmplification float64       `json:"max_amplification"`
	MaxLatency       time.Duration `json:"max_latency_ns"`

	Pairs []PairBudget `json:"pairs"`
}

// Guard is the runtime enforcement plan derived from a Report, in
// netflood-agnostic terms (the caller maps fields onto netflood.Options).
type Guard struct {
	// HopBudget bounds how far any frame may be forwarded. First-copy-wins
	// forwarding can consume budget along non-family routes before the
	// guaranteed path is walked, so the budget doubles the analyzer's
	// family bound (clamped to n−1, the longest simple path) — still
	// O(diameter), not O(n), on the log-diameter topologies analyzed here.
	HopBudget int `json:"hop_budget"`

	// RetryBudget is the hard per-(link, message) retransmission cap that
	// survives reconnections — the term that makes FrameCeiling sound.
	RetryBudget int `json:"retry_budget"`

	// RetransmitRate and RetransmitBurst parameterize the per-link token
	// bucket admitting retransmissions: the policy's own worst-case retry
	// rate (Retries per RetryWindow), with one full budget of burst.
	RetransmitRate  float64 `json:"retransmit_rate"`
	RetransmitBurst int     `json:"retransmit_burst"`

	// PathDiversity enables the escalation gate at the analyzer's measured
	// diversity floor.
	PathDiversity int `json:"path_diversity"`
}

// Guard derives the enforcement plan for the analyzed topology.
func (r *Report) Guard() Guard {
	hop := 2*r.MaxHops + 1
	if max := r.N - 1; hop > max {
		hop = max
	}
	rate := 0.0
	if w := r.Policy.RetryWindow(); w > 0 {
		rate = float64(r.Policy.Retries) / w.Seconds()
	}
	return Guard{
		HopBudget:       hop,
		RetryBudget:     r.Policy.Retries,
		RetransmitRate:  rate,
		RetransmitBurst: r.Policy.Retries,
		PathDiversity:   r.MinDiversity,
	}
}

// Analyze enumerates, for every target, a maximum family of internally
// vertex-disjoint source→target paths (the structure the paper's
// k-connectivity guarantees) and prices each against the retry policy. k is
// the design connectivity and is recorded in the report; the measured
// diversity may exceed it. The context is polled between pairs, so a
// canceled analysis returns promptly.
func Analyze(ctx context.Context, g *graph.Graph, source, k int, policy Policy) (*Report, error) {
	if g == nil || g.Order() == 0 {
		return nil, fmt.Errorf("ampguard: empty topology")
	}
	n := g.Order()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("ampguard: source %d out of range [0,%d)", source, n)
	}
	if err := policy.validate(); err != nil {
		return nil, err
	}
	ctx, sp := trace.StartRoot(ctx, "ampguard.analyze")
	defer sp.End()
	if sp.Live() {
		sp.SetAttr(trace.Int("n", int64(n)))
		sp.SetAttr(trace.Int("source", int64(source)))
	}
	mAnalyses.Inc()

	r := &Report{
		N:            n,
		Edges:        g.Size(),
		K:            k,
		Source:       source,
		Policy:       policy,
		FrameCeiling: 2 * int64(g.Size()) * int64(policy.EdgeAttempts()),
		MinDiversity: math.MaxInt,
	}
	edgeAmp := float64(policy.EdgeAttempts())
	edgeLat := policy.EdgeWorstLatency()
	for t := 0; t < n; t++ {
		if t == source {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		paths, err := flow.VertexDisjointPaths(g, source, t)
		if err != nil {
			return nil, fmt.Errorf("ampguard: pair (%d,%d): %w", source, t, err)
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("ampguard: target %d unreachable from %d", t, source)
		}
		pair := PairBudget{Target: t, Diversity: len(paths)}
		for _, path := range paths {
			hops := len(path) - 1
			pb := PathBudget{
				Path:          path,
				Hops:          hops,
				Amplification: math.Pow(edgeAmp, float64(hops)),
				WorstLatency:  time.Duration(hops) * edgeLat,
			}
			pair.Paths = append(pair.Paths, pb)
			if pb.Amplification > pair.Amplification {
				pair.Amplification = pb.Amplification
			}
			if pb.WorstLatency > pair.WorstLatency {
				pair.WorstLatency = pb.WorstLatency
			}
			if hops > r.MaxHops {
				r.MaxHops = hops
			}
		}
		mPairs.Inc()
		mPaths.Add(int64(len(paths)))
		if pair.Diversity < r.MinDiversity {
			r.MinDiversity = pair.Diversity
		}
		if pair.Amplification > r.MaxAmplification {
			r.MaxAmplification = pair.Amplification
		}
		if pair.WorstLatency > r.MaxLatency {
			r.MaxLatency = pair.WorstLatency
		}
		r.Pairs = append(r.Pairs, pair)
	}
	if r.MinDiversity == math.MaxInt {
		r.MinDiversity = 0 // single-node topology: no pairs
	}
	return r, nil
}

// WriteJSON emits the report as one indented JSON artifact.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

package obs

import (
	"fmt"
	"io"

	"lhg/internal/obs/trace"
)

// StartCLI is the shared wiring behind the -metrics and -http flags of
// every command in cmd/: it enables the sink if either flag is set,
// optionally starts the debug endpoint, and returns a stop function that
// shuts the endpoint down and — when metrics was requested — dumps the
// JSON metrics report to logw (conventionally stderr, keeping stdout
// machine-parseable).
func StartCLI(metrics bool, httpAddr string, logw io.Writer) (stop func(), err error) {
	if !metrics && httpAddr == "" {
		return func() {}, nil
	}
	Enable()
	var closeHTTP func() error
	if httpAddr != "" {
		addr, closer, err := Serve(httpAddr)
		if err != nil {
			return nil, fmt.Errorf("debug endpoint: %w", err)
		}
		closeHTTP = closer
		fmt.Fprintf(logw, "debug endpoint listening on http://%s (/debug/vars, /metrics, /debug/pprof/)\n", addr)
	}
	return func() {
		if closeHTTP != nil {
			_ = closeHTTP()
		}
		if metrics {
			_ = WriteJSON(logw)
		}
	}, nil
}

// StartTrace is the shared wiring behind the -trace CLI flag: an empty
// path is a no-op; otherwise tracing is enabled process-wide and the
// returned stop function dumps the flight recorder to path in the Chrome
// trace_event format, reporting the outcome on logw.
func StartTrace(path string, logw io.Writer) (stop func()) {
	if path == "" {
		return func() {}
	}
	trace.Enable()
	return func() {
		if err := trace.WriteChromeTraceFile(path, trace.Snapshot()); err != nil {
			fmt.Fprintf(logw, "trace export failed: %v\n", err)
			return
		}
		fmt.Fprintf(logw, "trace written to %s (load in chrome://tracing or Perfetto)\n", path)
	}
}

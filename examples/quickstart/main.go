// Quickstart: build a Logarithmic Harary Graph, prove its properties, and
// flood it through failures.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"lhg"
)

func main() {
	ctx := context.Background()
	const (
		n = 50 // processes in the system
		k = 4  // tolerate up to k-1 = 3 arbitrary crashes
	)

	// 1. Build the topology. K-DIAMOND exists for every n >= 2k and is
	//    k-regular (minimum links) whenever n = 2k + α(k-1).
	g, err := lhg.Build(ctx, lhg.KDiamond, n, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built K-DIAMOND(%d,%d): %v\n", n, k, g)

	// 2. Verify every LHG property exactly (max-flow based Menger checks).
	report, err := lhg.Verify(ctx, g, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %v\n", report)
	if !report.IsLHG() {
		log.Fatal("not an LHG — this should be impossible for a built graph")
	}

	// 3. Flood a message from node 0 while three nodes are crashed.
	res, err := lhg.Flood(ctx, g, 0, lhg.WithFailures(lhg.Failures{Nodes: []int{7, 19, 33}}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flood with 3 crashes: %v\n", res)
	fmt.Printf("delivered to all %d alive nodes in %d rounds with %d messages\n",
		res.Reached, res.Rounds, res.Messages)

	// 4. Compare against the classic Harary baseline: same resilience and
	//    edge count, but linear diameter.
	h, err := lhg.Build(ctx, lhg.Harary, n, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classic Harary H(%d,%d) diameter: %d vs LHG diameter: %d\n",
		k, n, h.Diameter(), g.Diameter())
}

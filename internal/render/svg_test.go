package render

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"lhg/internal/core"
	"lhg/internal/graph"
)

// svgDoc is a minimal decode target proving well-formed XML.
type svgDoc struct {
	XMLName xml.Name `xml:"svg"`
	Width   string   `xml:"width,attr"`
	Lines   []struct {
		X1 string `xml:"x1,attr"`
	} `xml:"line"`
	Circles []struct {
		CX string `xml:"cx,attr"`
	} `xml:"circle"`
	Texts []struct {
		Body string `xml:",chardata"`
	} `xml:"text"`
}

func decode(t *testing.T, buf *bytes.Buffer) svgDoc {
	t.Helper()
	var doc svgDoc
	if err := xml.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not well-formed XML: %v", err)
	}
	return doc
}

func TestCircularRendersEveryElement(t *testing.T) {
	b := graph.NewBuilder(5)
	for v := 0; v < 5; v++ {
		b.MustAddEdge(v, (v+1)%5)
	}
	g := b.Freeze()
	var buf bytes.Buffer
	if err := Circular(&buf, g, nil, Style{}); err != nil {
		t.Fatal(err)
	}
	doc := decode(t, &buf)
	if len(doc.Circles) != 5 {
		t.Fatalf("rendered %d circles, want 5", len(doc.Circles))
	}
	if len(doc.Lines) != 5 {
		t.Fatalf("rendered %d lines, want 5", len(doc.Lines))
	}
	if len(doc.Texts) != 5 {
		t.Fatalf("rendered %d labels, want 5", len(doc.Texts))
	}
}

func TestCircularEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := Circular(&buf, graph.New(0), nil, Style{}); err == nil {
		t.Fatal("empty graph must error")
	}
}

func TestCircularCustomLabels(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	var buf bytes.Buffer
	if err := Circular(&buf, g, map[int]string{0: "alpha"}, Style{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ">alpha</text>") {
		t.Fatal("custom label missing")
	}
	if !strings.Contains(buf.String(), ">1</text>") {
		t.Fatal("fallback numeric label missing")
	}
}

func TestBlueprintLayoutKDiamond(t *testing.T) {
	kd, err := core.BuildKDiamond(13, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Blueprint(&buf, kd.Blue, kd.Real, Style{Width: 800, Height: 500}); err != nil {
		t.Fatal(err)
	}
	doc := decode(t, &buf)
	if len(doc.Circles) != 13 {
		t.Fatalf("rendered %d circles, want 13", len(doc.Circles))
	}
	if len(doc.Lines) != kd.Real.Graph.Size() {
		t.Fatalf("rendered %d lines, want %d", len(doc.Lines), kd.Real.Graph.Size())
	}
	// Blueprint labels make it into the drawing.
	if !strings.Contains(buf.String(), ">R0<") {
		t.Fatal("root label missing")
	}
}

func TestBlueprintNilInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := Blueprint(&buf, nil, nil, Style{}); err == nil {
		t.Fatal("nil inputs must error")
	}
}

func TestBlueprintDeepTree(t *testing.T) {
	kt, err := core.BuildKTree(38, 3) // height 3
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Blueprint(&buf, kt.Blue, kt.Real, Style{}); err != nil {
		t.Fatal(err)
	}
	doc := decode(t, &buf)
	if len(doc.Circles) != 38 {
		t.Fatalf("rendered %d circles, want 38", len(doc.Circles))
	}
}

// Real-network flooding: wires an LHG topology with actual TCP connections
// on the loopback interface (one goroutine-per-node process, one socket per
// topology edge, length-prefixed frames, duplicate suppression) and floods
// a message through it — the deployment shape of the paper's protocol.
//
//	go run ./examples/net-flood
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lhg"
	"lhg/internal/netflood"
)

func main() {
	const (
		n = 30
		k = 3
	)
	g, err := lhg.Build(context.Background(), lhg.KDiamond, n, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: K-DIAMOND(%d,%d), %d TCP links, diameter %d\n", n, k, g.Size(), g.Diameter())

	cluster, err := netflood.Start(g)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	start := time.Now()
	msg, err := cluster.Broadcast(0, "hello from node 0")
	if err != nil {
		log.Fatal(err)
	}

	// Wait for every node to deliver.
	deadline := time.After(10 * time.Second)
	delivered := 0
	for delivered < n {
		select {
		case m := <-cluster.Deliveries():
			delivered++
			// Hops varies with each node's distance from the source; the
			// identity fields must match the broadcast exactly.
			if m.Src != msg.Src || m.Seq != msg.Seq || m.Payload != msg.Payload {
				log.Fatalf("unexpected delivery %+v", m)
			}
		case <-deadline:
			log.Fatalf("timed out with %d of %d deliveries", delivered, n)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("message %v delivered by all %d nodes in %s\n", msg.Seq, n, elapsed.Round(time.Microsecond))
	for _, id := range []int{0, n / 2, n - 1} {
		msgs := cluster.Delivered(id)
		fmt.Printf("  node %2d delivered %d message(s): %q\n", id, len(msgs), msgs[0].Payload)
	}
	fmt.Println("every process received exactly one copy (duplicate suppression over real sockets)")

	// Part 2: live growth. Admit five more processes one at a time by
	// applying the incremental grower's link surgery to the running
	// sockets, then flood again.
	fmt.Println("\nlive growth: admitting 5 more processes via grower deltas on live connections")
	gr, err := lhg.NewKDiamondGrower(k)
	if err != nil {
		log.Fatal(err)
	}
	grown := netflood.StartEmpty()
	for i := 0; i < gr.N(); i++ {
		if _, err := grown.AddNode(); err != nil {
			log.Fatal(err)
		}
	}
	defer grown.Shutdown()
	for _, e := range gr.Graph().Edges() {
		if err := grown.Connect(e.U, e.V); err != nil {
			log.Fatal(err)
		}
	}
	for step := 0; step < 5; step++ {
		if _, err := grown.AddNode(); err != nil {
			log.Fatal(err)
		}
		delta, err := gr.Grow()
		if err != nil {
			log.Fatal(err)
		}
		if err := grown.Apply(delta); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  join -> n=%d (%d links dialed, %d torn down)\n",
			grown.Size(), len(delta.Added), len(delta.Removed))
	}
	if _, err := grown.Broadcast(grown.Size()-1, "from the newest member"); err != nil {
		log.Fatal(err)
	}
	want := grown.Size()
	deadline = time.After(10 * time.Second)
	for got := 0; got < want; {
		select {
		case <-grown.Deliveries():
			got++
		case <-deadline:
			log.Fatalf("grown cluster delivered %d of %d", got, want)
		}
	}
	fmt.Printf("broadcast from the newest member reached all %d processes\n", want)
}

package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"lhg/internal/obs"
)

// newShardedFleet starts `backends` servers over one shared store dir and
// one frontend routing across them; returns the frontend plus the backend
// test servers (index-addressable so tests can kill one).
func newShardedFleet(t *testing.T, backends int) (*httptest.Server, []*httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	fleet := newFleet(t, dir, backends, Options{CacheSize: 64})
	addrs := make([]string, len(fleet))
	for i, ts := range fleet {
		u, err := url.Parse(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = u.Host
	}
	front := httptest.NewServer(New(Options{
		CacheSize: 16, Shards: addrs, ProbeInterval: 50 * time.Millisecond,
	}).Handler())
	t.Cleanup(front.Close)
	return front, fleet
}

func TestProxyRoutesAndCoalesces(t *testing.T) {
	front, _ := newShardedFleet(t, 2)

	// The frontend reports its role; backends report theirs.
	var health HealthResponse
	if status := getJSON(t, front.URL+"/healthz", &health); status != 200 || health.Role != "frontend" {
		t.Fatalf("frontend health: %d %+v", status, health)
	}

	var resp VerifyResponse
	if status := postJSON(t, front.URL+"/v1/verify", `{"constraint":"ktree","n":14,"k":3}`, &resp); status != 200 {
		t.Fatalf("routed verify: status %d", status)
	}
	if !resp.IsLHG || resp.Cached {
		t.Fatalf("routed verify: %+v", resp)
	}
	// The same key hits the same backend's now-warm cache.
	var again VerifyResponse
	if status := postJSON(t, front.URL+"/v1/verify", `{"constraint":"ktree","n":14,"k":3}`, &again); status != 200 || !again.Cached {
		t.Fatalf("second routed verify: status %d cached %t", status, again.Cached)
	}

	// Backend error statuses relay verbatim with the envelope intact.
	var env ErrorEnvelope
	if status := postJSON(t, front.URL+"/v1/verify", `{"constraint":"ktree","n":5,"k":3}`, &env); status != 422 {
		t.Fatalf("relayed 422: status %d", status)
	}
	if env.Error.Code != CodeNotConstructible {
		t.Fatalf("relayed code %q", env.Error.Code)
	}

	// The frontend's trace root travels with the hop.
	req, _ := http.NewRequest(http.MethodPost, front.URL+"/v1/verify",
		strings.NewReader(`{"constraint":"ktree","n":21,"k":3}`))
	req.Header.Set("Content-Type", "application/json")
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.Header.Get("X-Trace-Id") == "" {
		t.Fatal("frontend response must carry the trace id")
	}
}

// TestProxyBatchSurvivesBackendDeath is the in-process half of the CI
// smoke: a batch sweep through the frontend completes even though one
// backend is dead, because every ownership group fails over along the ring
// sequence — and the rerouted counter proves the failover actually ran.
func TestProxyBatchSurvivesBackendDeath(t *testing.T) {
	front, fleet := newShardedFleet(t, 2)
	before := obs.Counters()
	fleet[0].Close() // one backend dies before the sweep

	ns := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		ns = append(ns, fmt.Sprintf("%d", 14+7*i))
	}
	body := fmt.Sprintf(`{"constraint":"ktree","n":[%s],"k":[3],"properties":["P1"]}`, strings.Join(ns, ","))
	var resp BatchResponse
	if status := postJSON(t, front.URL+"/v1/verify?batch", body, &resp); status != 200 {
		t.Fatalf("batch status %d", status)
	}
	if resp.Failed != 0 || resp.Total != 8 {
		t.Fatalf("total/failed = %d/%d, want 8/0 despite the dead backend", resp.Total, resp.Failed)
	}
	for i, item := range resp.Items {
		if item.Response == nil {
			t.Fatalf("item %d did not survive failover: %+v", i, item.Error)
		}
	}
	after := obs.Counters()
	// With 8 keys spread across 2 backends, the dead one owned some — and
	// each of its groups rerouted to the survivor.
	if rerouted := after["serve.shard.rerouted"] - before["serve.shard.rerouted"]; rerouted == 0 {
		t.Fatal("no group rerouted; the dead backend owned nothing and the test proved nothing")
	}
}

// TestProxySessionAffinity pins reconfigure routing: a session's epochs
// all land on one backend, so state accumulates coherently through the
// frontend.
func TestProxySessionAffinity(t *testing.T) {
	front, _ := newShardedFleet(t, 2)
	var create ReconfigureResponse
	if status := postJSON(t, front.URL+"/v1/reconfigure",
		`{"session":"routed","constraint":"ktree","n":14,"k":3}`, &create); status != 200 {
		t.Fatalf("create: %d", status)
	}
	var grown ReconfigureResponse
	if status := postJSON(t, front.URL+"/v1/reconfigure",
		`{"session":"routed","joins":7}`, &grown); status != 200 {
		t.Fatalf("grow: %d", status)
	}
	if grown.Epoch != 1 || grown.N != 21 {
		t.Fatalf("epoch/n = %d/%d, want 1/21 — the epoch landed on a different backend", grown.Epoch, grown.N)
	}
}

// TestProxyAllBackendsDown pins the 502 class end-to-end.
func TestProxyAllBackendsDown(t *testing.T) {
	front, fleet := newShardedFleet(t, 2)
	for _, ts := range fleet {
		ts.Close()
	}
	var env ErrorEnvelope
	if status := postJSON(t, front.URL+"/v1/verify", `{"constraint":"ktree","n":14,"k":3}`, &env); status != 502 {
		t.Fatalf("status %d, want 502", status)
	}
	if env.Error.Code != CodeBackendDown {
		t.Fatalf("code %q", env.Error.Code)
	}
}

package trace

import "net/http"

// Handler serves the default flight recorder as Chrome trace_event JSON:
//
//	GET /debug/trace              the full recorder snapshot
//	GET /debug/trace?trace=<id>   one trace (32 hex digits, as returned in
//	                              the X-Trace-Id response header)
//
// Load the download in chrome://tracing or https://ui.perfetto.dev.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		recs := DefaultRecorder.Snapshot()
		if q := r.URL.Query().Get("trace"); q != "" {
			tid, _, ok := ParseTraceparent("00-" + q + "-0000000000000001-01")
			if !ok {
				http.Error(w, "trace: want 32 hex digits", http.StatusBadRequest)
				return
			}
			filtered := recs[:0]
			for _, rec := range recs {
				if rec.Trace == tid {
					filtered = append(filtered, rec)
				}
			}
			recs = filtered
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="lhg-trace.json"`)
		_ = WriteChromeTrace(w, recs)
	})
}

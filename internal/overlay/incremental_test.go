package overlay

import (
	"testing"

	"lhg/internal/check"
	"lhg/internal/core"
	"lhg/internal/flood"
)

func TestNewIncrementalRejectsNil(t *testing.T) {
	if _, err := NewIncremental(nil); err == nil {
		t.Fatal("nil grower must be rejected")
	}
}

func TestIncrementalJoinAccounting(t *testing.T) {
	gr, err := core.NewKTreeGrower(3)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewIncremental(gr)
	if err != nil {
		t.Fatal(err)
	}
	if o.Size() != 6 || o.K() != 3 {
		t.Fatalf("initial size/k = %d/%d, want 6/3", o.Size(), o.K())
	}
	for i := 0; i < 20; i++ {
		c, err := o.Join()
		if err != nil {
			t.Fatal(err)
		}
		if c.Kept+c.Added != o.Graph().Size() {
			t.Fatalf("join %d: kept %d + added %d != edges %d",
				i, c.Kept, c.Added, o.Graph().Size())
		}
	}
	if o.Size() != 26 || o.Generation() != 20 {
		t.Fatalf("size/gen = %d/%d, want 26/20", o.Size(), o.Generation())
	}
}

func TestIncrementalChurnBeatsRebuildAtScale(t *testing.T) {
	// Push both maintenance modes to n=120 and compare the final-join
	// churn: incremental stays O(k²), rebuild relabels a chunk of the
	// graph.
	k := 3
	gr, err := core.NewKDiamondGrower(k)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(gr)
	if err != nil {
		t.Fatal(err)
	}
	reb, err := New(k, 2*k, kdiamondTopology)
	if err != nil {
		t.Fatal(err)
	}
	var lastInc, totalReb, totalInc int
	for inc.Size() < 120 {
		ci, err := inc.Join()
		if err != nil {
			t.Fatal(err)
		}
		cr, err := reb.Join()
		if err != nil {
			t.Fatal(err)
		}
		lastInc = ci.Total()
		totalInc += ci.Total()
		totalReb += cr.Total()
	}
	if lastInc > 3*k*k {
		t.Fatalf("incremental churn %d exceeds O(k²)", lastInc)
	}
	if totalInc >= totalReb {
		t.Fatalf("incremental total churn %d should beat rebuild %d", totalInc, totalReb)
	}
}

func TestIncrementalBroadcastSurvivesFailures(t *testing.T) {
	gr, err := core.NewKDiamondGrower(4)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewIncremental(gr)
	if err != nil {
		t.Fatal(err)
	}
	for o.Size() < 30 {
		if _, err := o.Join(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := o.Broadcast(0, flood.Failures{Nodes: []int{5, 11, 17}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("grown 4-connected overlay must survive 3 crashes: %s", res)
	}
}

func TestIncrementalStaysLHGUnderLongGrowth(t *testing.T) {
	gr, err := core.NewKTreeGrower(3)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewIncremental(gr)
	if err != nil {
		t.Fatal(err)
	}
	for o.Size() < 80 {
		if _, err := o.Join(); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := check.QuickVerify(o.Graph(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("grown overlay is not an LHG")
	}
}

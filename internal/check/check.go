// Package check verifies the defining properties of Logarithmic Harary
// Graphs (Jenkins & Demers, ICDCS 2001; formalized by Baldoni et al.):
//
//	P1  k-node connectivity    — removing any k-1 nodes leaves G connected
//	P2  k-link connectivity    — removing any k-1 links leaves G connected
//	P3  link minimality        — removing any link lowers node or link
//	                             connectivity
//	P4  logarithmic diameter   — diameter is O(log n)
//	P5  k-regularity           — every node has degree exactly k (optional:
//	                             it characterizes edge-minimal LHGs)
//
// P1 and P2 are checked exactly via max-flow (Menger's theorem), not by
// sampling. P4 is checked against the bound the constructions guarantee,
// diameter <= 2*log_{k-1}(n) + DiameterSlack, and the raw values are
// reported so callers can apply their own bound.
package check

import (
	"fmt"
	"math"
	"strings"
	"time"

	"lhg/internal/flow"
	"lhg/internal/graph"
	"lhg/internal/obs"
)

// Verification telemetry. The phase timers mirror Report.Phases into the
// metrics registry; the probe counter handles are the same registered
// metrics the flow layer increments (registration is idempotent), so the
// per-phase probe deltas in Report come from the authoritative counters.
var (
	mVerifyRuns      = obs.NewCounter("check.verify.runs")
	mQuickRuns       = obs.NewCounter("check.quickverify.runs")
	gVerifyWorkers   = obs.NewGauge("check.verify.workers")
	mP3EdgesProbed   = obs.NewCounter("check.p3.edges_probed")
	tPhaseKappa      = obs.NewTimer("check.phase.kappa")
	tPhaseLambda     = obs.NewTimer("check.phase.lambda")
	tPhaseMinimality = obs.NewTimer("check.phase.minimality")
	tPhaseDistances  = obs.NewTimer("check.phase.distances")
	mFlowProbes      = obs.NewCounter("flow.maxflow.probes")
)

// DiameterSlack is the additive slack allowed on top of 2*log_{k-1}(n) when
// evaluating P4. The constructions in this repository satisfy the bound with
// slack 2; the default leaves headroom for the k-diamond clique hop and the
// added-leaf level.
const DiameterSlack = 3

// Report holds the outcome of verifying every LHG property of a graph for a
// target connectivity k.
type Report struct {
	N int // number of nodes
	M int // number of edges
	K int // target connectivity

	NodeConnectivity int  // exact κ(G)
	EdgeConnectivity int  // exact λ(G)
	KNodeConnected   bool // P1: κ >= k
	KLinkConnected   bool // P2: λ >= k

	LinkMinimal   bool       // P3
	ViolatingEdge graph.Edge // a removable edge when P3 fails
	hasViolation  bool
	Diameter      int     // exact diameter (-1 if disconnected)
	DiameterBound int     // the bound used for P4
	LogDiameter   bool    // P4
	Regular       bool    // P5
	MinDegree     int     // smallest degree
	MaxDegree     int     // largest degree
	AvgPathLen    float64 // mean shortest-path length (-1 if disconnected)

	// Workers is the goroutine budget the run used (1 = serial).
	Workers int `json:"workers"`
	// Phases records per-phase wall time in execution order. Probe counts
	// are filled from the metrics registry when the obs sink is enabled.
	Phases []PhaseTiming `json:"phases,omitempty"`
}

// PhaseTiming is the wall time (and, with the obs sink enabled, the
// max-flow probe count) of one verification phase.
type PhaseTiming struct {
	Phase  string  `json:"phase"`
	Ms     float64 `json:"ms"`
	Probes int64   `json:"probes,omitempty"`
}

// PhaseBreakdown renders the structured timing block printed by
// `lhcheck -v`: one line per phase plus a total.
func (r *Report) PhaseBreakdown() string {
	if len(r.Phases) == 0 {
		return ""
	}
	var b strings.Builder
	total := 0.0
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "  %-12s %10.2fms", p.Phase+":", p.Ms)
		if p.Probes > 0 {
			fmt.Fprintf(&b, "  (%d max-flow probes)", p.Probes)
		}
		b.WriteByte('\n')
		total += p.Ms
	}
	fmt.Fprintf(&b, "  %-12s %10.2fms  (workers: %d)\n", "total:", total, r.Workers)
	return b.String()
}

// IsLHG reports whether all four mandatory LHG properties hold.
func (r *Report) IsLHG() bool {
	return r.KNodeConnected && r.KLinkConnected && r.LinkMinimal && r.LogDiameter
}

// String renders a one-line summary of the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d k=%d κ=%d λ=%d diam=%d(bound %d)",
		r.N, r.M, r.K, r.NodeConnectivity, r.EdgeConnectivity, r.Diameter, r.DiameterBound)
	fmt.Fprintf(&b, " P1=%t P2=%t P3=%t P4=%t regular=%t", r.KNodeConnected,
		r.KLinkConnected, r.LinkMinimal, r.LogDiameter, r.Regular)
	return b.String()
}

// Verify computes the full report for g against target connectivity k.
// It is exact and therefore O(n·maxflow) — intended for verification, not
// for hot paths. k must be at least 1 and less than n.
func Verify(g *graph.Graph, k int) (*Report, error) { return verify(g, k, 1) }

// verify is the shared serial/parallel driver; workers <= 1 runs serially,
// larger values fan the connectivity cuts, the per-edge P3 probes and the
// distance sweep across that many goroutines (see VerifyParallel).
func verify(g *graph.Graph, k, workers int) (*Report, error) {
	n := g.Order()
	if k < 1 {
		return nil, fmt.Errorf("check: connectivity target k=%d must be >= 1", k)
	}
	if n <= k {
		return nil, fmt.Errorf("check: k=%d must be < n=%d", k, n)
	}
	r := &Report{N: n, M: g.Size(), K: k, Workers: workers}
	r.MinDegree, _ = g.MinDegree()
	r.MaxDegree, _ = g.MaxDegree()
	r.Regular = g.IsRegular(k)
	mVerifyRuns.Inc()
	gVerifyWorkers.Set(int64(workers))

	// runPhase wall-times one verification phase into Report.Phases
	// (always) and the obs timers (when the sink is on), attributing the
	// max-flow probes the phase issued via the shared flow counter.
	runPhase := func(name string, t *obs.Timer, fn func()) {
		p0 := mFlowProbes.Value()
		start := time.Now()
		fn()
		d := time.Since(start)
		t.Observe(d)
		r.Phases = append(r.Phases, PhaseTiming{
			Phase:  name,
			Ms:     float64(d) / 1e6,
			Probes: mFlowProbes.Value() - p0,
		})
	}

	runPhase("kappa", tPhaseKappa, func() {
		if workers > 1 {
			r.NodeConnectivity = flow.VertexConnectivityParallel(g, workers)
		} else {
			r.NodeConnectivity = flow.VertexConnectivity(g)
		}
	})
	runPhase("lambda", tPhaseLambda, func() {
		if workers > 1 {
			r.EdgeConnectivity = flow.EdgeConnectivityParallel(g, workers)
		} else {
			r.EdgeConnectivity = flow.EdgeConnectivity(g)
		}
	})
	r.KNodeConnected = r.NodeConnectivity >= k
	r.KLinkConnected = r.EdgeConnectivity >= k

	runPhase("minimality", tPhaseMinimality, func() {
		r.LinkMinimal = verifyLinkMinimality(g, r, workers)
	})

	runPhase("distances", tPhaseDistances, func() {
		r.Diameter, r.AvgPathLen = g.DistanceStats(workers)
	})
	r.DiameterBound = DiameterBound(n, k)
	r.LogDiameter = r.Diameter >= 0 && r.Diameter <= r.DiameterBound
	return r, nil
}

// DiameterBound returns the P4 acceptance bound 2*ceil(log_{k-1}(n)) +
// DiameterSlack. For k <= 2 the logarithm base degenerates, so the bound
// falls back to n (no graph can exceed it; P4 is then vacuous, which
// mirrors the paper's implicit k >= 3 assumption).
func DiameterBound(n, k int) int {
	if k <= 2 || n < 2 {
		return n
	}
	logv := math.Log(float64(n)) / math.Log(float64(k-1))
	return 2*int(math.Ceil(logv)) + DiameterSlack
}

// verifyLinkMinimality checks P3: every single-edge removal must reduce the
// node or link connectivity below its current value. For k-regular graphs
// this is immediate (removing an edge drops a degree below κ=λ=k), so the
// per-edge probes only run for irregular graphs.
//
// Each probe is two single-pair max flows on the masked CSR view
// (flow.EdgeIsRemovable) — connectivity under an edge removal can only drop
// through cuts separating that edge's endpoints, so no clone and no global
// re-sweep is needed. With workers > 1 the probes fan out across a worker
// pool.
func verifyLinkMinimality(g *graph.Graph, r *Report, workers int) bool {
	kappa, lambda := r.NodeConnectivity, r.EdgeConnectivity
	if kappa == 0 || lambda == 0 {
		return false // already disconnected; nothing to preserve
	}
	if r.MaxDegree == lambda {
		// λ <= δ <= Δ == λ, so the graph is λ-regular: removing any edge
		// lowers a degree below λ and with it the link connectivity.
		return true
	}
	edges := g.Edges()
	mP3EdgesProbed.Add(int64(len(edges)))
	removable := flow.EdgesRemovable(g, edges, kappa, lambda, workers)
	// Report the first removable edge in canonical order, so the parallel
	// and serial drivers return identical witnesses.
	for i, e := range edges {
		if removable[i] {
			r.ViolatingEdge = e
			r.hasViolation = true
			return false
		}
	}
	return true
}

// Violation returns the edge witnessing a P3 failure, if any.
func (r *Report) Violation() (graph.Edge, bool) {
	return r.ViolatingEdge, r.hasViolation
}

// QuickVerify checks only the boolean LHG properties with early-exit flows
// (no exact connectivity values, no P3 edge sweep for regular graphs, no
// average path length). It is the fast path used by large sweeps.
func QuickVerify(g *graph.Graph, k int) (bool, error) {
	n := g.Order()
	if k < 1 || n <= k {
		return false, fmt.Errorf("check: invalid pair n=%d k=%d", n, k)
	}
	mQuickRuns.Inc()
	if k >= 2 {
		// Linear-time pre-filter: a single articulation point or bridge
		// already refutes 2-connectivity, far cheaper than max-flow.
		if len(g.ArticulationPoints()) > 0 || len(g.Bridges()) > 0 {
			return false, nil
		}
	}
	if !flow.IsKNodeConnected(g, k) || !flow.IsKEdgeConnected(g, k) {
		return false, nil
	}
	diam := g.Diameter()
	if diam < 0 || diam > DiameterBound(n, k) {
		return false, nil
	}
	if g.IsRegular(k) {
		return true, nil // P3 immediate for k-regular k-connected graphs
	}
	for _, e := range g.Edges() {
		mP3EdgesProbed.Inc()
		if flow.EdgeIsRemovable(g, e, k, k) {
			return false, nil
		}
	}
	return true, nil
}

// MooreDiameterLowerBound returns the smallest diameter any graph with n
// nodes and maximum degree k can possibly have (the Moore bound):
// n <= 1 + k·Σ_{i=0}^{D-1}(k-1)^i. The LHG constructions sit within a
// small constant factor of this optimum, which is the content of E10's
// comparison column.
func MooreDiameterLowerBound(n, k int) int {
	if n <= 1 {
		return 0
	}
	if k <= 1 {
		return n - 1
	}
	if k == 2 {
		return (n - 1 + 1) / 2 // a path/cycle: ceil((n-1)/2) for cycles
	}
	reach := 1
	layer := k
	for d := 1; ; d++ {
		reach += layer
		if reach >= n {
			return d
		}
		layer *= k - 1
	}
}

package core

import "fmt"

// Router answers point-to-point routing queries on a compiled blueprint
// using only the tree structure — no graph search. It operationalizes the
// Lemma 3 diameter argument: within a tree copy, routes follow tree paths;
// across copies they descend to a junction leaf (shared by every copy, or
// an unshared clique crossed in one hop) and ascend in the target copy.
// Every route has length O(log n); the E19 experiment measures the stretch
// against true shortest paths.
type Router struct {
	blue *Blueprint
	real *Realization

	// node -> (kind, position, copy); copy is -1 for shared leaves.
	kind []PositionKind
	pos  []int
	copy []int
	// junction[p]: a descendant leaf position of p (p itself if p is a
	// leaf), following first children.
	junction []int
}

// NewRouter indexes a compiled blueprint for routing.
func NewRouter(blue *Blueprint, real *Realization) (*Router, error) {
	if blue == nil || real == nil || real.Graph == nil {
		return nil, fmt.Errorf("core: router needs a compiled blueprint")
	}
	n := real.Graph.Order()
	r := &Router{
		blue: blue,
		real: real,
		kind: make([]PositionKind, n),
		pos:  make([]int, n),
		copy: make([]int, n),
	}
	for p := 0; p < blue.Positions(); p++ {
		switch blue.Kind[p] {
		case Internal:
			for i := 0; i < blue.K; i++ {
				id := real.CopyNode[i][p]
				r.kind[id], r.pos[id], r.copy[id] = Internal, p, i
			}
		case SharedLeaf:
			id := real.LeafNode[p]
			r.kind[id], r.pos[id], r.copy[id] = SharedLeaf, p, -1
		case UnsharedLeaf:
			for i, id := range real.GroupNode[p] {
				r.kind[id], r.pos[id], r.copy[id] = UnsharedLeaf, p, i
			}
		}
	}
	r.junction = make([]int, blue.Positions())
	for p := blue.Positions() - 1; p >= 0; p-- {
		if blue.Kind[p] != Internal {
			r.junction[p] = p
			continue
		}
		// Positions are created in BFS order, so children have larger
		// indices and their junctions are already computed.
		r.junction[p] = r.junction[blue.Children[p][0]]
	}
	return r, nil
}

// Route returns a path from u to v (inclusive) using only blueprint
// structure. The path is valid in the compiled graph and its length is
// bounded by 3·height(T) + 3.
func (r *Router) Route(u, v int) ([]int, error) {
	n := r.real.Graph.Order()
	if u < 0 || u >= n || v < 0 || v >= n {
		return nil, fmt.Errorf("core: route endpoints (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return []int{u}, nil
	}
	uCopy, vCopy := r.copy[u], r.copy[v]
	switch {
	case r.kind[u] == SharedLeaf && r.kind[v] == SharedLeaf:
		// Both in every copy: walk through copy 0.
		return r.realizeTreePath(r.pos[u], r.pos[v], 0, u, v)
	case r.kind[u] == SharedLeaf:
		return r.realizeTreePath(r.pos[u], r.pos[v], r.copyOf(vCopy), u, v)
	case r.kind[v] == SharedLeaf:
		return r.realizeTreePath(r.pos[u], r.pos[v], r.copyOf(uCopy), u, v)
	case uCopy == vCopy:
		return r.realizeTreePath(r.pos[u], r.pos[v], uCopy, u, v)
	default:
		return r.crossCopyRoute(u, v)
	}
}

// copyOf normalizes a copy index (shared leaves report -1).
func (r *Router) copyOf(c int) int {
	if c < 0 {
		return 0
	}
	return c
}

// crossCopyRoute handles endpoints living in different tree copies:
// descend from u to its junction leaf, switch copies there (free for a
// shared leaf, one clique hop for an unshared one), ascend to v.
func (r *Router) crossCopyRoute(u, v int) ([]int, error) {
	uCopy, vCopy := r.copy[u], r.copy[v]
	jPos := r.junction[r.pos[u]]

	// Leg 1: u down to the junction in u's copy.
	leg1, err := r.realizeTreePath(r.pos[u], jPos, uCopy, u, r.leafNode(jPos, uCopy))
	if err != nil {
		return nil, err
	}
	path := leg1
	// Copy switch at the junction.
	if r.blue.Kind[jPos] == UnsharedLeaf {
		from := r.real.GroupNode[jPos][uCopy]
		to := r.real.GroupNode[jPos][vCopy]
		if from != path[len(path)-1] {
			return nil, fmt.Errorf("core: junction mismatch at position %d", jPos)
		}
		path = append(path, to)
	}
	// Leg 2: junction up to v in v's copy.
	start := path[len(path)-1]
	leg2, err := r.realizeTreePath(jPos, r.pos[v], vCopy, start, v)
	if err != nil {
		return nil, err
	}
	return append(path, leg2[1:]...), nil
}

// leafNode realizes a leaf position in the given copy.
func (r *Router) leafNode(p, copyIdx int) int {
	if r.blue.Kind[p] == SharedLeaf {
		return r.real.LeafNode[p]
	}
	return r.real.GroupNode[p][copyIdx]
}

// realizeTreePath walks the tree path between positions pu and pv and
// realizes it in the given copy, with explicit endpoint nodes (which may be
// shared leaves or clique members rather than copy nodes).
func (r *Router) realizeTreePath(pu, pv, copyIdx, uNode, vNode int) ([]int, error) {
	positions := r.treePath(pu, pv)
	path := make([]int, 0, len(positions))
	for idx, p := range positions {
		var node int
		switch {
		case idx == 0:
			node = uNode
		case idx == len(positions)-1:
			node = vNode
		case r.blue.Kind[p] == Internal:
			node = r.real.CopyNode[copyIdx][p]
		default:
			node = r.leafNode(p, copyIdx)
		}
		path = append(path, node)
	}
	return path, nil
}

// treePath lists the positions from pu to pv through their lowest common
// ancestor.
func (r *Router) treePath(pu, pv int) []int {
	var up []int
	a, b := pu, pv
	for r.blue.Depth[a] > r.blue.Depth[b] {
		up = append(up, a)
		a = r.blue.Parent[a]
	}
	var down []int
	for r.blue.Depth[b] > r.blue.Depth[a] {
		down = append(down, b)
		b = r.blue.Parent[b]
	}
	for a != b {
		up = append(up, a)
		down = append(down, b)
		a = r.blue.Parent[a]
		b = r.blue.Parent[b]
	}
	path := append(up, a)
	for i := len(down) - 1; i >= 0; i-- {
		path = append(path, down[i])
	}
	return path
}

// MaxRouteLength returns the worst-case route length bound 3·height + 3.
func (r *Router) MaxRouteLength() int { return 3*r.blue.Height() + 3 }

package harary

import (
	"testing"

	"lhg/internal/flow"
	"lhg/internal/graph"
)

func TestBuildArgumentErrors(t *testing.T) {
	tests := []struct {
		name string
		n, k int
	}{
		{name: "k too small", n: 10, k: 1},
		{name: "n == k", n: 4, k: 4},
		{name: "n < k", n: 3, k: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Build(tt.n, tt.k); err == nil {
				t.Fatalf("Build(%d,%d) succeeded, want error", tt.n, tt.k)
			}
		})
	}
}

func TestEdgeCountFormula(t *testing.T) {
	for _, tt := range []struct{ n, k, want int }{
		{n: 8, k: 4, want: 16},
		{n: 9, k: 3, want: 14}, // ⌈27/2⌉
		{n: 10, k: 3, want: 15},
		{n: 7, k: 2, want: 7},
	} {
		if got := EdgeCount(tt.n, tt.k); got != tt.want {
			t.Fatalf("EdgeCount(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestBuildMatchesEdgeCount(t *testing.T) {
	for k := 2; k <= 6; k++ {
		for n := k + 1; n <= 24; n++ {
			g, err := Build(n, k)
			if err != nil {
				t.Fatalf("Build(%d,%d): %v", n, k, err)
			}
			if g.Size() != EdgeCount(n, k) {
				t.Fatalf("H(%d,%d) has %d edges, want %d", k, n, g.Size(), EdgeCount(n, k))
			}
		}
	}
}

func TestBuildIsExactlyKConnected(t *testing.T) {
	// Harary's theorem: H(k,n) achieves κ = λ = k with ⌈kn/2⌉ edges.
	for k := 2; k <= 5; k++ {
		for n := k + 2; n <= 16; n++ {
			g, err := Build(n, k)
			if err != nil {
				t.Fatalf("Build(%d,%d): %v", n, k, err)
			}
			if got := flow.VertexConnectivity(g); got != k {
				t.Fatalf("κ(H(%d,%d)) = %d, want %d", k, n, got, k)
			}
			if got := flow.EdgeConnectivity(g); got != k {
				t.Fatalf("λ(H(%d,%d)) = %d, want %d", k, n, got, k)
			}
		}
	}
}

func TestBuildRegularWhenEven(t *testing.T) {
	// H(k,n) is k-regular exactly when k·n is even; otherwise one node has
	// degree k+1.
	for k := 2; k <= 5; k++ {
		for n := k + 1; n <= 20; n++ {
			g, err := Build(n, k)
			if err != nil {
				t.Fatal(err)
			}
			minDeg, _ := g.MinDegree()
			maxDeg, _ := g.MaxDegree()
			if minDeg != k {
				t.Fatalf("H(%d,%d) min degree %d, want %d", k, n, minDeg, k)
			}
			if (k*n)%2 == 0 {
				if maxDeg != k {
					t.Fatalf("H(%d,%d) should be regular, max degree %d", k, n, maxDeg)
				}
			} else if maxDeg != k+1 {
				t.Fatalf("H(%d,%d) max degree %d, want k+1=%d", k, n, maxDeg, k+1)
			}
		}
	}
}

func TestLinearDiameterGrowth(t *testing.T) {
	// The defining weakness of classic Harary graphs: diameter grows
	// linearly in n.
	k := 4
	d40, err := diameterOf(40, k)
	if err != nil {
		t.Fatal(err)
	}
	d80, err := diameterOf(80, k)
	if err != nil {
		t.Fatal(err)
	}
	if d80 < 2*d40-2 {
		t.Fatalf("diameter should roughly double: d(40)=%d d(80)=%d", d40, d80)
	}
	if est := DiameterEstimate(80, k); d80 > est+2 || d80 < est-2 {
		t.Fatalf("d(80)=%d far from estimate %d", d80, est)
	}
}

func diameterOf(n, k int) (int, error) {
	g, err := Build(n, k)
	if err != nil {
		return 0, err
	}
	return g.Diameter(), nil
}

func TestCirculantStructureEvenK(t *testing.T) {
	g, err := Build(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every node must be adjacent to its ±1 and ±2 neighbors.
	for v := 0; v < 10; v++ {
		for _, d := range []int{1, 2} {
			if !g.HasEdge(v, (v+d)%10) {
				t.Fatalf("missing circulant edge (%d,%d)", v, (v+d)%10)
			}
		}
	}
}

func TestDiametersEdgesOddKEvenN(t *testing.T) {
	g, err := Build(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if !g.HasEdge(v, v+4) {
			t.Fatalf("missing diameter edge (%d,%d)", v, v+4)
		}
	}
	if !g.IsRegular(3) {
		t.Fatal("H(3,8) must be 3-regular")
	}
}

var sinkGraph *graph.Graph

func BenchmarkBuildHarary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := Build(1024, 6)
		if err != nil {
			b.Fatal(err)
		}
		sinkGraph = g
	}
}

package graph

import (
	"math/rand"
	"testing"
)

// randomDelta draws a valid delta on g: each existing edge is torn down
// with probability pDel, each absent pair set up with probability pAdd.
func randomDelta(rng *rand.Rand, g *Graph, pDel, pAdd float64) EdgeDelta {
	var d EdgeDelta
	for _, e := range g.Edges() {
		if rng.Float64() < pDel {
			d.Removed = append(d.Removed, e)
		}
	}
	n := g.Order()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < pAdd {
				d.Added = append(d.Added, Edge{U: u, V: v})
			}
		}
	}
	d.Normalize()
	return d
}

// TestCertTrackerMatchesFresh: after every Advance the maintained
// certificate must be bit-identical to a from-scratch SparseCertificate of
// the new graph — for both the saturated fast path (k >= Δ) and the
// general relabeling path.
func TestCertTrackerMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{2, 3, 64} { // 64 saturates every test graph
		g := randomGraphP(rng, 24, 0.3)
		tr := NewCertTracker(g, k)
		if !sameGraph(tr.Cert(), SparseCertificate(g, k)) {
			t.Fatalf("k=%d: initial certificate differs", k)
		}
		for step := 0; step < 20; step++ {
			d := randomDelta(rng, g, 0.15, 0.05)
			next, err := g.ApplyDelta(d, g.Order())
			if err != nil {
				t.Fatalf("k=%d step %d: %v", k, step, err)
			}
			tr.Advance(next, d)
			if !sameGraph(tr.Cert(), SparseCertificate(next, k)) {
				t.Fatalf("k=%d step %d: maintained certificate differs from fresh", k, step)
			}
			g = next
		}
	}
}

// TestCertTrackerChangedSet: the changed-vertex set returned by Advance is
// exactly the row diff between the two certificate epochs — no vertex
// missing (soundness of the re-probe frontier) and none extra beyond the
// membership change.
func TestCertTrackerChangedSet(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, k := range []int{2, 64} {
		g := randomGraphP(rng, 20, 0.25)
		tr := NewCertTracker(g, k)
		for step := 0; step < 15; step++ {
			d := randomDelta(rng, g, 0.2, 0.08)
			prevCert := tr.Cert()
			next, err := g.ApplyDelta(d, g.Order())
			if err != nil {
				t.Fatal(err)
			}
			changed := tr.Advance(next, d)
			inChanged := make(map[int]bool, len(changed))
			for i, v := range changed {
				if i > 0 && changed[i-1] >= v {
					t.Fatalf("k=%d step %d: changed set not sorted: %v", k, step, changed)
				}
				inChanged[v] = true
			}
			want := diffRows(prevCert, tr.Cert())
			for _, v := range want {
				if !inChanged[v] {
					t.Fatalf("k=%d step %d: vertex %d changed membership but was not reported", k, step, v)
				}
			}
			// The saturated fast path may report a touched vertex whose row
			// happens to be restored (removed then re-added edges); anything
			// reported must at least be in the delta frontier or the diff.
			inDiff := make(map[int]bool, len(want))
			for _, v := range want {
				inDiff[v] = true
			}
			inTouched := make(map[int]bool)
			for _, v := range d.Touched() {
				inTouched[v] = true
			}
			for _, v := range changed {
				if !inDiff[v] && !inTouched[v] {
					t.Fatalf("k=%d step %d: vertex %d reported but neither touched nor changed", k, step, v)
				}
			}
			g = next
		}
	}
}

// TestCertTrackerNodeChurn: the tracker follows admissions and departures.
func TestCertTrackerNodeChurn(t *testing.T) {
	g := MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 3}})
	tr := NewCertTracker(g, 8)
	d := EdgeDelta{Added: []Edge{{U: 0, V: 4}, {U: 3, V: 4}}}
	next, err := g.ApplyDelta(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	changed := tr.Advance(next, d)
	if !sameGraph(tr.Cert(), SparseCertificate(next, 8)) {
		t.Fatal("certificate differs after admission")
	}
	if len(changed) == 0 {
		t.Fatal("admission must change membership")
	}
	back, err := next.ApplyDelta(EdgeDelta{Removed: []Edge{{U: 0, V: 4}, {U: 3, V: 4}}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr.Advance(back, EdgeDelta{Removed: []Edge{{U: 0, V: 4}, {U: 3, V: 4}}})
	if !sameGraph(tr.Cert(), SparseCertificate(back, 8)) {
		t.Fatal("certificate differs after departure")
	}
}

package trace

// Live span-event streaming: every span transition of a trace can be
// fanned out to attached emitters the moment it happens. This is the feed
// underneath the lhgd SSE progress streams — the same span tree that lands
// in the flight recorder, observed live instead of post hoc.

// Event types.
const (
	// EventSpanStart fires when a span opens.
	EventSpanStart = "span-start"
	// EventSpanEnd fires when a span closes (DurMs is set).
	EventSpanEnd = "span-end"
	// EventPoint fires for Span.Event point events (probe progress, cache
	// decisions).
	EventPoint = "point"
)

// Event is one live span transition, shaped for JSON serialization onto an
// SSE stream. Times are millisecond offsets from the trace start, so a
// client can build a waterfall without clock agreement.
type Event struct {
	Type   string         `json:"type"`
	Name   string         `json:"name"`
	Trace  string         `json:"trace"`
	Span   string         `json:"span"`
	Parent string         `json:"parent,omitempty"`
	AtMs   float64        `json:"at_ms"`
	DurMs  float64        `json:"dur_ms,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Emitter receives live events of a trace. Emitters run inline on the
// instrumented goroutine: they must be fast and must not block (the serve
// feed buffers and drops rather than stalls).
type Emitter func(Event)

package netflood

import (
	"bufio"
	"net"
	"time"

	"lhg/internal/obs/trace"
)

// This file is the reliable half of the protocol (Options.Reliable): every
// forwarded message is tracked per link until acked; a per-node loop
// retransmits overdue messages with exponential backoff and jitter; a peer
// that exhausts the missed-ack threshold is suspected and its link redialed
// (the hello rides the raw socket, so a lossy fault plan cannot wedge
// recovery); a peer that exhausts its reconnection budget is declared dead
// and its link torn down — graceful degradation back to the crash model,
// which the k-connected topology tolerates for up to k-1 peers.

// track records m as pending on link p until the remote acks it.
func (n *node) track(p *peerConn, m Message) {
	key := id{src: m.Src, seq: m.Seq}
	now := time.Now()
	p.mu.Lock()
	if p.pending != nil && !p.dead {
		if _, ok := p.pending[key]; !ok {
			p.pending[key] = &pendingEntry{
				msg:       m,
				firstSent: now,
				nextDue:   now.Add(n.c.opts.RetransmitBase),
			}
		}
	}
	p.mu.Unlock()
}

// sendAck acknowledges one received message copy on the link it arrived on.
func (n *node) sendAck(p *peerConn, m Message) {
	mNetAcksSent.Inc()
	ack := Message{Src: m.Src, Seq: m.Seq}
	_ = writeFrame(p, frame{Kind: "ack", Msg: &ack}, n.c.opts.WriteTimeout)
}

// handleAck settles the pending entry the ack names and observes its RTT.
// Acks for already-settled messages (duplicate acks, acks raced by a
// reconnection reset) are ignored.
func (n *node) handleAck(p *peerConn, m Message) {
	key := id{src: m.Src, seq: m.Seq}
	p.mu.Lock()
	e, ok := p.pending[key]
	if ok {
		delete(p.pending, key)
	}
	p.rebuilds = 0 // an ack proves the link healthy: restore its budget
	p.mu.Unlock()
	if ok {
		mNetAcksRecv.Inc()
		hNetAckRTT.Observe(time.Since(e.firstSent).Microseconds())
	}
}

// retransmitLoop drives retransmission and peer health for one node. It
// ticks at a quarter of the base backoff so due times are honored with
// little slack, and exits with the node.
func (n *node) retransmitLoop() {
	defer n.wg.Done()
	tick := n.c.opts.RetransmitBase / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-t.C:
			n.retransmitDue(time.Now())
		}
	}
}

// retransmitDue resends every overdue pending message and escalates peers
// whose messages have exhausted the missed-ack threshold.
func (n *node) retransmitDue(now time.Time) {
	n.mu.Lock()
	peers := make([]*peerConn, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		var resend []Message
		suspect := false
		p.mu.Lock()
		for _, e := range p.pending {
			if e.nextDue.After(now) {
				continue
			}
			if e.attempts >= n.c.opts.MaxRetries {
				suspect = true
				continue
			}
			e.attempts++
			backoff := n.c.opts.RetransmitBase << uint(e.attempts-1)
			if backoff > n.c.opts.RetransmitMax || backoff <= 0 {
				backoff = n.c.opts.RetransmitMax
			}
			e.nextDue = now.Add(n.rng.Jitter(backoff, 0.25))
			resend = append(resend, e.msg)
		}
		p.mu.Unlock()
		for i := range resend {
			mNetRetransmits.Inc()
			_ = writeFrame(p, frame{Kind: "msg", Msg: &resend[i]}, n.c.opts.WriteTimeout)
		}
		if len(resend) > 0 && trace.Enabled() {
			trace.Instant("netflood.retransmit",
				trace.Int("node", int64(n.idx)),
				trace.Int("peer", int64(p.remote)),
				trace.Int("resent", int64(len(resend))))
		}
		if suspect {
			n.repairPeer(p)
		}
	}
}

// repairPeer redials a peer that stopped acking. A successful redial swaps
// the socket under the existing peerConn, so pending messages retransmit
// immediately on the fresh link. A failed dial — or an exhausted
// reconnection budget — declares the peer dead: the link is torn down, its
// pending traffic abandoned, and the flood continues on the surviving
// links.
func (n *node) repairPeer(p *peerConn) {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.rebuilds++
	exhausted := p.rebuilds > n.c.opts.MaxReconnects
	p.mu.Unlock()

	if !exhausted {
		if addr, ok := n.c.nodeAddr(p.remote); ok {
			if conn, err := net.DialTimeout("tcp", addr, n.c.opts.HandshakeTimeout); err == nil {
				hello := frame{Kind: "hello", From: n.idx}
				if err := writeFrameTo(conn, hello, n.c.opts.WriteTimeout); err == nil {
					if n.attach(p.remote, conn, bufio.NewReader(conn)) != nil {
						mNetReconnects.Inc()
						return
					}
				}
				conn.Close()
			}
		}
	}
	if n.unregister(p.remote) {
		mNetPeersDead.Inc()
	}
}

// Package flow implements unit-capacity maximum flow (Dinic's algorithm)
// and the connectivity queries built on it: s-t edge/vertex min cuts,
// global edge connectivity, global vertex connectivity (Esfahanian–Hakimi),
// and Menger-style extraction of vertex-disjoint paths.
//
// These are the verification workhorses for the LHG properties P1 and P2:
// a graph is k-node (k-link) connected iff its vertex (edge) connectivity
// is at least k, by Menger's theorem.
package flow

// network is a directed flow network stored as an edge list where the edge
// with index e and its reverse e^1 are stored adjacently, the standard
// Dinic layout.
type network struct {
	n     int
	to    []int
	cap   []int
	first [][]int // first[v] lists edge indices leaving v

	// scratch buffers reused across maxflow runs
	level []int
	iter  []int
	queue []int
}

func newNetwork(n int) *network {
	return &network{
		n:     n,
		first: make([][]int, n),
		level: make([]int, n),
		iter:  make([]int, n),
		queue: make([]int, 0, n),
	}
}

// addArc inserts a directed arc u->v with capacity c and its zero-capacity
// reverse. It returns the forward edge index.
func (nw *network) addArc(u, v, c int) int {
	e := len(nw.to)
	nw.to = append(nw.to, v, u)
	nw.cap = append(nw.cap, c, 0)
	nw.first[u] = append(nw.first[u], e)
	nw.first[v] = append(nw.first[v], e+1)
	return e
}

// bfs builds the level graph; it reports whether t is reachable in the
// residual network.
func (nw *network) bfs(s, t int) bool {
	for i := range nw.level {
		nw.level[i] = -1
	}
	nw.queue = nw.queue[:0]
	nw.queue = append(nw.queue, s)
	nw.level[s] = 0
	for qi := 0; qi < len(nw.queue); qi++ {
		u := nw.queue[qi]
		for _, e := range nw.first[u] {
			v := nw.to[e]
			if nw.cap[e] > 0 && nw.level[v] < 0 {
				nw.level[v] = nw.level[u] + 1
				nw.queue = append(nw.queue, v)
			}
		}
	}
	return nw.level[t] >= 0
}

// dfs sends blocking flow along the level graph.
func (nw *network) dfs(u, t, f int) int {
	if u == t {
		return f
	}
	for ; nw.iter[u] < len(nw.first[u]); nw.iter[u]++ {
		e := nw.first[u][nw.iter[u]]
		v := nw.to[e]
		if nw.cap[e] <= 0 || nw.level[v] != nw.level[u]+1 {
			continue
		}
		pushed := f
		if nw.cap[e] < pushed {
			pushed = nw.cap[e]
		}
		if d := nw.dfs(v, t, pushed); d > 0 {
			nw.cap[e] -= d
			nw.cap[e^1] += d
			return d
		}
	}
	return 0
}

const inf = int(^uint(0) >> 1)

// maxflow computes the maximum s-t flow, optionally stopping early once the
// flow reaches `limit` (pass a negative limit for no bound). Early stopping
// makes global-connectivity sweeps cheap: once the running minimum is m, any
// pair with flow >= m cannot improve it.
func (nw *network) maxflow(s, t, limit int) int {
	if s == t {
		return inf
	}
	flow := 0
	for nw.bfs(s, t) {
		for i := range nw.iter {
			nw.iter[i] = 0
		}
		for {
			f := nw.dfs(s, t, inf)
			if f == 0 {
				break
			}
			flow += f
			if limit >= 0 && flow >= limit {
				return flow
			}
		}
	}
	return flow
}

// residualReach marks every node reachable from s in the residual network.
func (nw *network) residualReach(s int) []bool {
	seen := make([]bool, nw.n)
	seen[s] = true
	stack := []int{s}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range nw.first[u] {
			if v := nw.to[e]; nw.cap[e] > 0 && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

package member

import (
	"testing"

	"lhg/internal/check"
	"lhg/internal/core"
	"lhg/internal/graph"
)

func kdiamondTopo(n, k int) (*graph.Graph, error) {
	kd, err := core.BuildKDiamond(n, k)
	if err != nil {
		return nil, err
	}
	return kd.Real.Graph, nil
}

func newSystem(t *testing.T, k, n int) *System {
	t.Helper()
	s, err := New(k, n, kdiamondTopo)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	if _, err := New(3, 10, nil); err == nil {
		t.Fatal("nil topology must error")
	}
	if _, err := New(3, 4, kdiamondTopo); err == nil {
		t.Fatal("n < 2k must error")
	}
}

func TestJoinSequenceKeepsConsistentViews(t *testing.T) {
	s := newSystem(t, 3, 6)
	for i := 0; i < 10; i++ {
		rep, err := s.ProposeJoin()
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		if rep.View.Version != i+1 || rep.View.Size != 7+i {
			t.Fatalf("join %d installed view %+v", i, rep.View)
		}
		if !s.ConsistentViews() {
			t.Fatalf("join %d left inconsistent views: %v", i, s.Views())
		}
		if rep.Applied != 6+i {
			t.Fatalf("join %d applied by %d members, want %d", i, rep.Applied, 6+i)
		}
	}
	if s.Size() != 16 {
		t.Fatalf("size = %d, want 16", s.Size())
	}
}

func TestCrashThenRepair(t *testing.T) {
	s := newSystem(t, 4, 20)
	if err := s.Crash(3, 7, 11); err != nil { // k-1 = 3 crashes
		t.Fatal(err)
	}
	if s.CrashedCount() != 3 {
		t.Fatalf("crashed = %d", s.CrashedCount())
	}
	// Application traffic still reaches every survivor pre-repair.
	res, err := s.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Reached != 17 {
		t.Fatalf("degraded broadcast: %v", res)
	}
	// Repair removes the dead members and rebuilds at 17.
	rep, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rep.View.Size != 17 || s.Size() != 17 {
		t.Fatalf("repair produced size %d (report %+v)", s.Size(), rep.View)
	}
	if !s.ConsistentViews() {
		t.Fatal("views inconsistent after repair")
	}
	if s.CrashedCount() != 0 {
		t.Fatal("crashed members must be gone after repair")
	}
	// The repaired topology is a verified LHG again.
	r, err := check.Verify(s.Graph(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsLHG() {
		t.Fatalf("repaired topology is not an LHG: %s", r)
	}
}

func TestRepairNothingToDo(t *testing.T) {
	s := newSystem(t, 3, 8)
	if _, err := s.Repair(); err == nil {
		t.Fatal("repair with no crashes must error")
	}
}

func TestCrashUnknownMember(t *testing.T) {
	s := newSystem(t, 3, 8)
	if err := s.Crash(99); err == nil {
		t.Fatal("unknown member must error")
	}
}

func TestJoinWithCrashedMembersStillConsistent(t *testing.T) {
	// Joins keep working while k-1 crashed members are still wired in.
	s := newSystem(t, 4, 16)
	if err := s.Crash(2, 9, 14); err != nil {
		t.Fatal(err)
	}
	rep, err := s.ProposeJoin()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 13 { // 16 - 3 alive
		t.Fatalf("applied by %d, want 13", rep.Applied)
	}
	if !s.ConsistentViews() {
		t.Fatal("alive views inconsistent")
	}
	// The crashed members' installed views lag behind.
	views := s.Views()
	if views[2] == s.CurrentView() {
		t.Fatal("crashed member cannot have installed the new view")
	}
}

func TestTooManyCrashesBlockViewChanges(t *testing.T) {
	// With k crashes the adversary could cut the flood; with the sequencer
	// pattern and k random-ish crashes the flood may still succeed, so
	// force a real cut: crash every neighbor of the last member.
	s := newSystem(t, 3, 12)
	g := s.Graph()
	victim := g.Order() - 1
	nbrs := g.Neighbors(victim)
	if err := s.Crash(nbrs...); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProposeJoin(); err == nil {
		t.Fatal("isolated member must block the view change")
	}
}

func TestEveryMemberCrashed(t *testing.T) {
	s := newSystem(t, 3, 6)
	if err := s.Crash(0, 1, 2, 3, 4, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Broadcast(); err == nil {
		t.Fatal("no alive sequencer must error")
	}
}

func TestRepairChurnAccounting(t *testing.T) {
	s := newSystem(t, 3, 14)
	if err := s.Crash(0, 6); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Churn.Kept+rep.Churn.Added != s.Graph().Size() {
		t.Fatalf("churn accounting: %+v vs new m=%d", rep.Churn, s.Graph().Size())
	}
}

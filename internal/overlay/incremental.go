package overlay

import (
	"fmt"

	"lhg/internal/core"
	"lhg/internal/flood"
	"lhg/internal/graph"
)

// Grower is the incremental-maintenance interface implemented by
// core.KTreeGrower and core.KDiamondGrower: one admission per Grow call,
// O(k²) edge churn, stable node ids, LHG-valid after every step. Graph and
// Snapshot both return the frozen (immutable) view of the current
// topology; the names survive from the mutable era, when only Graph
// copied.
type Grower interface {
	Grow() (core.EdgeDelta, error)
	Graph() *graph.Graph
	Snapshot() *graph.Graph
	N() int
	K() int
}

var (
	_ Grower = (*core.KTreeGrower)(nil)
	_ Grower = (*core.KDiamondGrower)(nil)
)

// Incremental is a join-only overlay maintained by graph surgery instead of
// canonical rebuilds. Compared to Overlay it trades leave-support for
// constant (in n) reconfiguration cost per join — see experiment E15.
type Incremental struct {
	gr   Grower
	gens int
}

// NewIncremental wraps a grower as an overlay.
func NewIncremental(gr Grower) (*Incremental, error) {
	if gr == nil {
		return nil, fmt.Errorf("overlay: nil grower")
	}
	return &Incremental{gr: gr}, nil
}

// Size returns the current number of members.
func (o *Incremental) Size() int { return o.gr.N() }

// K returns the connectivity target.
func (o *Incremental) K() int { return o.gr.K() }

// Generation returns how many joins have been processed.
func (o *Incremental) Generation() int { return o.gens }

// Graph returns a copy of the current topology.
func (o *Incremental) Graph() *graph.Graph { return o.gr.Graph() }

// Join admits one member and returns the link churn (setup + teardown
// counts mirroring Overlay's accounting).
func (o *Incremental) Join() (Churn, error) {
	d, err := o.gr.Grow()
	if err != nil {
		return Churn{}, fmt.Errorf("overlay: incremental join: %w", err)
	}
	o.gens++
	kept := o.gr.Snapshot().Size() - len(d.Added)
	return Churn{Added: len(d.Added), Removed: len(d.Removed), Kept: kept}, nil
}

// Broadcast floods from source over the current topology under failures.
func (o *Incremental) Broadcast(source int, f flood.Failures) (*flood.Result, error) {
	return flood.Run(o.gr.Snapshot(), source, f)
}

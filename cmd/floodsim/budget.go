package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"lhg/internal/ampguard"
	"lhg/internal/graph"
)

// budgetArtifact is the -budget -json artifact: the full analyzer report
// plus the runtime enforcement plan derived from it, one object.
type budgetArtifact struct {
	*ampguard.Report
	Guard ampguard.Guard `json:"guard"`
}

// runBudget is the -budget mode: price the topology's delivery guarantee
// under the reliable protocol's retry policy without sending a frame. The
// human report leads with the two numbers that matter — the unguarded
// cascade hazard and the enforceable frame ceiling — and ends with the
// guard plan that -guard applies at runtime.
func runBudget(out io.Writer, name string, g *graph.Graph, source, k int, asJSON bool) error {
	report, err := ampguard.Analyze(context.Background(), g, source, k, ampguard.DefaultPolicy())
	if err != nil {
		return err
	}
	guard := report.Guard()
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(budgetArtifact{Report: report, Guard: guard})
	}
	p := report.Policy
	fmt.Fprintf(out, "topology:      %s, %d edges, source %d\n", name, report.Edges, report.Source)
	fmt.Fprintf(out, "policy:        timeout %s, backoff %s..%s, %d retries, jitter %.0f%%\n",
		p.Timeout, p.Base, p.Max, p.Retries, p.Jitter*100)
	fmt.Fprintf(out, "frame ceiling: %d frames per broadcast (2m x %d attempts, enforced)\n",
		report.FrameCeiling, p.EdgeAttempts())
	fmt.Fprintf(out, "amplification: %.4gx worst-case retry cascade if unguarded (%d hops max)\n",
		report.MaxAmplification, report.MaxHops)
	fmt.Fprintf(out, "worst latency: %s on the costliest guaranteed path\n", report.MaxLatency)
	fmt.Fprintf(out, "diversity:     >= %d disjoint paths to every target (design k = %d)\n",
		report.MinDiversity, report.K)
	fmt.Fprintf(out, "guard:         hop budget %d, retry budget %d, rate %.1f/s burst %d, diversity gate %d\n",
		guard.HopBudget, guard.RetryBudget, guard.RetransmitRate, guard.RetransmitBurst, guard.PathDiversity)
	return nil
}

package graph

// DominatingSet returns a deterministic greedy dominating set of g: every
// node is either in the set or adjacent to a member. The greedy scan admits
// node v exactly when no earlier member covers it, so the result is
// reproducible run to run and has at most n/(δ+1)·(1+o(1)) members on
// near-regular graphs — the probe-count reduction the Matula shared-λ pass
// in internal/flow is built on (any dominating set intersects both sides of
// a sub-δ minimum edge cut, so λ(G) = min(δ, min over in-set pairs)).
//
// Isolated nodes dominate only themselves and are always members. The empty
// graph yields an empty set.
func (g *Graph) DominatingSet() []int {
	n := g.Order()
	covered := make([]bool, n)
	var set []int
	for v := 0; v < n; v++ {
		if covered[v] {
			continue
		}
		set = append(set, v)
		covered[v] = true
		for _, w := range g.row(v) {
			covered[w] = true
		}
	}
	return set
}

// UnionFind is a disjoint-set forest with union by size and path halving.
// It is the contraction substrate of the Karger prescreen in internal/check:
// contracting an edge is one Union, and the surviving super-nodes are the
// distinct roots.
type UnionFind struct {
	parent []int32
	size   []int32
	count  int
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		size:   make([]int32, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Reset restores every node to its own singleton set, reusing storage.
func (uf *UnionFind) Reset() {
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	uf.count = len(uf.parent)
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	p := int32(x)
	for uf.parent[p] != p {
		uf.parent[p] = uf.parent[uf.parent[p]] // path halving
		p = uf.parent[p]
	}
	return int(p)
}

// Union merges the sets of x and y, reporting whether a merge happened
// (false when they were already together).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := int32(uf.Find(x)), int32(uf.Find(y))
	if rx == ry {
		return false
	}
	if uf.size[rx] < uf.size[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	uf.size[rx] += uf.size[ry]
	uf.count--
	return true
}

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Count returns the number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// SetSize returns the size of x's set.
func (uf *UnionFind) SetSize(x int) int { return int(uf.size[uf.Find(x)]) }

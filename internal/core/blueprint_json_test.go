package core

import (
	"encoding/json"
	"testing"

	"lhg/internal/graph"
)

func TestBlueprintJSONRoundTrip(t *testing.T) {
	for _, build := range []func() (*Blueprint, error){
		func() (*Blueprint, error) {
			kt, err := BuildKTree(21, 3)
			if err != nil {
				return nil, err
			}
			return kt.Blue, nil
		},
		func() (*Blueprint, error) {
			kd, err := BuildKDiamond(13, 3)
			if err != nil {
				return nil, err
			}
			return kd.Blue, nil
		},
		func() (*Blueprint, error) {
			jd, err := BuildJD(16, 4)
			if err != nil {
				return nil, err
			}
			return jd.Blue, nil
		},
	} {
		blue, err := build()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(blue)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Blueprint
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if back.K != blue.K || back.Positions() != blue.Positions() {
			t.Fatalf("shape changed: k=%d/%d positions=%d/%d",
				back.K, blue.K, back.Positions(), blue.Positions())
		}
		for p := 0; p < blue.Positions(); p++ {
			if back.Parent[p] != blue.Parent[p] || back.Kind[p] != blue.Kind[p] ||
				back.Depth[p] != blue.Depth[p] || back.Added[p] != blue.Added[p] {
				t.Fatalf("position %d changed in round trip", p)
			}
		}
		// The decoded blueprint compiles to the identical graph.
		a, err := blue.Compile()
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Compile()
		if err != nil {
			t.Fatal(err)
		}
		ea, eb := a.Graph.Edges(), b.Graph.Edges()
		if len(ea) != len(eb) {
			t.Fatal("edge counts differ after round trip")
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
			}
		}
	}
}

func TestBlueprintJSONRejectsCorruption(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{name: "garbage", data: `nope`},
		{name: "empty", data: `{"k":3,"parent":[],"kind":[],"added":[]}`},
		{name: "length mismatch", data: `{"k":3,"parent":[-1],"kind":[1,1],"added":[false]}`},
		{name: "bad kind", data: `{"k":3,"parent":[-1],"kind":[9],"added":[false]}`},
		{name: "root with parent", data: `{"k":3,"parent":[2],"kind":[1],"added":[false]}`},
		{name: "forward parent", data: `{"k":3,"parent":[-1,2,1],"kind":[1,2,2],"added":[false,false,false]}`},
		{name: "wrong child count", data: `{"k":3,"parent":[-1,0],"kind":[1,2],"added":[false,false]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b Blueprint
			if err := json.Unmarshal([]byte(tt.data), &b); err == nil {
				t.Fatal("decode succeeded, want error")
			}
		})
	}
}

// TestGrowerIsomorphicInvariants: the grower's graph at size n shares every
// isomorphism invariant we track with the canonical builder's graph: degree
// sequence, edge count, diameter and connectivity.
func TestGrowerIsomorphicInvariants(t *testing.T) {
	k := 3
	ktg, err := NewKTreeGrower(k)
	if err != nil {
		t.Fatal(err)
	}
	kdg, err := NewKDiamondGrower(k)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 24; step++ {
		if _, err := ktg.Grow(); err != nil {
			t.Fatal(err)
		}
		if _, err := kdg.Grow(); err != nil {
			t.Fatal(err)
		}
		n := 2*k + step + 1
		kt, err := BuildKTree(n, k)
		if err != nil {
			t.Fatal(err)
		}
		compareInvariants(t, "ktree", n, ktg.Snapshot(), kt.Real.Graph)
		kd, err := BuildKDiamond(n, k)
		if err != nil {
			t.Fatal(err)
		}
		compareInvariants(t, "kdiamond", n, kdg.Snapshot(), kd.Real.Graph)
	}
}

func compareInvariants(t *testing.T, name string, n int, a, b *graph.Graph) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("%s n=%d: edges %d vs %d", name, n, a.Size(), b.Size())
	}
	da, db := a.Degrees(), b.Degrees()
	counts := map[int]int{}
	for _, d := range da {
		counts[d]++
	}
	for _, d := range db {
		counts[d]--
	}
	for d, c := range counts {
		if c != 0 {
			t.Fatalf("%s n=%d: degree-%d multiplicity differs by %d", name, n, d, c)
		}
	}
	if a.Diameter() != b.Diameter() {
		t.Fatalf("%s n=%d: diameter %d vs %d", name, n, a.Diameter(), b.Diameter())
	}
}

// Package obs is the observability layer of the repository: counters,
// gauges and fixed-bucket histograms, a phase-scoped trace timer, and a
// throttled progress reporter for long sweeps.
//
// The design constraint is the hot path. Verification runs thousands of
// sub-microsecond probes per second (see BenchmarkBFSSteadyState and
// BenchmarkEdgeProbeSteadyState), so every metric is a pre-registered
// handle whose update is
//
//   - a single atomic load and branch when the sink is disabled (the
//     default — effectively a no-op sink), and
//   - a handful of atomic adds when enabled.
//
// No update allocates, no update takes a lock, and every operation is safe
// under the race detector. Enabling and disabling the sink at runtime is
// itself atomic, so a CLI can flip it on for one run and dump a report at
// exit.
//
// Metrics are registered once, at package init time of the instrumented
// package, into the process-wide Default registry:
//
//	var probes = obs.NewCounter("flow.maxflow.probes")
//	...
//	probes.Inc()
//
// Reports come out three ways: WriteJSON (the -metrics CLI flag),
// WritePrometheus (the /metrics endpoint) and expvar (the /debug/vars
// endpoint); see export.go and http.go.
package obs

import "sync/atomic"

// enabled is the global sink gate. All metric updates check it first; the
// disabled path is one atomic load and a predictable branch.
var enabled atomic.Bool

// Enable turns the metrics sink on. Updates start accumulating.
func Enable() { enabled.Store(true) }

// Disable turns the metrics sink off. Updates become no-ops; accumulated
// values are retained until Reset.
func Disable() { enabled.Store(false) }

// Enabled reports whether the sink is collecting. Instrumented code can use
// it to skip loops that exist only to feed metrics (e.g. per-node latency
// observations); individual metric updates do not need the check — they
// perform it themselves.
func Enabled() bool { return enabled.Load() }

package graph

import (
	"testing"
	"testing/quick"
)

func TestBFSTreeOfCycle(t *testing.T) {
	g := cycle(7)
	tree := g.BFSTree(0)
	if tree.Size() != 6 {
		t.Fatalf("spanning tree has %d edges, want n-1=6", tree.Size())
	}
	if !tree.Connected() {
		t.Fatal("spanning tree must be connected")
	}
	// Every tree edge exists in the source graph.
	for _, e := range tree.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("tree edge %v not in source graph", e)
		}
	}
}

func TestBFSTreePreservesDistances(t *testing.T) {
	g := complete(6)
	tree := g.BFSTree(2)
	gd := g.BFSFrom(2)
	td := tree.BFSFrom(2)
	for v := range gd {
		if gd[v] != td[v] {
			t.Fatalf("BFS tree distance to %d is %d, graph distance %d", v, td[v], gd[v])
		}
	}
}

func TestBFSTreeDisconnected(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1}})
	tree := g.BFSTree(0)
	if tree.Size() != 1 {
		t.Fatalf("tree of a 2-node component has %d edges, want 1", tree.Size())
	}
}

func TestBFSTreeBadSource(t *testing.T) {
	g := cycle(4)
	tree := g.BFSTree(-1)
	if tree.Size() != 0 || tree.Order() != 4 {
		t.Fatalf("tree from invalid source: %s", tree.String())
	}
}

func TestPropertyBFSTreeIsSpanningTree(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		g := randomGraph(n, uint64(seed))
		tree := g.BFSTree(0)
		// Edge count must be (reachable nodes - 1); tree must be acyclic
		// (edge count equals that) and distances preserved.
		reach := 0
		gd := g.BFSFrom(0)
		for _, d := range gd {
			if d >= 0 {
				reach++
			}
		}
		if tree.Size() != reach-1 {
			return false
		}
		td := tree.BFSFrom(0)
		for v := range gd {
			if gd[v] != td[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"fmt"
	"io"

	"lhg"
	"lhg/internal/classic"
)

// runE22 quantifies the paper's §1 motivation: the classic structured
// families (hypercubes, cube-connected cycles, de Bruijn graphs) have
// logarithmic diameter but exist only for isolated (n,k) pairs, while the
// constraint-based LHGs cover every n >= 2k. The table counts, for each k,
// how many sizes in a window each family can serve.
func runE22(w io.Writer) error {
	const (
		lo = 6
		hi = 600
	)
	fmt.Fprintf(w, "sizes n in [%d,%d] each family can serve, per k\n", lo, hi)
	fmt.Fprintf(w, "%-4s %-10s %-12s %-6s %-10s %-10s %-10s\n",
		"k", "hypercube", "de-bruijn", "ccc", "jd", "ktree/kd", "harary")
	for k := 2; k <= 6; k++ {
		var hc, db, ccc, jd, lhgC, har int
		for n := lo; n <= hi; n++ {
			if classic.HypercubeExists(n, k) {
				hc++
			}
			if classic.DeBruijnExists(n, k) {
				db++
			}
			if classic.CCCExists(n, k) {
				ccc++
			}
			if lhg.Exists(lhg.JD, n, k) {
				jd++
			}
			if lhg.Exists(lhg.KTree, n, k) {
				lhgC++
			}
			if lhg.Exists(lhg.Harary, n, k) {
				har++
			}
		}
		fmt.Fprintf(w, "%-4d %-10d %-12d %-6d %-10d %-10d %-10d\n", k, hc, db, ccc, jd, lhgC, har)
	}
	// Sanity: the classics really do deliver their promised pairs.
	q4, err := classic.Hypercube(4)
	if err != nil {
		return err
	}
	ok, err := lhg.IsLHG(expCtx, q4, 4)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("Q4 must satisfy the LHG properties for (16,4)")
	}
	fmt.Fprintln(w, "paper §1: hypercubes/de Bruijn/CCC are LHG instances but for isolated pairs;")
	fmt.Fprintln(w, "the K-TREE/K-DIAMOND constraints cover every n >= 2k (Harary covers all n > k")
	fmt.Fprintln(w, "but at linear diameter)")
	return nil
}

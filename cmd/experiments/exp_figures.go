package main

import (
	"fmt"
	"io"

	"lhg/internal/check"
	"lhg/internal/core"
	"lhg/internal/flow"
	"lhg/internal/graph"
)

// runE1 rebuilds the Figure 2 K-TREE witnesses and verifies every LHG
// property exactly.
func runE1(w io.Writer) error {
	pairs := []struct{ n, k int }{{6, 3}, {9, 3}, {10, 3}}
	fmt.Fprintf(w, "%-8s %-4s %-4s %-8s %-8s %-5s %-3s %-3s %-8s %-5s\n",
		"pair", "m", "diam", "degmin", "degmax", "reg", "κ", "λ", "minimal", "LHG")
	for _, p := range pairs {
		kt, err := core.BuildKTree(p.n, p.k)
		if err != nil {
			return err
		}
		if err := core.ValidateKTree(kt.Blue); err != nil {
			return fmt.Errorf("(%d,%d) constraint violated: %w", p.n, p.k, err)
		}
		if err := printWitnessRow(w, fmt.Sprintf("(%d,%d)", p.n, p.k), kt.Real, p.k); err != nil {
			return err
		}
	}
	return nil
}

// runE2 rebuilds the Figure 3 K-DIAMOND witnesses.
func runE2(w io.Writer) error {
	pairs := []struct{ n, k int }{{7, 3}, {8, 3}, {13, 3}, {14, 3}}
	fmt.Fprintf(w, "%-8s %-4s %-4s %-8s %-8s %-5s %-3s %-3s %-8s %-5s\n",
		"pair", "m", "diam", "degmin", "degmax", "reg", "κ", "λ", "minimal", "LHG")
	for _, p := range pairs {
		kd, err := core.BuildKDiamond(p.n, p.k)
		if err != nil {
			return err
		}
		if err := core.ValidateKDiamond(kd.Blue); err != nil {
			return fmt.Errorf("(%d,%d) constraint violated: %w", p.n, p.k, err)
		}
		if err := printWitnessRow(w, fmt.Sprintf("(%d,%d)", p.n, p.k), kd.Real, p.k); err != nil {
			return err
		}
	}
	return nil
}

func printWitnessRow(w io.Writer, name string, real *core.Realization, k int) error {
	r, err := check.VerifyCtx(expCtx, real.Graph, k, check.Options{Workers: verifyWorkers})
	if err != nil {
		return err
	}
	if !r.IsLHG() {
		return fmt.Errorf("%s failed verification: %s", name, r)
	}
	fmt.Fprintf(w, "%-8s %-4d %-4d %-8d %-8d %-5t %-3d %-3d %-8t %-5t\n",
		name, r.M, r.Diameter, r.MinDegree, r.MaxDegree, r.Regular,
		r.NodeConnectivity, r.EdgeConnectivity, r.LinkMinimal, r.IsLHG())
	return nil
}

// runE3 reproduces Figure 1: three internally vertex-disjoint paths between
// a same-tree pair and a cross-tree pair on the (21,3) K-TREE graph.
func runE3(w io.Writer) error {
	kt, err := core.BuildKTree(21, 3)
	if err != nil {
		return err
	}
	g, labels := kt.Real.Graph, kt.Real.Labels

	// Same-tree pair (Figure 1a): two copy-0 internal nodes, siblings under
	// the root, hence non-adjacent.
	s := kt.Real.CopyNode[0][1]
	t := kt.Real.CopyNode[0][2]
	if err := printDisjointPaths(w, "same tree (s,t in T1)", g, labels, s, t, 3); err != nil {
		return err
	}
	// Cross-tree pair (Figure 1b): an internal node of copy 0 and one of
	// copy 2.
	s = kt.Real.CopyNode[0][1]
	t = kt.Real.CopyNode[2][3]
	return printDisjointPaths(w, "cross tree (s in T1, t in T3)", g, labels, s, t, 3)
}

func printDisjointPaths(w io.Writer, title string, g *graph.Graph, labels map[int]string, s, t, k int) error {
	paths, err := flow.VertexDisjointPaths(g, s, t)
	if err != nil {
		return err
	}
	if len(paths) < k {
		return fmt.Errorf("%s: found %d disjoint paths, want >= %d", title, len(paths), k)
	}
	fmt.Fprintf(w, "%s: %d internally vertex-disjoint paths %s -> %s\n",
		title, len(paths), labels[s], labels[t])
	for i, p := range paths {
		fmt.Fprintf(w, "  path %d:", i+1)
		for _, v := range p {
			fmt.Fprintf(w, " %s", labels[v])
		}
		fmt.Fprintln(w)
	}
	return nil
}

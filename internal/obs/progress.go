package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a throttled progress reporter for long sweeps. Add is safe
// from many goroutines and prints at most once per interval, so a sweep
// can report per-item without flooding the terminal. A nil writer (or a
// nil *Progress) disables all output, letting callers thread one through
// unconditionally.
//
// Output is plain lines — not carriage-return tricks — so it composes with
// CI logs and with stdout redirection (progress always belongs on stderr;
// see the cmd-level stdout/stderr contract).
type Progress struct {
	w        io.Writer
	label    string
	total    int64
	interval time.Duration
	start    time.Time

	done     atomic.Int64
	lastNano atomic.Int64 // monotonic nanos since start of the last print

	mu sync.Mutex // serializes writes to w
}

// NewProgress starts a progress reporter labelled label over total items
// (total <= 0 means "unknown total"; negative totals are treated as
// unknown, never divided by), printing to w at most every 500ms. Pass a
// nil writer to disable output.
func NewProgress(w io.Writer, label string, total int64) *Progress {
	if total < 0 {
		total = 0
	}
	p := &Progress{
		w:        w,
		label:    label,
		total:    total,
		interval: 500 * time.Millisecond,
		start:    time.Now(),
	}
	// Arm the throttle so the very first Add prints (the monotonic
	// elapsed time starts near zero, far past this sentinel).
	p.lastNano.Store(math.MinInt64 / 4)
	return p
}

// SetInterval adjusts the print throttle. A non-positive interval removes
// the throttle entirely (every Add prints) — useful in tests. Call before
// sharing the reporter across goroutines.
func (p *Progress) SetInterval(d time.Duration) {
	if p == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	p.interval = d
}

// Add records n completed items and prints a line if the throttle allows.
// The throttle compares readings of the monotonic clock (time.Since on
// the start instant), so wall-clock steps — NTP slew, suspend/resume,
// manual clock changes — can neither burst-print nor silence it.
func (p *Progress) Add(n int64) {
	if p == nil || p.w == nil {
		return
	}
	done := p.done.Add(n)
	now := int64(time.Since(p.start)) // monotonic: start carries the reading
	last := p.lastNano.Load()
	if now-last < int64(p.interval) || !p.lastNano.CompareAndSwap(last, now) {
		return
	}
	p.print(done, false)
}

// Finish prints the final count unconditionally.
func (p *Progress) Finish() {
	if p == nil || p.w == nil {
		return
	}
	p.print(p.done.Load(), true)
}

func (p *Progress) print(done int64, final bool) {
	elapsed := time.Since(p.start).Round(time.Millisecond)
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case p.total > 0:
		fmt.Fprintf(p.w, "%s: %d/%d (%.1f%%) in %s\n",
			p.label, done, p.total, 100*float64(done)/float64(p.total), elapsed)
	case final:
		fmt.Fprintf(p.w, "%s: %d done in %s\n", p.label, done, elapsed)
	default:
		fmt.Fprintf(p.w, "%s: %d in %s\n", p.label, done, elapsed)
	}
}

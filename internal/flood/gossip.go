package flood

import (
	"fmt"

	"lhg/internal/graph"
	"lhg/internal/sim"
)

// Gossip simulates push gossip with bounded fanout — the probabilistic
// alternative to deterministic flooding discussed in the papers' related
// work (Lin, Marzullo & Masini, DISC 2000; Eugster et al.). When a node
// first receives the message it forwards it to at most `fanout` alive
// neighbors chosen uniformly at random, instead of to all of them.
//
// With fanout >= deg the behavior coincides with deterministic flooding.
// With fanout < k gossip sends fewer messages but loses the f <= k-1
// delivery guarantee: coverage becomes probabilistic even without
// failures. The E16 experiment quantifies exactly this trade-off.
func Gossip(g *graph.Graph, source, fanout int, f Failures, rng *sim.RNG) (*Result, error) {
	n := g.Order()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("flood: source %d out of range [0,%d)", source, n)
	}
	if fanout < 1 {
		return nil, fmt.Errorf("flood: fanout %d must be >= 1", fanout)
	}
	if rng == nil {
		return nil, fmt.Errorf("flood: gossip requires a generator")
	}
	crashed := make([]bool, n)
	for _, v := range f.Nodes {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("flood: crashed node %d out of range [0,%d)", v, n)
		}
		crashed[v] = true
	}
	if crashed[source] {
		return nil, fmt.Errorf("flood: source %d is crashed", source)
	}
	linkDown := make(map[graph.Edge]bool, len(f.Links))
	for _, e := range f.Links {
		linkDown[normalize(e)] = true
	}

	res := &Result{Source: source, FirstHeard: make([]int, n)}
	for v := range res.FirstHeard {
		res.FirstHeard[v] = -1
	}
	for v := 0; v < n; v++ {
		if !crashed[v] {
			res.Alive++
		}
	}

	res.FirstHeard[source] = 0
	res.Reached = 1
	frontier := []int{source}
	for round := 1; len(frontier) > 0; round++ {
		var next []int
		for _, u := range frontier {
			targets := gossipTargets(g, u, fanout, crashed, linkDown, rng)
			for _, v := range targets {
				res.Messages++
				if res.FirstHeard[v] < 0 {
					res.FirstHeard[v] = round
					res.Reached++
					next = append(next, v)
				}
			}
		}
		if len(next) > 0 {
			res.Rounds = round
		}
		frontier = next
	}
	res.Complete = res.Reached == res.Alive
	return res, nil
}

// gossipTargets samples up to fanout distinct alive neighbors of u.
func gossipTargets(g *graph.Graph, u, fanout int, crashed []bool, linkDown map[graph.Edge]bool, rng *sim.RNG) []int {
	var alive []int
	g.EachNeighbor(u, func(v int) {
		if !crashed[v] && !linkDown[normalize(graph.Edge{U: u, V: v})] {
			alive = append(alive, v)
		}
	})
	if len(alive) <= fanout {
		return alive
	}
	idx := rng.Sample(len(alive), fanout)
	out := make([]int, 0, fanout)
	for _, i := range idx {
		out = append(out, alive[i])
	}
	return out
}

// GossipReliability estimates, over seeded trials, the probability that a
// gossip round reaches every alive node under f random crashes.
func GossipReliability(g *graph.Graph, source, fanout, failures, trials int, rng *sim.RNG) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("flood: trials must be positive, got %d", trials)
	}
	ok := 0
	for i := 0; i < trials; i++ {
		fails, err := RandomNodeFailures(g, source, failures, rng)
		if err != nil {
			return 0, err
		}
		res, err := Gossip(g, source, fanout, fails, rng)
		if err != nil {
			return 0, err
		}
		if res.Complete {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}

package core

import (
	"errors"
	"testing"
)

// FuzzBuilders throws arbitrary (n,k) pairs at every builder: no panics,
// success exactly on the closed-form existence sets, and successful builds
// have the requested size. Run with `go test -fuzz FuzzBuilders` for a
// deeper exploration; the seed corpus runs on every plain `go test`.
func FuzzBuilders(f *testing.F) {
	f.Add(6, 3)
	f.Add(9, 3)
	f.Add(0, 0)
	f.Add(-5, 7)
	f.Add(100, 4)
	f.Add(2, 2)
	f.Add(64, 9)
	f.Fuzz(func(t *testing.T, n, k int) {
		if n < -1000 || n > 3000 || k < -1000 || k > 64 {
			t.Skip("keep sizes sane")
		}
		kt, err := BuildKTree(n, k)
		if (err == nil) != ExistsKTree(n, k) {
			t.Fatalf("K-TREE build err=%v vs Exists=%t at (%d,%d)", err, ExistsKTree(n, k), n, k)
		}
		if err == nil && kt.Real.Graph.Order() != n {
			t.Fatalf("K-TREE(%d,%d) produced %d nodes", n, k, kt.Real.Graph.Order())
		}
		if err != nil && !errors.Is(err, ErrNotConstructible) {
			t.Fatalf("K-TREE error %v does not wrap the sentinel", err)
		}

		kd, err := BuildKDiamond(n, k)
		if (err == nil) != ExistsKDiamond(n, k) {
			t.Fatalf("K-DIAMOND build err=%v vs Exists=%t at (%d,%d)", err, ExistsKDiamond(n, k), n, k)
		}
		if err == nil && kd.Real.Graph.Order() != n {
			t.Fatalf("K-DIAMOND(%d,%d) produced %d nodes", n, k, kd.Real.Graph.Order())
		}

		jd, err := BuildJD(n, k)
		if (err == nil) != ExistsJD(n, k) {
			t.Fatalf("JD build err=%v vs Exists=%t at (%d,%d)", err, ExistsJD(n, k), n, k)
		}
		if err == nil && jd.Real.Graph.Order() != n {
			t.Fatalf("JD(%d,%d) produced %d nodes", n, k, jd.Real.Graph.Order())
		}
	})
}

// FuzzGrowers drives both growers for an arbitrary number of steps and
// checks the structural invariants that must hold at every size: correct
// node count, correct edge count (same as the canonical builder), minimum
// degree k, and the theorem-grid regularity.
func FuzzGrowers(f *testing.F) {
	f.Add(uint8(3), uint8(10))
	f.Add(uint8(4), uint8(25))
	f.Add(uint8(7), uint8(3))
	f.Fuzz(func(t *testing.T, kRaw, steps uint8) {
		k := int(kRaw%6) + 3
		ktg, err := NewKTreeGrower(k)
		if err != nil {
			t.Fatal(err)
		}
		kdg, err := NewKDiamondGrower(k)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < int(steps%80); s++ {
			if _, err := ktg.Grow(); err != nil {
				t.Fatal(err)
			}
			if _, err := kdg.Grow(); err != nil {
				t.Fatal(err)
			}
			n := 2*k + s + 1
			if ktg.N() != n || kdg.N() != n {
				t.Fatalf("sizes %d/%d, want %d", ktg.N(), kdg.N(), n)
			}
			for _, g := range []interface {
				Size() int
				IsRegular(int) bool
				MinDegree() (int, int)
			}{ktg.Snapshot(), kdg.Snapshot()} {
				if minDeg, _ := g.MinDegree(); minDeg < k {
					t.Fatalf("n=%d: min degree %d < k=%d", n, minDeg, k)
				}
			}
			kt, err := BuildKTree(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if ktg.Snapshot().Size() != kt.Real.Graph.Size() {
				t.Fatalf("n=%d: grower edges %d != canonical %d",
					n, ktg.Snapshot().Size(), kt.Real.Graph.Size())
			}
			if ktg.Snapshot().IsRegular(k) != RegularKTree(n, k) {
				t.Fatalf("n=%d: K-TREE grower regularity off the grid", n)
			}
			if kdg.Snapshot().IsRegular(k) != RegularKDiamond(n, k) {
				t.Fatalf("n=%d: K-DIAMOND grower regularity off the grid", n)
			}
		}
	})
}

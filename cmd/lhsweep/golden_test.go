package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestSweepVerifyGoldenByteStable enforces the -verify CSV contract: the
// kappa/lambda columns are byte-identical across -workers, -sparsify and
// -prescreen settings, and the whole CSV matches the checked-in golden.
func TestSweepVerifyGoldenByteStable(t *testing.T) {
	base := []string{"-k", "3", "-from", "10", "-to", "20", "-step", "5",
		"-families", "harary,kdiamond", "-verify"}
	var ref []byte
	for _, workers := range []string{"1", "4"} {
		for _, sparsify := range []string{"true", "false"} {
			for _, prescreen := range []string{"true", "false"} {
				args := append(append([]string{}, base...),
					"-workers", workers, "-sparsify", sparsify, "-prescreen", prescreen)
				var buf bytes.Buffer
				if err := run(args, &buf); err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = append([]byte(nil), buf.Bytes()...)
				} else if !bytes.Equal(ref, buf.Bytes()) {
					t.Fatalf("-workers %s -sparsify %s -prescreen %s changed the bytes:\n%s\nvs\n%s",
						workers, sparsify, prescreen, buf.Bytes(), ref)
				}
			}
		}
	}
	checkGolden(t, "sweep-verify.golden", ref)
}

// TestSweepVerifyHeader pins the column layout documented in the package
// comment: -verify inserts kappa,lambda before the optional gap column.
func TestSweepVerifyHeader(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-k", "3", "-from", "10", "-to", "10", "-step", "5",
		"-families", "kdiamond", "-verify", "-spectral"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	want := []string{"family", "n", "k", "edges", "diameter", "rounds", "messages", "moore", "kappa", "lambda", "gap"}
	if len(rows[0]) != len(want) {
		t.Fatalf("header = %v, want %v", rows[0], want)
	}
	for i := range want {
		if rows[0][i] != want[i] {
			t.Fatalf("header[%d] = %q, want %q", i, rows[0][i], want[i])
		}
	}
	// kappa = lambda = 3 for a valid K-DIAMOND instance.
	if rows[1][8] != "3" || rows[1][9] != "3" {
		t.Fatalf("kappa/lambda = %s/%s, want 3/3", rows[1][8], rows[1][9])
	}
}

package flow

import (
	"fmt"

	"lhg/internal/graph"
)

// stVertexFlow returns the maximum number of internally vertex-disjoint
// s-t paths for a non-adjacent pair, early-exiting at limit if limit >= 0.
func stVertexFlow(g *graph.Graph, s, t, limit int) int {
	nw := getNetwork(2 * g.Order())
	nw.buildVertex(g, s, t, g.Order()+1, noEdge)
	f := nw.maxflow(2*s+1, 2*t, limit)
	putNetwork(nw)
	return f
}

// stVertexFlowExcluding is stVertexFlow on G−skip: the masked edge never
// enters the network, so removal probes cost one flow, not one clone.
func stVertexFlowExcluding(g *graph.Graph, s, t, limit int, skip graph.Edge) int {
	nw := getNetwork(2 * g.Order())
	nw.buildVertex(g, s, t, g.Order()+1, skip)
	f := nw.maxflow(2*s+1, 2*t, limit)
	putNetwork(nw)
	return f
}

// stEdgeFlowExcluding returns the maximum s-t flow in the edge network of
// G−skip, early-exiting at limit.
func stEdgeFlowExcluding(g *graph.Graph, s, t, limit int, skip graph.Edge) int {
	nw := getNetwork(g.Order())
	nw.buildEdge(g, skip)
	f := nw.maxflow(s, t, limit)
	putNetwork(nw)
	return f
}

// EdgeCut returns the size of a minimum s-t edge cut (equivalently the
// maximum number of edge-disjoint s-t paths).
func EdgeCut(g *graph.Graph, s, t int) (int, error) {
	if err := validatePair(g, s, t); err != nil {
		return 0, err
	}
	return stEdgeFlowExcluding(g, s, t, -1, noEdge), nil
}

// VertexCut returns the size of a minimum s-t vertex cut. s and t must be
// non-adjacent (no node set separates adjacent nodes).
func VertexCut(g *graph.Graph, s, t int) (int, error) {
	if err := validatePair(g, s, t); err != nil {
		return 0, err
	}
	if g.HasEdge(s, t) {
		return 0, fmt.Errorf("flow: no vertex cut separates adjacent nodes %d and %d", s, t)
	}
	return stVertexFlow(g, s, t, -1), nil
}

// MinVertexCutSet returns an actual minimum vertex cut separating
// non-adjacent s and t: a smallest node set whose removal disconnects them.
func MinVertexCutSet(g *graph.Graph, s, t int) ([]int, error) {
	if err := validatePair(g, s, t); err != nil {
		return nil, err
	}
	if g.HasEdge(s, t) {
		return nil, fmt.Errorf("flow: no vertex cut separates adjacent nodes %d and %d", s, t)
	}
	nw := getNetwork(2 * g.Order())
	defer putNetwork(nw)
	nw.buildVertex(g, s, t, g.Order()+1, noEdge)
	nw.maxflow(2*s+1, 2*t, -1)
	reach := nw.residualReach(2*s + 1)
	var cut []int
	for v := 0; v < g.Order(); v++ {
		if reach[2*v] && !reach[2*v+1] {
			cut = append(cut, v)
		}
	}
	return cut, nil
}

// EdgeConnectivity returns the global edge connectivity λ(G): the minimum
// number of edges whose removal disconnects G. It returns 0 for graphs that
// are already disconnected or have fewer than two nodes.
func EdgeConnectivity(g *graph.Graph) int {
	n := g.Order()
	if n < 2 {
		return 0
	}
	// λ(G) = min over t != s of the s-t min cut, for any fixed s: the
	// global minimum cut separates node 0 from some other node.
	best := inf
	nw := getNetwork(n)
	defer putNetwork(nw)
	for t := 1; t < n; t++ {
		nw.buildEdge(g, noEdge)
		if f := nw.maxflow(0, t, best); f < best {
			best = f
			if best == 0 {
				return 0
			}
		}
	}
	return best
}

// VertexConnectivity returns the global vertex connectivity κ(G) using the
// Esfahanian–Hakimi reduction: pick a minimum-degree node v; every minimum
// vertex cut either avoids v (then it separates v from some non-neighbor) or
// contains v (then, by minimality, v has neighbors in two different
// components, and those neighbors form a non-adjacent pair). The complete
// graph K_n has connectivity n-1 by convention.
func VertexConnectivity(g *graph.Graph) int {
	n := g.Order()
	if n < 2 {
		return 0
	}
	if !g.Connected() {
		return 0
	}
	minDeg, v := g.MinDegree()
	if minDeg == n-1 { // complete graph
		return n - 1
	}
	best := minDeg // κ(G) <= δ(G)
	// Part 1: v against every non-neighbor.
	isNbr := make([]bool, n)
	for _, w := range g.Neighbors(v) {
		isNbr[w] = true
	}
	for t := 0; t < n; t++ {
		if t == v || isNbr[t] {
			continue
		}
		if f := stVertexFlow(g, v, t, best); f < best {
			best = f
		}
	}
	// Part 2: every non-adjacent pair of v's neighbors.
	nbrs := g.Neighbors(v)
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			u, w := nbrs[i], nbrs[j]
			if g.HasEdge(u, w) {
				continue
			}
			if f := stVertexFlow(g, u, w, best); f < best {
				best = f
			}
		}
	}
	return best
}

// IsKNodeConnected reports whether κ(G) >= k without always computing the
// exact connectivity (max flows early-exit at k).
func IsKNodeConnected(g *graph.Graph, k int) bool {
	n := g.Order()
	if k <= 0 {
		return true
	}
	if n < k+1 {
		return false // κ(G) <= n-1
	}
	if !g.Connected() {
		return false
	}
	minDeg, v := g.MinDegree()
	if minDeg < k {
		return false
	}
	if minDeg == n-1 {
		return true
	}
	isNbr := make([]bool, n)
	for _, w := range g.Neighbors(v) {
		isNbr[w] = true
	}
	for t := 0; t < n; t++ {
		if t == v || isNbr[t] {
			continue
		}
		if stVertexFlow(g, v, t, k) < k {
			return false
		}
	}
	nbrs := g.Neighbors(v)
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			u, w := nbrs[i], nbrs[j]
			if g.HasEdge(u, w) {
				continue
			}
			if stVertexFlow(g, u, w, k) < k {
				return false
			}
		}
	}
	return true
}

// IsKEdgeConnected reports whether λ(G) >= k using early-exit max flows.
func IsKEdgeConnected(g *graph.Graph, k int) bool {
	n := g.Order()
	if k <= 0 {
		return true
	}
	if n < 2 {
		return false
	}
	if minDeg, _ := g.MinDegree(); minDeg < k {
		return false
	}
	nw := getNetwork(n)
	defer putNetwork(nw)
	for t := 1; t < n; t++ {
		nw.buildEdge(g, noEdge)
		if nw.maxflow(0, t, k) < k {
			return false
		}
	}
	return true
}

// EdgeIsRemovable reports whether removing e=(u,v) keeps both the node
// connectivity at kappa and the link connectivity at lambda — i.e. whether
// e witnesses a P3 (link-minimality) violation. It costs two single-pair
// max flows on the masked view instead of 2n flows on a clone, by the
// classic localization lemma:
//
//	λ(G−e) < λ(G)  ⟺  the u-v min edge cut in G−e has size < λ(G), and
//	κ(G−e) < κ(G)  ⟺  the u-v min vertex cut in G−e has size < κ(G).
//
// Both directions follow from the fact that a small cut of G−e that fails
// to separate u from v would already be a small cut of G: only cuts that
// e itself bridged can shrink. (u and v are non-adjacent in G−e, so the
// vertex-cut query is well defined.)
func EdgeIsRemovable(g *graph.Graph, e graph.Edge, kappa, lambda int) bool {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	if stEdgeFlowExcluding(g, e.U, e.V, lambda, e) < lambda {
		return false
	}
	return stVertexFlowExcluding(g, e.U, e.V, kappa, e) >= kappa
}

// VertexDisjointPaths returns a maximum set of pairwise internally
// vertex-disjoint s-t paths (each as a node sequence from s to t). For
// adjacent s,t the direct edge is one of the paths.
func VertexDisjointPaths(g *graph.Graph, s, t int) ([][]int, error) {
	if err := validatePair(g, s, t); err != nil {
		return nil, err
	}
	nw := getNetwork(2 * g.Order())
	defer putNetwork(nw)
	nw.buildVertex(g, s, t, 1, noEdge)
	count := nw.maxflow(2*s+1, 2*t, -1)
	// Decompose the flow: each saturated forward edge arc uOut->vIn carries
	// one unit. Walking from s along unconsumed flow arcs yields the paths;
	// flow conservation guarantees each walk ends at t.
	n := g.Order()
	next := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, e := range nw.first[2*u+1] {
			// Forward arcs have even indices (addArc appends pairs). Skip
			// reverses and the node-internal reverse arc.
			if e%2 != 0 {
				continue
			}
			v := int(nw.to[e]) / 2
			if v == u || nw.cap[e] != 0 {
				continue // not an edge arc carrying flow
			}
			next[u] = append(next[u], v)
		}
	}
	paths := make([][]int, 0, count)
	for i := 0; i < count; i++ {
		path := []int{s}
		u := s
		for u != t {
			if len(next[u]) == 0 {
				return nil, fmt.Errorf("flow: path decomposition stuck at node %d", u)
			}
			v := next[u][0]
			next[u] = next[u][1:]
			path = append(path, v)
			u = v
		}
		paths = append(paths, path)
	}
	return paths, nil
}

func validatePair(g *graph.Graph, s, t int) error {
	n := g.Order()
	if s < 0 || s >= n || t < 0 || t >= n {
		return fmt.Errorf("flow: node pair (%d,%d) out of range [0,%d)", s, t, n)
	}
	if s == t {
		return fmt.Errorf("flow: source and sink are both node %d", s)
	}
	return nil
}

// MinEdgeCutSet returns an actual minimum s-t edge cut: a smallest edge set
// whose removal disconnects s from t.
func MinEdgeCutSet(g *graph.Graph, s, t int) ([]graph.Edge, error) {
	if err := validatePair(g, s, t); err != nil {
		return nil, err
	}
	nw := getNetwork(g.Order())
	defer putNetwork(nw)
	nw.buildEdge(g, noEdge)
	nw.maxflow(s, t, -1)
	reach := nw.residualReach(s)
	var cut []graph.Edge
	for _, e := range g.Edges() {
		if reach[e.U] != reach[e.V] {
			cut = append(cut, e)
		}
	}
	return cut, nil
}

// GlobalMinEdgeCutSet returns a minimum edge cut of the whole graph: the
// smallest link set whose removal disconnects G.
func GlobalMinEdgeCutSet(g *graph.Graph) ([]graph.Edge, error) {
	n := g.Order()
	if n < 2 {
		return nil, fmt.Errorf("flow: no cut in a graph with %d nodes", n)
	}
	best := inf
	var bestCut []graph.Edge
	nw := getNetwork(n)
	defer putNetwork(nw)
	for t := 1; t < n; t++ {
		nw.buildEdge(g, noEdge)
		f := nw.maxflow(0, t, best)
		if f >= best {
			continue
		}
		best = f
		cut, err := MinEdgeCutSet(g, 0, t)
		if err != nil {
			return nil, err
		}
		bestCut = cut
		if best == 0 {
			break
		}
	}
	return bestCut, nil
}

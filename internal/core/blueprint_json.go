package core

import (
	"encoding/json"
	"fmt"
)

// Blueprint serialization: lets deployments persist not just the edge list
// but the *structure* (tree positions, copies, leaf classification), which
// is what the structured router and the validators operate on. The decoder
// re-derives the Depth slice and re-validates the invariants shared by all
// constraints, so a loaded blueprint is as trustworthy as a built one.

// blueprintJSON is the wire form.
type blueprintJSON struct {
	K      int    `json:"k"`
	Parent []int  `json:"parent"`
	Kind   []int  `json:"kind"`
	Added  []bool `json:"added"`
}

// MarshalJSON encodes the blueprint structure.
func (b *Blueprint) MarshalJSON() ([]byte, error) {
	kinds := make([]int, len(b.Kind))
	for i, k := range b.Kind {
		kinds[i] = int(k)
	}
	return json.Marshal(blueprintJSON{
		K:      b.K,
		Parent: append([]int(nil), b.Parent...),
		Kind:   kinds,
		Added:  append([]bool(nil), b.Added...),
	})
}

// UnmarshalJSON decodes and structurally validates a blueprint: parents
// must form a forest rooted at position 0 with parents preceding children
// (the creation order every builder uses), kinds must be known, and the
// Children/Depth derived views are rebuilt.
func (b *Blueprint) UnmarshalJSON(data []byte) error {
	var wire blueprintJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return fmt.Errorf("core: decode blueprint: %w", err)
	}
	np := len(wire.Parent)
	if np == 0 {
		return fmt.Errorf("core: blueprint has no positions")
	}
	if len(wire.Kind) != np || len(wire.Added) != np {
		return fmt.Errorf("core: blueprint slices disagree (%d parents, %d kinds, %d added)",
			np, len(wire.Kind), len(wire.Added))
	}
	nb := Blueprint{
		K:        wire.K,
		Parent:   append([]int(nil), wire.Parent...),
		Children: make([][]int, np),
		Kind:     make([]PositionKind, np),
		Depth:    make([]int, np),
		Added:    append([]bool(nil), wire.Added...),
	}
	for p := 0; p < np; p++ {
		switch PositionKind(wire.Kind[p]) {
		case Internal, SharedLeaf, UnsharedLeaf:
			nb.Kind[p] = PositionKind(wire.Kind[p])
		default:
			return fmt.Errorf("core: position %d has unknown kind %d", p, wire.Kind[p])
		}
		parent := wire.Parent[p]
		if p == 0 {
			if parent != -1 {
				return fmt.Errorf("core: root must have parent -1, got %d", parent)
			}
			continue
		}
		if parent < 0 || parent >= p {
			return fmt.Errorf("core: position %d has parent %d (parents must precede children)", p, parent)
		}
		nb.Children[parent] = append(nb.Children[parent], p)
		nb.Depth[p] = nb.Depth[parent] + 1
	}
	if err := validateCommon(&nb); err != nil {
		return err
	}
	*b = nb
	return nil
}

package core

import (
	"errors"
	"testing"
	"testing/quick"

	"lhg/internal/check"
)

func TestBuildJDRejectsInvalidPairs(t *testing.T) {
	for _, tt := range []struct{ n, k int }{
		{n: 10, k: 2},
		{n: 5, k: 3},
	} {
		if _, err := BuildJD(tt.n, tt.k); !errors.Is(err, ErrNotConstructible) {
			t.Fatalf("BuildJD(%d,%d) err=%v, want ErrNotConstructible", tt.n, tt.k, err)
		}
	}
}

// TestJDOddOffsetsImpossible is the §4.4 claim: for every k there are
// infinitely many pairs JD cannot build; in particular every odd offset
// n = 2k + 2α(k-1) + 3 (and n = 9, k = 3 — the Figure 2(b) example).
func TestJDOddOffsetsImpossible(t *testing.T) {
	for k := 3; k <= 6; k++ {
		for alpha := 0; alpha <= 6; alpha++ {
			n := 2*k + 2*alpha*(k-1) + 3
			if ExistsJD(n, k) {
				t.Fatalf("ExistsJD(%d,%d) = true; §4.4 says odd offsets are unreachable", n, k)
			}
			if _, err := BuildJD(n, k); !errors.Is(err, ErrNotConstructible) {
				t.Fatalf("BuildJD(%d,%d) err=%v, want ErrNotConstructible", n, k, err)
			}
			// ...while K-TREE builds it (Theorem 2).
			if !ExistsKTree(n, k) {
				t.Fatalf("ExistsKTree(%d,%d) = false", n, k)
			}
			if _, err := BuildKTree(n, k); err != nil {
				t.Fatalf("BuildKTree(%d,%d): %v", n, k, err)
			}
		}
	}
}

// TestJDFigure2bGap: the paper's concrete example — (9,3) satisfies K-TREE
// but cannot be produced by the Jenkins-Demers rule.
func TestJDFigure2bGap(t *testing.T) {
	if ExistsJD(9, 3) {
		t.Fatal("JD must not be able to build (9,3)")
	}
	if !ExistsKTree(9, 3) {
		t.Fatal("K-TREE must build (9,3)")
	}
}

// TestJDBuildsItsReachableSet: wherever the decomposition succeeds, the
// builder emits a graph of the right size that satisfies the JD rule, the
// K-TREE constraint (the §4.4 inclusion) and all LHG properties.
func TestJDBuildsItsReachableSet(t *testing.T) {
	for k := 3; k <= 5; k++ {
		for n := 2 * k; n <= 10*k; n++ {
			want := ExistsJD(n, k)
			jd, err := BuildJD(n, k)
			if (err == nil) != want {
				t.Fatalf("BuildJD(%d,%d) err=%v, ExistsJD=%t", n, k, err, want)
			}
			if err != nil {
				continue
			}
			if jd.Real.Graph.Order() != n {
				t.Fatalf("BuildJD(%d,%d) produced %d nodes", n, k, jd.Real.Graph.Order())
			}
			if err := ValidateJD(jd.Blue); err != nil {
				t.Fatalf("JD blueprint (%d,%d) invalid: %v", n, k, err)
			}
			if err := ValidateKTree(jd.Blue); err != nil {
				t.Fatalf("JD blueprint (%d,%d) violates K-TREE: %v", n, k, err)
			}
			ok, err := check.QuickVerify(jd.Real.Graph, k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				r, _ := check.Verify(jd.Real.Graph, k)
				t.Fatalf("JD(%d,%d) is not an LHG: %s", n, k, r)
			}
		}
	}
}

// TestJDReachableSubsetOfKTree: EX_JD ⇒ EX_K-TREE everywhere, and the
// inclusion is strict for every k (infinitely many gaps).
func TestJDReachableSubsetOfKTree(t *testing.T) {
	for k := 3; k <= 6; k++ {
		gaps := 0
		for n := 2 * k; n <= 20*k; n++ {
			jd := ExistsJD(n, k)
			kt := ExistsKTree(n, k)
			if jd && !kt {
				t.Fatalf("EX_JD true but EX_K-TREE false at (%d,%d)", n, k)
			}
			if kt && !jd {
				gaps++
			}
		}
		if gaps == 0 {
			t.Fatalf("k=%d: expected JD gaps in [2k, 20k], found none", k)
		}
	}
}

// TestJDParityGap: with the formalized rule, every reachable n has even
// offset n-2k; all odd offsets are gaps.
func TestJDParityGap(t *testing.T) {
	for k := 3; k <= 6; k++ {
		for n := 2 * k; n <= 15*k; n++ {
			if (n-2*k)%2 == 1 && ExistsJD(n, k) {
				t.Fatalf("ExistsJD(%d,%d) true for odd offset %d", n, k, n-2*k)
			}
		}
	}
}

// TestJDBaseCaseNoExceptionsAtHeightOne: with only the root above the
// leaves there are no interior hosts, so the only height-1 JD graph is the
// minimal (2k,k).
func TestJDBaseCaseNoExceptionsAtHeightOne(t *testing.T) {
	for k := 3; k <= 6; k++ {
		if !ExistsJD(2*k, k) {
			t.Fatalf("ExistsJD(2k,k) = false for k=%d", k)
		}
		for n := 2*k + 1; n < 2*k+2*(k-1); n++ {
			if ExistsJD(n, k) {
				t.Fatalf("ExistsJD(%d,%d) = true inside the first gap", n, k)
			}
		}
	}
}

func TestJDDecomposition(t *testing.T) {
	tests := []struct {
		n, k, alpha, beta int
		ok                bool
	}{
		{n: 6, k: 3, alpha: 0, beta: 0, ok: true},
		{n: 10, k: 3, alpha: 1, beta: 0, ok: true},
		{n: 12, k: 3, alpha: 1, beta: 1, ok: true},
		{n: 9, k: 3, ok: false},
		{n: 8, k: 3, ok: false}, // would need an exception on the root
		{n: 16, k: 4, alpha: 1, beta: 1, ok: true},
	}
	for _, tt := range tests {
		alpha, beta, ok := jdDecompose(tt.n, tt.k)
		if ok != tt.ok {
			t.Fatalf("jdDecompose(%d,%d) ok=%t, want %t", tt.n, tt.k, ok, tt.ok)
		}
		if ok && (alpha != tt.alpha || beta != tt.beta) {
			t.Fatalf("jdDecompose(%d,%d) = (%d,%d), want (%d,%d)",
				tt.n, tt.k, alpha, beta, tt.alpha, tt.beta)
		}
	}
}

// TestJDExceptionNodeDegrees: exception nodes carry k+1 children, so their
// degree is k+2; all other degrees are exactly k.
func TestJDExceptionNodeDegrees(t *testing.T) {
	jd, err := BuildJD(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if jd.Beta != 1 {
		t.Fatalf("JD(12,3) β=%d, want 1", jd.Beta)
	}
	countKPlus2 := 0
	for _, d := range jd.Real.Graph.Degrees() {
		switch d {
		case 3:
		case 5: // k+2
			countKPlus2++
		default:
			t.Fatalf("JD(12,3) unexpected degree %d", d)
		}
	}
	if countKPlus2 != jd.Beta*jd.K {
		t.Fatalf("found %d degree-(k+2) nodes, want β*k = %d", countKPlus2, jd.Beta*jd.K)
	}
}

// TestRegularJDMatchesKTreeRegularSet: JD is regular exactly on the K-TREE
// regular grid (β = 0 instances).
func TestRegularJDMatchesKTreeRegularSet(t *testing.T) {
	for k := 3; k <= 6; k++ {
		for n := 2 * k; n <= 15*k; n++ {
			if RegularJD(n, k) != RegularKTree(n, k) {
				t.Fatalf("RegularJD and RegularKTree disagree at (%d,%d)", n, k)
			}
		}
	}
}

func TestPropertyJDGraphsVerify(t *testing.T) {
	f := func(aRaw, bRaw, kRaw uint8) bool {
		k := int(kRaw%3) + 3
		alpha := int(aRaw % 8)
		beta := int(bRaw) % (k + 1)
		n := 2*k + alpha*2*(k-1) + 2*beta
		if !ExistsJD(n, k) {
			return true // host-count may forbid this β at this α; fine
		}
		jd, err := BuildJD(n, k)
		if err != nil {
			return false
		}
		ok, err := check.QuickVerify(jd.Real.Graph, k)
		return err == nil && ok && jd.Real.Graph.Order() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"fmt"

	"lhg/internal/graph"
)

// Change is one membership event in a reconfiguration batch.
type Change uint8

const (
	// ChangeJoin admits one node (Grow).
	ChangeJoin Change = iota
	// ChangeLeave retires one node (Shrink).
	ChangeLeave
)

func (c Change) String() string {
	switch c {
	case ChangeJoin:
		return "join"
	case ChangeLeave:
		return "leave"
	}
	return fmt.Sprintf("Change(%d)", uint8(c))
}

// Reconfigurer is the unified churn engine implemented by KTreeGrower and
// KDiamondGrower: joins via the constructive proofs' growth steps, leaves
// via their inverse surgery, and batches via Apply. The graph satisfies its
// constraint (and hence is an LHG) after every single step, so a
// reconfigurer can absorb arbitrary interleavings of joins and leaves
// without any rebuild.
type Reconfigurer interface {
	// Grow admits one node; the delta is canonical.
	Grow() (EdgeDelta, error)
	// Shrink retires the youngest node; the delta is canonical.
	Shrink() (EdgeDelta, error)
	// Apply performs a batch of changes and returns the NET edge surgery:
	// an edge set up and later torn down inside the batch (or vice versa)
	// does not appear in the result. On error the returned delta covers
	// the prefix of steps that did complete.
	Apply(changes []Change) (EdgeDelta, error)
	// Graph returns the frozen view of the current topology.
	Graph() *graph.Graph
	// Snapshot is Graph under its historical name.
	Snapshot() *graph.Graph
	// N returns the current number of nodes.
	N() int
	// K returns the connectivity target.
	K() int
}

var (
	_ Reconfigurer = (*KTreeGrower)(nil)
	_ Reconfigurer = (*KDiamondGrower)(nil)
)

// Apply performs a batch of joins and leaves, returning the net surgery.
func (gr *KTreeGrower) Apply(changes []Change) (EdgeDelta, error) {
	return applyChanges(gr, changes)
}

// Apply performs a batch of joins and leaves, returning the net surgery.
func (gr *KDiamondGrower) Apply(changes []Change) (EdgeDelta, error) {
	return applyChanges(gr, changes)
}

// applyChanges drives the per-step engine and merges the step deltas into
// one net delta. Merging tracks a signed count per edge: a simple graph
// forces operations on one edge to alternate, so every net count lands in
// {−1, 0, +1} — +1 is a net addition, −1 a net removal, 0 cancels out
// (this is why add→remove→add inside one batch correctly survives as a
// single net addition rather than cancelling pairwise).
func applyChanges(r Reconfigurer, changes []Change) (EdgeDelta, error) {
	net := make(map[graph.Edge]int)
	record := func(d EdgeDelta) {
		for _, e := range d.Added {
			net[e]++
		}
		for _, e := range d.Removed {
			net[e]--
		}
	}
	finish := func() EdgeDelta {
		var out EdgeDelta
		for e, c := range net {
			switch {
			case c > 0:
				out.Added = append(out.Added, e)
			case c < 0:
				out.Removed = append(out.Removed, e)
			}
		}
		out.Normalize()
		return out
	}
	for i, c := range changes {
		var d EdgeDelta
		var err error
		switch c {
		case ChangeJoin:
			d, err = r.Grow()
		case ChangeLeave:
			d, err = r.Shrink()
		default:
			return finish(), fmt.Errorf("core: unknown change %v at batch index %d", c, i)
		}
		record(d)
		if err != nil {
			return finish(), fmt.Errorf("core: batch step %d (%v): %w", i, c, err)
		}
	}
	return finish(), nil
}

// NewKTreeGrowerAt returns a K-TREE reconfigurer fast-forwarded to n nodes
// — the state is the unique one the deterministic construction reaches, so
// it is interchangeable with a grower that arrived at n step by step.
func NewKTreeGrowerAt(k, n int) (*KTreeGrower, error) {
	if err := validatePair("K-TREE", n, k); err != nil {
		return nil, err
	}
	gr, err := NewKTreeGrower(k)
	if err != nil {
		return nil, err
	}
	for gr.N() < n {
		if _, err := gr.Grow(); err != nil {
			return nil, err
		}
	}
	return gr, nil
}

// NewKDiamondGrowerAt returns a K-DIAMOND reconfigurer fast-forwarded to n
// nodes; see NewKTreeGrowerAt.
func NewKDiamondGrowerAt(k, n int) (*KDiamondGrower, error) {
	if err := validatePair("K-DIAMOND", n, k); err != nil {
		return nil, err
	}
	gr, err := NewKDiamondGrower(k)
	if err != nil {
		return nil, err
	}
	for gr.N() < n {
		if _, err := gr.Grow(); err != nil {
			return nil, err
		}
	}
	return gr, nil
}

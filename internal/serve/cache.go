// Package serve implements the HTTP/JSON service layer behind cmd/lhgd:
// request decoding and validation, an LRU result cache keyed on the build
// parameters, and a refcounted singleflight group that coalesces identical
// in-flight computations so a burst of equal requests costs one max-flow
// campaign. Handlers thread the request context down into the verification
// kernels, which poll it between augmenting-path iterations — a disconnected
// client cancels its campaign unless other requests are still waiting on it.
package serve

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used map from string keys to
// immutable results (*lhg.Graph, *check.Report, *flood.Result). Values are
// never copied: everything the daemon caches is frozen after construction
// and safe to share across requests. A capacity <= 0 disables the cache —
// every Get misses and Put is a no-op — which keeps the singleflight layer
// as the only deduplication.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *lruEntry
	index map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		index: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key and promotes it to most recently
// used.
func (c *lruCache) Get(key string) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when the
// cache is full. Storing an existing key refreshes its value and recency.
func (c *lruCache) Put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.index[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(*lruEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

package store

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"lhg/internal/obs"
)

// Cross-process singleflight. The in-process flight group already
// guarantees one campaign per key per daemon; the lease extends that to a
// fleet sharing one data directory. The leader of a flight tries to create
// <hash>.lease with O_EXCL — exactly one process in the fleet wins — and
// every loser waits for either the report file to appear or the lease to
// die, then re-reads the store. A crashed leader is survived by the TTL:
// the next contender removes the expired lease and takes over.
//
// Release is read-check-remove rather than atomic, so a leader that
// overstays its TTL could in principle remove its successor's lease; the
// TTL is sized well above the campaign timeout precisely so an overstayed
// lease means a crashed or wedged process, not a slow one.
var (
	mLeaseAcquired  = obs.NewCounter("store.lease.acquired")
	mLeaseContested = obs.NewCounter("store.lease.contested")
	mLeaseTakeovers = obs.NewCounter("store.lease.takeovers")
	mLeaseReleased  = obs.NewCounter("store.lease.released")
	mLeaseWaits     = obs.NewCounter("store.lease.waits")
)

// DefaultLeaseTTL bounds how long a dead leader can block a key.
const DefaultLeaseTTL = 5 * time.Minute

// leaseFile is the on-disk claim.
type leaseFile struct {
	Owner   string `json:"owner"`
	Expires int64  `json:"expires_unix_ns"`
}

// Lease is a held claim on one key.
type Lease struct {
	s     *Store
	hash  string
	owner string
}

func (s *Store) leasePath(hash string) string {
	return s.path(hash) + ".lease" // <hash>.json.lease, invisible to the index scan
}

// Acquire claims the right to compute key. It returns (lease, true) to
// exactly one contender fleet-wide; everyone else gets (nil, false) and
// should WaitValue. An expired claim (crashed leader) is removed and
// contested again, so acquisition needs at most a few attempts.
func (s *Store) Acquire(key string, ttl time.Duration) (*Lease, bool, error) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hash := Key(key)
	path := s.leasePath(hash)
	owner := fmt.Sprintf("%d-%x", os.Getpid(), rand.Uint64())
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			data, _ := json.Marshal(leaseFile{Owner: owner, Expires: time.Now().Add(ttl).UnixNano()})
			if _, werr := f.Write(data); werr != nil {
				f.Close()
				os.Remove(path)
				mErrors.Inc()
				return nil, false, fmt.Errorf("store: write lease %s: %w", hash, werr)
			}
			f.Close()
			mLeaseAcquired.Inc()
			return &Lease{s: s, hash: hash, owner: owner}, true, nil
		}
		if !os.IsExist(err) {
			mErrors.Inc()
			return nil, false, fmt.Errorf("store: lease %s: %w", hash, err)
		}
		// Held. Expired or corrupt claims are from crashed leaders: remove
		// and contend again (the O_EXCL create arbitrates the removal race).
		var lf leaseFile
		data, rerr := os.ReadFile(path)
		if rerr == nil && json.Unmarshal(data, &lf) == nil && time.Now().UnixNano() < lf.Expires {
			mLeaseContested.Inc()
			return nil, false, nil
		}
		if os.IsNotExist(rerr) {
			continue // released between create and read: contend again
		}
		os.Remove(path)
		mLeaseTakeovers.Inc()
	}
	mLeaseContested.Inc()
	return nil, false, nil
}

// Release gives the claim up. Only the owner's claim is removed, so a
// takeover that already replaced the lease is left alone.
func (l *Lease) Release() {
	data, err := os.ReadFile(l.s.leasePath(l.hash))
	if err != nil {
		return
	}
	var lf leaseFile
	if json.Unmarshal(data, &lf) == nil && lf.Owner == l.owner {
		os.Remove(l.s.leasePath(l.hash))
		mLeaseReleased.Inc()
	}
}

// WaitValue blocks until key's value appears in the store (the fleet-wide
// leader finished and published), the claim on it dies without a value
// (found=false: the caller should re-contend with Acquire), or ctx ends.
func (s *Store) WaitValue(ctx context.Context, key string, poll time.Duration) (json.RawMessage, bool, error) {
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	mLeaseWaits.Inc()
	hash := Key(key)
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		if v, ok, err := s.Get(key); err != nil {
			return nil, false, err
		} else if ok {
			return v, true, nil
		}
		var lf leaseFile
		data, err := os.ReadFile(s.leasePath(hash))
		alive := err == nil && json.Unmarshal(data, &lf) == nil && time.Now().UnixNano() < lf.Expires
		if !alive {
			// One final read closes the publish-then-release window.
			v, ok, err := s.Get(key)
			return v, ok, err
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-t.C:
		}
	}
}

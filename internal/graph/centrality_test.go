package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBetweennessPath(t *testing.T) {
	// On a path 0-1-2-3-4 the middle node lies on all 2*(2*3... by the
	// normalized definition: node 2 is on the shortest path of pairs
	// (0,3),(0,4),(1,3),(1,4) both directions: 8 of (5-1)(5-2)=12.
	bc := path(5).Betweenness()
	want := []float64{0, 6.0 / 12, 8.0 / 12, 6.0 / 12, 0}
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-12 {
			t.Fatalf("bc[%d] = %v, want %v (all %v)", i, bc[i], want[i], bc)
		}
	}
}

func TestBetweennessCompleteIsZero(t *testing.T) {
	for _, v := range complete(6).Betweenness() {
		if v != 0 {
			t.Fatalf("complete graph has no intermediaries, got %v", v)
		}
	}
}

func TestBetweennessStarCenter(t *testing.T) {
	b := NewBuilder(5)
	for v := 1; v < 5; v++ {
		b.MustAddEdge(0, v)
	}
	bc := b.Freeze().Betweenness()
	if bc[0] != 1 {
		t.Fatalf("star center betweenness = %v, want 1", bc[0])
	}
	for v := 1; v < 5; v++ {
		if bc[v] != 0 {
			t.Fatalf("star leaf %d betweenness = %v, want 0", v, bc[v])
		}
	}
}

func TestBetweennessCycleUniform(t *testing.T) {
	bc := cycle(9).Betweenness()
	for i := 1; i < len(bc); i++ {
		if math.Abs(bc[i]-bc[0]) > 1e-12 {
			t.Fatalf("cycle betweenness not uniform: %v", bc)
		}
	}
	if bc[0] <= 0 {
		t.Fatal("cycle nodes are intermediaries")
	}
}

func TestBetweennessTinyGraphs(t *testing.T) {
	if bc := New(2).Betweenness(); bc[0] != 0 || bc[1] != 0 {
		t.Fatal("graphs below 3 nodes have zero betweenness")
	}
}

// bruteBetweenness counts shortest paths via BFS path enumeration on tiny
// graphs.
func bruteBetweenness(g *Graph) []float64 {
	n := g.Order()
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			paths := allShortestPaths(g, s, t)
			if len(paths) == 0 {
				continue
			}
			counts := make(map[int]int)
			for _, p := range paths {
				for _, v := range p[1 : len(p)-1] {
					counts[v]++
				}
			}
			for v, c := range counts {
				bc[v] += float64(c) / float64(len(paths))
			}
		}
	}
	norm := float64((n - 1) * (n - 2))
	for i := range bc {
		bc[i] /= norm
	}
	return bc
}

func allShortestPaths(g *Graph, s, t int) [][]int {
	dist := g.BFSFrom(s)
	if dist[t] < 0 {
		return nil
	}
	var out [][]int
	var rec func(v int, acc []int)
	rec = func(v int, acc []int) {
		acc = append(acc, v)
		if v == s {
			rev := make([]int, len(acc))
			for i, x := range acc {
				rev[len(acc)-1-i] = x
			}
			out = append(out, rev)
			return
		}
		for _, w := range g.Neighbors(v) {
			if dist[w] == dist[v]-1 {
				rec(w, acc)
			}
		}
	}
	rec(t, nil)
	return out
}

func TestPropertyBetweennessMatchesBruteForce(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%6) + 3
		g := randomGraph(n, uint64(seed))
		fast := g.Betweenness()
		slow := bruteBetweenness(g)
		for i := range fast {
			if math.Abs(fast[i]-slow[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

package obs

import (
	"testing"
	"time"
)

// The package-level contract: a disabled metric update is one atomic load
// and a branch; an enabled one is a handful of atomic adds. These
// micro-benchmarks quantify both sides of the gate; the repo-level
// enabled-sink benchmarks (bench_test.go at the root) measure the effect
// on real probes.

func BenchmarkCounterDisabled(b *testing.B) {
	Disable()
	c := NewCounter("bench.counter.disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	Enable()
	defer Disable()
	c := NewCounter("bench.counter.enabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	Disable()
	h := NewHistogram("bench.hist.disabled", 1, 2, 4, 8, 16, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 63))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	Enable()
	defer Disable()
	h := NewHistogram("bench.hist.enabled", 1, 2, 4, 8, 16, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 63))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	Disable()
	tm := NewTimer("bench.span.disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Start().End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	Enable()
	defer Disable()
	tm := NewTimer("bench.span.enabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Start().End()
	}
	if tm.Total() < time.Duration(0) {
		b.Fatal("impossible")
	}
}

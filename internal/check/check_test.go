package check

import (
	"strings"
	"testing"

	"lhg/internal/graph"
)

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(v, (v+1)%n)
	}
	return b.Freeze()
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.Freeze()
}

// petersen returns the Petersen graph: 3-regular, 3-connected, diameter 2.
func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for v := 0; v < 5; v++ {
		b.MustAddEdge(v, (v+1)%5)     // outer cycle
		b.MustAddEdge(5+v, 5+(v+2)%5) // inner pentagram
		b.MustAddEdge(v, 5+v)         // spokes
	}
	return b.Freeze()
}

func TestVerifyArgumentErrors(t *testing.T) {
	g := cycle(5)
	if _, err := Verify(g, 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := Verify(g, 5); err == nil {
		t.Fatal("k=n must be rejected")
	}
}

func TestVerifyPetersen(t *testing.T) {
	r, err := Verify(petersen(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeConnectivity != 3 || r.EdgeConnectivity != 3 {
		t.Fatalf("Petersen κ=%d λ=%d, want 3/3", r.NodeConnectivity, r.EdgeConnectivity)
	}
	if !r.KNodeConnected || !r.KLinkConnected || !r.LinkMinimal || !r.LogDiameter {
		t.Fatalf("Petersen should be an LHG witness: %s", r)
	}
	if !r.Regular {
		t.Fatal("Petersen is 3-regular")
	}
	if r.Diameter != 2 {
		t.Fatalf("Petersen diameter = %d, want 2", r.Diameter)
	}
	if !r.IsLHG() {
		t.Fatal("IsLHG must be true")
	}
}

func TestVerifyCycleFailsP4(t *testing.T) {
	// A long cycle is 2-connected and link-minimal but has linear diameter.
	// (k=2 keeps the diameter bound vacuous by design, so use a cycle with
	// a tighter k... instead verify with k=2 that the other properties
	// hold and the diameter value is reported faithfully.)
	g := cycle(30)
	r, err := Verify(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.KNodeConnected || !r.KLinkConnected || !r.LinkMinimal {
		t.Fatalf("C30: %s", r)
	}
	if r.Diameter != 15 {
		t.Fatalf("C30 diameter = %d, want 15", r.Diameter)
	}
}

func TestVerifyDetectsNonMinimalGraph(t *testing.T) {
	// A cycle plus one chord: still κ=λ=2 but the chord is removable.
	r, err := Verify(chorded(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkMinimal {
		t.Fatalf("chorded cycle must fail P3: %s", r)
	}
	e, ok := r.Violation()
	if !ok {
		t.Fatal("violation edge must be recorded")
	}
	// The only removable edge is the chord.
	if (e != graph.Edge{U: 0, V: 4}) {
		t.Fatalf("violating edge = %v, want {0 4}", e)
	}
	if r.IsLHG() {
		t.Fatal("IsLHG must be false when P3 fails")
	}
}

func TestVerifyUnderConnected(t *testing.T) {
	g := cycle(6) // κ=2 < 3
	r, err := Verify(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.KNodeConnected || r.KLinkConnected {
		t.Fatalf("C6 is not 3-connected: %s", r)
	}
	if r.IsLHG() {
		t.Fatal("IsLHG must be false")
	}
}

func TestVerifyDisconnected(t *testing.T) {
	g := graph.MustFromEdges(6, []graph.Edge{{U: 0, V: 1}})
	r, err := Verify(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.KNodeConnected || r.LinkMinimal || r.LogDiameter {
		t.Fatalf("disconnected graph must fail everything: %s", r)
	}
	if r.Diameter != -1 {
		t.Fatalf("Diameter = %d, want -1", r.Diameter)
	}
}

func TestVerifyCompleteGraph(t *testing.T) {
	// K5 for k=4: κ=λ=4, regular, minimal, diameter 1.
	r, err := Verify(complete(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsLHG() || !r.Regular {
		t.Fatalf("K5: %s", r)
	}
}

func TestDiameterBound(t *testing.T) {
	tests := []struct {
		n, k int
		want int
	}{
		{n: 10, k: 3, want: 2*4 + DiameterSlack},  // log2(10) -> ceil 4
		{n: 16, k: 3, want: 2*4 + DiameterSlack},  // log2(16) = 4
		{n: 100, k: 4, want: 2*5 + DiameterSlack}, // log3(100) -> ceil 5
		{n: 50, k: 2, want: 50},                   // degenerate base
		{n: 1, k: 5, want: 1},                     // n < 2
	}
	for _, tt := range tests {
		if got := DiameterBound(tt.n, tt.k); got != tt.want {
			t.Fatalf("DiameterBound(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestQuickVerifyAgreesWithVerify(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{name: "petersen", g: petersen(), k: 3},
		{name: "K6", g: complete(6), k: 5},
		{name: "C8 with chord", g: chorded(), k: 2},
		{name: "underconnected", g: cycle(6), k: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r, err := Verify(tt.g, tt.k)
			if err != nil {
				t.Fatal(err)
			}
			quickOK, err := QuickVerify(tt.g, tt.k)
			if err != nil {
				t.Fatal(err)
			}
			if quickOK != r.IsLHG() {
				t.Fatalf("QuickVerify=%t, Verify.IsLHG=%t (%s)", quickOK, r.IsLHG(), r)
			}
		})
	}
}

func chorded() *graph.Graph {
	b := cycle(8).Thaw()
	b.MustAddEdge(0, 4)
	return b.Freeze()
}

func TestQuickVerifyErrors(t *testing.T) {
	if _, err := QuickVerify(cycle(4), 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := QuickVerify(cycle(4), 4); err == nil {
		t.Fatal("k>=n must error")
	}
}

func TestReportString(t *testing.T) {
	r, err := Verify(petersen(), 3)
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	for _, want := range []string{"n=10", "m=15", "κ=3", "λ=3", "regular=true"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Report.String() = %q missing %q", s, want)
		}
	}
}

func TestVerifyReportsAvgPathLength(t *testing.T) {
	r, err := Verify(complete(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgPathLen != 1.0 {
		t.Fatalf("AvgPathLen(K4) = %v, want 1", r.AvgPathLen)
	}
}

func TestMooreDiameterLowerBound(t *testing.T) {
	tests := []struct {
		n, k, want int
	}{
		{n: 1, k: 3, want: 0},
		{n: 4, k: 3, want: 1},  // K4
		{n: 10, k: 3, want: 2}, // Petersen meets the Moore bound
		{n: 11, k: 3, want: 3},
		{n: 22, k: 3, want: 3},
		{n: 23, k: 3, want: 4},
		{n: 5, k: 1, want: 4},
		{n: 9, k: 2, want: 4}, // C9
	}
	for _, tt := range tests {
		if got := MooreDiameterLowerBound(tt.n, tt.k); got != tt.want {
			t.Fatalf("Moore(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
	// The Petersen graph attains it.
	if petersen().Diameter() != MooreDiameterLowerBound(10, 3) {
		t.Fatal("Petersen must meet the Moore bound")
	}
}

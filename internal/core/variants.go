package core

import (
	"lhg/internal/sim"
)

// Variant builders: the canonical builders produce one witness per (n,k),
// but Definitions 1 and 2 admit many graphs per pair (conversion order
// within a level, placement of added leaves, choice of unshared
// positions). The variant builders sample that space uniformly-ish with a
// seeded generator, so the test suite can check that *the constraint*, not
// just our canonical shape, yields LHGs — which is the actual content of
// Theorems 1 and 4.

// BuildKTreeVariant constructs a random K-TREE witness for (n,k):
// conversions still fill levels in order (rule 3a requires it) but pick a
// random leaf within the shallowest level, and each added leaf lands on a
// random above-leaf node with spare capacity (rule 3d: at most 2k-3 each).
func BuildKTreeVariant(n, k int, rng *sim.RNG) (*KTree, error) {
	if err := validatePair("K-TREE", n, k); err != nil {
		return nil, err
	}
	rem := n - 2*k
	alpha := rem / (2 * (k - 1))
	j := rem % (2 * (k - 1))

	s := newShape(k)
	for c := 0; c < alpha; c++ {
		if err := s.convertRandom(rng); err != nil {
			return nil, err
		}
	}
	if err := s.addLeavesRandom(rng, j, 2*k-3); err != nil {
		return nil, err
	}
	real, err := s.b.Compile()
	if err != nil {
		return nil, err
	}
	return &KTree{N: n, K: k, Alpha: alpha, J: j, Blue: s.b, Real: real}, nil
}

// BuildKDiamondVariant constructs a random K-DIAMOND witness for (n,k):
// like the K-TREE variant (budget k-2 per above-leaf node) and, when the
// decomposition calls for an unshared leaf, a random base leaf position at
// the deepest level becomes the clique.
func BuildKDiamondVariant(n, k int, rng *sim.RNG) (*KDiamond, error) {
	if err := validatePair("K-DIAMOND", n, k); err != nil {
		return nil, err
	}
	rem := n - 2*k
	alpha := rem / (k - 1)
	j := rem % (k - 1)
	conversions := alpha / 2
	unshared := alpha % 2

	s := newShape(k)
	for c := 0; c < conversions; c++ {
		if err := s.convertRandom(rng); err != nil {
			return nil, err
		}
	}
	if unshared == 1 {
		if err := s.markRandomLeafUnshared(rng); err != nil {
			return nil, err
		}
	}
	if err := s.addLeavesRandom(rng, j, k-2); err != nil {
		return nil, err
	}
	real, err := s.b.Compile()
	if err != nil {
		return nil, err
	}
	return &KDiamond{
		N: n, K: k,
		Alpha: alpha, J: j, Unshared: unshared,
		Blue: s.b, Real: real,
	}, nil
}

// shallowestLeaves returns the base shared-leaf positions at the minimum
// leaf depth.
func (s *shape) shallowestLeaves() []int {
	b := s.b
	minDepth := -1
	var out []int
	for p := 0; p < len(b.Kind); p++ {
		if b.Kind[p] != SharedLeaf || b.Added[p] {
			continue
		}
		switch {
		case minDepth < 0 || b.Depth[p] < minDepth:
			minDepth = b.Depth[p]
			out = out[:0]
			out = append(out, p)
		case b.Depth[p] == minDepth:
			out = append(out, p)
		}
	}
	return out
}

// convertRandom converts a random shallowest base leaf (keeping the tree
// height-balanced) into an internal node with k-1 fresh leaves.
func (s *shape) convertRandom(rng *sim.RNG) error {
	candidates := s.shallowestLeaves()
	if len(candidates) == 0 {
		return errNoLeaf()
	}
	p := candidates[rng.Intn(len(candidates))]
	b := s.b
	b.Kind[p] = Internal
	for i := 0; i < s.baseChild; i++ {
		s.addLeaf(p, false)
	}
	return nil
}

// addLeavesRandom hangs `count` added leaves on random above-leaf nodes,
// respecting the per-node budget.
func (s *shape) addLeavesRandom(rng *sim.RNG, count, perNode int) error {
	if count == 0 {
		return nil
	}
	b := s.b
	for a := 0; a < count; a++ {
		var hosts []int
		for p := 0; p < len(b.Kind); p++ {
			if b.Kind[p] != Internal || !s.hasBaseLeafChildShape(p) {
				continue
			}
			if s.addedCount(p) < perNode {
				hosts = append(hosts, p)
			}
		}
		if len(hosts) == 0 {
			return errNoLeaf()
		}
		s.addLeaf(hosts[rng.Intn(len(hosts))], true)
	}
	return nil
}

// markRandomLeafUnshared turns a random deepest base leaf into an unshared
// clique position.
func (s *shape) markRandomLeafUnshared(rng *sim.RNG) error {
	b := s.b
	maxDepth := -1
	var candidates []int
	for p := 0; p < len(b.Kind); p++ {
		if b.Kind[p] != SharedLeaf || b.Added[p] {
			continue
		}
		switch {
		case b.Depth[p] > maxDepth:
			maxDepth = b.Depth[p]
			candidates = candidates[:0]
			candidates = append(candidates, p)
		case b.Depth[p] == maxDepth:
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return errNoLeaf()
	}
	b.Kind[candidates[rng.Intn(len(candidates))]] = UnsharedLeaf
	return nil
}

func (s *shape) hasBaseLeafChildShape(p int) bool {
	for _, c := range s.b.Children[p] {
		if s.b.Kind[c] != Internal && !s.b.Added[c] {
			return true
		}
	}
	return false
}

func (s *shape) addedCount(p int) int {
	n := 0
	for _, c := range s.b.Children[p] {
		if s.b.Added[c] {
			n++
		}
	}
	return n
}

func errNoLeaf() error {
	return &PairError{Constraint: "variant", Reason: "no eligible position left"}
}

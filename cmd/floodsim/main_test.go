package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingleFlood(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-constraint", "ktree", "-n", "30", "-k", "3", "-fail", "2", "-mode", "random", "-seed", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"topology:   ktree(30,3)", "complete:   true", "coverage:   28/28"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAdversarialBelowK(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-constraint", "kdiamond", "-n", "20", "-k", "4", "-fail", "3", "-mode", "adversarial"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "complete:   true") {
		t.Fatalf("3 failures must not stop a 4-connected flood:\n%s", buf.String())
	}
}

func TestRunAdversarialAtK(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-constraint", "kdiamond", "-n", "20", "-k", "4", "-fail", "4", "-mode", "adversarial"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "complete:   false") {
		t.Fatalf("4 adversarial failures must cut a 4-connected graph:\n%s", buf.String())
	}
}

func TestRunReliability(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-constraint", "harary", "-n", "24", "-k", "3", "-fail", "2", "-trials", "40"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reliability (full coverage): 1.0000") {
		t.Fatalf("3-connected graph must be fully reliable at f=2:\n%s", buf.String())
	}
}

func TestRunNetChaosReliableUnderLoss(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-net", "-reliable", "-constraint", "kdiamond", "-n", "12", "-k", "3",
		"-fail", "2", "-mode", "adversarial", "-loss", "0.25", "-dup", "0.1",
		"-delay", "1ms", "-seed", "7", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var res map[string]any
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON %q: %v", buf.String(), err)
	}
	if res["complete"] != true {
		t.Fatalf("k-1 chaos run incomplete: %v", res)
	}
	if res["delivered"].(float64) != res["expected"].(float64) {
		t.Fatalf("delivered %v of %v", res["delivered"], res["expected"])
	}
}

func TestRunNetAdversarialLinkCut(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-net", "-constraint", "kdiamond", "-n", "12", "-k", "3",
		"-fail", "3", "-mode", "adversarial", "-linkfail", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var res map[string]any
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON %q: %v", buf.String(), err)
	}
	if res["unreachable"].(float64) == 0 {
		t.Fatalf("lambda link failures must sever some nodes: %v", res)
	}
	if res["leaked"].(float64) != 0 {
		t.Fatalf("broadcast leaked across the simulator's min edge cut: %v", res)
	}
	if res["complete"] != true {
		t.Fatalf("source side of the cut must still deliver: %v", res)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad constraint", args: []string{"-constraint", "x"}},
		{name: "bad mode", args: []string{"-mode", "chaotic"}},
		{name: "unbuildable", args: []string{"-constraint", "jd", "-n", "9", "-k", "3"}},
		{name: "too many failures", args: []string{"-n", "10", "-k", "3", "-fail", "10"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tt.args, &buf); err == nil {
				t.Fatal("run succeeded, want error")
			}
		})
	}
}

// TestRunBudgetHuman pins the -budget mode's human report: the static
// analysis runs without sending a frame and leads with the enforceable
// ceiling and the derived guard plan.
func TestRunBudgetHuman(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-budget", "-constraint", "kdiamond", "-n", "20", "-k", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"topology:      kdiamond(20,4)",
		"frame ceiling: 1040 frames per broadcast",
		"diversity:     >= 4 disjoint paths",
		"guard:         hop budget",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("budget output missing %q:\n%s", want, out)
		}
	}
}

// TestRunBudgetJSON pins the -budget -json artifact: one object carrying
// the full report (ceiling = 2m·(1+retries), per-pair budgets) plus the
// guard plan netflood enforces.
func TestRunBudgetJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-budget", "-json", "-constraint", "kdiamond", "-n", "16", "-k", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Edges        int64 `json:"edges"`
		FrameCeiling int64 `json:"frame_ceiling"`
		MinDiversity int   `json:"min_diversity"`
		Pairs        []any `json:"pairs"`
		Guard        struct {
			HopBudget   int     `json:"hop_budget"`
			RetryBudget int     `json:"retry_budget"`
			Rate        float64 `json:"retransmit_rate"`
		} `json:"guard"`
	}
	if err := json.Unmarshal(buf.Bytes(), &art); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if want := 2 * art.Edges * 13; art.FrameCeiling != want {
		t.Fatalf("frame ceiling %d, want 2m(1+R) = %d", art.FrameCeiling, want)
	}
	if art.MinDiversity < 4 {
		t.Fatalf("min diversity %d below design k", art.MinDiversity)
	}
	if len(art.Pairs) != 15 {
		t.Fatalf("got %d pair budgets, want n-1 = 15", len(art.Pairs))
	}
	if art.Guard.HopBudget <= 0 || art.Guard.RetryBudget <= 0 || art.Guard.Rate <= 0 {
		t.Fatalf("guard plan not derived: %+v", art.Guard)
	}
}

// TestRunNetGuardedUnderLoss is the CLI face of storm control: a -guard run
// at 25% loss with k-1 adversarial crashes must still deliver everywhere
// while spending at most the analyzer's frame ceiling.
func TestRunNetGuardedUnderLoss(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-net", "-reliable", "-guard", "-constraint", "kdiamond", "-n", "12", "-k", "3",
		"-fail", "2", "-mode", "adversarial", "-loss", "0.25", "-seed", "7", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var res map[string]any
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON %q: %v", buf.String(), err)
	}
	if res["complete"] != true || res["guarded"] != true {
		t.Fatalf("guarded chaos run failed: %v", res)
	}
	total, ceiling := res["frames_total"].(float64), res["frame_ceiling"].(float64)
	if ceiling <= 0 || total > ceiling {
		t.Fatalf("frame budget violated: %v of %v", total, ceiling)
	}
}

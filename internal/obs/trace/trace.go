// Package trace is the request-scoped half of the observability layer:
// where package obs aggregates (counters, histograms, phase totals), this
// package answers "where did THIS request's time go". A trace is a tree of
// spans minted at the facade entrypoints (Build/Verify/Flood and the lhgd
// request middleware) and propagated through context; finished spans land
// in a lock-striped ring-buffer flight recorder (see recorder.go) that
// exports the Chrome trace_event JSON format (/debug/trace, lhcheck
// -trace), and every span transition can additionally be fanned out to
// live listeners (the SSE progress streams of lhgd) through per-trace
// emitters.
//
// The design constraint is the same as package obs: the hot path. When
// tracing is disabled — the default — StartSpan, Span.End, Span.Event and
// FromContext cost one atomic load and a branch, allocate nothing, and
// return inert values that are safe to use. BenchmarkTraceDisabled and
// TestTraceDisabledZeroAlloc pin this contract. Call sites that want to
// attach attributes guard with Span.Live() so the attribute slice is never
// built for an inert span:
//
//	ctx, sp := trace.StartSpan(ctx, "flow.worker")
//	if sp.Live() {
//		sp.SetAttr(trace.Int("worker", int64(w)))
//	}
//	defer sp.End()
//
// Identifiers are W3C Trace Context shaped — 16-byte trace ids, 8-byte
// span ids — so lhgd can ingest and emit `traceparent` headers unchanged
// (see traceparent.go).
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// enabled is the global gate. Every entrypoint checks it first; the
// disabled path is one atomic load and a predictable branch.
var enabled atomic.Bool

// Enable turns tracing on: StartRoot mints traces, spans record into the
// default recorder, and emitters fire.
func Enable() { enabled.Store(true) }

// Disable turns tracing off. Spans already in the recorder are retained
// until Reset.
func Disable() { enabled.Store(false) }

// Enabled reports whether tracing is collecting.
func Enabled() bool { return enabled.Load() }

// TraceID is the 16-byte W3C trace id.
type TraceID [16]byte

// SpanID is the 8-byte W3C parent/span id.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// idState seeds the id sequence from the OS entropy pool once; ids are
// then drawn lock-free by mixing an atomic counter through splitmix64, so
// minting a span never blocks on a rand source.
var idState atomic.Uint64

func init() {
	var b [8]byte
	_, _ = crand.Read(b[:])
	idState.Store(binary.LittleEndian.Uint64(b[:]) | 1)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijection on
// uint64 with full avalanche, which makes counter-derived ids uniform.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func nextID() uint64 {
	for {
		if v := splitmix64(idState.Add(1)); v != 0 {
			return v
		}
	}
}

func newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], nextID())
	binary.BigEndian.PutUint64(id[8:], nextID())
	return id
}

func newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], nextID())
	return id
}

// Attr is one key/value span attribute. Build them with Str and Int.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	isInt bool
}

// Str returns a string-valued attribute.
func Str(key, value string) Attr { return Attr{Key: key, Str: value} }

// Int returns an integer-valued attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Int: value, isInt: true} }

// Value returns the attribute's value as the any shape exporters want.
func (a Attr) Value() any {
	if a.isInt {
		return a.Int
	}
	return a.Str
}

// Trace is one request's span tree: the shared id, the start instant every
// event offsets against, the recorder finished spans land in, and the
// emitter fan-out for live listeners.
type Trace struct {
	id       TraceID
	start    time.Time
	rec      *Recorder
	emitters atomic.Pointer[[]*emitterEntry]
}

// emitterEntry gives each attached emitter an identity (funcs are not
// comparable), so AddEmitter's remove closure can delete exactly its own.
type emitterEntry struct{ fn Emitter }

// ID returns the trace id.
func (t *Trace) ID() TraceID { return t.id }

// AddEmitter attaches an additional live listener to the trace and returns
// a function that detaches it. Emitters added mid-flight see only events
// from the moment of attachment on — which is exactly what a progress
// stream wants. Safe for concurrent use (copy-on-write).
func (t *Trace) AddEmitter(e Emitter) (remove func()) {
	ent := &emitterEntry{fn: e}
	for {
		old := t.emitters.Load()
		var next []*emitterEntry
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, ent)
		if t.emitters.CompareAndSwap(old, &next) {
			break
		}
	}
	return func() {
		for {
			old := t.emitters.Load()
			if old == nil {
				return
			}
			next := make([]*emitterEntry, 0, len(*old))
			for _, x := range *old {
				if x != ent {
					next = append(next, x)
				}
			}
			if t.emitters.CompareAndSwap(old, &next) {
				return
			}
		}
	}
}

func (t *Trace) emit(ev Event) {
	if t == nil {
		return
	}
	es := t.emitters.Load()
	if es == nil {
		return
	}
	for _, ent := range *es {
		ent.fn(ev)
	}
}

// spanData is the heap half of a live span. Spans hand out the pointer by
// value so the zero Span (inert) costs nothing.
type spanData struct {
	tr     *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
}

// Span is one in-flight operation of a trace. The zero Span is inert:
// every method is a no-op, so instrumented code never branches on whether
// tracing is on.
type Span struct {
	d *spanData
}

// Live reports whether the span records anywhere. Call sites use it to
// skip building attribute slices for inert spans.
func (s Span) Live() bool { return s.d != nil }

// TraceID returns the owning trace's id (zero for an inert span).
func (s Span) TraceID() TraceID {
	if s.d == nil {
		return TraceID{}
	}
	return s.d.tr.id
}

// ID returns the span id (zero for an inert span).
func (s Span) ID() SpanID {
	if s.d == nil {
		return SpanID{}
	}
	return s.d.id
}

// Trace returns the owning trace (nil for an inert span).
func (s Span) Trace() *Trace {
	if s.d == nil {
		return nil
	}
	return s.d.tr
}

// SetAttr appends one attribute to the span. Inert spans ignore it. Not
// safe for concurrent use on the same span (spans are goroutine-local by
// construction: each worker starts its own).
func (s Span) SetAttr(a Attr) {
	if s.d == nil {
		return
	}
	s.d.attrs = append(s.d.attrs, a)
}

// End closes the span: its record lands in the recorder and a span-end
// event reaches the trace's emitters. It returns the measured wall time
// (0 for an inert span). End must be called at most once.
func (s Span) End() time.Duration {
	if s.d == nil {
		return 0
	}
	d := time.Since(s.d.start)
	s.d.tr.rec.add(Record{
		Trace:  s.d.tr.id,
		Span:   s.d.id,
		Parent: s.d.parent,
		Name:   s.d.name,
		Kind:   KindSpan,
		Start:  s.d.start,
		Dur:    d,
		Attrs:  s.d.attrs,
	})
	s.d.tr.emit(Event{
		Type:   EventSpanEnd,
		Name:   s.d.name,
		Trace:  s.d.tr.id.String(),
		Span:   s.d.id.String(),
		Parent: parentString(s.d.parent),
		AtMs:   ms(s.d.start.Sub(s.d.tr.start)),
		DurMs:  ms(d),
		Attrs:  attrMap(s.d.attrs),
	})
	return d
}

// Event records one instantaneous point event under the span (probe
// progress, a cache decision): it lands in the recorder and reaches the
// emitters immediately, without waiting for the span to end. Inert spans
// ignore it; guard with Live() before building attributes.
func (s Span) Event(name string, attrs ...Attr) {
	if s.d == nil {
		return
	}
	now := time.Now()
	s.d.tr.rec.add(Record{
		Trace:  s.d.tr.id,
		Span:   s.d.id,
		Parent: s.d.parent,
		Name:   name,
		Kind:   KindInstant,
		Start:  now,
		Attrs:  attrs,
	})
	s.d.tr.emit(Event{
		Type:  EventPoint,
		Name:  name,
		Trace: s.d.tr.id.String(),
		Span:  s.d.id.String(),
		AtMs:  ms(now.Sub(s.d.tr.start)),
		Attrs: attrMap(attrs),
	})
}

// ctxKey keys the current span in a context.
type ctxKey struct{}

// FromContext returns the current span of ctx, or an inert span when
// tracing is disabled or ctx carries none.
func FromContext(ctx context.Context) Span {
	if !enabled.Load() {
		return Span{}
	}
	s, _ := ctx.Value(ctxKey{}).(Span)
	return s
}

// ContextWithSpan returns a context carrying s. Used by the serve layer to
// graft a request's span onto the singleflight's detached computation
// context, so the campaign's child spans keep their causal parent while
// cancellation stays governed by the flight.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if s.d == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// Graft copies the current span of src (if any) onto dst and returns the
// result. dst keeps its own cancellation and deadlines.
func Graft(dst, src context.Context) context.Context {
	if !enabled.Load() {
		return dst
	}
	return ContextWithSpan(dst, FromContext(src))
}

// StartSpan opens a child span of the current span of ctx and returns the
// descended context and the span. When tracing is disabled, or ctx carries
// no trace (the request was never rooted), it returns ctx unchanged and an
// inert span — one atomic load, zero allocations.
func StartSpan(ctx context.Context, name string) (context.Context, Span) {
	if !enabled.Load() {
		return ctx, Span{}
	}
	parent, _ := ctx.Value(ctxKey{}).(Span)
	if parent.d == nil {
		return ctx, Span{}
	}
	s := startIn(parent.d.tr, parent.d.id, name)
	return context.WithValue(ctx, ctxKey{}, s), s
}

func startIn(tr *Trace, parent SpanID, name string) Span {
	d := &spanData{tr: tr, id: newSpanID(), parent: parent, name: name, start: time.Now()}
	tr.emit(Event{
		Type:   EventSpanStart,
		Name:   name,
		Trace:  tr.id.String(),
		Span:   d.id.String(),
		Parent: parentString(parent),
		AtMs:   ms(d.start.Sub(tr.start)),
	})
	return Span{d: d}
}

// rootOptions configures StartRoot.
type rootOptions struct {
	parentTrace TraceID
	parentSpan  SpanID
	emitter     Emitter
	rec         *Recorder
}

// RootOption configures StartRoot.
type RootOption func(*rootOptions)

// WithParent adopts an upstream trace id and parent span id (from a W3C
// traceparent header): the new root joins that trace instead of minting a
// fresh id.
func WithParent(trace TraceID, span SpanID) RootOption {
	return func(o *rootOptions) { o.parentTrace, o.parentSpan = trace, span }
}

// WithEmitter attaches a live event listener to the new trace.
func WithEmitter(e Emitter) RootOption {
	return func(o *rootOptions) { o.emitter = e }
}

// WithRecorder directs the trace's records to r instead of the default
// flight recorder.
func WithRecorder(r *Recorder) RootOption {
	return func(o *rootOptions) { o.rec = r }
}

// StartRoot opens a span, minting a new trace when ctx carries none: the
// facade entrypoints and the lhgd request middleware call it so every
// operation belongs to exactly one trace. If ctx already carries a live
// span, StartRoot behaves as StartSpan and the options are ignored — an
// already-rooted request keeps its identity. Disabled tracing returns ctx
// unchanged and an inert span.
func StartRoot(ctx context.Context, name string, opts ...RootOption) (context.Context, Span) {
	if !enabled.Load() {
		return ctx, Span{}
	}
	if parent, _ := ctx.Value(ctxKey{}).(Span); parent.d != nil {
		s := startIn(parent.d.tr, parent.d.id, name)
		return context.WithValue(ctx, ctxKey{}, s), s
	}
	var o rootOptions
	for _, opt := range opts {
		opt(&o)
	}
	tr := &Trace{id: o.parentTrace, start: time.Now(), rec: o.rec}
	if tr.id.IsZero() {
		tr.id = newTraceID()
	}
	if tr.rec == nil {
		tr.rec = DefaultRecorder
	}
	if o.emitter != nil {
		tr.AddEmitter(o.emitter)
	}
	s := startIn(tr, o.parentSpan, name)
	return context.WithValue(ctx, ctxKey{}, s), s
}

// TimedSpan is a span that is ALWAYS wall-timed, even when tracing is
// disabled: End returns the real duration either way, with the trace
// record only materializing when the span half is live. It exists so the
// verification phase breakdown (Report.Phases, lhcheck -v) can read its
// timings from the spans themselves — one clock, one source of truth —
// instead of keeping parallel bookkeeping.
type TimedSpan struct {
	start time.Time
	span  Span
}

// StartTimed opens an always-timed span. Intended for coarse phases (a
// handful per request), not hot loops: it calls time.Now even when
// tracing is off.
func StartTimed(ctx context.Context, name string) (context.Context, TimedSpan) {
	ctx, sp := StartSpan(ctx, name)
	if sp.d != nil {
		return ctx, TimedSpan{start: sp.d.start, span: sp}
	}
	return ctx, TimedSpan{start: time.Now()}
}

// Span returns the trace half (inert when tracing is disabled).
func (t TimedSpan) Span() Span { return t.span }

// End closes the span and returns its wall time, measured from the same
// instant the trace record uses.
func (t TimedSpan) End() time.Duration {
	if t.span.d != nil {
		return t.span.End()
	}
	return time.Since(t.start)
}

// Instant records a free-standing point event into the default recorder,
// outside any trace (zero trace id): background work no request context
// reaches, like the netflood retransmit loops. Guard attribute building
// with Enabled() at the call site.
func Instant(name string, attrs ...Attr) {
	if !enabled.Load() {
		return
	}
	DefaultRecorder.add(Record{
		Span:  newSpanID(),
		Name:  name,
		Kind:  KindInstant,
		Start: time.Now(),
		Attrs: attrs,
	})
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// parentString renders a parent id, with the zero id (a root) as empty so
// serialized events omit it.
func parentString(id SpanID) string {
	if id.IsZero() {
		return ""
	}
	return id.String()
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

package obs

import (
	"context"
	"io"
	"log/slog"

	"lhg/internal/obs/trace"
)

// Structured logging. NewLogger is the one constructor the daemon and the
// CLIs share: text-format slog to the given writer, with every record
// logged under a traced context automatically carrying the trace_id and
// span_id attributes — so a grep for the trace id returned in an HTTP
// response finds the server-side log lines of that exact request.

// NewLogger returns a text-format structured logger writing to w at the
// given minimum level. A nil writer yields a logger that discards
// everything (cheaper than leveling-out: no record is ever built).
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	if w == nil {
		return slog.New(discardHandler{})
	}
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(traceHandler{inner: h})
}

// traceHandler decorates a slog.Handler with the identity of the span in
// the log call's context, when there is one.
type traceHandler struct {
	inner slog.Handler
}

func (h traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h traceHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sp := trace.FromContext(ctx); sp.Live() {
		rec.AddAttrs(
			slog.String("trace_id", sp.TraceID().String()),
			slog.String("span_id", sp.ID().String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{inner: h.inner.WithGroup(name)}
}

// discardHandler drops every record. (slog.DiscardHandler arrived in a
// later Go release than this module's floor, hence the local copy.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

package check

import (
	"reflect"
	"sort"
	"testing"

	"lhg/internal/graph"
)

// barbell is two K6 cliques joined by two edges (0–6 and 1–7): δ = 5 but
// λ = 2, the canonical shape the Karger prescreen exists for — the star
// bound is badly loose and the true cut splits the graph in half.
func barbell(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(12)
	for _, off := range []int{0, 6} {
		for u := 0; u < 6; u++ {
			for v := u + 1; v < 6; v++ {
				b.MustAddEdge(off+u, off+v)
			}
		}
	}
	b.MustAddEdge(0, 6)
	b.MustAddEdge(1, 7)
	return b.Freeze()
}

// TestPrescreenRoutingRate pins the routing rate of the fixed-seed Karger
// prescreen — how many nodes get flagged for confirmation-first probing —
// on both canonical shapes. On the barbell the contraction rounds must find
// the true 2-cut and flag exactly one clique (6 of 12 nodes); on a regular
// Harary graph λ = δ, no round can beat the star bound, and nothing is
// flagged, so the hints degenerate to the historical sweep. The prescreen
// is a pure function of the graph, so these values are exact, not
// statistical — a drift means the seed, the round budget, or the
// contraction order changed.
func TestPrescreenRoutingRate(t *testing.T) {
	g := barbell(t)
	withSink(t)

	hints := prescreenHints(g)
	if hints.Upper != 2 {
		t.Fatalf("barbell: certified upper bound %d, want the true cut 2", hints.Upper)
	}
	if len(hints.Critical) != 6 {
		t.Fatalf("barbell: %d critical nodes, want 6 (one clique)", len(hints.Critical))
	}
	got := append([]int(nil), hints.Critical...)
	sort.Ints(got)
	half := [][]int{{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}}
	if !reflect.DeepEqual(got, half[0]) && !reflect.DeepEqual(got, half[1]) {
		t.Fatalf("barbell: critical set %v is not one side of the 2-cut", got)
	}
	if v := mPrescreenImproved.Value(); v != 1 {
		t.Fatalf("check.prescreen.improved = %d, want 1", v)
	}
	if v := mPrescreenCritical.Value(); v != 6 {
		t.Fatalf("check.prescreen.critical_nodes = %d, want 6", v)
	}
	if again := prescreenHints(g); again.Upper != hints.Upper ||
		!reflect.DeepEqual(again.Critical, hints.Critical) {
		t.Fatal("prescreen hints are not deterministic across runs on the same graph")
	}

	h := mustHarary(t, 64, 4)
	reg := prescreenHints(h)
	if reg.Upper != 4 {
		t.Fatalf("harary H(4,64): certified upper bound %d, want δ = 4", reg.Upper)
	}
	if len(reg.Critical) != 0 {
		t.Fatalf("harary H(4,64): %d critical nodes, want 0 (λ = δ, nothing to route)", len(reg.Critical))
	}
}

package proc

import (
	"testing"

	"lhg/internal/graph"
)

func TestFIFOMatchesRawWhenUniform(t *testing.T) {
	// With unit latencies, a single source's messages arrive in order:
	// FIFO order equals raw order.
	g := ktree(t, 12, 3)
	n, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := n.Broadcast(0, "m", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	n.Run()
	for id := 0; id < g.Order(); id++ {
		raw := n.Delivered(id)
		fifo := n.FIFODelivered(id)
		if len(raw) != 4 || len(fifo) != 4 {
			t.Fatalf("process %d delivered raw=%d fifo=%d", id, len(raw), len(fifo))
		}
		for i := range raw {
			if raw[i] != fifo[i] {
				t.Fatalf("process %d order differs at %d", id, i)
			}
		}
		if n.FIFOPending(id) != 0 {
			t.Fatalf("process %d holds %d pending", id, n.FIFOPending(id))
		}
	}
}

func TestFIFOReordersInvertedArrivals(t *testing.T) {
	// Exercise the reordering machinery directly: the later message (seq 1)
	// arrives first and must be held back until seq 0 lands.
	f := newFIFOState()
	b := Message{ID: MsgID{Src: 0, Seq: 1}, Payload: "B"}
	a := Message{ID: MsgID{Src: 0, Seq: 0}, Payload: "A"}
	f.push(b) // arrives first
	if len(f.order) != 0 {
		t.Fatal("B must be held back until A arrives")
	}
	f.push(a)
	if len(f.order) != 2 || f.order[0] != a || f.order[1] != b {
		t.Fatalf("FIFO order = %v, want [A B]", f.order)
	}
	if len(f.pending) != 0 {
		t.Fatal("nothing should remain pending")
	}
}

func TestFIFOInversionEndToEnd(t *testing.T) {
	// Two-node network where the link is slow; the source's second message
	// is injected with an earlier flood start than the first one's arrival,
	// so raw arrivals at node 1 can interleave across sources but stay
	// ordered per source. Verify per-source order holds in FIFO output even
	// when raw output mixes sources.
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	n, err := NewNetwork(g, WithLatency(func(u, v int) int64 { return 3 }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Broadcast(0, "a0", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Broadcast(1, "b0", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Broadcast(0, "a1", 2); err != nil {
		t.Fatal(err)
	}
	n.Run()
	for id := 0; id < 2; id++ {
		fifo := n.FIFODelivered(id)
		if len(fifo) != 3 {
			t.Fatalf("process %d FIFO-delivered %d, want 3", id, len(fifo))
		}
		// Per-source sequence numbers must be non-decreasing in FIFO order.
		lastSeq := map[int]int{}
		for _, m := range fifo {
			if last, ok := lastSeq[m.ID.Src]; ok && m.ID.Seq != last+1 {
				t.Fatalf("process %d: source %d jumped %d -> %d", id, m.ID.Src, last, m.ID.Seq)
			}
			lastSeq[m.ID.Src] = m.ID.Seq
		}
	}
}

func TestFIFOBlocksOnMissingPredecessor(t *testing.T) {
	f := newFIFOState()
	f.push(Message{ID: MsgID{Src: 3, Seq: 2}})
	f.push(Message{ID: MsgID{Src: 3, Seq: 1}})
	if len(f.order) != 0 {
		t.Fatal("seq 0 never arrived; nothing may be FIFO-delivered")
	}
	if len(f.pending) != 2 {
		t.Fatalf("pending = %d, want 2", len(f.pending))
	}
	f.push(Message{ID: MsgID{Src: 3, Seq: 0}})
	if len(f.order) != 3 {
		t.Fatalf("all three must flush, got %d", len(f.order))
	}
}

func TestFIFOAccessorsOutOfRange(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	n, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	if n.FIFODelivered(-1) != nil {
		t.Fatal("out of range must be nil")
	}
	if n.FIFOPending(5) != 0 {
		t.Fatal("out of range must be 0")
	}
}

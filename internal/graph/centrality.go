package graph

// Betweenness computes exact betweenness centrality for every node using
// Brandes' algorithm (2001): the number of shortest paths through each
// node, summed over all ordered pairs and normalized by the pair count.
// It quantifies how unevenly a topology concentrates forwarding load —
// classic Harary circulants spread load perfectly evenly, while the
// tree-shaped LHGs concentrate it on root copies (experiment E20).
func (g *Graph) Betweenness() []float64 {
	n := g.Order()
	bc := make([]float64, n)
	if n < 3 {
		return bc
	}
	var (
		stack = make([]int, 0, n)
		queue = make([]int, 0, n)
		preds = make([][]int, n)
		sigma = make([]float64, n)
		dist  = make([]int, n)
		delta = make([]float64, n)
	)
	for s := 0; s < n; s++ {
		stack = stack[:0]
		queue = queue[:0]
		for i := 0; i < n; i++ {
			preds[i] = preds[i][:0]
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
		}
		sigma[s] = 1
		dist[s] = 0
		queue = append(queue, s)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			stack = append(stack, v)
			for _, nb := range g.row(v) {
				w := int(nb)
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	// Undirected normalization: each pair counted twice, over (n-1)(n-2)
	// ordered pairs not involving the node itself.
	norm := float64((n - 1) * (n - 2))
	for i := range bc {
		bc[i] /= norm
	}
	return bc
}

// Command lhroute answers point-to-point routing queries on an LHG using
// the structured router (the Lemma 3 diameter argument as an algorithm):
// no search, no routing tables, just the blueprint. It prints the route
// with blueprint labels and compares it against the true shortest path.
//
// Usage:
//
//	lhroute -constraint kdiamond -n 50 -k 4 -from 0 -to 37
//	lhroute -constraint ktree -n 21 -k 3 -all    # worst stretch over all pairs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lhg"
	"lhg/internal/core"
	"lhg/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lhroute:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lhroute", flag.ContinueOnError)
	var (
		constraint = fs.String("constraint", "kdiamond", "topology: ktree or kdiamond")
		n          = fs.Int("n", 20, "number of nodes")
		k          = fs.Int("k", 3, "connectivity target")
		from       = fs.Int("from", 0, "route source node")
		to         = fs.Int("to", 1, "route target node")
		all        = fs.Bool("all", false, "sweep all pairs and report the stretch distribution")
		metrics    = fs.Bool("metrics", false, "dump the JSON metrics report to stderr at exit")
		httpAddr   = fs.String("http", "", "serve /debug/vars, /metrics and /debug/pprof/ on this address for the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopObs, err := obs.StartCLI(*metrics, *httpAddr, os.Stderr)
	if err != nil {
		return err
	}
	defer stopObs()
	c, err := lhg.ParseConstraint(*constraint)
	if err != nil {
		return err
	}
	blue, real, err := buildBlueprint(c, *n, *k)
	if err != nil {
		return err
	}
	router, err := core.NewRouter(blue, real)
	if err != nil {
		return err
	}
	g := real.Graph

	if *all {
		return sweep(out, router, g)
	}
	path, err := router.Route(*from, *to)
	if err != nil {
		return err
	}
	dist := g.BFSFrom(*from)[*to]
	fmt.Fprintf(out, "route %d -> %d (%d hops, shortest %d, bound %d):\n",
		*from, *to, len(path)-1, dist, router.MaxRouteLength())
	for i, v := range path {
		sep := " -> "
		if i == 0 {
			sep = "  "
		}
		fmt.Fprintf(out, "%s%s(%d)", sep, real.Labels[v], v)
	}
	fmt.Fprintln(out)
	return nil
}

func sweep(out io.Writer, router *core.Router, g interface {
	Order() int
	BFSFrom(int) []int
}) error {
	n := g.Order()
	var (
		pairs      int
		totalHops  int
		worst      float64
		worstU, wV int
	)
	for u := 0; u < n; u++ {
		dist := g.BFSFrom(u)
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			path, err := router.Route(u, v)
			if err != nil {
				return err
			}
			hops := len(path) - 1
			totalHops += hops
			pairs++
			stretch := float64(hops) / float64(dist[v])
			if stretch > worst {
				worst, worstU, wV = stretch, u, v
			}
		}
	}
	fmt.Fprintf(out, "pairs: %d\nmean route length: %.2f\nworst stretch: %.2f (pair %d -> %d)\nbound: %d\n",
		pairs, float64(totalHops)/float64(pairs), worst, worstU, wV, router.MaxRouteLength())
	return nil
}

func buildBlueprint(c lhg.Constraint, n, k int) (*core.Blueprint, *core.Realization, error) {
	switch c {
	case lhg.KTree:
		kt, err := core.BuildKTree(n, k)
		if err != nil {
			return nil, nil, err
		}
		return kt.Blue, kt.Real, nil
	case lhg.KDiamond:
		kd, err := core.BuildKDiamond(n, k)
		if err != nil {
			return nil, nil, err
		}
		return kd.Blue, kd.Real, nil
	default:
		return nil, nil, fmt.Errorf("constraint %v has no structured router (use ktree or kdiamond)", c)
	}
}

package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"lhg"
	"lhg/internal/core"
	"lhg/internal/render"
)

// writeFigures renders the paper's witness graphs (Figures 1-3) as
// Graphviz DOT files into dir, one file per subfigure, using the blueprint
// labels (R<i> roots, N<p>.<i> internal copies, L<p> shared leaves,
// U<p>.<i> clique members).
func writeFigures(dir string, out io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	figures := []struct {
		file string
		c    lhg.Constraint
		n, k int
	}{
		{file: "fig1_ktree_21_3.dot", c: lhg.KTree, n: 21, k: 3},
		{file: "fig2a_ktree_6_3.dot", c: lhg.KTree, n: 6, k: 3},
		{file: "fig2b_ktree_9_3.dot", c: lhg.KTree, n: 9, k: 3},
		{file: "fig2c_ktree_10_3.dot", c: lhg.KTree, n: 10, k: 3},
		{file: "fig3a_kdiamond_7_3.dot", c: lhg.KDiamond, n: 7, k: 3},
		{file: "fig3b_kdiamond_8_3.dot", c: lhg.KDiamond, n: 8, k: 3},
		{file: "fig3c_kdiamond_13_3.dot", c: lhg.KDiamond, n: 13, k: 3},
		{file: "fig3d_kdiamond_14_3.dot", c: lhg.KDiamond, n: 14, k: 3},
	}
	for _, fig := range figures {
		g, labels, err := lhg.Labeled(fig.c, fig.n, fig.k)
		if err != nil {
			return fmt.Errorf("%s: %w", fig.file, err)
		}
		path := filepath.Join(dir, fig.file)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%s_%d_%d", fig.c, fig.n, fig.k)
		if err := g.DOT(f, name, labels); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d nodes, %d edges)\n", path, g.Order(), g.Size())

		// Matching SVG rendering with the paper-style layered layout.
		blue, real, err := figureBlueprint(fig.c, fig.n, fig.k)
		if err != nil {
			return err
		}
		svgPath := strings.TrimSuffix(path, ".dot") + ".svg"
		sf, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		if err := render.Blueprint(sf, blue, real, render.Style{Width: 860, Height: 460}); err != nil {
			sf.Close()
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", svgPath)
	}
	// A bonus rendering of the (8,3) blueprint statistics for the docs.
	//
	kd, err := core.BuildKDiamond(8, 3)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fig3b structure: %d internal positions, %d shared leaves, %d unshared groups\n",
		kd.Blue.Internals(), kd.Blue.SharedLeaves(), kd.Blue.UnsharedLeaves())
	return nil
}

// figureBlueprint rebuilds the blueprint behind a figure.
func figureBlueprint(c lhg.Constraint, n, k int) (*core.Blueprint, *core.Realization, error) {
	switch c {
	case lhg.KTree:
		kt, err := core.BuildKTree(n, k)
		if err != nil {
			return nil, nil, err
		}
		return kt.Blue, kt.Real, nil
	case lhg.KDiamond:
		kd, err := core.BuildKDiamond(n, k)
		if err != nil {
			return nil, nil, err
		}
		return kd.Blue, kd.Real, nil
	default:
		return nil, nil, fmt.Errorf("figure constraint %v has no blueprint", c)
	}
}

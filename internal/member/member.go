// Package member composes the repository's layers into a membership
// service: a system of processes whose topology is the canonical LHG for
// the current view, whose view changes are disseminated by flooding over
// that same topology, and which repairs itself after crashes by proposing
// leaves for the dead members and applying the constructions' delta
// surgery.
//
// The service demonstrates the end-to-end guarantee chain:
//
//	k-connectivity  =>  view-change floods reach every alive member despite
//	                    up to k-1 crashed members still in the topology
//	                =>  all correct members apply the same view sequence
//	                =>  the next topology is consistent, and flooding keeps
//	                    working through the repair.
//
// Since PR 6 the topology is maintained by a core.Reconfigurer churn
// engine instead of per-change canonical rebuilds: a join is one Grow, a
// repair is a batch of Shrinks merged into one net edge delta. Churn in
// the change reports is therefore the EXACT number of link operations a
// deployment would issue — O(k²) per membership event, independent of n —
// not the edge diff of two unrelated canonical builds.
package member

import (
	"fmt"

	"lhg/internal/core"
	"lhg/internal/flood"
	"lhg/internal/graph"
	"lhg/internal/overlay"
)

// EngineFunc builds a churn engine positioned at n members with
// connectivity target k. core.NewKTreeGrowerAt and core.NewKDiamondGrowerAt
// satisfy it.
type EngineFunc func(k, n int) (core.Reconfigurer, error)

// View is a membership epoch: a version counter and the member count of
// the epoch's topology.
type View struct {
	Version int
	Size    int
}

// ChangeReport describes the dissemination of one view change.
type ChangeReport struct {
	View     View // the view that was installed
	Rounds   int  // flood rounds to reach every alive member
	Messages int  // flood messages
	Applied  int  // alive members that applied the change
	// Churn counts the actual link edits of the delta surgery (exact
	// Added/Removed operation counts, Kept = surviving links).
	Churn overlay.Churn
	// Delta is the net edge surgery of the change, in canonical order.
	Delta graph.EdgeDelta
}

// System is a simulated membership service. Member ids are dense in the
// current topology; crashed members stay in the topology (and keep
// wasting links) until a leave is proposed for them — exactly the window
// the k-connectivity guarantee must cover.
type System struct {
	k       int
	engine  core.Reconfigurer
	view    View
	views   []View // per-member installed view
	crashed []bool
}

// New creates a system of `initial` members on the engine's topology.
func New(k, initial int, engine EngineFunc) (*System, error) {
	if engine == nil {
		return nil, fmt.Errorf("member: nil engine func")
	}
	eng, err := engine(k, initial)
	if err != nil {
		return nil, fmt.Errorf("member: initial topology: %w", err)
	}
	s := &System{
		k:       k,
		engine:  eng,
		view:    View{Version: 0, Size: initial},
		views:   make([]View, initial),
		crashed: make([]bool, initial),
	}
	for i := range s.views {
		s.views[i] = s.view
	}
	return s, nil
}

// Size returns the current topology size (including crashed members not
// yet removed).
func (s *System) Size() int { return s.engine.N() }

// K returns the connectivity target.
func (s *System) K() int { return s.k }

// CurrentView returns the view of the latest installed epoch.
func (s *System) CurrentView() View { return s.view }

// Graph returns the current topology. Frozen graphs are immutable, so the
// caller shares the view without a defensive copy.
func (s *System) Graph() *graph.Graph { return s.engine.Graph() }

// CrashedCount returns how many members are crashed but still wired in.
func (s *System) CrashedCount() int {
	c := 0
	for _, dead := range s.crashed {
		if dead {
			c++
		}
	}
	return c
}

// Crash marks members as failed. They stop participating immediately but
// remain in the topology until repaired away.
func (s *System) Crash(ids ...int) error {
	for _, id := range ids {
		if id < 0 || id >= s.engine.N() {
			return fmt.Errorf("member: unknown member %d", id)
		}
		s.crashed[id] = true
	}
	return nil
}

// aliveSource returns the lowest-id alive member (the sequencer).
func (s *System) aliveSource() (int, error) {
	for id, dead := range s.crashed {
		if !dead {
			return id, nil
		}
	}
	return 0, fmt.Errorf("member: every member has crashed")
}

// disseminate floods a view change from the sequencer over the current
// topology and returns the flood result.
func (s *System) disseminate() (*flood.Result, int, error) {
	src, err := s.aliveSource()
	if err != nil {
		return nil, 0, err
	}
	var dead []int
	for id, d := range s.crashed {
		if d {
			dead = append(dead, id)
		}
	}
	res, err := flood.Run(s.engine.Graph(), src, flood.Failures{Nodes: dead})
	if err != nil {
		return nil, 0, err
	}
	return res, src, nil
}

// deltaChurn converts a net edge delta into the overlay churn accounting:
// exact edit counts, with Kept the links of the new topology that required
// no operation.
func deltaChurn(d graph.EdgeDelta, newSize int) overlay.Churn {
	return overlay.Churn{
		Added:   len(d.Added),
		Removed: len(d.Removed),
		Kept:    newSize - len(d.Added),
	}
}

// ProposeJoin admits one member: the view change floods over the current
// topology, every alive member applies it, and the engine grows the
// topology by one delta surgery. The joiner starts with the new view
// installed.
func (s *System) ProposeJoin() (*ChangeReport, error) {
	res, _, err := s.disseminate()
	if err != nil {
		return nil, err
	}
	if !res.Complete {
		return nil, fmt.Errorf("member: view change failed to reach %d members (connectivity exhausted)",
			res.Alive-res.Reached)
	}
	d, err := s.engine.Grow()
	if err != nil {
		return nil, fmt.Errorf("member: join surgery: %w", err)
	}
	s.view = View{Version: s.view.Version + 1, Size: s.engine.N()}
	for id := range s.views {
		if !s.crashed[id] {
			s.views[id] = s.view
		}
	}
	s.views = append(s.views, s.view)
	s.crashed = append(s.crashed, false)
	return &ChangeReport{
		View: s.view, Rounds: res.Rounds, Messages: res.Messages,
		Applied: res.Reached, Churn: deltaChurn(d, s.engine.Graph().Size()),
		Delta: d,
	}, nil
}

// Repair removes every crashed member in one view change: the change
// floods over the degraded topology (tolerable while crashed <= k-1), the
// engine shrinks by one batched delta surgery — the leaves merged into
// their net O(changed-edges) edit set, no rebuild — and survivors relabel
// densely (alive members holding a departing label take over the freed
// low ids, re-pointing their surviving links without tearing them down).
func (s *System) Repair() (*ChangeReport, error) {
	deadCount := s.CrashedCount()
	if deadCount == 0 {
		return nil, fmt.Errorf("member: nothing to repair")
	}
	newSize := s.engine.N() - deadCount
	if newSize < 2*s.k {
		return nil, fmt.Errorf("member: repair would shrink to %d members, below the minimal 2k=%d",
			newSize, 2*s.k)
	}
	res, _, err := s.disseminate()
	if err != nil {
		return nil, err
	}
	if !res.Complete {
		return nil, fmt.Errorf("member: repair flood failed to reach %d members", res.Alive-res.Reached)
	}
	leaves := make([]core.Change, deadCount)
	for i := range leaves {
		leaves[i] = core.ChangeLeave
	}
	d, err := s.engine.Apply(leaves)
	if err != nil {
		return nil, fmt.Errorf("member: repair surgery: %w", err)
	}
	s.view = View{Version: s.view.Version + 1, Size: newSize}
	views := make([]View, 0, newSize)
	for id := range s.views {
		if !s.crashed[id] {
			views = append(views, s.view)
		}
	}
	s.views = views
	s.crashed = make([]bool, newSize)
	return &ChangeReport{
		View: s.view, Rounds: res.Rounds, Messages: res.Messages,
		Applied: res.Reached, Churn: deltaChurn(d, s.engine.Graph().Size()),
		Delta: d,
	}, nil
}

// Views returns the per-member installed views (crashed members report the
// last view they saw).
func (s *System) Views() []View { return append([]View(nil), s.views...) }

// ConsistentViews reports whether every alive member has installed the
// current view.
func (s *System) ConsistentViews() bool {
	for id, v := range s.views {
		if id < len(s.crashed) && s.crashed[id] {
			continue
		}
		if v != s.view {
			return false
		}
	}
	return true
}

// Broadcast floods an application message over the current (possibly
// degraded) topology from the sequencer; it reports delivery coverage.
func (s *System) Broadcast() (*flood.Result, error) {
	res, _, err := s.disseminate()
	return res, err
}

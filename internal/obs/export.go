package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// TimerSnapshot is a point-in-time copy of a timer.
type TimerSnapshot struct {
	Count   int64   `json:"count"`
	TotalNs int64   `json:"total_ns"`
	Ms      float64 `json:"ms"`
}

// Report is a full snapshot of a registry, the shape the -metrics flag
// dumps as JSON.
type Report struct {
	Timestamp  string                       `json:"timestamp"`
	GoVersion  string                       `json:"go_version"`
	GOMAXPROCS int                          `json:"gomaxprocs"`
	Enabled    bool                         `json:"enabled"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Timers     map[string]TimerSnapshot     `json:"timers"`
}

// timeNow is the clock Snapshot stamps reports with; tests override it to
// pin the dump byte-for-byte.
var timeNow = time.Now

// Snapshot copies every metric of the registry into a Report.
func (r *Registry) Snapshot() Report {
	rep := Report{
		Timestamp:  timeNow().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Enabled:    Enabled(),
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		Timers:     make(map[string]TimerSnapshot),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		rep.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		rep.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		rep.Histograms[name] = h.snapshot()
	}
	for name, t := range r.timers {
		total := t.ns.Load()
		rep.Timers[name] = TimerSnapshot{
			Count:   t.count.Load(),
			TotalNs: total,
			Ms:      float64(total) / 1e6,
		}
	}
	return rep
}

// Snapshot copies the Default registry.
func Snapshot() Report { return Default.Snapshot() }

// Counters returns just the counter values of the Default registry — the
// convenient shape for differential tests.
func Counters() map[string]int64 { return Snapshot().Counters }

// WriteJSON writes the registry snapshot as indented JSON. The dump is
// deterministic for a given metric state: encoding/json emits map keys in
// sorted order, so two snapshots of identical registries differ only in
// the timestamp — and not at all under a pinned clock (see timeNow).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSON writes the Default registry snapshot as indented JSON.
func WriteJSON(w io.Writer) error { return Default.WriteJSON(w) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and timers as counter families, gauges
// as gauges, histograms with cumulative le buckets. Metric names are the
// registry names with dots mapped to underscores under an lhg_ prefix.
func (r *Registry) WritePrometheus(w io.Writer) error {
	rep := r.Snapshot()
	var b strings.Builder
	for _, name := range sortedKeys(rep.Counters) {
		p := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", p, p, rep.Counters[name])
	}
	for _, name := range sortedKeys(rep.Gauges) {
		p := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", p, p, rep.Gauges[name])
	}
	for _, name := range sortedKeys(rep.Timers) {
		t := rep.Timers[name]
		p := promName(name) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s summary\n", p)
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", p, float64(t.TotalNs)/1e9, p, t.Count)
	}
	for _, name := range sortedKeys(rep.Histograms) {
		h := rep.Histograms[name]
		p := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", p)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", p, bound, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", p, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", p, h.Sum, p, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePrometheus renders the Default registry in Prometheus text format.
func WritePrometheus(w io.Writer) error { return Default.WritePrometheus(w) }

// promName maps a registry name to a valid Prometheus metric name under
// the lhg_ prefix: the conventional separators (dots, dashes) become
// underscores and any other character outside [a-zA-Z0-9_:] is replaced
// by an underscore, so a hostile or typo'd registry name can never break
// the exposition format.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("lhg_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var expvarOnce sync.Once

// PublishExpvar exposes the Default registry under the expvar key
// "lhg_metrics", so /debug/vars includes the full snapshot. Safe to call
// more than once (expvar panics on duplicate publication; this does not).
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("lhg_metrics", expvar.Func(func() any { return Snapshot() }))
	})
}

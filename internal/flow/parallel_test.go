package flow

import (
	"testing"

	"lhg/internal/graph"
)

func TestParallelConnectivityMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		g := randomGraph(14, seed)
		wantK := VertexConnectivity(g)
		wantL := EdgeConnectivity(g)
		for _, workers := range []int{2, 8} {
			if got := VertexConnectivityParallel(g, workers); got != wantK {
				t.Fatalf("seed %d workers %d: parallel κ=%d, serial κ=%d", seed, workers, got, wantK)
			}
			if got := EdgeConnectivityParallel(g, workers); got != wantL {
				t.Fatalf("seed %d workers %d: parallel λ=%d, serial λ=%d", seed, workers, got, wantL)
			}
		}
	}
}

func TestParallelConnectivityDegenerate(t *testing.T) {
	if got := VertexConnectivityParallel(graph.New(1), 4); got != 0 {
		t.Fatalf("singleton κ = %d, want 0", got)
	}
	if got := EdgeConnectivityParallel(graph.New(4), 4); got != 0 {
		t.Fatalf("disconnected λ = %d, want 0", got)
	}
	if got := VertexConnectivityParallel(complete(5), 4); got != 4 {
		t.Fatalf("K5 κ = %d, want 4", got)
	}
}

// bruteEdgeIsRemovable recomputes both connectivities on the materialized
// smaller graph — the oracle for the localized two-flow probe.
func bruteEdgeIsRemovable(g *graph.Graph, e graph.Edge, kappa, lambda int) bool {
	h := g.WithoutEdge(e.U, e.V)
	return VertexConnectivity(h) >= kappa && EdgeConnectivity(h) >= lambda
}

func TestEdgeIsRemovableMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		g := randomGraph(9, seed)
		kappa := VertexConnectivity(g)
		lambda := EdgeConnectivity(g)
		if kappa == 0 || lambda == 0 {
			continue
		}
		for _, e := range g.Edges() {
			want := bruteEdgeIsRemovable(g, e, kappa, lambda)
			if got := EdgeIsRemovable(g, e, kappa, lambda); got != want {
				t.Fatalf("seed %d edge %v: EdgeIsRemovable=%t, brute force=%t (κ=%d λ=%d)",
					seed, e, got, want, kappa, lambda)
			}
			// The probe must accept either endpoint order.
			flipped := graph.Edge{U: e.V, V: e.U}
			if got := EdgeIsRemovable(g, flipped, kappa, lambda); got != want {
				t.Fatalf("seed %d edge %v flipped: EdgeIsRemovable=%t, want %t", seed, e, got, want)
			}
		}
	}
}

func TestEdgesRemovableMatchesSingleProbes(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := randomGraph(12, seed)
		kappa := VertexConnectivity(g)
		lambda := EdgeConnectivity(g)
		if kappa == 0 || lambda == 0 {
			continue
		}
		edges := g.Edges()
		want := make([]bool, len(edges))
		for i, e := range edges {
			want[i] = EdgeIsRemovable(g, e, kappa, lambda)
		}
		for _, workers := range []int{1, 8} {
			got := EdgesRemovable(g, edges, kappa, lambda, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d workers %d edge %v: batch=%t, single=%t",
						seed, workers, edges[i], got[i], want[i])
				}
			}
		}
	}
}

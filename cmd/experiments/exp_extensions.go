package main

import (
	"fmt"
	"io"

	"lhg"
	"lhg/internal/check"
	"lhg/internal/flood"
	"lhg/internal/overlay"
	"lhg/internal/sim"
)

// runE15 compares the reconfiguration cost of the two maintenance modes the
// repository supports: canonical rebuild per join (E14) against the
// incremental growers derived from the Theorem 2/5 proofs, whose churn is
// O(k²) regardless of n.
func runE15(w io.Writer) error {
	const (
		k     = 4
		joins = 200
	)
	fmt.Fprintf(w, "k=%d, %d joins from n=%d; churn = links changed per join\n", k, joins, 2*k)
	fmt.Fprintf(w, "%-22s %-12s %-12s %-14s\n", "maintenance", "mean churn", "max churn", "churn at n=200")

	// Rebuild mode (baseline).
	for _, tc := range []struct {
		name string
		c    lhg.Constraint
	}{{"rebuild/ktree", lhg.KTree}, {"rebuild/kdiamond", lhg.KDiamond}} {
		o, err := overlay.New(k, 2*k, topo(tc.c))
		if err != nil {
			return err
		}
		mean, maxC, last, err := churnStats(joins, func() (overlay.Churn, error) { return o.Join() })
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s %-12.1f %-12d %-14d\n", tc.name, mean, maxC, last)
	}
	// Incremental mode (the extension).
	growers := []struct {
		name string
		mk   func() (overlay.Grower, error)
	}{
		{name: "incremental/ktree", mk: func() (overlay.Grower, error) { return lhg.NewKTreeGrower(k) }},
		{name: "incremental/kdiamond", mk: func() (overlay.Grower, error) { return lhg.NewKDiamondGrower(k) }},
	}
	for _, tc := range growers {
		gr, err := tc.mk()
		if err != nil {
			return err
		}
		inc, err := overlay.NewIncremental(gr)
		if err != nil {
			return err
		}
		mean, maxC, last, err := churnStats(joins, func() (overlay.Churn, error) { return inc.Join() })
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s %-12.1f %-12d %-14d\n", tc.name, mean, maxC, last)
		// The grown topology must still be a verified LHG.
		ok, err := check.QuickVerify(gr.Snapshot(), k)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%s: grown topology failed LHG verification", tc.name)
		}
	}
	fmt.Fprintln(w, "shape: rebuild churn grows with n; incremental churn is bounded by O(k²) forever")
	return nil
}

func churnStats(joins int, join func() (overlay.Churn, error)) (mean float64, maxC, last int, err error) {
	total := 0
	for i := 0; i < joins; i++ {
		c, jerr := join()
		if jerr != nil {
			return 0, 0, 0, jerr
		}
		t := c.Total()
		total += t
		if t > maxC {
			maxC = t
		}
		last = t
	}
	return float64(total) / float64(joins), maxC, last, nil
}

// runE16 reproduces the related-work comparison (Lin/Marzullo/Masini,
// DISC 2000; spanning-tree multicast): deterministic flooding on a
// k-connected LHG guarantees delivery for f <= k-1; gossip with fanout < k
// and tree-based dissemination do not, even at f = 0 or f = 1.
func runE16(w io.Writer) error {
	const (
		n      = 64
		k      = 4
		trials = 150
	)
	g, err := lhg.Build(expCtx, lhg.KDiamond, n, k)
	if err != nil {
		return err
	}
	tree := g.BFSTree(0)
	rng := sim.NewRNG(2001)

	fmt.Fprintf(w, "topology base: K-DIAMOND(%d,%d); %d trials per cell; cell = P(full coverage)\n", n, k, trials)
	fmt.Fprintf(w, "%-26s %-8s %-8s %-8s %-8s\n", "protocol", "f=0", "f=1", "f=2", "f=3")

	// Deterministic flood on the LHG.
	if err := reliabilityRow(w, "flood on LHG (k=4)", func(f int) (float64, error) {
		return flood.Reliability(g, 0, f, trials, rng)
	}); err != nil {
		return err
	}
	// Deterministic flood on a spanning tree of the same graph.
	if err := reliabilityRow(w, "flood on spanning tree", func(f int) (float64, error) {
		return flood.Reliability(tree, 0, f, trials, rng)
	}); err != nil {
		return err
	}
	// Gossip with fanout below and at k.
	for _, fanout := range []int{2, 3, 4} {
		name := fmt.Sprintf("gossip fanout=%d on LHG", fanout)
		if err := reliabilityRow(w, name, func(f int) (float64, error) {
			return flood.GossipReliability(g, 0, fanout, f, trials, rng)
		}); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "shape: only deterministic flooding on the k-connected LHG holds 1.000 across f <= k-1;")
	fmt.Fprintln(w, "       trees die with their first interior failure, bounded-fanout gossip is probabilistic")
	return nil
}

func reliabilityRow(w io.Writer, name string, rel func(f int) (float64, error)) error {
	fmt.Fprintf(w, "%-26s", name)
	for f := 0; f <= 3; f++ {
		r, err := rel(f)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, " %-7.3f", r)
	}
	fmt.Fprintln(w)
	return nil
}

// Incremental growth: runs the constructive procedures inside the proofs
// of Theorems 2 and 5 as a live overlay. One node joins per step; the
// grower performs O(k²) edge surgery (independent of the current size) and
// the topology is a valid LHG after every single admission — no rebuild,
// no downtime, stable node ids.
//
//	go run ./examples/incremental-growth
package main

import (
	"context"
	"fmt"
	"log"

	"lhg"
)

func main() {
	const k = 4

	gr, err := lhg.NewKDiamondGrower(k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("growing a K-DIAMOND(%d) overlay from n=%d, one join at a time\n\n", k, gr.N())
	fmt.Printf("%-6s %-8s %-10s %-10s %-10s %-8s\n",
		"n", "edges", "+links", "-links", "regular", "diam")

	maxChurn := 0
	for gr.N() < 120 {
		delta, err := gr.Grow()
		if err != nil {
			log.Fatal(err)
		}
		if delta.Total() > maxChurn {
			maxChurn = delta.Total()
		}
		g := gr.Snapshot()
		n := g.Order()

		// Print the interesting steps: the first few and every regular hit.
		regular := g.IsRegular(k)
		if n <= 12 || regular && n%20 < 2 || n == 120 {
			fmt.Printf("%-6d %-8d %-10d %-10d %-10t %-8d\n",
				n, g.Size(), len(delta.Added), len(delta.Removed), regular, g.Diameter())
		}

		// The theorem grids hold at every step.
		if regular != lhg.Regular(lhg.KDiamond, n, k) {
			log.Fatalf("n=%d: regularity disagrees with Theorem 6", n)
		}
	}

	g := gr.Graph()
	report, err := lhg.Verify(context.Background(), g, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter 112 joins: %v\n", report)
	if !report.IsLHG() {
		log.Fatal("grown topology failed verification")
	}
	fmt.Printf("worst-case churn over the whole run: %d link operations (bounded by O(k²), not n)\n", maxChurn)
}

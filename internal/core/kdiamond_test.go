package core

import (
	"errors"
	"testing"
	"testing/quick"

	"lhg/internal/check"
)

func TestBuildKDiamondRejectsInvalidPairs(t *testing.T) {
	for _, tt := range []struct{ n, k int }{
		{n: 10, k: 2},
		{n: 5, k: 3},
		{n: 0, k: 3},
	} {
		if _, err := BuildKDiamond(tt.n, tt.k); !errors.Is(err, ErrNotConstructible) {
			t.Fatalf("BuildKDiamond(%d,%d) err=%v, want ErrNotConstructible", tt.n, tt.k, err)
		}
	}
}

// TestTheorem5Existence: EX_K-DIAMOND(n,k) iff n >= 2k, and the builder
// agrees on every pair in the sweep.
func TestTheorem5Existence(t *testing.T) {
	for k := 3; k <= 6; k++ {
		for n := k + 1; n <= 12*k; n++ {
			want := n >= 2*k
			if got := ExistsKDiamond(n, k); got != want {
				t.Fatalf("ExistsKDiamond(%d,%d) = %t, want %t", n, k, got, want)
			}
			kd, err := BuildKDiamond(n, k)
			if (err == nil) != want {
				t.Fatalf("BuildKDiamond(%d,%d) err=%v, closed form says %t", n, k, err, want)
			}
			if err != nil {
				continue
			}
			if kd.Real.Graph.Order() != n {
				t.Fatalf("BuildKDiamond(%d,%d) produced %d nodes", n, k, kd.Real.Graph.Order())
			}
			if err := ValidateKDiamond(kd.Blue); err != nil {
				t.Fatalf("blueprint for (%d,%d) violates K-DIAMOND: %v", n, k, err)
			}
		}
	}
}

// TestCorollary1Equivalence: EX_K-TREE(n,k) ⇔ EX_K-DIAMOND(n,k).
func TestCorollary1Equivalence(t *testing.T) {
	for k := 3; k <= 8; k++ {
		for n := 1; n <= 15*k; n++ {
			if ExistsKTree(n, k) != ExistsKDiamond(n, k) {
				t.Fatalf("EX functions disagree at (%d,%d)", n, k)
			}
		}
	}
}

// TestTheorem5GraphsAreLHGs: the constructed K-DIAMOND graphs satisfy all
// four LHG properties (the content of Theorem 4).
func TestTheorem5GraphsAreLHGs(t *testing.T) {
	for k := 3; k <= 5; k++ {
		for n := 2 * k; n <= 8*k; n++ {
			kd, err := BuildKDiamond(n, k)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := check.QuickVerify(kd.Real.Graph, k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				r, _ := check.Verify(kd.Real.Graph, k)
				t.Fatalf("K-DIAMOND(%d,%d) is not an LHG: %s", n, k, r)
			}
		}
	}
}

// TestTheorem6Regularity: REG_K-DIAMOND(n,k) iff n = 2k + α(k-1), and the
// built graph is k-regular exactly then.
func TestTheorem6Regularity(t *testing.T) {
	for k := 3; k <= 6; k++ {
		for n := 2 * k; n <= 12*k; n++ {
			want := (n-2*k)%(k-1) == 0
			if got := RegularKDiamond(n, k); got != want {
				t.Fatalf("RegularKDiamond(%d,%d) = %t, want %t", n, k, got, want)
			}
			kd, err := BuildKDiamond(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if got := kd.Real.Graph.IsRegular(k); got != want {
				t.Fatalf("K-DIAMOND(%d,%d) regular=%t, Theorem 6 says %t", n, k, got, want)
			}
		}
	}
}

// TestCorollary2Implication: REG_K-TREE(n,k) ⇒ REG_K-DIAMOND(n,k).
func TestCorollary2Implication(t *testing.T) {
	for k := 3; k <= 8; k++ {
		for n := 2 * k; n <= 20*k; n++ {
			if RegularKTree(n, k) && !RegularKDiamond(n, k) {
				t.Fatalf("REG_K-TREE true but REG_K-DIAMOND false at (%d,%d)", n, k)
			}
		}
	}
}

// TestTheorem7OddAlphaPairs: for every odd α, n = 2k + α(k-1) is k-regular
// under K-DIAMOND but NOT under K-TREE — the infinite family of Theorem 7 —
// and the built graphs witness it.
func TestTheorem7OddAlphaPairs(t *testing.T) {
	for k := 3; k <= 5; k++ {
		for alpha := 1; alpha <= 9; alpha += 2 {
			n := 2*k + alpha*(k-1)
			if !RegularKDiamond(n, k) {
				t.Fatalf("REG_K-DIAMOND(%d,%d) = false, want true (odd α=%d)", n, k, alpha)
			}
			if RegularKTree(n, k) {
				t.Fatalf("REG_K-TREE(%d,%d) = true, want false (odd α=%d)", n, k, alpha)
			}
			kd, err := BuildKDiamond(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if !kd.Real.Graph.IsRegular(k) {
				t.Fatalf("K-DIAMOND(%d,%d) witness is not k-regular", n, k)
			}
			kt, err := BuildKTree(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if kt.Real.Graph.IsRegular(k) {
				t.Fatalf("K-TREE(%d,%d) is unexpectedly regular", n, k)
			}
		}
	}
}

// TestKDiamondRegularDensity: in any window, K-DIAMOND admits about twice
// as many k-regular sizes as K-TREE (the practical payoff of Theorem 7).
func TestKDiamondRegularDensity(t *testing.T) {
	k := 4
	lo, hi := 2*k, 2*k+40*(k-1)
	ktreeCount, kdiamondCount := 0, 0
	for n := lo; n <= hi; n++ {
		if RegularKTree(n, k) {
			ktreeCount++
		}
		if RegularKDiamond(n, k) {
			kdiamondCount++
		}
	}
	if kdiamondCount != 2*ktreeCount-1 { // off by one from window alignment
		t.Fatalf("regular density: ktree=%d kdiamond=%d, want kdiamond = 2*ktree-1",
			ktreeCount, kdiamondCount)
	}
}

func TestKDiamondDecompositionFields(t *testing.T) {
	tests := []struct {
		n, k, alpha, j, unshared int
	}{
		{n: 6, k: 3, alpha: 0, j: 0, unshared: 0},
		{n: 7, k: 3, alpha: 0, j: 1, unshared: 0},
		{n: 8, k: 3, alpha: 1, j: 0, unshared: 1},
		{n: 13, k: 3, alpha: 3, j: 1, unshared: 1},
		{n: 14, k: 3, alpha: 4, j: 0, unshared: 0},
	}
	for _, tt := range tests {
		kd, err := BuildKDiamond(tt.n, tt.k)
		if err != nil {
			t.Fatal(err)
		}
		if kd.Alpha != tt.alpha || kd.J != tt.j || kd.Unshared != tt.unshared {
			t.Fatalf("BuildKDiamond(%d,%d): α=%d j=%d u=%d, want α=%d j=%d u=%d",
				tt.n, tt.k, kd.Alpha, kd.J, kd.Unshared, tt.alpha, tt.j, tt.unshared)
		}
	}
}

// TestKDiamondUnsharedCliqueStructure: clique members form K_k minus
// nothing, each with exactly one tree edge (rules 4a/4b).
func TestKDiamondUnsharedCliqueStructure(t *testing.T) {
	kd, err := BuildKDiamond(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for p, kind := range kd.Blue.Kind {
		if kind != UnsharedLeaf {
			continue
		}
		found = true
		members := kd.Real.GroupNode[p]
		if len(members) != 3 {
			t.Fatalf("unshared group has %d members, want k=3", len(members))
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if !kd.Real.Graph.HasEdge(members[i], members[j]) {
					t.Fatalf("clique edge (%d,%d) missing", members[i], members[j])
				}
			}
			// Degree k: k-1 clique edges + exactly 1 tree edge.
			if d := kd.Real.Graph.Degree(members[i]); d != 3 {
				t.Fatalf("clique member %d has degree %d, want 3", members[i], d)
			}
		}
	}
	if !found {
		t.Fatal("K-DIAMOND(8,3) must contain an unshared leaf")
	}
}

// TestKDiamondDegreeRanges: Lemma 6 case analysis bounds degrees by
// [k, 2k-2] for the K-DIAMOND family.
func TestKDiamondDegreeRanges(t *testing.T) {
	for k := 3; k <= 6; k++ {
		for n := 2 * k; n <= 10*k; n += 3 {
			kd, err := BuildKDiamond(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for v, d := range kd.Real.Graph.Degrees() {
				if d < k || d > 2*k-2 {
					t.Fatalf("K-DIAMOND(%d,%d) node %v degree %d outside [k, 2k-2]", n, k, v, d)
				}
			}
		}
	}
}

func TestKDiamondLogDiameter(t *testing.T) {
	k := 4
	for _, n := range []int{8, 20, 41, 83, 170, 341} {
		kd, err := BuildKDiamond(n, k)
		if err != nil {
			t.Fatal(err)
		}
		diam := kd.Real.Graph.Diameter()
		if bound := check.DiameterBound(n, k); diam > bound {
			t.Fatalf("K-DIAMOND(%d,%d) diameter %d exceeds bound %d", n, k, diam, bound)
		}
	}
}

func TestPropertyKDiamondAlwaysVerifies(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		k := int(kRaw%4) + 3
		n := 2*k + int(nRaw)%60
		kd, err := BuildKDiamond(n, k)
		if err != nil {
			return false
		}
		if kd.Real.Graph.Order() != n {
			return false
		}
		if ValidateKDiamond(kd.Blue) != nil {
			return false
		}
		ok, err := check.QuickVerify(kd.Real.Graph, k)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRegularCoverageTheorem7 is the quick-check form of
// Theorem 7: RegularKDiamond holds on exactly the α-grid, RegularKTree on
// exactly the even-α subgrid.
func TestPropertyRegularCoverageTheorem7(t *testing.T) {
	f := func(aRaw, kRaw uint8) bool {
		k := int(kRaw%6) + 3
		alpha := int(aRaw % 30)
		n := 2*k + alpha*(k-1)
		if !RegularKDiamond(n, k) {
			return false
		}
		return RegularKTree(n, k) == (alpha%2 == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package shard maps the (constraint, n, k, seed, props) request-key space
// across a fleet of lhgd backends with a consistent-hash ring: each backend
// owns many virtual nodes placed by a seeded hash, so keys spread evenly,
// and removing (or losing) one backend remaps only that backend's arcs —
// every other key keeps its home, which is what keeps a shared report store
// warm through membership churn.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultReplicas is the virtual-node count per backend. 128 points keep
// the expected per-backend load within a few percent of uniform for the
// fleet sizes lhgd targets (single digits to low tens of backends).
const DefaultReplicas = 128

// point is one virtual node on the ring.
type point struct {
	hash    uint64
	backend string
}

// Ring is a consistent-hash ring over named backends with per-backend
// health. Lookup skips unhealthy backends, so routing and failover are the
// same walk. Safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	seed     uint64
	points   []point // sorted by hash
	healthy  map[string]bool
	backends []string // stable insertion-order copy for enumeration
}

// hash64 folds the first 8 bytes of SHA-256(seed || s): the placement is
// deterministic across processes and Go versions, which every frontend of a
// fleet depends on — they must all agree where a key lives.
func (r *Ring) hash64(s string) uint64 {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], r.seed)
	sum := sha256.Sum256(append(seed[:], s...))
	return binary.BigEndian.Uint64(sum[:8])
}

// Option configures a Ring.
type Option func(*Ring)

// WithReplicas sets the virtual-node count per backend.
func WithReplicas(n int) Option {
	return func(r *Ring) {
		if n > 0 {
			r.replicas = n
		}
	}
}

// WithSeed offsets every placement hash; fleets that must not share key
// assignments (say, a staging ring on the same boxes) use distinct seeds.
func WithSeed(seed uint64) Option {
	return func(r *Ring) { r.seed = seed }
}

// New builds a ring over backends (deduplicated, all initially healthy).
func New(backends []string, opts ...Option) (*Ring, error) {
	r := &Ring{replicas: DefaultReplicas, healthy: make(map[string]bool)}
	for _, o := range opts {
		o(r)
	}
	for _, b := range backends {
		if b == "" {
			return nil, fmt.Errorf("shard: empty backend name")
		}
		if r.healthy[b] {
			continue
		}
		r.healthy[b] = true
		r.backends = append(r.backends, b)
		for i := 0; i < r.replicas; i++ {
			r.points = append(r.points, point{r.hash64(fmt.Sprintf("%s#%d", b, i)), b})
		}
	}
	if len(r.backends) == 0 {
		return nil, fmt.Errorf("shard: need at least one backend")
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r, nil
}

// Backends returns every ring member in insertion order.
func (r *Ring) Backends() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.backends...)
}

// SetHealthy marks one backend up or down. Unknown names are ignored.
func (r *Ring) SetHealthy(backend string, up bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.healthy[backend]; known {
		r.healthy[backend] = up
	}
}

// Healthy reports whether backend is currently marked up.
func (r *Ring) Healthy(backend string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.healthy[backend]
}

// Lookup returns key's home: the first healthy backend at or after the
// key's point on the ring. ok is false when every backend is down.
func (r *Ring) Lookup(key string) (string, bool) {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return "", false
	}
	return seq[0], true
}

// Sequence returns every HEALTHY backend in the key's preference order:
// the walk clockwise from the key's point, each backend listed at its first
// virtual node. Element 0 is the key's home; the rest are the failover
// order a frontend retries in when the home dies mid-request.
func (r *Ring) Sequence(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	h := r.hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seq := make([]string, 0, len(r.backends))
	seen := make(map[string]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(seq) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.backend] {
			continue
		}
		seen[p.backend] = true
		if r.healthy[p.backend] {
			seq = append(seq, p.backend)
		}
	}
	return seq
}

package overlay

import (
	"testing"

	"lhg/internal/core"
)

// TestIncrementalLeaveChurn: a leave undoes the last join edit for edit, so
// its churn mirrors the join's with added/removed swapped.
func TestIncrementalLeaveChurn(t *testing.T) {
	gr, err := core.NewKTreeGrowerAt(3, 20)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewIncremental(gr)
	if err != nil {
		t.Fatal(err)
	}
	join, err := o.Join()
	if err != nil {
		t.Fatal(err)
	}
	leave, err := o.Leave()
	if err != nil {
		t.Fatal(err)
	}
	if leave.Added != join.Removed || leave.Removed != join.Added {
		t.Fatalf("leave churn %+v does not invert join churn %+v", leave, join)
	}
	if o.Size() != 20 || o.Generation() != 2 {
		t.Fatalf("size=%d gen=%d after join+leave", o.Size(), o.Generation())
	}
}

// TestIncrementalApplyNetChurn: a batch reports the net edit counts — a
// join+leave round trip nets to zero operations.
func TestIncrementalApplyNetChurn(t *testing.T) {
	gr, err := core.NewKDiamondGrowerAt(4, 30)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewIncremental(gr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := o.Apply([]core.Change{core.ChangeJoin, core.ChangeLeave})
	if err != nil {
		t.Fatal(err)
	}
	if c.Added != 0 || c.Removed != 0 {
		t.Fatalf("round-trip batch churn %+v, want net zero", c)
	}
	c, err = o.Apply([]core.Change{core.ChangeJoin, core.ChangeJoin, core.ChangeLeave})
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() == 0 || o.Size() != 31 {
		t.Fatalf("net-growth batch churn %+v size %d", c, o.Size())
	}
	// Leaves at the floor fail and report the completed prefix.
	floor, err := core.NewKTreeGrower(3)
	if err != nil {
		t.Fatal(err)
	}
	of, err := NewIncremental(floor)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := of.Apply([]core.Change{core.ChangeLeave}); err == nil {
		t.Fatal("leave at the 2k floor must fail")
	}
}

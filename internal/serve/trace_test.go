package serve

import (
	"bytes"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lhg/internal/obs/trace"
)

// TestTracedResponseCarriesIDs: every response minted under tracing
// carries X-Trace-Id plus a Traceparent naming the server-side span, and
// the recorder holds the full request tree — http root, serve.campaign,
// lhg.Verify and the check phases — under that one trace id.
func TestTracedResponseCarriesIDs(t *testing.T) {
	trace.DefaultRecorder.Reset()
	ts := newTestServer(t, Options{CacheSize: 16})
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json",
		bytes.NewBufferString(`{"constraint":"kdiamond","n":57,"k":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if len(traceID) != 32 {
		t.Fatalf("X-Trace-Id %q, want 32 hex chars", traceID)
	}
	tp := resp.Header.Get("Traceparent")
	tid, _, ok := trace.ParseTraceparent(tp)
	if !ok || tid.String() != traceID {
		t.Fatalf("Traceparent %q does not match X-Trace-Id %q", tp, traceID)
	}

	raw, err := hex.DecodeString(traceID)
	if err != nil {
		t.Fatal(err)
	}
	var id trace.TraceID
	copy(id[:], raw)
	recs := trace.DefaultRecorder.TraceRecords(id)
	names := make(map[string]bool, len(recs))
	var rootNs, phaseNs int64
	for _, r := range recs {
		names[r.Name] = true
		switch {
		case strings.HasPrefix(r.Name, "http "):
			rootNs = int64(r.Dur)
		case strings.HasPrefix(r.Name, "check."):
			phaseNs += int64(r.Dur)
		}
	}
	for _, want := range []string{"http /v1/verify", "serve.campaign", "lhg.Verify", "check.kappa", "check.lambda"} {
		if !names[want] {
			t.Fatalf("trace %s missing span %q; have %v", traceID, want, names)
		}
	}
	// The phase spans live inside the request: their summed wall time can
	// never exceed the root's (tolerance absorbs clock granularity).
	if rootNs == 0 {
		t.Fatal("http root span has zero duration")
	}
	if phaseNs > rootNs+rootNs/20 {
		t.Fatalf("check phases sum to %dns, more than the %dns request", phaseNs, rootNs)
	}
}

// TestTracedJoinsCallerTrace: a request with a W3C traceparent header
// continues the caller's trace instead of minting a fresh id.
func TestTracedJoinsCallerTrace(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/build",
		bytes.NewBufferString(`{"constraint":"kdiamond","n":20,"k":3}`))
	req.Header.Set("traceparent", "00-"+callerTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != callerTrace {
		t.Fatalf("X-Trace-Id %q, want caller trace %q", got, callerTrace)
	}
	// The response traceparent names a server-side span, not the caller's.
	tid, sid, ok := trace.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok || tid.String() != callerTrace {
		t.Fatalf("response traceparent %q not in caller trace", resp.Header.Get("Traceparent"))
	}
	if sid.String() == "00f067aa0ba902b7" {
		t.Fatal("response span id echoes the caller's span")
	}
}

// TestDebugTraceEndpoint: the flight recorder export serves the Chrome
// trace_event JSON for one trace id.
func TestDebugTraceEndpoint(t *testing.T) {
	trace.DefaultRecorder.Reset()
	ts := newTestServer(t, Options{CacheSize: 16})
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json",
		bytes.NewBufferString(`{"constraint":"kdiamond","n":59,"k":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-Id")

	req := httptest.NewRequest(http.MethodGet, "/debug/trace?trace="+traceID, nil)
	rec := httptest.NewRecorder()
	trace.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"check.kappa", "serve.campaign", `"ph":"X"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/trace export missing %q", want)
		}
	}
}

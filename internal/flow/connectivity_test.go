package flow

import (
	"testing"
	"testing/quick"

	"lhg/internal/graph"
)

// --- fixture builders -------------------------------------------------

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(v, (v+1)%n)
	}
	return b.Freeze()
}

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.MustAddEdge(v, v+1)
	}
	return b.Freeze()
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.Freeze()
}

// completeBipartite returns K_{a,b} with the left part 0..a-1.
func completeBipartite(a, b int) *graph.Graph {
	bld := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bld.MustAddEdge(u, v)
		}
	}
	return bld.Freeze()
}

// twoTriangles returns two triangles joined by a single bridge edge.
func twoTriangles() *graph.Graph {
	return graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
		{U: 2, V: 3}, // bridge
	})
}

func randomGraph(n int, seed uint64) *graph.Graph {
	b := graph.NewBuilder(n)
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if next()%2 == 0 {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Freeze()
}

// --- brute-force oracles ----------------------------------------------

// bruteVertexConnectivity removes every node subset of size < n-1 and
// returns the size of the smallest disconnecting one (n-1 for complete-like
// graphs, matching the convention).
func bruteVertexConnectivity(g *graph.Graph) int {
	n := g.Order()
	if n < 2 {
		return 0
	}
	if !g.Connected() {
		return 0
	}
	for size := 1; size <= n-2; size++ {
		if subsetDisconnects(g, size) {
			return size
		}
	}
	return n - 1
}

func subsetDisconnects(g *graph.Graph, size int) bool {
	n := g.Order()
	removed := make([]bool, n)
	var rec func(start, left int) bool
	rec = func(start, left int) bool {
		if left == 0 {
			return !g.ConnectedIgnoring(removed)
		}
		for v := start; v <= n-left; v++ {
			removed[v] = true
			if rec(v+1, left-1) {
				removed[v] = false
				return true
			}
			removed[v] = false
		}
		return false
	}
	return rec(0, size)
}

// bruteEdgeConnectivity removes every edge subset of increasing size.
func bruteEdgeConnectivity(g *graph.Graph) int {
	if g.Order() < 2 || !g.Connected() {
		return 0
	}
	edges := g.Edges()
	for size := 1; size <= len(edges); size++ {
		if edgeSubsetDisconnects(g, edges, size) {
			return size
		}
	}
	return len(edges)
}

func edgeSubsetDisconnects(g *graph.Graph, edges []graph.Edge, size int) bool {
	var rec func(b *graph.Builder, start, left int) bool
	rec = func(b *graph.Builder, start, left int) bool {
		if left == 0 {
			return !b.Freeze().Connected()
		}
		for i := start; i <= len(edges)-left; i++ {
			b.RemoveEdge(edges[i].U, edges[i].V)
			if rec(b, i+1, left-1) {
				b.MustAddEdge(edges[i].U, edges[i].V)
				return true
			}
			b.MustAddEdge(edges[i].U, edges[i].V)
		}
		return false
	}
	return rec(g.Thaw(), 0, size)
}

// --- tests --------------------------------------------------------------

func TestVertexConnectivityKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{name: "path", g: path(6), want: 1},
		{name: "cycle", g: cycle(6), want: 2},
		{name: "K5", g: complete(5), want: 4},
		{name: "K33", g: completeBipartite(3, 3), want: 3},
		{name: "K24", g: completeBipartite(2, 4), want: 2},
		{name: "two triangles", g: twoTriangles(), want: 1},
		{name: "disconnected", g: graph.New(4), want: 0},
		{name: "single node", g: graph.New(1), want: 0},
		{name: "K2", g: complete(2), want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := VertexConnectivity(tt.g); got != tt.want {
				t.Fatalf("VertexConnectivity = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestEdgeConnectivityKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{name: "path", g: path(6), want: 1},
		{name: "cycle", g: cycle(6), want: 2},
		{name: "K5", g: complete(5), want: 4},
		{name: "K33", g: completeBipartite(3, 3), want: 3},
		{name: "two triangles", g: twoTriangles(), want: 1},
		{name: "disconnected", g: graph.New(4), want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EdgeConnectivity(tt.g); got != tt.want {
				t.Fatalf("EdgeConnectivity = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestIsKConnectedThresholds(t *testing.T) {
	g := completeBipartite(3, 5) // κ = λ = 3
	for k := 0; k <= 3; k++ {
		if !IsKNodeConnected(g, k) {
			t.Fatalf("IsKNodeConnected(K35, %d) = false", k)
		}
		if !IsKEdgeConnected(g, k) {
			t.Fatalf("IsKEdgeConnected(K35, %d) = false", k)
		}
	}
	if IsKNodeConnected(g, 4) {
		t.Fatal("IsKNodeConnected(K35, 4) = true")
	}
	if IsKEdgeConnected(g, 4) {
		t.Fatal("IsKEdgeConnected(K35, 4) = true")
	}
}

func TestIsKNodeConnectedSmallN(t *testing.T) {
	if IsKNodeConnected(complete(3), 3) {
		t.Fatal("K3 cannot be 3-node-connected (needs n >= k+1)")
	}
	if !IsKNodeConnected(complete(4), 3) {
		t.Fatal("K4 is 3-node-connected")
	}
}

func TestEdgeCut(t *testing.T) {
	g := twoTriangles()
	cut, err := EdgeCut(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Fatalf("EdgeCut across bridge = %d, want 1", cut)
	}
	cut, err = EdgeCut(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 2 {
		t.Fatalf("EdgeCut inside triangle = %d, want 2", cut)
	}
}

func TestVertexCutErrors(t *testing.T) {
	g := cycle(5)
	if _, err := VertexCut(g, 0, 1); err == nil {
		t.Fatal("VertexCut of adjacent nodes must error")
	}
	if _, err := VertexCut(g, 0, 0); err == nil {
		t.Fatal("VertexCut of identical nodes must error")
	}
	if _, err := VertexCut(g, -1, 2); err == nil {
		t.Fatal("VertexCut out of range must error")
	}
}

func TestMinVertexCutSet(t *testing.T) {
	g := twoTriangles()
	cut, err := MinVertexCutSet(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) != 1 {
		t.Fatalf("cut = %v, want a single articulation node", cut)
	}
	if cut[0] != 2 && cut[0] != 3 {
		t.Fatalf("cut = %v, want node 2 or 3", cut)
	}
	// Removing the cut must actually disconnect 0 from 5.
	removed := make([]bool, g.Order())
	for _, v := range cut {
		removed[v] = true
	}
	if g.ConnectedIgnoring(removed) {
		t.Fatal("returned cut does not disconnect the graph")
	}
}

func TestVertexDisjointPathsCycle(t *testing.T) {
	g := cycle(8)
	paths, err := VertexDisjointPaths(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertDisjointPaths(t, g, paths, 0, 4, 2)
}

func TestVertexDisjointPathsComplete(t *testing.T) {
	g := complete(5)
	paths, err := VertexDisjointPaths(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertDisjointPaths(t, g, paths, 0, 4, 4)
}

func TestVertexDisjointPathsAdjacent(t *testing.T) {
	g := cycle(5)
	paths, err := VertexDisjointPaths(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertDisjointPaths(t, g, paths, 0, 1, 2)
	// One of the two paths must be the direct edge.
	direct := false
	for _, p := range paths {
		if len(p) == 2 {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("paths %v miss the direct edge", paths)
	}
}

// assertDisjointPaths checks count, endpoints, edge validity, and internal
// disjointness.
func assertDisjointPaths(t *testing.T, g *graph.Graph, paths [][]int, s, tt, want int) {
	t.Helper()
	if len(paths) != want {
		t.Fatalf("got %d paths, want %d: %v", len(paths), want, paths)
	}
	seen := make(map[int]bool)
	for _, p := range paths {
		if p[0] != s || p[len(p)-1] != tt {
			t.Fatalf("path %v must run %d..%d", p, s, tt)
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				t.Fatalf("path %v uses missing edge (%d,%d)", p, p[i], p[i+1])
			}
		}
		for _, v := range p[1 : len(p)-1] {
			if seen[v] {
				t.Fatalf("internal node %d reused across paths %v", v, paths)
			}
			seen[v] = true
		}
	}
}

func TestPropertyConnectivityMatchesBruteForce(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%6) + 2 // brute force is exponential; stay tiny
		g := randomGraph(n, uint64(seed))
		if VertexConnectivity(g) != bruteVertexConnectivity(g) {
			return false
		}
		return EdgeConnectivity(g) == bruteEdgeConnectivity(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMengerDisjointPathsEqualCut(t *testing.T) {
	// Menger: the number of vertex-disjoint paths equals the minimum vertex
	// cut for non-adjacent pairs.
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 4
		g := randomGraph(n, uint64(seed))
		for s := 0; s < n; s++ {
			for t2 := s + 1; t2 < n; t2++ {
				if g.HasEdge(s, t2) {
					continue
				}
				paths, err := VertexDisjointPaths(g, s, t2)
				if err != nil {
					return false
				}
				cut, err := VertexCut(g, s, t2)
				if err != nil {
					return false
				}
				if len(paths) != cut {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCutSetDisconnects(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 4
		g := randomGraph(n, uint64(seed))
		for s := 0; s < n; s++ {
			for t2 := s + 1; t2 < n; t2++ {
				if g.HasEdge(s, t2) {
					continue
				}
				want, err := VertexCut(g, s, t2)
				if err != nil {
					return false
				}
				cut, err := MinVertexCutSet(g, s, t2)
				if err != nil || len(cut) != want {
					return false
				}
				removed := make([]bool, n)
				for _, v := range cut {
					if v == s || v == t2 {
						return false // terminals may not be in the cut
					}
					removed[v] = true
				}
				// s and t2 must end up in different components.
				if reachableAvoiding(g, s, t2, removed) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func reachableAvoiding(g *graph.Graph, s, t int, removed []bool) bool {
	seen := make([]bool, g.Order())
	seen[s] = true
	stack := []int{s}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == t {
			return true
		}
		for _, v := range g.Neighbors(u) {
			if !seen[v] && !removed[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

func TestPropertyEarlyExitAgreesWithExact(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 3
		g := randomGraph(n, uint64(seed))
		kappa := VertexConnectivity(g)
		lambda := EdgeConnectivity(g)
		for k := 0; k <= n; k++ {
			if IsKNodeConnected(g, k) != (kappa >= k) {
				return false
			}
			if IsKEdgeConnected(g, k) != (lambda >= k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

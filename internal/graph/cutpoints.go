package graph

// Tarjan-style DFS low-link computation of articulation points and
// bridges. These are the κ=1 and λ=1 witnesses: a connected graph is
// 2-node-connected iff it has no articulation point, and 2-link-connected
// iff it has no bridge. They serve as fast single-failure-vulnerability
// scanners and as independent cross-checks of the max-flow connectivity
// machinery (a graph with a bridge must report λ = 1).

// ArticulationPoints returns the nodes whose removal increases the number
// of connected components, in ascending order.
func (g *Graph) ArticulationPoints() []int {
	n := g.Order()
	state := newLowlink(n)
	for root := 0; root < n; root++ {
		if state.disc[root] == 0 {
			state.run(g, root)
		}
	}
	var out []int
	for v := 0; v < n; v++ {
		if state.isCut[v] {
			out = append(out, v)
		}
	}
	return out
}

// Bridges returns the edges whose removal disconnects their endpoints, in
// canonical (U<V, sorted) order.
func (g *Graph) Bridges() []Edge {
	n := g.Order()
	state := newLowlink(n)
	for root := 0; root < n; root++ {
		if state.disc[root] == 0 {
			state.run(g, root)
		}
	}
	out := state.bridges
	sortEdges(out)
	return out
}

// lowlink carries the shared DFS state. The traversal is iterative (an
// explicit stack) so deep graphs cannot overflow the goroutine stack.
type lowlink struct {
	disc    []int
	low     []int
	parent  []int
	isCut   []bool
	bridges []Edge
	time    int
}

func newLowlink(n int) *lowlink {
	return &lowlink{
		disc:   make([]int, n),
		low:    make([]int, n),
		parent: make([]int, n),
		isCut:  make([]bool, n),
	}
}

// frame is one DFS stack entry: node v and the index of the next neighbor
// to visit.
type frame struct {
	v, next int
}

func (s *lowlink) run(g *Graph, root int) {
	s.parent[root] = -1
	s.time++
	s.disc[root] = s.time
	s.low[root] = s.time
	stack := []frame{{v: root}}
	rootChildren := 0
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		v := top.v
		row := g.row(v)
		if top.next < len(row) {
			w := int(row[top.next])
			top.next++
			switch {
			case s.disc[w] == 0:
				s.parent[w] = v
				if v == root {
					rootChildren++
				}
				s.time++
				s.disc[w] = s.time
				s.low[w] = s.time
				stack = append(stack, frame{v: w})
			case w != s.parent[v] && s.disc[w] < s.low[v]:
				s.low[v] = s.disc[w]
			}
			continue
		}
		// Post-order: fold v's low into its parent and classify.
		stack = stack[:len(stack)-1]
		p := s.parent[v]
		if p < 0 {
			continue
		}
		if s.low[v] < s.low[p] {
			s.low[p] = s.low[v]
		}
		if s.low[v] > s.disc[p] {
			s.bridges = append(s.bridges, edgeOf(p, v))
		}
		if p != root && s.low[v] >= s.disc[p] {
			s.isCut[p] = true
		}
	}
	if rootChildren > 1 {
		s.isCut[root] = true
	}
}

func edgeOf(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

func sortEdges(es []Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0; j-- {
			a, b := es[j-1], es[j]
			if a.U < b.U || (a.U == b.U && a.V <= b.V) {
				break
			}
			es[j-1], es[j] = b, a
		}
	}
}

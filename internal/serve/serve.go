package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lhg"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
	"lhg/internal/shard"
	"lhg/internal/store"
)

// Service telemetry, one family per endpoint plus the shared cache and
// singleflight counters. Latency histograms are bucketed in microseconds so
// the sub-millisecond cache-hit path is visible; timers accumulate totals
// for the JSON report.
var (
	mReqBuild  = obs.NewCounter("serve.build.requests")
	mReqVerify = obs.NewCounter("serve.verify.requests")
	mReqFlood  = obs.NewCounter("serve.flood.requests")
	mReqConstr = obs.NewCounter("serve.constraints.requests")

	mErrBuild  = obs.NewCounter("serve.build.errors")
	mErrVerify = obs.NewCounter("serve.verify.errors")
	mErrFlood  = obs.NewCounter("serve.flood.errors")

	mHitBuild   = obs.NewCounter("serve.build.cache.hits")
	mMissBuild  = obs.NewCounter("serve.build.cache.misses")
	mHitVerify  = obs.NewCounter("serve.verify.cache.hits")
	mMissVerify = obs.NewCounter("serve.verify.cache.misses")
	mHitFlood   = obs.NewCounter("serve.flood.cache.hits")
	mMissFlood  = obs.NewCounter("serve.flood.cache.misses")

	mCoalesced = obs.NewCounter("serve.flight.coalesced")
	gInflight  = obs.NewGauge("serve.inflight")

	latencyBounds = []int64{100, 250, 500, 1000, 2500, 5000, 10000, 50000, 250000, 1000000}
	hLatBuild     = obs.NewHistogram("serve.build.latency_us", latencyBounds...)
	hLatVerify    = obs.NewHistogram("serve.verify.latency_us", latencyBounds...)
	hLatFlood     = obs.NewHistogram("serve.flood.latency_us", latencyBounds...)
	tBuild        = obs.NewTimer("serve.build.time")
	tVerify       = obs.NewTimer("serve.verify.time")
	tFlood        = obs.NewTimer("serve.flood.time")
)

// endpoint bundles the per-endpoint metric handles.
type endpoint struct {
	requests, errors *obs.Counter
	hits, misses     *obs.Counter
	latency          *obs.Histogram
	timer            *obs.Timer
}

var (
	epBuild  = endpoint{mReqBuild, mErrBuild, mHitBuild, mMissBuild, hLatBuild, tBuild}
	epVerify = endpoint{mReqVerify, mErrVerify, mHitVerify, mMissVerify, hLatVerify, tVerify}
	epFlood  = endpoint{mReqFlood, mErrFlood, mHitFlood, mMissFlood, hLatFlood, tFlood}
)

// Options configures a Server. The zero value is usable: background base
// context, a 256-entry cache, no timeout, all cores per campaign, no
// persistence, no sharding.
type Options struct {
	// BaseContext outlives any single request; its cancellation (daemon
	// shutdown) aborts every in-flight computation. nil means Background.
	BaseContext context.Context
	// CacheSize is the LRU capacity in entries (graphs, reports and flood
	// results share one cache). 0 disables caching; negative means the
	// 256-entry default.
	CacheSize int
	// Workers is the per-campaign goroutine budget (0 = all cores). A
	// request may lower it but never raise it above this ceiling.
	Workers int
	// Timeout bounds each computation; exceeding it maps to HTTP 504.
	// Zero means no limit beyond the request's own context.
	Timeout time.Duration
	// DisableSparsify turns off the sparse-certificate verify fast path
	// (lhg.WithSparsify). Reports are bit-identical either way, so cache
	// keys do not depend on it — it is an operational escape hatch only.
	DisableSparsify bool
	// MaxSessions caps the live /v1/reconfigure topology sessions.
	// 0 means the 1024 default; negative disables the endpoint's sessions.
	MaxSessions int
	// Logger receives the structured access and campaign log. nil
	// discards (the zero-config default); pass obs.NewLogger to wire it.
	Logger *slog.Logger
	// StreamHeartbeat is the idle keep-alive period of the SSE streams
	// (GET /v1/verify?stream, GET /v1/reconfigure?stream). 0 means 15s.
	StreamHeartbeat time.Duration
	// Store is the persistent content-addressed report store. When set,
	// the LRU becomes a read-through layer above it: verify, flood and
	// budget results are written atomically under the data dir, replayed
	// warm after restarts, and shared by every process opened on the same
	// directory — with the store-level lease extending the singleflight
	// guarantee fleet-wide.
	Store *store.Store
	// LeaseTTL bounds how long a crashed flight leader can block a store
	// key before another process takes over. 0 means the store default.
	LeaseTTL time.Duration
	// Shards switches the server into frontend proxy mode: instead of
	// computing, it routes every keyed request across these backend
	// addresses (host:port) on a consistent-hash ring, with health probes
	// and retry-on-backend-death. The (constraint,n,k,seed,props) key
	// space is stable across frontends, so any number of them can front
	// one fleet.
	Shards []string
	// ShardReplicas is the virtual-node count per backend (0 = default).
	ShardReplicas int
	// ProbeInterval is the backend health-probe period (0 = 1s).
	ProbeInterval time.Duration
}

// Server is the HTTP service: the /v1 endpoints, one LRU cache above an
// optional persistent store, one singleflight group. In shard-frontend
// mode it routes instead of computing. It is safe for concurrent use.
type Server struct {
	base     context.Context
	workers  int
	timeout  time.Duration
	sparsify bool
	cache    *lruCache
	flights  *flightGroup
	mux      *http.ServeMux
	inflight atomic.Int64
	log      *slog.Logger

	// Persistent report store (nil = in-memory only).
	store    *store.Store
	leaseTTL time.Duration

	// Shard-frontend state (nil = backend / standalone mode).
	proxy *proxy

	// Stateful topology sessions for POST /v1/reconfigure.
	sessMu      sync.Mutex
	sessions    map[string]*topoSession
	maxSessions int

	// Live SSE progress feeds: one per in-flight streamed verify campaign
	// (keyed by verify key, removed on completion) and one per watched
	// topology session (keyed by session name, live while watched).
	heartbeat   time.Duration
	feedMu      sync.Mutex
	verifyFeeds map[string]*feed
	sessFeeds   map[string]*feed
}

// New builds a Server from opts.
func New(opts Options) *Server {
	base := opts.BaseContext
	if base == nil {
		base = context.Background()
	}
	size := opts.CacheSize
	if size < 0 {
		size = 256
	}
	maxSessions := opts.MaxSessions
	if maxSessions == 0 {
		maxSessions = 1024
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.NewLogger(nil, slog.LevelInfo)
	}
	heartbeat := opts.StreamHeartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	s := &Server{
		base:        base,
		workers:     opts.Workers,
		timeout:     opts.Timeout,
		sparsify:    !opts.DisableSparsify,
		cache:       newLRU(size),
		flights:     newFlightGroup(base),
		mux:         http.NewServeMux(),
		log:         logger,
		store:       opts.Store,
		leaseTTL:    opts.LeaseTTL,
		sessions:    make(map[string]*topoSession),
		maxSessions: maxSessions,
		heartbeat:   heartbeat,
		verifyFeeds: make(map[string]*feed),
		sessFeeds:   make(map[string]*feed),
	}
	if len(opts.Shards) > 0 {
		ring, err := shard.New(opts.Shards, shard.WithReplicas(opts.ShardReplicas))
		if err != nil {
			// A frontend with no routable fleet cannot serve anything
			// keyed; surface the configuration error on every request.
			s.log.Error("serve: bad shard fleet", "err", err)
		} else {
			s.proxy = newProxy(s, ring, opts.ProbeInterval)
		}
	}
	s.mux.HandleFunc("/v1/build", s.handleBuild)
	s.mux.HandleFunc("/v1/verify", s.handleVerify)
	s.mux.HandleFunc("/v1/flood", s.handleFlood)
	s.mux.HandleFunc("/v1/budget", s.handleBudget)
	s.mux.HandleFunc("/v1/reconfigure", s.handleReconfigure)
	s.mux.HandleFunc("/v1/constraints", s.handleConstraints)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// Handler returns the root handler serving the /v1 API, wrapped in the
// per-request tracing middleware (traceparent ingestion, X-Trace-Id on
// every response). In shard-frontend mode the proxy mux routes instead.
func (s *Server) Handler() http.Handler {
	if s.proxy != nil {
		return s.traced(s.proxy.mux)
	}
	return s.traced(s.mux)
}

// BuildRequest selects one graph: the cache key fields. Seed, when present,
// asks for the deterministic variant drawn from that seed (K-TREE and
// K-DIAMOND only).
type BuildRequest struct {
	Constraint string  `json:"constraint"`
	N          int     `json:"n"`
	K          int     `json:"k"`
	Seed       *uint64 `json:"seed,omitempty"`
}

// VerifyRequest narrows a verification: optional worker override (capped at
// the server budget) and an optional property subset ("P1".."P4"; empty
// means all).
type VerifyRequest struct {
	BuildRequest
	Workers    int      `json:"workers,omitempty"`
	Properties []string `json:"properties,omitempty"`
}

// FloodRequest runs one flood simulation over the selected graph.
type FloodRequest struct {
	BuildRequest
	Source   int          `json:"source"`
	Failures lhg.Failures `json:"failures"`
}

// BuildResponse returns the graph in the lhgen JSON encoding.
type BuildResponse struct {
	Constraint string     `json:"constraint"`
	N          int        `json:"n"`
	K          int        `json:"k"`
	Seed       *uint64    `json:"seed,omitempty"`
	Edges      int        `json:"edges"`
	Cached     bool       `json:"cached"`
	Graph      *lhg.Graph `json:"graph"`
}

// VerifyResponse wraps the full property report.
type VerifyResponse struct {
	Constraint string      `json:"constraint"`
	N          int         `json:"n"`
	K          int         `json:"k"`
	Seed       *uint64     `json:"seed,omitempty"`
	Cached     bool        `json:"cached"`
	IsLHG      bool        `json:"is_lhg"`
	Report     *lhg.Report `json:"report"`
}

// FloodResponse wraps one flood result.
type FloodResponse struct {
	Constraint string           `json:"constraint"`
	N          int              `json:"n"`
	K          int              `json:"k"`
	Seed       *uint64          `json:"seed,omitempty"`
	Source     int              `json:"source"`
	Cached     bool             `json:"cached"`
	Result     *lhg.FloodResult `json:"result"`
}

// ConstraintInfo describes one supported constraint for GET /v1/constraints.
type ConstraintInfo struct {
	Name string `json:"name"`
	// Variants reports whether the constraint accepts a build seed.
	Variants bool `json:"variants"`
}

// HealthResponse answers GET /healthz: liveness plus the server's role,
// which the shard probes and smoke tests read.
type HealthResponse struct {
	OK    bool   `json:"ok"`
	Role  string `json:"role"`  // "backend" or "frontend"
	Store bool   `json:"store"` // persistent report store attached
}

// parse/validation ----------------------------------------------------------

func (br *BuildRequest) validate() (lhg.Constraint, error) {
	c, err := lhg.ParseConstraint(br.Constraint)
	if err != nil {
		return 0, err
	}
	if br.N <= 0 || br.K <= 0 {
		return 0, fmt.Errorf("serve: need n > 0 and k > 0, got n=%d k=%d", br.N, br.K)
	}
	if br.Seed != nil && c != lhg.KTree && c != lhg.KDiamond {
		return 0, fmt.Errorf("serve: constraint %s has no seeded variants (use ktree or kdiamond)", c)
	}
	return c, nil
}

func (br *BuildRequest) check() error { _, err := br.validate(); return err }

func (vr *VerifyRequest) check() error {
	if _, err := vr.validate(); err != nil {
		return err
	}
	_, err := parseProperties(vr.Properties)
	return err
}

// parseProperties maps ["P1","P4"] onto the check bitmask; empty means all.
func parseProperties(names []string) (lhg.Properties, error) {
	var p lhg.Properties
	for _, name := range names {
		switch strings.ToUpper(strings.TrimSpace(name)) {
		case "P1":
			p |= lhg.PropNodeConnectivity
		case "P2":
			p |= lhg.PropLinkConnectivity
		case "P3":
			p |= lhg.PropLinkMinimality
		case "P4":
			p |= lhg.PropDiameter
		default:
			return 0, fmt.Errorf("serve: unknown property %q (want P1..P4)", name)
		}
	}
	return p, nil
}

// cache keys ----------------------------------------------------------------

func seedKey(seed *uint64) string {
	if seed == nil {
		return "canonical"
	}
	return fmt.Sprintf("seed=%d", *seed)
}

// graphKey is shared by every endpoint so a verify warms the build cache and
// vice versa. It is also the shard routing key: every frontend hashes the
// same string, so a key has one home backend fleet-wide. Worker counts are
// deliberately absent from every key: reports are deterministic regardless
// of parallelism.
func (br *BuildRequest) graphKey(c lhg.Constraint) string {
	return fmt.Sprintf("graph|%s|n=%d|k=%d|%s", c, br.N, br.K, seedKey(br.Seed))
}

func verifyKey(graphKey string, props lhg.Properties) string {
	return fmt.Sprintf("verify|%s|props=%d", graphKey, props)
}

func floodKey(graphKey string, source int, f lhg.Failures) string {
	nodes := append([]int(nil), f.Nodes...)
	sort.Ints(nodes)
	links := append([]lhg.Edge(nil), f.Links...)
	for i, e := range links {
		if e.U > e.V {
			links[i] = lhg.Edge{U: e.V, V: e.U}
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].U != links[j].U {
			return links[i].U < links[j].U
		}
		return links[i].V < links[j].V
	})
	return fmt.Sprintf("flood|%s|src=%d|nodes=%v|links=%v", graphKey, source, nodes, links)
}

// persistence ---------------------------------------------------------------

// persist describes how one endpoint's results live in the report store:
// the envelope kind and the decode back into the in-memory type. Endpoints
// without a spec (graphs, reconfigure epochs) stay LRU-only.
type persistSpec struct {
	kind   string
	decode func(json.RawMessage) (any, error)
}

func decodeInto[T any](raw json.RawMessage) (any, error) {
	v := new(T)
	if err := json.Unmarshal(raw, v); err != nil {
		return nil, err
	}
	return v, nil
}

var (
	persistVerify = &persistSpec{"verify", decodeInto[lhg.Report]}
	persistFlood  = &persistSpec{"flood", decodeInto[lhg.FloodResult]}
	persistBudget = &persistSpec{"budget", decodeInto[lhg.BudgetReport]}
)

// storeGet reads key through the persistent store, decoding into the
// endpoint's type. Any store fault degrades to a miss: the campaign can
// always be recomputed.
func (s *Server) storeGet(key string, p *persistSpec) (any, bool) {
	if s.store == nil || p == nil {
		return nil, false
	}
	raw, ok, err := s.store.Get(key)
	if err != nil || !ok {
		if err != nil {
			s.log.Warn("store read failed", "key", key, "err", err)
		}
		return nil, false
	}
	v, err := p.decode(raw)
	if err != nil {
		s.log.Warn("store decode failed", "key", key, "err", err)
		return nil, false
	}
	return v, true
}

// storePut publishes a freshly computed value; failures are logged, not
// fatal — the in-memory result is already good.
func (s *Server) storePut(key string, p *persistSpec, v any) {
	if s.store == nil || p == nil {
		return
	}
	raw, err := json.Marshal(v)
	if err == nil {
		err = s.store.Put(key, p.kind, raw)
	}
	if err != nil {
		s.log.Warn("store write failed", "key", key, "err", err)
	}
}

// shared plumbing -----------------------------------------------------------

// compute answers one request through the tiered read path — LRU, then the
// persistent store, then one computation — with two singleflight layers:
// the in-process refcounted flight group, and (when a store is attached)
// the store-level lease that makes the flight leader unique fleet-wide. A
// leader that loses the lease race waits for the foreign leader's value
// instead of recomputing, so a request landing on ANY process for the same
// key still runs exactly one campaign across the fleet.
//
// fn runs under the group's detached context bounded by the server
// timeout; the request's span identity is grafted onto that detached
// context so the campaign's child spans attribute to the request that led
// the flight, while cancellation stays flight-owned.
func (s *Server) compute(ctx context.Context, ep endpoint, key string, p *persistSpec, fn func(context.Context) (any, error)) (val any, cached bool, err error) {
	sp := trace.FromContext(ctx)
	if v, ok := s.cache.Get(key); ok {
		ep.hits.Inc()
		if sp.Live() {
			sp.Event("cache-hit", trace.Str("key", key))
		}
		return v, true, nil
	}
	if v, ok := s.storeGet(key, p); ok {
		// Store read-through: another process (or a previous life of this
		// one) already paid for the campaign. Fill the LRU above it.
		s.cache.Put(key, v)
		ep.hits.Inc()
		if sp.Live() {
			sp.Event("store-hit", trace.Str("key", key))
		}
		return v, true, nil
	}
	ep.misses.Inc()
	if sp.Live() {
		sp.Event("cache-miss", trace.Str("key", key))
	}
	var fromStore atomic.Bool
	v, err, shared := s.flights.Do(ctx, key, func(runCtx context.Context) (any, error) {
		// Double-check the cache as the flight leader: a request that
		// missed the cache just before a concurrent flight completed and
		// unmapped itself would otherwise re-run the whole campaign. The
		// completing flight fills the cache before it unmaps, so this
		// lookup closes that window.
		if v, ok := s.cache.Get(key); ok {
			return v, nil
		}
		if s.timeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(runCtx, s.timeout)
			defer cancel()
		}
		runCtx, csp := trace.StartSpan(trace.Graft(runCtx, ctx), "serve.campaign")
		if csp.Live() {
			csp.SetAttr(trace.Str("key", key))
		}
		defer csp.End()
		if s.store != nil && p != nil {
			v, leased, err := s.leaseOrAdopt(runCtx, key, p, csp)
			if err != nil {
				return nil, err
			}
			if v != nil {
				fromStore.Store(true)
				s.cache.Put(key, v)
				return v, nil
			}
			if leased != nil {
				defer leased.Release()
			}
		}
		v, err := fn(runCtx)
		if err == nil {
			s.cache.Put(key, v)
			s.storePut(key, p, v)
		}
		return v, err
	})
	if shared {
		mCoalesced.Inc()
		if sp.Live() {
			sp.Event("coalesced", trace.Str("key", key))
		}
	}
	if err != nil {
		return nil, false, err
	}
	// A coalesced request — or one whose flight adopted a foreign
	// process's result — reports cached=true: it did not pay for the
	// computation, which is what clients use the flag for.
	return v, shared || fromStore.Load(), nil
}

// leaseOrAdopt makes the in-process flight leader unique fleet-wide: it
// contends for the store lease on key and either wins it (returning the
// held lease; the caller computes and releases) or adopts the value the
// foreign leader publishes. A foreign leader that dies without publishing
// expires its lease and the contest restarts. Store faults degrade to
// local computation — persistence never makes a request fail.
func (s *Server) leaseOrAdopt(ctx context.Context, key string, p *persistSpec, csp trace.Span) (any, *store.Lease, error) {
	for {
		lease, won, err := s.store.Acquire(key, s.leaseTTL)
		if err != nil {
			s.log.Warn("lease acquire failed, computing locally", "key", key, "err", err)
			return nil, nil, nil
		}
		if won {
			return nil, lease, nil
		}
		if csp.Live() {
			csp.Event("lease-wait", trace.Str("key", key))
		}
		raw, found, err := s.store.WaitValue(ctx, key, 0)
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			s.log.Warn("lease wait failed, computing locally", "key", key, "err", err)
			return nil, nil, nil
		}
		if found {
			v, err := p.decode(raw)
			if err != nil {
				s.log.Warn("foreign result undecodable, computing locally", "key", key, "err", err)
				return nil, nil, nil
			}
			if csp.Live() {
				csp.Event("lease-adopted", trace.Str("key", key))
			}
			return v, nil, nil
		}
		// The foreign leader died without publishing: contend again.
	}
}

// getGraph resolves the graph for br through the shared cache/flight path.
func (s *Server) getGraph(ctx context.Context, c lhg.Constraint, br *BuildRequest) (*lhg.Graph, bool, error) {
	v, cached, err := s.compute(ctx, epBuild, br.graphKey(c), nil, func(runCtx context.Context) (any, error) {
		if br.Seed != nil {
			return lhg.Build(runCtx, c, br.N, br.K, lhg.WithSeed(*br.Seed))
		}
		return lhg.Build(runCtx, c, br.N, br.K)
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*lhg.Graph), cached, nil
}

// track opens the per-request instrumentation; the returned func closes it.
func (s *Server) track(ep endpoint) func(failed bool, start time.Time) {
	ep.requests.Inc()
	gInflight.Set(s.inflight.Add(1))
	return func(failed bool, start time.Time) {
		gInflight.Set(s.inflight.Add(-1))
		if failed {
			ep.errors.Inc()
			return
		}
		d := time.Since(start)
		ep.latency.Observe(d.Microseconds())
		ep.timer.Observe(d)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// handlers ------------------------------------------------------------------

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.notAllowed(w, r, http.MethodPost)
		return
	}
	runJSON(s, epBuild, w, r, func(ctx context.Context, req *BuildRequest) (any, error) {
		c, _ := req.validate() // checked by the pipeline
		g, cached, err := s.getGraph(ctx, c, req)
		if err != nil {
			return nil, err
		}
		return BuildResponse{
			Constraint: c.String(), N: req.N, K: req.K, Seed: req.Seed,
			Edges: g.Size(), Cached: cached, Graph: g,
		}, nil
	})
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	switch {
	case r.Method == http.MethodGet && q.Has("stream"):
		s.handleVerifyStream(w, r)
	case r.Method == http.MethodPost && q.Has("batch"):
		s.handleVerifyBatch(w, r)
	case r.Method == http.MethodPost:
		runJSON(s, epVerify, w, r, func(ctx context.Context, req *VerifyRequest) (any, error) {
			return s.verifyOne(ctx, req)
		})
	default:
		// GET is only meaningful with ?stream; anything else wants POST.
		s.notAllowed(w, r, http.MethodPost)
	}
}

// verifyOne answers one verification request; it is the shared compute
// path of POST /v1/verify, each item of a ?batch, and the ?stream
// campaign goroutine.
func (s *Server) verifyOne(ctx context.Context, req *VerifyRequest) (*VerifyResponse, error) {
	c, err := req.validate()
	if err != nil {
		return nil, badRequest(err)
	}
	props, err := parseProperties(req.Properties)
	if err != nil {
		return nil, badRequest(err)
	}
	g, _, err := s.getGraph(ctx, c, &req.BuildRequest)
	if err != nil {
		return nil, err
	}
	workers := clampRequestWorkers(req.Workers, s.workers)
	key := verifyKey(req.graphKey(c), props)
	v, cached, err := s.compute(ctx, epVerify, key, persistVerify, func(runCtx context.Context) (any, error) {
		return lhg.Verify(runCtx, g, req.K, lhg.WithWorkers(workers),
			lhg.WithProperties(props), lhg.WithSparsify(s.sparsify))
	})
	if err != nil {
		return nil, err
	}
	report := v.(*lhg.Report)
	return &VerifyResponse{
		Constraint: c.String(), N: req.N, K: req.K, Seed: req.Seed,
		Cached: cached, IsLHG: report.IsLHG(), Report: report,
	}, nil
}

func (s *Server) handleFlood(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.notAllowed(w, r, http.MethodPost)
		return
	}
	runJSON(s, epFlood, w, r, func(ctx context.Context, req *FloodRequest) (any, error) {
		c, _ := req.validate() // checked by the pipeline
		g, _, err := s.getGraph(ctx, c, &req.BuildRequest)
		if err != nil {
			return nil, err
		}
		key := floodKey(req.graphKey(c), req.Source, req.Failures)
		v, cached, err := s.compute(ctx, epFlood, key, persistFlood, func(runCtx context.Context) (any, error) {
			return lhg.Flood(runCtx, g, req.Source, lhg.WithFailures(req.Failures))
		})
		if err != nil {
			// A bad source or crashed-source request is a client error, not
			// a server fault; the flood kernel reports both as plain errors.
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return nil, err
			}
			return nil, badRequest(err)
		}
		return FloodResponse{
			Constraint: c.String(), N: req.N, K: req.K, Seed: req.Seed,
			Source: req.Source, Cached: cached, Result: v.(*lhg.FloodResult),
		}, nil
	})
}

func (s *Server) handleConstraints(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.notAllowed(w, r, http.MethodGet)
		return
	}
	mReqConstr.Inc()
	infos := make([]ConstraintInfo, 0, 4)
	for _, c := range lhg.Constraints() {
		infos = append(infos, ConstraintInfo{
			Name:     c.String(),
			Variants: c == lhg.KTree || c == lhg.KDiamond,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Constraints []ConstraintInfo `json:"constraints"`
	}{infos})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.notAllowed(w, r, http.MethodGet)
		return
	}
	role := "backend"
	if s.proxy != nil {
		role = "frontend"
	}
	writeJSON(w, http.StatusOK, HealthResponse{OK: true, Role: role, Store: s.store != nil})
}

// clampRequestWorkers lowers the request's worker ask to the server budget.
// Zero on either side means "all cores", which any explicit ask undercuts.
func clampRequestWorkers(asked, budget int) int {
	if asked <= 0 {
		return budget
	}
	if budget > 0 && asked > budget {
		return budget
	}
	return asked
}

//go:build !race

package main

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false

package check

import (
	"context"
	"reflect"
	"testing"

	"lhg/internal/graph"
)

// Differential fuzzing of the sparsify fast path: for every generated
// (n, k, seed, mutations) input the Report must be bit-identical with
// sparsification forced on and forced off, serial and parallel. This is
// the enforcement of the contract stated on Options.Sparsify — the fast
// path changes no value and no verdict — over a randomized graph space
// that includes disconnected, multi-component, irregular and complete
// graphs.

// fuzzGraph decodes a graph from the fuzz input: a seeded G(n, p) draw
// (the density in per-mille comes from seed%1201, so seeds >= 1000 mod
// 1201 yield complete graphs and seed 0 the empty one), followed by edge
// toggles taken pairwise from mut. Everything is deterministic in the
// inputs.
func fuzzGraph(n int, seed uint64, mut []byte) *graph.Graph {
	density := seed % 1201
	state := seed
	next := func() uint64 { // splitmix64
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if next()%1000 < density {
				b.MustAddEdge(u, v)
			}
		}
	}
	for i := 0; i+1 < len(mut); i += 2 {
		u, v := int(mut[i])%n, int(mut[i+1])%n
		if u == v {
			continue
		}
		if b.HasEdge(u, v) {
			b.RemoveEdge(u, v)
		} else {
			b.MustAddEdge(u, v)
		}
	}
	return b.Freeze()
}

// coreReport is the comparable projection of a Report: every reported
// value and verdict, excluding only the run descriptors that legitimately
// differ between configurations (worker count, phase timings).
type coreReport struct {
	N, M, K        int
	Kappa, Lambda  int
	P1, P2, P3, P4 bool
	Regular        bool
	Viol           graph.Edge
	HasViol        bool
	Diam, Bound    int
	MinDeg, MaxDeg int
	AvgPathLen     float64
}

func reportCore(r *Report) coreReport {
	viol, hasViol := r.Violation()
	return coreReport{
		N: r.N, M: r.M, K: r.K,
		Kappa: r.NodeConnectivity, Lambda: r.EdgeConnectivity,
		P1: r.KNodeConnected, P2: r.KLinkConnected,
		P3: r.LinkMinimal, P4: r.LogDiameter, Regular: r.Regular,
		Viol: viol, HasViol: hasViol,
		Diam: r.Diameter, Bound: r.DiameterBound,
		MinDeg: r.MinDegree, MaxDeg: r.MaxDegree,
		AvgPathLen: r.AvgPathLen,
	}
}

func FuzzVerifySparseEquivFull(f *testing.F) {
	f.Add(8, 1, uint64(600), []byte(""))                          // k=1, mid density
	f.Add(6, 5, uint64(1200), []byte(""))                         // complete K6, k=n-1
	f.Add(10, 2, uint64(0), []byte(""))                           // empty: disconnected
	f.Add(4, 1, uint64(1200), []byte("\x00\x01\x00\x02\x00\x03")) // K4 minus node 0's edges: two components
	f.Add(12, 3, uint64(400), []byte("\x01\x05\x02\x09"))         // irregular with toggles
	f.Fuzz(func(t *testing.T, n, k int, seed uint64, mut []byte) {
		if n < 3 || n > 16 {
			n = 3 + ((n%14)+14)%14
		}
		if k < 1 || k >= n {
			k = 1 + ((k%(n-1))+(n-1))%(n-1)
		}
		g := fuzzGraph(n, seed, mut)
		ctx := context.Background()
		ref, err := VerifyCtx(ctx, g, k, Options{Workers: 1, Sparsify: SparsifyOff})
		if err != nil {
			t.Fatal(err)
		}
		want := reportCore(ref)
		for _, opt := range []Options{
			{Workers: 1, Sparsify: SparsifyAlways},
			{Workers: 4, Sparsify: SparsifyAlways},
			{Workers: 4, Sparsify: SparsifyOff},
			{Workers: 1, Sparsify: SparsifyAuto},
		} {
			r, err := VerifyCtx(ctx, g, k, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got := reportCore(r); got != want {
				t.Fatalf("n=%d k=%d seed=%d mut=%x: report diverged under %+v:\n got %+v\nwant %+v",
					n, k, seed, mut, opt, got, want)
			}
		}
		qOff, err := QuickVerifyOpts(ctx, g, k, Options{Sparsify: SparsifyOff})
		if err != nil {
			t.Fatal(err)
		}
		qOn, err := QuickVerifyOpts(ctx, g, k, Options{Sparsify: SparsifyAlways})
		if err != nil {
			t.Fatal(err)
		}
		if qOff != qOn {
			t.Fatalf("n=%d k=%d seed=%d mut=%x: QuickVerify verdict diverged: off=%t always=%t",
				n, k, seed, mut, qOff, qOn)
		}
	})
}

// FuzzVerifyDeltaEquivFull is the differential guard on the incremental
// path: for every generated (base graph, churn script) pair, the report
// VerifyDelta produces from (prev graph, prev report, delta) must be
// bit-identical to a fresh full verification of the patched graph —
// whichever of the fast path or the fallback fires. The churn script is
// decoded into a valid EdgeDelta: the first byte picks the new order
// (growth, shrink or in-place), departures are torn down completely, and
// the remaining byte pairs toggle survivor/new-node edges.
func FuzzVerifyDeltaEquivFull(f *testing.F) {
	f.Add(10, 3, uint64(700), []byte(""))                     // no churn: identity delta
	f.Add(10, 3, uint64(700), []byte("\x0d\x0a\x0b\x0a\x0c")) // growth with leaf wiring
	f.Add(14, 3, uint64(900), []byte("\x02"))                 // deep shrink, heavy teardown
	f.Add(12, 2, uint64(400), []byte("\x09\x00\x01\x02\x03")) // in-place rewiring (damage)
	f.Add(8, 4, uint64(1200), []byte("\x05\x00\x01\x00\x02")) // dense base, shrink + cuts
	f.Fuzz(func(t *testing.T, n, k int, seed uint64, churn []byte) {
		if n < 3 || n > 16 {
			n = 3 + ((n%14)+14)%14
		}
		g := fuzzGraph(n, seed, nil)
		n2 := n
		if len(churn) > 0 {
			n2 = 3 + int(churn[0])%14
			churn = churn[1:]
		}
		if k < 1 || k >= n || k >= n2 {
			m := n
			if n2 < m {
				m = n2
			}
			k = 1 + ((k%(m-1))+(m-1))%(m-1)
		}
		ctx := context.Background()
		prev, err := VerifyCtx(ctx, g, k, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		var d graph.EdgeDelta
		seen := make(map[graph.Edge]bool)
		mark := func(u, v int) bool {
			if u > v {
				u, v = v, u
			}
			e := graph.Edge{U: u, V: v}
			if seen[e] {
				return false
			}
			seen[e] = true
			return true
		}
		// Departures must end isolated: tear down every live link first.
		for v := n2; v < n; v++ {
			g.EachNeighbor(v, func(nb int) {
				if mark(v, nb) {
					d.Removed = append(d.Removed, graph.Edge{U: v, V: nb})
				}
			})
		}
		for i := 0; i+1 < len(churn); i += 2 {
			u, v := int(churn[i])%n2, int(churn[i+1])%n2
			if u == v || !mark(u, v) {
				continue
			}
			if u < n && v < n && g.HasEdge(u, v) {
				d.Removed = append(d.Removed, graph.Edge{U: u, V: v})
			} else {
				d.Added = append(d.Added, graph.Edge{U: u, V: v})
			}
		}
		d.Normalize()
		got, err := VerifyDelta(ctx, g, prev, d, n2, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		next, err := g.ApplyDelta(d, n2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := VerifyCtx(ctx, next, k, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		g2, w2 := *got, *want
		g2.Phases, w2.Phases = nil, nil
		if !reflect.DeepEqual(&g2, &w2) {
			t.Fatalf("n=%d->%d k=%d seed=%d churn=%x: delta report %s differs from full verify %s",
				n, n2, k, seed, churn, got, want)
		}
	})
}

// FuzzVerifyPrescreenEquivFull is the differential guard on the Monte
// Carlo cut prescreen: for every generated graph the Report must be
// bit-identical with the prescreen forced on and forced off, serial and
// parallel — the contraction cuts may only tighten early-exit limits and
// reorder probes, never change a value, a verdict or the P3 witness. The
// QuickVerify fast-refute path (a certified cut below k) is held to the
// same standard on the boolean verdict.
func FuzzVerifyPrescreenEquivFull(f *testing.F) {
	f.Add(8, 1, uint64(600), []byte(""))                          // k=1, mid density
	f.Add(6, 5, uint64(1200), []byte(""))                         // complete K6, k=n-1
	f.Add(10, 2, uint64(0), []byte(""))                           // empty: disconnected
	f.Add(12, 3, uint64(400), []byte("\x01\x05\x02\x09"))         // irregular with toggles
	f.Add(4, 1, uint64(1200), []byte("\x00\x01\x00\x02\x00\x03")) // K4 minus node 0's edges: two components
	// Near-critical cut: a dense draw thinned across the middle so the
	// contraction rounds find a sub-δ cut and route its side first.
	f.Add(10, 2, uint64(900), []byte("\x00\x05\x00\x06\x01\x05\x01\x06\x02\x05\x02\x06"))
	f.Fuzz(func(t *testing.T, n, k int, seed uint64, mut []byte) {
		if n < 3 || n > 16 {
			n = 3 + ((n%14)+14)%14
		}
		if k < 1 || k >= n {
			k = 1 + ((k%(n-1))+(n-1))%(n-1)
		}
		g := fuzzGraph(n, seed, mut)
		ctx := context.Background()
		ref, err := VerifyCtx(ctx, g, k, Options{Workers: 1, Prescreen: PrescreenOff})
		if err != nil {
			t.Fatal(err)
		}
		want := reportCore(ref)
		for _, opt := range []Options{
			{Workers: 1, Prescreen: PrescreenAlways},
			{Workers: 4, Prescreen: PrescreenAlways},
			{Workers: 4, Prescreen: PrescreenOff},
			{Workers: 1, Prescreen: PrescreenAuto},
			{Workers: 1, Prescreen: PrescreenAlways, Sparsify: SparsifyAlways},
		} {
			r, err := VerifyCtx(ctx, g, k, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got := reportCore(r); got != want {
				t.Fatalf("n=%d k=%d seed=%d mut=%x: report diverged under %+v:\n got %+v\nwant %+v",
					n, k, seed, mut, opt, got, want)
			}
		}
		qOff, err := QuickVerifyOpts(ctx, g, k, Options{Prescreen: PrescreenOff})
		if err != nil {
			t.Fatal(err)
		}
		qOn, err := QuickVerifyOpts(ctx, g, k, Options{Prescreen: PrescreenAlways})
		if err != nil {
			t.Fatal(err)
		}
		if qOff != qOn {
			t.Fatalf("n=%d k=%d seed=%d mut=%x: QuickVerify verdict diverged: off=%t always=%t",
				n, k, seed, mut, qOff, qOn)
		}
	})
}

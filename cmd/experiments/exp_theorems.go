package main

import (
	"fmt"
	"io"

	"lhg/internal/check"
	"lhg/internal/core"
)

// runE4 sweeps (n,k) and compares the Theorem 2 closed form for EX_K-TREE
// with actual construction + exact LHG verification.
func runE4(w io.Writer) error {
	fmt.Fprintf(w, "%-3s %-12s %-10s %-10s %-10s %-10s\n",
		"k", "n range", "closedform", "built", "verified", "mismatch")
	for k := 3; k <= 6; k++ {
		lo, hi := k+1, 10*k
		closed, built, verified, mismatch := 0, 0, 0, 0
		for n := lo; n <= hi; n++ {
			want := core.ExistsKTree(n, k)
			if want {
				closed++
			}
			kt, err := core.BuildKTree(n, k)
			if (err == nil) != want {
				mismatch++
				continue
			}
			if err != nil {
				continue
			}
			built++
			ok, verr := check.QuickVerify(kt.Real.Graph, k)
			if verr != nil {
				return verr
			}
			if ok {
				verified++
			} else {
				mismatch++
			}
		}
		fmt.Fprintf(w, "%-3d [%d,%d]%-4s %-10d %-10d %-10d %-10d\n",
			k, lo, hi, "", closed, built, verified, mismatch)
	}
	fmt.Fprintln(w, "paper: EX_K-TREE(n,k) = true iff n >= 2k  -> mismatch column must be 0")
	return nil
}

// runE5 prints the regularity grid for K-TREE around small n (Theorem 3).
func runE5(w io.Writer) error {
	return regularityGrid(w, "K-TREE", core.RegularKTree, func(n, k int) (bool, error) {
		kt, err := core.BuildKTree(n, k)
		if err != nil {
			return false, err
		}
		return kt.Real.Graph.IsRegular(k), nil
	})
}

// runE7 prints the regularity grid for K-DIAMOND (Theorem 6).
func runE7(w io.Writer) error {
	return regularityGrid(w, "K-DIAMOND", core.RegularKDiamond, func(n, k int) (bool, error) {
		kd, err := core.BuildKDiamond(n, k)
		if err != nil {
			return false, err
		}
		return kd.Real.Graph.IsRegular(k), nil
	})
}

// regularityGrid renders, per k, which n in a window admit k-regular
// instances: closed form vs what the builder actually produced.
func regularityGrid(w io.Writer, name string, closed func(n, k int) bool, builtRegular func(n, k int) (bool, error)) error {
	for k := 3; k <= 5; k++ {
		lo := 2 * k
		hi := 2*k + 8*(k-1)
		fmt.Fprintf(w, "k=%d  n in [%d,%d], * marks k-regular %s instances:\n  ", k, lo, hi, name)
		for n := lo; n <= hi; n++ {
			want := closed(n, k)
			got, err := builtRegular(n, k)
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("%s regularity mismatch at (%d,%d): built=%t closed=%t",
					name, n, k, got, want)
			}
			mark := "."
			if got {
				mark = "*"
			}
			fmt.Fprintf(w, "%d%s ", n, mark)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runE6 checks Corollary 1 over a wide grid: the two EX functions are the
// same function, and both builders succeed on exactly the same pairs.
func runE6(w io.Writer) error {
	checked, disagreements := 0, 0
	for k := 3; k <= 8; k++ {
		for n := 1; n <= 15*k; n++ {
			checked++
			if core.ExistsKTree(n, k) != core.ExistsKDiamond(n, k) {
				disagreements++
			}
		}
	}
	fmt.Fprintf(w, "EX_K-TREE vs EX_K-DIAMOND over %d pairs: %d disagreements\n", checked, disagreements)
	// Builder-level confirmation on a narrower sweep.
	for k := 3; k <= 5; k++ {
		for n := k + 1; n <= 8*k; n++ {
			_, errT := core.BuildKTree(n, k)
			_, errD := core.BuildKDiamond(n, k)
			if (errT == nil) != (errD == nil) {
				return fmt.Errorf("builders disagree at (%d,%d)", n, k)
			}
		}
	}
	fmt.Fprintln(w, "builders agree on every pair of the sweep (Corollary 1 holds)")
	if disagreements != 0 {
		return fmt.Errorf("%d EX disagreements", disagreements)
	}
	return nil
}

// runE8 reports the regular-coverage comparison of Theorem 7/Corollary 2:
// every K-TREE-regular size is K-DIAMOND-regular, and the odd-α sizes are
// K-DIAMOND exclusives — about half of the regular grid.
func runE8(w io.Writer) error {
	fmt.Fprintf(w, "%-3s %-14s %-14s %-16s %s\n",
		"k", "reg(K-TREE)", "reg(K-DIAM)", "exclusives", "first exclusives (odd α)")
	for k := 3; k <= 6; k++ {
		lo, hi := 2*k, 2*k+20*(k-1)
		var ktree, kdiam, excl int
		var firstExcl []int
		for n := lo; n <= hi; n++ {
			rt, rd := core.RegularKTree(n, k), core.RegularKDiamond(n, k)
			if rt && !rd {
				return fmt.Errorf("Corollary 2 violated at (%d,%d)", n, k)
			}
			if rt {
				ktree++
			}
			if rd {
				kdiam++
			}
			if rd && !rt {
				excl++
				if len(firstExcl) < 4 {
					firstExcl = append(firstExcl, n)
				}
			}
		}
		fmt.Fprintf(w, "%-3d %-14d %-14d %-16d %v\n", k, ktree, kdiam, excl, firstExcl)
	}
	fmt.Fprintln(w, "paper: infinitely many pairs are regular under K-DIAMOND only (Theorem 7)")
	return nil
}

package overlay

import (
	"fmt"

	"lhg/internal/core"
	"lhg/internal/flood"
	"lhg/internal/graph"
)

// Grower is the incremental-maintenance contract implemented by
// core.KTreeGrower and core.KDiamondGrower — an alias of core.Reconfigurer
// (the name survives from the join-only era): one admission per Grow,
// one departure per Shrink, batched churn via Apply, all with O(k²) edge
// surgery per event, stable node ids, and an LHG-valid topology after
// every step.
type Grower = core.Reconfigurer

var (
	_ Grower = (*core.KTreeGrower)(nil)
	_ Grower = (*core.KDiamondGrower)(nil)
)

// Incremental is an overlay maintained by graph surgery instead of
// canonical rebuilds: joins AND leaves cost a constant (in n) number of
// link edits — see experiments E15 and E27. Compared to Overlay, churn
// figures here are exact edit counts of the surgery actually issued.
type Incremental struct {
	gr   Grower
	gens int
}

// NewIncremental wraps a churn engine as an overlay.
func NewIncremental(gr Grower) (*Incremental, error) {
	if gr == nil {
		return nil, fmt.Errorf("overlay: nil grower")
	}
	return &Incremental{gr: gr}, nil
}

// Size returns the current number of members.
func (o *Incremental) Size() int { return o.gr.N() }

// K returns the connectivity target.
func (o *Incremental) K() int { return o.gr.K() }

// Generation returns how many membership events have been processed.
func (o *Incremental) Generation() int { return o.gens }

// Graph returns the frozen (immutable) view of the current topology.
func (o *Incremental) Graph() *graph.Graph { return o.gr.Graph() }

// deltaChurn converts a surgery delta into the churn accounting shared
// with the rebuild overlay: exact edit counts, Kept = links of the new
// topology that required no operation.
func (o *Incremental) deltaChurn(d graph.EdgeDelta) Churn {
	return Churn{
		Added:   len(d.Added),
		Removed: len(d.Removed),
		Kept:    o.gr.Graph().Size() - len(d.Added),
	}
}

// Join admits one member and returns the link churn (setup + teardown
// counts mirroring Overlay's accounting).
func (o *Incremental) Join() (Churn, error) {
	d, err := o.gr.Grow()
	if err != nil {
		return Churn{}, fmt.Errorf("overlay: incremental join: %w", err)
	}
	o.gens++
	return o.deltaChurn(d), nil
}

// Leave removes the youngest member by inverse surgery and returns the
// link churn. Departures below the minimal size 2k fail.
func (o *Incremental) Leave() (Churn, error) {
	d, err := o.gr.Shrink()
	if err != nil {
		return Churn{}, fmt.Errorf("overlay: incremental leave: %w", err)
	}
	o.gens++
	return o.deltaChurn(d), nil
}

// Apply executes a batch of membership changes and returns the churn of
// the NET delta — opposite edits inside the batch cancel, so the figure is
// the cost of reconfiguring straight to the final topology. On error the
// completed prefix stays applied and its churn is returned with the error.
func (o *Incremental) Apply(changes []core.Change) (Churn, error) {
	d, err := o.gr.Apply(changes)
	c := o.deltaChurn(d)
	if err != nil {
		return c, fmt.Errorf("overlay: incremental batch: %w", err)
	}
	o.gens += len(changes)
	return c, nil
}

// Broadcast floods from source over the current topology under failures.
func (o *Incremental) Broadcast(source int, f flood.Failures) (*flood.Result, error) {
	return flood.Run(o.gr.Snapshot(), source, f)
}

package netflood

import (
	"testing"
	"time"

	"lhg/internal/faultnet"
	"lhg/internal/graph"
	"lhg/internal/obs"
)

// blackhole drops every frame in both directions — a link that accepts
// writes and delivers nothing, the worst case for the retransmit path.
func blackhole(int, int) faultnet.Plan { return faultnet.Plan{Drop: 1} }

// TestHopBudgetStopsForwarding pins the frame-budget semantics on a line
// 0–1–2–3 with HopBudget 2: the broadcast reaches exactly the nodes within
// two hops, the copy at the budget frontier is delivered but not forwarded,
// and the stop is counted.
func TestHopBudgetStopsForwarding(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	withSink(t)
	c, err := StartWithOptions(g, Options{HopBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Broadcast(0, "bounded"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitDelivered([]int{0, 1, 2}, 1, 10*time.Second) {
		t.Fatal("nodes within the hop budget did not deliver")
	}
	// Give a leak every chance to happen before asserting silence.
	time.Sleep(150 * time.Millisecond)
	if got := len(c.Delivered(3)); got != 0 {
		t.Fatalf("node beyond the hop budget delivered %d messages", got)
	}
	if obs.Counters()["netflood.hops.budget_exhausted"] == 0 {
		t.Fatal("budget frontier was never counted")
	}
}

// TestRetryBudgetBoundsRetransmissions starves a single link (every frame
// dropped, so no ack ever arrives) and pins the hard ceiling: exactly
// RetryBudget retransmissions are spent, then the entry is abandoned and
// counted — where the unguarded protocol would keep earning fresh retries
// through the reconnect cycle.
func TestRetryBudgetBoundsRetransmissions(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	withSink(t)
	c, err := StartWithOptions(g, Options{
		Reliable:       true,
		RetransmitBase: 3 * time.Millisecond,
		RetransmitMax:  10 * time.Millisecond,
		MaxRetries:     1000, // keep the suspect path out of this test
		RetryBudget:    5,
		Faults:         blackhole,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Broadcast(0, "void"); err != nil {
		t.Fatal(err)
	}
	waitCounters(t, map[string]int64{
		"netflood.frames.retransmitted":        5,
		"netflood.retransmit.budget_exhausted": 1,
	})
	// The budget is spent for good: no further retransmission may appear.
	time.Sleep(100 * time.Millisecond)
	if got := obs.Counters()["netflood.frames.retransmitted"]; got != 5 {
		t.Fatalf("retransmissions kept flowing after budget exhaustion: %d", got)
	}
}

// TestTokenBucketDefersRetransmissions pins the storm gate: with a bucket
// of 2 tokens refilling at 1/s over a black-hole link, the retransmit loop
// spends its burst and then defers — counted deferrals instead of a
// compounding storm.
func TestTokenBucketDefersRetransmissions(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	withSink(t)
	c, err := StartWithOptions(g, Options{
		Reliable:        true,
		RetransmitBase:  3 * time.Millisecond,
		RetransmitMax:   10 * time.Millisecond,
		MaxRetries:      1000,
		RetransmitRate:  1, // one token per second: no refill inside the test window
		RetransmitBurst: 2,
		Faults:          blackhole,
		Seed:            11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Broadcast(0, "gated"); err != nil {
		t.Fatal(err)
	}
	// The single pending entry spends the 2-token burst on its first two
	// retransmissions; the third due time finds an empty bucket and defers.
	waitCounterAtLeast(t, "netflood.retransmit.deferred", 1)
	if got := obs.Counters()["netflood.frames.retransmitted"]; got > 3 {
		t.Fatalf("token bucket admitted %d retransmissions, want the burst of 2 (+1 slow-refill tolerance)", got)
	}
}

// TestRepairDeferredWithDiversity pins the escalation gate: on K4 with one
// silent link, the node holding k-1 = 3 healthy alternatives defers the
// redial (degrading to gated retransmission) instead of hammering the lossy
// peer with reconnections — and the flood still reaches everyone through
// the alternative paths.
func TestRepairDeferredWithDiversity(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
	})
	// Only the 0→1 direction is a black hole; everything else is clean, so
	// node 1 still hears the broadcast via 2 and 3.
	plan := func(from, to int) faultnet.Plan {
		if from == 0 && to == 1 {
			return faultnet.Plan{Drop: 1}
		}
		return faultnet.Plan{}
	}
	withSink(t)
	c, err := StartWithOptions(g, Options{
		Reliable:       true,
		RetransmitBase: 3 * time.Millisecond,
		RetransmitMax:  10 * time.Millisecond,
		MaxRetries:     2,
		PathDiversity:  3,
		Faults:         plan,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Broadcast(0, "degrade"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitDelivered([]int{0, 1, 2, 3}, 1, 10*time.Second) {
		t.Fatal("flood did not route around the silent link")
	}
	waitCounterAtLeast(t, "netflood.repair.deferred", 1)
	ctr := obs.Counters()
	if ctr["netflood.links.reconnected"] != 0 || ctr["netflood.peers.dead"] != 0 {
		t.Fatalf("diversity gate did not stop escalation: %d reconnects, %d dead peers",
			ctr["netflood.links.reconnected"], ctr["netflood.peers.dead"])
	}
}

// TestRetransmitLoopIdleWakeups is the tick-coupling regression test: the
// loop must derive its sleep from the nearest due time, so an idle reliable
// cluster (everything acked, nothing pending) stops waking. The old
// implementation ticked at RetransmitBase/4 forever — 4ms base would have
// produced ~300 wakeups over the measurement window below.
func TestRetransmitLoopIdleWakeups(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	withSink(t)
	c, err := StartWithOptions(g, Options{
		Reliable:       true,
		RetransmitBase: 4 * time.Millisecond,
		RetransmitMax:  time.Second,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Broadcast(0, "settle"); err != nil {
		t.Fatal(err)
	}
	// A fault-free triangle floods 2m = 6 copies, each tracked and acked.
	waitCounters(t, map[string]int64{"netflood.acks.received": 6})
	before := obs.Counters()["netflood.retransmit.wakeups"]
	time.Sleep(300 * time.Millisecond)
	delta := obs.Counters()["netflood.retransmit.wakeups"] - before
	if delta > 20 {
		t.Fatalf("idle retransmit loops woke %d times in 300ms; tick is still coupled to RetransmitBase", delta)
	}
}

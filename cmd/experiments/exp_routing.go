package main

import (
	"fmt"
	"io"
	"sort"

	"lhg"
	"lhg/internal/core"
)

// runE19 measures the structured router (the Lemma 3 diameter argument
// executed as a routing scheme: tree paths within a copy, junction leaves
// across copies) against true shortest paths: route lengths, stretch
// distribution, and the O(log n) worst case.
func runE19(w io.Writer) error {
	k := 4
	fmt.Fprintf(w, "k=%d, structured routing vs BFS shortest paths over all node pairs\n", k)
	fmt.Fprintf(w, "%-10s %-6s %-10s %-12s %-12s %-12s %-10s\n",
		"topology", "n", "diam", "mean route", "mean stretch", "max stretch", "bound")
	for _, tc := range []struct {
		name  string
		build func(n, k int) (*core.Blueprint, *core.Realization, error)
	}{
		{name: "ktree", build: func(n, k int) (*core.Blueprint, *core.Realization, error) {
			kt, err := core.BuildKTree(n, k)
			if err != nil {
				return nil, nil, err
			}
			return kt.Blue, kt.Real, nil
		}},
		{name: "kdiamond", build: func(n, k int) (*core.Blueprint, *core.Realization, error) {
			kd, err := core.BuildKDiamond(n, k)
			if err != nil {
				return nil, nil, err
			}
			return kd.Blue, kd.Real, nil
		}},
	} {
		// K-TREE sizes have even α; the K-DIAMOND rows use odd-α sizes so
		// the instances contain unshared cliques and differ structurally.
		sizes := []int{20, 80, 320}
		if tc.name == "kdiamond" {
			sizes = []int{23, 83, 323}
		}
		for _, n := range sizes {
			blue, real, err := tc.build(n, k)
			if err != nil {
				return err
			}
			router, err := core.NewRouter(blue, real)
			if err != nil {
				return err
			}
			g := real.Graph
			var (
				totalRoute, pairs  int
				totalStretch, maxS float64
			)
			for u := 0; u < n; u++ {
				dist := g.BFSFrom(u)
				for v := 0; v < n; v++ {
					if u == v {
						continue
					}
					path, err := router.Route(u, v)
					if err != nil {
						return err
					}
					hops := len(path) - 1
					if hops > router.MaxRouteLength() {
						return fmt.Errorf("route %d->%d length %d over bound %d", u, v, hops, router.MaxRouteLength())
					}
					stretch := float64(hops) / float64(dist[v])
					totalRoute += hops
					totalStretch += stretch
					if stretch > maxS {
						maxS = stretch
					}
					pairs++
				}
			}
			fmt.Fprintf(w, "%-10s %-6d %-10d %-12.2f %-12.2f %-12.2f %-10d\n",
				tc.name, n, g.Diameter(),
				float64(totalRoute)/float64(pairs),
				totalStretch/float64(pairs), maxS, router.MaxRouteLength())
		}
	}
	fmt.Fprintln(w, "shape: routes stay within 3·height+3 with small constant stretch — no routing")
	fmt.Fprintln(w, "tables, just the blueprint; this operationalizes the Lemma 3 path construction")
	return nil
}

// runE20 compares forwarding-load concentration: betweenness centrality of
// every node under shortest-path traffic. The circulant baseline spreads
// load perfectly; the tree-shaped LHGs pay for their logarithmic diameter
// by concentrating load on root copies — the engineering trade-off behind
// the constructions.
func runE20(w io.Writer) error {
	const (
		n = 59 // k-regular for harary (even k·n) and K-DIAMOND (odd α, with clique)
		k = 4
	)
	fmt.Fprintf(w, "n=%d, k=%d, normalized betweenness centrality (shortest-path load)\n", n, k)
	fmt.Fprintf(w, "%-10s %-10s %-10s %-10s %-14s\n", "topology", "mean", "max", "p95", "max/mean")
	for _, c := range []lhg.Constraint{lhg.Harary, lhg.KTree, lhg.KDiamond} {
		g, err := lhg.Build(expCtx, c, n, k)
		if err != nil {
			return err
		}
		bc := g.Betweenness()
		sorted := append([]float64(nil), bc...)
		sort.Float64s(sorted)
		mean := 0.0
		for _, v := range bc {
			mean += v
		}
		mean /= float64(len(bc))
		maxV := sorted[len(sorted)-1]
		p95 := sorted[len(sorted)*95/100]
		fmt.Fprintf(w, "%-10s %-10.4f %-10.4f %-10.4f %-14.1f\n", c, mean, maxV, p95, maxV/mean)
	}
	fmt.Fprintln(w, "shape: harary is perfectly balanced (max/mean = 1); LHGs trade balance for")
	fmt.Fprintln(w, "latency, concentrating load on the k root copies")
	return nil
}

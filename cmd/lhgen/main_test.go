package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunStats(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-constraint", "ktree", "-n", "10", "-k", "3", "-format", "stats"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"constraint: ktree", "nodes: 10", "edges: 15", "regular: true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDOT(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-constraint", "kdiamond", "-n", "8", "-k", "3", "-format", "dot", "-name", "fig3b"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph fig3b {") {
		t.Fatalf("DOT header missing:\n%s", out)
	}
	for _, want := range []string{`label="R0"`, `label="U`, " -- "} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q", want)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "12", "-k", "3", "-format", "json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Nodes int      `json:"nodes"`
		Edges [][2]int `json:"edges"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if decoded.Nodes != 12 {
		t.Fatalf("nodes = %d, want 12", decoded.Nodes)
	}
	if len(decoded.Edges) == 0 {
		t.Fatal("no edges in JSON output")
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad constraint", args: []string{"-constraint", "nope"}},
		{name: "bad format", args: []string{"-format", "xml"}},
		{name: "unbuildable pair", args: []string{"-constraint", "ktree", "-n", "5", "-k", "3"}},
		{name: "bad flag", args: []string{"-bogus"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tt.args, &buf); err == nil {
				t.Fatal("run succeeded, want error")
			}
		})
	}
}

func TestRunSVG(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-constraint", "kdiamond", "-n", "13", "-k", "3", "-format", "svg"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatalf("not an SVG document:\n%.120s", out)
	}
	if !strings.Contains(out, ">R0<") {
		t.Fatal("blueprint labels missing from SVG")
	}
}

func TestRunSVGHararyFallsBackToCircular(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-constraint", "harary", "-n", "10", "-k", "3", "-format", "svg"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Fatal("fallback circular SVG missing")
	}
}

func TestRunBlueprintFormat(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-constraint", "ktree", "-n", "10", "-k", "3", "-format", "blueprint"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		K      int   `json:"k"`
		Parent []int `json:"parent"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("blueprint output is not JSON: %v", err)
	}
	if decoded.K != 3 || len(decoded.Parent) == 0 {
		t.Fatalf("blueprint content wrong: %+v", decoded)
	}
	if err := run([]string{"-constraint", "harary", "-format", "blueprint"}, &buf); err == nil {
		t.Fatal("harary has no blueprint")
	}
}

func TestRunVariantSeed(t *testing.T) {
	var a, b, c bytes.Buffer
	if err := run([]string{"-constraint", "ktree", "-n", "21", "-k", "3", "-format", "json", "-variant", "1"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-constraint", "ktree", "-n", "21", "-k", "3", "-format", "json", "-variant", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must reproduce the same witness")
	}
	if err := run([]string{"-constraint", "harary", "-variant", "1"}, &c); err == nil {
		t.Fatal("harary has no variants")
	}
}

package graph

// BFSTree returns the breadth-first spanning tree of g rooted at src as a
// new graph over the same node ids (n-1 edges when g is connected). It is
// the classic fragile-dissemination baseline: flooding over a tree uses the
// fewest messages possible but any single node or link failure partitions
// it.
func (g *Graph) BFSTree(src int) *Graph {
	t := New(g.Order())
	if src < 0 || src >= g.Order() {
		return t
	}
	visited := make([]bool, g.Order())
	visited[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if !visited[v] {
				visited[v] = true
				t.MustAddEdge(u, v)
				queue = append(queue, v)
			}
		}
	}
	return t
}

// Package graph provides the undirected-graph substrate used by every other
// module in this repository: adjacency storage, traversal, distance and
// degree queries, and deterministic iteration order.
//
// Nodes are dense non-negative integers in [0, Order()). All operations are
// deterministic: neighbor sets are kept sorted so that algorithms built on
// top (constructions, floods, encodings) are reproducible run to run.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph (no self-loops, no multi-edges) over
// nodes 0..n-1. The zero value is an empty graph with no nodes.
type Graph struct {
	adj   [][]int // sorted adjacency lists
	edges int
}

// New returns an empty graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]int, n)}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int, len(g.adj)), edges: g.edges}
	for v, nbrs := range g.adj {
		c.adj[v] = append([]int(nil), nbrs...)
	}
	return c
}

// Order returns the number of nodes.
func (g *Graph) Order() int { return len(g.adj) }

// Size returns the number of edges.
func (g *Graph) Size() int { return g.edges }

// AddNode appends a new isolated node and returns its id.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge inserts the undirected edge (u,v). It returns an error if either
// endpoint is out of range or u == v. Adding an existing edge is a no-op.
func (g *Graph) AddEdge(u, v int) error {
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	if g.HasEdge(u, v) {
		return nil
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge for callers that guarantee valid endpoints, such as
// the internal constructions; it panics on invalid input (a programming
// error, not a runtime condition).
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge (u,v) if present and reports
// whether an edge was removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) || !g.HasEdge(u, v) {
		return false
	}
	g.adj[u] = removeSorted(g.adj[u], v)
	g.adj[v] = removeSorted(g.adj[v], u)
	g.edges--
	return true
}

// HasEdge reports whether the edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	nbrs := g.adj[u]
	i := sort.SearchInts(nbrs, v)
	return i < len(nbrs) && nbrs[i] == v
}

// Degree returns the degree of node v, or 0 if v is out of range.
func (g *Graph) Degree(v int) int {
	if v < 0 || v >= len(g.adj) {
		return 0
	}
	return len(g.adj[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice is a
// copy; callers may mutate it freely.
func (g *Graph) Neighbors(v int) []int {
	if v < 0 || v >= len(g.adj) {
		return nil
	}
	return append([]int(nil), g.adj[v]...)
}

// EachNeighbor calls fn for every neighbor of v in ascending order. It
// avoids the copy made by Neighbors for hot paths.
func (g *Graph) EachNeighbor(v int, fn func(w int)) {
	if v < 0 || v >= len(g.adj) {
		return
	}
	for _, w := range g.adj[v] {
		fn(w)
	}
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int
}

// Edges returns every edge exactly once, ordered by (U,V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	return out
}

// Degrees returns the degree sequence indexed by node.
func (g *Graph) Degrees() []int {
	out := make([]int, len(g.adj))
	for v, nbrs := range g.adj {
		out[v] = len(nbrs)
	}
	return out
}

// MinDegree returns the smallest degree and one node attaining it.
// It returns (-1, -1) for the empty graph.
func (g *Graph) MinDegree() (deg, node int) {
	if len(g.adj) == 0 {
		return -1, -1
	}
	deg, node = len(g.adj[0]), 0
	for v := 1; v < len(g.adj); v++ {
		if len(g.adj[v]) < deg {
			deg, node = len(g.adj[v]), v
		}
	}
	return deg, node
}

// MaxDegree returns the largest degree and one node attaining it.
// It returns (-1, -1) for the empty graph.
func (g *Graph) MaxDegree() (deg, node int) {
	if len(g.adj) == 0 {
		return -1, -1
	}
	deg, node = len(g.adj[0]), 0
	for v := 1; v < len(g.adj); v++ {
		if len(g.adj[v]) > deg {
			deg, node = len(g.adj[v]), v
		}
	}
	return deg, node
}

// IsRegular reports whether every node has degree exactly k.
func (g *Graph) IsRegular(k int) bool {
	for _, nbrs := range g.adj {
		if len(nbrs) != k {
			return false
		}
	}
	return true
}

func (g *Graph) check(v int) error {
	if v < 0 || v >= len(g.adj) {
		return fmt.Errorf("graph: node %d out of range [0,%d)", v, len(g.adj))
	}
	return nil
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

func TestBudgetEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 16})
	var resp BudgetResponse
	url := ts.URL + "/v1/budget?constraint=ktree&n=14&k=3&source=0"
	if status := getJSON(t, url, &resp); status != 200 {
		t.Fatalf("status %d", status)
	}
	if resp.Cached {
		t.Fatal("first analysis cannot be cached")
	}
	if resp.Report == nil || resp.Report.K != 3 {
		t.Fatalf("report: %+v", resp.Report)
	}
	// The report prices the guarantee; the derived guard enforces it.
	if resp.Report.FrameCeiling <= 0 || resp.Guard.RetryBudget <= 0 {
		t.Fatalf("ceiling/guard not derived: report %+v guard %+v", resp.Report, resp.Guard)
	}
	// The policy echoes back with defaults applied.
	if resp.Policy.Retries != 12 {
		t.Fatalf("default retries = %d, want 12", resp.Policy.Retries)
	}

	// Same triple → cache hit; the analysis is not re-run.
	var again BudgetResponse
	if status := getJSON(t, url, &again); status != 200 || !again.Cached {
		t.Fatalf("second hit: status %d cached %t, want 200 cached", status, again.Cached)
	}

	// A different retry budget is a different key: fresh analysis, and the
	// ceiling moves with the policy.
	var tighter BudgetResponse
	if status := getJSON(t, ts.URL+"/v1/budget?constraint=ktree&n=14&k=3&retries=2", &tighter); status != 200 {
		t.Fatalf("status %d", status)
	}
	if tighter.Cached {
		t.Fatal("distinct policy must not hit the default policy's cache entry")
	}
	if tighter.Report.FrameCeiling >= resp.Report.FrameCeiling {
		t.Fatalf("2-retry ceiling %d not below 12-retry ceiling %d",
			tighter.Report.FrameCeiling, resp.Report.FrameCeiling)
	}
}

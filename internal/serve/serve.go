package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lhg"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
)

// Service telemetry, one family per endpoint plus the shared cache and
// singleflight counters. Latency histograms are bucketed in microseconds so
// the sub-millisecond cache-hit path is visible; timers accumulate totals
// for the JSON report.
var (
	mReqBuild  = obs.NewCounter("serve.build.requests")
	mReqVerify = obs.NewCounter("serve.verify.requests")
	mReqFlood  = obs.NewCounter("serve.flood.requests")
	mReqConstr = obs.NewCounter("serve.constraints.requests")

	mErrBuild  = obs.NewCounter("serve.build.errors")
	mErrVerify = obs.NewCounter("serve.verify.errors")
	mErrFlood  = obs.NewCounter("serve.flood.errors")

	mHitBuild   = obs.NewCounter("serve.build.cache.hits")
	mMissBuild  = obs.NewCounter("serve.build.cache.misses")
	mHitVerify  = obs.NewCounter("serve.verify.cache.hits")
	mMissVerify = obs.NewCounter("serve.verify.cache.misses")
	mHitFlood   = obs.NewCounter("serve.flood.cache.hits")
	mMissFlood  = obs.NewCounter("serve.flood.cache.misses")

	mCoalesced = obs.NewCounter("serve.flight.coalesced")
	gInflight  = obs.NewGauge("serve.inflight")

	latencyBounds = []int64{100, 250, 500, 1000, 2500, 5000, 10000, 50000, 250000, 1000000}
	hLatBuild     = obs.NewHistogram("serve.build.latency_us", latencyBounds...)
	hLatVerify    = obs.NewHistogram("serve.verify.latency_us", latencyBounds...)
	hLatFlood     = obs.NewHistogram("serve.flood.latency_us", latencyBounds...)
	tBuild        = obs.NewTimer("serve.build.time")
	tVerify       = obs.NewTimer("serve.verify.time")
	tFlood        = obs.NewTimer("serve.flood.time")
)

// endpoint bundles the per-endpoint metric handles.
type endpoint struct {
	requests, errors *obs.Counter
	hits, misses     *obs.Counter
	latency          *obs.Histogram
	timer            *obs.Timer
}

var (
	epBuild  = endpoint{mReqBuild, mErrBuild, mHitBuild, mMissBuild, hLatBuild, tBuild}
	epVerify = endpoint{mReqVerify, mErrVerify, mHitVerify, mMissVerify, hLatVerify, tVerify}
	epFlood  = endpoint{mReqFlood, mErrFlood, mHitFlood, mMissFlood, hLatFlood, tFlood}
)

// Options configures a Server. The zero value is usable: background base
// context, a 256-entry cache, no timeout, all cores per campaign.
type Options struct {
	// BaseContext outlives any single request; its cancellation (daemon
	// shutdown) aborts every in-flight computation. nil means Background.
	BaseContext context.Context
	// CacheSize is the LRU capacity in entries (graphs, reports and flood
	// results share one cache). 0 disables caching; negative means the
	// 256-entry default.
	CacheSize int
	// Workers is the per-campaign goroutine budget (0 = all cores). A
	// request may lower it but never raise it above this ceiling.
	Workers int
	// Timeout bounds each computation; exceeding it maps to HTTP 504.
	// Zero means no limit beyond the request's own context.
	Timeout time.Duration
	// DisableSparsify turns off the sparse-certificate verify fast path
	// (lhg.WithSparsify). Reports are bit-identical either way, so cache
	// keys do not depend on it — it is an operational escape hatch only.
	DisableSparsify bool
	// MaxSessions caps the live /v1/reconfigure topology sessions.
	// 0 means the 1024 default; negative disables the endpoint's sessions.
	MaxSessions int
	// Logger receives the structured access and campaign log. nil
	// discards (the zero-config default); pass obs.NewLogger to wire it.
	Logger *slog.Logger
	// StreamHeartbeat is the idle keep-alive period of the SSE streams
	// (GET /v1/verify?stream, GET /v1/reconfigure?stream). 0 means 15s.
	StreamHeartbeat time.Duration
}

// Server is the HTTP service: four endpoints, one LRU cache, one
// singleflight group. It is safe for concurrent use.
type Server struct {
	base     context.Context
	workers  int
	timeout  time.Duration
	sparsify bool
	cache    *lruCache
	flights  *flightGroup
	mux      *http.ServeMux
	inflight atomic.Int64
	log      *slog.Logger

	// Stateful topology sessions for POST /v1/reconfigure.
	sessMu      sync.Mutex
	sessions    map[string]*topoSession
	maxSessions int

	// Live SSE progress feeds: one per in-flight streamed verify campaign
	// (keyed by verify key, removed on completion) and one per watched
	// topology session (keyed by session name, live while watched).
	heartbeat   time.Duration
	feedMu      sync.Mutex
	verifyFeeds map[string]*feed
	sessFeeds   map[string]*feed
}

// New builds a Server from opts.
func New(opts Options) *Server {
	base := opts.BaseContext
	if base == nil {
		base = context.Background()
	}
	size := opts.CacheSize
	if size < 0 {
		size = 256
	}
	maxSessions := opts.MaxSessions
	if maxSessions == 0 {
		maxSessions = 1024
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.NewLogger(nil, slog.LevelInfo)
	}
	heartbeat := opts.StreamHeartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	s := &Server{
		base:        base,
		workers:     opts.Workers,
		timeout:     opts.Timeout,
		sparsify:    !opts.DisableSparsify,
		cache:       newLRU(size),
		flights:     newFlightGroup(base),
		mux:         http.NewServeMux(),
		log:         logger,
		sessions:    make(map[string]*topoSession),
		maxSessions: maxSessions,
		heartbeat:   heartbeat,
		verifyFeeds: make(map[string]*feed),
		sessFeeds:   make(map[string]*feed),
	}
	s.mux.HandleFunc("/v1/build", s.handleBuild)
	s.mux.HandleFunc("/v1/verify", s.handleVerify)
	s.mux.HandleFunc("/v1/flood", s.handleFlood)
	s.mux.HandleFunc("/v1/reconfigure", s.handleReconfigure)
	s.mux.HandleFunc("/v1/constraints", s.handleConstraints)
	return s
}

// Handler returns the root handler serving the /v1 API, wrapped in the
// per-request tracing middleware (traceparent ingestion, X-Trace-Id on
// every response).
func (s *Server) Handler() http.Handler { return s.traced(s.mux) }

// BuildRequest selects one graph: the cache key fields. Seed, when present,
// asks for the deterministic variant drawn from that seed (K-TREE and
// K-DIAMOND only).
type BuildRequest struct {
	Constraint string  `json:"constraint"`
	N          int     `json:"n"`
	K          int     `json:"k"`
	Seed       *uint64 `json:"seed,omitempty"`
}

// VerifyRequest narrows a verification: optional worker override (capped at
// the server budget) and an optional property subset ("P1".."P4"; empty
// means all).
type VerifyRequest struct {
	BuildRequest
	Workers    int      `json:"workers,omitempty"`
	Properties []string `json:"properties,omitempty"`
}

// FloodRequest runs one flood simulation over the selected graph.
type FloodRequest struct {
	BuildRequest
	Source   int          `json:"source"`
	Failures lhg.Failures `json:"failures"`
}

// BuildResponse returns the graph in the lhgen JSON encoding.
type BuildResponse struct {
	Constraint string     `json:"constraint"`
	N          int        `json:"n"`
	K          int        `json:"k"`
	Seed       *uint64    `json:"seed,omitempty"`
	Edges      int        `json:"edges"`
	Cached     bool       `json:"cached"`
	Graph      *lhg.Graph `json:"graph"`
}

// VerifyResponse wraps the full property report.
type VerifyResponse struct {
	Constraint string      `json:"constraint"`
	N          int         `json:"n"`
	K          int         `json:"k"`
	Seed       *uint64     `json:"seed,omitempty"`
	Cached     bool        `json:"cached"`
	IsLHG      bool        `json:"is_lhg"`
	Report     *lhg.Report `json:"report"`
}

// FloodResponse wraps one flood result.
type FloodResponse struct {
	Constraint string           `json:"constraint"`
	N          int              `json:"n"`
	K          int              `json:"k"`
	Seed       *uint64          `json:"seed,omitempty"`
	Source     int              `json:"source"`
	Cached     bool             `json:"cached"`
	Result     *lhg.FloodResult `json:"result"`
}

// ConstraintInfo describes one supported constraint for GET /v1/constraints.
type ConstraintInfo struct {
	Name string `json:"name"`
	// Variants reports whether the constraint accepts a build seed.
	Variants bool `json:"variants"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// parse/validation ----------------------------------------------------------

func (br *BuildRequest) validate() (lhg.Constraint, error) {
	c, err := lhg.ParseConstraint(br.Constraint)
	if err != nil {
		return 0, err
	}
	if br.N <= 0 || br.K <= 0 {
		return 0, fmt.Errorf("serve: need n > 0 and k > 0, got n=%d k=%d", br.N, br.K)
	}
	if br.Seed != nil && c != lhg.KTree && c != lhg.KDiamond {
		return 0, fmt.Errorf("serve: constraint %s has no seeded variants (use ktree or kdiamond)", c)
	}
	return c, nil
}

// parseProperties maps ["P1","P4"] onto the check bitmask; empty means all.
func parseProperties(names []string) (lhg.Properties, error) {
	var p lhg.Properties
	for _, name := range names {
		switch strings.ToUpper(strings.TrimSpace(name)) {
		case "P1":
			p |= lhg.PropNodeConnectivity
		case "P2":
			p |= lhg.PropLinkConnectivity
		case "P3":
			p |= lhg.PropLinkMinimality
		case "P4":
			p |= lhg.PropDiameter
		default:
			return 0, fmt.Errorf("serve: unknown property %q (want P1..P4)", name)
		}
	}
	return p, nil
}

// cache keys ----------------------------------------------------------------

func seedKey(seed *uint64) string {
	if seed == nil {
		return "canonical"
	}
	return fmt.Sprintf("seed=%d", *seed)
}

// graphKey is shared by every endpoint so a verify warms the build cache and
// vice versa. Worker counts are deliberately absent from every key: reports
// are deterministic regardless of parallelism.
func (br *BuildRequest) graphKey(c lhg.Constraint) string {
	return fmt.Sprintf("graph|%s|n=%d|k=%d|%s", c, br.N, br.K, seedKey(br.Seed))
}

func verifyKey(graphKey string, props lhg.Properties) string {
	return fmt.Sprintf("verify|%s|props=%d", graphKey, props)
}

func floodKey(graphKey string, source int, f lhg.Failures) string {
	nodes := append([]int(nil), f.Nodes...)
	sort.Ints(nodes)
	links := append([]lhg.Edge(nil), f.Links...)
	for i, e := range links {
		if e.U > e.V {
			links[i] = lhg.Edge{U: e.V, V: e.U}
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].U != links[j].U {
			return links[i].U < links[j].U
		}
		return links[i].V < links[j].V
	})
	return fmt.Sprintf("flood|%s|src=%d|nodes=%v|links=%v", graphKey, source, nodes, links)
}

// shared plumbing -----------------------------------------------------------

// compute answers one request: cache lookup, then singleflight into fn,
// then cache fill. fn runs under the group's detached context bounded by
// the server timeout; the request's span identity is grafted onto that
// detached context so the campaign's child spans attribute to the
// request that led the flight, while cancellation stays flight-owned.
func (s *Server) compute(ctx context.Context, ep endpoint, key string, fn func(context.Context) (any, error)) (val any, cached bool, err error) {
	sp := trace.FromContext(ctx)
	if v, ok := s.cache.Get(key); ok {
		ep.hits.Inc()
		if sp.Live() {
			sp.Event("cache-hit", trace.Str("key", key))
		}
		return v, true, nil
	}
	ep.misses.Inc()
	if sp.Live() {
		sp.Event("cache-miss", trace.Str("key", key))
	}
	v, err, shared := s.flights.Do(ctx, key, func(runCtx context.Context) (any, error) {
		// Double-check the cache as the flight leader: a request that
		// missed the cache just before a concurrent flight completed and
		// unmapped itself would otherwise re-run the whole campaign. The
		// completing flight fills the cache before it unmaps, so this
		// lookup closes that window.
		if v, ok := s.cache.Get(key); ok {
			return v, nil
		}
		if s.timeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(runCtx, s.timeout)
			defer cancel()
		}
		runCtx, csp := trace.StartSpan(trace.Graft(runCtx, ctx), "serve.campaign")
		if csp.Live() {
			csp.SetAttr(trace.Str("key", key))
		}
		defer csp.End()
		v, err := fn(runCtx)
		if err == nil {
			s.cache.Put(key, v)
		}
		return v, err
	})
	if shared {
		mCoalesced.Inc()
		if sp.Live() {
			sp.Event("coalesced", trace.Str("key", key))
		}
	}
	if err != nil {
		return nil, false, err
	}
	// A coalesced request reports cached=true: it did not pay for the
	// computation, which is what clients use the flag for.
	return v, shared, nil
}

// getGraph resolves the graph for br through the shared cache/flight path.
func (s *Server) getGraph(ctx context.Context, c lhg.Constraint, br *BuildRequest) (*lhg.Graph, bool, error) {
	v, cached, err := s.compute(ctx, epBuild, br.graphKey(c), func(runCtx context.Context) (any, error) {
		if br.Seed != nil {
			return lhg.Build(runCtx, c, br.N, br.K, lhg.WithSeed(*br.Seed))
		}
		return lhg.Build(runCtx, c, br.N, br.K)
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*lhg.Graph), cached, nil
}

// track opens the per-request instrumentation; the returned func closes it.
func (s *Server) track(ep endpoint) func(failed bool, start time.Time) {
	ep.requests.Inc()
	gInflight.Set(s.inflight.Add(1))
	return func(failed bool, start time.Time) {
		gInflight.Set(s.inflight.Add(-1))
		if failed {
			ep.errors.Inc()
			return
		}
		d := time.Since(start)
		ep.latency.Observe(d.Microseconds())
		ep.timer.Observe(d)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError maps computation errors onto HTTP statuses: impossible (n,k)
// pairs are the client's fault (422), timeouts are the gateway's (504), a
// vanished client gets the nginx-convention 499 nobody will read.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, lhg.ErrNotConstructible):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decode request: " + err.Error()})
		return false
	}
	return true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeJSON(w, http.StatusMethodNotAllowed, errorResponse{
		Error: fmt.Sprintf("serve: %s requires %s", r.URL.Path, method),
	})
	return false
}

// handlers ------------------------------------------------------------------

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	start := time.Now()
	done := s.track(epBuild)
	var req BuildRequest
	if !decodeJSON(w, r, &req) {
		done(true, start)
		return
	}
	c, err := req.validate()
	if err != nil {
		done(true, start)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	g, cached, err := s.getGraph(r.Context(), c, &req)
	if err != nil {
		done(true, start)
		writeError(w, err)
		return
	}
	done(false, start)
	writeJSON(w, http.StatusOK, BuildResponse{
		Constraint: c.String(), N: req.N, K: req.K, Seed: req.Seed,
		Edges: g.Size(), Cached: cached, Graph: g,
	})
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && r.URL.Query().Has("stream") {
		s.handleVerifyStream(w, r)
		return
	}
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	start := time.Now()
	done := s.track(epVerify)
	var req VerifyRequest
	if !decodeJSON(w, r, &req) {
		done(true, start)
		return
	}
	c, err := req.validate()
	if err != nil {
		done(true, start)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	props, err := parseProperties(req.Properties)
	if err != nil {
		done(true, start)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	g, _, err := s.getGraph(r.Context(), c, &req.BuildRequest)
	if err != nil {
		done(true, start)
		writeError(w, err)
		return
	}
	workers := clampRequestWorkers(req.Workers, s.workers)
	key := verifyKey(req.graphKey(c), props)
	v, cached, err := s.compute(r.Context(), epVerify, key, func(runCtx context.Context) (any, error) {
		return lhg.Verify(runCtx, g, req.K, lhg.WithWorkers(workers),
			lhg.WithProperties(props), lhg.WithSparsify(s.sparsify))
	})
	if err != nil {
		done(true, start)
		writeError(w, err)
		return
	}
	report := v.(*lhg.Report)
	done(false, start)
	writeJSON(w, http.StatusOK, VerifyResponse{
		Constraint: c.String(), N: req.N, K: req.K, Seed: req.Seed,
		Cached: cached, IsLHG: report.IsLHG(), Report: report,
	})
}

func (s *Server) handleFlood(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	start := time.Now()
	done := s.track(epFlood)
	var req FloodRequest
	if !decodeJSON(w, r, &req) {
		done(true, start)
		return
	}
	c, err := req.validate()
	if err != nil {
		done(true, start)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	g, _, err := s.getGraph(r.Context(), c, &req.BuildRequest)
	if err != nil {
		done(true, start)
		writeError(w, err)
		return
	}
	key := floodKey(req.graphKey(c), req.Source, req.Failures)
	v, cached, err := s.compute(r.Context(), epFlood, key, func(runCtx context.Context) (any, error) {
		return lhg.Flood(runCtx, g, req.Source, lhg.WithFailures(req.Failures))
	})
	if err != nil {
		done(true, start)
		// A bad source or crashed-source request is a client error, not a
		// server fault; the flood kernel reports both as plain errors.
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	res := v.(*lhg.FloodResult)
	done(false, start)
	writeJSON(w, http.StatusOK, FloodResponse{
		Constraint: c.String(), N: req.N, K: req.K, Seed: req.Seed,
		Source: req.Source, Cached: cached, Result: res,
	})
}

func (s *Server) handleConstraints(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	mReqConstr.Inc()
	infos := make([]ConstraintInfo, 0, 4)
	for _, c := range lhg.Constraints() {
		infos = append(infos, ConstraintInfo{
			Name:     c.String(),
			Variants: c == lhg.KTree || c == lhg.KDiamond,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Constraints []ConstraintInfo `json:"constraints"`
	}{infos})
}

// clampRequestWorkers lowers the request's worker ask to the server budget.
// Zero on either side means "all cores", which any explicit ask undercuts.
func clampRequestWorkers(asked, budget int) int {
	if asked <= 0 {
		return budget
	}
	if budget > 0 && asked > budget {
		return budget
	}
	return asked
}

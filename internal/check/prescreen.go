package check

import (
	"math/bits"

	"lhg/internal/flow"
	"lhg/internal/graph"
	"lhg/internal/obs"
)

// Monte Carlo cut prescreen: seeded Karger random-contraction rounds run
// before the exact κ/λ sweeps. Each round contracts random edges until two
// super-nodes remain; the edges crossing the final bipartition are a REAL
// edge cut of the graph, so its size is a certified upper bound U ≥ λ(G).
// The prescreen feeds the exact sweeps two things, neither of which can
// change a result:
//
//   - U is folded into the λ running minimum (λ ≤ U by construction, so
//     min(δ, U, probes) = λ exactly — see flow.SweepHints), tightening the
//     early-exit limit of every probe from the first one on;
//   - the small side of the best cut found is the "critical" node set —
//     the nodes most likely to sit on the small side of a true minimum
//     cut — and probes touching them are scheduled first, so the shared
//     minimum drops as early as possible and the remaining probes
//     early-exit at the lower limit.
//
// A graph whose rounds never beat the trivial star cut δ produces no
// critical nodes and U = δ: the hints degenerate to the historical sweep.
// That routing rate — how many nodes get flagged for confirmation-first
// probing — is pinned by TestPrescreenRoutingRate under the fixed seed.
var (
	mPrescreenRuns     = obs.NewCounter("check.prescreen.runs")
	mPrescreenRounds   = obs.NewCounter("check.prescreen.rounds")
	mPrescreenImproved = obs.NewCounter("check.prescreen.improved")
	mPrescreenCritical = obs.NewCounter("check.prescreen.critical_nodes")
	tPhasePrescreen    = obs.NewTimer("check.phase.prescreen")
)

// PrescreenCutoff is the node-count threshold of the automatic prescreen:
// below it a contraction round costs more bookkeeping than the probe it
// might early-exit, so small graphs keep the historical path (the
// differential fuzz target forces PrescreenAlways to cover them anyway).
const PrescreenCutoff = 512

// prescreenSeed fixes the Karger RNG stream: the prescreen must be a pure
// function of the graph so reports and goldens are reproducible run to run.
const prescreenSeed = 0x6c68672d70726573 // "lhg-pres"

// prescreenEligible mirrors sparsifyEligible for the prescreen policy.
func prescreenEligible(g *graph.Graph, policy Prescreen) bool {
	if policy == PrescreenOff {
		return false
	}
	if g.Order() < 4 || g.Size() == 0 {
		return false
	}
	return policy == PrescreenAlways || g.Order() >= PrescreenCutoff
}

// splitmix64 advances the seed and returns the next value of the splitmix64
// stream — the same generator the fuzz harness uses, chosen for statelessness.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// prescreenRounds is the round budget for a graph of n nodes: Karger needs
// many rounds to *guarantee* hitting a minimum cut, but the prescreen only
// has to find a good cut often enough to pay for itself, so a logarithmic
// budget keeps the whole pass at O(m log n).
func prescreenRounds(n int) int {
	return 2 * bits.Len(uint(n))
}

// prescreenHints runs the seeded contraction rounds on g and returns the
// sweep hints. Deterministic for a fixed graph.
func prescreenHints(g *graph.Graph) flow.SweepHints {
	n := g.Order()
	edges := g.Edges()
	mPrescreenRuns.Inc()
	minDeg, _ := g.MinDegree()
	best := minDeg // the star of a minimum-degree node is always a real cut
	var critical []int
	uf := graph.NewUnionFind(n)
	perm := make([]int32, len(edges))
	for i := range perm {
		perm[i] = int32(i)
	}
	rng := prescreenSeed ^ uint64(n)<<32 ^ uint64(len(edges))
	rounds := prescreenRounds(n)
	for round := 0; round < rounds; round++ {
		mPrescreenRounds.Inc()
		uf.Reset()
		// Contract edges in a fresh Fisher–Yates order until two
		// super-nodes remain (or edges run out — then g is disconnected
		// and the crossing count below is 0, the exact λ).
		for i := len(perm) - 1; i > 0; i-- {
			j := int(splitmix64(&rng) % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		remaining := n
		for _, ei := range perm {
			if uf.Union(edges[ei].U, edges[ei].V) {
				remaining--
				if remaining == 2 {
					break
				}
			}
		}
		cut := 0
		for _, e := range edges {
			if uf.Find(e.U) != uf.Find(e.V) {
				cut++
			}
		}
		if cut >= best {
			continue
		}
		best = cut
		// The smaller side of the bipartition is the critical set. With
		// more than two super-nodes left (disconnected graph) the split is
		// "node 0's component vs the rest", still a real 0-cut.
		r0 := uf.Find(0)
		side := make([]int, 0, n/2)
		for v := 0; v < n; v++ {
			if uf.Find(v) == r0 {
				side = append(side, v)
			}
		}
		if len(side) > n-len(side) {
			inv := make([]int, 0, n-len(side))
			for v := 0; v < n; v++ {
				if uf.Find(v) != r0 {
					inv = append(inv, v)
				}
			}
			side = inv
		}
		critical = side
	}
	if best < minDeg {
		mPrescreenImproved.Inc()
		mPrescreenCritical.Add(int64(len(critical)))
	}
	return flow.SweepHints{Upper: best, Critical: critical}
}

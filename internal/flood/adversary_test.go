package flood

import (
	"testing"

	"lhg/internal/harary"
	"lhg/internal/sim"
)

func TestRandomNodeFailuresNeverHitSource(t *testing.T) {
	g := cycle(12)
	rng := sim.NewRNG(1)
	for trial := 0; trial < 50; trial++ {
		f, err := RandomNodeFailures(g, 5, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Nodes) != 4 {
			t.Fatalf("drew %d failures, want 4", len(f.Nodes))
		}
		seen := map[int]bool{}
		for _, v := range f.Nodes {
			if v == 5 {
				t.Fatal("source crashed")
			}
			if seen[v] {
				t.Fatal("duplicate failure")
			}
			seen[v] = true
		}
	}
}

func TestRandomNodeFailuresErrors(t *testing.T) {
	g := cycle(5)
	rng := sim.NewRNG(1)
	if _, err := RandomNodeFailures(g, 0, 5, rng); err == nil {
		t.Fatal("failing all nodes must error")
	}
	if _, err := RandomNodeFailures(g, 0, -1, rng); err == nil {
		t.Fatal("negative failure count must error")
	}
}

func TestRandomLinkFailures(t *testing.T) {
	g := cycle(10)
	rng := sim.NewRNG(2)
	f, err := RandomLinkFailures(g, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Links) != 3 {
		t.Fatalf("drew %d link failures, want 3", len(f.Links))
	}
	for _, e := range f.Links {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("failed link %v does not exist", e)
		}
	}
	if _, err := RandomLinkFailures(g, 11, rng); err == nil {
		t.Fatal("failing more links than exist must error")
	}
}

func TestAdversarialBelowKCannotPartition(t *testing.T) {
	// On a 4-connected Harary graph, any 3 adversarial failures leave the
	// flood complete.
	g, err := harary.Build(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f <= 3; f++ {
		fails, err := AdversarialNodeFailures(g, 0, f)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, 0, fails)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("f=%d adversarial failures partitioned a 4-connected graph: %s", f, res)
		}
	}
}

func TestAdversarialAtKPartitions(t *testing.T) {
	// With f = κ failures the adversary finds a real cut and the flood
	// misses somebody.
	g, err := harary.Build(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	fails, err := AdversarialNodeFailures(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, fails)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatalf("adversary failed to cut a 4-connected graph with 4 failures: %s", res)
	}
}

func TestAdversarialZeroFailures(t *testing.T) {
	g := cycle(6)
	f, err := AdversarialNodeFailures(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Nodes) != 0 {
		t.Fatalf("f=0 returned %v", f.Nodes)
	}
}

func TestAdversarialErrors(t *testing.T) {
	g := cycle(5)
	if _, err := AdversarialNodeFailures(g, 0, 5); err == nil {
		t.Fatal("failing all nodes must error")
	}
}

func TestReliabilityPerfectBelowK(t *testing.T) {
	g, err := harary.Build(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	for f := 0; f <= 2; f++ {
		rel, err := Reliability(g, 0, f, 60, rng)
		if err != nil {
			t.Fatal(err)
		}
		if rel != 1.0 {
			t.Fatalf("reliability at f=%d is %v, want 1.0 (graph is 3-connected)", f, rel)
		}
	}
}

func TestReliabilityDegradesOnFragileGraph(t *testing.T) {
	// A star dies whenever the hub is among the failures.
	g := star(10)
	rng := sim.NewRNG(11)
	rel, err := Reliability(g, 1, 1, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The single failure hits the hub with probability 1/9.
	if rel > 0.99 || rel < 0.7 {
		t.Fatalf("star reliability = %v, want roughly 8/9", rel)
	}
}

func TestReliabilityErrors(t *testing.T) {
	g := cycle(5)
	if _, err := Reliability(g, 0, 1, 0, sim.NewRNG(1)); err == nil {
		t.Fatal("zero trials must error")
	}
}

func TestAdversarialLinkFailuresBelowLambda(t *testing.T) {
	g, err := harary.Build(18, 4)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f <= 3; f++ {
		fails, err := AdversarialLinkFailures(g, 0, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(fails.Links) != f {
			t.Fatalf("drew %d link failures, want %d", len(fails.Links), f)
		}
		res, err := Run(g, 0, fails)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("f=%d link failures cut a 4-link-connected graph: %s", f, res)
		}
	}
}

func TestAdversarialLinkFailuresAtLambda(t *testing.T) {
	g, err := harary.Build(18, 4)
	if err != nil {
		t.Fatal(err)
	}
	fails, err := AdversarialLinkFailures(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, fails)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatalf("an actual minimum edge cut must partition the flood: %s", res)
	}
}

func TestAdversarialLinkFailuresErrors(t *testing.T) {
	g := cycle(5)
	if _, err := AdversarialLinkFailures(g, 0, 99); err == nil {
		t.Fatal("failing more links than exist must error")
	}
	f, err := AdversarialLinkFailures(g, 0, 0)
	if err != nil || len(f.Links) != 0 {
		t.Fatalf("f=0 must be a no-op: %v %v", f, err)
	}
}

func TestLinkReliabilityPerfectBelowK(t *testing.T) {
	g, err := harary.Build(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(8)
	for f := 0; f <= 2; f++ {
		rel, err := LinkReliability(g, 0, f, 60, rng)
		if err != nil {
			t.Fatal(err)
		}
		if rel != 1.0 {
			t.Fatalf("link reliability at f=%d is %v, want 1.0", f, rel)
		}
	}
	if _, err := LinkReliability(g, 0, 1, 0, rng); err == nil {
		t.Fatal("zero trials must error")
	}
}

func TestLinkReliabilityDegradesOnTree(t *testing.T) {
	// On a spanning tree any failed link partitions the flood.
	g, err := harary.Build(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	tree := g.BFSTree(0)
	rel, err := LinkReliability(tree, 0, 1, 100, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if rel != 0 {
		t.Fatalf("tree link reliability at f=1 is %v, want 0", rel)
	}
}

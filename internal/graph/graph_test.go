package graph

import (
	"testing"
	"testing/quick"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New(5)
	if g.Order() != 5 {
		t.Fatalf("Order = %d, want 5", g.Order())
	}
	if g.Size() != 0 {
		t.Fatalf("Size = %d, want 0", g.Size())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Fatalf("Degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
}

func TestNewNegativeClampsToZero(t *testing.T) {
	if g := New(-3); g.Order() != 0 {
		t.Fatalf("Order = %d, want 0", g.Order())
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing in one direction")
	}
	if g.Size() != 1 {
		t.Fatalf("Size = %d, want 1", g.Size())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("degrees not updated")
	}
}

func TestAddEdgeDuplicateIsNoop(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 1 {
		t.Fatalf("Size = %d after duplicate add, want 1", g.Size())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	tests := []struct {
		name string
		u, v int
	}{
		{name: "self loop", u: 1, v: 1},
		{name: "u out of range", u: -1, v: 0},
		{name: "v out of range", u: 0, v: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.u, tt.v); err == nil {
				t.Fatalf("AddEdge(%d,%d) succeeded, want error", tt.u, tt.v)
			}
		})
	}
	if g.Size() != 0 {
		t.Fatal("failed adds must not change the graph")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0) = false, want true")
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge (0,1) still present")
	}
	if g.Size() != 1 {
		t.Fatalf("Size = %d, want 1", g.Size())
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("removing a missing edge must return false")
	}
	if g.RemoveEdge(0, 99) {
		t.Fatal("removing an out-of-range edge must return false")
	}
}

func TestAddNode(t *testing.T) {
	g := New(2)
	id := g.AddNode()
	if id != 2 {
		t.Fatalf("AddNode = %d, want 2", id)
	}
	if g.Order() != 3 {
		t.Fatalf("Order = %d, want 3", g.Order())
	}
	if err := g.AddEdge(0, id); err != nil {
		t.Fatalf("AddEdge to new node: %v", err)
	}
}

func TestNeighborsSortedAndCopied(t *testing.T) {
	g := New(5)
	for _, v := range []int{4, 1, 3} {
		g.MustAddEdge(0, v)
	}
	nbrs := g.Neighbors(0)
	want := []int{1, 3, 4}
	if len(nbrs) != len(want) {
		t.Fatalf("Neighbors = %v, want %v", nbrs, want)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", nbrs, want)
		}
	}
	nbrs[0] = 99
	if g.Neighbors(0)[0] != 1 {
		t.Fatal("Neighbors must return a copy")
	}
	if g.Neighbors(-1) != nil || g.Neighbors(9) != nil {
		t.Fatal("out-of-range Neighbors must be nil")
	}
}

func TestEachNeighborOrder(t *testing.T) {
	g := New(4)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 1)
	var got []int
	g.EachNeighbor(2, func(w int) { got = append(got, w) })
	want := []int{0, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EachNeighbor order %v, want %v", got, want)
		}
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(4)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(2, 1)
	edges := g.Edges()
	want := []Edge{{0, 2}, {1, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating the clone changed the original")
	}
	if c.Size() != 2 || g.Size() != 1 {
		t.Fatalf("sizes: clone=%d orig=%d, want 2 and 1", c.Size(), g.Size())
	}
}

func TestDegreeStats(t *testing.T) {
	g := New(4) // star around 0 plus an isolated node 3
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	minDeg, minNode := g.MinDegree()
	if minDeg != 0 || minNode != 3 {
		t.Fatalf("MinDegree = (%d,%d), want (0,3)", minDeg, minNode)
	}
	maxDeg, maxNode := g.MaxDegree()
	if maxDeg != 2 || maxNode != 0 {
		t.Fatalf("MaxDegree = (%d,%d), want (2,0)", maxDeg, maxNode)
	}
	degs := g.Degrees()
	want := []int{2, 1, 1, 0}
	for i := range want {
		if degs[i] != want[i] {
			t.Fatalf("Degrees = %v, want %v", degs, want)
		}
	}
}

func TestDegreeStatsEmpty(t *testing.T) {
	var g Graph
	if d, v := g.MinDegree(); d != -1 || v != -1 {
		t.Fatalf("MinDegree on empty = (%d,%d), want (-1,-1)", d, v)
	}
	if d, v := g.MaxDegree(); d != -1 || v != -1 {
		t.Fatalf("MaxDegree on empty = (%d,%d), want (-1,-1)", d, v)
	}
}

func TestIsRegular(t *testing.T) {
	g := cycle(5)
	if !g.IsRegular(2) {
		t.Fatal("C5 must be 2-regular")
	}
	if g.IsRegular(3) {
		t.Fatal("C5 is not 3-regular")
	}
	g.MustAddEdge(0, 2)
	if g.IsRegular(2) {
		t.Fatal("C5 plus a chord is not 2-regular")
	}
}

// cycle returns the n-cycle 0-1-...-n-1-0.
func cycle(n int) *Graph {
	g := New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n)
	}
	return g
}

// path returns the n-path 0-1-...-n-1.
func path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1)
	}
	return g
}

// complete returns K_n.
func complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func TestPropertyEdgeCountMatchesHandshake(t *testing.T) {
	// For random graphs, sum of degrees equals twice the edge count and
	// every reported edge exists in both adjacency lists.
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		g := randomGraph(n, uint64(seed))
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		if sum != 2*g.Size() {
			return false
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) || e.U >= e.V {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRemoveUndoesAdd(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		g := randomGraph(n, uint64(seed))
		before := g.Size()
		u, v := int(seed)%n, int(seed/7)%n
		if u == v {
			return true
		}
		had := g.HasEdge(u, v)
		if err := g.AddEdge(u, v); err != nil {
			return false
		}
		if !g.RemoveEdge(u, v) {
			return false
		}
		if had {
			// Edge pre-existed: add was a no-op, remove deleted it.
			return g.Size() == before-1
		}
		return g.Size() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomGraph builds a deterministic pseudo-random graph on n nodes.
func randomGraph(n int, seed uint64) *Graph {
	g := New(n)
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if next()%3 == 0 {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

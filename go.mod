module lhg

go 1.22

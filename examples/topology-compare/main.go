// Topology comparison: the trade-off table a system designer would consult.
// For a range of system sizes it builds all four constructions and compares
// edge budget, diameter, flood latency and whether the construction exists
// at all (JD has gaps; the constraint-based builders do not).
//
//	go run ./examples/topology-compare
package main

import (
	"context"
	"fmt"
	"log"

	"lhg"
)

func main() {
	ctx := context.Background()
	const k = 4
	sizes := []int{16, 25, 40, 63, 100, 158, 251}

	fmt.Printf("k = %d (tolerates %d arbitrary failures)\n\n", k, k-1)
	fmt.Printf("%-10s %-8s %-8s %-8s %-9s %-9s %-8s\n",
		"topology", "n", "edges", "diam", "rounds", "regular", "exists")
	for _, n := range sizes {
		for _, c := range lhg.Constraints() {
			if !lhg.Exists(c, n, k) {
				fmt.Printf("%-10s %-8d %-8s %-8s %-9s %-9s %-8s\n",
					c, n, "-", "-", "-", "-", "NO")
				continue
			}
			g, err := lhg.Build(ctx, c, n, k)
			if err != nil {
				log.Fatal(err)
			}
			res, err := lhg.Flood(ctx, g, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-8d %-8d %-8d %-9d %-9t %-8s\n",
				c, n, g.Size(), g.Diameter(), res.Rounds, g.IsRegular(k), "yes")
		}
		fmt.Println()
	}

	fmt.Println("reading guide:")
	fmt.Println("  harary   — minimum edges always, but diameter (and latency) grows linearly")
	fmt.Println("  jd       — logarithmic diameter, but many sizes are unbuildable")
	fmt.Println("  ktree    — every n >= 2k buildable; k-regular on the coarse grid 2k+2a(k-1)")
	fmt.Println("  kdiamond — every n >= 2k buildable; k-regular on the dense grid 2k+a(k-1)")
}

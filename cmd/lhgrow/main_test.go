package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
)

func TestRunEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-constraint", "kdiamond", "-k", "3", "-joins", "6"}, &buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	lastN := 0
	for sc.Scan() {
		var rec opRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if rec.N <= lastN {
			t.Fatalf("sizes must increase: %d after %d", rec.N, lastN)
		}
		lastN = rec.N
		if len(rec.Added) == 0 {
			t.Fatalf("every join adds links: %+v", rec)
		}
		lines++
	}
	if lines != 6 {
		t.Fatalf("got %d JSON lines, want 6", lines)
	}
	if lastN != 12 {
		t.Fatalf("final n = %d, want 12", lastN)
	}
}

func TestRunRegularFlagMatchesTheorem(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-constraint", "kdiamond", "-k", "3", "-joins", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec opRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		// Theorem 6 at k=3: regular iff n even.
		if rec.Regular != (rec.N%2 == 0) {
			t.Fatalf("n=%d regular=%t contradicts Theorem 6", rec.N, rec.Regular)
		}
	}
}

func TestRunSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-constraint", "ktree", "-k", "4", "-joins", "50", "-summary"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"constraint: ktree", "final n: 58", "mean churn:", "max churn:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "{") {
		t.Fatal("summary mode must not emit JSON lines")
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad grower", args: []string{"-constraint", "harary"}},
		{name: "bad k", args: []string{"-constraint", "ktree", "-k", "2"}},
		{name: "negative joins", args: []string{"-joins", "-1"}},
		{name: "bad flag", args: []string{"-zap"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tt.args, &buf); err == nil {
				t.Fatal("run succeeded, want error")
			}
		})
	}
}

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestGolden pins the exact CLI output — JSON trace lines and the summary
// block — against checked-in golden files. The engines are deterministic,
// so any drift is a real output-format or surgery change. Regenerate with
// `go test ./cmd/lhgrow -run TestGolden -update`.
func TestGolden(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		golden string
	}{
		{"mixed trace", []string{"-constraint", "ktree", "-k", "3", "-trace", "jjjlljl"},
			"testdata/trace_ktree_k3.golden"},
		{"summary", []string{"-constraint", "kdiamond", "-k", "3", "-joins", "8", "-leaves", "4", "-summary"},
			"testdata/summary_kdiamond_k3.golden"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatal(err)
			}
			if *update {
				if err := os.WriteFile(tc.golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", tc.golden, buf.Bytes(), want)
			}
		})
	}
}

// TestLeaveIsInverseSurgery replays a grown overlay backwards and checks
// each leave's delta is the join's with added and removed swapped.
func TestLeaveIsInverseSurgery(t *testing.T) {
	var grow, shrink bytes.Buffer
	if err := run([]string{"-constraint", "kdiamond", "-k", "4", "-joins", "6"}, &grow); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-constraint", "kdiamond", "-k", "4", "-joins", "6", "-leaves", "6"}, &shrink); err != nil {
		t.Fatal(err)
	}
	var joins, all []opRecord
	for sc := bufio.NewScanner(&grow); sc.Scan(); {
		var rec opRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		joins = append(joins, rec)
	}
	for sc := bufio.NewScanner(&shrink); sc.Scan(); {
		var rec opRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		all = append(all, rec)
	}
	leaves := all[6:]
	if len(leaves) != 6 {
		t.Fatalf("got %d leave records, want 6", len(leaves))
	}
	for i, l := range leaves {
		j := joins[len(joins)-1-i] // leave i undoes join count-1-i
		if l.Op != "leave" || l.N != j.N-1 {
			t.Fatalf("leave %d: op=%s n=%d, want leave at n=%d", i, l.Op, l.N, j.N-1)
		}
		if !pairSetEqual(l.Added, j.Removed) || !pairSetEqual(l.Removed, j.Added) {
			t.Fatalf("leave %d is not the inverse of join at n=%d:\nleave %+v\njoin  %+v", i, j.N, l, j)
		}
	}
}

func pairSetEqual(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[[2]int]int, len(a))
	for _, p := range a {
		if p[0] > p[1] {
			p[0], p[1] = p[1], p[0]
		}
		set[p]++
	}
	for _, p := range b {
		if p[0] > p[1] {
			p[0], p[1] = p[1], p[0]
		}
		set[p]--
		if set[p] < 0 {
			return false
		}
	}
	return true
}

// TestSummarySeparatesSetupAndTeardown is the regression test for the old
// -summary bug that folded added and removed links into one number.
func TestSummarySeparatesSetupAndTeardown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-constraint", "ktree", "-k", "3", "-joins", "4", "-leaves", "4", "-summary"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var added, removed int
	for _, line := range strings.Split(out, "\n") {
		fmt.Sscanf(line, "links added: %d", &added)
		fmt.Sscanf(line, "links removed: %d", &removed)
	}
	if added == 0 || removed == 0 {
		t.Fatalf("summary must report setup and teardown separately:\n%s", out)
	}
	// The run returns to its start size, so teardown mirrors setup exactly.
	if added != removed {
		t.Fatalf("round-trip churn asymmetric: added %d, removed %d:\n%s", added, removed, out)
	}
}

func TestTraceErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad trace char", args: []string{"-trace", "jjx"}},
		{name: "trace with joins", args: []string{"-trace", "jj", "-joins", "2"}},
		{name: "negative leaves", args: []string{"-leaves", "-1"}},
		{name: "leave below floor", args: []string{"-constraint", "ktree", "-k", "3", "-trace", "l"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tt.args, &buf); err == nil {
				t.Fatal("run succeeded, want error")
			}
		})
	}
}

package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DOT writes g in Graphviz DOT format. Labels maps node ids to display
// labels; nodes missing from the map use their numeric id.
func (g *Graph) DOT(w io.Writer, name string, labels map[int]string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "graph %s {\n", sanitizeDOTName(name))
	for v := 0; v < g.Order(); v++ {
		label := labels[v]
		if label == "" {
			label = strconv.Itoa(v)
		}
		fmt.Fprintf(bw, "  n%d [label=%q];\n", v, label)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  n%d -- n%d;\n", e.U, e.V)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// jsonGraph is the serialized form of a Graph.
type jsonGraph struct {
	Nodes int      `json:"nodes"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON encodes g as {"nodes": n, "edges": [[u,v], ...]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: g.Order(), Edges: make([][2]int, 0, g.Size())}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, [2]int{e.U, e.V})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes the format produced by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	edges := make([]Edge, len(jg.Edges))
	for i, e := range jg.Edges {
		edges[i] = Edge{U: e[0], V: e[1]}
	}
	ng, err := FromEdges(jg.Nodes, edges)
	if err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	*g = *ng
	return nil
}

// String returns a compact human-readable summary such as
// "graph(n=10, m=15, degmin=3, degmax=3)".
func (g *Graph) String() string {
	minDeg, _ := g.MinDegree()
	maxDeg, _ := g.MaxDegree()
	return fmt.Sprintf("graph(n=%d, m=%d, degmin=%d, degmax=%d)",
		g.Order(), g.Size(), minDeg, maxDeg)
}

func sanitizeDOTName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "G"
	}
	return b.String()
}

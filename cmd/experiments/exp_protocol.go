package main

import (
	"fmt"
	"io"

	"lhg"
	"lhg/internal/proc"
	"lhg/internal/sim"
	"lhg/internal/spectral"
)

// runE17 executes the flooding *protocol* (per-process state, per-link
// latency, crashes at arbitrary instants including mid-forwarding) and
// measures the reliable-broadcast properties across topologies: validity
// (the correct source's message reaches every correct process) and
// agreement (no correct process is left out when another delivered).
func runE17(w io.Writer) error {
	const (
		n      = 40
		k      = 4
		trials = 120
	)
	fmt.Fprintf(w, "n=%d, k=%d, %d trials/cell; crashes strike at random instants mid-flood\n", n, k, trials)
	fmt.Fprintf(w, "%-10s %-4s %-12s %-12s %-14s\n", "topology", "f", "validity", "agreement", "worst latency")
	for _, c := range []lhg.Constraint{lhg.Harary, lhg.KTree, lhg.KDiamond} {
		g, err := lhg.Build(expCtx, c, n, k)
		if err != nil {
			return err
		}
		for _, f := range []int{k - 1, k} {
			rng := sim.NewRNG(uint64(9000 + f))
			validity, agreement := 0, 0
			var worst int64
			for trial := 0; trial < trials; trial++ {
				opts := []proc.Option{proc.WithSendOverhead(1)}
				for _, v := range rng.Sample(n-1, f) {
					opts = append(opts, proc.WithCrashAt(v+1, int64(rng.Intn(10))))
				}
				net, err := proc.NewNetwork(g, opts...)
				if err != nil {
					return err
				}
				mid, err := net.Broadcast(0, "m", 0)
				if err != nil {
					return err
				}
				net.Run()
				count, aerr := net.CheckAgreement(mid)
				if aerr == nil {
					agreement++
				}
				if count == len(net.Correct()) {
					validity++
					for _, id := range net.Correct() {
						if t := net.HeardAt(id, mid); t > worst {
							worst = t
						}
					}
				}
			}
			fmt.Fprintf(w, "%-10s %-4d %-12.3f %-12.3f %-14d\n",
				c, f, float64(validity)/trials, float64(agreement)/trials, worst)
			if f <= k-1 && (validity != trials || agreement != trials) {
				return fmt.Errorf("%v: reliable broadcast violated at f=%d <= k-1", c, f)
			}
		}
	}
	fmt.Fprintln(w, "paper claim: k-connectivity => validity and agreement hold for ANY f <= k-1 crash")
	fmt.Fprintln(w, "schedule, even mid-forwarding; at f=k both can break (random schedules often survive)")
	return nil
}

// runE18 estimates the adjacency spectral gap k-λ2 of k-regular instances:
// the expansion measure behind the dissemination quality. Harary's gap
// decays as Θ(1/n²) (exact circulant closed form printed alongside), the
// LHG gap roughly as Θ(1/n) — one polynomial order better.
func runE18(w io.Writer) error {
	const k = 4
	opts := spectral.Options{Iterations: 30000}
	fmt.Fprintf(w, "k=%d, spectral gap k-λ2 of k-regular instances (power iteration)\n", k)
	fmt.Fprintf(w, "%-6s %-14s %-14s %-12s %-12s\n", "n", "harary gap", "ring bound", "kdiamond gap", "ratio")
	prevRatio := 0.0
	for _, n := range []int{32, 62, 128, 254} {
		if !lhg.Regular(lhg.KDiamond, n, k) || !lhg.Regular(lhg.Harary, n, k) {
			return fmt.Errorf("n=%d is not a regular size for both families", n)
		}
		h, err := lhg.Build(expCtx, lhg.Harary, n, k)
		if err != nil {
			return err
		}
		hGap, err := spectral.SpectralGap(h, opts)
		if err != nil {
			return err
		}
		g, err := lhg.Build(expCtx, lhg.KDiamond, n, k)
		if err != nil {
			return err
		}
		gap, err := spectral.SpectralGap(g, opts)
		if err != nil {
			return err
		}
		ratio := gap / hGap
		fmt.Fprintf(w, "%-6d %-14.5f %-14.5f %-12.5f %-12.1f\n",
			n, hGap, spectral.RingGapBound(n, k), gap, ratio)
		if ratio < 0.9*prevRatio {
			return fmt.Errorf("gap ratio must widen with n (got %.2f after %.2f)", ratio, prevRatio)
		}
		prevRatio = ratio
	}
	fmt.Fprintln(w, "shape: harary gap ~ 1/n² (matches the circulant bound); LHG gap ~ 1/n — the")
	fmt.Fprintln(w, "spectral counterpart of linear vs logarithmic diameter")
	return nil
}

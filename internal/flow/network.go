// Package flow implements unit-capacity maximum flow (Dinic's algorithm)
// and the connectivity queries built on it: s-t edge/vertex min cuts,
// global edge connectivity, global vertex connectivity (Esfahanian–Hakimi),
// parallel variants of both, and Menger-style extraction of vertex-disjoint
// paths.
//
// These are the verification workhorses for the LHG properties P1 and P2:
// a graph is k-node (k-link) connected iff its vertex (edge) connectivity
// is at least k, by Menger's theorem.
//
// Networks are recycled through a sync.Pool and rebuilt in place from the
// frozen CSR graph view, so the steady state of a connectivity sweep —
// thousands of small max-flow probes — allocates nothing.
package flow

import (
	"context"
	"sync"

	"lhg/internal/graph"
	"lhg/internal/obs"
)

// Flow-layer telemetry. Probes and augmenting paths are counted per
// maxflow call (one add each, outside the inner loops); pool gets/misses
// expose the recycling behaviour the zero-alloc steady state depends on.
var (
	mMaxflowProbes = obs.NewCounter("flow.maxflow.probes")
	mAugPaths      = obs.NewCounter("flow.maxflow.augmenting_paths")
	mNetPoolGets   = obs.NewCounter("flow.pool.gets")
	mNetPoolMisses = obs.NewCounter("flow.pool.misses")
)

// network is a directed flow network stored as an edge list where the edge
// with index e and its reverse e^1 are stored adjacently, the standard
// Dinic layout.
type network struct {
	n     int
	to    []int32
	cap   []int32
	first [][]int32 // first[v] lists edge indices leaving v

	// done, when non-nil, is the cancellation signal of the context the
	// probe runs under. maxflow polls it between augmenting-path
	// iterations — never mid-path — so a canceled probe stops within one
	// augmentation and leaves the network in a consistent, reusable state.
	done <-chan struct{}

	// scratch buffers reused across maxflow runs
	level []int32
	iter  []int32
	queue []int32
}

// watch arms the network's cancellation signal from ctx. A background (or
// nil-Done) context disarms it; the signal is cleared again by reset, so a
// pooled network never carries a stale context across probes.
func (nw *network) watch(ctx context.Context) {
	if ctx == nil {
		nw.done = nil
		return
	}
	nw.done = ctx.Done()
}

// canceled is the poll point of the cancellation signal: one non-blocking
// channel receive when armed, a nil check when not.
func (nw *network) canceled() bool {
	if nw.done == nil {
		return false
	}
	select {
	case <-nw.done:
		return true
	default:
		return false
	}
}

// netPool recycles networks across probes. A recycled network keeps the
// capacity of every buffer it ever grew to, so rebuilding one for a graph
// of similar size costs appends into retained storage — zero allocations.
var netPool = sync.Pool{New: func() any {
	mNetPoolMisses.Inc()
	return new(network)
}}

func getNetwork(n int) *network {
	mNetPoolGets.Inc()
	nw := netPool.Get().(*network)
	nw.reset(n)
	return nw
}

func putNetwork(nw *network) {
	nw.done = nil // never pool an armed cancellation signal
	netPool.Put(nw)
}

// reset prepares the network for n nodes, reusing all prior storage. The
// cancellation signal is left alone: sweeps rebuild the network per probe
// under one armed context (putNetwork disarms it before pooling).
func (nw *network) reset(n int) {
	nw.n = n
	nw.to = nw.to[:0]
	nw.cap = nw.cap[:0]
	if cap(nw.first) < n {
		nw.first = append(nw.first[:cap(nw.first)], make([][]int32, n-cap(nw.first))...)
	}
	nw.first = nw.first[:n]
	for v := range nw.first {
		nw.first[v] = nw.first[v][:0]
	}
	if cap(nw.level) < n {
		nw.level = make([]int32, n)
		nw.iter = make([]int32, n)
		nw.queue = make([]int32, 0, n)
	}
	nw.level = nw.level[:n]
	nw.iter = nw.iter[:n]
}

// addArc inserts a directed arc u->v with capacity c and its zero-capacity
// reverse. It returns the forward edge index.
func (nw *network) addArc(u, v, c int) int {
	e := len(nw.to)
	nw.to = append(nw.to, int32(v), int32(u))
	nw.cap = append(nw.cap, int32(c), 0)
	nw.first[u] = append(nw.first[u], int32(e))
	nw.first[v] = append(nw.first[v], int32(e+1))
	return e
}

// noEdge is the sentinel "exclude nothing" mask.
var noEdge = graph.Edge{U: -1, V: -1}

// buildEdge assembles the directed network for edge-connectivity queries:
// every undirected edge becomes a pair of opposing unit-capacity arcs. The
// edge `skip` (if present in g) is masked out, which probes G−e without
// materializing the smaller graph.
func (nw *network) buildEdge(g *graph.Graph, skip graph.Edge) {
	nw.reset(g.Order())
	g.EachEdge(func(u, v int) {
		if u == skip.U && v == skip.V {
			return
		}
		nw.addArc(u, v, 1)
		nw.addArc(v, u, 1)
	})
}

// buildVertex assembles the split-node network for vertex-connectivity
// queries. Node v becomes vIn=2v and vOut=2v+1 joined by a unit arc, so a
// unit of flow "uses up" the node. The terminals s and t get unbounded
// internal capacity. The edge `skip` is masked out as in buildEdge.
//
// edgeCap controls the capacity of the arcs derived from graph edges:
//   - cut queries pass an effectively infinite capacity so that minimum
//     cuts consist of node arcs only (requires s,t non-adjacent);
//   - path extraction passes 1 so that a physical edge carries at most one
//     path (vertex-disjoint paths are automatically edge-disjoint, so this
//     does not change the maximum).
func (nw *network) buildVertex(g *graph.Graph, s, t, edgeCap int, skip graph.Edge) {
	n := g.Order()
	nw.reset(2 * n)
	for v := 0; v < n; v++ {
		c := 1
		if v == s || v == t {
			c = n + 1
		}
		nw.addArc(2*v, 2*v+1, c)
	}
	g.EachEdge(func(u, v int) {
		if u == skip.U && v == skip.V {
			return
		}
		nw.addArc(2*u+1, 2*v, edgeCap)
		nw.addArc(2*v+1, 2*u, edgeCap)
	})
}

// bfs builds the level graph; it reports whether t is reachable in the
// residual network.
func (nw *network) bfs(s, t int) bool {
	for i := range nw.level {
		nw.level[i] = -1
	}
	nw.queue = nw.queue[:0]
	nw.queue = append(nw.queue, int32(s))
	nw.level[s] = 0
	for qi := 0; qi < len(nw.queue); qi++ {
		u := nw.queue[qi]
		for _, e := range nw.first[u] {
			v := nw.to[e]
			if nw.cap[e] > 0 && nw.level[v] < 0 {
				nw.level[v] = nw.level[u] + 1
				nw.queue = append(nw.queue, v)
			}
		}
	}
	return nw.level[t] >= 0
}

// dfs sends blocking flow along the level graph.
func (nw *network) dfs(u, t, f int) int {
	if u == t {
		return f
	}
	for ; int(nw.iter[u]) < len(nw.first[u]); nw.iter[u]++ {
		e := nw.first[u][nw.iter[u]]
		v := nw.to[e]
		if nw.cap[e] <= 0 || nw.level[v] != nw.level[u]+1 {
			continue
		}
		pushed := f
		if int(nw.cap[e]) < pushed {
			pushed = int(nw.cap[e])
		}
		if d := nw.dfs(int(v), t, pushed); d > 0 {
			nw.cap[e] -= int32(d)
			nw.cap[e^1] += int32(d)
			return d
		}
	}
	return 0
}

const inf = int(^uint(0) >> 1)

// maxflow computes the maximum s-t flow, optionally stopping early once the
// flow reaches `limit` (pass a negative limit for no bound). Early stopping
// makes global-connectivity sweeps cheap: once the running minimum is m, any
// pair with flow >= m cannot improve it.
func (nw *network) maxflow(s, t, limit int) int {
	f, paths := nw.maxflowCounted(s, t, limit)
	mMaxflowProbes.Inc()
	mAugPaths.Add(paths)
	return f
}

// maxflowCounted is maxflow returning the number of augmenting paths found
// alongside the flow value. The path count is tallied in a local so the
// hot loop stays free of atomics; the caller publishes it once.
//
// When the network is armed with a context (watch), cancellation is polled
// between augmenting-path iterations and before each level-graph rebuild —
// never inside a path search — so a canceled probe returns promptly with a
// partial (lower-bound) flow value. Callers that armed a context must check
// it after the probe and discard the value; the network itself stays
// consistent and reusable.
func (nw *network) maxflowCounted(s, t, limit int) (flow int, paths int64) {
	if s == t {
		return inf, 0
	}
	for !nw.canceled() && nw.bfs(s, t) {
		for i := range nw.iter {
			nw.iter[i] = 0
		}
		for {
			f := nw.dfs(s, t, int32max)
			if f == 0 {
				break
			}
			paths++
			flow += f
			if limit >= 0 && flow >= limit {
				return flow, paths
			}
			if nw.canceled() {
				return flow, paths
			}
		}
	}
	return flow, paths
}

// int32max bounds the per-augmentation request so int32 capacities never
// overflow when added to the reverse arc.
const int32max = int(^uint32(0) >> 1)

// residualReach marks every node reachable from s in the residual network.
func (nw *network) residualReach(s int) []bool {
	seen := make([]bool, nw.n)
	seen[s] = true
	stack := []int{s}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range nw.first[u] {
			if v := int(nw.to[e]); nw.cap[e] > 0 && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

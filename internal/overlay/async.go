package overlay

import (
	"fmt"

	"lhg/internal/flood"
	"lhg/internal/graph"
	"lhg/internal/sim"
)

// AsyncResult reports a discrete-event broadcast: per-node delivery times
// under per-link latencies, rather than the synchronized rounds of
// flood.Run.
type AsyncResult struct {
	Source    int
	Delivered int     // alive nodes that received the message
	Alive     int     // alive nodes at the start
	Messages  int     // point-to-point messages sent
	MakeSpan  int64   // time of the last delivery
	Times     []int64 // first delivery time per node; -1 if never delivered
	Complete  bool
}

// String renders a one-line summary.
func (r *AsyncResult) String() string {
	return fmt.Sprintf("async(src=%d delivered=%d/%d msgs=%d makespan=%d complete=%t)",
		r.Source, r.Delivered, r.Alive, r.Messages, r.MakeSpan, r.Complete)
}

// AsyncBroadcast runs an event-driven flood on g: when a node first
// receives the message it immediately forwards it to every alive neighbor;
// each link delivery takes latency(u,v) time units (pass nil for unit
// latency). With unit latencies the delivery times equal the round numbers
// of flood.Run — asserted by the integration tests.
func AsyncBroadcast(g *graph.Graph, source int, f flood.Failures, latency func(u, v int) int64) (*AsyncResult, error) {
	n := g.Order()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("overlay: source %d out of range [0,%d)", source, n)
	}
	if latency == nil {
		latency = func(u, v int) int64 { return 1 }
	}
	crashed := make([]bool, n)
	for _, v := range f.Nodes {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("overlay: crashed node %d out of range [0,%d)", v, n)
		}
		crashed[v] = true
	}
	if crashed[source] {
		return nil, fmt.Errorf("overlay: source %d is crashed", source)
	}
	linkDown := make(map[graph.Edge]bool, len(f.Links))
	for _, e := range f.Links {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		linkDown[e] = true
	}

	res := &AsyncResult{Source: source, Times: make([]int64, n)}
	for i := range res.Times {
		res.Times[i] = -1
	}
	for v := 0; v < n; v++ {
		if !crashed[v] {
			res.Alive++
		}
	}

	var q sim.EventQueue
	var deliver func(v int)
	deliver = func(v int) {
		if res.Times[v] >= 0 {
			return
		}
		res.Times[v] = q.Now()
		res.Delivered++
		if q.Now() > res.MakeSpan {
			res.MakeSpan = q.Now()
		}
		for _, w := range g.Neighbors(v) {
			e := graph.Edge{U: v, V: w}
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			if crashed[w] || linkDown[e] {
				continue
			}
			res.Messages++
			target := w
			q.After(latency(v, w), func() { deliver(target) })
		}
	}
	deliver(source)
	q.Run(-1)
	res.Complete = res.Delivered == res.Alive
	return res, nil
}

package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// withTracing runs fn with tracing enabled against a clean default
// recorder, restoring the disabled default afterwards.
func withTracing(t *testing.T, fn func()) {
	t.Helper()
	Enable()
	DefaultRecorder.Reset()
	defer func() {
		Disable()
		DefaultRecorder.Reset()
	}()
	fn()
}

func TestDisabledIsInert(t *testing.T) {
	Disable()
	ctx := context.Background()
	ctx2, sp := StartRoot(ctx, "root")
	if ctx2 != ctx {
		t.Fatal("disabled StartRoot must return the context unchanged")
	}
	if sp.Live() {
		t.Fatal("disabled StartRoot must return an inert span")
	}
	if !sp.TraceID().IsZero() || !sp.ID().IsZero() {
		t.Fatal("inert span must carry zero ids")
	}
	sp.SetAttr(Int("x", 1))
	sp.Event("nothing")
	if d := sp.End(); d != 0 {
		t.Fatalf("inert End = %v, want 0", d)
	}
	if _, child := StartSpan(ctx, "child"); child.Live() {
		t.Fatal("disabled StartSpan must be inert")
	}
	if FromContext(ctx).Live() {
		t.Fatal("disabled FromContext must be inert")
	}
	if got := DefaultRecorder.Len(); got != 0 {
		t.Fatalf("recorder holds %d records after disabled ops, want 0", got)
	}
}

func TestTraceDisabledZeroAlloc(t *testing.T) {
	Disable()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := StartSpan(ctx, "hot")
		sp.Event("probe-progress")
		sp.End()
		_ = c2
		Instant("background")
		_ = FromContext(ctx)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestSpanTreeAndRecorder(t *testing.T) {
	withTracing(t, func() {
		ctx, root := StartRoot(context.Background(), "lhg.Verify")
		if !root.Live() {
			t.Fatal("enabled StartRoot must mint a live root")
		}
		ctx2, child := StartSpan(ctx, "check.kappa")
		if child.TraceID() != root.TraceID() {
			t.Fatal("child must share the root's trace id")
		}
		if FromContext(ctx2).ID() != child.ID() {
			t.Fatal("context must carry the innermost span")
		}
		child.SetAttr(Int("probes", 42))
		child.Event("probe-progress", Int("done", 10))
		child.End()
		root.End()

		recs := DefaultRecorder.TraceRecords(root.TraceID())
		var names []string
		for _, r := range recs {
			names = append(names, r.Name)
		}
		want := map[string]bool{"lhg.Verify": false, "check.kappa": false, "probe-progress": false}
		for _, n := range names {
			want[n] = true
		}
		for n, seen := range want {
			if !seen {
				t.Fatalf("recorder misses %q; got %v", n, names)
			}
		}
		for _, r := range recs {
			if r.Name == "check.kappa" {
				if r.Parent != root.ID() {
					t.Fatalf("check.kappa parent = %s, want root %s", r.Parent, root.ID())
				}
				if r.Kind != KindSpan || r.Dur < 0 {
					t.Fatal("span record must be KindSpan with non-negative duration")
				}
			}
			if r.Name == "probe-progress" && r.Kind != KindInstant {
				t.Fatal("point events must record as KindInstant")
			}
		}
	})
}

func TestStartSpanWithoutRootIsInert(t *testing.T) {
	withTracing(t, func() {
		_, sp := StartSpan(context.Background(), "orphan")
		if sp.Live() {
			t.Fatal("StartSpan without a rooted context must be inert (roots are minted at the facade)")
		}
	})
}

func TestStartRootAdoptsExistingSpan(t *testing.T) {
	withTracing(t, func() {
		ctx, outer := StartRoot(context.Background(), "http")
		_, inner := StartRoot(ctx, "lhg.Verify")
		if inner.TraceID() != outer.TraceID() {
			t.Fatal("StartRoot under an existing span must join its trace")
		}
	})
}

func TestTimedSpanAlwaysTimes(t *testing.T) {
	Disable()
	_, ts := StartTimed(context.Background(), "check.kappa")
	time.Sleep(2 * time.Millisecond)
	if d := ts.End(); d < time.Millisecond {
		t.Fatalf("disabled TimedSpan measured %v, want >= 1ms", d)
	}
	withTracing(t, func() {
		ctx, _ := StartRoot(context.Background(), "root")
		_, ts := StartTimed(ctx, "check.lambda")
		time.Sleep(2 * time.Millisecond)
		d := ts.End()
		if d < time.Millisecond {
			t.Fatalf("enabled TimedSpan measured %v, want >= 1ms", d)
		}
		recs := DefaultRecorder.Snapshot()
		found := false
		for _, r := range recs {
			if r.Name == "check.lambda" {
				found = true
				if diff := r.Dur - d; diff != 0 {
					t.Fatalf("record duration %v != End duration %v: two clocks", r.Dur, d)
				}
			}
		}
		if !found {
			t.Fatal("enabled TimedSpan must land in the recorder")
		}
	})
}

func TestEmitterSeesLifecycle(t *testing.T) {
	withTracing(t, func() {
		var mu sync.Mutex
		var events []Event
		ctx, root := StartRoot(context.Background(), "campaign", WithEmitter(func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}))
		_, child := StartSpan(ctx, "check.kappa")
		child.Event("probe-progress", Int("done", 5))
		child.End()
		root.End()

		mu.Lock()
		defer mu.Unlock()
		var kinds []string
		for _, ev := range events {
			kinds = append(kinds, ev.Type+":"+ev.Name)
		}
		want := []string{
			"span-start:campaign",
			"span-start:check.kappa",
			"point:probe-progress",
			"span-end:check.kappa",
			"span-end:campaign",
		}
		if strings.Join(kinds, ",") != strings.Join(want, ",") {
			t.Fatalf("event order %v, want %v", kinds, want)
		}
		for _, ev := range events {
			if ev.Trace != root.TraceID().String() {
				t.Fatalf("event trace %s, want %s", ev.Trace, root.TraceID())
			}
		}
	})
}

func TestAddEmitterRemove(t *testing.T) {
	withTracing(t, func() {
		ctx, root := StartRoot(context.Background(), "r")
		var n int
		remove := root.Trace().AddEmitter(func(Event) { n++ })
		_, sp := StartSpan(ctx, "a")
		sp.End()
		remove()
		_, sp2 := StartSpan(ctx, "b")
		sp2.End()
		if n != 2 { // a's start+end only
			t.Fatalf("late emitter saw %d events, want 2", n)
		}
	})
}

func TestRecorderRingWraps(t *testing.T) {
	r := NewRecorder(recorderStripes) // one record per stripe
	Enable()
	defer Disable()
	ctx, root := StartRoot(context.Background(), "r", WithRecorder(r))
	for i := 0; i < 100; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("s%d", i))
		sp.End()
	}
	root.End()
	if got := r.Len(); got > recorderStripes {
		t.Fatalf("ring holds %d records, capacity %d", got, recorderStripes)
	}
	if r.Dropped() == 0 {
		t.Fatal("expected wrap-around drops after overfilling the ring")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := newTraceID(), newSpanID()
	h := Traceparent(tid, sid)
	if len(h) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", h, len(h))
	}
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("round trip failed: %q -> %v %v %v", h, gotT, gotS, ok)
	}
	bad := []string{
		"",
		"00-abc-def-01",
		"ff-" + tid.String() + "-" + sid.String() + "-01",
		"00-00000000000000000000000000000000-" + sid.String() + "-01",
		"00-" + tid.String() + "-0000000000000000-01",
		"00-" + strings.Repeat("g", 32) + "-" + sid.String() + "-01",
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Fatalf("ParseTraceparent(%q) accepted invalid input", h)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	withTracing(t, func() {
		ctx, root := StartRoot(context.Background(), "lhg.Verify")
		_, sp := StartSpan(ctx, "check.kappa")
		if sp.Live() {
			sp.SetAttr(Int("worker", 3))
		}
		sp.Event("probe-progress", Int("done", 7))
		sp.End()
		root.End()

		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, DefaultRecorder.Snapshot()); err != nil {
			t.Fatal(err)
		}
		var out struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
		}
		var phases []string
		workerLane := false
		for _, ev := range out.TraceEvents {
			phases = append(phases, ev["ph"].(string))
			if ev["name"] == "check.kappa" && ev["tid"].(float64) == 4 {
				workerLane = true
			}
			if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
				t.Fatalf("event %v has invalid ts", ev)
			}
		}
		if !workerLane {
			t.Fatalf("worker attribute must map to its own lane; events: %v", out.TraceEvents)
		}
		hasX, hasI := false, false
		for _, p := range phases {
			hasX = hasX || p == "X"
			hasI = hasI || p == "i"
		}
		if !hasX || !hasI {
			t.Fatalf("export needs both complete (X) and instant (i) events, got %v", phases)
		}
	})
}

func TestHTTPHandlerFiltersByTrace(t *testing.T) {
	withTracing(t, func() {
		_, a := StartRoot(context.Background(), "trace-a")
		a.End()
		_, b := StartRoot(context.Background(), "trace-b")
		b.End()

		rr := httptest.NewRecorder()
		Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?trace="+a.TraceID().String(), nil))
		if rr.Code != 200 {
			t.Fatalf("status %d", rr.Code)
		}
		body := rr.Body.String()
		if !strings.Contains(body, "trace-a") || strings.Contains(body, "trace-b") {
			t.Fatalf("filter failed: %s", body)
		}

		rr = httptest.NewRecorder()
		Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?trace=zz", nil))
		if rr.Code != 400 {
			t.Fatalf("invalid filter: status %d, want 400", rr.Code)
		}
	})
}

func TestInstantRecordsWithoutTrace(t *testing.T) {
	withTracing(t, func() {
		Instant("netflood.retransmit", Int("node", 3))
		recs := DefaultRecorder.Snapshot()
		if len(recs) != 1 || recs[0].Name != "netflood.retransmit" || !recs[0].Trace.IsZero() {
			t.Fatalf("Instant record wrong: %+v", recs)
		}
	})
}

func TestConcurrentSpansRace(t *testing.T) {
	withTracing(t, func() {
		ctx, root := StartRoot(context.Background(), "root")
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					_, sp := StartSpan(ctx, "worker-span")
					if sp.Live() {
						sp.SetAttr(Int("worker", int64(w)))
					}
					sp.Event("tick")
					sp.End()
				}
			}(w)
		}
		wg.Wait()
		root.End()
		if DefaultRecorder.Len() == 0 {
			t.Fatal("no records after concurrent spans")
		}
	})
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[SpanID]bool)
	for i := 0; i < 10000; i++ {
		id := newSpanID()
		if id.IsZero() || seen[id] {
			t.Fatalf("duplicate or zero span id at %d", i)
		}
		seen[id] = true
	}
}

// Package proc is the protocol-level substrate: processes exchanging
// messages over a topology on a deterministic discrete-event simulator.
// Where package flood computes *topological* reachability in synchronized
// rounds, proc executes the actual flooding protocol — per-process state,
// duplicate suppression, per-link latencies, and crashes that can strike
// *mid-forwarding* — and lets tests assert the reliable-broadcast
// properties the papers claim:
//
//	validity:  if the source stays correct, every correct process delivers;
//	agreement: if any correct process delivers a message, every correct
//	           process delivers it (this is what k-connectivity buys when
//	           at most k-1 processes crash, even at arbitrary times).
package proc

import (
	"fmt"
	"sort"

	"lhg/internal/graph"
	"lhg/internal/sim"
)

// MsgID identifies a broadcast: origin process and per-origin sequence
// number.
type MsgID struct {
	Src int
	Seq int
}

// Message is a flooded payload.
type Message struct {
	ID      MsgID
	Payload string
}

// Latency gives the transmission delay of link (u,v); it must be >= 1 to
// keep causality strict.
type Latency func(u, v int) int64

// Option configures a Network.
type Option interface {
	apply(*config)
}

type config struct {
	latency      Latency
	sendOverhead int64
	crashAt      map[int]int64
}

type latencyOption struct{ fn Latency }

func (o latencyOption) apply(c *config) { c.latency = o.fn }

// WithLatency sets the per-link transmission delay (default: 1 tick).
func WithLatency(fn Latency) Option { return latencyOption{fn: fn} }

type overheadOption struct{ d int64 }

func (o overheadOption) apply(c *config) { c.sendOverhead = o.d }

// WithSendOverhead makes a forwarding process emit on its links one by one,
// d ticks apart, instead of atomically. With a nonzero overhead a crash can
// interrupt a process half-way through forwarding — the hardest failure
// mode for a dissemination protocol.
func WithSendOverhead(d int64) Option { return overheadOption{d: d} }

type crashOption struct {
	node int
	at   int64
}

func (o crashOption) apply(c *config) {
	if c.crashAt == nil {
		c.crashAt = make(map[int]int64)
	}
	c.crashAt[o.node] = o.at
}

// WithCrashAt schedules process `node` to crash at simulated time `at`:
// from then on it neither sends nor receives.
func WithCrashAt(node int, at int64) Option { return crashOption{node: node, at: at} }

// Network simulates a set of processes flooding over a fixed topology.
type Network struct {
	topo  *graph.Graph
	q     sim.EventQueue
	cfg   config
	procs []*process

	messagesSent int
	dropped      int
}

type process struct {
	id        int
	crashed   bool
	crashTime int64
	hasCrash  bool
	delivered map[MsgID]Message
	order     []Message // raw delivery order
	heardAt   map[MsgID]int64
	nextSeq   int
	fifo      *fifoState
}

// NewNetwork creates a network of g.Order() processes over topology g.
func NewNetwork(g *graph.Graph, opts ...Option) (*Network, error) {
	if g == nil || g.Order() == 0 {
		return nil, fmt.Errorf("proc: empty topology")
	}
	cfg := config{
		latency: func(u, v int) int64 { return 1 },
	}
	for _, o := range opts {
		o.apply(&cfg)
	}
	n := &Network{topo: g, cfg: cfg}
	n.procs = make([]*process, g.Order())
	for i := range n.procs {
		p := &process{
			id:        i,
			delivered: make(map[MsgID]Message),
			heardAt:   make(map[MsgID]int64),
			fifo:      newFIFOState(),
		}
		if at, ok := cfg.crashAt[i]; ok {
			p.hasCrash = true
			p.crashTime = at
		}
		n.procs[i] = p
	}
	for node := range cfg.crashAt {
		if node < 0 || node >= g.Order() {
			return nil, fmt.Errorf("proc: crash schedule for unknown process %d", node)
		}
	}
	return n, nil
}

// alive reports whether process p is up at time t.
func (p *process) alive(t int64) bool {
	return !p.hasCrash || t < p.crashTime
}

// Broadcast schedules process src to flood a payload at time `at`. It
// returns the message id. The broadcast is silently lost if src has crashed
// by then (matching a real system: dead processes do not speak).
func (n *Network) Broadcast(src int, payload string, at int64) (MsgID, error) {
	if src < 0 || src >= len(n.procs) {
		return MsgID{}, fmt.Errorf("proc: unknown process %d", src)
	}
	p := n.procs[src]
	id := MsgID{Src: src, Seq: p.nextSeq}
	p.nextSeq++
	msg := Message{ID: id, Payload: payload}
	n.q.At(at, func() { n.receive(src, msg) })
	return id, nil
}

// receive handles the arrival (or local injection) of msg at process `to`.
func (n *Network) receive(to int, msg Message) {
	now := n.q.Now()
	p := n.procs[to]
	if !p.alive(now) {
		n.dropped++
		return
	}
	if _, seen := p.delivered[msg.ID]; seen {
		return
	}
	p.delivered[msg.ID] = msg
	p.order = append(p.order, msg)
	p.heardAt[msg.ID] = now
	p.fifo.push(msg)
	// Forward on every link; with send overhead the emissions stagger and a
	// crash can cut the sequence short.
	offset := int64(0)
	n.topo.EachNeighbor(to, func(nb int) {
		sendAt := now + offset
		offset += n.cfg.sendOverhead
		target := nb
		n.q.At(sendAt, func() {
			if !n.procs[to].alive(n.q.Now()) {
				return // crashed before getting this transmission out
			}
			n.messagesSent++
			arrive := n.q.Now() + n.cfg.latency(to, target)
			n.q.At(arrive, func() { n.receive(target, msg) })
		})
	})
}

// Run drains the event queue and returns the final simulated time.
func (n *Network) Run() int64 {
	n.q.Run(-1)
	return n.q.Now()
}

// RunUntil processes events up to the deadline.
func (n *Network) RunUntil(deadline int64) { n.q.RunUntil(deadline) }

// Now returns the current simulated time.
func (n *Network) Now() int64 { return n.q.Now() }

// MessagesSent returns the total point-to-point transmissions so far.
func (n *Network) MessagesSent() int { return n.messagesSent }

// Dropped returns the number of arrivals at crashed processes.
func (n *Network) Dropped() int { return n.dropped }

// Crashed reports whether process id has crashed by the current time.
func (n *Network) Crashed(id int) bool {
	if id < 0 || id >= len(n.procs) {
		return false
	}
	return !n.procs[id].alive(n.q.Now())
}

// Correct returns the ids of processes that never crash (with respect to
// the configured schedule), sorted.
func (n *Network) Correct() []int {
	var out []int
	for _, p := range n.procs {
		if !p.hasCrash {
			out = append(out, p.id)
		}
	}
	return out
}

// Delivered returns the messages process id has delivered, in delivery
// order. The slice is a copy.
func (n *Network) Delivered(id int) []Message {
	if id < 0 || id >= len(n.procs) {
		return nil
	}
	return append([]Message(nil), n.procs[id].order...)
}

// DeliveredIDs returns the set of message ids delivered by process id,
// sorted for deterministic comparison.
func (n *Network) DeliveredIDs(id int) []MsgID {
	if id < 0 || id >= len(n.procs) {
		return nil
	}
	out := make([]MsgID, 0, len(n.procs[id].delivered))
	for mid := range n.procs[id].delivered {
		out = append(out, mid)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// HeardAt returns when process id delivered the message, or -1.
func (n *Network) HeardAt(id int, mid MsgID) int64 {
	if id < 0 || id >= len(n.procs) {
		return -1
	}
	if t, ok := n.procs[id].heardAt[mid]; ok {
		return t
	}
	return -1
}

// CheckAgreement verifies the reliable-broadcast agreement property over
// the correct processes: either all of them delivered mid, or none did.
// It returns the number of correct deliverers and an error on a split.
func (n *Network) CheckAgreement(mid MsgID) (int, error) {
	correct := n.Correct()
	count := 0
	for _, id := range correct {
		if _, ok := n.procs[id].delivered[mid]; ok {
			count++
		}
	}
	if count != 0 && count != len(correct) {
		return count, fmt.Errorf("proc: agreement violated for %v: %d of %d correct processes delivered",
			mid, count, len(correct))
	}
	return count, nil
}

package proc

// FIFO delivery: raw flooding delivers messages in arrival order, which
// under heterogeneous link latencies can invert the sending order of one
// source. The FIFO layer holds back a message until every earlier message
// from the same origin has been FIFO-delivered — the classic
// reliable-broadcast → FIFO-broadcast protocol stack. A permanently missing
// predecessor (its origin crashed before flooding it) blocks later messages
// from that origin, exactly as in the textbook protocol.

// fifoState tracks per-origin expected sequence numbers and held-back
// messages for one process.
type fifoState struct {
	next    map[int]int       // per-origin next expected seq
	pending map[MsgID]Message // arrived but not yet FIFO-deliverable
	order   []Message         // FIFO delivery order
}

func newFIFOState() *fifoState {
	return &fifoState{
		next:    make(map[int]int),
		pending: make(map[MsgID]Message),
	}
}

// push feeds a raw delivery into the FIFO machinery.
func (f *fifoState) push(msg Message) {
	f.pending[msg.ID] = msg
	for {
		want := MsgID{Src: msg.ID.Src, Seq: f.next[msg.ID.Src]}
		m, ok := f.pending[want]
		if !ok {
			return
		}
		delete(f.pending, want)
		f.order = append(f.order, m)
		f.next[msg.ID.Src]++
	}
}

// FIFODelivered returns the messages process id has FIFO-delivered: for
// each origin, in exactly the origin's sending order, with no gaps.
func (n *Network) FIFODelivered(id int) []Message {
	if id < 0 || id >= len(n.procs) {
		return nil
	}
	return append([]Message(nil), n.procs[id].fifo.order...)
}

// FIFOPending returns how many raw-delivered messages process id is
// holding back waiting for predecessors.
func (n *Network) FIFOPending(id int) int {
	if id < 0 || id >= len(n.procs) {
		return 0
	}
	return len(n.procs[id].fifo.pending)
}

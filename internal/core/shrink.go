package core

import (
	"fmt"

	"lhg/internal/graph"
)

// Shrink — departures via the proofs' inverse surgery.
//
// Both constructions are deterministic: the graph and the grower state at
// size n are unique functions of (constraint, k, n). The inverse of the
// most recent Grow is therefore recomputable from the current state alone —
// no undo log. Every Grow admits node n−1, so one Shrink always retires
// label n−1; an arbitrary departure is handled above this layer by the
// membership service, which relabels the departed slot with the youngest
// process (a metadata swap, no extra edges) and then retires the top label
// here. In proof terms: a departed added-leaf is simply dropped, while a
// departed internal or base node is backfilled by the youngest waiting
// nodes unwinding the batch that promoted it.
//
// Which inverse applies is read off the state machine:
//
//	K-TREE:    added non-empty  → the last step was an added-leaf join
//	           added empty      → the last step was the Part 2 restructure
//	K-DIAMOND: added non-empty  → added-leaf join
//	           group non-empty  → Part 2 formGroup (clique formation)
//	           otherwise        → Part 3 dissolveGroup
//
// (after each batch step the added list is cleared, so the added counter j
// doubles as "steps since the last batch boundary").

// Shrink retires the youngest node (label n−1) and returns the edge surgery
// performed, in canonical form. It is the exact inverse of the previous
// Grow: a Grow followed by a Shrink restores both the graph and the grower
// state bit-for-bit.
func (gr *KTreeGrower) Shrink() (EdgeDelta, error) {
	if gr.N() <= 2*gr.k {
		return EdgeDelta{}, notConstructible("K-TREE", gr.N()-1, gr.k,
			fmt.Sprintf("cannot shrink below the minimal graph n = 2k = %d", 2*gr.k))
	}
	var d EdgeDelta
	var err error
	if len(gr.added) > 0 {
		d, err = gr.shrinkAddedLeaf()
	} else {
		d, err = gr.unrestructure()
	}
	d.Normalize()
	return d, err
}

// shrinkAddedLeaf undoes growAddedLeaf: the youngest added leaf detaches
// from the hosts it joined on and its label is retired.
func (gr *KTreeGrower) shrinkAddedLeaf() (EdgeDelta, error) {
	return shrinkLeaf(gr.g, &gr.added, gr.queue)
}

// unrestructure undoes the Part 2 restructure: the newest level of k−1
// shared leaves and the k−1 internal copies revert to 2k−3 added leaves,
// and the oldest base leaf s returns to the queue front with its original
// parents — recovered as each copy's unique neighbor outside the new level.
func (gr *KTreeGrower) unrestructure() (EdgeDelta, error) {
	k := gr.k
	if len(gr.queue) < k-1 {
		return EdgeDelta{}, fmt.Errorf("core: inconsistent grower state: %d pending leaves after a restructure", len(gr.queue))
	}
	var d EdgeDelta

	// The last k−1 queue entries are the level the restructure created; all
	// share the same parent set — the k internal copies, internals[0] = s.
	level := gr.queue[len(gr.queue)-(k-1):]
	internals := level[0].parents
	children := make([]int, k-1)
	inLevel := make(map[int]bool, k-1)
	for i, pl := range level {
		children[i] = pl.node
		inLevel[pl.node] = true
	}
	if children[k-2] != gr.N()-1 {
		return EdgeDelta{}, fmt.Errorf("core: inconsistent grower state: youngest node %d is not the newest leaf %d", gr.N()-1, children[k-2])
	}

	// Recover the parents of the former base leaf s: copy i kept exactly
	// one upward link, to oldParents[i].
	oldParents := make([]int, k)
	for i, in := range internals {
		up := -1
		for _, nb := range gr.g.Neighbors(in) {
			if !inLevel[nb] {
				if up >= 0 {
					return EdgeDelta{}, fmt.Errorf("core: inconsistent grower state: copy %d has two upward links", in)
				}
				up = nb
			}
		}
		if up < 0 {
			return EdgeDelta{}, fmt.Errorf("core: inconsistent grower state: copy %d has no upward link", in)
		}
		oldParents[i] = up
	}

	// Tear the level down.
	for _, child := range children {
		for _, in := range internals {
			removeEdgeInto(&d, gr.g, in, child)
		}
	}
	gr.queue = gr.queue[:len(gr.queue)-(k-1)]
	if err := gr.g.RemoveLastNode(); err != nil {
		return EdgeDelta{}, err
	}

	// Rewind the promotions: s (= internals[0]) already holds its link to
	// oldParents[0]; the copies and the surviving children become added
	// leaves again, each attached to ALL k old parents.
	s := internals[0]
	for j := 1; j < k; j++ {
		addEdgeInto(&d, gr.g, s, oldParents[j])
	}
	restored := make([]int, 0, 2*k-3)
	for i := 1; i < k; i++ {
		c := internals[i]
		restored = append(restored, c)
		for j := 0; j < k; j++ {
			if j != i {
				addEdgeInto(&d, gr.g, c, oldParents[j])
			}
		}
	}
	for _, c := range children[:k-2] {
		restored = append(restored, c)
		for j := 0; j < k; j++ {
			addEdgeInto(&d, gr.g, c, oldParents[j])
		}
	}
	gr.added = restored
	gr.queue = append([]pendingLeaf{{node: s, parents: oldParents}}, gr.queue...)
	return d, nil
}

// shrinkLeaf is the shared added-leaf inverse: every waiting added leaf is
// attached to the current front's parents, and the youngest of them is by
// construction the youngest node overall.
func shrinkLeaf(g *graph.Builder, added *[]int, queue []pendingLeaf) (EdgeDelta, error) {
	a := *added
	id := a[len(a)-1]
	if id != g.Order()-1 {
		return EdgeDelta{}, fmt.Errorf("core: inconsistent grower state: youngest node %d is not the newest added leaf %d", g.Order()-1, id)
	}
	if len(queue) == 0 {
		return EdgeDelta{}, fmt.Errorf("core: grower has no pending leaves")
	}
	var d EdgeDelta
	for _, p := range queue[0].parents {
		removeEdgeInto(&d, g, p, id)
	}
	if err := g.RemoveLastNode(); err != nil {
		return EdgeDelta{}, err
	}
	*added = a[:len(a)-1]
	return d, nil
}

func removeEdgeInto(d *EdgeDelta, g *graph.Builder, u, v int) {
	if g.RemoveEdge(u, v) {
		d.Removed = append(d.Removed, edge(u, v))
	}
}

func addEdgeInto(d *EdgeDelta, g *graph.Builder, u, v int) {
	if !g.HasEdge(u, v) {
		g.MustAddEdge(u, v)
		d.Added = append(d.Added, edge(u, v))
	}
}

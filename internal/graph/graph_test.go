package graph

import (
	"testing"
	"testing/quick"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New(5)
	if g.Order() != 5 {
		t.Fatalf("Order = %d, want 5", g.Order())
	}
	if g.Size() != 0 {
		t.Fatalf("Size = %d, want 0", g.Size())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Fatalf("Degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
}

func TestNewNegativeClampsToZero(t *testing.T) {
	if g := New(-3); g.Order() != 0 {
		t.Fatalf("Order = %d, want 0", g.Order())
	}
	if b := NewBuilder(-3); b.Order() != 0 {
		t.Fatalf("Builder Order = %d, want 0", b.Order())
	}
}

func TestBuilderAddEdgeBasics(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !b.HasEdge(0, 1) || !b.HasEdge(1, 0) {
		t.Fatal("builder edge (0,1) missing in one direction")
	}
	g := b.Freeze()
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("frozen edge (0,1) missing in one direction")
	}
	if g.Size() != 1 {
		t.Fatalf("Size = %d, want 1", g.Size())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("degrees not updated")
	}
}

func TestBuilderAddEdgeDuplicateIsNoop(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if g := b.Freeze(); g.Size() != 1 {
		t.Fatalf("Size = %d after duplicate add, want 1", g.Size())
	}
}

func TestBuilderAddEdgeErrors(t *testing.T) {
	b := NewBuilder(3)
	tests := []struct {
		name string
		u, v int
	}{
		{name: "self loop", u: 1, v: 1},
		{name: "u out of range", u: -1, v: 0},
		{name: "v out of range", u: 0, v: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := b.AddEdge(tt.u, tt.v); err == nil {
				t.Fatalf("AddEdge(%d,%d) succeeded, want error", tt.u, tt.v)
			}
		})
	}
	if b.Size() != 0 {
		t.Fatal("failed adds must not change the builder")
	}
}

func TestBuilderRemoveEdge(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	if !b.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0) = false, want true")
	}
	if b.HasEdge(0, 1) {
		t.Fatal("edge (0,1) still present")
	}
	if b.Size() != 1 {
		t.Fatalf("Size = %d, want 1", b.Size())
	}
	if b.RemoveEdge(0, 1) {
		t.Fatal("removing a missing edge must return false")
	}
	if b.RemoveEdge(0, 99) {
		t.Fatal("removing an out-of-range edge must return false")
	}
	g := b.Freeze()
	if g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("frozen view does not reflect the removal")
	}
}

func TestBuilderAddNode(t *testing.T) {
	b := NewBuilder(2)
	id := b.AddNode()
	if id != 2 {
		t.Fatalf("AddNode = %d, want 2", id)
	}
	if b.Order() != 3 {
		t.Fatalf("Order = %d, want 3", b.Order())
	}
	if err := b.AddEdge(0, id); err != nil {
		t.Fatalf("AddEdge to new node: %v", err)
	}
	if g := b.Freeze(); g.Order() != 3 || !g.HasEdge(0, 2) {
		t.Fatal("frozen view missing the grown node or its edge")
	}
}

func TestBuilderGrow(t *testing.T) {
	b := NewBuilder(2)
	first := b.Grow(3)
	if first != 2 {
		t.Fatalf("Grow = %d, want 2", first)
	}
	if b.Order() != 5 {
		t.Fatalf("Order = %d, want 5", b.Order())
	}
}

func TestFreezeCachedUntilMutation(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	g1 := b.Freeze()
	if g2 := b.Freeze(); g2 != g1 {
		t.Fatal("Freeze without mutation must return the cached graph")
	}
	b.MustAddEdge(1, 2)
	g3 := b.Freeze()
	if g3 == g1 {
		t.Fatal("mutation must invalidate the cached freeze")
	}
	if g1.HasEdge(1, 2) {
		t.Fatal("earlier frozen view changed after builder mutation")
	}
	if !g3.HasEdge(1, 2) {
		t.Fatal("new frozen view missing the added edge")
	}
}

func TestNeighborsSortedAndCopied(t *testing.T) {
	b := NewBuilder(5)
	for _, v := range []int{4, 1, 3} {
		b.MustAddEdge(0, v)
	}
	g := b.Freeze()
	nbrs := g.Neighbors(0)
	want := []int{1, 3, 4}
	if len(nbrs) != len(want) {
		t.Fatalf("Neighbors = %v, want %v", nbrs, want)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", nbrs, want)
		}
	}
	nbrs[0] = 99
	if g.Neighbors(0)[0] != 1 {
		t.Fatal("Neighbors must return a copy")
	}
	if g.Neighbors(-1) != nil || g.Neighbors(9) != nil {
		t.Fatal("out-of-range Neighbors must be nil")
	}
}

func TestEachNeighborOrder(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(2, 0)
	b.MustAddEdge(2, 1)
	var got []int
	b.Freeze().EachNeighbor(2, func(w int) { got = append(got, w) })
	want := []int{0, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EachNeighbor order %v, want %v", got, want)
		}
	}
}

func TestEdgesCanonical(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(3, 1)
	b.MustAddEdge(0, 2)
	b.MustAddEdge(2, 1)
	edges := b.Freeze().Edges()
	want := []Edge{{0, 2}, {1, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
}

func TestThawIndependence(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	g := b.Freeze()
	c := g.Thaw()
	c.MustAddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating the thawed builder changed the frozen graph")
	}
	if c.Size() != 2 || g.Size() != 1 {
		t.Fatalf("sizes: thawed=%d frozen=%d, want 2 and 1", c.Size(), g.Size())
	}
	h := c.Freeze()
	if !h.HasEdge(0, 1) || !h.HasEdge(1, 2) {
		t.Fatal("refreeze lost an edge")
	}
}

func TestWithoutEdge(t *testing.T) {
	g := cycle(5)
	h := g.WithoutEdge(0, 1)
	if h.HasEdge(0, 1) {
		t.Fatal("WithoutEdge left the edge in place")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("WithoutEdge mutated the receiver")
	}
	if h.Size() != g.Size()-1 {
		t.Fatalf("sizes: h=%d g=%d, want one fewer", h.Size(), g.Size())
	}
	if !h.HasEdge(1, 2) || !h.HasEdge(4, 0) {
		t.Fatal("WithoutEdge dropped an unrelated edge")
	}
	if g.WithoutEdge(0, 2) != g {
		t.Fatal("removing an absent edge must return the receiver")
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(4, []Edge{{1, 3}, {0, 2}, {2, 1}, {3, 1}}) // dup (1,3)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (duplicate coalesced)", g.Size())
	}
	want := []Edge{{0, 2}, {1, 2}, {1, 3}}
	got := g.Edges()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", got, want)
		}
	}
	if _, err := FromEdges(3, []Edge{{0, 3}}); err == nil {
		t.Fatal("out-of-range edge must error")
	}
	if _, err := FromEdges(3, []Edge{{1, 1}}); err == nil {
		t.Fatal("self-loop must error")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Fatal("negative order must error")
	}
}

func TestDegreeStats(t *testing.T) {
	b := NewBuilder(4) // star around 0 plus an isolated node 3
	b.MustAddEdge(0, 1)
	b.MustAddEdge(0, 2)
	g := b.Freeze()
	minDeg, minNode := g.MinDegree()
	if minDeg != 0 || minNode != 3 {
		t.Fatalf("MinDegree = (%d,%d), want (0,3)", minDeg, minNode)
	}
	maxDeg, maxNode := g.MaxDegree()
	if maxDeg != 2 || maxNode != 0 {
		t.Fatalf("MaxDegree = (%d,%d), want (2,0)", maxDeg, maxNode)
	}
	degs := g.Degrees()
	want := []int{2, 1, 1, 0}
	for i := range want {
		if degs[i] != want[i] {
			t.Fatalf("Degrees = %v, want %v", degs, want)
		}
	}
}

func TestDegreeStatsEmpty(t *testing.T) {
	var g Graph
	if d, v := g.MinDegree(); d != -1 || v != -1 {
		t.Fatalf("MinDegree on empty = (%d,%d), want (-1,-1)", d, v)
	}
	if d, v := g.MaxDegree(); d != -1 || v != -1 {
		t.Fatalf("MaxDegree on empty = (%d,%d), want (-1,-1)", d, v)
	}
}

func TestIsRegular(t *testing.T) {
	g := cycle(5)
	if !g.IsRegular(2) {
		t.Fatal("C5 must be 2-regular")
	}
	if g.IsRegular(3) {
		t.Fatal("C5 is not 3-regular")
	}
	b := g.Thaw()
	b.MustAddEdge(0, 2)
	if b.Freeze().IsRegular(2) {
		t.Fatal("C5 plus a chord is not 2-regular")
	}
}

// cycle returns the n-cycle 0-1-...-n-1-0.
func cycle(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(v, (v+1)%n)
	}
	return b.Freeze()
}

// path returns the n-path 0-1-...-n-1.
func path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.MustAddEdge(v, v+1)
	}
	return b.Freeze()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.Freeze()
}

func TestPropertyEdgeCountMatchesHandshake(t *testing.T) {
	// For random graphs, sum of degrees equals twice the edge count and
	// every reported edge exists in both adjacency lists.
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		g := randomGraph(n, uint64(seed))
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		if sum != 2*g.Size() {
			return false
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) || e.U >= e.V {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRemoveUndoesAdd(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		b := randomBuilder(n, uint64(seed))
		before := b.Size()
		u, v := int(seed)%n, int(seed/7)%n
		if u == v {
			return true
		}
		had := b.HasEdge(u, v)
		if err := b.AddEdge(u, v); err != nil {
			return false
		}
		if !b.RemoveEdge(u, v) {
			return false
		}
		if had {
			// Edge pre-existed: add was a no-op, remove deleted it.
			return b.Size() == before-1
		}
		return b.Size() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFromEdgesMatchesBuilder(t *testing.T) {
	// Bulk construction and incremental construction must freeze to the
	// same graph.
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		g := randomGraph(n, uint64(seed))
		h := MustFromEdges(n, g.Edges())
		if h.Order() != g.Order() || h.Size() != g.Size() {
			return false
		}
		hEdges := h.Edges()
		for i, e := range g.Edges() {
			if hEdges[i] != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomBuilder builds a deterministic pseudo-random graph on n nodes.
func randomBuilder(n int, seed uint64) *Builder {
	b := NewBuilder(n)
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if next()%3 == 0 {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b
}

// randomGraph is the frozen view of randomBuilder.
func randomGraph(n int, seed uint64) *Graph {
	return randomBuilder(n, seed).Freeze()
}

package member

import (
	"testing"

	"lhg/internal/check"
	"lhg/internal/core"
)

func kdiamondEngine(k, n int) (core.Reconfigurer, error) {
	return core.NewKDiamondGrowerAt(k, n)
}

func newSystem(t *testing.T, k, n int) *System {
	t.Helper()
	s, err := New(k, n, kdiamondEngine)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	if _, err := New(3, 10, nil); err == nil {
		t.Fatal("nil engine must error")
	}
	if _, err := New(3, 4, kdiamondEngine); err == nil {
		t.Fatal("n < 2k must error")
	}
}

func TestJoinSequenceKeepsConsistentViews(t *testing.T) {
	s := newSystem(t, 3, 6)
	for i := 0; i < 10; i++ {
		rep, err := s.ProposeJoin()
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		if rep.View.Version != i+1 || rep.View.Size != 7+i {
			t.Fatalf("join %d installed view %+v", i, rep.View)
		}
		if !s.ConsistentViews() {
			t.Fatalf("join %d left inconsistent views: %v", i, s.Views())
		}
		if rep.Applied != 6+i {
			t.Fatalf("join %d applied by %d members, want %d", i, rep.Applied, 6+i)
		}
	}
	if s.Size() != 16 {
		t.Fatalf("size = %d, want 16", s.Size())
	}
}

func TestCrashThenRepair(t *testing.T) {
	s := newSystem(t, 4, 20)
	if err := s.Crash(3, 7, 11); err != nil { // k-1 = 3 crashes
		t.Fatal(err)
	}
	if s.CrashedCount() != 3 {
		t.Fatalf("crashed = %d", s.CrashedCount())
	}
	// Application traffic still reaches every survivor pre-repair.
	res, err := s.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Reached != 17 {
		t.Fatalf("degraded broadcast: %v", res)
	}
	// Repair removes the dead members and rebuilds at 17.
	rep, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rep.View.Size != 17 || s.Size() != 17 {
		t.Fatalf("repair produced size %d (report %+v)", s.Size(), rep.View)
	}
	if !s.ConsistentViews() {
		t.Fatal("views inconsistent after repair")
	}
	if s.CrashedCount() != 0 {
		t.Fatal("crashed members must be gone after repair")
	}
	// The repaired topology is a verified LHG again.
	r, err := check.Verify(s.Graph(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsLHG() {
		t.Fatalf("repaired topology is not an LHG: %s", r)
	}
}

func TestRepairNothingToDo(t *testing.T) {
	s := newSystem(t, 3, 8)
	if _, err := s.Repair(); err == nil {
		t.Fatal("repair with no crashes must error")
	}
}

func TestCrashUnknownMember(t *testing.T) {
	s := newSystem(t, 3, 8)
	if err := s.Crash(99); err == nil {
		t.Fatal("unknown member must error")
	}
}

func TestJoinWithCrashedMembersStillConsistent(t *testing.T) {
	// Joins keep working while k-1 crashed members are still wired in.
	s := newSystem(t, 4, 16)
	if err := s.Crash(2, 9, 14); err != nil {
		t.Fatal(err)
	}
	rep, err := s.ProposeJoin()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 13 { // 16 - 3 alive
		t.Fatalf("applied by %d, want 13", rep.Applied)
	}
	if !s.ConsistentViews() {
		t.Fatal("alive views inconsistent")
	}
	// The crashed members' installed views lag behind.
	views := s.Views()
	if views[2] == s.CurrentView() {
		t.Fatal("crashed member cannot have installed the new view")
	}
}

func TestTooManyCrashesBlockViewChanges(t *testing.T) {
	// With k crashes the adversary could cut the flood; with the sequencer
	// pattern and k random-ish crashes the flood may still succeed, so
	// force a real cut: crash every neighbor of the last member.
	s := newSystem(t, 3, 12)
	g := s.Graph()
	victim := g.Order() - 1
	nbrs := g.Neighbors(victim)
	if err := s.Crash(nbrs...); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProposeJoin(); err == nil {
		t.Fatal("isolated member must block the view change")
	}
}

func TestEveryMemberCrashed(t *testing.T) {
	s := newSystem(t, 3, 6)
	if err := s.Crash(0, 1, 2, 3, 4, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Broadcast(); err == nil {
		t.Fatal("no alive sequencer must error")
	}
}

func TestRepairChurnAccounting(t *testing.T) {
	s := newSystem(t, 3, 14)
	if err := s.Crash(0, 6); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Churn.Kept+rep.Churn.Added != s.Graph().Size() {
		t.Fatalf("churn accounting: %+v vs new m=%d", rep.Churn, s.Graph().Size())
	}
}

// TestRepairIssuesDeltaSurgery is the O(changed-edges) guarantee: a crash
// repair's churn must equal, edit for edit, the net delta of an independent
// engine shrunk by the same batch — and stay bounded by O(k²) per departed
// member, independent of n. A canonical rebuild would count ~m = nk/2
// operations and fail both assertions.
func TestRepairIssuesDeltaSurgery(t *testing.T) {
	const (
		k    = 3
		n    = 60
		dead = 3
	)
	s := newSystem(t, k, n)
	if err := s.Crash(5, 17, 29); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the same surgery on a fresh engine at the same size.
	ref, err := core.NewKDiamondGrowerAt(k, n)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Apply([]core.Change{core.ChangeLeave, core.ChangeLeave, core.ChangeLeave})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Churn.Added != len(want.Added) || rep.Churn.Removed != len(want.Removed) {
		t.Fatalf("repair churn %+v, want exactly added=%d removed=%d (net delta surgery)",
			rep.Churn, len(want.Added), len(want.Removed))
	}
	if got, wantDelta := rep.Delta, want; len(got.Added) != len(wantDelta.Added) ||
		len(got.Removed) != len(wantDelta.Removed) {
		t.Fatalf("report delta %v, want %v", got, wantDelta)
	}
	if bound := dead * 4 * k * k; rep.Churn.Total() > bound {
		t.Fatalf("repair issued %d edits for %d departures, exceeds O(k²) bound %d",
			rep.Churn.Total(), dead, bound)
	}
	if rep.Churn.Kept+rep.Churn.Added != s.Graph().Size() {
		t.Fatalf("churn accounting: %+v vs new m=%d", rep.Churn, s.Graph().Size())
	}
}

// TestJoinChurnIsDeltaCounts: admissions report the exact surgery too.
func TestJoinChurnIsDeltaCounts(t *testing.T) {
	const k = 3
	s := newSystem(t, k, 40)
	ref, err := core.NewKDiamondGrowerAt(k, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		rep, err := s.ProposeJoin()
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Grow()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Churn.Added != len(want.Added) || rep.Churn.Removed != len(want.Removed) {
			t.Fatalf("join %d churn %+v, want added=%d removed=%d",
				i, rep.Churn, len(want.Added), len(want.Removed))
		}
	}
}

// TestRepairBelowMinimumFails: shrinking past 2k is refused up front, with
// no partial surgery applied.
func TestRepairBelowMinimumFails(t *testing.T) {
	s := newSystem(t, 3, 7) // 2k = 6: one leave is fine, two are not
	if err := s.Crash(1, 4); err != nil {
		t.Fatal(err)
	}
	before := s.Graph()
	if _, err := s.Repair(); err == nil {
		t.Fatal("repair below 2k must fail")
	}
	if s.Size() != 7 || s.Graph().Size() != before.Size() {
		t.Fatal("failed repair must not mutate the topology")
	}
}

package main

import (
	"fmt"
	"io"

	"lhg"
	"lhg/internal/check"
	"lhg/internal/flood"
	"lhg/internal/sim"
)

// nearestFeasible returns the smallest n' >= n with Exists(c, n', k).
// The LHG constraints cover every n >= 2k; JD has gaps, so n' may exceed n
// by a few nodes — the table prints the n actually used.
func nearestFeasible(c lhg.Constraint, n, k int) (int, error) {
	for cand := n; cand <= n+4*k; cand++ {
		if lhg.Exists(c, cand, k) {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("no feasible size near n=%d for %v (k=%d)", n, c, k)
}

// runE10 is the headline comparison: classic Harary diameter grows linearly
// with n, every LHG construction logarithmically.
func runE10(w io.Writer) error {
	k := 4
	sizes := []int{16, 32, 64, 128, 256, 512}
	fmt.Fprintf(w, "k=%d, diameter (n actually used in parentheses when adjusted); moore = best\n", k)
	fmt.Fprintf(w, "theoretical diameter for any degree-%d graph of that size\n", k)
	fmt.Fprintf(w, "%-6s %-14s %-14s %-14s %-14s %-6s\n", "n", "harary", "jd", "ktree", "kdiamond", "moore")
	for _, n := range sizes {
		fmt.Fprintf(w, "%-6d", n)
		for _, c := range []lhg.Constraint{lhg.Harary, lhg.JD, lhg.KTree, lhg.KDiamond} {
			used, err := nearestFeasible(c, n, k)
			if err != nil {
				return err
			}
			g, err := lhg.Build(expCtx, c, used, k)
			if err != nil {
				return err
			}
			cell := fmt.Sprintf("%d", g.Diameter())
			if used != n {
				cell = fmt.Sprintf("%d (n=%d)", g.Diameter(), used)
			}
			fmt.Fprintf(w, " %-13s", cell)
		}
		fmt.Fprintf(w, " %-6d\n", check.MooreDiameterLowerBound(n, k))
	}
	fmt.Fprintln(w, "shape: harary ~ n/(2*floor(k/2)) (linear); LHGs ~ 2*log_{k-1}(n) (logarithmic),")
	fmt.Fprintln(w, "within a small constant factor of the Moore optimum")
	return nil
}

// runE11 measures fault-free flooding latency in synchronous rounds — the
// quantity the ICDCS 2001 paper optimizes.
func runE11(w io.Writer) error {
	k := 4
	sizes := []int{16, 32, 64, 128, 256, 512}
	fmt.Fprintf(w, "k=%d, flood rounds to full coverage from node 0 (fault-free)\n", k)
	fmt.Fprintf(w, "%-6s %-10s %-10s %-10s %-10s\n", "n", "harary", "jd", "ktree", "kdiamond")
	for _, n := range sizes {
		fmt.Fprintf(w, "%-6d", n)
		for _, c := range []lhg.Constraint{lhg.Harary, lhg.JD, lhg.KTree, lhg.KDiamond} {
			used, err := nearestFeasible(c, n, k)
			if err != nil {
				return err
			}
			g, err := lhg.Build(expCtx, c, used, k)
			if err != nil {
				return err
			}
			res, err := lhg.Flood(expCtx, g, 0)
			if err != nil {
				return err
			}
			if !res.Complete {
				return fmt.Errorf("fault-free flood incomplete on %v(%d,%d)", c, used, k)
			}
			fmt.Fprintf(w, " %-9d", res.Rounds)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runE12 is the resilience experiment: with f <= k-1 failures every flood
// on a k-connected topology is complete; at f = k the adversary can cut it.
func runE12(w io.Writer) error {
	const (
		k      = 4
		n      = 60
		trials = 100
	)
	fmt.Fprintf(w, "n=%d, k=%d, %d random trials per cell; cell = fraction of complete floods\n", n, k, trials)
	fmt.Fprintf(w, "%-10s %-6s %-10s %-12s %-12s\n", "topology", "f", "random", "adversarial", "guarantee")
	for _, c := range []lhg.Constraint{lhg.Harary, lhg.KTree, lhg.KDiamond} {
		used, err := nearestFeasible(c, n, k)
		if err != nil {
			return err
		}
		g, err := lhg.Build(expCtx, c, used, k)
		if err != nil {
			return err
		}
		for f := 0; f <= k; f++ {
			rng := sim.NewRNG(uint64(1000*f + 7))
			rel, err := flood.Reliability(g, 0, f, trials, rng)
			if err != nil {
				return err
			}
			adv, err := flood.AdversarialNodeFailures(g, 0, f)
			if err != nil {
				return err
			}
			res, err := flood.Run(g, 0, adv)
			if err != nil {
				return err
			}
			advCell := "complete"
			if !res.Complete {
				advCell = fmt.Sprintf("cut (%d/%d)", res.Reached, res.Alive)
			}
			guarantee := "yes (f <= k-1)"
			if f >= k {
				guarantee = "no (f >= k)"
			}
			fmt.Fprintf(w, "%-10s %-6d %-10.3f %-12s %-12s\n", c, f, rel, advCell, guarantee)
			if f < k && (rel != 1.0 || !res.Complete) {
				return fmt.Errorf("%v(%d,%d) violated the f<=k-1 delivery guarantee at f=%d", c, used, k, f)
			}
		}
	}
	return nil
}

// runE13 reports the flooding message cost, which is twice the edge count
// on a complete flood — the reason k-regularity (minimum edges) matters.
func runE13(w io.Writer) error {
	k := 3
	fmt.Fprintf(w, "k=%d; m = edges, msg = flood messages (complete flood sends over every edge twice)\n", k)
	fmt.Fprintf(w, "%-6s %-16s %-16s %-16s %-10s\n", "n", "harary m/msg", "ktree m/msg", "kdiamond m/msg", "min nk/2")
	for _, n := range []int{20, 40, 60, 80, 120} {
		fmt.Fprintf(w, "%-6d", n)
		for _, c := range []lhg.Constraint{lhg.Harary, lhg.KTree, lhg.KDiamond} {
			g, err := lhg.Build(expCtx, c, n, k)
			if err != nil {
				return err
			}
			res, err := lhg.Flood(expCtx, g, 0)
			if err != nil {
				return err
			}
			if res.Messages != 2*g.Size() {
				return fmt.Errorf("flood messages %d != 2m=%d on %v(%d,%d)",
					res.Messages, 2*g.Size(), c, n, k)
			}
			fmt.Fprintf(w, " %-15s", fmt.Sprintf("%d/%d", g.Size(), res.Messages))
		}
		fmt.Fprintf(w, " %-10d\n", n*k/2)
	}
	fmt.Fprintln(w, "k-regular sizes (K-DIAMOND: every n = 2k + a(k-1)) hit the nk/2 minimum exactly")
	return nil
}

// Package graph provides the undirected-graph substrate used by every other
// module in this repository: adjacency storage, traversal, distance and
// degree queries, and deterministic iteration order.
//
// The package follows a two-phase build/freeze design:
//
//   - Builder is the mutable phase: append nodes and edges freely (and, for
//     the incremental growers, remove them); nothing is kept sorted while
//     building.
//   - Graph is the frozen phase: an immutable compressed-sparse-row (CSR)
//     view produced by Builder.Freeze or by the bulk constructors New and
//     FromEdges. A frozen Graph is never mutated, so it is safe to share
//     across goroutines without cloning — the property the parallel
//     verification pipeline in internal/check relies on.
//
// Nodes are dense non-negative integers in [0, Order()). All operations are
// deterministic: neighbor rows are sorted at freeze time so that algorithms
// built on top (constructions, floods, encodings) are reproducible run to
// run.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph (no self-loops, no
// multi-edges) over nodes 0..n-1, stored in compressed sparse row form: one
// flat neighbor array indexed by per-node offsets. The zero value is an
// empty graph with no nodes.
//
// Graphs are produced by Builder.Freeze, New or FromEdges and are never
// modified afterwards; every method is safe for concurrent use. To derive a
// modified topology, use Thaw (full mutability) or WithoutEdge (single-edge
// removal).
type Graph struct {
	off   []int32 // off[v]..off[v+1] delimits v's row in nbr; len n+1
	nbr   []int32 // concatenated sorted neighbor rows; len 2m
	edges int
}

// New returns an empty (edgeless) frozen graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{off: make([]int32, n+1)}
}

// FromEdges bulk-builds a frozen graph over n nodes from an edge list,
// sorting each adjacency row exactly once (instead of maintaining sorted
// order per insertion). Duplicate edges are coalesced; an out-of-range
// endpoint or a self-loop is an error. This is the preferred constructor
// for decode paths and any caller that already holds a complete edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	deg := make([]int32, n+1)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop on node %d", e.U)
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	off := deg
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	nbr := make([]int32, off[n])
	fill := make([]int32, n)
	for _, e := range edges {
		nbr[off[e.U]+fill[e.U]] = int32(e.V)
		fill[e.U]++
		nbr[off[e.V]+fill[e.V]] = int32(e.U)
		fill[e.V]++
	}
	g := &Graph{off: off, nbr: nbr}
	g.sortRows()
	g.dedupRows()
	return g, nil
}

// MustFromEdges is FromEdges for callers that guarantee valid input; it
// panics on error.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// sortRows sorts every adjacency row in place.
func (g *Graph) sortRows() {
	n := g.Order()
	for v := 0; v < n; v++ {
		row := g.nbr[g.off[v]:g.off[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
}

// dedupRows removes duplicate entries from every (sorted) row, compacting
// nbr and rebuilding the offsets, and recounts the edges.
func (g *Graph) dedupRows() {
	n := g.Order()
	w := int32(0)
	for v := 0; v < n; v++ {
		start, end := g.off[v], g.off[v+1]
		g.off[v] = w
		for i := start; i < end; i++ {
			if i > start && g.nbr[i] == g.nbr[i-1] {
				continue
			}
			g.nbr[w] = g.nbr[i]
			w++
		}
	}
	g.off[n] = w
	g.nbr = g.nbr[:w]
	g.edges = int(w) / 2
}

// row returns v's neighbor row (shared storage — callers must not mutate).
func (g *Graph) row(v int) []int32 {
	return g.nbr[g.off[v]:g.off[v+1]]
}

// Order returns the number of nodes.
func (g *Graph) Order() int {
	if len(g.off) == 0 {
		return 0
	}
	return len(g.off) - 1
}

// Size returns the number of edges.
func (g *Graph) Size() int { return g.edges }

// Thaw returns a new Builder pre-loaded with g's nodes and edges; mutations
// on the builder never affect g.
func (g *Graph) Thaw() *Builder {
	b := NewBuilder(g.Order())
	b.edges = g.edges
	for v := range b.adj {
		b.adj[v] = append([]int32(nil), g.row(v)...)
	}
	return b
}

// WithoutEdge returns a frozen copy of g with the single edge (u,v)
// removed (or g itself if the edge is absent). It is a cheap O(n+m) row
// copy — no builder round-trip — for callers probing edge removals.
func (g *Graph) WithoutEdge(u, v int) *Graph {
	if !g.HasEdge(u, v) {
		return g
	}
	n := g.Order()
	h := &Graph{
		off:   make([]int32, n+1),
		nbr:   make([]int32, 0, len(g.nbr)-2),
		edges: g.edges - 1,
	}
	for w := 0; w < n; w++ {
		for _, x := range g.row(w) {
			if (w == u && int(x) == v) || (w == v && int(x) == u) {
				continue
			}
			h.nbr = append(h.nbr, x)
		}
		h.off[w+1] = int32(len(h.nbr))
	}
	return h
}

// HasEdge reports whether the edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	n := g.Order()
	if u < 0 || u >= n || v < 0 || v >= n {
		return false
	}
	row := g.row(u)
	if r := g.row(v); len(r) < len(row) {
		row, v = r, u
	}
	i := sort.Search(len(row), func(i int) bool { return int(row[i]) >= v })
	return i < len(row) && int(row[i]) == v
}

// Degree returns the degree of node v, or 0 if v is out of range.
func (g *Graph) Degree(v int) int {
	if v < 0 || v >= g.Order() {
		return 0
	}
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice is a
// copy; callers may mutate it freely.
func (g *Graph) Neighbors(v int) []int {
	if v < 0 || v >= g.Order() {
		return nil
	}
	row := g.row(v)
	out := make([]int, len(row))
	for i, w := range row {
		out[i] = int(w)
	}
	return out
}

// EachNeighbor calls fn for every neighbor of v in ascending order. It
// avoids the copy made by Neighbors for hot paths.
func (g *Graph) EachNeighbor(v int, fn func(w int)) {
	if v < 0 || v >= g.Order() {
		return
	}
	for _, w := range g.row(v) {
		fn(int(w))
	}
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int
}

// Edges returns every edge exactly once, ordered by (U,V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	g.EachEdge(func(u, v int) {
		out = append(out, Edge{U: u, V: v})
	})
	return out
}

// EachEdge calls fn for every edge exactly once with u < v, ordered by
// (u,v). It is the allocation-free alternative to Edges for hot paths such
// as flow-network assembly.
func (g *Graph) EachEdge(fn func(u, v int)) {
	n := g.Order()
	for u := 0; u < n; u++ {
		for _, w := range g.row(u) {
			if v := int(w); u < v {
				fn(u, v)
			}
		}
	}
}

// Degrees returns the degree sequence indexed by node.
func (g *Graph) Degrees() []int {
	out := make([]int, g.Order())
	for v := range out {
		out[v] = g.Degree(v)
	}
	return out
}

// MinDegree returns the smallest degree and one node attaining it.
// It returns (-1, -1) for the empty graph.
func (g *Graph) MinDegree() (deg, node int) {
	n := g.Order()
	if n == 0 {
		return -1, -1
	}
	deg, node = g.Degree(0), 0
	for v := 1; v < n; v++ {
		if d := g.Degree(v); d < deg {
			deg, node = d, v
		}
	}
	return deg, node
}

// MaxDegree returns the largest degree and one node attaining it.
// It returns (-1, -1) for the empty graph.
func (g *Graph) MaxDegree() (deg, node int) {
	n := g.Order()
	if n == 0 {
		return -1, -1
	}
	deg, node = g.Degree(0), 0
	for v := 1; v < n; v++ {
		if d := g.Degree(v); d > deg {
			deg, node = d, v
		}
	}
	return deg, node
}

// IsRegular reports whether every node has degree exactly k.
func (g *Graph) IsRegular(k int) bool {
	for v, n := 0, g.Order(); v < n; v++ {
		if g.Degree(v) != k {
			return false
		}
	}
	return true
}

package core

import (
	"errors"
	"testing"
	"testing/quick"

	"lhg/internal/check"
)

func TestBuildKTreeRejectsInvalidPairs(t *testing.T) {
	tests := []struct {
		name string
		n, k int
	}{
		{name: "k=2 degenerates", n: 10, k: 2},
		{name: "k=0", n: 10, k: 0},
		{name: "n below 2k", n: 7, k: 4},
		{name: "n=k", n: 4, k: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := BuildKTree(tt.n, tt.k)
			if err == nil {
				t.Fatalf("BuildKTree(%d,%d) succeeded, want error", tt.n, tt.k)
			}
			if !errors.Is(err, ErrNotConstructible) {
				t.Fatalf("error %v does not wrap ErrNotConstructible", err)
			}
			var perr *PairError
			if !errors.As(err, &perr) {
				t.Fatalf("error %v is not a PairError", err)
			}
			if perr.N != tt.n || perr.K != tt.k {
				t.Fatalf("PairError carries (%d,%d), want (%d,%d)", perr.N, perr.K, tt.n, tt.k)
			}
		})
	}
}

// TestTheorem2Existence: EX_K-TREE(n,k) = true iff n >= 2k — and the builder
// agrees with the closed form on every pair in the sweep.
func TestTheorem2Existence(t *testing.T) {
	for k := 3; k <= 6; k++ {
		for n := k + 1; n <= 12*k; n++ {
			want := n >= 2*k
			if got := ExistsKTree(n, k); got != want {
				t.Fatalf("ExistsKTree(%d,%d) = %t, want %t", n, k, got, want)
			}
			kt, err := BuildKTree(n, k)
			if (err == nil) != want {
				t.Fatalf("BuildKTree(%d,%d) err=%v, closed form says %t", n, k, err, want)
			}
			if err != nil {
				continue
			}
			if kt.Real.Graph.Order() != n {
				t.Fatalf("BuildKTree(%d,%d) produced %d nodes", n, k, kt.Real.Graph.Order())
			}
			if err := ValidateKTree(kt.Blue); err != nil {
				t.Fatalf("blueprint for (%d,%d) violates K-TREE: %v", n, k, err)
			}
		}
	}
}

// TestTheorem2GraphsAreLHGs verifies the constructed graphs satisfy all
// four LHG properties (the content of Theorem 1).
func TestTheorem2GraphsAreLHGs(t *testing.T) {
	for k := 3; k <= 5; k++ {
		for n := 2 * k; n <= 8*k; n++ {
			kt, err := BuildKTree(n, k)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := check.QuickVerify(kt.Real.Graph, k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				r, _ := check.Verify(kt.Real.Graph, k)
				t.Fatalf("K-TREE(%d,%d) is not an LHG: %s", n, k, r)
			}
		}
	}
}

// TestTheorem3Regularity: REG_K-TREE(n,k) iff n = 2k + 2α(k-1), and the
// built graph is k-regular exactly then.
func TestTheorem3Regularity(t *testing.T) {
	for k := 3; k <= 6; k++ {
		for n := 2 * k; n <= 12*k; n++ {
			want := (n-2*k)%(2*(k-1)) == 0
			if got := RegularKTree(n, k); got != want {
				t.Fatalf("RegularKTree(%d,%d) = %t, want %t", n, k, got, want)
			}
			kt, err := BuildKTree(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if got := kt.Real.Graph.IsRegular(k); got != want {
				t.Fatalf("K-TREE(%d,%d) regular=%t, Theorem 3 says %t", n, k, got, want)
			}
		}
	}
}

// TestKTreeDegreeRanges checks the degree bounds from the Lemma 2 case
// analysis: every degree lies in [k, 3k-3].
func TestKTreeDegreeRanges(t *testing.T) {
	for k := 3; k <= 6; k++ {
		for n := 2 * k; n <= 10*k; n += 3 {
			kt, err := BuildKTree(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for v, d := range kt.Real.Graph.Degrees() {
				if d < k || d > 3*k-3 {
					t.Fatalf("K-TREE(%d,%d) node %v has degree %d outside [k, 3k-3] = [%d,%d]",
						n, k, v, d, k, 3*k-3)
				}
			}
		}
	}
}

// TestKTreeEdgeCount: m = k * (tree edges) = k*(L + I - 1); regular
// instances have exactly nk/2 edges, the minimum for k-connectivity.
func TestKTreeEdgeCount(t *testing.T) {
	for k := 3; k <= 5; k++ {
		for n := 2 * k; n <= 10*k; n++ {
			kt, err := BuildKTree(n, k)
			if err != nil {
				t.Fatal(err)
			}
			blue := kt.Blue
			treeEdges := blue.Positions() - 1
			if got := kt.Real.Graph.Size(); got != k*treeEdges {
				t.Fatalf("K-TREE(%d,%d) m=%d, want k*(positions-1)=%d", n, k, got, k*treeEdges)
			}
			if RegularKTree(n, k) && kt.Real.Graph.Size() != n*k/2 {
				t.Fatalf("regular K-TREE(%d,%d) has %d edges, want nk/2=%d",
					n, k, kt.Real.Graph.Size(), n*k/2)
			}
		}
	}
}

func TestKTreeDecompositionFields(t *testing.T) {
	tests := []struct {
		n, k, alpha, j int
	}{
		{n: 6, k: 3, alpha: 0, j: 0},
		{n: 9, k: 3, alpha: 0, j: 3},
		{n: 10, k: 3, alpha: 1, j: 0},
		{n: 21, k: 3, alpha: 3, j: 3},
		{n: 16, k: 4, alpha: 1, j: 2},
	}
	for _, tt := range tests {
		kt, err := BuildKTree(tt.n, tt.k)
		if err != nil {
			t.Fatal(err)
		}
		if kt.Alpha != tt.alpha || kt.J != tt.j {
			t.Fatalf("BuildKTree(%d,%d): α=%d j=%d, want α=%d j=%d",
				tt.n, tt.k, kt.Alpha, kt.J, tt.alpha, tt.j)
		}
	}
}

// TestKTreeSharedLeafDegrees: every shared leaf is adjacent to exactly one
// node in each tree copy (rule 2).
func TestKTreeSharedLeafDegrees(t *testing.T) {
	kt, err := BuildKTree(26, 4)
	if err != nil {
		t.Fatal(err)
	}
	for p, kind := range kt.Blue.Kind {
		if kind != SharedLeaf {
			continue
		}
		leaf := kt.Real.LeafNode[p]
		if got := kt.Real.Graph.Degree(leaf); got != 4 {
			t.Fatalf("shared leaf %d (pos %d) has degree %d, want k=4", leaf, p, got)
		}
	}
}

// TestKTreeLogDiameter asserts the P4 bound over a growing sweep, the
// defining improvement over classic Harary graphs.
func TestKTreeLogDiameter(t *testing.T) {
	k := 3
	for _, n := range []int{6, 14, 30, 62, 126, 254} {
		kt, err := BuildKTree(n, k)
		if err != nil {
			t.Fatal(err)
		}
		diam := kt.Real.Graph.Diameter()
		if bound := check.DiameterBound(n, k); diam > bound {
			t.Fatalf("K-TREE(%d,%d) diameter %d exceeds bound %d", n, k, diam, bound)
		}
	}
}

func TestPropertyKTreeAlwaysVerifies(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		k := int(kRaw%4) + 3    // 3..6
		n := 2*k + int(nRaw)%60 // 2k..2k+59
		kt, err := BuildKTree(n, k)
		if err != nil {
			return false
		}
		if kt.Real.Graph.Order() != n {
			return false
		}
		if ValidateKTree(kt.Blue) != nil {
			return false
		}
		ok, err := check.QuickVerify(kt.Real.Graph, k)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyKTreeDeterministic(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		k := int(kRaw%3) + 3
		n := 2*k + int(nRaw)%40
		a, err := BuildKTree(n, k)
		if err != nil {
			return false
		}
		b, err := BuildKTree(n, k)
		if err != nil {
			return false
		}
		ea, eb := a.Real.Graph.Edges(), b.Real.Graph.Edges()
		if len(ea) != len(eb) {
			return false
		}
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

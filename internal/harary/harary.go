// Package harary constructs the classic Harary graphs H(k,n) (F. Harary,
// "The maximum connectivity of a graph", 1962): the k-connected graphs on n
// nodes with the minimum possible number of edges, ⌈kn/2⌉.
//
// Classic Harary graphs are circulants (plus one adjustment edge set for odd
// k and odd n) and have *linear* diameter ~n/(2⌊k/2⌋). They are the baseline
// the Logarithmic Harary Graph papers improve on: LHGs keep the connectivity
// and near-minimal edge count while reducing the diameter to O(log n).
package harary

import (
	"fmt"

	"lhg/internal/graph"
)

// Build returns the classic Harary graph H(k,n). It requires 2 <= k < n.
//
// Construction (Harary 1962):
//   - k = 2r: circulant C_n(1..r).
//   - k = 2r+1, n even: circulant C_n(1..r) plus all diameters v—v+n/2.
//   - k = 2r+1, n odd: circulant C_n(1..r) plus the edges
//     v—v+(n-1)/2 for v in 0..(n-1)/2 and additionally 0—(n+1)/2.
func Build(n, k int) (*graph.Graph, error) {
	if k < 2 {
		return nil, fmt.Errorf("harary: k=%d must be >= 2", k)
	}
	if n <= k {
		return nil, fmt.Errorf("harary: need n > k, got n=%d k=%d", n, k)
	}
	b := graph.NewBuilder(n)
	r := k / 2
	for v := 0; v < n; v++ {
		for d := 1; d <= r; d++ {
			b.MustAddEdge(v, (v+d)%n)
		}
	}
	if k%2 == 1 {
		if n%2 == 0 {
			for v := 0; v < n/2; v++ {
				b.MustAddEdge(v, v+n/2)
			}
		} else {
			half := (n - 1) / 2
			for v := 0; v <= half; v++ {
				b.MustAddEdge(v, (v+half)%n)
			}
		}
	}
	return b.Freeze(), nil
}

// EdgeCount returns the number of edges of H(k,n), ⌈kn/2⌉.
func EdgeCount(n, k int) int { return (k*n + 1) / 2 }

// DiameterEstimate returns the asymptotic diameter ~⌈n/(2·max(1,⌊k/2⌋))⌉ of
// H(k,n); exact for even k, within O(1) otherwise. It documents the linear
// growth LHGs eliminate.
func DiameterEstimate(n, k int) int {
	step := k / 2
	if step < 1 {
		step = 1
	}
	return (n + 2*step - 1) / (2 * step)
}

package core

import (
	"testing"

	"lhg/internal/check"
)

// TestSmokePaperWitnesses is the first end-to-end sanity pass over the
// witness pairs drawn in the paper's figures. Deeper suites live in the
// dedicated *_test.go files.
func TestSmokePaperWitnesses(t *testing.T) {
	tests := []struct {
		name    string
		n, k    int
		build   func(n, k int) (*Realization, *Blueprint, error)
		regular bool
	}{
		{name: "ktree 6,3 (fig 2a)", n: 6, k: 3, build: buildKTreeRB, regular: true},
		{name: "ktree 9,3 (fig 2b)", n: 9, k: 3, build: buildKTreeRB, regular: false},
		{name: "ktree 10,3 (fig 2c)", n: 10, k: 3, build: buildKTreeRB, regular: true},
		{name: "ktree 21,3 (fig 1)", n: 21, k: 3, build: buildKTreeRB, regular: false},
		{name: "kdiamond 7,3 (fig 3a)", n: 7, k: 3, build: buildKDiamondRB, regular: false},
		{name: "kdiamond 8,3 (fig 3b)", n: 8, k: 3, build: buildKDiamondRB, regular: true},
		{name: "kdiamond 13,3 (fig 3c)", n: 13, k: 3, build: buildKDiamondRB, regular: false},
		{name: "kdiamond 14,3 (fig 3d)", n: 14, k: 3, build: buildKDiamondRB, regular: true},
		{name: "jd 6,3", n: 6, k: 3, build: buildJDRB, regular: true},
		{name: "jd 10,3", n: 10, k: 3, build: buildJDRB, regular: true},
		{name: "jd 12,3", n: 12, k: 3, build: buildJDRB, regular: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			real, blue, err := tt.build(tt.n, tt.k)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if got := real.Graph.Order(); got != tt.n {
				t.Fatalf("graph has %d nodes, want %d", got, tt.n)
			}
			if got := blue.NodeCount(); got != tt.n {
				t.Fatalf("blueprint counts %d nodes, want %d", got, tt.n)
			}
			r, err := check.Verify(real.Graph, tt.k)
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if !r.IsLHG() {
				t.Fatalf("not an LHG: %s", r)
			}
			if r.Regular != tt.regular {
				t.Fatalf("regular=%t, want %t (%s)", r.Regular, tt.regular, r)
			}
		})
	}
}

func buildKTreeRB(n, k int) (*Realization, *Blueprint, error) {
	kt, err := BuildKTree(n, k)
	if err != nil {
		return nil, nil, err
	}
	if err := ValidateKTree(kt.Blue); err != nil {
		return nil, nil, err
	}
	return kt.Real, kt.Blue, nil
}

func buildKDiamondRB(n, k int) (*Realization, *Blueprint, error) {
	kd, err := BuildKDiamond(n, k)
	if err != nil {
		return nil, nil, err
	}
	if err := ValidateKDiamond(kd.Blue); err != nil {
		return nil, nil, err
	}
	return kd.Real, kd.Blue, nil
}

func buildJDRB(n, k int) (*Realization, *Blueprint, error) {
	jd, err := BuildJD(n, k)
	if err != nil {
		return nil, nil, err
	}
	if err := ValidateJD(jd.Blue); err != nil {
		return nil, nil, err
	}
	// Every JD blueprint must also satisfy the K-TREE constraint (§4.4).
	if err := ValidateKTree(jd.Blue); err != nil {
		return nil, nil, err
	}
	return jd.Real, jd.Blue, nil
}

package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestWriteJSONDeterministic pins the -metrics contract: under a fixed
// clock, two dumps of the same metric state are byte-identical, and the
// metric names appear in sorted order (encoding/json sorts map keys).
func TestWriteJSONDeterministic(t *testing.T) {
	withSink(t)
	prev := timeNow
	timeNow = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	t.Cleanup(func() { timeNow = prev })

	NewCounter("test.det.zebra").Add(1)
	NewCounter("test.det.alpha").Add(2)
	NewGauge("test.det.gauge").Set(3)

	var a, b bytes.Buffer
	if err := WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two dumps of the same state differ:\n%s\n---\n%s", a.String(), b.String())
	}
	ia := strings.Index(a.String(), "test.det.alpha")
	iz := strings.Index(a.String(), "test.det.zebra")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("counter names not in sorted order (alpha@%d zebra@%d):\n%s", ia, iz, a.String())
	}
	var rep Report
	if err := json.Unmarshal(a.Bytes(), &rep); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if rep.Timestamp != "2026-08-08T12:00:00Z" {
		t.Fatalf("timestamp %q not from the pinned clock", rep.Timestamp)
	}
}

// TestPrometheusSortedOutput asserts the text exposition lists families
// in sorted name order within each metric kind.
func TestPrometheusSortedOutput(t *testing.T) {
	withSink(t)
	NewCounter("test.sorted.c").Inc()
	NewCounter("test.sorted.a").Inc()
	NewCounter("test.sorted.b").Inc()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var pos []int
	for _, n := range []string{"lhg_test_sorted_a ", "lhg_test_sorted_b ", "lhg_test_sorted_c "} {
		i := strings.Index(buf.String(), n)
		if i < 0 {
			t.Fatalf("missing %q in output", n)
		}
		pos = append(pos, i)
	}
	if !sort.IntsAreSorted(pos) {
		t.Fatalf("families out of order at offsets %v:\n%s", pos, buf.String())
	}
}

// TestPromNameEscaping pins the name-mangling rules: separators map to
// underscores and anything outside the Prometheus identifier alphabet is
// replaced, never passed through.
func TestPromNameEscaping(t *testing.T) {
	cases := map[string]string{
		"check.verify.runs":   "lhg_check_verify_runs",
		"flow-probe.count":    "lhg_flow_probe_count",
		"weird name{x=\"1\"}": "lhg_weird_name_x__1__",
		"ünïcode.metric":      "lhg___n__code_metric",
		"ok_name:colon":       "lhg_ok_name:colon",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestHistogramBucketBoundaries pins the le-bucket math at the exact
// edges: a value equal to a bound lands in that bound's bucket, one past
// it in the next, and the +Inf bucket equals the total count.
func TestHistogramBucketBoundaries(t *testing.T) {
	withSink(t)
	h := NewHistogram("test.edges.hist", 10, 100)
	h.Observe(10)  // == first bound: le="10"
	h.Observe(11)  // just past: le="100"
	h.Observe(100) // == second bound: le="100"
	h.Observe(101) // past every bound: +Inf only

	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lhg_test_edges_hist_bucket{le="10"} 1`,
		`lhg_test_edges_hist_bucket{le="100"} 3`, // cumulative: 1 + 2
		`lhg_test_edges_hist_bucket{le="+Inf"} 4`,
		"lhg_test_edges_hist_sum 222",
		"lhg_test_edges_hist_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramZeroObservations pins the empty-histogram exposition:
// every bucket present, all zero, no division anywhere.
func TestHistogramZeroObservations(t *testing.T) {
	withSink(t)
	NewHistogram("test.empty.hist", 5)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lhg_test_empty_hist_bucket{le="5"} 0`,
		`lhg_test_empty_hist_bucket{le="+Inf"} 0`,
		"lhg_test_empty_hist_sum 0",
		"lhg_test_empty_hist_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

// TestProgressEdgeCases is the satellite regression test: negative
// totals never divide, a zero interval prints every add, and done >
// total stays finite.
func TestProgressEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "neg", -5)
	p.SetInterval(0)
	p.Add(3)
	p.Finish()
	out := buf.String()
	if strings.Contains(out, "%") {
		t.Fatalf("negative total must report as unknown (no percent): %q", out)
	}
	if !strings.Contains(out, "neg: 3 done") {
		t.Fatalf("missing final line: %q", out)
	}

	buf.Reset()
	p = NewProgress(&buf, "over", 2)
	p.SetInterval(0)
	for i := 0; i < 4; i++ {
		p.Add(1)
	}
	p.Finish()
	out = buf.String()
	if n := strings.Count(out, "\n"); n != 5 {
		t.Fatalf("unthrottled progress printed %d lines for 4 adds + finish, want 5:\n%s", n, out)
	}
	if !strings.Contains(out, "over: 4/2 (200.0%)") {
		t.Fatalf("overflow must stay plain arithmetic: %q", out)
	}
}

// TestProgressFirstAddPrints guards the monotonic-throttle rewrite: the
// very first Add must print immediately, not after the first interval.
func TestProgressFirstAddPrints(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "first", 100)
	p.Add(1)
	if !strings.Contains(buf.String(), "first: 1/100") {
		t.Fatalf("first Add did not print: %q", buf.String())
	}
	// And the throttle then holds.
	for i := 0; i < 50; i++ {
		p.Add(1)
	}
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("throttle broke: %d lines for 51 adds in one interval", n)
	}
}

package core

import (
	"strings"
	"testing"
)

// corrupt builds a K-TREE blueprint and lets the caller damage it before
// validation.
func corrupt(t *testing.T, n, k int, damage func(*Blueprint)) *Blueprint {
	t.Helper()
	kt, err := BuildKTree(n, k)
	if err != nil {
		t.Fatal(err)
	}
	damage(kt.Blue)
	return kt.Blue
}

func TestValidateKTreeAcceptsBuilderOutput(t *testing.T) {
	for k := 3; k <= 5; k++ {
		for n := 2 * k; n <= 6*k; n++ {
			kt, err := BuildKTree(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateKTree(kt.Blue); err != nil {
				t.Fatalf("ValidateKTree(%d,%d): %v", n, k, err)
			}
		}
	}
}

func TestValidateKTreeRejections(t *testing.T) {
	tests := []struct {
		name    string
		blue    func(t *testing.T) *Blueprint
		wantMsg string
	}{
		{
			name: "unshared leaf",
			blue: func(t *testing.T) *Blueprint {
				return corrupt(t, 10, 3, func(b *Blueprint) {
					for p, kind := range b.Kind {
						if kind == SharedLeaf {
							b.Kind[p] = UnsharedLeaf
							return
						}
					}
				})
			},
			wantMsg: "unshared",
		},
		{
			name: "too many added leaves",
			blue: func(t *testing.T) *Blueprint {
				// (9,3) has 2k-3 = 3 added leaves on the root; append a
				// fourth to exceed the budget.
				return corrupt(t, 9, 3, func(b *Blueprint) {
					id := len(b.Parent)
					b.Parent = append(b.Parent, 0)
					b.Children = append(b.Children, nil)
					b.Kind = append(b.Kind, SharedLeaf)
					b.Depth = append(b.Depth, 1)
					b.Added = append(b.Added, true)
					b.Children[0] = append(b.Children[0], id)
				})
			},
			wantMsg: "added leaves",
		},
		{
			name: "root child count",
			blue: func(t *testing.T) *Blueprint {
				return corrupt(t, 6, 3, func(b *Blueprint) {
					// Pretend a base child is an added leaf: base count drops.
					b.Added[1] = true
				})
			},
			wantMsg: "base children",
		},
		{
			name: "unbalanced",
			blue: func(t *testing.T) *Blueprint {
				// Two conversions leave leaves at depths 1 and 2; manually
				// deepen one leaf to depth 3.
				return corrupt(t, 14, 3, func(b *Blueprint) {
					// Convert a depth-2 leaf by hand into an internal node
					// with leaves at depth 3, skipping a depth-1 leaf.
					var deep int
					for p := b.Positions() - 1; p >= 0; p-- {
						if b.Kind[p] != Internal && b.Depth[p] == 2 {
							deep = p
							break
						}
					}
					b.Kind[deep] = Internal
					for i := 0; i < 2; i++ {
						id := len(b.Parent)
						b.Parent = append(b.Parent, deep)
						b.Children = append(b.Children, nil)
						b.Kind = append(b.Kind, SharedLeaf)
						b.Depth = append(b.Depth, 3)
						b.Added = append(b.Added, false)
						b.Children[deep] = append(b.Children[deep], id)
					}
				})
			},
			wantMsg: "height-balanced",
		},
		{
			name: "small k",
			blue: func(t *testing.T) *Blueprint {
				return corrupt(t, 10, 3, func(b *Blueprint) { b.K = 2 })
			},
			wantMsg: "must be >= 3",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := ValidateKTree(tt.blue(t))
			if err == nil {
				t.Fatal("validation succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tt.wantMsg)
			}
		})
	}
}

func TestValidateKDiamondAcceptsBuilderOutput(t *testing.T) {
	for k := 3; k <= 5; k++ {
		for n := 2 * k; n <= 6*k; n++ {
			kd, err := BuildKDiamond(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateKDiamond(kd.Blue); err != nil {
				t.Fatalf("ValidateKDiamond(%d,%d): %v", n, k, err)
			}
		}
	}
}

func TestValidateKDiamondAddedBudgetTighter(t *testing.T) {
	// A K-TREE (9,3) blueprint has 3 added leaves on the root — legal for
	// K-TREE (budget 2k-3=3) but illegal for K-DIAMOND (budget k-2=1).
	kt, err := BuildKTree(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateKTree(kt.Blue); err != nil {
		t.Fatalf("K-TREE validation: %v", err)
	}
	if err := ValidateKDiamond(kt.Blue); err == nil {
		t.Fatal("K-DIAMOND validation must reject 3 added leaves on one node")
	}
}

func TestValidateJDAcceptsBuilderOutput(t *testing.T) {
	for k := 3; k <= 5; k++ {
		for n := 2 * k; n <= 8*k; n++ {
			jd, err := BuildJD(n, k)
			if err != nil {
				continue
			}
			if err := ValidateJD(jd.Blue); err != nil {
				t.Fatalf("ValidateJD(%d,%d): %v", n, k, err)
			}
		}
	}
}

func TestValidateJDRejectsOddAdded(t *testing.T) {
	// Hang a single added leaf off an interior node: JD requires exactly 2.
	jd, err := BuildJD(10, 3) // α=1, β=0
	if err != nil {
		t.Fatal(err)
	}
	b := jd.Blue
	var host int
	for p := 1; p < b.Positions(); p++ {
		if b.Kind[p] == Internal {
			host = p
			break
		}
	}
	id := len(b.Parent)
	b.Parent = append(b.Parent, host)
	b.Children = append(b.Children, nil)
	b.Kind = append(b.Kind, SharedLeaf)
	b.Depth = append(b.Depth, b.Depth[host]+1)
	b.Added = append(b.Added, true)
	b.Children[host] = append(b.Children[host], id)
	if err := ValidateJD(b); err == nil {
		t.Fatal("single added leaf must be rejected by JD")
	}
	// But it is a perfectly fine K-TREE blueprint.
	if err := ValidateKTree(b); err != nil {
		t.Fatalf("K-TREE should accept one added leaf: %v", err)
	}
}

func TestValidateJDRejectsRootException(t *testing.T) {
	jd, err := BuildJD(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := jd.Blue
	for i := 0; i < 2; i++ {
		id := len(b.Parent)
		b.Parent = append(b.Parent, 0)
		b.Children = append(b.Children, nil)
		b.Kind = append(b.Kind, SharedLeaf)
		b.Depth = append(b.Depth, 1)
		b.Added = append(b.Added, true)
		b.Children[0] = append(b.Children[0], id)
	}
	if err := ValidateJD(b); err == nil {
		t.Fatal("JD must reject extra children on the root")
	}
}

func TestValidateCommonStructuralErrors(t *testing.T) {
	// Wrong depth bookkeeping must be caught.
	blue := corrupt(t, 10, 3, func(b *Blueprint) { b.Depth[2] = 7 })
	if err := ValidateKTree(blue); err == nil {
		t.Fatal("inconsistent depths must be rejected")
	}
	// Leaf with children.
	blue = corrupt(t, 10, 3, func(b *Blueprint) {
		// Make position 1 (internal after conversion? ensure a leaf) a fake
		// parent by reclassifying an internal node as a leaf.
		for p := 1; p < b.Positions(); p++ {
			if b.Kind[p] == Internal {
				b.Kind[p] = SharedLeaf
				return
			}
		}
	})
	if err := ValidateKTree(blue); err == nil {
		t.Fatal("leaf with children must be rejected")
	}
}

func TestShapeConvertExhaustion(t *testing.T) {
	s := newShape(3)
	for i := 0; i < 3; i++ {
		if err := s.convert(); err != nil {
			t.Fatalf("convert %d: %v", i, err)
		}
	}
	// 3 base leaves converted, 6 new leaves exist: more conversions are
	// fine; exhaust them all plus their children to hit the error path.
	for i := 0; i < 6; i++ {
		if err := s.convert(); err != nil {
			t.Fatalf("convert: %v", err)
		}
	}
	// Now leaves exist again (grandchildren); keep going until error would
	// require consuming every one. Instead, test the error directly on a
	// tiny hand-made shape with no base leaves.
	s2 := &shape{b: &Blueprint{
		K:        3,
		Parent:   []int{-1},
		Children: [][]int{nil},
		Kind:     []PositionKind{Internal},
		Depth:    []int{0},
		Added:    []bool{false},
	}, nextLeaf: 1, baseChild: 2}
	if err := s2.convert(); err == nil {
		t.Fatal("convert with no leaves must error")
	}
}

func TestShapeMarkUnsharedError(t *testing.T) {
	s := &shape{b: &Blueprint{
		K:        3,
		Parent:   []int{-1},
		Children: [][]int{nil},
		Kind:     []PositionKind{Internal},
		Depth:    []int{0},
		Added:    []bool{false},
	}, nextLeaf: 1, baseChild: 2}
	if err := s.markLastLeafUnshared(); err == nil {
		t.Fatal("marking with no leaves must error")
	}
}

func TestPairErrorMessage(t *testing.T) {
	_, err := BuildKTree(4, 3)
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	for _, want := range []string{"K-TREE", "n=4", "k=3"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// sweepResult is one worker's share of an all-sources BFS sweep.
type sweepResult struct {
	maxDist   int
	total     int64
	connected bool
}

// parallelSweep fans BFS-from-every-source across workers goroutines. Each
// worker owns its scratch; the frozen graph is shared read-only. Sources
// are handed out via an atomic counter so stragglers do not imbalance the
// sweep; a disconnection found by any worker — or a signal on the optional
// done channel — stops the others early (a canceled sweep reports
// disconnected; the caller's context disambiguates).
func parallelSweep(g *Graph, done <-chan struct{}, workers int) []sweepResult {
	n := g.Order()
	workers = ClampWorkers(workers, n)
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	results := make([]sweepResult, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := getScratch(n)
			defer putScratch(s)
			r := sweepResult{connected: true}
			for !stop.Load() {
				if signaled(done) {
					r.connected = false
					stop.Store(true)
					break
				}
				v := int(next.Add(1)) - 1
				if v >= n {
					break
				}
				for i := range s.dist {
					s.dist[i] = -1
				}
				if g.bfsInto(v, s) != n {
					r.connected = false
					stop.Store(true)
					break
				}
				for _, d := range s.dist {
					if int(d) > r.maxDist {
						r.maxDist = int(d)
					}
					r.total += int64(d)
				}
			}
			results[w] = r
		}(w)
	}
	wg.Wait()
	return results
}

// ClampWorkers bounds a worker count to [1, min(requested, items)]; zero
// or negative requests mean "use GOMAXPROCS". An explicit positive request
// is honored even beyond the core count — oversubscription costs little
// for these CPU-bound pools and keeps worker-count semantics (and race
// tests) deterministic across machines. The flow and check layers use it
// to size their verification pools.
func ClampWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if items > 0 && workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

package trace

import (
	"encoding/hex"
	"strings"
)

// W3C Trace Context interchange (https://www.w3.org/TR/trace-context/):
// the traceparent header carries "version-traceid-spanid-flags" with a
// two-hex-digit version, 32 hex digits of trace id, 16 of parent span id
// and two of flags. lhgd ingests the header to join an upstream trace and
// emits one on every response so clients can correlate.

// ParseTraceparent parses a traceparent header value. It accepts any
// version (per spec, unknown versions parse as version 00 if the prefix
// matches) and rejects all-zero ids, which the spec defines as invalid.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	var tid TraceID
	var sid SpanID
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return tid, sid, false
	}
	if len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) < 2 {
		return tid, sid, false
	}
	if parts[0] == "ff" {
		return tid, sid, false // forbidden version
	}
	if _, err := hex.Decode(tid[:], []byte(parts[1])); err != nil {
		return TraceID{}, sid, false
	}
	if _, err := hex.Decode(sid[:], []byte(parts[2])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

// Traceparent renders a version-00 traceparent header value with the
// sampled flag set — every trace this process records is, by definition,
// sampled.
func Traceparent(trace TraceID, span SpanID) string {
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(trace.String())
	b.WriteByte('-')
	b.WriteString(span.String())
	b.WriteString("-01")
	return b.String()
}

package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugHandlerServesAllEndpoints(t *testing.T) {
	withSink(t)
	NewCounter("test.http.counter").Add(12)

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	code, body := get(t, srv.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(body, "lhg_metrics") {
		t.Fatalf("/debug/vars missing lhg_metrics publication:\n%s", body)
	}
	if !strings.Contains(body, "test.http.counter") {
		t.Fatalf("/debug/vars missing counter snapshot:\n%s", body)
	}

	code, body = get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "lhg_test_http_counter 12") {
		t.Fatalf("/metrics missing prometheus line:\n%s", body)
	}

	code, body = get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%s", body)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	withSink(t)
	addr, stop, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	code, _ := get(t, "http://"+addr.String()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics over Serve status %d", code)
	}
}

func TestStartCLI(t *testing.T) {
	Reset()
	t.Cleanup(func() { Disable(); Reset() })

	// Neither flag: a no-op stop and the sink stays off.
	stop, err := StartCLI(false, "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if Enabled() {
		t.Fatal("sink enabled without flags")
	}

	// -metrics: sink on, report dumped at stop.
	var buf strings.Builder
	stop, err = StartCLI(true, "", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("sink not enabled by -metrics")
	}
	NewCounter("test.cli.counter").Inc()
	stop()
	if !strings.Contains(buf.String(), "test.cli.counter") {
		t.Fatalf("stop did not dump the metrics report: %q", buf.String())
	}

	// -http: endpoint announced on the log writer and reachable.
	buf.Reset()
	stop, err = StartCLI(false, "127.0.0.1:0", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	line := buf.String()
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("no endpoint announcement: %q", line)
	}
	url := strings.Fields(line[i:])[0]
	code, _ := get(t, url+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("announced endpoint not serving: %d", code)
	}
}

package check

import (
	"context"
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"lhg/internal/graph"
)

// Independent ground truth for κ and λ on small graphs, sharing no code
// with either verification pipeline: κ by exhaustive vertex-subset
// removal over an adjacency matrix, λ by a Stoer–Wagner global min-cut
// (maximum-adjacency search with contraction — no max-flow, no
// certificate). Both pipelines — full and sparsified, serial and
// parallel — are asserted against these oracles.

// oracleConnected reports connectivity of the matrix graph with the
// vertices in mask removed.
func oracleConnected(n int, adj [][]bool, mask int) bool {
	start := -1
	alive := 0
	for v := 0; v < n; v++ {
		if mask&(1<<v) == 0 {
			alive++
			if start < 0 {
				start = v
			}
		}
	}
	if alive <= 1 {
		return true
	}
	seen := make([]bool, n)
	seen[start] = true
	queue := []int{start}
	reached := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if adj[u][v] && mask&(1<<v) == 0 && !seen[v] {
				seen[v] = true
				reached++
				queue = append(queue, v)
			}
		}
	}
	return reached == alive
}

// oracleKappa is κ by definition: the smallest vertex subset whose
// removal disconnects the graph (n-1 for complete graphs, 0 when already
// disconnected).
func oracleKappa(n int, adj [][]bool) int {
	if n < 2 || !oracleConnected(n, adj, 0) {
		return 0
	}
	best := n - 1
	for mask := 1; mask < 1<<n; mask++ {
		size := bits.OnesCount(uint(mask))
		if size >= best || size > n-2 {
			continue
		}
		if !oracleConnected(n, adj, mask) {
			best = size
		}
	}
	return best
}

// stoerWagner computes the global minimum edge cut of the weighted matrix
// graph by repeated maximum-adjacency phases with s-t contraction. With
// unit weights the result is λ (0 when disconnected).
func stoerWagner(adj [][]int) int {
	n := len(adj)
	if n < 2 {
		return 0
	}
	w := make([][]int, n)
	for i := range w {
		w[i] = append([]int(nil), adj[i]...)
	}
	exist := make([]bool, n)
	for i := range exist {
		exist[i] = true
	}
	best := math.MaxInt
	for remaining := n; remaining > 1; remaining-- {
		inA := make([]bool, n)
		wt := make([]int, n)
		s, t := -1, -1
		for i := 0; i < remaining; i++ {
			sel := -1
			for v := 0; v < n; v++ {
				if exist[v] && !inA[v] && (sel == -1 || wt[v] > wt[sel]) {
					sel = v
				}
			}
			inA[sel] = true
			for v := 0; v < n; v++ {
				if exist[v] && !inA[v] {
					wt[v] += w[sel][v]
				}
			}
			s, t = t, sel
		}
		if wt[t] < best {
			best = wt[t] // cut of the phase: t against the rest
		}
		for v := 0; v < n; v++ { // contract t into s
			w[s][v] += w[t][v]
			w[v][s] = w[s][v]
		}
		exist[t] = false
	}
	return best
}

// oracleGraph draws a random matrix graph and its CSR twin.
func oracleGraph(rng *rand.Rand, n, percent int) (*graph.Graph, [][]bool, [][]int) {
	adj := make([][]bool, n)
	wts := make([][]int, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		wts[i] = make([]int, n)
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(100) < percent {
				b.MustAddEdge(u, v)
				adj[u][v], adj[v][u] = true, true
				wts[u][v], wts[v][u] = 1, 1
			}
		}
	}
	return b.Freeze(), adj, wts
}

func TestVerifyAgainstOracles(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(7)         // 4..10
		percent := 15 + rng.Intn(85) // sparse through complete
		g, adj, wts := oracleGraph(rng, n, percent)
		wantKappa := oracleKappa(n, adj)
		wantLambda := stoerWagner(wts)
		if !g.Connected() {
			wantLambda = 0 // λ is 0 by definition when disconnected
		}
		for _, opt := range []Options{
			{Workers: 1, Sparsify: SparsifyOff},
			{Workers: 1, Sparsify: SparsifyAlways},
			{Workers: 4, Sparsify: SparsifyOff},
			{Workers: 4, Sparsify: SparsifyAlways},
		} {
			r, err := VerifyCtx(ctx, g, 1, opt)
			if err != nil {
				t.Fatal(err)
			}
			if r.NodeConnectivity != wantKappa {
				t.Fatalf("seed=%d n=%d p=%d %+v: κ=%d, oracle %d",
					seed, n, percent, opt, r.NodeConnectivity, wantKappa)
			}
			if r.EdgeConnectivity != wantLambda {
				t.Fatalf("seed=%d n=%d p=%d %+v: λ=%d, oracle %d",
					seed, n, percent, opt, r.EdgeConnectivity, wantLambda)
			}
		}
	}
}

// TestOracleLambdaSingleLinkIdentity cross-checks the Stoer–Wagner oracle
// against the single-link-removal definition of λ: for a connected graph,
// λ(g) = 1 + min over edges e of λ(g − e), since some edge lies in a
// minimum cut and no single removal can drop the cut by more than one.
func TestOracleLambdaSingleLinkIdentity(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5) // 4..8
		g, _, wts := oracleGraph(rng, n, 40+rng.Intn(50))
		if !g.Connected() {
			continue
		}
		lambda := stoerWagner(wts)
		minWithout := math.MaxInt
		for _, e := range g.Edges() {
			wts[e.U][e.V], wts[e.V][e.U] = 0, 0
			sub := stoerWagner(wts)
			if !g.WithoutEdge(e.U, e.V).Connected() {
				sub = 0
			}
			wts[e.U][e.V], wts[e.V][e.U] = 1, 1
			if sub < minWithout {
				minWithout = sub
			}
		}
		if lambda != 1+minWithout {
			t.Fatalf("seed=%d: λ=%d but 1+min_e λ(g−e)=%d", seed, lambda, 1+minWithout)
		}
	}
}

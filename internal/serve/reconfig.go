package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"lhg"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
)

// POST /v1/reconfigure — stateful topology sessions.
//
// A session is a named live topology: a churn engine (core.Reconfigurer via
// the lhg facade) plus a DeltaVerifier holding the current epoch's report.
// Each request applies a batch of {joins, leaves}, returns the NET edge
// surgery of the batch and the re-verified report, and bumps the epoch.
//
// Concurrency reuses the server's refcounted singleflight and cache-fill
// invariants: the flight key pins the session's CURRENT epoch —
// reconfig|<session>|epoch=E|j=J|l=L — so a burst of identical requests
// racing at the same epoch runs exactly ONE campaign (one epoch bump, one
// verification); the rest coalesce onto its response with cached=true.
// Distinct batches racing at the same epoch serialize on the session lock;
// the losers' epochs moved under them, which surfaces as 409 so the client
// re-reads instead of double-applying.
var (
	mReqReconfig  = obs.NewCounter("serve.reconfigure.requests")
	mErrReconfig  = obs.NewCounter("serve.reconfigure.errors")
	mHitReconfig  = obs.NewCounter("serve.reconfigure.cache.hits")
	mMissReconfig = obs.NewCounter("serve.reconfigure.cache.misses")
	hLatReconfig  = obs.NewHistogram("serve.reconfigure.latency_us", latencyBounds...)
	tReconfig     = obs.NewTimer("serve.reconfigure.time")
	gSessions     = obs.NewGauge("serve.reconfigure.sessions")

	epReconfig = endpoint{mReqReconfig, mErrReconfig, mHitReconfig, mMissReconfig, hLatReconfig, tReconfig}
)

// errEpochConflict maps to HTTP 409: the session advanced between the
// caller reading its epoch and the campaign running.
var errEpochConflict = errors.New("serve: session epoch advanced concurrently, retry")

// errUnknownSession maps to HTTP 404: the request named a session that does
// not exist and did not carry the parameters to create it.
var errUnknownSession = errors.New("create it with constraint, n and k")

// errSessionLimit maps to HTTP 429: the server refuses to hold more live
// topology sessions.
var errSessionLimit = errors.New("serve: session limit reached")

// topoSession is one live topology. init runs once (under once) on the
// creating request's parameters; epoch mutations serialize on mu.
type topoSession struct {
	once    sync.Once
	initErr error

	mu         sync.Mutex
	constraint lhg.Constraint
	engine     lhg.Reconfigurer
	verifier   *lhg.DeltaVerifier
	epoch      int
	broken     bool
}

// ReconfigureRequest drives one topology session. The first request for a
// session must carry constraint/n/k to create it; later requests may omit
// them (a non-empty constraint or non-zero k is then cross-checked).
//
// Epoch, when set, is a compare-and-swap guard: the batch applies only if
// the session is still at that epoch, otherwise the request answers 409
// without touching the topology. A client that lost a response can safely
// retry with the epoch it last observed — the batch is never applied twice.
type ReconfigureRequest struct {
	Session    string `json:"session"`
	Constraint string `json:"constraint,omitempty"`
	N          int    `json:"n,omitempty"`
	K          int    `json:"k,omitempty"`
	Joins      int    `json:"joins"`
	Leaves     int    `json:"leaves"`
	Epoch      *int   `json:"epoch,omitempty"`
	Workers    int    `json:"workers,omitempty"`
}

// ReconfigureResponse reports one reconfiguration epoch: the net surgery
// that was applied and the re-verified report of the new topology.
type ReconfigureResponse struct {
	Session    string      `json:"session"`
	Constraint string      `json:"constraint"`
	Epoch      int         `json:"epoch"`
	N          int         `json:"n"`
	K          int         `json:"k"`
	Added      []lhg.Edge  `json:"added"`
	Removed    []lhg.Edge  `json:"removed"`
	Cached     bool        `json:"cached"`
	IsLHG      bool        `json:"is_lhg"`
	Report     *lhg.Report `json:"report"`
}

func (rr *ReconfigureRequest) validate() error {
	if strings.TrimSpace(rr.Session) == "" {
		return fmt.Errorf("serve: reconfigure needs a session name")
	}
	if rr.Joins < 0 || rr.Leaves < 0 {
		return fmt.Errorf("serve: joins and leaves must be >= 0, got %d/%d", rr.Joins, rr.Leaves)
	}
	// A malformed or engineless constraint is the client's fault whether
	// the session exists or not; reject it before touching session state.
	if rr.Constraint != "" {
		c, err := lhg.ParseConstraint(rr.Constraint)
		if err == nil && c != lhg.KTree && c != lhg.KDiamond {
			err = fmt.Errorf("serve: constraint %s has no churn engine (use ktree or kdiamond)", c)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (rr *ReconfigureRequest) check() error { return rr.validate() }

// session returns the named live session, creating it from req on first
// use. Creation runs the full baseline verification; concurrent creators
// block on once and share the outcome.
func (s *Server) session(req *ReconfigureRequest) (*topoSession, error) {
	s.sessMu.Lock()
	sess, ok := s.sessions[req.Session]
	if !ok {
		if req.Constraint == "" || req.N == 0 || req.K == 0 {
			// The request cannot create a session, so this is a lookup
			// miss, not a capacity problem.
			s.sessMu.Unlock()
			return nil, fmt.Errorf("serve: unknown session %q (%w)", req.Session, errUnknownSession)
		}
		if s.maxSessions < 0 {
			s.sessMu.Unlock()
			return nil, fmt.Errorf("serve: topology sessions are disabled: %w", errSessionLimit)
		}
		if len(s.sessions) >= s.maxSessions {
			s.sessMu.Unlock()
			return nil, fmt.Errorf("serve: at most %d live sessions: %w", s.maxSessions, errSessionLimit)
		}
		sess = &topoSession{}
		s.sessions[req.Session] = sess
		gSessions.Set(int64(len(s.sessions)))
	}
	s.sessMu.Unlock()

	sess.once.Do(func() { sess.initErr = sess.init(s, req) })
	if sess.initErr != nil {
		// Unmap the stillborn session so a corrected request can retry.
		s.sessMu.Lock()
		if s.sessions[req.Session] == sess {
			delete(s.sessions, req.Session)
			gSessions.Set(int64(len(s.sessions)))
		}
		s.sessMu.Unlock()
		return nil, sess.initErr
	}
	return sess, nil
}

func (sess *topoSession) init(s *Server, req *ReconfigureRequest) error {
	if req.Constraint == "" || req.N == 0 || req.K == 0 {
		return fmt.Errorf("serve: unknown session %q (%w)", req.Session, errUnknownSession)
	}
	c, err := lhg.ParseConstraint(req.Constraint)
	if err != nil {
		return err
	}
	var engine lhg.Reconfigurer
	switch c {
	case lhg.KTree:
		engine, err = lhg.NewKTreeGrowerAt(req.K, req.N)
	case lhg.KDiamond:
		engine, err = lhg.NewKDiamondGrowerAt(req.K, req.N)
	default:
		return fmt.Errorf("serve: constraint %s has no churn engine (use ktree or kdiamond)", c)
	}
	if err != nil {
		return err
	}
	ctx := s.base
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	dv, err := lhg.NewDeltaVerifier(ctx, engine.Graph(), req.K,
		lhg.WithWorkers(clampRequestWorkers(req.Workers, s.workers)),
		lhg.WithSparsify(s.sparsify))
	if err != nil {
		return err
	}
	sess.constraint = c
	sess.engine = engine
	sess.verifier = dv
	return nil
}

// checkParams cross-checks redundant parameters a non-creating request may
// have sent against the live session.
func (sess *topoSession) checkParams(req *ReconfigureRequest) error {
	if req.Constraint != "" {
		c, err := lhg.ParseConstraint(req.Constraint)
		if err != nil {
			return err
		}
		if c != sess.constraint {
			return fmt.Errorf("serve: session %q is %s, not %s", req.Session, sess.constraint, c)
		}
	}
	if req.K != 0 && req.K != sess.engine.K() {
		return fmt.Errorf("serve: session %q has k=%d, not k=%d", req.Session, sess.engine.K(), req.K)
	}
	return nil
}

// reconfigure runs one campaign: apply the batch, re-verify incrementally,
// bump the epoch. Called as the flight leader's fn, holding no lock yet.
func (sess *topoSession) reconfigure(ctx context.Context, req *ReconfigureRequest, atEpoch int) (*ReconfigureResponse, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.broken {
		return nil, fmt.Errorf("serve: session %q is broken by a previous internal error", req.Session)
	}
	if sess.epoch != atEpoch {
		return nil, errEpochConflict
	}
	engine := sess.engine
	k := engine.K()
	resp := &ReconfigureResponse{
		Session: req.Session, Constraint: sess.constraint.String(),
		Epoch: sess.epoch, N: engine.N(), K: k,
		Added: []lhg.Edge{}, Removed: []lhg.Edge{},
	}
	if req.Joins == 0 && req.Leaves == 0 {
		// Pure read: current epoch, no surgery, no bump.
		resp.Report = sess.verifier.Report()
		resp.IsLHG = resp.Report.IsLHG()
		return resp, nil
	}
	newN := engine.N() + req.Joins - req.Leaves
	if newN < 2*k {
		return nil, fmt.Errorf("serve: batch would shrink session %q to n=%d, below the minimal 2k=%d: %w",
			req.Session, newN, 2*k, lhg.ErrNotConstructible)
	}
	changes := make([]lhg.Change, 0, req.Joins+req.Leaves)
	for i := 0; i < req.Joins; i++ {
		changes = append(changes, lhg.ChangeJoin)
	}
	for i := 0; i < req.Leaves; i++ {
		changes = append(changes, lhg.ChangeLeave)
	}
	d, err := engine.Apply(changes)
	if err != nil {
		// Joins ran first, so the floor pre-check makes underflow
		// impossible; any failure here is an engine invariant violation.
		sess.broken = true
		return nil, fmt.Errorf("serve: session %q surgery failed: %v", req.Session, err)
	}
	report, err := sess.verifier.Advance(ctx, d, engine.N())
	if err != nil {
		// The engine moved but the verifier did not: rewind the engine by
		// compensating surgery (engine state is unique per size, so the
		// inverse batch restores it exactly), keeping the epoch coherent.
		sess.unwind(newN - resp.N)
		return nil, err
	}
	sess.epoch++
	resp.Epoch = sess.epoch
	resp.N = engine.N()
	resp.Added = append(resp.Added, d.Added...)
	resp.Removed = append(resp.Removed, d.Removed...)
	resp.Report = report
	resp.IsLHG = report.IsLHG()
	return resp, nil
}

// unwind compensates a surgery of `delta` net admissions after a failed
// verification, restoring the engine to the epoch's size.
func (sess *topoSession) unwind(delta int) {
	var err error
	for ; delta > 0 && err == nil; delta-- {
		_, err = sess.engine.Shrink()
	}
	for ; delta < 0 && err == nil; delta++ {
		_, err = sess.engine.Grow()
	}
	if err != nil {
		sess.broken = true
	}
}

func (s *Server) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Query().Has("stream"):
		s.handleReconfigureStream(w, r)
	case r.Method == http.MethodPost:
		runJSON(s, epReconfig, w, r, func(ctx context.Context, req *ReconfigureRequest) (any, error) {
			return s.reconfigureOne(ctx, req)
		})
	default:
		// GET is only meaningful with ?stream; anything else wants POST.
		s.notAllowed(w, r, http.MethodPost)
	}
}

// reconfigureOne runs one reconfigure request end-to-end: session lookup or
// creation, parameter cross-check, epoch CAS, then the flight-coalesced
// campaign.
func (s *Server) reconfigureOne(ctx context.Context, req *ReconfigureRequest) (any, error) {
	sess, err := s.session(req)
	if err != nil {
		// Sentinel-classified errors (unknown session, session limit,
		// not-constructible) keep their statuses; any other creation
		// failure is bad creation parameters, not a server fault.
		if status, _ := classify(err); status == http.StatusInternalServerError {
			err = badRequest(err)
		}
		return nil, err
	}
	if err := sess.checkParams(req); err != nil {
		return nil, conflict(err)
	}
	sess.mu.Lock()
	atEpoch := sess.epoch
	sess.mu.Unlock()
	// Client-side CAS: a request pinned to a stale epoch is rejected before
	// any flight forms; the in-campaign atEpoch re-check under the session
	// lock closes the remaining race, so the pinned batch applies at that
	// epoch exactly once or not at all.
	if req.Epoch != nil && *req.Epoch != atEpoch {
		return nil, conflict(fmt.Errorf(
			"serve: session %q is at epoch %d, request pinned epoch %d", req.Session, atEpoch, *req.Epoch))
	}
	key := fmt.Sprintf("reconfig|%s|epoch=%d|j=%d|l=%d", req.Session, atEpoch, req.Joins, req.Leaves)
	v, cached, err := s.compute(ctx, epReconfig, key, nil, func(runCtx context.Context) (any, error) {
		// A watched session streams its campaigns: epoch brackets always,
		// plus — mid-flight — every span event of the campaign's trace.
		// The emitter detaches before the flight returns, so a watcher
		// arriving between campaigns costs nothing.
		f := s.sessionFeed(req.Session, false)
		if f != nil {
			f.publish("epoch-start", map[string]any{
				"session": req.Session, "epoch": atEpoch,
				"joins": req.Joins, "leaves": req.Leaves,
			})
			if sp := trace.FromContext(runCtx); sp.Live() {
				remove := sp.Trace().AddEmitter(f.traceEmitter())
				defer remove()
			}
		}
		resp, err := sess.reconfigure(runCtx, req, atEpoch)
		if f != nil {
			if err != nil {
				f.publish("epoch-error", ErrorEnvelope{Error: errorBody(nil, err)})
			} else {
				f.publish("epoch-end", resp)
			}
		}
		return resp, err
	})
	if err != nil {
		return nil, err
	}
	resp := *v.(*ReconfigureResponse)
	resp.Cached = cached
	return resp, nil
}

// Sessions reports the live topology-session names (diagnostics).
func (s *Server) Sessions() []string {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

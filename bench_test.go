package lhg_test

// Benchmark harness: one benchmark per experiment table/figure (see
// DESIGN.md E1..E14 and EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers are machine-specific; the benchmarks exist to (a) keep
// the experiment pipeline honest under -benchmem and (b) show the asymptotic
// shapes (construction is near-linear, verification is polynomial,
// flooding is O(m) per run).

import (
	"context"
	"fmt"
	"testing"
	"time"

	"lhg"
	"lhg/internal/classic"
	"lhg/internal/core"
	"lhg/internal/faultnet"
	"lhg/internal/flood"
	"lhg/internal/flow"
	"lhg/internal/graph"
	"lhg/internal/netflood"
	"lhg/internal/overlay"
	"lhg/internal/proc"
	"lhg/internal/sim"
	"lhg/internal/spectral"
)

var (
	sinkGraph  *lhg.Graph
	sinkInt    int
	sinkBool   bool
	sinkResult *flood.Result
	sinkFloat  float64
)

func buildOrFatal(b *testing.B, c lhg.Constraint, n, k int) *lhg.Graph {
	b.Helper()
	g, err := lhg.Build(context.Background(), c, n, k)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkBuildKTree covers E1: K-TREE construction across sizes.
func BenchmarkBuildKTree(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkGraph = buildOrFatal(b, lhg.KTree, n, 4)
			}
		})
	}
}

// BenchmarkBuildKDiamond covers E2: K-DIAMOND construction across sizes.
func BenchmarkBuildKDiamond(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkGraph = buildOrFatal(b, lhg.KDiamond, n, 4)
			}
		})
	}
}

// BenchmarkBuildJD covers E9: Jenkins–Demers construction (on its feasible
// sizes) including the decomposition search.
func BenchmarkBuildJD(b *testing.B) {
	for _, n := range []int{62, 512, 4094} {
		if !lhg.Exists(lhg.JD, n, 4) {
			b.Fatalf("n=%d not JD-feasible; pick sizes on the grid", n)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkGraph = buildOrFatal(b, lhg.JD, n, 4)
			}
		})
	}
}

// BenchmarkBuildHarary is the baseline constructor used throughout E10-E13.
func BenchmarkBuildHarary(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkGraph = buildOrFatal(b, lhg.Harary, n, 4)
			}
		})
	}
}

// BenchmarkVerify covers the exact property verification used in E1/E2:
// full max-flow based κ/λ plus P3/P4. The n=64 case is irregular (off the
// Theorem 6 regularity grid), so it exercises the full per-edge P3 sweep.
func BenchmarkVerify(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		g := buildOrFatal(b, lhg.KDiamond, n, 4)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := lhg.Verify(context.Background(), g, 4)
				if err != nil {
					b.Fatal(err)
				}
				sinkBool = r.IsLHG()
			}
		})
	}
	// The headline irregular case: 1024 nodes, k=8. The canonical
	// K-DIAMOND(1024,8) lands exactly on the Theorem 6 regularity grid
	// (1024 = 16 + 7·144), which would short-circuit P3; dropping one edge
	// makes the graph irregular so every edge is probed by the per-edge
	// P3 sweep — the path that used to Clone() per edge.
	g := buildOrFatal(b, lhg.KDiamond, 1024, 8)
	e := g.Edges()[0]
	g = g.WithoutEdge(e.U, e.V)
	b.Run("n=1024-k=8-irregular", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := lhg.Verify(context.Background(), g, 8)
			if err != nil {
				b.Fatal(err)
			}
			sinkBool = r.IsLHG()
		}
	})
}

// BenchmarkVerifySweep is the perf-trajectory series emitted into
// BENCH_verify.json by `make bench`: full exact verification at the sweep
// sizes (all three are irregular K-DIAMOND instances, so the per-edge P3
// sweep runs).
func BenchmarkVerifySweep(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		g := buildOrFatal(b, lhg.KDiamond, n, 4)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := lhg.Verify(context.Background(), g, 4)
				if err != nil {
					b.Fatal(err)
				}
				sinkBool = r.IsLHG()
			}
		})
	}
}

// BenchmarkVerifyMillionScreen is the scale-tier series emitted into
// BENCH_verify.json by `make bench`: the certified screen (exact linear
// checks + seeded Karger candidate cuts + sampled exact Dinic probes) over
// a k-regular K-TREE instance at the construction grid point nearest 10^6
// nodes. The per-phase split is reported as extra metrics: prescreen_ms is
// the Monte Carlo contraction pass, confirm_ms the exact flow probes. The
// screen must come back clean — refuting a valid K-TREE would be a bug,
// not a slow run.
func BenchmarkVerifyMillionScreen(b *testing.B) {
	const k = 3
	n := 1_000_002 // K-TREE k=3 grid: n ≡ 2 (mod 4)
	for !lhg.Exists(lhg.KTree, n, k) {
		n += 2
	}
	g := buildOrFatal(b, lhg.KTree, n, k)
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		var prescreenMs, confirmMs float64
		for i := 0; i < b.N; i++ {
			r, err := lhg.Screen(context.Background(), g, k, lhg.ScreenOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if !r.OK() || !r.Regular || !r.Connected {
				b.Fatalf("screen refuted a valid K-TREE: %s", r)
			}
			for _, p := range r.Phases {
				switch p.Phase {
				case "prescreen":
					prescreenMs += p.Ms
				case "confirm":
					confirmMs += p.Ms
				}
			}
			sinkBool = r.OK()
		}
		b.ReportMetric(prescreenMs/float64(b.N), "prescreen_ms/op")
		b.ReportMetric(confirmMs/float64(b.N), "confirm_ms/op")
	})
}

// BenchmarkVerifyDense is the sparse-certificate headline series emitted
// into BENCH_sparsify.json by `make bench`: P1/P2/P4 verification of a
// dense core–periphery graph — Harary H(4,512) for δ = κ = λ = 4, plus a
// clique on the first 192 nodes for m ≈ 19k ≫ k·n — with the fast path
// off ("full") and on ("sparsified"). Reports are bit-identical; only the
// κ/λ probe substrate differs (~19k edges vs the ≤ (δ+1)(n−1) ≈ 2.5k of
// the Nagamochi–Ibaraki certificate).
func BenchmarkVerifyDense(b *testing.B) {
	const n, k, core = 512, 4, 192
	bb := buildOrFatal(b, lhg.Harary, n, k).Thaw()
	for u := 0; u < core; u++ {
		for v := u + 1; v < core; v++ {
			if !bb.HasEdge(u, v) {
				bb.MustAddEdge(u, v)
			}
		}
	}
	g := bb.Freeze()
	props := lhg.PropNodeConnectivity | lhg.PropLinkConnectivity | lhg.PropDiameter
	for _, tc := range []struct {
		name     string
		sparsify bool
	}{
		{"full", false},
		{"sparsified", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := lhg.Verify(context.Background(), g, k,
					lhg.WithProperties(props), lhg.WithSparsify(tc.sparsify))
				if err != nil {
					b.Fatal(err)
				}
				if r.NodeConnectivity != k || r.EdgeConnectivity != k {
					b.Fatalf("κ=%d λ=%d, want %d", r.NodeConnectivity, r.EdgeConnectivity, k)
				}
				sinkBool = r.IsLHG()
			}
		})
	}
}

// BenchmarkVerifyParallel is BenchmarkVerifySweep driven through the
// worker-pool verifier with one worker per core.
func BenchmarkVerifyParallel(b *testing.B) {
	for _, n := range []int{256, 1024} {
		g := buildOrFatal(b, lhg.KDiamond, n, 4)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := lhg.VerifyParallel(g, 4, 0)
				if err != nil {
					b.Fatal(err)
				}
				sinkBool = r.IsLHG()
			}
		})
	}
}

// BenchmarkFlood is the flood series for BENCH_verify.json: one fault-free
// flood per iteration at the sweep sizes. Steady-state floods allocate only
// the per-run result slices.
func BenchmarkFlood(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		g := buildOrFatal(b, lhg.KDiamond, n, 4)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := lhg.Flood(context.Background(), g, 0)
				if err != nil {
					b.Fatal(err)
				}
				sinkResult = res
			}
		})
	}
}

// BenchmarkBFSSteadyState measures one full BFS on the frozen CSR view.
// After the first iteration warms the scratch pool, the traversal itself
// is allocation-free (0 allocs/op).
func BenchmarkBFSSteadyState(b *testing.B) {
	g := buildOrFatal(b, lhg.KDiamond, 1024, 4)
	sinkBool = g.Connected() // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = g.Connected()
	}
}

// BenchmarkEdgeProbeSteadyState measures one P3 removal probe — two
// single-pair max flows on the masked CSR view. With the network pool warm
// it runs without allocating (0 allocs/op); this is the per-edge cost of
// verifyLinkMinimality.
func BenchmarkEdgeProbeSteadyState(b *testing.B) {
	g := buildOrFatal(b, lhg.KDiamond, 1024, 4)
	e := g.Edges()[0]
	sinkBool = flow.EdgeIsRemovable(g, e, 4, 4) // warm the network pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = flow.EdgeIsRemovable(g, e, 4, 4)
	}
}

// BenchmarkBFSSteadyStateMetricsOn is BenchmarkBFSSteadyState with the
// metrics sink enabled: what one live counter costs on the BFS entry path
// (one atomic add per traversal, still 0 allocs/op).
func BenchmarkBFSSteadyStateMetricsOn(b *testing.B) {
	g := buildOrFatal(b, lhg.KDiamond, 1024, 4)
	sinkBool = g.Connected() // warm the scratch pool
	lhg.EnableMetrics()
	defer func() {
		lhg.DisableMetrics()
		lhg.ResetMetrics()
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = g.Connected()
	}
}

// BenchmarkEdgeProbeSteadyStateMetricsOn is BenchmarkEdgeProbeSteadyState
// with the metrics sink enabled: per-probe counters on the hottest
// verification path (a handful of atomic adds per probe, 0 allocs/op).
func BenchmarkEdgeProbeSteadyStateMetricsOn(b *testing.B) {
	g := buildOrFatal(b, lhg.KDiamond, 1024, 4)
	e := g.Edges()[0]
	sinkBool = flow.EdgeIsRemovable(g, e, 4, 4) // warm the network pool
	lhg.EnableMetrics()
	defer func() {
		lhg.DisableMetrics()
		lhg.ResetMetrics()
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = flow.EdgeIsRemovable(g, e, 4, 4)
	}
}

// BenchmarkQuickVerify is the sweep-mode verification used by E4/E6.
func BenchmarkQuickVerify(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		g := buildOrFatal(b, lhg.KTree, n, 4)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, err := lhg.IsLHG(context.Background(), g, 4)
				if err != nil {
					b.Fatal(err)
				}
				sinkBool = ok
			}
		})
	}
}

// TestSteadyStateProbesAllocFree pins the acceptance criterion behind the
// scratch/network pools: once warm, a full BFS and a P3 edge probe on the
// frozen view run without allocating.
func TestSteadyStateProbesAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool reuse; alloc counts are meaningless")
	}
	g, err := lhg.Build(context.Background(), lhg.KDiamond, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edges()[0]
	sinkBool = g.Connected()                    // warm the BFS scratch pool
	sinkBool = flow.EdgeIsRemovable(g, e, 4, 4) // warm the network pool
	if avg := testing.AllocsPerRun(50, func() { sinkBool = g.Connected() }); avg != 0 {
		t.Fatalf("steady-state BFS allocates %.1f times per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() { sinkBool = flow.EdgeIsRemovable(g, e, 4, 4) }); avg != 0 {
		t.Fatalf("steady-state edge probe allocates %.1f times per run, want 0", avg)
	}
}

// BenchmarkDisjointPaths covers E3: Menger path extraction on the Figure 1
// witness and larger instances.
func BenchmarkDisjointPaths(b *testing.B) {
	for _, n := range []int{21, 201, 2001} {
		kt, err := core.BuildKTree(n, 3)
		if err != nil {
			b.Fatal(err)
		}
		g := kt.Real.Graph
		s := kt.Real.CopyNode[0][1]
		t := kt.Real.CopyNode[2][2]
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				paths, err := flow.VertexDisjointPaths(g, s, t)
				if err != nil {
					b.Fatal(err)
				}
				sinkInt = len(paths)
			}
		})
	}
}

// BenchmarkExistenceSweep covers E4/E6: the closed-form EX functions over a
// dense grid (these are what a membership service calls on every resize).
func BenchmarkExistenceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		count := 0
		for k := 3; k <= 8; k++ {
			for n := k + 1; n <= 40*k; n++ {
				if lhg.Exists(lhg.KTree, n, k) && lhg.Exists(lhg.KDiamond, n, k) {
					count++
				}
				if lhg.Exists(lhg.JD, n, k) {
					count++
				}
			}
		}
		sinkInt = count
	}
}

// BenchmarkDiameter covers E10: all-pairs BFS diameter, the dominant cost
// of the diameter tables.
func BenchmarkDiameter(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    lhg.Constraint
	}{{"harary", lhg.Harary}, {"kdiamond", lhg.KDiamond}} {
		g := buildOrFatal(b, tc.c, 512, 4)
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = g.Diameter()
			}
		})
	}
}

// BenchmarkFloodRounds covers E11: one fault-free flood per iteration.
func BenchmarkFloodRounds(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    lhg.Constraint
	}{{"harary", lhg.Harary}, {"ktree", lhg.KTree}, {"kdiamond", lhg.KDiamond}} {
		g := buildOrFatal(b, tc.c, 512, 4)
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := lhg.Flood(context.Background(), g, 0)
				if err != nil {
					b.Fatal(err)
				}
				sinkResult = res
			}
		})
	}
}

// BenchmarkFloodFailures covers E12: flooding with k-1 random crashes.
func BenchmarkFloodFailures(b *testing.B) {
	g := buildOrFatal(b, lhg.KDiamond, 512, 4)
	rng := sim.NewRNG(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fails, err := flood.RandomNodeFailures(g, 0, 3, rng)
		if err != nil {
			b.Fatal(err)
		}
		res, err := lhg.Flood(context.Background(), g, 0, lhg.WithFailures(fails))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatal("4-connected flood must survive 3 crashes")
		}
		sinkResult = res
	}
}

// BenchmarkAdversary covers the E12 adversarial column: computing a minimum
// vertex cut to attack the flood.
func BenchmarkAdversary(b *testing.B) {
	g := buildOrFatal(b, lhg.KTree, 128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fails, err := flood.AdversarialNodeFailures(g, 0, 4)
		if err != nil {
			b.Fatal(err)
		}
		sinkInt = len(fails.Nodes)
	}
}

// BenchmarkMessageCost covers E13: message accounting across one flood.
func BenchmarkMessageCost(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    lhg.Constraint
	}{{"harary", lhg.Harary}, {"kdiamond", lhg.KDiamond}} {
		g := buildOrFatal(b, tc.c, 1024, 3)
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := lhg.Flood(context.Background(), g, 0)
				if err != nil {
					b.Fatal(err)
				}
				sinkInt = res.Messages
			}
		})
	}
}

// BenchmarkOverlayJoin covers E14: a membership change including the
// topology rebuild and churn diff.
func BenchmarkOverlayJoin(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    lhg.Constraint
	}{{"ktree", lhg.KTree}, {"kdiamond", lhg.KDiamond}} {
		b.Run(tc.name, func(b *testing.B) {
			topo := func(n, k int) (*graph.Graph, error) { return lhg.Build(context.Background(), tc.c, n, k) }
			o, err := overlay.New(4, 256, topo)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := o.Join()
				if err != nil {
					b.Fatal(err)
				}
				sinkInt = c.Total()
			}
		})
	}
}

// BenchmarkConnectivity is the verification primitive underneath E1-E9:
// exact vertex connectivity of a 4-connected 128-node LHG.
func BenchmarkConnectivity(b *testing.B) {
	g := buildOrFatal(b, lhg.KDiamond, 128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = flow.VertexConnectivity(g)
	}
}

// BenchmarkGrowerJoin covers E15: one incremental admission (Theorem 2/5
// proof step) — O(k²) work independent of the overlay size.
func BenchmarkGrowerJoin(b *testing.B) {
	for _, tc := range []struct {
		name string
		mk   func() (overlay.Grower, error)
	}{
		{name: "ktree", mk: func() (overlay.Grower, error) { return lhg.NewKTreeGrower(4) }},
		{name: "kdiamond", mk: func() (overlay.Grower, error) { return lhg.NewKDiamondGrower(4) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			gr, err := tc.mk()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := gr.Grow()
				if err != nil {
					b.Fatal(err)
				}
				sinkInt = d.Total()
			}
		})
	}
}

// BenchmarkGossip covers E16: one bounded-fanout gossip dissemination.
func BenchmarkGossip(b *testing.B) {
	g := buildOrFatal(b, lhg.KDiamond, 512, 4)
	rng := sim.NewRNG(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := flood.Gossip(g, 0, 3, flood.Failures{}, rng)
		if err != nil {
			b.Fatal(err)
		}
		sinkResult = res
	}
}

// BenchmarkProtocolBroadcast covers E17: one full protocol-level broadcast
// over the discrete-event runtime.
func BenchmarkProtocolBroadcast(b *testing.B) {
	g := buildOrFatal(b, lhg.KDiamond, 256, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := proc.NewNetwork(g, proc.WithSendOverhead(1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Broadcast(0, "m", 0); err != nil {
			b.Fatal(err)
		}
		net.Run()
		sinkInt = net.MessagesSent()
	}
}

// BenchmarkSpectralGap covers E18: one spectral-gap estimation.
func BenchmarkSpectralGap(b *testing.B) {
	g := buildOrFatal(b, lhg.KDiamond, 128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gap, err := spectral.SpectralGap(g, spectral.Options{Iterations: 2000})
		if err != nil {
			b.Fatal(err)
		}
		sinkFloat = gap
	}
}

// BenchmarkRouter covers E19: one structured routing query from blueprint
// metadata (no search).
func BenchmarkRouter(b *testing.B) {
	kd, err := core.BuildKDiamond(323, 4)
	if err != nil {
		b.Fatal(err)
	}
	router, err := core.NewRouter(kd.Blue, kd.Real)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path, err := router.Route(i%323, (i*7+13)%323)
		if err != nil {
			b.Fatal(err)
		}
		sinkInt = len(path)
	}
}

// BenchmarkBetweenness covers E20: exact Brandes centrality.
func BenchmarkBetweenness(b *testing.B) {
	g := buildOrFatal(b, lhg.KDiamond, 128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc := g.Betweenness()
		sinkFloat = bc[0]
	}
}

// BenchmarkMembershipCycle covers E21: one join + crash + repair cycle of
// the self-healing membership service.
func BenchmarkMembershipCycle(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := lhg.NewMembership(lhg.KDiamond, 4, 24)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.ProposeJoin(); err != nil {
			b.Fatal(err)
		}
		if err := s.Crash(3, 9, 15); err != nil {
			b.Fatal(err)
		}
		rep, err := s.Repair()
		if err != nil {
			b.Fatal(err)
		}
		sinkInt = rep.Churn.Total()
	}
}

// BenchmarkBuildClassic covers E22: constructing the related-work families.
func BenchmarkBuildClassic(b *testing.B) {
	b.Run("hypercube-d10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := classic.Hypercube(10)
			if err != nil {
				b.Fatal(err)
			}
			sinkInt = g.Size()
		}
	})
	b.Run("debruijn-2-10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := classic.DeBruijn(2, 10)
			if err != nil {
				b.Fatal(err)
			}
			sinkInt = g.Size()
		}
	})
	b.Run("ccc-d7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := classic.CCC(7)
			if err != nil {
				b.Fatal(err)
			}
			sinkInt = g.Size()
		}
	})
}

// BenchmarkReconfigureVerifyDelta is the PR-6 headline series emitted into
// BENCH_reconfigure.json by `make bench`: 1% churn batches on K-TREE(k=3)
// near n=1024 and n=4096 (1026/4098 are the nearest sizes on the k=3
// construction grid), re-verified incrementally by DeltaVerifier.Advance.
// Batches alternate pure-leave and pure-join so each iteration issues real
// surgery (a mixed batch of equal halves nets to the identity). Compare
// against BenchmarkReconfigureVerifyFull, which re-verifies the same churn
// from scratch as a rebuild-era deployment would.
func BenchmarkReconfigureVerifyDelta(b *testing.B) {
	for _, bc := range []struct{ label, n int }{{1024, 1026}, {4096, 4098}} {
		b.Run(fmt.Sprintf("n=%d", bc.label), func(b *testing.B) {
			eng, err := lhg.NewKTreeGrowerAt(3, bc.n)
			if err != nil {
				b.Fatal(err)
			}
			dv, err := lhg.NewDeltaVerifier(context.Background(), eng.Graph(), 3)
			if err != nil {
				b.Fatal(err)
			}
			batch := churnBatch(bc.n / 100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := eng.Apply(batch[i%2])
				if err != nil {
					b.Fatal(err)
				}
				r, err := dv.Advance(context.Background(), d, eng.N())
				if err != nil {
					b.Fatal(err)
				}
				sinkBool = r.IsLHG()
			}
		})
	}
}

// BenchmarkReconfigureVerifyFull is the rebuild-era baseline for the same
// churn schedule: apply the batch, then run the full verification campaign
// on the result.
func BenchmarkReconfigureVerifyFull(b *testing.B) {
	for _, bc := range []struct{ label, n int }{{1024, 1026}, {4096, 4098}} {
		b.Run(fmt.Sprintf("n=%d", bc.label), func(b *testing.B) {
			eng, err := lhg.NewKTreeGrowerAt(3, bc.n)
			if err != nil {
				b.Fatal(err)
			}
			batch := churnBatch(bc.n / 100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Apply(batch[i%2]); err != nil {
					b.Fatal(err)
				}
				r, err := lhg.Verify(context.Background(), eng.Graph(), 3)
				if err != nil {
					b.Fatal(err)
				}
				sinkBool = r.IsLHG()
			}
		})
	}
}

// churnBatch returns the alternating 1%-churn schedule: batch[0] is size
// pure leaves, batch[1] the matching pure joins, so applying them in turn
// oscillates the overlay without drifting. size is rounded up to the k=3
// construction grid stride (4) so both endpoints of the oscillation are
// regular: P3's Δ = λ shortcut then applies identically to the delta path
// and the full baseline, keeping the series a pure κ/λ comparison instead
// of a measurement of the (shared, size-parity-driven) minimality sweep.
func churnBatch(size int) [2][]lhg.Change {
	size = (size + 3) / 4 * 4
	leaves := make([]lhg.Change, size)
	joins := make([]lhg.Change, size)
	for i := range leaves {
		leaves[i] = lhg.ChangeLeave
		joins[i] = lhg.ChangeJoin
	}
	return [2][]lhg.Change{leaves, joins}
}

// benchmarkFloodCost covers E29: one reliable broadcast over a lossy
// KDIAMOND(16,4) loopback-TCP cluster, with and without the ampguard
// enforcement plan. ns/op is dominated by recovery latency; the artifact
// the pair exists for is frames/op (originals + retransmissions) against
// the analyzer's static ceiling, reported as extra benchmark metrics.
func benchmarkFloodCost(b *testing.B, guarded bool) {
	g := buildOrFatal(b, lhg.KDiamond, 16, 4)
	policy := lhg.RetryPolicy{
		Timeout: 250 * time.Millisecond,
		Base:    3 * time.Millisecond,
		Max:     10 * time.Millisecond,
		Retries: 4,
		Jitter:  0.25,
	}
	report, err := lhg.FloodBudget(context.Background(), g, 0, 4, policy)
	if err != nil {
		b.Fatal(err)
	}
	opts := netflood.Options{
		Reliable:       true,
		WriteTimeout:   policy.Timeout,
		RetransmitBase: policy.Base,
		RetransmitMax:  policy.Max,
		MaxRetries:     policy.Retries,
		Seed:           29,
		Faults:         func(int, int) faultnet.Plan { return faultnet.Plan{Drop: 0.25} },
	}
	if guarded {
		gu := report.Guard()
		opts.HopBudget = gu.HopBudget
		opts.RetryBudget = gu.RetryBudget
		opts.RetransmitRate = gu.RetransmitRate
		opts.RetransmitBurst = gu.RetransmitBurst
		opts.PathDiversity = gu.PathDiversity
	}
	all := make([]int, g.Order())
	for v := range all {
		all[v] = v
	}
	lhg.EnableMetrics()
	defer lhg.DisableMetrics()
	lhg.ResetMetrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := netflood.StartWithOptions(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Broadcast(0, "bench"); err != nil {
			b.Fatal(err)
		}
		if !c.WaitDelivered(all, 1, 15*time.Second) {
			b.Fatal("lossy broadcast did not deliver everywhere")
		}
		// Let the ack/retransmit exchange settle so frames/op prices the
		// whole recovery, not just the time to first delivery.
		time.Sleep(150 * time.Millisecond)
		c.Shutdown()
	}
	b.StopTimer()
	ctr := lhg.MetricsCounters()
	frames := ctr["netflood.frames.sent"] + ctr["netflood.frames.retransmitted"]
	if guarded && frames > int64(b.N)*report.FrameCeiling {
		b.Fatalf("guarded runs spent %d frames over %d broadcasts, ceiling %d each",
			frames, b.N, report.FrameCeiling)
	}
	b.ReportMetric(float64(frames)/float64(b.N), "frames/op")
	b.ReportMetric(float64(report.FrameCeiling), "ceiling/op")
	sinkInt = int(frames)
}

// BenchmarkFloodCostGuarded covers E29 guarded: the ampguard plan enforced.
func BenchmarkFloodCostGuarded(b *testing.B) { benchmarkFloodCost(b, true) }

// BenchmarkFloodCostUnguarded covers E29 unguarded: the same storm, no caps.
func BenchmarkFloodCostUnguarded(b *testing.B) { benchmarkFloodCost(b, false) }

package flow

import (
	"context"
	"fmt"

	"lhg/internal/graph"
)

// stVertexFlow returns the maximum number of internally vertex-disjoint
// s-t paths for a non-adjacent pair, early-exiting at limit if limit >= 0.
// The probe is armed with ctx: cancellation stops it between augmenting
// paths, and the caller is responsible for checking ctx afterwards (a
// canceled probe returns a lower bound, not the exact value).
func stVertexFlow(ctx context.Context, g *graph.Graph, s, t, limit int) int {
	nw := getNetwork(2 * g.Order())
	nw.watch(ctx)
	nw.buildVertex(g, s, t, g.Order()+1, noEdge)
	f := nw.maxflow(2*s+1, 2*t, limit)
	putNetwork(nw)
	return f
}

// stVertexFlowExcluding is stVertexFlow on G−skip: the masked edge never
// enters the network, so removal probes cost one flow, not one clone.
func stVertexFlowExcluding(ctx context.Context, g *graph.Graph, s, t, limit int, skip graph.Edge) int {
	nw := getNetwork(2 * g.Order())
	nw.watch(ctx)
	nw.buildVertex(g, s, t, g.Order()+1, skip)
	f := nw.maxflow(2*s+1, 2*t, limit)
	putNetwork(nw)
	return f
}

// stEdgeFlowExcluding returns the maximum s-t flow in the edge network of
// G−skip, early-exiting at limit.
func stEdgeFlowExcluding(ctx context.Context, g *graph.Graph, s, t, limit int, skip graph.Edge) int {
	nw := getNetwork(g.Order())
	nw.watch(ctx)
	nw.buildEdge(g, skip)
	f := nw.maxflow(s, t, limit)
	putNetwork(nw)
	return f
}

// EdgeCut returns the size of a minimum s-t edge cut (equivalently the
// maximum number of edge-disjoint s-t paths).
func EdgeCut(g *graph.Graph, s, t int) (int, error) {
	if err := validatePair(g, s, t); err != nil {
		return 0, err
	}
	return stEdgeFlowExcluding(context.Background(), g, s, t, -1, noEdge), nil
}

// VertexCut returns the size of a minimum s-t vertex cut. s and t must be
// non-adjacent (no node set separates adjacent nodes).
func VertexCut(g *graph.Graph, s, t int) (int, error) {
	if err := validatePair(g, s, t); err != nil {
		return 0, err
	}
	if g.HasEdge(s, t) {
		return 0, fmt.Errorf("flow: no vertex cut separates adjacent nodes %d and %d", s, t)
	}
	return stVertexFlow(context.Background(), g, s, t, -1), nil
}

// VertexCutAtLeastCtx reports whether every s-t vertex cut has at least c
// nodes, using one early-exit max flow (the probe stops as soon as c
// disjoint paths are found). s and t must be valid and non-adjacent. It is
// the primitive of the incremental re-verification in internal/check: a
// localized frontier probe that never pays for the exact cut value.
func VertexCutAtLeastCtx(ctx context.Context, g *graph.Graph, s, t, c int) (bool, error) {
	if err := validatePair(g, s, t); err != nil {
		return false, err
	}
	if c <= 0 {
		return true, ctx.Err()
	}
	if g.HasEdge(s, t) {
		return false, fmt.Errorf("flow: no vertex cut separates adjacent nodes %d and %d", s, t)
	}
	ok := stVertexFlow(ctx, g, s, t, c) >= c
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return ok, nil
}

// EdgeCutAtLeastCtx reports whether every s-t edge cut has at least c
// edges, using one early-exit max flow; see VertexCutAtLeastCtx.
func EdgeCutAtLeastCtx(ctx context.Context, g *graph.Graph, s, t, c int) (bool, error) {
	if err := validatePair(g, s, t); err != nil {
		return false, err
	}
	if c <= 0 {
		return true, ctx.Err()
	}
	ok := stEdgeFlowExcluding(ctx, g, s, t, c, noEdge) >= c
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return ok, nil
}

// MinVertexCutSet returns an actual minimum vertex cut separating
// non-adjacent s and t: a smallest node set whose removal disconnects them.
func MinVertexCutSet(g *graph.Graph, s, t int) ([]int, error) {
	if err := validatePair(g, s, t); err != nil {
		return nil, err
	}
	if g.HasEdge(s, t) {
		return nil, fmt.Errorf("flow: no vertex cut separates adjacent nodes %d and %d", s, t)
	}
	nw := getNetwork(2 * g.Order())
	defer putNetwork(nw)
	nw.buildVertex(g, s, t, g.Order()+1, noEdge)
	nw.maxflow(2*s+1, 2*t, -1)
	reach := nw.residualReach(2*s + 1)
	var cut []int
	for v := 0; v < g.Order(); v++ {
		if reach[2*v] && !reach[2*v+1] {
			cut = append(cut, v)
		}
	}
	return cut, nil
}

// EdgeConnectivityCtx returns the global edge connectivity λ(G) — the
// minimum number of edges whose removal disconnects G — computing the
// min-cut probes under ctx across `workers` goroutines (workers <= 0 means
// GOMAXPROCS, 1 runs serially). Cancellation is polled between probes and
// between augmenting-path iterations inside each probe; a canceled sweep
// returns ctx.Err() and no value.
//
// The probe set is the shared dominating-set plan (see lambdaProbePlan):
// λ(G) = min(δ, min over dominating-set pairs), which needs roughly
// n/(δ+1) probes instead of the classic n−1. Disconnected graphs and
// graphs with fewer than two nodes have λ = 0.
func EdgeConnectivityCtx(ctx context.Context, g *graph.Graph, workers int) (int, error) {
	return edgeConnectivitySweep(ctx, g, workers, NoHints)
}

// EdgeConnectivity returns the global edge connectivity λ(G) serially
// without cancellation. See EdgeConnectivityCtx.
func EdgeConnectivity(g *graph.Graph) int {
	lambda, _ := EdgeConnectivityCtx(context.Background(), g, 1)
	return lambda
}

// VertexConnectivityCtx returns the global vertex connectivity κ(G) using
// the Esfahanian–Hakimi reduction, probing under ctx across `workers`
// goroutines (workers <= 0 means GOMAXPROCS, 1 runs serially): pick a
// minimum-degree node v; every minimum vertex cut either avoids v (then it
// separates v from some non-neighbor) or contains v (then, by minimality,
// v has neighbors in two different components, and those neighbors form a
// non-adjacent pair). The complete graph K_n has connectivity n-1 by
// convention. A canceled sweep returns ctx.Err() and no value.
func VertexConnectivityCtx(ctx context.Context, g *graph.Graph, workers int) (int, error) {
	return vertexConnectivityCtx(ctx, g, workers, NoHints)
}

// vertexConnectivityCtx dispatches the trivial κ cases and hands the probe
// sweep to vertexConnectivitySweep.
func vertexConnectivityCtx(ctx context.Context, g *graph.Graph, workers int, hints SweepHints) (int, error) {
	n := g.Order()
	if n < 2 {
		return 0, ctx.Err()
	}
	if !g.Connected() {
		return 0, ctx.Err()
	}
	minDeg, v := g.MinDegree()
	if minDeg == n-1 { // complete graph
		return n - 1, ctx.Err()
	}
	pairs := vertexProbePairs(g, v)
	if len(pairs) == 0 {
		return minDeg, ctx.Err()
	}
	workers = graph.ClampWorkers(workers, len(pairs))
	return vertexConnectivitySweep(ctx, g, minDeg, pairs, workers, hints)
}

// VertexConnectivity returns the global vertex connectivity κ(G) serially
// without cancellation. See VertexConnectivityCtx.
func VertexConnectivity(g *graph.Graph) int {
	kappa, _ := VertexConnectivityCtx(context.Background(), g, 1)
	return kappa
}

// probePair is one s-t vertex-cut probe of the Esfahanian–Hakimi sweep.
type probePair struct{ s, t int }

// vertexProbePairs collects the probe pairs of both reduction parts for
// minimum-degree node v: v against every non-neighbor, then every
// non-adjacent pair of v's neighbors.
func vertexProbePairs(g *graph.Graph, v int) []probePair {
	n := g.Order()
	isNbr := make([]bool, n)
	nbrs := g.Neighbors(v)
	for _, w := range nbrs {
		isNbr[w] = true
	}
	var pairs []probePair
	for t := 0; t < n; t++ {
		if t != v && !isNbr[t] {
			pairs = append(pairs, probePair{v, t})
		}
	}
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if !g.HasEdge(nbrs[i], nbrs[j]) {
				pairs = append(pairs, probePair{nbrs[i], nbrs[j]})
			}
		}
	}
	return pairs
}

// IsKNodeConnectedCtx reports whether κ(G) >= k without always computing
// the exact connectivity (max flows early-exit at k), polling ctx between
// probes.
func IsKNodeConnectedCtx(ctx context.Context, g *graph.Graph, k int) (bool, error) {
	n := g.Order()
	if k <= 0 {
		return true, ctx.Err()
	}
	if n < k+1 {
		return false, ctx.Err() // κ(G) <= n-1
	}
	if !g.Connected() {
		return false, ctx.Err()
	}
	minDeg, v := g.MinDegree()
	if minDeg < k {
		return false, ctx.Err()
	}
	if minDeg == n-1 {
		return true, ctx.Err()
	}
	nw := getNetwork(2 * n)
	defer putNetwork(nw)
	nw.watch(ctx)
	nw.buildVertexBase(g, n+1, noEdge)
	for _, p := range vertexProbePairs(g, v) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		nw.armVertexPair(p.s, p.t)
		if nw.maxflow(2*p.s+1, 2*p.t, k) < k {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			return false, nil
		}
	}
	return true, ctx.Err()
}

// IsKNodeConnected reports whether κ(G) >= k. See IsKNodeConnectedCtx.
func IsKNodeConnected(g *graph.Graph, k int) bool {
	ok, _ := IsKNodeConnectedCtx(context.Background(), g, k)
	return ok
}

// IsKEdgeConnectedCtx reports whether λ(G) >= k using early-exit max
// flows, polling ctx between probes.
func IsKEdgeConnectedCtx(ctx context.Context, g *graph.Graph, k int) (bool, error) {
	n := g.Order()
	if k <= 0 {
		return true, ctx.Err()
	}
	if n < 2 {
		return false, ctx.Err()
	}
	if minDeg, _ := g.MinDegree(); minDeg < k {
		return false, ctx.Err()
	}
	d0, targets := lambdaProbePlan(g, NoHints)
	nw := getNetwork(n)
	defer putNetwork(nw)
	nw.watch(ctx)
	nw.buildEdge(g, noEdge)
	for _, t := range targets {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		nw.rearm()
		if nw.maxflow(d0, t, k) < k {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			return false, nil
		}
	}
	return true, ctx.Err()
}

// IsKEdgeConnected reports whether λ(G) >= k. See IsKEdgeConnectedCtx.
func IsKEdgeConnected(g *graph.Graph, k int) bool {
	ok, _ := IsKEdgeConnectedCtx(context.Background(), g, k)
	return ok
}

// EdgeIsRemovableCtx reports whether removing e=(u,v) keeps both the node
// connectivity at kappa and the link connectivity at lambda — i.e. whether
// e witnesses a P3 (link-minimality) violation. It costs two single-pair
// max flows on the masked view instead of 2n flows on a clone, by the
// classic localization lemma:
//
//	λ(G−e) < λ(G)  ⟺  the u-v min edge cut in G−e has size < λ(G), and
//	κ(G−e) < κ(G)  ⟺  the u-v min vertex cut in G−e has size < κ(G).
//
// Both directions follow from the fact that a small cut of G−e that fails
// to separate u from v would already be a small cut of G: only cuts that
// e itself bridged can shrink. (u and v are non-adjacent in G−e, so the
// vertex-cut query is well defined.)
func EdgeIsRemovableCtx(ctx context.Context, g *graph.Graph, e graph.Edge, kappa, lambda int) (bool, error) {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	if d := min(g.Degree(e.U), g.Degree(e.V)); d <= lambda || d <= kappa {
		// Degree shortcut: both probes are bounded by the endpoint degrees
		// in G−e, so an endpoint of degree <= lambda (<= kappa) forces the
		// λ (κ) probe under the bar. Same verdict as the probes, no flow.
		return false, ctx.Err()
	}
	if stEdgeFlowExcluding(ctx, g, e.U, e.V, lambda, e) < lambda {
		return false, ctx.Err()
	}
	ok := stVertexFlowExcluding(ctx, g, e.U, e.V, kappa, e) >= kappa
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return ok, nil
}

// EdgeIsRemovable reports whether removing e preserves (kappa, lambda).
// See EdgeIsRemovableCtx.
func EdgeIsRemovable(g *graph.Graph, e graph.Edge, kappa, lambda int) bool {
	ok, _ := EdgeIsRemovableCtx(context.Background(), g, e, kappa, lambda)
	return ok
}

// VertexDisjointPaths returns a maximum set of pairwise internally
// vertex-disjoint s-t paths (each as a node sequence from s to t). For
// adjacent s,t the direct edge is one of the paths.
func VertexDisjointPaths(g *graph.Graph, s, t int) ([][]int, error) {
	if err := validatePair(g, s, t); err != nil {
		return nil, err
	}
	nw := getNetwork(2 * g.Order())
	defer putNetwork(nw)
	nw.buildVertex(g, s, t, 1, noEdge)
	count := nw.maxflow(2*s+1, 2*t, -1)
	// Decompose the flow: each saturated forward edge arc uOut->vIn carries
	// one unit. Walking from s along unconsumed flow arcs yields the paths;
	// flow conservation guarantees each walk ends at t.
	n := g.Order()
	next := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, e := range nw.arcs(int32(2*u + 1)) {
			// Forward arcs have even indices (addArc appends pairs). Skip
			// reverses and the node-internal reverse arc.
			if e%2 != 0 {
				continue
			}
			v := int(nw.to[e]) / 2
			if v == u || nw.cap[e] != 0 {
				continue // not an edge arc carrying flow
			}
			next[u] = append(next[u], v)
		}
	}
	paths := make([][]int, 0, count)
	for i := 0; i < count; i++ {
		path := []int{s}
		u := s
		for u != t {
			if len(next[u]) == 0 {
				return nil, fmt.Errorf("flow: path decomposition stuck at node %d", u)
			}
			v := next[u][0]
			next[u] = next[u][1:]
			path = append(path, v)
			u = v
		}
		paths = append(paths, path)
	}
	return paths, nil
}

func validatePair(g *graph.Graph, s, t int) error {
	n := g.Order()
	if s < 0 || s >= n || t < 0 || t >= n {
		return fmt.Errorf("flow: node pair (%d,%d) out of range [0,%d)", s, t, n)
	}
	if s == t {
		return fmt.Errorf("flow: source and sink are both node %d", s)
	}
	return nil
}

// MinEdgeCutSet returns an actual minimum s-t edge cut: a smallest edge set
// whose removal disconnects s from t.
func MinEdgeCutSet(g *graph.Graph, s, t int) ([]graph.Edge, error) {
	if err := validatePair(g, s, t); err != nil {
		return nil, err
	}
	nw := getNetwork(g.Order())
	defer putNetwork(nw)
	nw.buildEdge(g, noEdge)
	nw.maxflow(s, t, -1)
	reach := nw.residualReach(s)
	var cut []graph.Edge
	for _, e := range g.Edges() {
		if reach[e.U] != reach[e.V] {
			cut = append(cut, e)
		}
	}
	return cut, nil
}

// GlobalMinEdgeCutSet returns a minimum edge cut of the whole graph: the
// smallest link set whose removal disconnects G.
func GlobalMinEdgeCutSet(g *graph.Graph) ([]graph.Edge, error) {
	n := g.Order()
	if n < 2 {
		return nil, fmt.Errorf("flow: no cut in a graph with %d nodes", n)
	}
	minDeg, mv := g.MinDegree()
	best, bestT := minDeg, -1
	d0, targets := lambdaProbePlan(g, NoHints)
	nw := getNetwork(n)
	defer putNetwork(nw)
	nw.buildEdge(g, noEdge)
	for _, t := range targets {
		if best == 0 {
			break
		}
		nw.rearm()
		if f := nw.maxflow(d0, t, best); f < best {
			best, bestT = f, t
		}
	}
	if bestT >= 0 {
		return MinEdgeCutSet(g, d0, bestT)
	}
	// No dominating-set pair beat δ, so λ = δ and the star of a
	// minimum-degree node is a minimum cut.
	var cut []graph.Edge
	for _, w := range g.Neighbors(mv) {
		e := graph.Edge{U: mv, V: w}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		cut = append(cut, e)
	}
	return cut, nil
}

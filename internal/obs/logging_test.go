package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"

	"lhg/internal/obs/trace"
)

func TestNewLoggerInjectsTraceID(t *testing.T) {
	trace.Enable()
	t.Cleanup(func() {
		trace.Disable()
		trace.Reset()
	})
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo)

	ctx, sp := trace.StartRoot(context.Background(), "req")
	log.InfoContext(ctx, "handling", "path", "/v1/verify")
	sp.End()

	out := buf.String()
	if !strings.Contains(out, "trace_id="+sp.TraceID().String()) {
		t.Fatalf("log line missing trace_id: %q", out)
	}
	if !strings.Contains(out, "span_id="+sp.ID().String()) {
		t.Fatalf("log line missing span_id: %q", out)
	}
	if !strings.Contains(out, "path=/v1/verify") {
		t.Fatalf("log line lost its own attrs: %q", out)
	}
}

func TestNewLoggerWithoutSpanOmitsTraceID(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo)
	log.Info("plain")
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("untraced log line grew a trace_id: %q", buf.String())
	}
}

func TestNewLoggerNilWriterDiscards(t *testing.T) {
	log := NewLogger(nil, slog.LevelDebug)
	log.Info("dropped") // must not panic
	log.With("k", "v").WithGroup("g").Error("also dropped")
}

func TestNewLoggerRespectsLevel(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelWarn)
	log.Info("quiet")
	if buf.Len() != 0 {
		t.Fatalf("info leaked through warn level: %q", buf.String())
	}
	log.Warn("loud")
	if !strings.Contains(buf.String(), "loud") {
		t.Fatal("warn suppressed")
	}
}

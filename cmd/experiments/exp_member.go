package main

import (
	"fmt"
	"io"

	"lhg"
	"lhg/internal/check"
)

// runE21 drives the self-healing membership service through a crash-and-
// repair timeline: k-1 members crash, application broadcasts keep reaching
// every survivor through the degraded topology, a repair view change
// removes the dead members, and the rebuilt topology verifies as an LHG
// again. The table records coverage and churn at every step.
func runE21(w io.Writer) error {
	const (
		k     = 4
		start = 24
	)
	s, err := lhg.NewMembership(lhg.KDiamond, k, start)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "K-DIAMOND membership service, k=%d, %d initial members\n", k, start)
	fmt.Fprintf(w, "%-26s %-8s %-10s %-12s %-10s %-8s\n", "event", "members", "coverage", "view", "churn", "LHG")

	report := func(event string, churn int) error {
		res, err := s.Broadcast()
		if err != nil {
			return err
		}
		ok, err := check.QuickVerify(s.Graph(), k)
		if err != nil {
			return err
		}
		lhgCell := fmt.Sprintf("%t", ok)
		if s.CrashedCount() > 0 {
			lhgCell = "degraded"
		}
		fmt.Fprintf(w, "%-26s %-8d %-10s %-12s %-10d %-8s\n",
			event, s.Size(),
			fmt.Sprintf("%d/%d", res.Reached, res.Alive),
			fmt.Sprintf("v%d(n=%d)", s.CurrentView().Version, s.CurrentView().Size),
			churn, lhgCell)
		if !res.Complete {
			return fmt.Errorf("broadcast lost survivors after %q", event)
		}
		return nil
	}

	if err := report("start", 0); err != nil {
		return err
	}
	// Three joins.
	for i := 0; i < 3; i++ {
		rep, err := s.ProposeJoin()
		if err != nil {
			return err
		}
		if err := report(fmt.Sprintf("join #%d", i+1), rep.Churn.Total()); err != nil {
			return err
		}
	}
	// k-1 simultaneous crashes.
	if err := s.Crash(5, 11, 19); err != nil {
		return err
	}
	if err := report("crash {5,11,19} (f=k-1)", 0); err != nil {
		return err
	}
	if !s.ConsistentViews() {
		return fmt.Errorf("alive views inconsistent before repair")
	}
	// Repair: one view change removes all three.
	rep, err := s.Repair()
	if err != nil {
		return err
	}
	if err := report("repair (remove dead)", rep.Churn.Total()); err != nil {
		return err
	}
	if !s.ConsistentViews() {
		return fmt.Errorf("views inconsistent after repair")
	}
	// Life goes on.
	repJ, err := s.ProposeJoin()
	if err != nil {
		return err
	}
	if err := report("join after repair", repJ.Churn.Total()); err != nil {
		return err
	}
	fmt.Fprintln(w, "guarantee chain: f <= k-1 crashes never broke a view change or an application")
	fmt.Fprintln(w, "broadcast; the repaired topology verifies as an LHG again")
	return nil
}

// Package core implements the constructions at the heart of this
// repository: Logarithmic Harary Graphs built from
//
//   - the K-TREE graph constraint (Baldoni et al., Definition 1),
//   - the K-DIAMOND graph constraint (Baldoni et al., Definition 2), and
//   - the Jenkins–Demers operational rule (ICDCS 2001, quoted in §4.4),
//
// together with the closed-form existence (EX) and regularity (REG)
// predicates the paper proves for each constraint.
//
// All three constructions share one shape: k copies of a height-balanced
// tree T whose root has k children and whose other internal nodes have k-1
// children, pasted together at the leaves. They differ only in how many
// extra ("added") leaves may hang off nodes just above the leaves and, for
// K-DIAMOND, in allowing "unshared" leaves realized as k-cliques. The
// Blueprint type captures the shared structure; each builder produces a
// Blueprint and the Blueprint is compiled into a concrete graph.
package core

import (
	"fmt"
	"strconv"

	"lhg/internal/graph"
)

// PositionKind classifies a position of the abstract tree T.
type PositionKind int

const (
	// Internal positions (including the root) are replicated once per tree
	// copy.
	Internal PositionKind = iota + 1
	// SharedLeaf positions are realized as a single graph node that is a
	// leaf of every tree copy.
	SharedLeaf
	// UnsharedLeaf positions (K-DIAMOND only) are realized as k graph nodes
	// forming a clique, each attached to exactly one tree copy.
	UnsharedLeaf
)

func (k PositionKind) String() string {
	switch k {
	case Internal:
		return "internal"
	case SharedLeaf:
		return "shared-leaf"
	case UnsharedLeaf:
		return "unshared-leaf"
	default:
		return "invalid"
	}
}

// Blueprint describes an instance of the k-copies-of-a-tree family: the
// abstract tree T plus the classification of each position. Position 0 is
// always the root.
type Blueprint struct {
	K        int
	Parent   []int          // Parent[p] is p's parent position; -1 for the root
	Children [][]int        // Children[p] lists p's child positions in creation order
	Kind     []PositionKind // classification of each position
	Depth    []int          // Depth[p] is p's distance from the root
	Added    []bool         // Added[p]: leaf position beyond the base child count
}

// Positions returns the number of positions of T.
func (b *Blueprint) Positions() int { return len(b.Parent) }

// Internals returns the number of internal (replicated) positions.
func (b *Blueprint) Internals() int { return b.countKind(Internal) }

// SharedLeaves returns the number of shared leaf positions.
func (b *Blueprint) SharedLeaves() int { return b.countKind(SharedLeaf) }

// UnsharedLeaves returns the number of unshared leaf positions.
func (b *Blueprint) UnsharedLeaves() int { return b.countKind(UnsharedLeaf) }

func (b *Blueprint) countKind(k PositionKind) int {
	c := 0
	for _, kd := range b.Kind {
		if kd == k {
			c++
		}
	}
	return c
}

// NodeCount returns the number of graph nodes the blueprint compiles to:
// k per internal position, one per shared leaf, k per unshared leaf.
func (b *Blueprint) NodeCount() int {
	return b.K*b.Internals() + b.SharedLeaves() + b.K*b.UnsharedLeaves()
}

// Height returns the height of T (root-to-deepest-position distance).
func (b *Blueprint) Height() int {
	h := 0
	for _, d := range b.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// Realization maps blueprint positions to concrete graph node ids.
type Realization struct {
	Graph *graph.Graph
	// CopyNode[i][p] is the node realizing internal position p in tree copy
	// i; -1 for non-internal positions.
	CopyNode [][]int
	// LeafNode[p] is the node realizing shared leaf position p; -1
	// otherwise.
	LeafNode []int
	// GroupNode[p][i] is the clique member of unshared position p attached
	// to tree copy i; nil for other positions.
	GroupNode [][]int
	// Labels maps node ids to human-readable names for DOT output.
	Labels map[int]string
}

// Compile realizes the blueprint as a concrete undirected graph.
//
// Node ids are assigned deterministically: positions are scanned in order;
// an internal position claims k consecutive ids (one per copy), a shared
// leaf claims one id, an unshared leaf claims k consecutive ids (member i
// belongs to copy i).
func (b *Blueprint) Compile() (*Realization, error) {
	if b.K < 1 {
		return nil, fmt.Errorf("core: blueprint has invalid k=%d", b.K)
	}
	np := b.Positions()
	bld := graph.NewBuilder(b.NodeCount())
	r := &Realization{
		CopyNode:  make([][]int, b.K),
		LeafNode:  make([]int, np),
		GroupNode: make([][]int, np),
		Labels:    make(map[int]string, b.NodeCount()),
	}
	for i := range r.CopyNode {
		r.CopyNode[i] = make([]int, np)
		for p := range r.CopyNode[i] {
			r.CopyNode[i][p] = -1
		}
	}
	for p := range r.LeafNode {
		r.LeafNode[p] = -1
	}

	next := 0
	for p := 0; p < np; p++ {
		switch b.Kind[p] {
		case Internal:
			for i := 0; i < b.K; i++ {
				r.CopyNode[i][p] = next
				r.Labels[next] = internalLabel(p, i)
				next++
			}
		case SharedLeaf:
			r.LeafNode[p] = next
			r.Labels[next] = "L" + strconv.Itoa(p)
			next++
		case UnsharedLeaf:
			r.GroupNode[p] = make([]int, b.K)
			for i := 0; i < b.K; i++ {
				r.GroupNode[p][i] = next
				r.Labels[next] = "U" + strconv.Itoa(p) + "." + strconv.Itoa(i)
				next++
			}
		default:
			return nil, fmt.Errorf("core: position %d has invalid kind %v", p, b.Kind[p])
		}
	}

	// Tree edges, replicated per copy.
	for p := 0; p < np; p++ {
		parent := b.Parent[p]
		if parent < 0 {
			continue
		}
		if b.Kind[parent] != Internal {
			return nil, fmt.Errorf("core: position %d has non-internal parent %d", p, parent)
		}
		for i := 0; i < b.K; i++ {
			u := r.CopyNode[i][parent]
			switch b.Kind[p] {
			case Internal:
				bld.MustAddEdge(u, r.CopyNode[i][p])
			case SharedLeaf:
				bld.MustAddEdge(u, r.LeafNode[p])
			case UnsharedLeaf:
				bld.MustAddEdge(u, r.GroupNode[p][i])
			}
		}
	}
	// Unshared-leaf cliques.
	for p := 0; p < np; p++ {
		if b.Kind[p] != UnsharedLeaf {
			continue
		}
		members := r.GroupNode[p]
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				bld.MustAddEdge(members[i], members[j])
			}
		}
	}
	r.Graph = bld.Freeze()
	return r, nil
}

func internalLabel(p, copyIdx int) string {
	if p == 0 {
		return "R" + strconv.Itoa(copyIdx)
	}
	return "N" + strconv.Itoa(p) + "." + strconv.Itoa(copyIdx)
}

package trace

import (
	"encoding/json"
	"io"
	"os"
)

// Chrome trace_event export. The flight recorder's records serialize to
// the JSON object format chrome://tracing and Perfetto load directly:
// completed spans as "X" (complete) events with microsecond ts/dur, point
// events as "i" (instant) events. Span lanes (tid) come from the span's
// "worker" attribute when present, so the per-worker probe batches of a
// parallel verification render as parallel tracks instead of one stacked
// mess; everything else shares lane 0.

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object format.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// DisplayTimeUnit asks the viewer for millisecond labels.
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes recs in the Chrome trace_event JSON object
// format. Timestamps are microseconds relative to the earliest record, so
// the export is stable across process restarts and diffs cleanly.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(recs)), DisplayTimeUnit: "ms"}
	var epoch int64
	for i, rec := range recs {
		if i == 0 || rec.Start.UnixNano() < epoch {
			epoch = rec.Start.UnixNano()
		}
	}
	for _, rec := range recs {
		ev := chromeEvent{
			Name: rec.Name,
			Cat:  "lhg",
			TsUs: float64(rec.Start.UnixNano()-epoch) / 1e3,
			Pid:  1,
			Tid:  recordLane(rec),
			Args: exportArgs(rec),
		}
		switch rec.Kind {
		case KindInstant:
			ev.Phase = "i"
			ev.Scope = "t"
		default:
			ev.Phase = "X"
			ev.DurUs = float64(rec.Dur) / 1e3
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// recordLane picks the viewer track: the worker attribute when the record
// has one, lane 0 otherwise.
func recordLane(rec Record) int64 {
	for _, a := range rec.Attrs {
		if a.Key == "worker" && a.isInt {
			return a.Int + 1
		}
	}
	return 0
}

// exportArgs renders the record's identity and attributes as the event's
// args block.
func exportArgs(rec Record) map[string]any {
	args := make(map[string]any, len(rec.Attrs)+2)
	if !rec.Trace.IsZero() {
		args["trace_id"] = rec.Trace.String()
	}
	if !rec.Parent.IsZero() {
		args["parent"] = rec.Parent.String()
	}
	for _, a := range rec.Attrs {
		args[a.Key] = a.Value()
	}
	return args
}

// WriteChromeTraceFile writes the records to path (creating or truncating
// it) in the Chrome trace_event format.
func WriteChromeTraceFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

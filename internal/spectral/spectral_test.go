package spectral

import (
	"math"
	"testing"

	"lhg/internal/core"
	"lhg/internal/graph"
	"lhg/internal/harary"
)

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(v, (v+1)%n)
	}
	return b.Freeze()
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.Freeze()
}

func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for v := 0; v < 5; v++ {
		b.MustAddEdge(v, (v+1)%5)
		b.MustAddEdge(5+v, 5+(v+2)%5)
		b.MustAddEdge(v, 5+v)
	}
	return b.Freeze()
}

func TestSecondEigenvalueErrors(t *testing.T) {
	if _, err := SecondEigenvalue(graph.New(1), Options{}); err == nil {
		t.Fatal("tiny graph must error")
	}
	star := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	if _, err := SecondEigenvalue(star, Options{}); err == nil {
		t.Fatal("irregular graph must error")
	}
	if _, err := SecondEigenvalue(graph.New(4), Options{}); err == nil {
		t.Fatal("disconnected graph must error")
	}
}

func TestSecondEigenvalueCycle(t *testing.T) {
	// C_n has λ2 = 2cos(2π/n) exactly.
	for _, n := range []int{8, 16, 50} {
		got, err := SecondEigenvalue(cycle(n), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := 2 * math.Cos(2*math.Pi/float64(n))
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("λ2(C%d) = %v, want %v", n, got, want)
		}
	}
}

func TestSecondEigenvalueComplete(t *testing.T) {
	// K_n has λ2 = -1.
	got, err := SecondEigenvalue(complete(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-1)) > 1e-6 {
		t.Fatalf("λ2(K8) = %v, want -1", got)
	}
}

func TestSecondEigenvaluePetersen(t *testing.T) {
	// The Petersen graph has eigenvalues 3, 1 (×5), -2 (×4): λ2 = 1.
	got, err := SecondEigenvalue(petersen(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-6 {
		t.Fatalf("λ2(Petersen) = %v, want 1", got)
	}
}

func TestSpectralGapShrinksForHarary(t *testing.T) {
	// The ring-like Harary graphs lose their gap quadratically.
	gap32, err := SpectralGap(mustHarary(t, 32, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	gap128, err := SpectralGap(mustHarary(t, 128, 4), Options{Iterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if gap128 > gap32/4 {
		t.Fatalf("Harary gap should shrink ~quadratically: gap(32)=%v gap(128)=%v", gap32, gap128)
	}
	// And it tracks the circulant closed form.
	if bound := RingGapBound(128, 4); math.Abs(gap128-bound) > bound {
		t.Fatalf("gap(128)=%v far from ring bound %v", gap128, bound)
	}
}

func TestSpectralGapDecaysSlowerForKDiamond(t *testing.T) {
	// LHGs are tree-like, not expanders: their gap decays ≈Θ(1/n) — but
	// that is a full polynomial order slower than Harary's Θ(1/n²), so the
	// gap ratio grows with n.
	k := 4
	gaps := map[int]float64{}
	hGaps := map[int]float64{}
	for _, n := range []int{32, 128} { // regular sizes for both families
		if !core.RegularKDiamond(n, k) {
			t.Fatalf("pick regular sizes: (%d,%d)", n, k)
		}
		kd, err := core.BuildKDiamond(n, k)
		if err != nil {
			t.Fatal(err)
		}
		gap, err := SpectralGap(kd.Real.Graph, Options{Iterations: 20000})
		if err != nil {
			t.Fatal(err)
		}
		gaps[n] = gap
		hGap, err := SpectralGap(mustHarary(t, n, k), Options{Iterations: 20000})
		if err != nil {
			t.Fatal(err)
		}
		hGaps[n] = hGap
		if gap < 2*hGap {
			t.Fatalf("n=%d: LHG gap %v not clearly above Harary gap %v", n, gap, hGap)
		}
	}
	// Quadrupling n costs Harary ~16x of its gap but the LHG only ~8x;
	// assert the ratio widens by at least 1.5x.
	ratio32 := gaps[32] / hGaps[32]
	ratio128 := gaps[128] / hGaps[128]
	if ratio128 < 1.5*ratio32 {
		t.Fatalf("gap ratio must widen with n: %v at n=32, %v at n=128", ratio32, ratio128)
	}
}

func TestRingGapBoundMonotone(t *testing.T) {
	if RingGapBound(64, 4) <= RingGapBound(256, 4) {
		t.Fatal("ring gap must shrink with n")
	}
}

func mustHarary(t *testing.T, n, k int) *graph.Graph {
	t.Helper()
	g, err := harary.Build(n, k)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(k) {
		t.Fatalf("H(%d,%d) not regular; pick even k*n", k, n)
	}
	return g
}

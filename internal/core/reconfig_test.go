package core

import (
	"reflect"
	"testing"

	"lhg/internal/graph"
)

// reconfigurers enumerates the churn-engine factories for shared test
// logic, keyed by constraint name.
func reconfigurers(k int) map[string]func() (Reconfigurer, error) {
	return map[string]func() (Reconfigurer, error){
		"ktree":    func() (Reconfigurer, error) { return NewKTreeGrower(k) },
		"kdiamond": func() (Reconfigurer, error) { return NewKDiamondGrower(k) },
	}
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.Order() != b.Order() || a.Size() != b.Size() {
		return false
	}
	for v := 0; v < a.Order(); v++ {
		if !reflect.DeepEqual(a.Neighbors(v), b.Neighbors(v)) {
			return false
		}
	}
	return true
}

// TestShrinkInvertsGrow: Shrink is the exact inverse of Grow — unwinding a
// growth run reproduces every intermediate graph bit-for-bit, across all
// batch-boundary phases of both state machines.
func TestShrinkInvertsGrow(t *testing.T) {
	for _, k := range []int{3, 4, 5} {
		for name, mk := range reconfigurers(k) {
			gr, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			steps := 6*k + 5 // covers several restructure / form+dissolve cycles
			snaps := []*graph.Graph{gr.Graph()}
			for i := 0; i < steps; i++ {
				if _, err := gr.Grow(); err != nil {
					t.Fatalf("%s k=%d grow %d: %v", name, k, i, err)
				}
				snaps = append(snaps, gr.Graph())
			}
			for i := steps - 1; i >= 0; i-- {
				if _, err := gr.Shrink(); err != nil {
					t.Fatalf("%s k=%d shrink to n=%d: %v", name, k, gr.N()-1, err)
				}
				if !graphsEqual(gr.Graph(), snaps[i]) {
					t.Fatalf("%s k=%d: graph after shrink to n=%d differs from the grown one", name, k, gr.N())
				}
			}
		}
	}
}

// TestShrinkRestoresGrowerState: after shrinking, the grower is not just on
// the right graph but in the right STATE — growing again from any rewound
// point reproduces the pure-growth graphs exactly.
func TestShrinkRestoresGrowerState(t *testing.T) {
	k := 3
	for name, mk := range reconfigurers(k) {
		ref, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		var refSnaps []*graph.Graph
		for i := 0; i < 30; i++ {
			if _, err := ref.Grow(); err != nil {
				t.Fatal(err)
			}
			refSnaps = append(refSnaps, ref.Graph())
		}
		gr, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if _, err := gr.Grow(); err != nil {
				t.Fatal(err)
			}
		}
		// Rewind 13 steps, then replay: every regrown graph must match.
		for i := 0; i < 13; i++ {
			if _, err := gr.Shrink(); err != nil {
				t.Fatal(err)
			}
		}
		for i := 17; i < 30; i++ {
			if _, err := gr.Grow(); err != nil {
				t.Fatal(err)
			}
			if !graphsEqual(gr.Graph(), refSnaps[i]) {
				t.Fatalf("%s: regrown graph at n=%d differs from pure growth", name, gr.N())
			}
		}
	}
}

// TestShrinkDeltaMatchesGraph: replaying each shrink delta through
// graph.ApplyDelta (with the reduced node count) reproduces the grower's
// own view — the integration contract the serve and member layers rely on.
func TestShrinkDeltaMatchesGraph(t *testing.T) {
	for name, mk := range reconfigurers(4) {
		gr, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			if _, err := gr.Grow(); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 25; i++ {
			prev := gr.Graph()
			d, err := gr.Shrink()
			if err != nil {
				t.Fatal(err)
			}
			patched, err := prev.ApplyDelta(d, gr.N())
			if err != nil {
				t.Fatalf("%s shrink %d: ApplyDelta: %v", name, i, err)
			}
			if !graphsEqual(patched, gr.Graph()) {
				t.Fatalf("%s shrink %d: patched view differs from grower", name, i)
			}
		}
	}
}

// TestGrowDeltaAppliesViaApplyDelta mirrors the above for admissions: the
// grow delta names the new top label, so ApplyDelta with n+1 must land on
// the grower's graph.
func TestGrowDeltaAppliesViaApplyDelta(t *testing.T) {
	for name, mk := range reconfigurers(3) {
		gr, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			prev := gr.Graph()
			d, err := gr.Grow()
			if err != nil {
				t.Fatal(err)
			}
			patched, err := prev.ApplyDelta(d, gr.N())
			if err != nil {
				t.Fatalf("%s grow %d: ApplyDelta: %v", name, i, err)
			}
			if !graphsEqual(patched, gr.Graph()) {
				t.Fatalf("%s grow %d: patched view differs from grower", name, i)
			}
		}
	}
}

// TestShrinkBelowMinimumFails: the minimal graph 2k cannot absorb a leave.
func TestShrinkBelowMinimumFails(t *testing.T) {
	for name, mk := range reconfigurers(3) {
		gr, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gr.Shrink(); err == nil {
			t.Fatalf("%s: shrink below 2k must fail", name)
		}
		// One join must make exactly one leave legal again.
		if _, err := gr.Grow(); err != nil {
			t.Fatal(err)
		}
		if _, err := gr.Shrink(); err != nil {
			t.Fatalf("%s: shrink after grow: %v", name, err)
		}
		if _, err := gr.Shrink(); err == nil {
			t.Fatalf("%s: second shrink must fail at the minimum", name)
		}
	}
}

// TestDeltasAreCanonical: every delta from Grow and Shrink arrives sorted
// by (U,V) with U < V and no duplicates — the byte-determinism contract of
// the lhgrow JSON lines and the /v1/reconfigure diffs.
func TestDeltasAreCanonical(t *testing.T) {
	assertCanonical := func(t *testing.T, es []graph.Edge, what string, step int) {
		t.Helper()
		for i, e := range es {
			if e.U >= e.V {
				t.Fatalf("step %d: %s edge %v not oriented U<V", step, what, e)
			}
			if i > 0 && !(es[i-1].U < e.U || (es[i-1].U == e.U && es[i-1].V < e.V)) {
				t.Fatalf("step %d: %s edges not strictly sorted at %d: %v", step, what, i, es)
			}
		}
	}
	for name, mk := range reconfigurers(4) {
		gr, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			d, err := gr.Grow()
			if err != nil {
				t.Fatal(err)
			}
			assertCanonical(t, d.Added, name+" grow added", i)
			assertCanonical(t, d.Removed, name+" grow removed", i)
		}
		for i := 0; i < 30; i++ {
			d, err := gr.Shrink()
			if err != nil {
				t.Fatal(err)
			}
			assertCanonical(t, d.Added, name+" shrink added", i)
			assertCanonical(t, d.Removed, name+" shrink removed", i)
		}
	}
}

// TestApplyBatchNetDelta: Apply merges a batch into its NET surgery — the
// merged delta lands on the final graph via one ApplyDelta, even when the
// batch crosses additions and removals of the same edge multiple times.
func TestApplyBatchNetDelta(t *testing.T) {
	batches := [][]Change{
		{ChangeJoin, ChangeJoin, ChangeJoin},
		{ChangeJoin, ChangeLeave, ChangeJoin},                          // add→remove→add survives
		{ChangeJoin, ChangeJoin, ChangeLeave, ChangeLeave, ChangeJoin}, // rewind past a boundary
		{ChangeLeave, ChangeJoin},                                      // leave first
		{ChangeJoin, ChangeJoin, ChangeJoin, ChangeJoin, ChangeJoin, ChangeLeave},
	}
	for name, mk := range reconfigurers(3) {
		gr, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		// Start away from the minimum so leading leaves are legal.
		for i := 0; i < 8; i++ {
			if _, err := gr.Grow(); err != nil {
				t.Fatal(err)
			}
		}
		for bi, batch := range batches {
			prev := gr.Graph()
			d, err := gr.Apply(batch)
			if err != nil {
				t.Fatalf("%s batch %d: %v", name, bi, err)
			}
			patched, err := prev.ApplyDelta(d, gr.N())
			if err != nil {
				t.Fatalf("%s batch %d: net delta does not apply: %v", name, bi, err)
			}
			if !graphsEqual(patched, gr.Graph()) {
				t.Fatalf("%s batch %d: net delta misses the final graph", name, bi)
			}
		}
	}
}

// TestApplyStopsAtError: a batch that underflows the minimal size returns
// the delta of the completed prefix along with the error.
func TestApplyStopsAtError(t *testing.T) {
	gr, err := NewKTreeGrower(3)
	if err != nil {
		t.Fatal(err)
	}
	prev := gr.Graph()
	d, err := gr.Apply([]Change{ChangeJoin, ChangeLeave, ChangeLeave})
	if err == nil {
		t.Fatal("underflow batch must error")
	}
	patched, aerr := prev.ApplyDelta(d, gr.N())
	if aerr != nil {
		t.Fatalf("prefix delta does not apply: %v", aerr)
	}
	if !graphsEqual(patched, gr.Graph()) {
		t.Fatal("prefix delta misses the partial graph")
	}
}

// TestNewGrowerAtMatchesStepwise: the fast-forward constructors land in the
// exact state of a step-by-step grower.
func TestNewGrowerAtMatchesStepwise(t *testing.T) {
	k := 3
	for n := 2 * k; n <= 2*k+15; n++ {
		at, err := NewKTreeGrowerAt(k, n)
		if err != nil {
			t.Fatal(err)
		}
		step, err := NewKTreeGrower(k)
		if err != nil {
			t.Fatal(err)
		}
		for step.N() < n {
			if _, err := step.Grow(); err != nil {
				t.Fatal(err)
			}
		}
		if !graphsEqual(at.Graph(), step.Graph()) {
			t.Fatalf("K-TREE At(%d) differs from stepwise", n)
		}
		dat, err := NewKDiamondGrowerAt(k, n)
		if err != nil {
			t.Fatal(err)
		}
		dstep, err := NewKDiamondGrower(k)
		if err != nil {
			t.Fatal(err)
		}
		for dstep.N() < n {
			if _, err := dstep.Grow(); err != nil {
				t.Fatal(err)
			}
		}
		if !graphsEqual(dat.Graph(), dstep.Graph()) {
			t.Fatalf("K-DIAMOND At(%d) differs from stepwise", n)
		}
	}
	if _, err := NewKTreeGrowerAt(3, 5); err == nil {
		t.Fatal("n < 2k must be rejected")
	}
}

package check

import (
	"context"

	"lhg/internal/graph"
)

// VerifyParallel computes the same exact Report as Verify but fans the
// independent probes — the per-pair connectivity cuts of κ and λ, the
// per-edge P3 removal probes, and the all-sources distance sweep — across a
// pool of `workers` goroutines. workers <= 0 means GOMAXPROCS; workers == 1
// is exactly Verify.
//
// The frozen CSR graph is shared by every worker without cloning or locks;
// each worker draws its flow network and BFS scratch from the package
// pools. The report is deterministic: the same values (and the same P3
// witness edge) as the serial path, regardless of worker count.
//
// New callers should prefer VerifyCtx, which adds cancellation and
// property selection on top of the same driver.
func VerifyParallel(g *graph.Graph, k, workers int) (*Report, error) {
	return VerifyCtx(context.Background(), g, k, Options{Workers: graph.ClampWorkers(workers, 0)})
}

package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lhg"
	"lhg/internal/obs"
)

// GET /v1/budget — the retry-amplification analyzer as a service.
//
// The endpoint prices the reliable flood's f ≤ k−1 delivery guarantee for
// one (graph, source, retry-policy) triple: the full ampguard report (path
// families, compound amplification, frame ceiling, worst-case latency) plus
// the derived runtime guard netflood would enforce. Results are cached and
// persisted under the same key scheme as every other endpoint — the policy
// folds into the key — so a fleet prices each triple once.
var (
	mReqBudget  = obs.NewCounter("serve.budget.requests")
	mErrBudget  = obs.NewCounter("serve.budget.errors")
	mHitBudget  = obs.NewCounter("serve.budget.cache.hits")
	mMissBudget = obs.NewCounter("serve.budget.cache.misses")
	hLatBudget  = obs.NewHistogram("serve.budget.latency_us", latencyBounds...)
	tBudget     = obs.NewTimer("serve.budget.time")

	epBudget = endpoint{mReqBudget, mErrBudget, mHitBudget, mMissBudget, hLatBudget, tBudget}
)

// BudgetRequest selects one amplification analysis: the graph key fields
// plus the flood source and the retry policy being priced. Policy fields
// left unset take the netflood reliable-mode defaults.
type BudgetRequest struct {
	BuildRequest
	Source  int             `json:"source"`
	Policy  lhg.RetryPolicy `json:"policy"`
	Workers int             `json:"workers,omitempty"`
}

// BudgetResponse carries the analysis and its enforcement plan.
type BudgetResponse struct {
	Constraint string            `json:"constraint"`
	N          int               `json:"n"`
	K          int               `json:"k"`
	Seed       *uint64           `json:"seed,omitempty"`
	Source     int               `json:"source"`
	Cached     bool              `json:"cached"`
	Policy     lhg.RetryPolicy   `json:"policy"`
	Report     *lhg.BudgetReport `json:"report"`
	Guard      lhg.StormGuard    `json:"guard"`
}

func (br *BudgetRequest) check() error {
	if _, err := br.validate(); err != nil {
		return err
	}
	if br.Source < 0 || br.Source >= br.N {
		return fmt.Errorf("serve: source %d outside [0,%d)", br.Source, br.N)
	}
	return nil
}

// budgetKey folds the policy into the cache key: distinct policies price
// distinctly, identical ones (across the whole fleet) share one analysis.
func budgetKey(graphKey string, source int, p lhg.RetryPolicy) string {
	return fmt.Sprintf("budget|%s|src=%d|t=%d|b=%d|m=%d|r=%d|j=%g",
		graphKey, source, p.Timeout.Nanoseconds(), p.Base.Nanoseconds(),
		p.Max.Nanoseconds(), p.Retries, p.Jitter)
}

// parseBudgetQuery maps GET query parameters onto a BudgetRequest: the
// graph selectors, source, and the policy knobs retries / timeout_ms /
// base_ms / max_ms / jitter (defaults: the netflood reliable policy).
func parseBudgetQuery(r *http.Request) (*BudgetRequest, error) {
	q := r.URL.Query()
	req := &BudgetRequest{Policy: lhg.DefaultRetryPolicy()}
	req.Constraint = q.Get("constraint")
	var err error
	if req.N, err = queryInt(q.Get("n")); err != nil {
		return nil, fmt.Errorf("serve: bad n: %v", err)
	}
	if req.K, err = queryInt(q.Get("k")); err != nil {
		return nil, fmt.Errorf("serve: bad k: %v", err)
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: bad seed: %v", err)
		}
		req.Seed = &seed
	}
	if v := q.Get("source"); v != "" {
		if req.Source, err = queryInt(v); err != nil {
			return nil, fmt.Errorf("serve: bad source: %v", err)
		}
	}
	if v := q.Get("retries"); v != "" {
		if req.Policy.Retries, err = queryInt(v); err != nil {
			return nil, fmt.Errorf("serve: bad retries: %v", err)
		}
	}
	for _, knob := range []struct {
		name string
		dst  *time.Duration
	}{
		{"timeout_ms", &req.Policy.Timeout},
		{"base_ms", &req.Policy.Base},
		{"max_ms", &req.Policy.Max},
	} {
		if v := q.Get(knob.name); v != "" {
			ms, err := queryInt(v)
			if err != nil {
				return nil, fmt.Errorf("serve: bad %s: %v", knob.name, err)
			}
			*knob.dst = time.Duration(ms) * time.Millisecond
		}
	}
	if v := q.Get("jitter"); v != "" {
		if req.Policy.Jitter, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, fmt.Errorf("serve: bad jitter: %v", err)
		}
	}
	return req, nil
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.notAllowed(w, r, http.MethodGet)
		return
	}
	runQuery(s, epBudget, w, r, parseBudgetQuery, func(ctx context.Context, req *BudgetRequest) (any, error) {
		c, _ := req.validate() // checked by the pipeline
		g, _, err := s.getGraph(ctx, c, &req.BuildRequest)
		if err != nil {
			return nil, err
		}
		key := budgetKey(req.graphKey(c), req.Source, req.Policy)
		v, cached, err := s.compute(ctx, epBudget, key, persistBudget, func(runCtx context.Context) (any, error) {
			return lhg.FloodBudget(runCtx, g, req.Source, req.K, req.Policy)
		})
		if err != nil {
			if _, code := classify(err); code == CodeInternal {
				// Analyzer rejections (bad policy, bad source) are the
				// caller's parameters, not a server fault.
				return nil, badRequest(err)
			}
			return nil, err
		}
		report := v.(*lhg.BudgetReport)
		return BudgetResponse{
			Constraint: c.String(), N: req.N, K: req.K, Seed: req.Seed,
			Source: req.Source, Cached: cached, Policy: req.Policy,
			Report: report, Guard: report.Guard(),
		}, nil
	})
}

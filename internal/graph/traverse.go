package graph

// BFSFrom runs a breadth-first search from src and returns the distance (in
// hops) to every node; unreachable nodes get -1. If src is out of range the
// result is all -1.
func (g *Graph) BFSFrom(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= len(g.adj) {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, len(g.adj))
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst as a node sequence
// including both endpoints, or nil if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) []int {
	if src < 0 || dst < 0 || src >= len(g.adj) || dst >= len(g.adj) {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	parent := make([]int, len(g.adj))
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if parent[v] < 0 {
				parent[v] = u
				if v == dst {
					return buildPath(parent, src, dst)
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

func buildPath(parent []int, src, dst int) []int {
	var rev []int
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

// Connected reports whether g is connected. Graphs with fewer than two
// nodes are connected by convention.
func (g *Graph) Connected() bool {
	if len(g.adj) <= 1 {
		return true
	}
	dist := g.BFSFrom(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// ConnectedIgnoring reports whether the subgraph induced by removing the
// nodes in `removed` (a boolean mask indexed by node) is connected. A
// subgraph with fewer than two surviving nodes is connected by convention.
func (g *Graph) ConnectedIgnoring(removed []bool) bool {
	n := len(g.adj)
	start := -1
	alive := 0
	for v := 0; v < n; v++ {
		if v < len(removed) && removed[v] {
			continue
		}
		alive++
		if start < 0 {
			start = v
		}
	}
	if alive <= 1 {
		return true
	}
	seen := make([]bool, n)
	seen[start] = true
	queue := []int{start}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if seen[v] || (v < len(removed) && removed[v]) {
				continue
			}
			seen[v] = true
			count++
			queue = append(queue, v)
		}
	}
	return count == alive
}

// Components returns the connected components of g, each as a sorted node
// slice, ordered by their smallest member.
func (g *Graph) Components() [][]int {
	n := len(g.adj)
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		seen[s] = true
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, sortedCopy(comp))
	}
	return comps
}

// Eccentricity returns the greatest BFS distance from v to any reachable
// node, and whether the whole graph is reachable from v.
func (g *Graph) Eccentricity(v int) (ecc int, wholeGraph bool) {
	dist := g.BFSFrom(v)
	wholeGraph = true
	for _, d := range dist {
		if d < 0 {
			wholeGraph = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, wholeGraph
}

// Diameter returns the longest shortest path in g. It returns -1 when g is
// disconnected or has no nodes.
func (g *Graph) Diameter() int {
	if len(g.adj) == 0 {
		return -1
	}
	diam := 0
	for v := range g.adj {
		ecc, whole := g.Eccentricity(v)
		if !whole {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// AvgPathLength returns the mean shortest-path length over all ordered node
// pairs, or -1 when g is disconnected or has fewer than two nodes.
func (g *Graph) AvgPathLength() float64 {
	n := len(g.adj)
	if n < 2 {
		return -1
	}
	var total, pairs int64
	for v := 0; v < n; v++ {
		for _, d := range g.BFSFrom(v) {
			if d < 0 {
				return -1
			}
			total += int64(d)
		}
	}
	pairs = int64(n) * int64(n-1)
	return float64(total) / float64(pairs)
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package obs

import (
	"fmt"
	"io"
)

// StartCLI is the shared wiring behind the -metrics and -http flags of
// every command in cmd/: it enables the sink if either flag is set,
// optionally starts the debug endpoint, and returns a stop function that
// shuts the endpoint down and — when metrics was requested — dumps the
// JSON metrics report to logw (conventionally stderr, keeping stdout
// machine-parseable).
func StartCLI(metrics bool, httpAddr string, logw io.Writer) (stop func(), err error) {
	if !metrics && httpAddr == "" {
		return func() {}, nil
	}
	Enable()
	var closeHTTP func() error
	if httpAddr != "" {
		addr, closer, err := Serve(httpAddr)
		if err != nil {
			return nil, fmt.Errorf("debug endpoint: %w", err)
		}
		closeHTTP = closer
		fmt.Fprintf(logw, "debug endpoint listening on http://%s (/debug/vars, /metrics, /debug/pprof/)\n", addr)
	}
	return func() {
		if closeHTTP != nil {
			_ = closeHTTP()
		}
		if metrics {
			_ = WriteJSON(logw)
		}
	}, nil
}

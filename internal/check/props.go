package check

import "strings"

// Properties is a bitmask selecting which LHG properties a verification
// run computes. The zero value means "all of them" — the full report —
// so existing callers and the zero Options keep the historical behavior.
//
// Selecting a subset skips whole phases: a P4-only run never issues a
// max-flow probe, and a P1|P2-only run skips the all-sources BFS sweep.
// P5 (regularity) rides along for free — it is a degree scan — and is
// always reported.
type Properties uint8

const (
	// PropNodeConnectivity computes the exact κ(G) and P1 (κ >= k).
	PropNodeConnectivity Properties = 1 << iota
	// PropLinkConnectivity computes the exact λ(G) and P2 (λ >= k).
	PropLinkConnectivity
	// PropLinkMinimality sweeps every edge for P3. It needs κ and λ, so
	// selecting it pulls in PropNodeConnectivity and PropLinkConnectivity.
	PropLinkMinimality
	// PropDiameter runs the all-sources distance sweep for P4 and the
	// average path length.
	PropDiameter
)

// PropAll selects every property — the full report.
const PropAll = PropNodeConnectivity | PropLinkConnectivity | PropLinkMinimality | PropDiameter

// Has reports whether every property in q is selected in p.
func (p Properties) Has(q Properties) bool { return p&q == q }

// normalized resolves the zero value to PropAll and adds the connectivity
// prerequisites of the minimality sweep.
func (p Properties) normalized() Properties {
	if p == 0 {
		return PropAll
	}
	if p.Has(PropLinkMinimality) {
		p |= PropNodeConnectivity | PropLinkConnectivity
	}
	return p
}

// String renders the selection as "P1|P2|P3|P4" (or "none").
func (p Properties) String() string {
	var parts []string
	if p.Has(PropNodeConnectivity) {
		parts = append(parts, "P1")
	}
	if p.Has(PropLinkConnectivity) {
		parts = append(parts, "P2")
	}
	if p.Has(PropLinkMinimality) {
		parts = append(parts, "P3")
	}
	if p.Has(PropDiameter) {
		parts = append(parts, "P4")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// Sparsify selects the sparse-certificate policy for the κ/λ probe phases
// (see SparseProbeView). The zero value is the automatic fast path, so the
// zero Options keeps sparsification on by default.
type Sparsify uint8

const (
	// SparsifyAuto probes a Nagamochi–Ibaraki certificate instead of the
	// full edge set whenever the graph is dense enough for the certificate
	// to pay for itself (m > SparsifyCutoff·k·n and the certificate is
	// strictly smaller than the graph). This is the default.
	SparsifyAuto Sparsify = iota
	// SparsifyOff always probes the full edge set — the escape hatch and
	// the reference side of the differential tests.
	SparsifyOff
	// SparsifyAlways probes the certificate regardless of density. Meant
	// for tests that must exercise the sparsified path on small inputs;
	// production callers should stay on SparsifyAuto.
	SparsifyAlways
)

func (s Sparsify) String() string {
	switch s {
	case SparsifyAuto:
		return "auto"
	case SparsifyOff:
		return "off"
	case SparsifyAlways:
		return "always"
	}
	return "sparsify(?)"
}

// Options configures a verification run. The zero value — all properties,
// GOMAXPROCS workers, automatic sparsification — is the right default for
// interactive and service use; set Workers to 1 for the
// deterministic-serial path (the report is bit-identical either way).
type Options struct {
	// Workers is the goroutine budget for the probe fan-out; <= 0 means
	// GOMAXPROCS, 1 runs serially.
	Workers int
	// Props selects the properties to compute; zero means PropAll.
	Props Properties
	// Sparsify selects the sparse-certificate policy for the κ/λ probes.
	// The zero value (SparsifyAuto) enables the fast path on dense graphs;
	// it never changes any reported value or verdict.
	Sparsify Sparsify
}

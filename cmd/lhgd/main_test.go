package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lhg/internal/obs"
	"lhg/internal/serve"
)

func TestMain(m *testing.M) {
	obs.Enable()
	m.Run()
}

func startTestDaemon(t *testing.T, opts serve.Options) (base string, cancel func()) {
	t.Helper()
	ctx, stop := context.WithCancel(context.Background())
	d, err := startDaemon(ctx, opts, "127.0.0.1:0")
	if err != nil {
		stop()
		t.Fatalf("startDaemon: %v", err)
	}
	t.Cleanup(func() {
		stop()
		if err := d.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return "http://" + d.Addr(), stop
}

func post(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// TestDaemonEndToEnd drives every endpoint of a live daemon over TCP.
func TestDaemonEndToEnd(t *testing.T) {
	base, _ := startTestDaemon(t, serve.Options{CacheSize: 64})

	var build serve.BuildResponse
	if status := post(t, base+"/v1/build", `{"constraint":"kdiamond","n":50,"k":4}`, &build); status != http.StatusOK {
		t.Fatalf("build: status %d", status)
	}
	if build.Graph.Order() != 50 {
		t.Fatalf("build returned %d nodes, want 50", build.Graph.Order())
	}

	var verify serve.VerifyResponse
	if status := post(t, base+"/v1/verify", `{"constraint":"kdiamond","n":50,"k":4}`, &verify); status != http.StatusOK {
		t.Fatalf("verify: status %d", status)
	}
	if !verify.IsLHG {
		t.Fatalf("K-DIAMOND(50,4) must verify as an LHG: %+v", verify.Report)
	}

	var flood serve.FloodResponse
	if status := post(t, base+"/v1/flood",
		`{"constraint":"kdiamond","n":50,"k":4,"source":0,"failures":{"Nodes":[1,2,3]}}`, &flood); status != http.StatusOK {
		t.Fatalf("flood: status %d", status)
	}
	if !flood.Result.Complete {
		t.Fatalf("flood under f=3 < k=4 failures must complete: %v", flood.Result)
	}

	resp, err := http.Get(base + "/v1/constraints")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("constraints: status %d", resp.StatusCode)
	}
}

// TestDaemonReconfigureSession drives a stateful topology session over live
// TCP: create, churn both ways, read back, and confirm the epoch ratchet.
func TestDaemonReconfigureSession(t *testing.T) {
	base, _ := startTestDaemon(t, serve.Options{CacheSize: 64})

	var created serve.ReconfigureResponse
	if status := post(t, base+"/v1/reconfigure",
		`{"session":"prod","constraint":"ktree","n":18,"k":3}`, &created); status != http.StatusOK {
		t.Fatalf("create: status %d", status)
	}
	if created.Epoch != 0 || created.N != 18 || !created.IsLHG {
		t.Fatalf("create: epoch=%d n=%d is_lhg=%t, want 0/18/true", created.Epoch, created.N, created.IsLHG)
	}

	var churn serve.ReconfigureResponse
	if status := post(t, base+"/v1/reconfigure",
		`{"session":"prod","joins":3,"leaves":1}`, &churn); status != http.StatusOK {
		t.Fatalf("churn: status %d", status)
	}
	if churn.Epoch != 1 || churn.N != 20 || !churn.IsLHG {
		t.Fatalf("churn: epoch=%d n=%d is_lhg=%t, want 1/20/true", churn.Epoch, churn.N, churn.IsLHG)
	}
	if len(churn.Added) == 0 {
		t.Fatal("net growth of 2 members must add edges")
	}
	if churn.Report.NodeConnectivity < 3 || churn.Report.EdgeConnectivity < 3 {
		t.Fatalf("connectivity after churn = (%d,%d), want >= (3,3)",
			churn.Report.NodeConnectivity, churn.Report.EdgeConnectivity)
	}

	var read serve.ReconfigureResponse
	if status := post(t, base+"/v1/reconfigure", `{"session":"prod"}`, &read); status != http.StatusOK {
		t.Fatalf("read: status %d", status)
	}
	if read.Epoch != 1 || read.N != 20 {
		t.Fatalf("read: epoch=%d n=%d, want 1/20", read.Epoch, read.N)
	}
}

// TestLoadGeneratorCoalesces is the daemon-level acceptance check: a burst
// of 64 concurrent identical verify requests against a live TCP daemon
// executes exactly one verification campaign (singleflight + cache), and
// every request still gets a full, correct report.
func TestLoadGeneratorCoalesces(t *testing.T) {
	base, _ := startTestDaemon(t, serve.Options{CacheSize: 64})
	before := obs.Counters()

	const clients = 64
	body := `{"constraint":"kdiamond","n":100,"k":4,"properties":["P1","P2"]}`
	var wg sync.WaitGroup
	var ok, lhgTrue atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp serve.VerifyResponse
			if status := post(t, base+"/v1/verify", body, &resp); status == http.StatusOK {
				ok.Add(1)
				if resp.Report.KNodeConnected && resp.Report.KLinkConnected {
					lhgTrue.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	after := obs.Counters()
	if got := ok.Load(); got != clients {
		t.Fatalf("%d/%d requests succeeded", got, clients)
	}
	if got := lhgTrue.Load(); got != clients {
		t.Fatalf("%d/%d responses carried the verified properties", got, clients)
	}
	campaigns := after["check.verify.runs"] - before["check.verify.runs"]
	if campaigns != 1 {
		t.Fatalf("burst of %d identical verifies ran %d campaigns, want exactly 1", clients, campaigns)
	}
	// Probes are the expensive unit; a second campaign would have paid
	// them again. The delta must equal what one campaign costs, i.e. it
	// must be nonzero (the work happened) and stable across the burst.
	probes := after["flow.maxflow.probes"] - before["flow.maxflow.probes"]
	if probes == 0 {
		t.Fatal("no max-flow probes recorded; the campaign did not run here")
	}
}

// TestCacheHitLatency asserts the acceptance bound on the fast path: once a
// verify result is cached, p99 request latency over loopback TCP stays
// under a millisecond. Skipped under the race detector, whose per-access
// instrumentation dominates sub-millisecond budgets.
func TestCacheHitLatency(t *testing.T) {
	if raceEnabled {
		t.Skip("latency budget does not apply under the race detector")
	}
	base, _ := startTestDaemon(t, serve.Options{CacheSize: 64})
	body := `{"constraint":"ktree","n":40,"k":3,"properties":["P1"]}`

	// Prime the cache and the client's keep-alive connection.
	var warm serve.VerifyResponse
	if status := post(t, base+"/v1/verify", body, &warm); status != http.StatusOK {
		t.Fatalf("warmup: status %d", status)
	}
	for i := 0; i < 5; i++ {
		post(t, base+"/v1/verify", body, nil)
	}

	const samples = 300
	lat := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		start := time.Now()
		var resp serve.VerifyResponse
		if status := post(t, base+"/v1/verify", body, &resp); status != http.StatusOK {
			t.Fatalf("sample %d: status %d", i, status)
		}
		if !resp.Cached {
			t.Fatalf("sample %d missed the cache", i)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 := lat[samples/2]
	p99 := lat[samples*99/100]
	t.Logf("cache-hit latency over loopback: p50=%v p99=%v", p50, p99)
	if p99 >= time.Millisecond {
		t.Fatalf("cache-hit p99 = %v, want < 1ms", p99)
	}
}

// TestGracefulShutdown cancels the daemon context and checks the port is
// released and Serve returned cleanly.
func TestGracefulShutdown(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	d, err := startDaemon(ctx, serve.Options{CacheSize: 4}, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("startDaemon: %v", err)
	}
	addr := d.Addr()
	if status := post(t, "http://"+addr+"/v1/build", `{"constraint":"ktree","n":8,"k":3}`, nil); status != http.StatusOK {
		t.Fatalf("pre-shutdown build: status %d", status)
	}
	stop()
	if err := d.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Post("http://"+addr+"/v1/build", "application/json",
		bytes.NewBufferString(`{}`)); err == nil {
		t.Fatal("daemon still accepting connections after shutdown")
	}
}

// TestRunFlagErrors keeps the flag surface honest.
func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, &buf); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

// TestRunServesUntilCanceled boots the full run() path on an ephemeral
// port and shuts it down via context cancellation, the same path a signal
// takes in production.
func TestRunServesUntilCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-cache", "8"}, w) }()

	// Wait for the listen line so we know the server is up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		up := bytes.Contains(buf.Bytes(), []byte("lhgd: listening"))
		mu.Unlock()
		if up {
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never announced its address; log: %q", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func Example_daemonVerify() {
	ctx := context.Background()
	d, err := startDaemon(ctx, serve.Options{CacheSize: 8}, "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer d.Shutdown()
	resp, err := http.Post("http://"+d.Addr()+"/v1/verify", "application/json",
		bytes.NewBufferString(`{"constraint":"ktree","n":21,"k":3}`))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var out serve.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(err)
	}
	fmt.Printf("is_lhg=%t cached=%t\n", out.IsLHG, out.Cached)
	// Output: is_lhg=true cached=false
}

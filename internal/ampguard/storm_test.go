package ampguard_test

// E29 — retry-storm control under correlated loss. The static analyzer
// prices a KDIAMOND(16,4) flood under a fast retry policy; the guarded
// cluster then runs that flood over links dropping 25% of frames with
// periodic 90%-loss bursts, and the test pins the paper's two promises at
// once: delivery still completes (f ≤ k−1 structure, here f = 0 with
// hostile links), and the total frame spend stays under the statically
// computed ceiling. The unguarded twin runs the same storm for the cost
// comparison recorded in EXPERIMENTS.md.

import (
	"context"
	"testing"
	"time"

	"lhg/internal/ampguard"
	"lhg/internal/core"
	"lhg/internal/faultnet"
	"lhg/internal/graph"
	"lhg/internal/netflood"
	"lhg/internal/obs"
)

// stormPolicy is the test-speed retry policy E29 prices and runs: the same
// shape as the reliable defaults, scaled down so a chaos run converges in
// milliseconds. Backoffs (jittered ×1.25): 3.75ms, 7.5ms, 12.5ms, 12.5ms.
func stormPolicy() ampguard.Policy {
	return ampguard.Policy{
		Timeout: 250 * time.Millisecond,
		Base:    3 * time.Millisecond,
		Max:     10 * time.Millisecond,
		Retries: 4,
		Jitter:  0.25,
	}
}

// stormPlan is the E29 link environment: every link loses a quarter of its
// frames, and the first 5ms of every 20ms is a 90%-loss burst — the
// correlated-loss signature that turns naive retry policies into storms.
func stormPlan(int, int) faultnet.Plan {
	return faultnet.Plan{
		Drop:        0.25,
		BurstPeriod: 20 * time.Millisecond,
		BurstLen:    5 * time.Millisecond,
		BurstDrop:   0.9,
	}
}

// runStorm floods once over g with the given options under the storm plan
// and returns the settled counters of that run alone.
func runStorm(t *testing.T, g *graph.Graph, opts netflood.Options) map[string]int64 {
	t.Helper()
	obs.Reset()
	opts.Faults = stormPlan
	c, err := netflood.StartWithOptions(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	all := make([]int, g.Order())
	for v := range all {
		all[v] = v
	}
	if _, err := c.Broadcast(0, "storm"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitDelivered(all, 1, 15*time.Second) {
		t.Fatal("storm flood did not deliver everywhere")
	}
	// Let the ack/retransmit exchange settle so the counters price the
	// whole recovery, not a snapshot mid-storm.
	time.Sleep(400 * time.Millisecond)
	return obs.Counters()
}

func TestStormControlBoundsFrameCost(t *testing.T) {
	kd, err := core.BuildKDiamond(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := kd.Real.Graph
	policy := stormPolicy()
	report, err := ampguard.Analyze(context.Background(), g, 0, 4, policy)
	if err != nil {
		t.Fatal(err)
	}
	guard := report.Guard()

	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})
	base := netflood.Options{
		Reliable:       true,
		WriteTimeout:   policy.Timeout,
		RetransmitBase: policy.Base,
		RetransmitMax:  policy.Max,
		MaxRetries:     policy.Retries,
		Seed:           29,
	}

	guarded := base
	guarded.HopBudget = guard.HopBudget
	guarded.RetryBudget = guard.RetryBudget
	guarded.RetransmitRate = guard.RetransmitRate
	guarded.RetransmitBurst = guard.RetransmitBurst
	guarded.PathDiversity = guard.PathDiversity
	gctr := runStorm(t, g, guarded)

	gTotal := gctr["netflood.frames.sent"] + gctr["netflood.frames.retransmitted"]
	if gTotal > report.FrameCeiling {
		t.Fatalf("guarded storm spent %d frames, analyzer ceiling is %d", gTotal, report.FrameCeiling)
	}
	if gctr["faultnet.frames.dropped"]+gctr["faultnet.frames.burst_dropped"] == 0 {
		t.Fatal("storm plan injected no loss — the run proved nothing")
	}
	if gctr["netflood.links.reconnected"] != 0 || gctr["netflood.peers.dead"] != 0 {
		t.Fatalf("diversity gate did not hold escalation: %d reconnects, %d dead peers",
			gctr["netflood.links.reconnected"], gctr["netflood.peers.dead"])
	}

	uctr := runStorm(t, g, base)
	uTotal := uctr["netflood.frames.sent"] + uctr["netflood.frames.retransmitted"]
	t.Logf("E29 frame cost: guarded %d (ceiling %d, %d deferred, %d budget-exhausted) vs unguarded %d",
		gTotal, report.FrameCeiling, gctr["netflood.retransmit.deferred"],
		gctr["netflood.retransmit.budget_exhausted"], uTotal)
}

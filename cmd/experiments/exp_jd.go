package main

import (
	"fmt"
	"io"

	"lhg/internal/core"
)

// runE9 reproduces the §4.4 comparison: the Jenkins–Demers rule leaves
// infinitely many (n,k) unbuildable that K-TREE covers; in particular the
// (9,3) example and every odd offset n-2k.
func runE9(w io.Writer) error {
	fmt.Fprintf(w, "%-3s %-12s %-10s %-10s %-8s %s\n",
		"k", "n range", "EX_K-TREE", "EX_JD", "gaps", "first gaps")
	for k := 3; k <= 6; k++ {
		lo, hi := 2*k, 8*k
		var ktree, jd, gaps int
		var firstGaps []int
		for n := lo; n <= hi; n++ {
			t := core.ExistsKTree(n, k)
			j := core.ExistsJD(n, k)
			if j && !t {
				return fmt.Errorf("JD built a pair K-TREE cannot: (%d,%d)", n, k)
			}
			if t {
				ktree++
			}
			if j {
				jd++
			}
			if t && !j {
				gaps++
				if len(firstGaps) < 5 {
					firstGaps = append(firstGaps, n)
				}
			}
		}
		fmt.Fprintf(w, "%-3d [%d,%d]%-3s %-10d %-10d %-8d %v\n",
			k, lo, hi, "", ktree, jd, gaps, firstGaps)
	}

	// The paper's concrete example.
	fmt.Fprintf(w, "paper example: EX_JD(9,3)=%t, EX_K-TREE(9,3)=%t (Figure 2(b) is JD-impossible)\n",
		core.ExistsJD(9, 3), core.ExistsKTree(9, 3))

	// The odd-offset family n = 2k + 2α(k-1) + 3 from §4.4.
	for k := 3; k <= 5; k++ {
		for alpha := 0; alpha <= 4; alpha++ {
			n := 2*k + 2*alpha*(k-1) + 3
			if core.ExistsJD(n, k) || !core.ExistsKTree(n, k) {
				return fmt.Errorf("§4.4 family violated at k=%d α=%d (n=%d)", k, alpha, n)
			}
		}
	}
	fmt.Fprintln(w, "family n = 2k + 2α(k-1) + 3 confirmed JD-impossible, K-TREE-possible (k=3..5, α=0..4)")
	return nil
}

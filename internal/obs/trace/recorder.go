package trace

import (
	"sort"
	"sync"
	"time"
)

// Record kinds.
const (
	// KindSpan is a completed span: Start..Start+Dur.
	KindSpan = byte(iota)
	// KindInstant is a point event (Dur is zero and meaningless).
	KindInstant
)

// Record is one finished span or point event as the flight recorder keeps
// it. Records are self-contained — name, ids, wall-clock interval,
// attributes — so a snapshot can be exported long after the trace's
// in-memory structures are gone.
type Record struct {
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	Name   string
	Kind   byte
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// Recorder is the span flight recorder: a fixed-capacity ring buffer of
// the most recent records, striped across independently locked segments so
// concurrent workers finishing spans do not serialize on one mutex. When a
// stripe is full the oldest record in that stripe is overwritten — a
// flight recorder keeps the recent past, not the full history.
type Recorder struct {
	stripes [recorderStripes]stripe
}

const recorderStripes = 16

type stripe struct {
	mu   sync.Mutex
	buf  []Record
	next uint64 // total records ever appended to this stripe
}

// DefaultRecorder is the process-wide flight recorder: 32768 records
// (2048 per stripe), the store behind /debug/trace and lhcheck -trace.
var DefaultRecorder = NewRecorder(32768)

// NewRecorder returns a flight recorder holding at most capacity records
// (rounded up to a multiple of the stripe count; minimum one per stripe).
func NewRecorder(capacity int) *Recorder {
	per := (capacity + recorderStripes - 1) / recorderStripes
	if per < 1 {
		per = 1
	}
	r := &Recorder{}
	for i := range r.stripes {
		r.stripes[i].buf = make([]Record, 0, per)
	}
	return r
}

// add appends rec, evicting the oldest record of its stripe when full.
// The stripe is chosen from the span id, which is uniformly distributed,
// so load spreads without coordination.
func (r *Recorder) add(rec Record) {
	s := &r.stripes[rec.Span[7]&(recorderStripes-1)]
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, rec)
	} else {
		s.buf[s.next%uint64(cap(s.buf))] = rec
	}
	s.next++
	s.mu.Unlock()
}

// Len returns the number of records currently held.
func (r *Recorder) Len() int {
	n := 0
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		n += len(s.buf)
		s.mu.Unlock()
	}
	return n
}

// Dropped returns how many records have been evicted by ring wrap-around
// since the last Reset.
func (r *Recorder) Dropped() int64 {
	var dropped int64
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		if over := int64(s.next) - int64(cap(s.buf)); over > 0 && len(s.buf) == cap(s.buf) {
			dropped += over
		}
		s.mu.Unlock()
	}
	return dropped
}

// Snapshot copies every held record, ordered by start time (ties by span
// id so the order is total and stable).
func (r *Recorder) Snapshot() []Record {
	var out []Record
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		out = append(out, s.buf...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return string(out[i].Span[:]) < string(out[j].Span[:])
	})
	return out
}

// TraceRecords returns the held records of one trace, ordered as Snapshot.
func (r *Recorder) TraceRecords(id TraceID) []Record {
	all := r.Snapshot()
	out := all[:0]
	for _, rec := range all {
		if rec.Trace == id {
			out = append(out, rec)
		}
	}
	return out
}

// Reset discards every held record.
func (r *Recorder) Reset() {
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		s.buf = s.buf[:0]
		s.next = 0
		s.mu.Unlock()
	}
}

// Reset discards every record of the default flight recorder.
func Reset() { DefaultRecorder.Reset() }

// Snapshot copies every record of the default flight recorder.
func Snapshot() []Record { return DefaultRecorder.Snapshot() }

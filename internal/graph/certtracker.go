package graph

// CertTracker maintains a Nagamochi–Ibaraki sparse k-certificate across a
// stream of edge deltas. Rather than rebuilding the certificate from
// nothing, Advance re-runs only the flow-free scan-first-search labeling
// (linear in the graph, negligible next to one max-flow probe) and then
// re-materializes ONLY the certificate rows whose forest membership
// actually changed, block-copying every untouched row from the previous
// certificate. The returned changed-vertex set is exactly the frontier an
// incremental re-verification has to re-probe: a vertex is reported iff
// its certificate adjacency row differs between the two epochs.
//
// On the k-regular graphs this repository grows, the k+1-certificate is
// the graph itself (the q >= Δ shortcut in SparseCertificate), so Advance
// takes the O(changed) fast path: no scan at all, and the changed set is
// just the delta's touched vertices.
type CertTracker struct {
	k    int
	g    *Graph // graph at the current epoch
	cert *Graph // its sparse k-certificate
}

// NewCertTracker builds the initial certificate of g for parameter k.
func NewCertTracker(g *Graph, k int) *CertTracker {
	return &CertTracker{k: k, g: g, cert: SparseCertificate(g, k)}
}

// Graph returns the tracked graph at the current epoch.
func (t *CertTracker) Graph() *Graph { return t.g }

// Cert returns the certificate at the current epoch. Frozen graphs are
// immutable, so the caller may hold it across further Advance calls.
func (t *CertTracker) Cert() *Graph { return t.cert }

// K returns the certificate parameter.
func (t *CertTracker) K() int { return t.k }

// Advance moves the tracker to the next epoch: next must be the graph that
// results from applying d to the current one (typically via ApplyDelta —
// the tracker does not re-derive it, so callers reuse the view they already
// built). It returns the sorted vertices whose certificate membership
// changed; vertices present in only one of the two epochs are included.
func (t *CertTracker) Advance(next *Graph, d EdgeDelta) []int {
	prevCert := t.cert
	prevSaturated := t.cert == t.g // certificate kept every edge
	t.g = next
	if maxDeg, _ := next.MaxDegree(); t.k >= maxDeg {
		// Saturated epoch: the certificate is next itself. If the previous
		// epoch was saturated too, certificate rows track graph rows, so
		// membership changed exactly at the delta frontier (plus any node
		// that appeared or departed, already endpoints of delta edges or
		// isolated in both views).
		t.cert = next
		if prevSaturated {
			return boundTouched(d, prevCert.Order(), next.Order())
		}
		return diffRows(prevCert, next)
	}

	// General epoch: one flow-free relabeling pass over next, then rebuild
	// only the rows whose kept-edge membership moved.
	forest := forestIndices(next)
	n := next.Order()
	kept := make([]Edge, 0, next.Size())
	id := 0
	next.EachEdge(func(u, v int) {
		if int(forest[id]) <= t.k {
			kept = append(kept, Edge{U: u, V: v})
		}
		id++
	})
	newCert := rebuildCert(n, kept)
	t.cert = newCert
	return diffRows(prevCert, newCert)
}

// boundTouched clamps the delta frontier to the union of the two node
// ranges and adds nothing else — valid only when both epochs are saturated.
func boundTouched(d EdgeDelta, oldN, newN int) []int {
	lim := oldN
	if newN > lim {
		lim = newN
	}
	touched := d.Touched()
	out := touched[:0]
	for _, v := range touched {
		if v >= 0 && v < lim {
			out = append(out, v)
		}
	}
	return out
}

// rebuildCert assembles the certificate over n nodes from its kept-edge
// list. kept arrives in (U,V)-sorted EachEdge order, so most rows come out
// already sorted and only the out-of-order ones (bounded by the forest
// parameter, not the graph) pay a sort.
func rebuildCert(n int, kept []Edge) *Graph {
	off := make([]int32, n+1)
	for _, e := range kept {
		off[e.U+1]++
		off[e.V+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	nbr := make([]int32, off[n])
	fill := make([]int32, n)
	for _, e := range kept {
		nbr[off[e.U]+fill[e.U]] = int32(e.V)
		fill[e.U]++
		nbr[off[e.V]+fill[e.V]] = int32(e.U)
		fill[e.V]++
	}
	g := &Graph{off: off, nbr: nbr, edges: len(kept)}
	// Rows built from an edge stream sorted by (U,V) are sorted for the
	// lower endpoint but interleaved for the higher one; sort only rows
	// that are out of order (the common row is small: <= k entries).
	for v := 0; v < n; v++ {
		row := g.row(v)
		for i := 1; i < len(row); i++ {
			if row[i-1] > row[i] {
				sortInt32(row)
				break
			}
		}
	}
	return g
}

// diffRows returns the sorted vertices whose adjacency rows differ between
// a and b, including vertices that exist in only one of them.
func diffRows(a, b *Graph) []int {
	na, nb := a.Order(), b.Order()
	n := na
	if nb > n {
		n = nb
	}
	var out []int
	for v := 0; v < n; v++ {
		if v >= na || v >= nb {
			if (v < na && a.Degree(v) > 0) || (v < nb && b.Degree(v) > 0) {
				out = append(out, v)
			}
			continue
		}
		ra, rb := a.row(v), b.row(v)
		if len(ra) != len(rb) {
			out = append(out, v)
			continue
		}
		for i := range ra {
			if ra[i] != rb[i] {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

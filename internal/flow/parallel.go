package flow

import (
	"context"
	"sync/atomic"

	"lhg/internal/graph"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
)

// Worker-pool telemetry: spawned counts pool members across all fan-out
// drivers; busy accumulates each worker's wall time inside its probe loop.
// Utilization over a phase is busy / (workers × phase wall time).
var (
	mWorkersSpawned = obs.NewCounter("flow.workers.spawned")
	tWorkerBusy     = obs.NewTimer("flow.workers.busy")
)

// probeProgressEvery is the probe-batch granularity of the per-worker
// "probe-progress" trace events: one point event per this many completed
// probes keeps the flight recorder (and any live SSE watcher) informed
// without per-probe noise.
const probeProgressEvery = 32

// workerSpan opens the per-worker child span of a fan-out phase,
// attributing the worker id so the Chrome export renders each worker in
// its own lane. Inert (and allocation-free) when tracing is disabled.
func workerSpan(ctx context.Context, name string, w int) trace.Span {
	_, sp := trace.StartSpan(ctx, name)
	if sp.Live() {
		sp.SetAttr(trace.Int("worker", int64(w)))
	}
	return sp
}

// probeProgress emits the batched progress point for a worker that has
// finished its i-th probe (0-based) of total. Callers pass the phase's
// span; the guard keeps the disabled path free of attr allocation.
func probeProgress(sp trace.Span, i, total int) {
	if !sp.Live() || (i+1)%probeProgressEvery != 0 {
		return
	}
	sp.Event("probe-progress", trace.Int("done", int64(i+1)), trace.Int("total", int64(total)))
}

// Global-connectivity sweeps. The frozen CSR graph is shared read-only by
// every worker; each worker owns a pooled network whose topology it builds
// once and re-arms per probe (one capacity copy instead of a rebuild). The
// running minimum is kept in an atomic and doubles as the early-exit limit
// for every in-flight max flow: a stale (too high) limit only costs extra
// augmentation, never correctness, because any flow value below the limit
// is exact. Probes are scheduled by the work stealer (steal.go), so one
// near-critical pair cannot strand the rest of a worker's static share.
//
// Cancellation: every worker polls ctx between probes and arms its pooled
// network so in-flight probes stop between augmenting-path iterations. The
// drivers join all workers before returning — cancellation never leaks a
// goroutine — and report ctx.Err() once the pool has drained.

// SweepHints carries prescreen guidance into a connectivity sweep. Hints
// change probe order and early-exit limits only — never the result: Upper
// must be the value of an actual edge cut of the graph (λ ≤ Upper by
// definition, so folding it into the λ running minimum is exact), and
// Critical merely schedules probes touching those nodes first so the
// shared minimum drops as early as possible.
type SweepHints struct {
	// Upper is a certified cut value (< 0 when absent). Only the λ sweep
	// folds it in; a vertex sweep uses it for nothing — an edge cut value
	// bounds κ too, but κ's sweep minimum must stay over attainable vertex
	// cuts, so it is scheduling-only there.
	Upper int
	// Critical lists node ids suspected to sit on the small side of a
	// near-minimum cut; probes involving them run first.
	Critical []int
}

// NoHints is the hint-free sweep configuration.
var NoHints = SweepHints{Upper: -1}

// atomicMin lowers a to v if v is smaller, returning the post-update value.
func atomicMin(a *atomic.Int64, v int) int {
	for {
		cur := a.Load()
		if int64(v) >= cur {
			return int(cur)
		}
		if a.CompareAndSwap(cur, int64(v)) {
			return v
		}
	}
}

// lambdaProbePlan fixes the shared-λ probe set: a deterministic greedy
// dominating set D with pivot d0 = D[0]. By Matula's observation, if
// λ(G) < δ(G) then each side of a minimum edge cut contains a node all of
// whose neighbors lie on that side (the side has ≤ λ < δ outgoing edges,
// too few for every member to reach across), so every dominating set
// intersects both sides and λ(G) = min(δ, min over d ∈ D∖{d0} of the
// d0-d min cut). That replaces the classic n−1 per-target λ probes with
// |D|−1 ≈ n/(δ+1) probes sharing one pivot.
func lambdaProbePlan(g *graph.Graph, hints SweepHints) (d0 int, targets []int) {
	dom := g.DominatingSet()
	d0, targets = dom[0], dom[1:]
	if len(hints.Critical) > 0 {
		targets = frontLoadCritical(targets, hints.Critical, g.Order())
	}
	return d0, targets
}

// frontLoadCritical stably reorders targets so members of critical come
// first. The relative order inside each class is preserved, keeping the
// sweep deterministic for a fixed hint set.
func frontLoadCritical(targets, critical []int, n int) []int {
	mark := make([]bool, n)
	for _, v := range critical {
		if v >= 0 && v < n {
			mark[v] = true
		}
	}
	out := make([]int, 0, len(targets))
	for _, t := range targets {
		if mark[t] {
			out = append(out, t)
		}
	}
	if len(out) == 0 || len(out) == len(targets) {
		return targets
	}
	for _, t := range targets {
		if !mark[t] {
			out = append(out, t)
		}
	}
	return out
}

// edgeConnectivitySweep computes λ(G) over the dominating-set probe plan,
// serially for workers == 1 and via the work stealer otherwise.
func edgeConnectivitySweep(ctx context.Context, g *graph.Graph, workers int, hints SweepHints) (int, error) {
	n := g.Order()
	if n < 2 {
		return 0, ctx.Err()
	}
	best, _ := g.MinDegree()
	if hints.Upper >= 0 && hints.Upper < best {
		best = hints.Upper
	}
	d0, targets := lambdaProbePlan(g, hints)
	if best == 0 || len(targets) == 0 {
		return best, ctx.Err()
	}
	workers = graph.ClampWorkers(workers, len(targets))
	if workers == 1 {
		nw := getNetwork(n)
		defer putNetwork(nw)
		nw.watch(ctx)
		nw.buildEdge(g, noEdge) // one topology for the whole sweep; rearm per probe
		for _, t := range targets {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			nw.rearm()
			if f := nw.maxflow(d0, t, best); f < best {
				best = f
				if best == 0 {
					break
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return best, nil
	}
	var shared atomic.Int64
	shared.Store(int64(best))
	runStealing(ctx, "flow.lambda.worker", len(targets), workers, func(w int, next func() (int, bool)) {
		nw := getNetwork(n)
		defer putNetwork(nw)
		nw.watch(ctx)
		built := false
		for {
			i, ok := next()
			if !ok {
				return
			}
			limit := int(shared.Load())
			if limit == 0 {
				return
			}
			if built {
				nw.rearm()
			} else {
				nw.buildEdge(g, noEdge)
				built = true
			}
			if f := nw.maxflow(d0, targets[i], limit); f < limit && ctx.Err() == nil {
				atomicMin(&shared, f)
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return int(shared.Load()), nil
}

// EdgeConnectivityHinted is EdgeConnectivityCtx with prescreen hints; see
// SweepHints for why hints cannot change the result.
func EdgeConnectivityHinted(ctx context.Context, g *graph.Graph, workers int, hints SweepHints) (int, error) {
	return edgeConnectivitySweep(ctx, g, workers, hints)
}

// EdgeConnectivityParallel is EdgeConnectivity with the min-cut probes
// fanned across `workers` goroutines (<= 1 falls back to the serial sweep;
// <= 0 means GOMAXPROCS).
func EdgeConnectivityParallel(g *graph.Graph, workers int) int {
	lambda, _ := EdgeConnectivityCtx(context.Background(), g, workers)
	return lambda
}

// vertexConnectivitySweep sweeps the Esfahanian–Hakimi probe pairs with a
// shared running minimum, serially for workers == 1 and via the work
// stealer otherwise. Callers have already dispatched the trivial cases
// (n < 2, disconnected, complete).
func vertexConnectivitySweep(ctx context.Context, g *graph.Graph, minDeg int, pairs []probePair, workers int, hints SweepHints) (int, error) {
	n := g.Order()
	if len(hints.Critical) > 0 {
		pairs = frontLoadCriticalPairs(pairs, hints.Critical, n)
	}
	if workers == 1 {
		best := minDeg // κ(G) <= δ(G)
		nw := getNetwork(2 * n)
		defer putNetwork(nw)
		nw.watch(ctx)
		nw.buildVertexBase(g, n+1, noEdge) // one topology; re-arm the terminal pair per probe
		for _, p := range pairs {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			nw.armVertexPair(p.s, p.t)
			if f := nw.maxflow(2*p.s+1, 2*p.t, best); f < best {
				best = f
			}
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return best, nil
	}
	var shared atomic.Int64
	shared.Store(int64(minDeg))
	runStealing(ctx, "flow.kappa.worker", len(pairs), workers, func(w int, next func() (int, bool)) {
		nw := getNetwork(2 * n)
		defer putNetwork(nw)
		nw.watch(ctx)
		built := false
		for {
			i, ok := next()
			if !ok {
				return
			}
			limit := int(shared.Load())
			if limit == 0 {
				return
			}
			if !built {
				nw.buildVertexBase(g, n+1, noEdge)
				built = true
			}
			p := pairs[i]
			nw.armVertexPair(p.s, p.t)
			if f := nw.maxflow(2*p.s+1, 2*p.t, limit); f < limit && ctx.Err() == nil {
				atomicMin(&shared, f)
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return int(shared.Load()), nil
}

// frontLoadCriticalPairs stably reorders probe pairs so pairs touching a
// critical node come first; see frontLoadCritical.
func frontLoadCriticalPairs(pairs []probePair, critical []int, n int) []probePair {
	mark := make([]bool, n)
	for _, v := range critical {
		if v >= 0 && v < n {
			mark[v] = true
		}
	}
	out := make([]probePair, 0, len(pairs))
	for _, p := range pairs {
		if mark[p.s] || mark[p.t] {
			out = append(out, p)
		}
	}
	if len(out) == 0 || len(out) == len(pairs) {
		return pairs
	}
	for _, p := range pairs {
		if !mark[p.s] && !mark[p.t] {
			out = append(out, p)
		}
	}
	return out
}

// VertexConnectivityHinted is VertexConnectivityCtx with prescreen hints
// (scheduling-only for κ; see SweepHints).
func VertexConnectivityHinted(ctx context.Context, g *graph.Graph, workers int, hints SweepHints) (int, error) {
	return vertexConnectivityCtx(ctx, g, workers, hints)
}

// VertexConnectivityParallel is VertexConnectivity (Esfahanian–Hakimi) with
// the per-pair vertex-cut probes fanned across `workers` goroutines.
func VertexConnectivityParallel(g *graph.Graph, workers int) int {
	kappa, _ := VertexConnectivityCtx(context.Background(), g, workers)
	return kappa
}

// canonicalIndices maps each edge to its index in the canonical g.Edges()
// enumeration (-1 when the edge is not in g), the key the masked-arena P3
// probes use to zero an edge's arc window without rebuilding.
func canonicalIndices(g *graph.Graph, edges []graph.Edge) []int32 {
	pos := make(map[graph.Edge]int32, g.Size())
	next := int32(0)
	g.EachEdge(func(u, v int) {
		pos[graph.Edge{U: u, V: v}] = next
		next++
	})
	idx := make([]int32, len(edges))
	for j, e := range edges {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		if p, ok := pos[e]; ok {
			idx[j] = p
		} else {
			idx[j] = -1
		}
	}
	return idx
}

// EdgesRemovableCtx runs the EdgeIsRemovable predicate over a batch of
// edges across `workers` goroutines under ctx and returns a parallel bool
// slice: out[i] reports whether edges[i] can be removed without lowering κ
// below kappa or λ below lambda. It is the fan-out primitive of the P3
// link-minimality sweep in internal/check.
//
// Each worker builds the unmasked edge and split-node arenas once and runs
// every probe as rearm + canonical-index mask + early-exit max flow — two
// capacity copies per edge instead of two topology rebuilds, which is where
// the P3 sweep spends its time on large instances. A canceled sweep drains
// its workers, then returns ctx.Err() and no slice.
func EdgesRemovableCtx(ctx context.Context, g *graph.Graph, edges []graph.Edge, kappa, lambda, workers int) ([]bool, error) {
	out := make([]bool, len(edges))
	if len(edges) == 0 {
		return out, ctx.Err()
	}
	idx := canonicalIndices(g, edges)
	n := g.Order()
	body := func(w int, next func() (int, bool)) {
		var eNet, vNet *network // built lazily: a starved worker never builds
		defer func() {
			if eNet != nil {
				putNetwork(eNet)
			}
			if vNet != nil {
				putNetwork(vNet)
			}
		}()
		for {
			i, ok := next()
			if !ok {
				return
			}
			e := edges[i]
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			if d := min(g.Degree(e.U), g.Degree(e.V)); d <= lambda || d <= kappa {
				// Degree shortcut (see EdgeIsRemovableCtx): an endpoint of
				// degree <= max(kappa, lambda) caps the corresponding probe
				// below its bar in G−e, so the verdict is false without a
				// flow. On near-regular instances with λ = δ this skips
				// almost every edge — the P3 sweep becomes a degree scan.
				continue
			}
			if idx[i] < 0 {
				// Not an edge of g: fall back to the per-probe masked build.
				if rem, err := EdgeIsRemovableCtx(ctx, g, e, kappa, lambda); err == nil {
					out[i] = rem
				}
				continue
			}
			ci := int(idx[i])
			if eNet == nil {
				eNet = getNetwork(n)
				eNet.watch(ctx)
				eNet.buildEdge(g, noEdge)
			}
			eNet.rearm()
			eNet.maskEdgeInEdgeNet(ci)
			if eNet.maxflow(e.U, e.V, lambda) < lambda {
				continue // λ(G−e) < λ: not removable; out[i] stays false
			}
			if vNet == nil {
				vNet = getNetwork(2 * n)
				vNet.watch(ctx)
				vNet.buildVertexBase(g, n+1, noEdge)
			}
			vNet.armVertexPair(e.U, e.V)
			vNet.maskEdgeInVertexNet(ci)
			out[i] = vNet.maxflow(2*e.U+1, 2*e.V, kappa) >= kappa
		}
	}
	workers = graph.ClampWorkers(workers, len(edges))
	if workers == 1 {
		i := 0
		body(0, func() (int, bool) {
			if ctx.Err() != nil || i >= len(edges) {
				return 0, false
			}
			i++
			return i - 1, true
		})
	} else {
		runStealing(ctx, "flow.minimality.worker", len(edges), workers, body)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// EdgesRemovable runs EdgeIsRemovable over a batch of edges across
// `workers` goroutines without cancellation. See EdgesRemovableCtx.
func EdgesRemovable(g *graph.Graph, edges []graph.Edge, kappa, lambda, workers int) []bool {
	out, _ := EdgesRemovableCtx(context.Background(), g, edges, kappa, lambda, workers)
	return out
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"lhg"
	"lhg/internal/obs"
)

// newReconfigServer is newTestServer that also exposes the *Server for
// whitebox session inspection.
func newReconfigServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestReconfigureSessionLifecycle(t *testing.T) {
	_, ts := newReconfigServer(t, Options{CacheSize: 16})

	// Create + first batch in one request: 4 joins onto K-TREE(14,3).
	var resp ReconfigureResponse
	status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"life","constraint":"ktree","n":14,"k":3,"joins":4}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("create: status = %d, want 200", status)
	}
	if resp.Epoch != 1 || resp.N != 18 || resp.K != 3 {
		t.Fatalf("create: epoch/n/k = %d/%d/%d, want 1/18/3", resp.Epoch, resp.N, resp.K)
	}
	if len(resp.Added) == 0 {
		t.Fatal("admitting 4 members must add edges")
	}
	if !resp.IsLHG || resp.Report == nil {
		t.Fatalf("K-TREE(18,3) must verify as an LHG: %+v", resp.Report)
	}

	// The incremental report must agree with a fresh full verification of
	// the same topology (the engine is deterministic per size).
	eng, err := lhg.NewKTreeGrowerAt(3, 18)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lhg.Verify(context.Background(), eng.Graph(), 3)
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Report
	if got.N != want.N || got.M != want.M ||
		got.NodeConnectivity != want.NodeConnectivity ||
		got.EdgeConnectivity != want.EdgeConnectivity ||
		got.LinkMinimal != want.LinkMinimal ||
		got.Diameter != want.Diameter ||
		got.LogDiameter != want.LogDiameter {
		t.Fatalf("delta report diverges from full verify:\n got %+v\nwant %+v", got, want)
	}

	// Pure read: no surgery, no epoch bump; the second identical read must
	// be served from the cache (the key pins the epoch).
	var read ReconfigureResponse
	postJSON(t, ts.URL+"/v1/reconfigure", `{"session":"life"}`, &read)
	if read.Epoch != 1 || read.N != 18 || len(read.Added) != 0 || len(read.Removed) != 0 {
		t.Fatalf("pure read mutated the session: %+v", read)
	}
	var readAgain ReconfigureResponse
	postJSON(t, ts.URL+"/v1/reconfigure", `{"session":"life"}`, &readAgain)
	if !readAgain.Cached {
		t.Fatal("second identical read at the same epoch must hit the cache")
	}

	// A batch pinned to the current epoch applies (client-side CAS); the
	// same batch retried with the now-stale pin answers 409 untouched.
	var pinned ReconfigureResponse
	status = postJSON(t, ts.URL+"/v1/reconfigure", `{"session":"life","joins":4,"epoch":1}`, &pinned)
	if status != http.StatusOK || pinned.Epoch != 2 || pinned.N != 22 {
		t.Fatalf("pinned batch: status/epoch/n = %d/%d/%d, want 200/2/22", status, pinned.Epoch, pinned.N)
	}
	var stale ErrorEnvelope
	if status = postJSON(t, ts.URL+"/v1/reconfigure", `{"session":"life","joins":4,"epoch":1}`, &stale); status != http.StatusConflict {
		t.Fatalf("stale pinned retry: status = %d, want 409", status)
	}
	var after ReconfigureResponse
	postJSON(t, ts.URL+"/v1/reconfigure", `{"session":"life"}`, &after)
	if after.Epoch != 2 || after.N != 22 {
		t.Fatalf("stale retry touched the session: epoch/n = %d/%d, want 2/22", after.Epoch, after.N)
	}

	// Departures by inverse surgery.
	var down ReconfigureResponse
	status = postJSON(t, ts.URL+"/v1/reconfigure", `{"session":"life","leaves":8}`, &down)
	if status != http.StatusOK {
		t.Fatalf("leaves: status = %d, want 200", status)
	}
	if down.Epoch != 3 || down.N != 14 {
		t.Fatalf("leaves: epoch/n = %d/%d, want 3/14", down.Epoch, down.N)
	}
	if len(down.Removed) == 0 {
		t.Fatal("removing 4 members must remove edges")
	}
	if !down.IsLHG {
		t.Fatalf("K-TREE(14,3) must still verify after departures: %+v", down.Report)
	}
}

func TestReconfigureNetZeroBatchIsIdentity(t *testing.T) {
	_, ts := newReconfigServer(t, Options{CacheSize: 16})
	postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"zero","constraint":"kdiamond","n":20,"k":3}`, nil)

	// The engine is deterministic per size, so 2 joins + 2 leaves nets to
	// the identical topology: an epoch bump with an empty delta.
	var resp ReconfigureResponse
	status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"zero","joins":2,"leaves":2}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if resp.Epoch != 1 || resp.N != 20 {
		t.Fatalf("epoch/n = %d/%d, want 1/20", resp.Epoch, resp.N)
	}
	if len(resp.Added) != 0 || len(resp.Removed) != 0 {
		t.Fatalf("net-zero batch issued surgery: +%d/-%d edges", len(resp.Added), len(resp.Removed))
	}
}

func TestReconfigureErrorMapping(t *testing.T) {
	_, ts := newReconfigServer(t, Options{CacheSize: 16})
	if status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"only","constraint":"ktree","n":14,"k":3}`, nil); status != http.StatusOK {
		t.Fatalf("seed session: status = %d, want 200", status)
	}

	cases := []struct {
		name, body string
		want       int
	}{
		{"missing session", `{"joins":1}`, http.StatusBadRequest},
		{"negative joins", `{"session":"only","joins":-1}`, http.StatusBadRequest},
		{"unknown constraint", `{"session":"x","constraint":"petersen","n":10,"k":3}`, http.StatusBadRequest},
		{"no churn engine", `{"session":"x","constraint":"harary","n":14,"k":3}`, http.StatusBadRequest},
		{"unknown session", `{"session":"ghost","joins":1}`, http.StatusNotFound},
		{"constraint mismatch", `{"session":"only","constraint":"kdiamond","joins":1}`, http.StatusConflict},
		{"k mismatch", `{"session":"only","k":4,"joins":1}`, http.StatusConflict},
		{"below floor", `{"session":"only","leaves":10}`, http.StatusUnprocessableEntity},
		{"not constructible", `{"session":"bad","constraint":"ktree","n":5,"k":3}`, http.StatusUnprocessableEntity},
		{"stale pinned epoch", `{"session":"only","joins":1,"epoch":7}`, http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e ErrorEnvelope
			if status := postJSON(t, ts.URL+"/v1/reconfigure", tc.body, &e); status != tc.want {
				t.Fatalf("status = %d, want %d (error %+v)", status, tc.want, e.Error)
			}
			if e.Error.Message == "" || e.Error.Code == "" {
				t.Fatal("error envelopes must carry a code and a message")
			}
		})
	}

	// A stillborn session (the failed n=5 create above) must not burn its
	// name: once.Do would otherwise pin the old error forever, so the
	// corrected retry proves the unmapping worked.
	var retry ReconfigureResponse
	if status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"bad","constraint":"ktree","n":14,"k":3}`, &retry); status != http.StatusOK || retry.N != 14 {
		t.Fatalf("retry after stillborn create: status = %d n = %d, want 200 at n=14", status, retry.N)
	}

	if resp, err := http.Get(ts.URL + "/v1/reconfigure"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET: status = %d, want 405", resp.StatusCode)
		}
	}
}

func TestReconfigureSessionLimit(t *testing.T) {
	_, ts := newReconfigServer(t, Options{CacheSize: 16, MaxSessions: 1})
	if status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"only","constraint":"ktree","n":14,"k":3}`, nil); status != http.StatusOK {
		t.Fatalf("first session: status = %d, want 200", status)
	}
	if status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"second","constraint":"ktree","n":14,"k":3}`, nil); status != http.StatusTooManyRequests {
		t.Fatalf("over-limit session: status = %d, want 429", status)
	}
	// The existing session is unaffected by the refusal.
	var resp ReconfigureResponse
	if status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"only","joins":4}`, &resp); status != http.StatusOK || resp.N != 18 {
		t.Fatalf("existing session after refusal: status = %d n = %d, want 200 at n=18", status, resp.N)
	}
}

func TestReconfigureSessionsDisabled(t *testing.T) {
	_, ts := newReconfigServer(t, Options{CacheSize: 16, MaxSessions: -1})
	status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"s","constraint":"ktree","n":14,"k":3}`, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 when sessions are disabled", status)
	}
}

func TestReconfigureEpochConflictWhitebox(t *testing.T) {
	srv, ts := newReconfigServer(t, Options{CacheSize: 16})
	postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"race","constraint":"ktree","n":14,"k":3}`, nil)

	srv.sessMu.Lock()
	sess := srv.sessions["race"]
	srv.sessMu.Unlock()
	if sess == nil {
		t.Fatal("session was not registered")
	}
	// A campaign pinned to a stale epoch must refuse to double-apply.
	_, err := sess.reconfigure(context.Background(),
		&ReconfigureRequest{Session: "race", Joins: 1}, 99)
	if !errors.Is(err, errEpochConflict) {
		t.Fatalf("stale-epoch campaign: err = %v, want errEpochConflict", err)
	}
	// The session is untouched and keeps working.
	var resp ReconfigureResponse
	if status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"race","joins":4}`, &resp); status != http.StatusOK {
		t.Fatalf("post-conflict batch: status = %d, want 200", status)
	}
	if resp.Epoch != 1 || resp.N != 18 {
		t.Fatalf("epoch/n = %d/%d, want 1/18", resp.Epoch, resp.N)
	}
}

func TestSessionsDiagnostics(t *testing.T) {
	srv, ts := newReconfigServer(t, Options{CacheSize: 16})
	postJSON(t, ts.URL+"/v1/reconfigure", `{"session":"bb","constraint":"ktree","n":14,"k":3}`, nil)
	postJSON(t, ts.URL+"/v1/reconfigure", `{"session":"aa","constraint":"kdiamond","n":20,"k":3}`, nil)
	got := srv.Sessions()
	if len(got) != 2 || got[0] != "aa" || got[1] != "bb" {
		t.Fatalf("Sessions() = %v, want [aa bb]", got)
	}
}

// TestReconfigureBurstRunsOneCampaign is the PR-6 acceptance check: 64
// concurrent identical reconfigure requests racing at the same epoch run
// exactly ONE campaign — one batch of surgery, one incremental
// re-verification, one epoch bump — and everyone shares its response.
//
// The flight key pins the epoch, so the race is only deterministic if all
// 64 requests read the epoch before the campaign commits. The test holds
// the campaign open by pre-claiming the flight as leader (whitebox) with a
// gated fn, attaching all HTTP clients as waiters, then releasing.
func TestReconfigureBurstRunsOneCampaign(t *testing.T) {
	srv, ts := newReconfigServer(t, Options{CacheSize: 16})
	if status := postJSON(t, ts.URL+"/v1/reconfigure",
		`{"session":"burst","constraint":"ktree","n":18,"k":3}`, nil); status != http.StatusOK {
		t.Fatalf("create session: status = %d", status)
	}
	srv.sessMu.Lock()
	sess := srv.sessions["burst"]
	srv.sessMu.Unlock()

	before := obs.Counters()

	const clients = 64
	key := fmt.Sprintf("reconfig|%s|epoch=%d|j=%d|l=%d", "burst", 0, 1, 0)
	release := make(chan struct{})
	var leaderErr error
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, leaderErr, _ = srv.flights.Do(context.Background(), key,
			func(runCtx context.Context) (any, error) {
				<-release
				return sess.reconfigure(runCtx, &ReconfigureRequest{Session: "burst", Joins: 1}, 0)
			})
	}()
	waitForWaiters(t, srv.flights, key, 1) // leader claimed the flight

	var wg sync.WaitGroup
	var okCount, cachedCount, epochSum atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp ReconfigureResponse
			if status := postJSON(t, ts.URL+"/v1/reconfigure",
				`{"session":"burst","joins":1}`, &resp); status == http.StatusOK {
				okCount.Add(1)
				epochSum.Add(int64(resp.Epoch))
				if resp.Cached {
					cachedCount.Add(1)
				}
			}
		}()
	}
	// Every client has read epoch 0 and attached to the held flight.
	waitForWaiters(t, srv.flights, key, clients+1)
	close(release)
	wg.Wait()
	<-leaderDone

	if leaderErr != nil {
		t.Fatalf("campaign failed: %v", leaderErr)
	}
	if ok := okCount.Load(); ok != clients {
		t.Fatalf("%d/%d requests succeeded", ok, clients)
	}
	if got := cachedCount.Load(); got != clients {
		t.Fatalf("%d requests coalesced, want all %d (the held flight is the leader)", got, clients)
	}
	if got := epochSum.Load(); got != clients {
		t.Fatalf("epoch sum = %d, want %d (every response reports epoch 1)", got, clients)
	}

	after := obs.Counters()
	if campaigns := after["check.delta.runs"] - before["check.delta.runs"]; campaigns != 1 {
		t.Fatalf("burst of %d identical reconfigures ran %d verification campaigns, want exactly 1", clients, campaigns)
	}
	if coalesced := after["serve.flight.coalesced"] - before["serve.flight.coalesced"]; coalesced != clients {
		t.Fatalf("coalesced = %d, want %d", coalesced, clients)
	}

	// Exactly one epoch bump, one admission.
	var read ReconfigureResponse
	postJSON(t, ts.URL+"/v1/reconfigure", `{"session":"burst"}`, &read)
	if read.Epoch != 1 || read.N != 19 {
		t.Fatalf("final epoch/n = %d/%d, want 1/19", read.Epoch, read.N)
	}
}

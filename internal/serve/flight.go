package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent computations that share a key: the first
// request becomes the leader and runs the function once; every identical
// request that arrives while it is in flight joins as a waiter and receives
// the same result. Unlike a plain singleflight, waiters are refcounted
// against the computation's own context — the work is cancelled only when
// EVERY joined request has gone away, so one impatient client cannot kill a
// campaign that 63 others are still waiting on.
type flightGroup struct {
	// base is the parent of every computation context: daemon shutdown
	// cancels in-flight work even when requests are still attached.
	base    context.Context
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	cancel  context.CancelFunc
	waiters int           // requests currently attached (leader included)
	done    chan struct{} // closed when the computation finishes
	val     any
	err     error
}

func newFlightGroup(base context.Context) *flightGroup {
	if base == nil {
		base = context.Background()
	}
	return &flightGroup{base: base, flights: make(map[string]*flight)}
}

// Do runs fn under key, coalescing with any identical in-flight call. The
// context handed to fn descends from the group's base context, NOT from ctx:
// it is cancelled when the daemon shuts down or when the last attached
// request abandons the flight, whichever comes first. ctx only governs how
// long this caller waits.
//
// The returned shared flag reports whether this call joined a flight started
// by an earlier request (the coalesced case).
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.waiters++
		g.mu.Unlock()
		v, e := g.wait(ctx, key, f)
		return v, e, true
	}
	runCtx, cancel := context.WithCancel(g.base)
	f := &flight{cancel: cancel, waiters: 1, done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		v, e := fn(runCtx)
		g.mu.Lock()
		f.val, f.err = v, e
		close(f.done)
		// Guarded delete: the key may already point at a newer flight if
		// every waiter abandoned this one before it finished.
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		cancel()
	}()
	v, e := g.wait(ctx, key, f)
	return v, e, false
}

// wait blocks until the flight completes or ctx is done. An abandoning
// caller detaches itself; the last one to leave an unfinished flight cancels
// the computation and unmaps the key so a later request starts fresh.
func (g *flightGroup) wait(ctx context.Context, key string, f *flight) (any, error) {
	select {
	case <-f.done:
		g.mu.Lock()
		f.waiters--
		g.mu.Unlock()
		return f.val, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			select {
			case <-f.done:
				// Finished in the meantime; the completion goroutine owns
				// the map cleanup.
			default:
				f.cancel()
				if g.flights[key] == f {
					delete(g.flights, key)
				}
			}
		}
		g.mu.Unlock()
		return nil, ctx.Err()
	}
}

package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestNormalizeCanonicalizes(t *testing.T) {
	d := EdgeDelta{
		Added:   []Edge{{U: 5, V: 2}, {U: 1, V: 3}, {U: 3, V: 1}, {U: 1, V: 2}},
		Removed: []Edge{{U: 9, V: 0}, {U: 0, V: 4}},
	}
	d.Normalize()
	wantAdd := []Edge{{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 5}}
	wantDel := []Edge{{U: 0, V: 4}, {U: 0, V: 9}}
	if !reflect.DeepEqual(d.Added, wantAdd) {
		t.Fatalf("Added = %v, want %v", d.Added, wantAdd)
	}
	if !reflect.DeepEqual(d.Removed, wantDel) {
		t.Fatalf("Removed = %v, want %v", d.Removed, wantDel)
	}
}

func TestNormalizeCancelsOpposites(t *testing.T) {
	d := EdgeDelta{
		Added:   []Edge{{U: 0, V: 1}, {U: 2, V: 3}},
		Removed: []Edge{{U: 1, V: 0}, {U: 4, V: 5}},
	}
	d.Normalize()
	if !reflect.DeepEqual(d.Added, []Edge{{U: 2, V: 3}}) {
		t.Fatalf("Added = %v, want the surviving edge only", d.Added)
	}
	if !reflect.DeepEqual(d.Removed, []Edge{{U: 4, V: 5}}) {
		t.Fatalf("Removed = %v, want the surviving edge only", d.Removed)
	}
}

func TestTouchedIsSortedUnion(t *testing.T) {
	d := EdgeDelta{
		Added:   []Edge{{U: 7, V: 2}},
		Removed: []Edge{{U: 2, V: 5}, {U: 0, V: 7}},
	}
	if got, want := d.Touched(), []int{0, 2, 5, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Touched = %v, want %v", got, want)
	}
}

// randomGraph returns a graph over n nodes where each pair is linked with
// probability p, using the caller's deterministic source.
func randomGraphP(rng *rand.Rand, n int, p float64) *Graph {
	var es []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				es = append(es, Edge{U: u, V: v})
			}
		}
	}
	return MustFromEdges(n, es)
}

// sameGraph compares two frozen graphs bit-for-bit (order, offsets, rows).
func sameGraph(a, b *Graph) bool {
	if a.Order() != b.Order() || a.Size() != b.Size() {
		return false
	}
	for v := 0; v < a.Order(); v++ {
		if !reflect.DeepEqual(a.Neighbors(v), b.Neighbors(v)) {
			return false
		}
	}
	return true
}

// TestApplyDeltaMatchesThaw: a random valid delta applied through the
// O(changed) row patcher must equal the same edits made through the full
// thaw/freeze round trip.
func TestApplyDeltaMatchesThaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(24)
		g := randomGraphP(rng, n, 0.3)
		var d EdgeDelta
		for _, e := range g.Edges() {
			if rng.Float64() < 0.25 {
				d.Removed = append(d.Removed, e)
			}
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !g.HasEdge(u, v) && rng.Float64() < 0.1 {
					d.Added = append(d.Added, Edge{U: u, V: v})
				}
			}
		}
		d.Normalize()
		got, err := g.ApplyDelta(d, n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := g.Thaw()
		for _, e := range d.Removed {
			want.RemoveEdge(e.U, e.V)
		}
		for _, e := range d.Added {
			want.MustAddEdge(e.U, e.V)
		}
		if !sameGraph(got, want.Freeze()) {
			t.Fatalf("trial %d: patched view differs from thaw/freeze", trial)
		}
	}
}

// TestApplyDeltaGrowsAndShrinks: node admissions wire fresh top labels,
// departures retire them once their links are torn down.
func TestApplyDeltaGrowsAndShrinks(t *testing.T) {
	g := MustFromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	grown, err := g.ApplyDelta(EdgeDelta{Added: []Edge{{U: 0, V: 3}, {U: 2, V: 3}}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Order() != 4 || !grown.HasEdge(0, 3) || !grown.HasEdge(2, 3) {
		t.Fatalf("grown view wrong: %v", grown.Edges())
	}
	back, err := grown.ApplyDelta(EdgeDelta{Removed: []Edge{{U: 0, V: 3}, {U: 2, V: 3}}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(back, g) {
		t.Fatalf("shrunk view differs from the original")
	}
}

func TestApplyDeltaRejectsInvalid(t *testing.T) {
	g := MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	cases := []struct {
		name string
		d    EdgeDelta
		n    int
	}{
		{"remove absent", EdgeDelta{Removed: []Edge{{U: 0, V: 2}}}, 4},
		{"add duplicate", EdgeDelta{Added: []Edge{{U: 0, V: 1}}}, 4},
		{"add out of range", EdgeDelta{Added: []Edge{{U: 0, V: 4}}}, 4},
		{"add self-loop", EdgeDelta{Added: []Edge{{U: 2, V: 2}}}, 4},
		{"remove out of range", EdgeDelta{Removed: []Edge{{U: 0, V: 9}}}, 4},
		{"departed with live links", EdgeDelta{}, 3},
		{"negative n", EdgeDelta{}, -1},
	}
	for _, tc := range cases {
		if _, err := g.ApplyDelta(tc.d, tc.n); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestApplyDeltaEmptyIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraphP(rng, 20, 0.2)
	h, err := g.ApplyDelta(EdgeDelta{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, h) {
		t.Fatal("identity delta changed the graph")
	}
}

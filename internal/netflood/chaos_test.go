package netflood

import (
	"net"
	"sync"
	"testing"
	"time"

	"lhg/internal/core"
	"lhg/internal/faultnet"
	"lhg/internal/flood"
	"lhg/internal/graph"
	"lhg/internal/obs"
)

// chaosPlan is the standard hostile-link mix of the suite: a quarter of all
// frames lost, a tenth duplicated, a quarter delayed up to 2ms (which
// reorders them). Every decision is drawn from the cluster seed.
func chaosPlan(int, int) faultnet.Plan {
	return faultnet.Plan{
		Drop:     0.25,
		Dup:      0.10,
		Delay:    0.25,
		DelayMax: 2 * time.Millisecond,
	}
}

// chaosOpts is tuned for test wall-clock: fast retransmission, generous
// retries.
func chaosOpts(faults func(int, int) faultnet.Plan) Options {
	return Options{
		Reliable:       true,
		RetransmitBase: 10 * time.Millisecond,
		RetransmitMax:  80 * time.Millisecond,
		Faults:         faults,
		Seed:           7,
	}
}

// waitCounterAtLeast polls until the named counter reaches min — dropped
// frames trigger retransmissions on backoff timers, so the observable lags
// delivery convergence by a few ticks.
func waitCounterAtLeast(t *testing.T, name string, min int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if obs.Counters()[name] >= min {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter %s stuck at %d, want >= %d", name, obs.Counters()[name], min)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func aliveNodes(n int, crashed []int) []int {
	down := make(map[int]bool, len(crashed))
	for _, v := range crashed {
		down[v] = true
	}
	var out []int
	for v := 0; v < n; v++ {
		if !down[v] {
			out = append(out, v)
		}
	}
	return out
}

// TestChaosReliableDeliveryUnderLossAndCrashes is the paper's guarantee
// end-to-end: an LHG(16,4) cluster with k-1 = 3 adversarially chosen
// crashed nodes AND loss/duplication/reordering on every surviving link
// still delivers the broadcast to every correct node — and the retransmit
// path, not a quiet network, is what got it there.
func TestChaosReliableDeliveryUnderLossAndCrashes(t *testing.T) {
	kd, err := core.BuildKDiamond(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := kd.Real.Graph
	fails, err := flood.AdversarialNodeFailures(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	withSink(t)
	c, err := StartWithOptions(g, chaosOpts(chaosPlan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	for _, v := range fails.Nodes {
		if !c.CrashNode(v) {
			t.Fatalf("crash of %d failed", v)
		}
	}
	if _, err := c.Broadcast(0, "chaos"); err != nil {
		t.Fatal(err)
	}
	survivors := aliveNodes(16, fails.Nodes)
	if !c.WaitDelivered(survivors, 1, 30*time.Second) {
		for _, v := range survivors {
			if len(c.Delivered(v)) == 0 {
				t.Errorf("correct node %d never delivered", v)
			}
		}
		t.Fatal("delivery incomplete under f = k-1 chaos")
	}
	for _, v := range fails.Nodes {
		if len(c.Delivered(v)) != 0 {
			t.Fatalf("crashed node %d delivered", v)
		}
	}
	if obs.Counters()["faultnet.frames.dropped"] == 0 {
		t.Fatal("fault injection never dropped a frame — the chaos was not exercised")
	}
	waitCounterAtLeast(t, "netflood.frames.retransmitted", 1)
	waitCounterAtLeast(t, "netflood.acks.received", 1)
}

// TestChaosKFaultCutPreventsDelivery is the matching negative: at f = k the
// adversary owns a vertex cut, and the very nodes the simulator says are
// severed must stay silent at the socket layer — even with retransmission
// and reconnection trying their best.
func TestChaosKFaultCutPreventsDelivery(t *testing.T) {
	kd, err := core.BuildKDiamond(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := kd.Real.Graph
	fails, err := flood.AdversarialNodeFailures(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	unreached, err := flood.Unreached(g, 0, fails)
	if err != nil {
		t.Fatal(err)
	}
	if len(unreached) == 0 {
		t.Fatal("adversary failed to cut a 4-connected graph with 4 crashes")
	}
	reached := make([]int, 0, 16)
	severed := make(map[int]bool, len(unreached))
	for _, v := range unreached {
		severed[v] = true
	}
	for _, v := range aliveNodes(16, fails.Nodes) {
		if !severed[v] {
			reached = append(reached, v)
		}
	}

	c, err := StartWithOptions(g, chaosOpts(chaosPlan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	for _, v := range fails.Nodes {
		if !c.CrashNode(v) {
			t.Fatalf("crash of %d failed", v)
		}
	}
	if _, err := c.Broadcast(0, "cut"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitDelivered(reached, 1, 30*time.Second) {
		t.Fatal("nodes on the source side of the cut did not deliver")
	}
	// Give the severed side ample time to (wrongly) hear anything.
	time.Sleep(300 * time.Millisecond)
	for _, v := range unreached {
		if len(c.Delivered(v)) != 0 {
			t.Fatalf("node %d heard the broadcast across a k-node cut", v)
		}
	}
}

// TestChaosLinkFaultsOnlyReliableStillDelivers keeps every node up but
// makes the links hostile: background loss everywhere, one flapping link,
// and one fully asymmetric partition (every frame from 2 to 3 lost). On a
// 3-connected topology this is at most one effective link failure plus
// noise, so the reliable protocol must still reach everyone.
func TestChaosLinkFaultsOnlyReliableStillDelivers(t *testing.T) {
	kd, err := core.BuildKDiamond(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := kd.Real.Graph
	plan := func(from, to int) faultnet.Plan {
		switch {
		case from == 2 && to == 3:
			return faultnet.Plan{Drop: 1} // asymmetric partition
		case from == 0 && to == 1:
			return faultnet.Plan{ // flapping link
				Drop:       0.2,
				FlapPeriod: 40 * time.Millisecond,
				FlapDown:   8 * time.Millisecond,
			}
		default:
			return faultnet.Plan{Drop: 0.2, Delay: 0.2, DelayMax: time.Millisecond}
		}
	}
	withSink(t)
	c, err := StartWithOptions(g, chaosOpts(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Broadcast(0, "lossy"); err != nil {
		t.Fatal(err)
	}
	all := aliveNodes(12, nil)
	if !c.WaitDelivered(all, 1, 30*time.Second) {
		for _, v := range all {
			if len(c.Delivered(v)) == 0 {
				t.Errorf("node %d never delivered", v)
			}
		}
		t.Fatal("delivery incomplete under link faults alone")
	}
	waitCounterAtLeast(t, "netflood.frames.retransmitted", 1)
}

// TestChaosAdversarialLinkCutSeversCluster drives the simulator's minimum
// edge cut into the socket layer: disconnecting exactly those links must
// partition the TCP cluster precisely where the simulator says it does.
func TestChaosAdversarialLinkCutSeversCluster(t *testing.T) {
	kd, err := core.BuildKDiamond(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := kd.Real.Graph
	fails, err := flood.AdversarialLinkFailures(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails.Links) == 0 {
		t.Fatal("adversary returned no link cut at f = lambda")
	}
	unreached, err := flood.Unreached(g, 0, fails)
	if err != nil {
		t.Fatal(err)
	}
	if len(unreached) == 0 {
		t.Fatal("simulator says the min edge cut does not disconnect — cannot happen at f = lambda")
	}
	severed := make(map[int]bool, len(unreached))
	for _, v := range unreached {
		severed[v] = true
	}

	c, err := Start(g)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	for _, e := range fails.Links {
		if err := c.Disconnect(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Broadcast(0, "edge-cut"); err != nil {
		t.Fatal(err)
	}
	var reachable []int
	for v := 0; v < 12; v++ {
		if !severed[v] {
			reachable = append(reachable, v)
		}
	}
	if !c.WaitDelivered(reachable, 1, 10*time.Second) {
		t.Fatal("source side of the edge cut did not deliver")
	}
	time.Sleep(100 * time.Millisecond)
	for _, v := range unreached {
		if len(c.Delivered(v)) != 0 {
			t.Fatalf("node %d heard the broadcast across the simulator's min edge cut", v)
		}
	}
}

// TestConcurrentCrashBroadcastReconfigure hammers the cluster with
// broadcasts, crashes, link surgery and a final Shutdown all racing, in
// reliable mode with lossy links. The assertions are liveness and the race
// detector: no panic, no double-close, no deadlock.
func TestConcurrentCrashBroadcastReconfigure(t *testing.T) {
	kd, err := core.BuildKDiamond(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartWithOptions(kd.Real.Graph, chaosOpts(chaosPlan))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				_, _ = c.Broadcast((w*5+i)%16, "racing")
			}
		}(w)
	}
	for _, victim := range []int{3, 8} {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			c.CrashNode(v)
			c.CrashNode(v) // concurrent double crash must be safe
		}(victim)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			_ = c.Connect(1, 9)
			_ = c.Disconnect(1, 9)
		}
	}()
	wg.Wait()
	c.Shutdown()
	c.Shutdown() // idempotent after concurrent crashes
	if c.Alive(3) || c.Alive(8) {
		t.Fatal("crashed nodes report alive")
	}
}

// TestDeliveryOverflowCountsAndDrops pins the explicit overflow contract of
// the delivery stream: with a 1-slot channel and no consumer, every
// delivery past the first is counted and dropped, the flood never stalls,
// and the per-node logs stay complete.
func TestDeliveryOverflowCountsAndDrops(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	withSink(t)
	c, err := StartWithOptions(g, Options{DeliveryBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	const rounds = 5
	for i := 0; i < rounds; i++ {
		if _, err := c.Broadcast(0, "full"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if got := len(c.Delivered(i)); got != rounds {
			// Deliveries propagate asynchronously; wait for convergence.
			if !c.WaitDelivered([]int{0, 1, 2}, rounds, 10*time.Second) {
				t.Fatalf("node %d logged %d deliveries, want %d", i, got, rounds)
			}
		}
	}
	// 15 deliveries total, 1 buffered, 14 dropped.
	waitCounters(t, map[string]int64{
		"netflood.msgs.delivered": 15,
		"netflood.msgs.dropped":   14,
	})
}

// TestWriteFrameDeadline pins the per-frame write deadline: a link whose
// peer never reads must fail the write within the timeout (and count it)
// instead of blocking the flood forever.
func TestWriteFrameDeadline(t *testing.T) {
	withSink(t)
	// net.Pipe is fully synchronous: with nobody reading b, a write on a
	// can only finish by deadline.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	p := &peerConn{remote: 1, conn: a}
	start := time.Now()
	err := writeFrame(p, frame{Kind: "msg", Msg: &Message{Payload: "stuck"}}, 50*time.Millisecond)
	if err == nil {
		t.Fatal("write to a never-reading peer must time out")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("write deadline took %v to fire", took)
	}
	waitCounters(t, map[string]int64{"netflood.write.timeouts": 1})

	// The handshake-path variant shares the deadline behavior.
	if err := writeFrameTo(a, frame{Kind: "hello", From: 0}, 50*time.Millisecond); err == nil {
		t.Fatal("writeFrameTo must also time out")
	}
}

// TestConnectUnderLoadDoesNotSpin is the regression test for the old 200µs
// busy-poll handshake wait: many Connects racing with broadcast traffic
// must all complete via the registration signal, including reverse and
// duplicate dials.
func TestConnectUnderLoadDoesNotSpin(t *testing.T) {
	const n = 20
	c := StartEmptyWithOptions(Options{HandshakeTimeout: 10 * time.Second})
	defer c.Shutdown()
	for i := 0; i < n; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	// Ring first so broadcasts have somewhere to go while the chords land.
	for i := 0; i < n; i++ {
		if err := c.Connect(i, (i+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4*n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.Connect(i, (i+5)%n); err != nil {
				errs <- err
			}
			if err := c.Connect((i+5)%n, i); err != nil { // reverse is idempotent
				errs <- err
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := c.Broadcast(i%n, "load"); err != nil {
				errs <- err
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !c.WaitDelivered(aliveNodes(n, nil), 10, 20*time.Second) {
		t.Fatal("broadcasts during reconfiguration were lost")
	}
	// Connecting to a crashed node fails fast instead of burning the
	// handshake window.
	if !c.CrashNode(7) {
		t.Fatal("crash failed")
	}
	start := time.Now()
	if err := c.Connect(2, 7); err == nil {
		t.Fatal("connect to a crashed node must error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("connect to a crashed node burned the full handshake window")
	}
}

// TestOptionsDefaults pins the configuration surface: zero values take the
// documented defaults, explicit values are preserved.
func TestOptionsDefaults(t *testing.T) {
	d := Options{}
	d.withDefaults()
	if d.HandshakeTimeout != 5*time.Second || d.WriteTimeout != 2*time.Second {
		t.Fatalf("default timeouts wrong: %+v", d)
	}
	if d.MaxRetries != 12 || d.MaxReconnects != 3 || d.Seed != 1 {
		t.Fatalf("default thresholds wrong: %+v", d)
	}
	custom := Options{HandshakeTimeout: time.Second, MaxRetries: 2}
	custom.withDefaults()
	if custom.HandshakeTimeout != time.Second || custom.MaxRetries != 2 {
		t.Fatalf("explicit options overwritten: %+v", custom)
	}
}

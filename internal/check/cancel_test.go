package check

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"lhg/internal/graph"
)

func bipartite(a, b int) *graph.Graph {
	bld := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bld.MustAddEdge(u, v)
		}
	}
	return bld.Freeze()
}

// TestVerifyCtxCancelsPromptly: a full verification campaign on a dense
// graph takes seconds; cancellation must surface within the 100ms
// regression bound, with the serial and the parallel driver alike.
func TestVerifyCtxCancelsPromptly(t *testing.T) {
	g := bipartite(110, 110)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		canceledAt := make(chan time.Time, 1)
		go func() {
			time.Sleep(30 * time.Millisecond)
			canceledAt <- time.Now()
			cancel()
		}()
		_, err := VerifyCtx(ctx, g, 3, Options{Workers: workers})
		overstay := time.Since(<-canceledAt)
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: campaign finished before the cancel signal; grow the fixture", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if overstay > 100*time.Millisecond {
			t.Fatalf("workers=%d: VerifyCtx returned %v after cancellation, want <= 100ms", workers, overstay)
		}
	}
}

func TestVerifyCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := VerifyCtx(ctx, complete(8), 3, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("VerifyCtx: err = %v, want context.Canceled", err)
	}
	if _, err := QuickVerifyCtx(ctx, complete(8), 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("QuickVerifyCtx: err = %v, want context.Canceled", err)
	}
}

// TestVerifyCtxCorrectAfterCancellation: a canceled campaign must not
// poison the pooled networks or scratch state used by the next one.
func TestVerifyCtxCorrectAfterCancellation(t *testing.T) {
	big := bipartite(90, 90)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := VerifyCtx(ctx, big, 3, Options{Workers: 4}); err == nil {
		t.Fatal("campaign finished before the cancel signal; grow the fixture")
	}
	cancel()

	clean, err := Verify(complete(6), 5)
	if err != nil {
		t.Fatal(err)
	}
	after, err := VerifyCtx(context.Background(), complete(6), 5, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	clean.Phases, after.Phases = nil, nil
	clean.Workers, after.Workers = 0, 0
	if !reflect.DeepEqual(clean, after) {
		t.Fatalf("post-cancellation report diverged:\nserial: %+v\nafter cancel: %+v", clean, after)
	}
}

// TestVerifyCtxPropertySelection: unrequested properties stay at their zero
// values and Checked records exactly what ran.
func TestVerifyCtxPropertySelection(t *testing.T) {
	g := complete(6)
	r, err := VerifyCtx(context.Background(), g, 5, Options{Props: PropNodeConnectivity})
	if err != nil {
		t.Fatal(err)
	}
	if r.Checked != PropNodeConnectivity {
		t.Fatalf("Checked = %v, want %v", r.Checked, PropNodeConnectivity)
	}
	if !r.KNodeConnected || r.NodeConnectivity != 5 {
		t.Fatalf("P1 on K_6: κ = %d, connected %t", r.NodeConnectivity, r.KNodeConnected)
	}
	if r.EdgeConnectivity != 0 || r.KLinkConnected || r.LinkMinimal || r.LogDiameter {
		t.Fatalf("unchecked properties must stay zero: %+v", r)
	}

	// P3 pulls in P1 and P2: minimality is meaningless without the exact
	// connectivities to compare against.
	r3, err := VerifyCtx(context.Background(), g, 5, Options{Props: PropLinkMinimality})
	if err != nil {
		t.Fatal(err)
	}
	want := PropNodeConnectivity | PropLinkConnectivity | PropLinkMinimality
	if r3.Checked != want {
		t.Fatalf("Checked = %v, want %v (P3 implies P1|P2)", r3.Checked, want)
	}
}

// Self-healing membership: the full systems story in one run. A membership
// service floods its own view changes over the LHG it maintains; k-1
// members crash and stay wired in (the degradation window); application
// broadcasts keep reaching every survivor; one repair view change removes
// the dead members; and the rebuilt topology passes full LHG verification.
//
//	go run ./examples/self-healing
package main

import (
	"context"
	"fmt"
	"log"

	"lhg"
)

func main() {
	const (
		k     = 4
		start = 20
	)
	s, err := lhg.NewMembership(lhg.KDiamond, k, start)
	if err != nil {
		log.Fatal(err)
	}
	status := func(event string) {
		res, err := s.Broadcast()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s members=%d view=v%d coverage=%d/%d consistent=%t\n",
			event, s.Size(), s.CurrentView().Version, res.Reached, res.Alive, s.ConsistentViews())
		if !res.Complete {
			log.Fatalf("lost survivors after %q", event)
		}
	}

	status("start")

	// Growth phase.
	for i := 0; i < 4; i++ {
		if _, err := s.ProposeJoin(); err != nil {
			log.Fatal(err)
		}
	}
	status("after 4 joins")

	// Disaster: k-1 simultaneous crashes.
	if err := s.Crash(2, 8, 17); err != nil {
		log.Fatal(err)
	}
	status("after 3 crashes (f=k-1)")

	// Repair.
	rep, err := s.Repair()
	if err != nil {
		log.Fatal(err)
	}
	status(fmt.Sprintf("after repair (churn=%d)", rep.Churn.Total()))

	// Prove the repaired overlay is a full LHG again.
	report, err := lhg.Verify(context.Background(), s.Graph(), k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepaired topology: %v\n", report)
	if !report.IsLHG() {
		log.Fatal("repair produced a non-LHG topology")
	}
	fmt.Println("the service survived the worst tolerable failure and restored full fault tolerance")
}

// Package store is the persistent content-addressed report store behind the
// serve layer: verification reports, budget analyses and flood results keyed
// by the SHA-256 of their canonical request key, written atomically
// (temp+rename) under one data directory. Several daemon processes may share
// a directory — that is the point: a campaign computed by any backend is
// visible to the whole fleet, survives restarts, and the lease protocol in
// lease.go extends the in-process singleflight guarantee across processes.
//
// Layout: every entry is one file <hex(sha256(key))>.json holding an
// envelope {key, kind, value}; in-flight leader claims are side files
// <hash>.lease. The envelope repeats the key so the directory is
// self-describing (and a hash collision, however unlikely, is detected
// rather than silently served).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"lhg/internal/obs"
)

var (
	mHits   = obs.NewCounter("store.hits")
	mMisses = obs.NewCounter("store.misses")
	mWrites = obs.NewCounter("store.writes")
	mErrors = obs.NewCounter("store.errors")
)

// Envelope is the on-disk frame around one stored value.
type Envelope struct {
	// Key is the canonical request key the content hash was derived from.
	Key string `json:"key"`
	// Kind names the value's type ("verify", "budget", "flood") for
	// directory archaeology; Get does not interpret it.
	Kind string `json:"kind"`
	// Value is the stored result, verbatim.
	Value json.RawMessage `json:"value"`
}

// Store is one process's handle on a (possibly shared) data directory. The
// in-memory index caches which content hashes are known present so repeat
// hits skip the not-exist syscall churn; an index miss still reads through
// to disk, because another process may have written the entry after Open.
type Store struct {
	dir string

	mu    sync.Mutex
	index map[string]struct{} // content hashes known to exist on disk
}

// Key hashes a canonical request key to its content address.
func Key(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Open creates dir if needed and scans it into the index.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, index: make(map[string]struct{})}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		s.index[strings.TrimSuffix(name, ".json")] = struct{}{}
	}
	return s, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Len reports the number of entries the index knows about.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash+".json")
}

// Get returns the stored value for key. A miss is not an error; a present
// but unreadable or key-mismatched entry is (and counts as store.errors).
func (s *Store) Get(key string) (json.RawMessage, bool, error) {
	hash := Key(key)
	data, err := os.ReadFile(s.path(hash))
	if err != nil {
		if os.IsNotExist(err) {
			mMisses.Inc()
			return nil, false, nil
		}
		mErrors.Inc()
		return nil, false, fmt.Errorf("store: read %s: %w", hash, err)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		mErrors.Inc()
		return nil, false, fmt.Errorf("store: corrupt entry %s: %w", hash, err)
	}
	if env.Key != key {
		mErrors.Inc()
		return nil, false, fmt.Errorf("store: entry %s holds key %q, want %q", hash, env.Key, key)
	}
	s.mu.Lock()
	s.index[hash] = struct{}{}
	s.mu.Unlock()
	mHits.Inc()
	return env.Value, true, nil
}

// Put stores value under key atomically: the envelope is written to a
// private temp file in the same directory and renamed into place, so a
// concurrent reader (or a crash) sees either the whole entry or none of it.
func (s *Store) Put(key, kind string, value json.RawMessage) error {
	hash := Key(key)
	data, err := json.Marshal(Envelope{Key: key, Kind: kind, Value: value})
	if err != nil {
		mErrors.Inc()
		return fmt.Errorf("store: encode %s: %w", hash, err)
	}
	tmp, err := os.CreateTemp(s.dir, hash+".tmp-*")
	if err != nil {
		mErrors.Inc()
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		mErrors.Inc()
		return fmt.Errorf("store: write %s: %w", hash, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		mErrors.Inc()
		return fmt.Errorf("store: close %s: %w", hash, err)
	}
	if err := os.Rename(tmpName, s.path(hash)); err != nil {
		os.Remove(tmpName)
		mErrors.Inc()
		return fmt.Errorf("store: publish %s: %w", hash, err)
	}
	s.mu.Lock()
	s.index[hash] = struct{}{}
	s.mu.Unlock()
	mWrites.Inc()
	return nil
}

// Contains reports whether the index knows key without touching disk.
func (s *Store) Contains(key string) bool {
	hash := Key(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[hash]
	return ok
}

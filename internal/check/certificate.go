package check

import (
	"fmt"

	"lhg/internal/flow"
	"lhg/internal/graph"
)

// Certificate is a machine-checkable proof of a graph's exact node
// connectivity κ: a family of κ internally vertex-disjoint paths for a
// witness pair (no node cut smaller than κ can separate them — and the
// pair is chosen so this lower-bounds the graph's connectivity), plus an
// actual vertex cut of size κ (no connectivity above κ). Validate re-checks
// both halves from scratch, so a verifier needs no max-flow code — only
// path checking and a BFS.
type Certificate struct {
	K int // the certified connectivity value

	// Lower bound: PathFamilies[i] is a set of K internally vertex-disjoint
	// paths between a pair of nodes. One family per sampled pair; the
	// sampled pairs cover the Esfahanian–Hakimi witness set, so together
	// they certify κ >= K.
	PathFamilies [][][]int

	// Upper bound: removing Cut disconnects the graph, so κ <= len(Cut).
	// Empty when the graph is complete (no cut exists; κ = n-1).
	Cut []int
}

// Certify produces a connectivity certificate for g. It is more expensive
// than VertexConnectivity (it extracts paths, not just values).
func Certify(g *graph.Graph) (*Certificate, error) {
	if n := g.Order(); n < 2 {
		return nil, fmt.Errorf("check: cannot certify a graph with %d nodes", n)
	}
	return certify(g, g)
}

// CertifySparse produces the same kind of certificate as Certify, but
// extracts κ and the disjoint path families from the Nagamochi–Ibaraki
// (δ+1)-certificate of g instead of g itself. κ(cert) = κ(G) exactly for
// that parameter (see graph.SparseCertificate), and every path of a
// spanning subgraph is a path of g, so the resulting Certificate
// validates against the ORIGINAL graph. Only the minimum cut is computed
// on the full graph: a vertex cut of the sparse view need not disconnect
// g, so the upper-bound half cannot be sparsified.
func CertifySparse(g *graph.Graph) (*Certificate, error) {
	if n := g.Order(); n < 2 {
		return nil, fmt.Errorf("check: cannot certify a graph with %d nodes", n)
	}
	minDeg, _ := g.MinDegree()
	return certify(g, graph.SparseCertificate(g, minDeg+1))
}

// certify extracts the lower-bound half (κ and the disjoint path
// families) from view — either g itself or a connectivity-preserving
// spanning subgraph of it — and the cut from g.
func certify(g, view *graph.Graph) (*Certificate, error) {
	n := g.Order()
	kappa := flow.VertexConnectivity(view)
	cert := &Certificate{K: kappa}
	if kappa == 0 {
		return cert, nil // disconnected: empty cut, no paths needed
	}
	minDeg, v := view.MinDegree()
	if minDeg == n-1 {
		// Complete graph: certify with the direct path families only.
		for t := 0; t < n && len(cert.PathFamilies) < 3; t++ {
			if t == v {
				continue
			}
			paths, err := flow.VertexDisjointPaths(view, v, t)
			if err != nil {
				return nil, err
			}
			cert.PathFamilies = append(cert.PathFamilies, paths[:kappa])
		}
		return cert, nil
	}

	// Lower bound: κ disjoint paths for every Esfahanian–Hakimi pair of
	// the view. By Menger each pair admits >= κ(view) = κ(g) of them.
	addPair := func(s, t int) error {
		paths, err := flow.VertexDisjointPaths(view, s, t)
		if err != nil {
			return err
		}
		if len(paths) < kappa {
			return fmt.Errorf("check: pair (%d,%d) admits only %d disjoint paths", s, t, len(paths))
		}
		cert.PathFamilies = append(cert.PathFamilies, paths[:kappa])
		return nil
	}
	isNbr := make([]bool, n)
	for _, w := range view.Neighbors(v) {
		isNbr[w] = true
	}
	for t := 0; t < n; t++ {
		if t == v || isNbr[t] {
			continue
		}
		if err := addPair(v, t); err != nil {
			return nil, err
		}
	}
	nbrs := view.Neighbors(v)
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if view.HasEdge(nbrs[i], nbrs[j]) {
				continue
			}
			if err := addPair(nbrs[i], nbrs[j]); err != nil {
				return nil, err
			}
		}
	}

	// Upper bound: a concrete minimum cut — always of the full graph.
	cut, err := minimumCut(g, kappa)
	if err != nil {
		return nil, err
	}
	cert.Cut = cut
	return cert, nil
}

// minimumCut finds an actual vertex cut of size kappa.
func minimumCut(g *graph.Graph, kappa int) ([]int, error) {
	n := g.Order()
	minDeg, v := g.MinDegree()
	_ = minDeg
	isNbr := make([]bool, n)
	for _, w := range g.Neighbors(v) {
		isNbr[w] = true
	}
	for t := 0; t < n; t++ {
		if t == v || isNbr[t] {
			continue
		}
		cut, err := flow.MinVertexCutSet(g, v, t)
		if err == nil && len(cut) == kappa {
			return cut, nil
		}
	}
	nbrs := g.Neighbors(v)
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) {
				continue
			}
			cut, err := flow.MinVertexCutSet(g, nbrs[i], nbrs[j])
			if err == nil && len(cut) == kappa {
				return cut, nil
			}
		}
	}
	return nil, fmt.Errorf("check: no cut of size %d found (connectivity mismatch)", kappa)
}

// Validate re-verifies the certificate against g from first principles:
// every path family consists of K valid, internally disjoint paths, and
// removing Cut disconnects g. It uses no flow machinery.
func (c *Certificate) Validate(g *graph.Graph) error {
	if c.K == 0 {
		if g.Connected() && g.Order() > 1 {
			return fmt.Errorf("check: certificate claims κ=0 for a connected graph")
		}
		return nil
	}
	if len(c.PathFamilies) == 0 {
		return fmt.Errorf("check: certificate has no path families")
	}
	for fi, family := range c.PathFamilies {
		if len(family) != c.K {
			return fmt.Errorf("check: family %d has %d paths, want %d", fi, len(family), c.K)
		}
		if err := validateFamily(g, family); err != nil {
			return fmt.Errorf("check: family %d: %w", fi, err)
		}
	}
	if len(c.Cut) > 0 {
		if len(c.Cut) != c.K {
			return fmt.Errorf("check: cut has %d nodes, want %d", len(c.Cut), c.K)
		}
		removed := make([]bool, g.Order())
		for _, v := range c.Cut {
			if v < 0 || v >= g.Order() {
				return fmt.Errorf("check: cut node %d out of range", v)
			}
			removed[v] = true
		}
		if g.ConnectedIgnoring(removed) {
			return fmt.Errorf("check: removing the cut does not disconnect the graph")
		}
	} else if minDeg, _ := g.MinDegree(); minDeg != g.Order()-1 {
		return fmt.Errorf("check: missing cut on a non-complete graph")
	}
	return nil
}

func validateFamily(g *graph.Graph, family [][]int) error {
	if len(family) == 0 {
		return fmt.Errorf("empty family")
	}
	s, t := family[0][0], family[0][len(family[0])-1]
	if s == t {
		return fmt.Errorf("degenerate pair")
	}
	used := make(map[int]bool)
	for pi, p := range family {
		if len(p) < 2 || p[0] != s || p[len(p)-1] != t {
			return fmt.Errorf("path %d endpoints", pi)
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				return fmt.Errorf("path %d uses missing edge (%d,%d)", pi, p[i], p[i+1])
			}
		}
		for _, v := range p[1 : len(p)-1] {
			if v == s || v == t {
				return fmt.Errorf("path %d revisits an endpoint", pi)
			}
			if used[v] {
				return fmt.Errorf("node %d shared between paths", v)
			}
			used[v] = true
		}
	}
	return nil
}

package check

import (
	"context"
	"reflect"
	"testing"

	"lhg/internal/core"
	"lhg/internal/graph"
)

// The scale screen's contract: ScreenRefuted always carries an exact
// witness, ScreenConfirmed only appears when a sufficient exact check ran
// (k ≤ 2 connectivity, cutpoints, 2·ecc within the diameter bound), and
// everything else stays ScreenScreened — honest "no counterexample found".

func screenPath(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.MustAddEdge(v, v+1)
	}
	return b.Freeze()
}

func screenCycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(v, (v+1)%n)
	}
	return b.Freeze()
}

func TestScreenValidInstanceScreens(t *testing.T) {
	// A true LHG fixture: plain Harary graphs have linear diameter and the
	// screen rightly refutes their P4, so use a k-regular K-TREE instance.
	gr, err := core.NewKTreeGrowerAt(3, 66)
	if err != nil {
		t.Fatal(err)
	}
	g := gr.Graph()
	r, err := Screen(g, 3, ScreenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("screen refuted a valid K-TREE: %s", r)
	}
	if !r.Regular || !r.Connected {
		t.Fatalf("linear facts wrong on K-TREE k=3 n=%d: %+v", g.Order(), r)
	}
	// k = 3 > 2: no sufficient exact check exists, so passing verdicts
	// must be screened, never confirmed.
	if r.NodeConn != ScreenScreened || r.LinkConn != ScreenScreened {
		t.Fatalf("κ/λ verdicts %s/%s, want screened/screened", r.NodeConn, r.LinkConn)
	}
	if r.CutUpper != 3 {
		t.Fatalf("certified cut upper %d, want δ = 3 (λ = δ on K-TREE)", r.CutUpper)
	}
	if r.PairProbes == 0 {
		t.Fatal("confirm phase ran no pair probes")
	}
	want := []string{"linear", "prescreen", "confirm"}
	var got []string
	for _, p := range r.Phases {
		got = append(got, p.Phase)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("phases %v, want %v", got, want)
	}
}

func TestScreenExactVerdictsSmallK(t *testing.T) {
	// k == 1 on a connected graph: one BFS is a sufficient exact check.
	if r, err := Screen(screenPath(8), 1, ScreenOptions{}); err != nil {
		t.Fatal(err)
	} else if r.NodeConn != ScreenConfirmed || r.LinkConn != ScreenConfirmed {
		t.Fatalf("path at k=1: %s/%s, want confirmed/confirmed", r.NodeConn, r.LinkConn)
	}

	// k == 2 on a cycle: the cutpoint DFS confirms 2-connectivity exactly.
	if r, err := Screen(screenCycle(12), 2, ScreenOptions{}); err != nil {
		t.Fatal(err)
	} else if r.NodeConn != ScreenConfirmed || r.LinkConn != ScreenConfirmed {
		t.Fatalf("cycle at k=2: %s/%s, want confirmed/confirmed", r.NodeConn, r.LinkConn)
	}

	// k == 2 on a path: articulation points and bridges refute exactly.
	r, err := Screen(screenPath(8), 2, ScreenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeConn != ScreenRefuted || r.LinkConn != ScreenRefuted {
		t.Fatalf("path at k=2: %s/%s, want refuted/refuted", r.NodeConn, r.LinkConn)
	}
	if r.OK() {
		t.Fatal("OK() true on a refuted report")
	}
}

func TestScreenRefutesDisconnectedAndDegree(t *testing.T) {
	// Disconnected: both connectivity verdicts refuted, certified cut 0.
	b := graph.NewBuilder(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {4, 5}, {5, 6}, {6, 4}} {
		b.MustAddEdge(e[0], e[1])
	}
	r, err := Screen(b.Freeze(), 2, ScreenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeConn != ScreenRefuted || r.LinkConn != ScreenRefuted || r.Diameter != ScreenRefuted {
		t.Fatalf("disconnected: %s/%s/%s, want all refuted", r.NodeConn, r.LinkConn, r.Diameter)
	}
	if r.CutUpper != 0 {
		t.Fatalf("disconnected: certified cut upper %d, want 0", r.CutUpper)
	}

	// δ < k refutes both by the degree witness without any probe.
	if r, err := Screen(screenCycle(10), 3, ScreenOptions{}); err != nil {
		t.Fatal(err)
	} else if r.NodeConn != ScreenRefuted || r.LinkConn != ScreenRefuted {
		t.Fatalf("cycle at k=3: %s/%s, want refuted/refuted (δ = 2)", r.NodeConn, r.LinkConn)
	}
}

// TestScreenFindsBarbellCut pins the prescreen's reason to exist at scale:
// a graph whose trivial degree bound δ = 5 passes k but whose true cut is
// 2 must be refuted exactly by a certified contraction cut.
func TestScreenFindsBarbellCut(t *testing.T) {
	r, err := Screen(barbell(t), 4, ScreenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkConn != ScreenRefuted {
		t.Fatalf("barbell at k=4: λ verdict %s, want refuted (true cut 2 < 4)", r.LinkConn)
	}
	if r.CutUpper >= 4 {
		t.Fatalf("barbell: certified cut upper %d, want < 4", r.CutUpper)
	}
}

func TestScreenDeterministic(t *testing.T) {
	g := mustHarary(t, 64, 4)
	first, err := Screen(g, 4, ScreenOptions{SamplePairs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Screen(g, 4, ScreenOptions{SamplePairs: 8})
		if err != nil {
			t.Fatal(err)
		}
		if again.NodeConn != first.NodeConn || again.LinkConn != first.LinkConn ||
			again.Diameter != first.Diameter || again.CutUpper != first.CutUpper ||
			again.PairProbes != first.PairProbes {
			t.Fatalf("run %d diverged: %s vs %s", i, again, first)
		}
	}
}

func TestScreenRejectsBadArgs(t *testing.T) {
	g := screenCycle(6)
	if _, err := Screen(g, 0, ScreenOptions{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Screen(g, 6, ScreenOptions{}); err == nil {
		t.Fatal("k=n accepted")
	}
	if _, err := ScreenCtx(canceledCtx(), g, 2, ScreenOptions{}); err == nil {
		t.Fatal("canceled context accepted")
	}
}

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

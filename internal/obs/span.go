package obs

import (
	"sync/atomic"
	"time"
)

// Timer accumulates phase durations: how many times a phase ran and the
// total nanoseconds spent inside it. It is the recording half of Span.
type Timer struct {
	name  string
	count atomic.Int64
	ns    atomic.Int64
}

// Start opens a span on the timer. When the sink is disabled the returned
// span is inert and End is free, so timed phases cost nothing in the
// default configuration. Span is a value type: no allocation either way.
func (t *Timer) Start() Span {
	if !enabled.Load() {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// Observe records one externally measured duration.
func (t *Timer) Observe(d time.Duration) {
	if !enabled.Load() {
		return
	}
	t.count.Add(1)
	t.ns.Add(int64(d))
}

// Count returns the number of completed spans/observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }

// Name returns the registered metric name.
func (t *Timer) Name() string { return t.name }

// Span is one in-flight timed phase, produced by Timer.Start. The zero
// Span (from a disabled sink) is valid and End on it is a no-op.
type Span struct {
	t     *Timer
	start time.Time
}

// End closes the span, adding its wall time to the timer, and returns the
// measured duration (0 for an inert span).
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := time.Since(s.start)
	s.t.count.Add(1)
	s.t.ns.Add(int64(d))
	return d
}

package sim

import (
	"testing"
	"time"
)

// TestJitterBounds pins the ±frac envelope: every draw lands in
// [d·(1−frac), d·(1+frac)], and over many draws both halves of the interval
// are actually visited (the scaling is not silently one-sided).
func TestJitterBounds(t *testing.T) {
	r := NewRNG(42)
	const d = 100 * time.Millisecond
	lo, hi := 75*time.Millisecond, 125*time.Millisecond
	below, above := false, false
	for i := 0; i < 10_000; i++ {
		j := r.Jitter(d, 0.25)
		if j < lo || j > hi {
			t.Fatalf("draw %d: Jitter(%v, 0.25) = %v outside [%v, %v]", i, d, j, lo, hi)
		}
		if j < d {
			below = true
		}
		if j > d {
			above = true
		}
	}
	if !below || !above {
		t.Fatalf("jitter never crossed the midpoint (below=%t above=%t)", below, above)
	}
}

// TestJitterDeterminism pins reproducibility: two generators with the same
// seed produce the same jitter sequence, and a different seed diverges.
func TestJitterDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	other := NewRNG(8)
	diverged := false
	for i := 0; i < 1000; i++ {
		x := a.Jitter(time.Second, 0.25)
		if y := b.Jitter(time.Second, 0.25); x != y {
			t.Fatalf("draw %d: same seed disagrees (%v vs %v)", i, x, y)
		}
		if x != other.Jitter(time.Second, 0.25) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

// TestJitterDegenerateInputs pins the pass-through contract: non-positive
// durations and non-positive fractions return d unchanged and consume no
// randomness (so a disabled jitter cannot skew a seeded run).
func TestJitterDegenerateInputs(t *testing.T) {
	r := NewRNG(1)
	before := r.state
	for _, d := range []time.Duration{0, -time.Second} {
		if got := r.Jitter(d, 0.25); got != d {
			t.Fatalf("Jitter(%v, 0.25) = %v, want unchanged", d, got)
		}
	}
	for _, frac := range []float64{0, -0.5} {
		if got := r.Jitter(time.Second, frac); got != time.Second {
			t.Fatalf("Jitter(1s, %g) = %v, want unchanged", frac, got)
		}
	}
	if r.state != before {
		t.Fatal("degenerate jitter consumed randomness")
	}
}

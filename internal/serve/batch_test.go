package serve

import (
	"fmt"
	"testing"

	"lhg/internal/obs"
)

func TestBatchArrayForm(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 64})
	var resp BatchResponse
	body := `[{"constraint":"ktree","n":14,"k":3},{"constraint":"ktree","n":21,"k":3}]`
	if status := postJSON(t, ts.URL+"/v1/verify?batch", body, &resp); status != 200 {
		t.Fatalf("status %d", status)
	}
	if resp.Total != 2 || resp.Failed != 0 || len(resp.Items) != 2 {
		t.Fatalf("total/failed/items = %d/%d/%d, want 2/0/2", resp.Total, resp.Failed, len(resp.Items))
	}
	for i, item := range resp.Items {
		if item.Response == nil || item.Error != nil {
			t.Fatalf("item %d: %+v", i, item)
		}
		if !item.Response.IsLHG {
			t.Fatalf("item %d: ktree must verify as an LHG", i)
		}
	}
	// Items come back in request order.
	if resp.Items[0].Response.N != 14 || resp.Items[1].Response.N != 21 {
		t.Fatalf("item order lost: %d, %d", resp.Items[0].Response.N, resp.Items[1].Response.N)
	}
	if resp.TraceID == "" {
		t.Fatal("batch must report its shared trace root")
	}
}

func TestBatchSweepExpansion(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 64})
	var resp BatchResponse
	body := `{"constraint":"ktree","n":[14,21,28],"k":[3],"properties":["P1"]}`
	if status := postJSON(t, ts.URL+"/v1/verify?batch", body, &resp); status != 200 {
		t.Fatalf("status %d", status)
	}
	if resp.Total != 3 || resp.Failed != 0 {
		t.Fatalf("total/failed = %d/%d, want 3/0", resp.Total, resp.Failed)
	}
	seen := map[int]bool{}
	for _, item := range resp.Items {
		if item.Response == nil {
			t.Fatalf("item failed: %+v", item.Error)
		}
		seen[item.Response.N] = true
	}
	for _, n := range []int{14, 21, 28} {
		if !seen[n] {
			t.Fatalf("sweep missing n=%d", n)
		}
	}
}

// TestBatchPartialFailure pins per-item isolation: one impossible item
// yields its own envelope, its siblings complete, and the batch still
// answers 200.
func TestBatchPartialFailure(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 64})
	var resp BatchResponse
	body := `[{"constraint":"ktree","n":14,"k":3},{"constraint":"ktree","n":5,"k":3},{"constraint":"bogus","n":10,"k":3}]`
	if status := postJSON(t, ts.URL+"/v1/verify?batch", body, &resp); status != 200 {
		t.Fatalf("status %d", status)
	}
	if resp.Failed != 2 {
		t.Fatalf("failed = %d, want 2", resp.Failed)
	}
	if resp.Items[0].Response == nil || !resp.Items[0].Response.IsLHG {
		t.Fatalf("good item dragged down: %+v", resp.Items[0])
	}
	if resp.Items[1].Error == nil || resp.Items[1].Error.Code != CodeNotConstructible {
		t.Fatalf("impossible item: %+v", resp.Items[1].Error)
	}
	if resp.Items[2].Error == nil || resp.Items[2].Error.Code != CodeBadRequest {
		t.Fatalf("bogus item: %+v", resp.Items[2].Error)
	}
}

// TestBatchCoalescesIdenticalItems is the batch-side singleflight pin: a
// sweep that names the same key many times runs ONE campaign; duplicates
// coalesce or hit the fill.
func TestBatchCoalescesIdenticalItems(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 64})
	if status := postJSON(t, ts.URL+"/v1/build", `{"constraint":"kdiamond","n":80,"k":4}`, nil); status != 200 {
		t.Fatalf("warm build: %d", status)
	}
	items := ""
	for i := 0; i < 16; i++ {
		if i > 0 {
			items += ","
		}
		items += `{"constraint":"kdiamond","n":80,"k":4,"properties":["P1"]}`
	}
	before := obs.Counters()["check.verify.runs"]
	var resp BatchResponse
	if status := postJSON(t, ts.URL+"/v1/verify?batch", "["+items+"]", &resp); status != 200 {
		t.Fatalf("status %d", status)
	}
	if resp.Failed != 0 || resp.Total != 16 {
		t.Fatalf("total/failed = %d/%d, want 16/0", resp.Total, resp.Failed)
	}
	if runs := obs.Counters()["check.verify.runs"] - before; runs != 1 {
		t.Fatalf("16 identical items ran %d campaigns, want 1", runs)
	}
	if resp.Cached != 15 {
		t.Fatalf("cached = %d, want 15 (one item paid)", resp.Cached)
	}
}

func TestBatchRejectsOversize(t *testing.T) {
	ts := newTestServer(t, Options{CacheSize: 4})
	ns := ""
	for i := 0; i < 70; i++ {
		if i > 0 {
			ns += ","
		}
		ns += fmt.Sprintf("%d", 14+7*i)
	}
	ks := "3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32,33,34,35,36,37,38,39,40,41,42,43,44,45,46,47,48,49,50,51,52,53,54,55,56,57,58,59,60,61,62"
	var env ErrorEnvelope
	body := fmt.Sprintf(`{"constraint":"ktree","n":[%s],"k":[%s]}`, ns, ks)
	if status := postJSON(t, ts.URL+"/v1/verify?batch", body, &env); status != 400 {
		t.Fatalf("70x60 sweep: status %d, want 400", status)
	}
	if env.Error.Code != CodeBadRequest {
		t.Fatalf("code %q", env.Error.Code)
	}
}

package netflood

import (
	"math"
	"time"

	"lhg/internal/faultnet"
)

// Options configures a cluster's transport and protocol behavior. The zero
// value is the original fail-stop cluster: best-effort forwarding, clean
// TCP, no acks. Every duration has a safe default, so callers set only what
// they need.
type Options struct {
	// HandshakeTimeout bounds Connect: the dial plus the wait for the
	// acceptor to process the hello. Default 5s.
	HandshakeTimeout time.Duration

	// WriteTimeout is the per-frame write deadline on every link. A write
	// that cannot complete in this window fails (and, in reliable mode, is
	// retried by the retransmit path). Default 2s.
	WriteTimeout time.Duration

	// DeliveryBuffer sizes the cluster-wide delivery channel. When the
	// channel is full, further deliveries are counted and dropped
	// (netflood.msgs.dropped) rather than stalling the flood; per-node
	// Delivered logs are unaffected. Default: 64 per starting node for
	// Start, 4096 for StartEmpty.
	DeliveryBuffer int

	// Reliable switches every link to the acked protocol: per-message
	// acks, retransmission with exponential backoff and jitter, peer
	// health via a missed-ack threshold, and automatic reconnection with
	// graceful degradation when a peer is declared dead.
	Reliable bool

	// RetransmitBase is the first retransmission delay; each further
	// attempt doubles it up to RetransmitMax, with ±25% jitter. Defaults
	// 15ms and 250ms; a RetransmitMax below RetransmitBase is raised to it.
	RetransmitBase time.Duration
	RetransmitMax  time.Duration

	// MaxRetries is the missed-ack threshold: after this many unacked
	// retransmissions of any message, the peer is suspected and the link
	// is redialed. Default 12.
	MaxRetries int

	// MaxReconnects bounds redials per peer; past it the peer is declared
	// dead, its link is torn down and its pending traffic abandoned — the
	// cluster degrades gracefully to the crash model. Default 3.
	MaxReconnects int

	// HopBudget, when positive, bounds how far a frame may be forwarded:
	// every broadcast starts with this budget, each forwarding hop
	// decrements it, and a copy arriving with no budget left is delivered
	// but not forwarded (netflood.hops.budget_exhausted). 0 disables the
	// bound (the pre-guard behavior). The ampguard analyzer derives the
	// value from the topology's disjoint path families.
	HopBudget int

	// RetryBudget, when positive, is the hard per-(link, message) cap on
	// retransmissions. Unlike MaxRetries — whose count resets when a
	// reconnection swaps the socket, so a flapping link can re-earn its
	// retry allowance indefinitely — RetryBudget survives reconnections:
	// once spent, the entry is abandoned and counted
	// (netflood.retransmit.budget_exhausted). This is the term that makes
	// the analyzer's 2m·(1+RetryBudget) frame ceiling sound. 0 disables.
	RetryBudget int

	// RetransmitRate, when positive, gates retransmissions per link behind
	// a token bucket refilling at this many tokens per second with
	// RetransmitBurst capacity: an overdue entry with no token available
	// is deferred and counted (netflood.retransmit.deferred) instead of
	// adding to a storm. RetransmitBurst defaults to MaxRetries when the
	// rate is set. 0 disables the gate.
	RetransmitRate  float64
	RetransmitBurst int

	// PathDiversity, when positive, is the topology's disjoint-path floor
	// (the analyzer's MinDiversity, ≥ k on the paper's constructions). A
	// suspected peer is then only redialed when fewer than PathDiversity−1
	// healthy alternative links remain; with enough diversity the node
	// degrades — it keeps retransmitting at the gated rate instead of
	// hammering the lossy link with reconnections
	// (netflood.repair.deferred). 0 disables the gate.
	PathDiversity int

	// Faults, when non-nil, supplies a faultnet.Plan per directed link
	// (from, to): writes from node `from` on its link to node `to` pass
	// through the plan. Asymmetric partitions are plans that differ per
	// direction. Inactive plans leave the link clean.
	Faults func(from, to int) faultnet.Plan

	// Seed drives all fault injection and retransmission jitter. Default 1.
	Seed uint64
}

// withDefaults normalizes o in place: unset fields take the documented
// defaults, and negative or inconsistent values — which previously flowed
// unchecked into the backoff shift and the budget arithmetic — are clamped
// to their safe equivalents.
func (o *Options) withDefaults() {
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.RetransmitBase <= 0 {
		o.RetransmitBase = 15 * time.Millisecond
	}
	if o.RetransmitMax <= 0 {
		o.RetransmitMax = 250 * time.Millisecond
	}
	if o.RetransmitMax < o.RetransmitBase {
		o.RetransmitMax = o.RetransmitBase
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 12
	}
	if o.MaxReconnects <= 0 {
		o.MaxReconnects = 3
	}
	if o.HopBudget < 0 {
		o.HopBudget = 0
	}
	if o.RetryBudget < 0 {
		o.RetryBudget = 0
	}
	if o.RetransmitRate < 0 || math.IsNaN(o.RetransmitRate) || math.IsInf(o.RetransmitRate, 0) {
		o.RetransmitRate = 0
	}
	if o.RetransmitRate > 0 && o.RetransmitBurst <= 0 {
		o.RetransmitBurst = o.MaxRetries
	}
	if o.PathDiversity < 0 {
		o.PathDiversity = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

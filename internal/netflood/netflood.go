// Package netflood runs the flooding protocol over real TCP sockets on the
// loopback interface: one node per topology vertex, one connection per
// edge, length-prefixed JSON frames, duplicate suppression, and forwarding
// on every link — the deployment shape of the paper's protocol, in
// miniature. The cluster supports *live reconfiguration* (AddNode, Connect,
// Disconnect, Apply), so the incremental growers of package core can drive
// a real socket overlay one admission at a time.
//
// Two fault models are supported, selected by Options:
//
//   - The default is fail-stop: best-effort forwarding, every frame written
//     once, crashed nodes simply stop. This is the paper's crash model and
//     keeps the message complexity exactly 2m frames per broadcast.
//   - Options.Reliable layers an acked protocol over the same links:
//     per-message acks, retransmission with exponential backoff and jitter,
//     per-link write deadlines, peer health via a missed-ack threshold, and
//     automatic reconnection with graceful degradation when a peer stays
//     unreachable. Combined with Options.Faults (package faultnet), this is
//     the chaos harness that proves delivery under lossy, delaying,
//     duplicating, reordering and flapping links — not just clean crashes.
//
// The simulators (flood, proc) answer "what does the topology guarantee";
// this package demonstrates the same protocol working over the standard
// library's actual networking stack.
package netflood

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lhg/internal/core"
	"lhg/internal/faultnet"
	"lhg/internal/graph"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
	"lhg/internal/sim"
)

// Cluster telemetry. Frames are counted at the sender, deliveries and
// duplicates at the receiver; hops is the socket-level analog of the
// simulator's per-round delivery latency (each forward adds one hop).
// The reliable protocol and the fault-injection transport add their own
// events: retransmissions, acks (with an RTT histogram), write timeouts,
// delivery-channel overflow drops, reconnections, and peers declared dead.
var (
	mNetBroadcasts     = obs.NewCounter("netflood.broadcasts")
	mNetFramesSent     = obs.NewCounter("netflood.frames.sent")
	mNetDelivered      = obs.NewCounter("netflood.msgs.delivered")
	mNetDuplicates     = obs.NewCounter("netflood.msgs.duplicate")
	mNetDropped        = obs.NewCounter("netflood.msgs.dropped")
	mNetNodesAdded     = obs.NewCounter("netflood.nodes.added")
	mNetCrashes        = obs.NewCounter("netflood.nodes.crashed")
	mNetConnects       = obs.NewCounter("netflood.links.connected")
	mNetDisconnects    = obs.NewCounter("netflood.links.disconnected")
	mNetRetransmits    = obs.NewCounter("netflood.frames.retransmitted")
	mNetRetrDeferred   = obs.NewCounter("netflood.retransmit.deferred")
	mNetRetrBudgetX    = obs.NewCounter("netflood.retransmit.budget_exhausted")
	mNetRetrWakeups    = obs.NewCounter("netflood.retransmit.wakeups")
	mNetHopsExhausted  = obs.NewCounter("netflood.hops.budget_exhausted")
	mNetRepairDeferred = obs.NewCounter("netflood.repair.deferred")
	mNetAcksSent       = obs.NewCounter("netflood.acks.sent")
	mNetAcksRecv       = obs.NewCounter("netflood.acks.received")
	mNetWriteTOs       = obs.NewCounter("netflood.write.timeouts")
	mNetReconnects     = obs.NewCounter("netflood.links.reconnected")
	mNetPeersDead      = obs.NewCounter("netflood.peers.dead")
	hNetHops           = obs.NewHistogram("netflood.delivery.hops", 1, 2, 4, 8, 16, 32)
	hNetAckRTT         = obs.NewHistogram("netflood.ack.rtt_us",
		100, 500, 1_000, 5_000, 20_000, 100_000, 1_000_000)
)

// Message is one flooded payload. Hops counts the links the copy crossed
// before its first delivery at a node (0 at the source), the socket-level
// delivery-latency measure. Budget is the remaining hop allowance under
// Options.HopBudget: it decrements per forwarding hop, and a copy arriving
// with none left is delivered but travels no further.
type Message struct {
	Src     int    `json:"src"`
	Seq     int    `json:"seq"`
	Payload string `json:"payload"`
	Hops    int    `json:"hops,omitempty"`
	Budget  int    `json:"budget,omitempty"`
}

// frame is the wire envelope: a hello (link handshake identifying the
// dialing node), a flooded message, or — in reliable mode — an ack whose
// Msg carries only the (src, seq) identity being acknowledged.
type frame struct {
	Kind string   `json:"kind"` // "hello", "msg" or "ack"
	From int      `json:"from,omitempty"`
	Msg  *Message `json:"msg,omitempty"`
}

// id is the dedup key of a message.
type id struct {
	src, seq int
}

// maxFrame bounds a frame to keep a corrupted length prefix from
// allocating unbounded memory.
const maxFrame = 1 << 20

// node is one process: a TCP listener plus one registered connection per
// incident topology edge.
type node struct {
	idx      int
	c        *Cluster
	ln       net.Listener
	mu       sync.Mutex
	peers    map[int]*peerConn // remote node id -> connection
	changed  chan struct{}     // closed and replaced whenever peers gains an entry
	seen     map[id]Message
	order    []Message
	nextSeq  int
	delivery chan<- Message
	rng      *sim.RNG      // backoff jitter; touched only by the retransmit loop
	retrWake chan struct{} // nudges the retransmit loop when pending work appears

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// peerConn is one direction-owning endpoint of a link. conn may be swapped
// by reconnection; pending (reliable mode) survives the swap so in-flight
// messages ride over to the new socket.
type peerConn struct {
	remote   int
	mu       sync.Mutex // serializes frame writes and guards the fields below
	conn     net.Conn
	pending  map[id]*pendingEntry // reliable mode only; nil otherwise
	dead     bool
	rebuilds int // reconnection attempts consumed

	// Token-bucket admission state for retransmissions
	// (Options.RetransmitRate); tokensAt zero means the bucket has never
	// been filled.
	tokens   float64
	tokensAt time.Time
}

// pendingEntry tracks one unacked message on one link. attempts is the
// missed-ack window and resets when a reconnection swaps the socket; total
// is the lifetime retransmission spend and never resets — it is what
// Options.RetryBudget bounds.
type pendingEntry struct {
	msg       Message
	attempts  int
	total     int
	nextDue   time.Time
	firstSent time.Time
}

// Cluster is a set of nodes wired along a topology's edges.
type Cluster struct {
	opts       Options
	mu         sync.Mutex
	nodes      []*node
	deliveries chan Message
	wrapGen    atomic.Uint64
}

// Start launches one node per vertex of g on loopback TCP ports and dials
// every edge, with default options. The returned cluster must be Shutdown.
func Start(g *graph.Graph) (*Cluster, error) {
	return StartWithOptions(g, Options{})
}

// StartWithOptions is Start with explicit transport/protocol options.
func StartWithOptions(g *graph.Graph, opts Options) (*Cluster, error) {
	n := g.Order()
	if n == 0 {
		return nil, errors.New("netflood: empty topology")
	}
	opts.withDefaults()
	if opts.DeliveryBuffer <= 0 {
		// Deliveries across the whole cluster; sized generously so reader
		// goroutines never fall behind in tests.
		opts.DeliveryBuffer = 64 * n
	}
	c := &Cluster{opts: opts, deliveries: make(chan Message, opts.DeliveryBuffer)}
	for i := 0; i < n; i++ {
		if _, err := c.AddNode(); err != nil {
			c.Shutdown()
			return nil, err
		}
	}
	for _, e := range g.Edges() {
		if err := c.Connect(e.U, e.V); err != nil {
			c.Shutdown()
			return nil, err
		}
	}
	return c, nil
}

// StartEmpty creates a cluster with no nodes; grow it with AddNode,
// Connect and Apply.
func StartEmpty() *Cluster {
	return StartEmptyWithOptions(Options{})
}

// StartEmptyWithOptions is StartEmpty with explicit options.
func StartEmptyWithOptions(opts Options) *Cluster {
	opts.withDefaults()
	if opts.DeliveryBuffer <= 0 {
		opts.DeliveryBuffer = 4096
	}
	return &Cluster{opts: opts, deliveries: make(chan Message, opts.DeliveryBuffer)}
}

// Size returns the number of nodes (alive or crashed).
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// AddNode spawns a new process with its own listener and returns its id.
func (c *Cluster) AddNode() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, fmt.Errorf("netflood: listen: %w", err)
	}
	c.mu.Lock()
	idx := len(c.nodes)
	nd := &node{
		idx:      idx,
		c:        c,
		ln:       ln,
		peers:    make(map[int]*peerConn),
		changed:  make(chan struct{}),
		seen:     make(map[id]Message),
		delivery: c.deliveries,
		rng:      sim.NewRNG(c.opts.Seed ^ (uint64(idx+1) * 0x9e3779b97f4a7c15)),
		retrWake: make(chan struct{}, 1),
		closed:   make(chan struct{}),
	}
	c.nodes = append(c.nodes, nd)
	c.mu.Unlock()
	mNetNodesAdded.Inc()
	nd.wg.Add(1)
	go nd.acceptLoop()
	if c.opts.Reliable {
		nd.wg.Add(1)
		go nd.retransmitLoop()
	}
	return idx, nil
}

// Connect dials a link between two nodes. It is idempotent for an existing
// link and returns once the link is usable in both directions, which keeps
// reconfiguration deterministic. The wait is signalled, not polled, and is
// bounded by Options.HandshakeTimeout.
func (c *Cluster) Connect(u, v int) error {
	nu, nv, err := c.pair(u, v)
	if err != nil {
		return err
	}
	if !nu.alive() || !nv.alive() {
		return fmt.Errorf("netflood: link (%d,%d) touches a crashed node", u, v)
	}
	nu.mu.Lock()
	_, exists := nu.peers[v]
	nu.mu.Unlock()
	if exists {
		return nil
	}
	conn, err := net.DialTimeout("tcp", nv.ln.Addr().String(), c.opts.HandshakeTimeout)
	if err != nil {
		return fmt.Errorf("netflood: dial (%d,%d): %w", u, v, err)
	}
	// Handshake: tell the acceptor who is calling. The hello travels on the
	// raw conn — fault plans apply only after the link is established, so a
	// lossy plan cannot wedge link setup.
	if err := writeFrameTo(conn, frame{Kind: "hello", From: u}, c.opts.WriteTimeout); err != nil {
		conn.Close()
		return fmt.Errorf("netflood: hello (%d,%d): %w", u, v, err)
	}
	if nu.attach(v, conn, bufio.NewReader(conn)) == nil {
		conn.Close()
		return fmt.Errorf("netflood: node %d shut down during connect", u)
	}
	mNetConnects.Inc()
	// Wait until the acceptor has registered the reverse direction.
	timer := time.NewTimer(c.opts.HandshakeTimeout)
	defer timer.Stop()
	for {
		nv.mu.Lock()
		_, ready := nv.peers[u]
		ch := nv.changed
		nv.mu.Unlock()
		if ready {
			return nil
		}
		select {
		case <-ch:
		case <-nv.closed:
			return fmt.Errorf("netflood: node %d crashed during handshake (%d,%d)", v, u, v)
		case <-timer.C:
			return fmt.Errorf("netflood: handshake (%d,%d) timed out", u, v)
		}
	}
}

// Disconnect tears down the link between two nodes (no-op if absent).
func (c *Cluster) Disconnect(u, v int) error {
	nu, nv, err := c.pair(u, v)
	if err != nil {
		return err
	}
	// Tear down both directions unconditionally (|| would short-circuit
	// and leave the reverse registration behind).
	removedU := nu.unregister(v)
	removedV := nv.unregister(u)
	if removedU || removedV {
		mNetDisconnects.Inc()
	}
	return nil
}

// Apply executes an edge delta from an incremental grower against the live
// cluster: removed links are torn down, added links dialed. Node ids
// beyond the current size must have been created with AddNode first.
func (c *Cluster) Apply(delta core.EdgeDelta) error {
	for _, e := range delta.Removed {
		if err := c.Disconnect(e.U, e.V); err != nil {
			return err
		}
	}
	for _, e := range delta.Added {
		if err := c.Connect(e.U, e.V); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) pair(u, v int) (*node, *node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if u < 0 || v < 0 || u >= len(c.nodes) || v >= len(c.nodes) || u == v {
		return nil, nil, fmt.Errorf("netflood: bad link (%d,%d)", u, v)
	}
	return c.nodes[u], c.nodes[v], nil
}

// nodeAddr returns the listener address of node idx, for reconnection.
func (c *Cluster) nodeAddr(idx int) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx < 0 || idx >= len(c.nodes) {
		return "", false
	}
	return c.nodes[idx].ln.Addr().String(), true
}

// wrapConn applies the cluster's fault plan to writes from node `from` on
// its link to node `to`. Each wrap gets its own derived RNG stream so a
// chaos run is reproducible from Options.Seed, while reconnections do not
// replay the exact drop pattern of the socket they replaced.
func (c *Cluster) wrapConn(from, to int, conn net.Conn) net.Conn {
	if c.opts.Faults == nil {
		return conn
	}
	plan := c.opts.Faults(from, to)
	if !plan.Active() {
		return conn
	}
	gen := c.wrapGen.Add(1)
	rng := sim.NewRNG(c.opts.Seed ^ uint64(from+1)<<40 ^ uint64(to+1)<<20 ^ gen<<4)
	return faultnet.Wrap(conn, plan, rng)
}

// Broadcast floods a payload from node src.
func (c *Cluster) Broadcast(src int, payload string) (Message, error) {
	c.mu.Lock()
	if src < 0 || src >= len(c.nodes) {
		c.mu.Unlock()
		return Message{}, fmt.Errorf("netflood: unknown node %d", src)
	}
	nd := c.nodes[src]
	c.mu.Unlock()
	nd.mu.Lock()
	msg := Message{Src: src, Seq: nd.nextSeq, Payload: payload, Budget: c.opts.HopBudget}
	nd.nextSeq++
	nd.mu.Unlock()
	mNetBroadcasts.Inc()
	// Broadcast has no caller context; the round self-roots so a flood
	// driven from a traced campaign still records per-round spans.
	_, sp := trace.StartRoot(context.Background(), "netflood.broadcast")
	if sp.Live() {
		sp.SetAttr(trace.Int("src", int64(src)))
		sp.SetAttr(trace.Int("seq", int64(msg.Seq)))
	}
	nd.handle(msg)
	sp.End()
	return msg, nil
}

// Deliveries exposes the cluster-wide delivery stream: one entry per
// (node, message) first delivery. If consumers fall behind and the channel
// fills, further entries are counted (netflood.msgs.dropped) and dropped;
// the per-node Delivered logs always remain complete.
func (c *Cluster) Deliveries() <-chan Message { return c.deliveries }

// Delivered returns the messages node idx has delivered so far, in order.
func (c *Cluster) Delivered(idx int) []Message {
	c.mu.Lock()
	if idx < 0 || idx >= len(c.nodes) {
		c.mu.Unlock()
		return nil
	}
	nd := c.nodes[idx]
	c.mu.Unlock()
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return append([]Message(nil), nd.order...)
}

// WaitDelivered blocks until every listed node has delivered at least want
// messages or the timeout passes, reporting whether the goal was met. It is
// the chaos harness's convergence check: under retransmission, delivery is
// eventual rather than immediate.
func (c *Cluster) WaitDelivered(nodes []int, want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		done := true
		for _, v := range nodes {
			if len(c.Delivered(v)) < want {
				done = false
				break
			}
		}
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// CrashNode closes node idx's listener and connections, simulating a
// process crash. Returns false if idx is out of range or already down.
// Safe to call concurrently with Broadcast, reconfiguration and Shutdown.
func (c *Cluster) CrashNode(idx int) bool {
	c.mu.Lock()
	if idx < 0 || idx >= len(c.nodes) {
		c.mu.Unlock()
		return false
	}
	nd := c.nodes[idx]
	c.mu.Unlock()
	if !nd.shutdown() {
		return false
	}
	mNetCrashes.Inc()
	return true
}

// Alive reports whether node idx is still running.
func (c *Cluster) Alive(idx int) bool {
	c.mu.Lock()
	if idx < 0 || idx >= len(c.nodes) {
		c.mu.Unlock()
		return false
	}
	nd := c.nodes[idx]
	c.mu.Unlock()
	return nd.alive()
}

// Shutdown closes every listener and connection and waits for all node
// goroutines to exit. Idempotent and safe under concurrent CrashNode.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	nodes := append([]*node(nil), c.nodes...)
	c.mu.Unlock()
	for _, nd := range nodes {
		nd.shutdown()
	}
	for _, nd := range nodes {
		nd.wg.Wait()
	}
}

func (n *node) alive() bool {
	select {
	case <-n.closed:
		return false
	default:
		return true
	}
}

func (n *node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.acceptHandshake(conn)
		}()
	}
}

// acceptHandshake learns the remote id from the hello, installs the link,
// and reads frames until the connection dies.
func (n *node) acceptHandshake(conn net.Conn) {
	r := bufio.NewReader(conn)
	f, err := readFrame(r)
	if err != nil || f.Kind != "hello" {
		conn.Close()
		return
	}
	p := n.attachLocked(f.From, conn)
	if p == nil {
		conn.Close()
		return
	}
	n.readLoop(p, r)
}

// attach installs conn as the link to remote — reusing the existing
// peerConn (and its pending retransmission state) on reconnection — and
// starts a reader goroutine. Returns nil if the node is shut down.
func (n *node) attach(remote int, conn net.Conn, r *bufio.Reader) *peerConn {
	p := n.attachLocked(remote, conn)
	if p == nil {
		return nil
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.readLoop(p, r)
	}()
	return p
}

// attachLocked performs the registration half of attach without starting a
// reader: writes from this node to remote go through the (possibly fault-
// wrapped) conn from now on. Signal Connect waiters on every registration.
func (n *node) attachLocked(remote int, conn net.Conn) *peerConn {
	if !n.alive() {
		return nil
	}
	wrapped := n.c.wrapConn(n.idx, remote, conn)
	n.mu.Lock()
	p, ok := n.peers[remote]
	if ok {
		p.mu.Lock()
		old := p.conn
		p.conn = wrapped
		p.dead = false
		// In-flight messages ride over to the new socket immediately.
		for _, e := range p.pending {
			e.attempts = 0
			e.nextDue = time.Time{}
		}
		p.mu.Unlock()
		if old != nil && old != wrapped {
			old.Close()
		}
	} else {
		p = &peerConn{remote: remote, conn: wrapped}
		if n.c.opts.Reliable {
			p.pending = make(map[id]*pendingEntry)
		}
		n.peers[remote] = p
	}
	close(n.changed)
	n.changed = make(chan struct{})
	n.mu.Unlock()
	if n.c.opts.Reliable {
		// Pending entries were rescheduled for immediate retransmission on
		// the fresh socket; make sure the loop notices now, not at its next
		// planned wakeup.
		n.wakeRetransmit()
	}
	return p
}

// unregister closes and forgets the link to remote, reporting whether it
// existed.
func (n *node) unregister(remote int) bool {
	n.mu.Lock()
	p, ok := n.peers[remote]
	if ok {
		delete(n.peers, remote)
	}
	n.mu.Unlock()
	if ok {
		p.mu.Lock()
		p.dead = true
		p.pending = nil
		conn := p.conn
		p.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
	}
	return ok
}

// readLoop consumes frames from one connection until it dies. Message
// frames are acked (reliable mode) and handled; ack frames settle pending
// retransmission state.
func (n *node) readLoop(p *peerConn, r *bufio.Reader) {
	for {
		f, err := readFrame(r)
		if err != nil {
			return // peer closed, link removed, or shutdown
		}
		switch {
		case f.Kind == "msg" && f.Msg != nil:
			if n.c.opts.Reliable {
				// Ack every copy, duplicates included: the first ack may
				// have been lost, and the sender retransmits until one
				// lands.
				n.sendAck(p, *f.Msg)
			}
			n.handle(*f.Msg)
		case f.Kind == "ack" && f.Msg != nil:
			n.handleAck(p, *f.Msg)
		}
	}
}

// handle delivers msg if new and forwards it on every registered link.
func (n *node) handle(msg Message) {
	if !n.alive() {
		return
	}
	key := id{src: msg.Src, seq: msg.Seq}
	n.mu.Lock()
	if _, dup := n.seen[key]; dup {
		n.mu.Unlock()
		mNetDuplicates.Inc()
		return
	}
	n.seen[key] = msg
	n.order = append(n.order, msg)
	peers := make([]*peerConn, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	mNetDelivered.Inc()
	hNetHops.Observe(int64(msg.Hops))

	select {
	case n.delivery <- msg:
	case <-n.closed:
		return
	default:
		// Stream consumers fell behind: count and drop rather than stall
		// the flood. Per-node order logs above stay complete.
		mNetDropped.Inc()
	}
	// Forwarded copies are one hop further from the source.
	m := msg
	m.Hops++
	if n.c.opts.HopBudget > 0 {
		if msg.Budget <= 0 {
			// The copy that won this node's dedup slot has no hop budget
			// left: the message is delivered here but travels no further —
			// its cost stays inside the statically-computed ceiling.
			mNetHopsExhausted.Inc()
			if trace.Enabled() {
				trace.Instant("netflood.budget_exhausted",
					trace.Int("node", int64(n.idx)),
					trace.Int("src", int64(msg.Src)),
					trace.Int("seq", int64(msg.Seq)))
			}
			return
		}
		m.Budget = msg.Budget - 1
	}
	for _, p := range peers {
		if n.c.opts.Reliable {
			n.track(p, m)
		}
		// Best effort at the transport level: a closed peer just drops the
		// frame (the crash model); in reliable mode the retransmit path
		// owns recovery.
		mNetFramesSent.Inc()
		_ = writeFrame(p, frame{Kind: "msg", Msg: &m}, n.c.opts.WriteTimeout)
	}
}

// shutdown closes the node exactly once, reporting whether this call did
// the work. Safe under concurrent CrashNode/Shutdown/broadcast.
func (n *node) shutdown() bool {
	ran := false
	n.closeOnce.Do(func() {
		ran = true
		close(n.closed)
		_ = n.ln.Close()
		n.mu.Lock()
		peers := make([]*peerConn, 0, len(n.peers))
		for _, p := range n.peers {
			peers = append(peers, p)
		}
		n.mu.Unlock()
		for _, p := range peers {
			p.mu.Lock()
			conn := p.conn
			p.mu.Unlock()
			if conn != nil {
				conn.Close()
			}
		}
	})
	return ran
}

// writeFrame writes one frame on the link, holding the peer's write lock so
// frames never interleave, with a per-frame write deadline.
func writeFrame(p *peerConn, f frame, timeout time.Duration) error {
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	buf := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(data)))
	copy(buf[4:], data)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil || p.dead {
		return errors.New("netflood: link down")
	}
	if timeout > 0 {
		_ = p.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	if _, err := p.conn.Write(buf); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			mNetWriteTOs.Inc()
		}
		return err
	}
	return nil
}

// writeFrameTo writes one frame directly on a conn (handshake path, before
// a peerConn exists), with the same single-write framing and deadline.
func writeFrameTo(conn net.Conn, f frame, timeout time.Duration) error {
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	buf := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(data)))
	copy(buf[4:], data)
	if timeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	if _, err := conn.Write(buf); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			mNetWriteTOs.Inc()
		}
		return err
	}
	return nil
}

func readFrame(r io.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size > maxFrame {
		return frame{}, fmt.Errorf("netflood: frame of %d bytes exceeds limit", size)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(r, data); err != nil {
		return frame{}, err
	}
	var f frame
	if err := json.Unmarshal(data, &f); err != nil {
		return frame{}, fmt.Errorf("netflood: decode frame: %w", err)
	}
	return f, nil
}

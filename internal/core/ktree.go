package core

// K-TREE construction (Baldoni et al., Definition 1 and Theorem 2).
//
// A K-TREE graph consists of k copies of a height-balanced tree T pasted
// together at shared leaves; the root has k children, other internal nodes
// have k-1 children, and nodes just above the leaves may carry up to 2k-3
// added leaves.
//
// Node accounting: with I internal positions and A added leaves,
//
//	n = k·I + L,  L = k + (I-1)(k-2) + A
//	  = 2k + (I-1)·2(k-1) + A.
//
// The canonical builder decomposes n-2k uniquely as α·2(k-1) + j with
// j ∈ {0..2k-3} (possible because 2(k-1) = 2k-2 > 2k-3), performs α leaf
// conversions in BFS order and hangs all j added leaves off the shallowest
// node that still has base leaf children. The result is k-regular exactly
// when j = 0 (Theorem 3).

// KTree holds a compiled K-TREE LHG together with its blueprint and the
// decomposition parameters of the pair (n,k).
type KTree struct {
	N, K  int
	Alpha int // number of leaf->internal conversions
	J     int // number of added leaves, 0..2k-3
	Blue  *Blueprint
	Real  *Realization
}

// BuildKTree constructs the canonical K-TREE LHG for the pair (n,k).
// It fails with ErrNotConstructible iff EX_K-TREE(n,k) is false,
// i.e. unless k >= 3 and n >= 2k (Theorem 2).
func BuildKTree(n, k int) (*KTree, error) {
	if err := validatePair("K-TREE", n, k); err != nil {
		return nil, err
	}
	rem := n - 2*k
	alpha := rem / (2 * (k - 1))
	j := rem % (2 * (k - 1))

	s := newShape(k)
	for c := 0; c < alpha; c++ {
		if err := s.convert(); err != nil {
			return nil, err
		}
	}
	host := s.aboveLeafNode()
	for a := 0; a < j; a++ {
		s.addLeaf(host, true)
	}

	real, err := s.b.Compile()
	if err != nil {
		return nil, err
	}
	return &KTree{N: n, K: k, Alpha: alpha, J: j, Blue: s.b, Real: real}, nil
}

// ExistsKTree is the closed-form characteristic function EX_K-TREE(n,k)
// (Theorem 2): true iff n >= 2k (with the k >= 3 domain restriction).
func ExistsKTree(n, k int) bool { return k >= 3 && n >= 2*k }

// RegularKTree is the closed-form characteristic function REG_K-TREE(n,k)
// (Theorem 3): a k-regular K-TREE LHG exists iff n = 2k + 2α(k-1).
func RegularKTree(n, k int) bool {
	return ExistsKTree(n, k) && (n-2*k)%(2*(k-1)) == 0
}

// Command experiments regenerates every table and figure of the reproduced
// papers, in paper order. Each experiment is identified by the id used in
// DESIGN.md and EXPERIMENTS.md (E1..E14).
//
// Usage:
//
//	experiments              # run everything
//	experiments -only E4     # run a single experiment
//	experiments -list        # list experiment ids and titles
//	experiments -progress -metrics > tables.txt
//
// Tables go to stdout; -progress lines, the -metrics JSON dump and the
// -http endpoint announcement go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"lhg/internal/obs"
)

// verifyWorkers is the -workers flag: goroutine budget handed to the
// parallel verifier by the experiments that prove LHG properties.
var verifyWorkers int

// expCtx is the run-scoped context every experiment builds, verifies and
// floods under: run() arms it with the interrupt signals, so Ctrl-C
// cancels an in-flight max-flow campaign instead of abandoning it.
var expCtx = context.Background()

// experiment is one reproducible table/figure.
type experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

func experimentTable() []experiment {
	return []experiment{
		{ID: "E1", Title: "Figure 2 witnesses: K-TREE graphs (6,3), (9,3), (10,3)", Run: runE1},
		{ID: "E2", Title: "Figure 3 witnesses: K-DIAMOND graphs (7,3), (8,3), (13,3), (14,3)", Run: runE2},
		{ID: "E3", Title: "Figure 1 witness: k vertex-disjoint paths on K-TREE(21,3)", Run: runE3},
		{ID: "E4", Title: "Theorem 2: EX_K-TREE(n,k) = (n >= 2k), builder vs closed form", Run: runE4},
		{ID: "E5", Title: "Theorem 3: REG_K-TREE(n,k) = (n = 2k + 2a(k-1))", Run: runE5},
		{ID: "E6", Title: "Theorem 5 + Corollary 1: EX_K-DIAMOND = EX_K-TREE", Run: runE6},
		{ID: "E7", Title: "Theorem 6: REG_K-DIAMOND(n,k) = (n = 2k + a(k-1))", Run: runE7},
		{ID: "E8", Title: "Theorem 7 + Corollary 2: regular coverage, odd-a exclusives", Run: runE8},
		{ID: "E9", Title: "Section 4.4: Jenkins-Demers gaps vs K-TREE", Run: runE9},
		{ID: "E10", Title: "Diameter vs n: classic Harary (linear) vs LHGs (logarithmic)", Run: runE10},
		{ID: "E11", Title: "Flooding latency (rounds) vs n, fault-free", Run: runE11},
		{ID: "E12", Title: "Flooding under f node failures (random + adversarial)", Run: runE12},
		{ID: "E13", Title: "Message cost vs n: edges and flood messages per constraint", Run: runE13},
		{ID: "E14", Title: "Overlay churn per join: K-TREE vs K-DIAMOND vs Harary", Run: runE14},
		{ID: "E15", Title: "Extension: incremental growers (Thm 2/5 proofs) vs canonical rebuild", Run: runE15},
		{ID: "E16", Title: "Extension: deterministic flooding vs gossip and spanning trees", Run: runE16},
		{ID: "E17", Title: "Extension: protocol-level reliable broadcast under mid-flood crashes", Run: runE17},
		{ID: "E18", Title: "Extension: spectral gap of k-regular instances (expansion)", Run: runE18},
		{ID: "E19", Title: "Extension: structured routing (Lemma 3 as a routing scheme), stretch", Run: runE19},
		{ID: "E20", Title: "Extension: forwarding-load distribution (betweenness centrality)", Run: runE20},
		{ID: "E21", Title: "Extension: self-healing membership (crash, degrade, repair)", Run: runE21},
		{ID: "E22", Title: "Extension: (n,k) coverage of classic families vs LHG constraints", Run: runE22},
		{ID: "E23", Title: "Extension: dissemination percentiles (p50/p90/p99/p100 rounds)", Run: runE23},
		{ID: "E24", Title: "Extension: trace-driven churn with sampled availability", Run: runE24},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only     = fs.String("only", "", "run a single experiment id (e.g. E4)")
		list     = fs.Bool("list", false, "list experiments and exit")
		figures  = fs.String("figures", "", "write the paper's witness graphs as DOT files into this directory and exit")
		workers  = fs.Int("workers", 0, "goroutines for verification-heavy experiments (0 = all cores)")
		progress = fs.Bool("progress", false, "report per-experiment progress on stderr")
		metrics  = fs.Bool("metrics", false, "dump the JSON metrics report to stderr at exit")
		httpAddr = fs.String("http", "", "serve /debug/vars, /metrics and /debug/pprof/ on this address for the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	verifyWorkers = *workers
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	expCtx = ctx
	stopObs, err := obs.StartCLI(*metrics, *httpAddr, os.Stderr)
	if err != nil {
		return err
	}
	defer stopObs()
	if *figures != "" {
		return writeFigures(*figures, out)
	}
	exps := experimentTable()
	if *list {
		for _, e := range exps {
			fmt.Fprintf(out, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var prog *obs.Progress
	if *progress {
		total := int64(0)
		for _, e := range exps {
			if *only == "" || strings.EqualFold(*only, e.ID) {
				total++
			}
		}
		prog = obs.NewProgress(os.Stderr, "experiments", total)
	}
	ran := 0
	for _, e := range exps {
		if *only != "" && !strings.EqualFold(*only, e.ID) {
			continue
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
		}
		fmt.Fprintf(out, "== %s: %s ==\n", e.ID, e.Title)
		if err := e.Run(out); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(out)
		ran++
		prog.Add(1)
	}
	prog.Finish()
	if ran == 0 {
		return fmt.Errorf("unknown experiment id %q (use -list)", *only)
	}
	return nil
}

package core

import (
	"testing"
	"testing/quick"

	"lhg/internal/check"
	"lhg/internal/sim"
)

func TestKTreeVariantRejectsInvalidPairs(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := BuildKTreeVariant(5, 3, rng); err == nil {
		t.Fatal("n < 2k must fail")
	}
	if _, err := BuildKDiamondVariant(10, 2, rng); err == nil {
		t.Fatal("k < 3 must fail")
	}
}

// TestVariantsSatisfyConstraintAndLHG is the generality check behind
// Theorems 1 and 4: randomly sampled witnesses of the constraints — not
// just the canonical shapes — are valid LHGs.
func TestVariantsSatisfyConstraintAndLHG(t *testing.T) {
	rng := sim.NewRNG(20260705)
	for k := 3; k <= 4; k++ {
		for n := 2 * k; n <= 7*k; n++ {
			for trial := 0; trial < 3; trial++ {
				kt, err := BuildKTreeVariant(n, k, rng)
				if err != nil {
					t.Fatalf("ktree variant (%d,%d): %v", n, k, err)
				}
				if kt.Real.Graph.Order() != n {
					t.Fatalf("ktree variant (%d,%d) has %d nodes", n, k, kt.Real.Graph.Order())
				}
				if err := ValidateKTree(kt.Blue); err != nil {
					t.Fatalf("ktree variant (%d,%d) violates the constraint: %v", n, k, err)
				}
				ok, err := check.QuickVerify(kt.Real.Graph, k)
				if err != nil || !ok {
					t.Fatalf("ktree variant (%d,%d) is not an LHG (err=%v)", n, k, err)
				}

				kd, err := BuildKDiamondVariant(n, k, rng)
				if err != nil {
					t.Fatalf("kdiamond variant (%d,%d): %v", n, k, err)
				}
				if kd.Real.Graph.Order() != n {
					t.Fatalf("kdiamond variant (%d,%d) has %d nodes", n, k, kd.Real.Graph.Order())
				}
				if err := ValidateKDiamond(kd.Blue); err != nil {
					t.Fatalf("kdiamond variant (%d,%d) violates the constraint: %v", n, k, err)
				}
				ok, err = check.QuickVerify(kd.Real.Graph, k)
				if err != nil || !ok {
					t.Fatalf("kdiamond variant (%d,%d) is not an LHG (err=%v)", n, k, err)
				}
			}
		}
	}
}

// TestVariantsMatchTheoremGrids: variant witnesses obey the same
// regularity characterization as the canonical ones — regularity is a
// property of the pair, not of the witness choice.
func TestVariantsMatchTheoremGrids(t *testing.T) {
	rng := sim.NewRNG(99)
	for k := 3; k <= 5; k++ {
		for n := 2 * k; n <= 8*k; n++ {
			kt, err := BuildKTreeVariant(n, k, rng)
			if err != nil {
				t.Fatal(err)
			}
			if kt.Real.Graph.IsRegular(k) != RegularKTree(n, k) {
				t.Fatalf("ktree variant (%d,%d) regularity off the Theorem 3 grid", n, k)
			}
			kd, err := BuildKDiamondVariant(n, k, rng)
			if err != nil {
				t.Fatal(err)
			}
			if kd.Real.Graph.IsRegular(k) != RegularKDiamond(n, k) {
				t.Fatalf("kdiamond variant (%d,%d) regularity off the Theorem 6 grid", n, k)
			}
		}
	}
}

// TestVariantsProduceDiverseWitnesses: different seeds reach different
// graphs for pairs with real freedom (enough conversions/added leaves).
func TestVariantsProduceDiverseWitnesses(t *testing.T) {
	const n, k = 21, 3
	distinct := map[string]bool{}
	for seed := uint64(1); seed <= 12; seed++ {
		kt, err := BuildKTreeVariant(n, k, sim.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		sig := ""
		for _, e := range kt.Real.Graph.Edges() {
			sig += string(rune(e.U)) + string(rune(e.V))
		}
		distinct[sig] = true
	}
	if len(distinct) < 2 {
		t.Fatal("variant builder produced a single witness across 12 seeds")
	}
}

// TestVariantsDeterministicPerSeed: the same seed reproduces the same
// witness.
func TestVariantsDeterministicPerSeed(t *testing.T) {
	a, err := BuildKDiamondVariant(26, 4, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildKDiamondVariant(26, 4, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Real.Graph.Edges(), b.Real.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatal("sizes differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestPropertyVariantsAlwaysValid(t *testing.T) {
	f := func(seed uint32, nRaw, kRaw uint8) bool {
		k := int(kRaw%3) + 3
		n := 2*k + int(nRaw)%40
		rng := sim.NewRNG(uint64(seed) + 1)
		kt, err := BuildKTreeVariant(n, k, rng)
		if err != nil || kt.Real.Graph.Order() != n {
			return false
		}
		if ValidateKTree(kt.Blue) != nil {
			return false
		}
		kd, err := BuildKDiamondVariant(n, k, rng)
		if err != nil || kd.Real.Graph.Order() != n {
			return false
		}
		return ValidateKDiamond(kd.Blue) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

package check

import (
	"context"
	"fmt"
	"strings"

	"lhg/internal/flow"
	"lhg/internal/graph"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
)

// Screen is the scale tier of the verifier: a certified screen for
// instances too large for the exact campaign (n ~ 10^6, where the exact
// κ sweep alone is ~n max-flow probes). It never guesses — every verdict
// it returns is one of three honest states:
//
//   - ScreenRefuted: an exact witness was found (a real cut below k, a
//     bridge, an eccentricity above the bound). The property FAILS.
//   - ScreenConfirmed: a sufficient exact check passed (2-connectivity via
//     cutpoints when k == 2, 2·ecc(source) within the diameter bound).
//     The property HOLDS.
//   - ScreenScreened: every linear check, every Monte Carlo contraction
//     round, and every sampled exact probe passed, but the property was
//     not exhaustively verified. "No counterexample found", not "proven".
//
// The phases mirror VerifyCtx: a linear pass (degrees, connectivity,
// cutpoints — exact, O(n+m)), the seeded Karger prescreen (certified
// candidate cuts, O(m log n)), and a confirm pass of exact Dinic probes
// (the candidate cut's bipartition plus deterministically sampled pairs)
// on the shared flow arena.
var (
	mScreenRuns         = obs.NewCounter("check.screen.runs")
	mScreenRefuted      = obs.NewCounter("check.screen.refuted")
	tPhaseScreenLinear  = obs.NewTimer("check.screen.phase.linear")
	tPhaseScreenKarger  = obs.NewTimer("check.screen.phase.prescreen")
	tPhaseScreenConfirm = obs.NewTimer("check.screen.phase.confirm")
)

// ScreenVerdict is the three-valued outcome of one screened property.
type ScreenVerdict uint8

const (
	// ScreenRefuted means an exact counterexample witness was found.
	ScreenRefuted ScreenVerdict = iota
	// ScreenScreened means every sampled and randomized check passed but
	// the property was not exhaustively verified.
	ScreenScreened
	// ScreenConfirmed means a sufficient exact check proved the property.
	ScreenConfirmed
)

func (v ScreenVerdict) String() string {
	switch v {
	case ScreenRefuted:
		return "refuted"
	case ScreenScreened:
		return "screened"
	case ScreenConfirmed:
		return "confirmed"
	}
	return "screen(?)"
}

// ScreenOptions configures a screen run.
type ScreenOptions struct {
	// SamplePairs is the number of deterministically sampled exact pair
	// probes in the confirm phase; <= 0 means the default (16).
	SamplePairs int
}

const defaultScreenSamples = 16

// ScreenReport is the outcome of one screen run. Unlike Report, the
// connectivity fields are verdicts, not exact values: the screen's
// contract is "refute exactly or confirm/screen honestly", never an
// unqualified number it did not compute.
type ScreenReport struct {
	N, M, K int

	MinDegree int
	MaxDegree int
	Regular   bool // exact: every degree equals K
	Connected bool // exact

	// CutUpper is the smallest certified edge cut seen (the trivial star
	// cut, a Karger contraction cut, or a refuting pair probe): λ ≤
	// CutUpper always holds. CutUpper < K is an exact P2 refutation.
	CutUpper int
	// PairProbes is the number of exact max-flow pair probes the confirm
	// phase ran.
	PairProbes int

	// NodeConn, LinkConn are the P1/P2 verdicts at level K.
	NodeConn ScreenVerdict
	LinkConn ScreenVerdict
	// Diameter is the P4 verdict against DiameterBound(N, K); EccSource
	// is the exact eccentricity of node 0 (ecc ≤ diameter ≤ 2·ecc).
	Diameter      ScreenVerdict
	DiameterBound int
	EccSource     int

	// Phases is the per-phase wall-time/probe breakdown, as in Report.
	Phases []PhaseTiming
}

// OK reports whether no property was refuted (everything at least
// screened).
func (r *ScreenReport) OK() bool {
	return r.NodeConn != ScreenRefuted && r.LinkConn != ScreenRefuted &&
		r.Diameter != ScreenRefuted
}

func (r *ScreenReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "screen n=%d m=%d k=%d: κ≥k %s, λ≥k %s (cut≤%d), diam≤%d %s",
		r.N, r.M, r.K, r.NodeConn, r.LinkConn, r.CutUpper, r.DiameterBound, r.Diameter)
	return b.String()
}

// ScreenCtx screens g against the LHG property set at level k. See the
// package comment above for the exact/screened semantics of the verdicts.
func ScreenCtx(ctx context.Context, g *graph.Graph, k int, opt ScreenOptions) (*ScreenReport, error) {
	n := g.Order()
	if k < 1 {
		return nil, fmt.Errorf("check: screen connectivity target k=%d must be >= 1", k)
	}
	if n <= k {
		return nil, fmt.Errorf("check: screen k=%d must be < n=%d", k, n)
	}
	samples := opt.SamplePairs
	if samples <= 0 {
		samples = defaultScreenSamples
	}
	mScreenRuns.Inc()
	r := &ScreenReport{N: n, M: g.Size(), K: k, DiameterBound: DiameterBound(n, k)}

	runPhase := func(name string, t *obs.Timer, fn func(context.Context) error) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		p0 := mFlowProbes.Value()
		pctx, span := trace.StartTimed(ctx, "check.screen."+name)
		err := fn(pctx)
		probes := mFlowProbes.Value() - p0
		d := span.End()
		t.Observe(d)
		r.Phases = append(r.Phases, PhaseTiming{
			Phase:  name,
			Ms:     float64(d) / 1e6,
			Probes: probes,
		})
		return err
	}

	// Linear pass: exact O(n+m) facts. Degrees bound both connectivities
	// (κ ≤ λ ≤ δ), one BFS decides connectedness and ecc(0), and the
	// cutpoint DFS decides 2-connectivity exactly — which refutes any
	// k ≥ 2 and confirms k == 2 outright.
	var bridges int
	var articulations int
	if err := runPhase("linear", tPhaseScreenLinear, func(context.Context) error {
		r.MinDegree, _ = g.MinDegree()
		r.MaxDegree, _ = g.MaxDegree()
		r.Regular = g.IsRegular(k)
		r.CutUpper = r.MinDegree // the star of a min-degree node is a real cut
		ecc, whole := g.Eccentricity(0)
		r.EccSource = ecc
		r.Connected = whole
		if r.Connected && k >= 2 {
			articulations = len(g.ArticulationPoints())
			bridges = len(g.Bridges())
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Seed the verdicts from the linear facts.
	r.NodeConn, r.LinkConn = ScreenScreened, ScreenScreened
	switch {
	case !r.Connected:
		r.NodeConn, r.LinkConn = ScreenRefuted, ScreenRefuted
		r.CutUpper = 0
	case r.MinDegree < k:
		// κ ≤ λ ≤ δ < k: both refuted by the degree witness.
		r.NodeConn, r.LinkConn = ScreenRefuted, ScreenRefuted
	case k == 1:
		// Connected is exactly κ ≥ 1 and λ ≥ 1.
		r.NodeConn, r.LinkConn = ScreenConfirmed, ScreenConfirmed
	case k == 2:
		// The cutpoint DFS is exact for 2-connectivity.
		if articulations > 0 {
			r.NodeConn = ScreenRefuted
		} else {
			r.NodeConn = ScreenConfirmed
		}
		if bridges > 0 {
			r.LinkConn = ScreenRefuted
		} else {
			r.LinkConn = ScreenConfirmed
		}
	default:
		// k >= 3: an articulation point (bridge) still refutes exactly.
		if articulations > 0 {
			r.NodeConn = ScreenRefuted
		}
		if bridges > 0 {
			r.LinkConn = ScreenRefuted
		}
	}

	// Diameter: ecc(0) ≤ diameter ≤ 2·ecc(0), both sides exact.
	switch {
	case !r.Connected || r.EccSource > r.DiameterBound:
		r.Diameter = ScreenRefuted
	case 2*r.EccSource <= r.DiameterBound:
		r.Diameter = ScreenConfirmed
	default:
		r.Diameter = ScreenScreened
	}

	// Monte Carlo prescreen: certified candidate cuts. A contraction cut
	// below k is a real cut of g — an exact P2 refutation, no confirm
	// probe needed.
	var hints flow.SweepHints
	needCuts := r.Connected && r.LinkConn == ScreenScreened
	if needCuts {
		if err := runPhase("prescreen", tPhaseScreenKarger, func(pctx context.Context) error {
			hints = prescreenHints(g)
			return pctx.Err()
		}); err != nil {
			return nil, err
		}
		if hints.Upper < r.CutUpper {
			r.CutUpper = hints.Upper
		}
		if r.CutUpper < k {
			r.LinkConn = ScreenRefuted
		}
	}

	// Confirm pass: exact Dinic probes on the shared arena. The sampled
	// pairs walk a deterministic splitmix64 stream, so a screen run is a
	// pure function of (graph, k, samples). Any probe whose cut lands
	// below k is an exact refutation (an s-t cut is a cut of g); probes
	// at or above k raise confidence but cannot confirm a global
	// property, so passing verdicts stay ScreenScreened.
	if r.Connected && (r.LinkConn == ScreenScreened || r.NodeConn == ScreenScreened) {
		if err := runPhase("confirm", tPhaseScreenConfirm, func(pctx context.Context) error {
			rng := uint64(prescreenSeed) ^ uint64(n)<<20 ^ uint64(r.M)
			for i := 0; i < samples; i++ {
				if err := pctx.Err(); err != nil {
					return err
				}
				s := int(splitmix64(&rng) % uint64(n))
				t := int(splitmix64(&rng) % uint64(n))
				if s == t {
					continue
				}
				r.PairProbes++
				if r.LinkConn == ScreenScreened {
					cut, err := flow.EdgeCut(g, s, t)
					if err != nil {
						return err
					}
					if cut < r.CutUpper {
						r.CutUpper = cut
					}
					if cut < k {
						r.LinkConn = ScreenRefuted
					}
				}
				if r.NodeConn == ScreenScreened && !g.HasEdge(s, t) {
					cut, err := flow.VertexCut(g, s, t)
					if err != nil {
						return err
					}
					if cut < k {
						r.NodeConn = ScreenRefuted
					}
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	if !r.OK() {
		mScreenRefuted.Inc()
	}
	return r, ctx.Err()
}

// Screen screens g at level k without cancellation. See ScreenCtx.
func Screen(g *graph.Graph, k int, opt ScreenOptions) (*ScreenReport, error) {
	return ScreenCtx(context.Background(), g, k, opt)
}

package flow

import (
	"context"
	"sync"
	"sync/atomic"

	"lhg/internal/graph"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
)

// Worker-pool telemetry: spawned counts pool members across all fan-out
// drivers; busy accumulates each worker's wall time inside its probe loop.
// Utilization over a phase is busy / (workers × phase wall time).
var (
	mWorkersSpawned = obs.NewCounter("flow.workers.spawned")
	tWorkerBusy     = obs.NewTimer("flow.workers.busy")
)

// probeProgressEvery is the probe-batch granularity of the per-worker
// "probe-progress" trace events: one point event per this many completed
// probes keeps the flight recorder (and any live SSE watcher) informed
// without per-probe noise.
const probeProgressEvery = 32

// workerSpan opens the per-worker child span of a fan-out phase,
// attributing the worker id so the Chrome export renders each worker in
// its own lane. Inert (and allocation-free) when tracing is disabled.
func workerSpan(ctx context.Context, name string, w int) trace.Span {
	_, sp := trace.StartSpan(ctx, name)
	if sp.Live() {
		sp.SetAttr(trace.Int("worker", int64(w)))
	}
	return sp
}

// probeProgress emits the batched progress point for a worker that has
// finished its i-th probe (0-based) of total. Callers pass the phase's
// span; the guard keeps the disabled path free of attr allocation.
func probeProgress(sp trace.Span, i, total int) {
	if !sp.Live() || (i+1)%probeProgressEvery != 0 {
		return
	}
	sp.Event("probe-progress", trace.Int("done", int64(i+1)), trace.Int("total", int64(total)))
}

// Parallel global-connectivity sweeps. The frozen CSR graph is shared
// read-only by every worker; each worker owns a pooled network it rebuilds
// per probe. The running minimum is kept in an atomic and doubles as the
// early-exit limit for every in-flight max flow: a stale (too high) limit
// only costs extra augmentation, never correctness, because any flow value
// below the limit is exact.
//
// Cancellation: every worker polls ctx between probes and arms its pooled
// network so in-flight probes stop between augmenting-path iterations. The
// drivers join all workers before returning — cancellation never leaks a
// goroutine — and report ctx.Err() once the pool has drained.

// atomicMin lowers a to v if v is smaller, returning the post-update value.
func atomicMin(a *atomic.Int64, v int) int {
	for {
		cur := a.Load()
		if int64(v) >= cur {
			return int(cur)
		}
		if a.CompareAndSwap(cur, int64(v)) {
			return v
		}
	}
}

// edgeConnectivityParallel fans the per-target min-cut probes of λ(G)
// across workers goroutines under ctx.
func edgeConnectivityParallel(ctx context.Context, g *graph.Graph, workers int) (int, error) {
	n := g.Order()
	var (
		best atomic.Int64
		next atomic.Int64
		wg   sync.WaitGroup
	)
	best.Store(int64(inf))
	next.Store(1)
	mWorkersSpawned.Add(int64(workers))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer tWorkerBusy.Start().End()
			wsp := workerSpan(ctx, "flow.lambda.worker", w)
			defer wsp.End()
			nw := getNetwork(n)
			defer putNetwork(nw)
			nw.watch(ctx)
			for ctx.Err() == nil {
				t := int(next.Add(1)) - 1
				if t >= n {
					return
				}
				limit := int(best.Load())
				if limit == 0 {
					return
				}
				nw.buildEdge(g, noEdge)
				if f := nw.maxflow(0, t, limit); f < limit && ctx.Err() == nil {
					atomicMin(&best, f)
				}
				probeProgress(wsp, t, n)
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return int(best.Load()), nil
}

// EdgeConnectivityParallel is EdgeConnectivity with the per-target min-cut
// probes fanned across `workers` goroutines (<= 1 falls back to the serial
// sweep; <= 0 means GOMAXPROCS).
func EdgeConnectivityParallel(g *graph.Graph, workers int) int {
	lambda, _ := EdgeConnectivityCtx(context.Background(), g, workers)
	return lambda
}

// vertexConnectivityParallel sweeps the Esfahanian–Hakimi probe pairs with
// a shared running minimum across workers goroutines under ctx.
func vertexConnectivityParallel(ctx context.Context, g *graph.Graph, minDeg int, pairs []probePair, workers int) (int, error) {
	n := g.Order()
	var (
		best atomic.Int64
		next atomic.Int64
		wg   sync.WaitGroup
	)
	best.Store(int64(minDeg)) // κ(G) <= δ(G)
	mWorkersSpawned.Add(int64(workers))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer tWorkerBusy.Start().End()
			wsp := workerSpan(ctx, "flow.kappa.worker", w)
			defer wsp.End()
			nw := getNetwork(2 * n)
			defer putNetwork(nw)
			nw.watch(ctx)
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				limit := int(best.Load())
				if limit == 0 {
					return
				}
				p := pairs[i]
				nw.buildVertex(g, p.s, p.t, n+1, noEdge)
				if f := nw.maxflow(2*p.s+1, 2*p.t, limit); f < limit && ctx.Err() == nil {
					atomicMin(&best, f)
				}
				probeProgress(wsp, i, len(pairs))
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return int(best.Load()), nil
}

// VertexConnectivityParallel is VertexConnectivity (Esfahanian–Hakimi) with
// the per-pair vertex-cut probes fanned across `workers` goroutines.
func VertexConnectivityParallel(g *graph.Graph, workers int) int {
	kappa, _ := VertexConnectivityCtx(context.Background(), g, workers)
	return kappa
}

// EdgesRemovableCtx runs EdgeIsRemovable over a batch of edges across
// `workers` goroutines under ctx and returns a parallel bool slice: out[i]
// reports whether edges[i] can be removed without lowering κ below kappa
// or λ below lambda. It is the fan-out primitive of the P3 link-minimality
// sweep in internal/check. A canceled sweep drains its workers, then
// returns ctx.Err() and no slice.
func EdgesRemovableCtx(ctx context.Context, g *graph.Graph, edges []graph.Edge, kappa, lambda, workers int) ([]bool, error) {
	out := make([]bool, len(edges))
	workers = graph.ClampWorkers(workers, len(edges))
	if workers == 1 {
		for i, e := range edges {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ok, err := EdgeIsRemovableCtx(ctx, g, e, kappa, lambda)
			if err != nil {
				return nil, err
			}
			out[i] = ok
		}
		return out, nil
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	mWorkersSpawned.Add(int64(workers))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer tWorkerBusy.Start().End()
			wsp := workerSpan(ctx, "flow.minimality.worker", w)
			defer wsp.End()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(edges) {
					return
				}
				ok, err := EdgeIsRemovableCtx(ctx, g, edges[i], kappa, lambda)
				if err != nil {
					return
				}
				out[i] = ok
				probeProgress(wsp, i, len(edges))
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// EdgesRemovable runs EdgeIsRemovable over a batch of edges across
// `workers` goroutines without cancellation. See EdgesRemovableCtx.
func EdgesRemovable(g *graph.Graph, edges []graph.Edge, kappa, lambda, workers int) []bool {
	out, _ := EdgesRemovableCtx(context.Background(), g, edges, kappa, lambda, workers)
	return out
}

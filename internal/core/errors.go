package core

import (
	"errors"
	"fmt"
)

// ErrNotConstructible is returned (wrapped) whenever no graph satisfying
// the requested constraint exists for the given (n,k).
var ErrNotConstructible = errors.New("no graph satisfies the constraint for this (n,k)")

// PairError describes why a (n,k) pair was rejected by a builder.
type PairError struct {
	N, K       int
	Constraint string
	Reason     string
}

func (e *PairError) Error() string {
	return fmt.Sprintf("core: %s(n=%d, k=%d): %s", e.Constraint, e.N, e.K, e.Reason)
}

// Unwrap lets callers match the sentinel with errors.Is.
func (e *PairError) Unwrap() error { return ErrNotConstructible }

func notConstructible(constraint string, n, k int, reason string) error {
	return &PairError{N: n, K: k, Constraint: constraint, Reason: reason}
}

// validatePair performs the checks common to every construction: k >= 3
// (for k <= 2 the class degenerates — the only 2-regular 2-connected graph
// is the cycle, whose diameter is linear) and n >= 2k (Lemma 4 / Lemma 8:
// below 2k no graph can satisfy either constraint).
func validatePair(constraint string, n, k int) error {
	if k < 3 {
		return notConstructible(constraint, n, k, "k must be >= 3 (log_{k-1} diameter degenerates otherwise)")
	}
	if n < 2*k {
		return notConstructible(constraint, n, k, fmt.Sprintf("n must be >= 2k = %d", 2*k))
	}
	return nil
}

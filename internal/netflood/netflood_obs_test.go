package netflood

import (
	"testing"
	"time"

	"lhg/internal/core"
	"lhg/internal/obs"
)

// withSink resets the metrics registry and enables the sink for one test,
// restoring the disabled default afterwards. Tests that use it share the
// process-global registry and therefore must not run in parallel.
func withSink(t *testing.T) {
	t.Helper()
	obs.Reset()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})
}

// waitCounters polls the registry until every listed counter holds exactly
// its expected value. Frames propagate asynchronously over real sockets,
// so tests assert the converged totals rather than a snapshot mid-flood.
func waitCounters(t *testing.T, want map[string]int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := obs.Counters()
		ok := true
		for name, v := range want {
			if got[name] != v {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters did not converge:\n got %v\nwant %v", got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBroadcastFrameAccounting pins the exact message-complexity invariants
// of a fault-free flood on a connected overlay: every node delivers once,
// every delivering node forwards on each incident link (2m frames total),
// and every frame that is not a first delivery is a suppressed duplicate —
// so duplicates = 2m - (n-1), the paper's per-broadcast overhead.
func TestBroadcastFrameAccounting(t *testing.T) {
	kt, err := core.BuildKTree(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	withSink(t)
	c, err := Start(kt.Real.Graph)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	n := int64(c.Size())
	m := int64(kt.Real.Graph.Size())
	if _, err := c.Broadcast(0, "accounted"); err != nil {
		t.Fatal(err)
	}
	waitCounters(t, map[string]int64{
		"netflood.broadcasts":     1,
		"netflood.msgs.delivered": n,
		"netflood.frames.sent":    2 * m,
		"netflood.msgs.duplicate": 2*m - (n - 1),
	})

	// Delivery latency: one hop observation per delivered message; every
	// node except the source is at least one hop out.
	h, ok := obs.Snapshot().Histograms["netflood.delivery.hops"]
	if !ok {
		t.Fatal("netflood.delivery.hops histogram not registered")
	}
	if h.Count != n {
		t.Fatalf("hop observations = %d, want %d", h.Count, n)
	}
	if h.Sum < n-1 {
		t.Fatalf("hop sum = %d, want >= %d", h.Sum, n-1)
	}
}

// TestDuplicateSuppressionCounters drives the dedup path directly: handing
// a node a message it has already seen must bump only the duplicate
// counter, never the delivery counter or the per-node log.
func TestDuplicateSuppressionCounters(t *testing.T) {
	withSink(t)
	c := StartEmpty()
	defer c.Shutdown()
	for i := 0; i < 2; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Broadcast(0, "once")
	if err != nil {
		t.Fatal(err)
	}
	waitCounters(t, map[string]int64{
		"netflood.msgs.delivered": 2,
		"netflood.msgs.duplicate": 1, // node 0 hears its own message back
	})

	c.mu.Lock()
	nd := c.nodes[1]
	c.mu.Unlock()
	for i := 0; i < 3; i++ {
		nd.handle(msg) // already seen: must be suppressed
	}
	waitCounters(t, map[string]int64{
		"netflood.msgs.delivered": 2,
		"netflood.msgs.duplicate": 4,
	})
	if got := len(c.Delivered(1)); got != 1 {
		t.Fatalf("node 1 logged %d deliveries, want 1", got)
	}
}

// TestFailureInjectionCounters floods a 3-node path with its far endpoint
// crashed: the reconfiguration counters must record the topology surgery
// and the flood counters the exact frames a crash absorbs. On 0-1-2 with
// node 2 down, node 0 forwards once, node 1 forwards twice (one frame dies
// at the crashed socket), and the only duplicate is node 0 hearing its own
// message back.
func TestFailureInjectionCounters(t *testing.T) {
	withSink(t)
	c := StartEmpty()
	defer c.Shutdown()
	for i := 0; i < 3; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(1, 2); err != nil {
		t.Fatal(err)
	}
	if !c.CrashNode(2) {
		t.Fatal("crash failed")
	}
	if c.CrashNode(2) {
		t.Fatal("double crash must report false")
	}
	if _, err := c.Broadcast(0, "survivors"); err != nil {
		t.Fatal(err)
	}
	waitCounters(t, map[string]int64{
		"netflood.nodes.added":     3,
		"netflood.links.connected": 2,
		"netflood.nodes.crashed":   1,
		"netflood.broadcasts":      1,
		"netflood.msgs.delivered":  2,
		"netflood.frames.sent":     3,
		"netflood.msgs.duplicate":  1,
	})
	if len(c.Delivered(2)) != 0 {
		t.Fatal("crashed node delivered")
	}

	// Disconnect counts once per removed link and is idempotent.
	if err := c.Disconnect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Disconnect(0, 1); err != nil {
		t.Fatal(err)
	}
	waitCounters(t, map[string]int64{"netflood.links.disconnected": 1})
}

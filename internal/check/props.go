package check

import "strings"

// Properties is a bitmask selecting which LHG properties a verification
// run computes. The zero value means "all of them" — the full report —
// so existing callers and the zero Options keep the historical behavior.
//
// Selecting a subset skips whole phases: a P4-only run never issues a
// max-flow probe, and a P1|P2-only run skips the all-sources BFS sweep.
// P5 (regularity) rides along for free — it is a degree scan — and is
// always reported.
type Properties uint8

const (
	// PropNodeConnectivity computes the exact κ(G) and P1 (κ >= k).
	PropNodeConnectivity Properties = 1 << iota
	// PropLinkConnectivity computes the exact λ(G) and P2 (λ >= k).
	PropLinkConnectivity
	// PropLinkMinimality sweeps every edge for P3. It needs κ and λ, so
	// selecting it pulls in PropNodeConnectivity and PropLinkConnectivity.
	PropLinkMinimality
	// PropDiameter runs the all-sources distance sweep for P4 and the
	// average path length.
	PropDiameter
	// PropRestrictedEdge computes the restricted edge connectivity λ′(G):
	// the smallest edge cut that disconnects G without isolating a node
	// (-1 when undefined). Opt-in — it is NOT part of PropAll, so default
	// reports are unchanged.
	PropRestrictedEdge
	// PropSuperEdge decides super edge connectivity: every minimum edge
	// cut isolates a single node. It needs λ and λ′, so selecting it pulls
	// in PropLinkConnectivity and PropRestrictedEdge. Opt-in like
	// PropRestrictedEdge.
	PropSuperEdge
)

// PropAll selects every classic property — the full report. The extended
// fault-tolerance measures (PropRestrictedEdge, PropSuperEdge) are opt-in
// additions on top, so the zero Options keeps the historical report shape.
const PropAll = PropNodeConnectivity | PropLinkConnectivity | PropLinkMinimality | PropDiameter

// Has reports whether every property in q is selected in p.
func (p Properties) Has(q Properties) bool { return p&q == q }

// normalized resolves the zero value to PropAll and adds the connectivity
// prerequisites of the minimality sweep and the super-edge decision.
func (p Properties) normalized() Properties {
	if p == 0 {
		return PropAll
	}
	if p.Has(PropLinkMinimality) {
		p |= PropNodeConnectivity | PropLinkConnectivity
	}
	if p.Has(PropSuperEdge) {
		p |= PropRestrictedEdge | PropLinkConnectivity
	}
	return p
}

// String renders the selection as "P1|P2|P3|P4" (or "none").
func (p Properties) String() string {
	var parts []string
	if p.Has(PropNodeConnectivity) {
		parts = append(parts, "P1")
	}
	if p.Has(PropLinkConnectivity) {
		parts = append(parts, "P2")
	}
	if p.Has(PropLinkMinimality) {
		parts = append(parts, "P3")
	}
	if p.Has(PropDiameter) {
		parts = append(parts, "P4")
	}
	if p.Has(PropRestrictedEdge) {
		parts = append(parts, "P2r")
	}
	if p.Has(PropSuperEdge) {
		parts = append(parts, "P2s")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// Sparsify selects the sparse-certificate policy for the κ/λ probe phases
// (see SparseProbeView). The zero value is the automatic fast path, so the
// zero Options keeps sparsification on by default.
type Sparsify uint8

const (
	// SparsifyAuto probes a Nagamochi–Ibaraki certificate instead of the
	// full edge set whenever the graph is dense enough for the certificate
	// to pay for itself (m > SparsifyCutoff·k·n and the certificate is
	// strictly smaller than the graph). This is the default.
	SparsifyAuto Sparsify = iota
	// SparsifyOff always probes the full edge set — the escape hatch and
	// the reference side of the differential tests.
	SparsifyOff
	// SparsifyAlways probes the certificate regardless of density. Meant
	// for tests that must exercise the sparsified path on small inputs;
	// production callers should stay on SparsifyAuto.
	SparsifyAlways
)

func (s Sparsify) String() string {
	switch s {
	case SparsifyAuto:
		return "auto"
	case SparsifyOff:
		return "off"
	case SparsifyAlways:
		return "always"
	}
	return "sparsify(?)"
}

// Prescreen selects the Monte Carlo cut-prescreen policy for the κ/λ probe
// phases (see prescreenHints): seeded Karger contraction rounds that find
// real (certified) small cuts before the exact sweeps run. The prescreen
// only tightens early-exit limits and reorders probes — the values and
// verdicts it feeds into stay exact — so, like Sparsify, it never changes
// any reported field.
type Prescreen uint8

const (
	// PrescreenAuto runs the contraction rounds when the graph is large
	// enough for them to pay for themselves (n >= PrescreenCutoff). This is
	// the default.
	PrescreenAuto Prescreen = iota
	// PrescreenOff skips the prescreen — the escape hatch and the reference
	// side of the differential tests.
	PrescreenOff
	// PrescreenAlways runs the contraction rounds regardless of size. Meant
	// for tests that must exercise the prescreened path on small inputs.
	PrescreenAlways
)

func (p Prescreen) String() string {
	switch p {
	case PrescreenAuto:
		return "auto"
	case PrescreenOff:
		return "off"
	case PrescreenAlways:
		return "always"
	}
	return "prescreen(?)"
}

// Options configures a verification run. The zero value — all properties,
// GOMAXPROCS workers, automatic sparsification and prescreening — is the
// right default for interactive and service use; set Workers to 1 for the
// deterministic-serial path (the report is bit-identical either way).
type Options struct {
	// Workers is the goroutine budget for the probe fan-out; <= 0 means
	// GOMAXPROCS, 1 runs serially.
	Workers int
	// Props selects the properties to compute; zero means PropAll.
	Props Properties
	// Sparsify selects the sparse-certificate policy for the κ/λ probes.
	// The zero value (SparsifyAuto) enables the fast path on dense graphs;
	// it never changes any reported value or verdict.
	Sparsify Sparsify
	// Prescreen selects the Monte Carlo cut-prescreen policy for the κ/λ
	// probes. The zero value (PrescreenAuto) enables it on large graphs; it
	// never changes any reported value or verdict.
	Prescreen Prescreen
}

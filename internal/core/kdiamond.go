package core

// K-DIAMOND construction (Baldoni et al., Definition 2 and Theorem 5).
//
// K-DIAMOND generalizes K-TREE with two changes: a leaf position may be
// *unshared* — realized as k clique nodes, one attached to each tree copy —
// and nodes just above the leaves may carry at most k-2 (not 2k-3) added
// leaves. Every member of an unshared clique has degree exactly k (k-1
// clique edges plus its tree edge), which is what lets K-DIAMOND reach
// k-regular instances at twice the n-density of K-TREE (Theorems 6 and 7).
//
// Node accounting: with I internal positions, U unshared leaves and A added
// leaves,
//
//	n = 2k + (I-1)·2(k-1) + U·(k-1) + A.
//
// The canonical builder decomposes n-2k uniquely as α(k-1) + j with
// j ∈ {0..k-2}, then takes I-1 = ⌊α/2⌋ conversions and U = α mod 2: an even
// α spends its budget on conversions, an odd α pays the residual k-1 nodes
// by making the youngest leaf unshared. The result is k-regular exactly
// when j = 0 (Theorem 6).

// KDiamond holds a compiled K-DIAMOND LHG together with its blueprint and
// the decomposition parameters of the pair (n,k).
type KDiamond struct {
	N, K     int
	Alpha    int // (n-2k) div (k-1)
	J        int // added leaves, 0..k-2
	Unshared int // number of unshared leaf positions (0 or 1 canonically)
	Blue     *Blueprint
	Real     *Realization
}

// BuildKDiamond constructs the canonical K-DIAMOND LHG for the pair (n,k).
// It fails with ErrNotConstructible iff EX_K-DIAMOND(n,k) is false, i.e.
// unless k >= 3 and n >= 2k (Theorem 5; equivalent to K-TREE, Corollary 1).
func BuildKDiamond(n, k int) (*KDiamond, error) {
	if err := validatePair("K-DIAMOND", n, k); err != nil {
		return nil, err
	}
	rem := n - 2*k
	alpha := rem / (k - 1)
	j := rem % (k - 1)
	conversions := alpha / 2
	unshared := alpha % 2

	s := newShape(k)
	for c := 0; c < conversions; c++ {
		if err := s.convert(); err != nil {
			return nil, err
		}
	}
	if unshared == 1 {
		if err := s.markLastLeafUnshared(); err != nil {
			return nil, err
		}
	}
	host := s.aboveLeafNode()
	for a := 0; a < j; a++ {
		s.addLeaf(host, true)
	}

	real, err := s.b.Compile()
	if err != nil {
		return nil, err
	}
	return &KDiamond{
		N: n, K: k,
		Alpha: alpha, J: j, Unshared: unshared,
		Blue: s.b, Real: real,
	}, nil
}

// ExistsKDiamond is the closed-form characteristic function
// EX_K-DIAMOND(n,k) (Theorem 5): true iff n >= 2k, exactly like K-TREE
// (Corollary 1).
func ExistsKDiamond(n, k int) bool { return k >= 3 && n >= 2*k }

// RegularKDiamond is the closed-form characteristic function
// REG_K-DIAMOND(n,k) (Theorem 6): a k-regular K-DIAMOND LHG exists iff
// n = 2k + α(k-1). Compare RegularKTree, which needs an even α: the odd-α
// pairs are regular under K-DIAMOND only (Theorem 7), and there are
// infinitely many of them.
func RegularKDiamond(n, k int) bool {
	return ExistsKDiamond(n, k) && (n-2*k)%(k-1) == 0
}

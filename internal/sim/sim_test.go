package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times in 64 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := NewRNG(123)
	const buckets, draws = 8, 80000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d draws, want about %d", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw % 50)
		p := NewRNG(uint64(seed)).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := NewRNG(5)
	s := r.Sample(20, 7)
	if len(s) != 7 {
		t.Fatalf("Sample returned %d values, want 7", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Sample = %v invalid", s)
		}
		seen[v] = true
	}
}

func TestSamplePanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) must panic")
		}
	}()
	NewRNG(1).Sample(3, 4)
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(77)
	child := parent.Split()
	// The child stream must not replay the parent stream.
	p0 := parent.Uint64()
	c0 := child.Uint64()
	if p0 == c0 {
		t.Fatal("split stream replays parent")
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	var got []int
	q.At(5, func() { got = append(got, 5) })
	q.At(1, func() { got = append(got, 1) })
	q.At(3, func() { got = append(got, 3) })
	q.Run(-1)
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if q.Now() != 5 {
		t.Fatalf("Now = %d, want 5", q.Now())
	}
}

func TestEventQueueStableTies(t *testing.T) {
	var q EventQueue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(7, func() { got = append(got, i) })
	}
	q.Run(-1)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order %v not FIFO", got)
		}
	}
}

func TestEventQueueAfterAndCascade(t *testing.T) {
	var q EventQueue
	var times []int64
	q.After(2, func() {
		times = append(times, q.Now())
		q.After(3, func() { times = append(times, q.Now()) })
	})
	q.Run(-1)
	if len(times) != 2 || times[0] != 2 || times[1] != 5 {
		t.Fatalf("times = %v, want [2 5]", times)
	}
}

func TestEventQueuePastSchedulingClamps(t *testing.T) {
	var q EventQueue
	fired := int64(-1)
	q.At(10, func() {
		q.At(3, func() { fired = q.Now() }) // in the past
	})
	q.Run(-1)
	if fired != 10 {
		t.Fatalf("past event fired at %d, want clamped to 10", fired)
	}
}

func TestEventQueueRunBudget(t *testing.T) {
	var q EventQueue
	count := 0
	for i := 0; i < 10; i++ {
		q.At(int64(i), func() { count++ })
	}
	if n := q.Run(4); n != 4 || count != 4 {
		t.Fatalf("Run(4) executed %d/%d, want 4", n, count)
	}
	if q.Len() != 6 {
		t.Fatalf("Len = %d, want 6", q.Len())
	}
}

func TestEventQueueRunUntil(t *testing.T) {
	var q EventQueue
	count := 0
	for i := 1; i <= 10; i++ {
		q.At(int64(i), func() { count++ })
	}
	if n := q.RunUntil(5); n != 5 || count != 5 {
		t.Fatalf("RunUntil(5) executed %d, want 5", n)
	}
	if q.Now() != 5 {
		t.Fatalf("Now = %d, want 5", q.Now())
	}
	q.RunUntil(20)
	if count != 10 || q.Now() != 20 {
		t.Fatalf("count=%d now=%d, want 10 and 20", count, q.Now())
	}
}

func TestEventQueueStepEmpty(t *testing.T) {
	var q EventQueue
	if q.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}

// Package spectral estimates the spectral properties that make a topology
// a good flooding substrate. The related work both papers cite ([12] Law &
// Siu; gossip analyses) frames dissemination quality through the spectral
// gap: for a k-regular graph with adjacency eigenvalues
// k = λ1 >= λ2 >= ... >= λn, the gap k - λ2 controls expansion and mixing.
// Classic Harary graphs are ring-like and their gap vanishes as Θ(1/n²);
// LHGs are tree-like rather than true expanders, but their gap decays a
// full polynomial order slower (≈Θ(1/n), measured in experiment E18) — the
// spectral face of the linear-vs-logarithmic diameter results.
//
// Eigenvalues are estimated with power iteration and orthogonal deflation
// (standard library only, deterministic seeding), accurate to the
// tolerances the experiments assert.
package spectral

import (
	"fmt"
	"math"

	"lhg/internal/graph"
	"lhg/internal/sim"
)

// Options tune the estimator. Zero values select sensible defaults.
type Options struct {
	Iterations int    // power-iteration steps (default 2000)
	Seed       uint64 // RNG seed for the start vectors (default 1)
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// SecondEigenvalue estimates λ2, the second-largest adjacency eigenvalue by
// *value* (not modulus), of a connected k-regular graph. For regular graphs
// the top eigenvector is the all-ones vector with eigenvalue k, so λ2 is
// obtained by power iteration on the shifted matrix A + kI restricted to
// the complement of the all-ones vector: the shift makes every eigenvalue
// of interest non-negative, so the iteration converges to λ2 + k.
func SecondEigenvalue(g *graph.Graph, opts Options) (float64, error) {
	n := g.Order()
	if n < 2 {
		return 0, fmt.Errorf("spectral: need at least 2 nodes")
	}
	deg, _ := g.MinDegree()
	maxDeg, _ := g.MaxDegree()
	if deg != maxDeg {
		return 0, fmt.Errorf("spectral: graph is not regular (degrees %d..%d)", deg, maxDeg)
	}
	if !g.Connected() {
		return 0, fmt.Errorf("spectral: graph is disconnected")
	}
	o := opts.withDefaults()
	k := float64(deg)

	rng := sim.NewRNG(o.Seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() - 0.5
	}
	deflateOnes(v)
	normalize(v)

	next := make([]float64, n)
	var lambda float64
	for it := 0; it < o.Iterations; it++ {
		// next = (A + kI) v
		for i := range next {
			next[i] = k * v[i]
		}
		for u := 0; u < n; u++ {
			vu := v[u]
			g.EachNeighbor(u, func(w int) {
				next[w] += vu
			})
		}
		deflateOnes(next)
		lambda = norm(next)
		if lambda == 0 {
			return -k, nil // graph is complete-like on the complement
		}
		for i := range next {
			next[i] /= lambda
		}
		v, next = next, v
	}
	return lambda - k, nil
}

// SpectralGap returns k - λ2 for a connected k-regular graph — the
// expansion measure compared across topologies in experiment E18.
func SpectralGap(g *graph.Graph, opts Options) (float64, error) {
	deg, _ := g.MinDegree()
	l2, err := SecondEigenvalue(g, opts)
	if err != nil {
		return 0, err
	}
	return float64(deg) - l2, nil
}

// RingGapBound returns the asymptotic spectral gap of the circulant
// C_n(1..r): k - λ2 = 2·Σ_{d=1..r} (1 - cos(2πd/n)) ≈ Θ(1/n²) for fixed r.
// It documents the baseline the LHGs beat.
func RingGapBound(n, k int) float64 {
	r := k / 2
	gap := 0.0
	for d := 1; d <= r; d++ {
		gap += 2 * (1 - math.Cos(2*math.Pi*float64(d)/float64(n)))
	}
	return gap
}

// deflateOnes projects v onto the complement of the all-ones vector.
func deflateOnes(v []float64) {
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	nv := norm(v)
	if nv == 0 {
		return
	}
	for i := range v {
		v[i] /= nv
	}
}

package core

import (
	"fmt"

	"lhg/internal/graph"
)

// KDiamondGrower maintains a K-DIAMOND LHG incrementally (the constructive
// procedure of the Theorem 5 proof). Node ids are stable. Every k-1
// admitted nodes the parameter α of the canonical decomposition
// n = 2k + α(k-1) + j advances by one, alternating between forming an
// unshared clique (Part 2) and dissolving it into a new internal level
// (Part 3) — so the graph is k-regular after exactly the sizes Theorem 6
// predicts.
type KDiamondGrower struct {
	k     int
	g     *graph.Builder
	queue []pendingLeaf // base shared leaves in creation order
	added []int         // waiting added leaves (at most k-2)
	// group is the pending unshared clique: group[i] is the member holding
	// the single link into tree copy i. Empty when α is even.
	group []int
}

// NewKDiamondGrower starts from the minimal graph (2k, k), identical to the
// K-TREE minimum: root copies 0..k-1, shared leaves k..2k-1.
func NewKDiamondGrower(k int) (*KDiamondGrower, error) {
	if k < 3 {
		return nil, notConstructible("K-DIAMOND", 2*k, k, "k must be >= 3")
	}
	g := graph.NewBuilder(2 * k)
	roots := make([]int, k)
	for i := range roots {
		roots[i] = i
	}
	gr := &KDiamondGrower{k: k, g: g}
	for leaf := k; leaf < 2*k; leaf++ {
		for _, r := range roots {
			g.MustAddEdge(r, leaf)
		}
		gr.queue = append(gr.queue, pendingLeaf{node: leaf, parents: roots})
	}
	return gr, nil
}

// N returns the current number of nodes.
func (gr *KDiamondGrower) N() int { return gr.g.Order() }

// K returns the connectivity target.
func (gr *KDiamondGrower) K() int { return gr.k }

// Graph returns the current topology as a frozen, immutable view. The
// freeze is cached between growth steps, so repeated calls are free.
func (gr *KDiamondGrower) Graph() *graph.Graph { return gr.g.Freeze() }

// Snapshot is Graph under its historical name: the frozen view needs no
// copy-vs-live distinction anymore.
func (gr *KDiamondGrower) Snapshot() *graph.Graph { return gr.g.Freeze() }

// Grow admits one node and returns the edge surgery performed, in
// canonical (sorted) form.
func (gr *KDiamondGrower) Grow() (EdgeDelta, error) {
	var d EdgeDelta
	var err error
	switch {
	case len(gr.added) < gr.k-2:
		d, err = gr.growAddedLeaf()
	case len(gr.group) == 0:
		d, err = gr.formGroup()
	default:
		d, err = gr.dissolveGroup()
	}
	d.Normalize()
	return d, err
}

// growAddedLeaf is Part 1: the joiner hangs off the node just above the
// leaves in every tree copy (at most k-2 such leaves wait at a time).
func (gr *KDiamondGrower) growAddedLeaf() (EdgeDelta, error) {
	if len(gr.queue) == 0 {
		return EdgeDelta{}, fmt.Errorf("core: grower has no pending leaves")
	}
	var d EdgeDelta
	host := gr.queue[0].parents
	id := gr.g.AddNode()
	for _, p := range host {
		gr.g.MustAddEdge(p, id)
		d.Added = append(d.Added, edge(p, id))
	}
	gr.added = append(gr.added, id)
	return d, nil
}

// formGroup is Part 2 (α even → odd): the k-2 waiting added leaves, the
// oldest base leaf and the joiner become an unshared leaf — a k-clique in
// which member i keeps exactly one link, into tree copy i.
func (gr *KDiamondGrower) formGroup() (EdgeDelta, error) {
	k := gr.k
	if len(gr.queue) == 0 {
		return EdgeDelta{}, fmt.Errorf("core: grower has no pending leaves")
	}
	var d EdgeDelta
	front := gr.queue[0]
	gr.queue = gr.queue[1:]
	s, parents := front.node, front.parents

	// Members: the oldest base leaf (slot 0), the k-2 waiting added leaves
	// (slots 1..k-2) and the joiner (slot k-1). Member i keeps only its
	// link to parents[i] (rule 4b); s and the added leaves currently link
	// to all k parents, the joiner to none yet.
	members := make([]int, k)
	members[0] = s
	copy(members[1:], gr.added)
	joiner := gr.g.AddNode()
	members[k-1] = joiner
	for i, m := range members {
		if m == joiner {
			gr.g.MustAddEdge(m, parents[i])
			d.Added = append(d.Added, edge(m, parents[i]))
			continue
		}
		for j := 0; j < k; j++ {
			if j != i {
				gr.removeEdge(&d, m, parents[j])
			}
		}
	}
	// Clique among the members (rule 4a).
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			gr.g.MustAddEdge(members[i], members[j])
			d.Added = append(d.Added, edge(members[i], members[j]))
		}
	}
	gr.group = members
	gr.added = gr.added[:0]
	return d, nil
}

// dissolveGroup is Part 3 (α odd → even): the pending clique becomes the k
// copies of a new internal node — each member already holds exactly one
// tree link, which becomes its parent link — and the k-2 waiting added
// leaves plus the joiner become its k-1 shared leaf children.
func (gr *KDiamondGrower) dissolveGroup() (EdgeDelta, error) {
	k := gr.k
	members := gr.group
	var d EdgeDelta
	// Drop the clique edges: the members turn into plain internal copies.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			gr.removeEdge(&d, members[i], members[j])
		}
	}
	// Children: rewire each waiting added leaf from its current host onto
	// the member set, then add the joiner.
	children := make([]int, 0, k-1)
	for _, c := range gr.added {
		for _, nb := range gr.g.Neighbors(c) {
			gr.removeEdge(&d, c, nb)
		}
		children = append(children, c)
	}
	children = append(children, gr.g.AddNode())
	for _, child := range children {
		for _, m := range members {
			gr.g.MustAddEdge(m, child)
			d.Added = append(d.Added, edge(m, child))
		}
		gr.queue = append(gr.queue, pendingLeaf{node: child, parents: members})
	}
	gr.group = nil
	gr.added = gr.added[:0]
	return d, nil
}

func (gr *KDiamondGrower) removeEdge(d *EdgeDelta, u, v int) {
	if gr.g.RemoveEdge(u, v) {
		d.Removed = append(d.Removed, edge(u, v))
	}
}

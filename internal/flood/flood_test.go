package flood

import (
	"testing"
	"testing/quick"

	"lhg/internal/graph"
	"lhg/internal/sim"
)

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(v, (v+1)%n)
	}
	return b.Freeze()
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.Freeze()
}

func star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, v)
	}
	return b.Freeze()
}

func randomGraph(n int, seed uint64) *graph.Graph {
	b := graph.NewBuilder(n)
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if next()%3 == 0 {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Freeze()
}

func TestRunFaultFreeCycle(t *testing.T) {
	g := cycle(10)
	res, err := Run(g, 0, Failures{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Reached != 10 {
		t.Fatalf("cycle flood incomplete: %s", res)
	}
	if res.Rounds != 5 {
		t.Fatalf("C10 flood rounds = %d, want 5 (eccentricity)", res.Rounds)
	}
	// Every informed node forwards on both its links exactly once: 2n
	// messages total.
	if res.Messages != 20 {
		t.Fatalf("C10 flood messages = %d, want 20", res.Messages)
	}
}

func TestRunFirstHeardEqualsBFS(t *testing.T) {
	g := randomGraph(25, 99)
	res, err := Run(g, 3, Failures{})
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFSFrom(3)
	for v, d := range dist {
		if res.FirstHeard[v] != d {
			t.Fatalf("FirstHeard[%d] = %d, BFS = %d", v, res.FirstHeard[v], d)
		}
	}
}

func TestRunArgumentErrors(t *testing.T) {
	g := cycle(5)
	if _, err := Run(g, -1, Failures{}); err == nil {
		t.Fatal("negative source must error")
	}
	if _, err := Run(g, 5, Failures{}); err == nil {
		t.Fatal("out-of-range source must error")
	}
	if _, err := Run(g, 0, Failures{Nodes: []int{0}}); err == nil {
		t.Fatal("crashed source must error")
	}
	if _, err := Run(g, 0, Failures{Nodes: []int{9}}); err == nil {
		t.Fatal("out-of-range crashed node must error")
	}
}

func TestRunNodeFailureSplitsCycle(t *testing.T) {
	// Crashing two opposite nodes of a cycle severs it: coverage drops.
	g := cycle(10)
	res, err := Run(g, 0, Failures{Nodes: []int{3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatalf("flood should be partitioned: %s", res)
	}
	if res.Alive != 8 {
		t.Fatalf("Alive = %d, want 8", res.Alive)
	}
	// Nodes 1,2 and 8,9 remain reachable; 4,5,6 are cut off.
	wantReached := 5 // 0,1,2,8,9
	if res.Reached != wantReached {
		t.Fatalf("Reached = %d, want %d", res.Reached, wantReached)
	}
	for _, v := range []int{4, 5, 6} {
		if res.FirstHeard[v] != -1 {
			t.Fatalf("node %d should be unreachable", v)
		}
	}
}

func TestRunLinkFailures(t *testing.T) {
	// Cutting both links of node 1 in a triangle isolates it.
	g := cycle(3)
	res, err := Run(g, 0, Failures{Links: []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("node 1 should be unreachable")
	}
	if res.Reached != 2 || res.Alive != 3 {
		t.Fatalf("Reached=%d Alive=%d, want 2/3", res.Reached, res.Alive)
	}
}

func TestRunLinkFailureNormalization(t *testing.T) {
	// Link failures must apply regardless of endpoint order.
	g := cycle(3)
	resA, err := Run(g, 0, Failures{Links: []graph.Edge{{U: 1, V: 0}, {U: 2, V: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if resA.Reached != 2 {
		t.Fatalf("reversed-order link failures not applied: %s", resA)
	}
}

func TestRunStar(t *testing.T) {
	g := star(8)
	res, err := Run(g, 0, Failures{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 || !res.Complete {
		t.Fatalf("star flood: %s", res)
	}
	// Hub sends 7, every leaf echoes back once: 14 messages.
	if res.Messages != 14 {
		t.Fatalf("star messages = %d, want 14", res.Messages)
	}
	// From a leaf it takes 2 rounds.
	res, err = Run(g, 3, Failures{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Fatalf("leaf-sourced star flood rounds = %d, want 2", res.Rounds)
	}
}

func TestRunSingletonGraph(t *testing.T) {
	g := graph.New(1)
	res, err := Run(g, 0, Failures{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Rounds != 0 || res.Messages != 0 {
		t.Fatalf("singleton flood: %s", res)
	}
}

func TestPropertyFloodMatchesReachability(t *testing.T) {
	// Whatever the failures, the flood reaches exactly the nodes reachable
	// in the surviving subgraph, in exactly BFS-distance rounds.
	f := func(seed uint32, nRaw, fRaw uint8) bool {
		n := int(nRaw%15) + 3
		g := randomGraph(n, uint64(seed))
		rng := sim.NewRNG(uint64(seed) * 31)
		fails, err := RandomNodeFailures(g, 0, int(fRaw)%(n-1), rng)
		if err != nil {
			return false
		}
		res, err := Run(g, 0, fails)
		if err != nil {
			return false
		}
		// Build the survivor subgraph and BFS it.
		crashed := make([]bool, n)
		for _, v := range fails.Nodes {
			crashed[v] = true
		}
		var alive []graph.Edge
		for _, e := range g.Edges() {
			if !crashed[e.U] && !crashed[e.V] {
				alive = append(alive, e)
			}
		}
		sub := graph.MustFromEdges(n, alive)
		dist := sub.BFSFrom(0)
		for v := 0; v < n; v++ {
			want := dist[v]
			if crashed[v] {
				want = -1
			}
			if res.FirstHeard[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMessageCountBound(t *testing.T) {
	// Each informed node forwards once per alive incident link, so the
	// message count never exceeds 2m and equals the sum of the alive
	// degrees of informed nodes under no link failures.
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		g := randomGraph(n, uint64(seed))
		res, err := Run(g, 0, Failures{})
		if err != nil {
			return false
		}
		want := 0
		for v := 0; v < n; v++ {
			if res.FirstHeard[v] >= 0 {
				want += g.Degree(v)
			}
		}
		return res.Messages == want && res.Messages <= 2*g.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

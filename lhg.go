// Package lhg builds, verifies and simulates Logarithmic Harary Graphs
// (LHGs): n-node topologies that tolerate k-1 arbitrary node or link
// failures with the minimum (or near-minimum) number of links while keeping
// the diameter — and therefore flooding latency — logarithmic in n.
//
// The package implements four constructions:
//
//   - Harary:   the classic Harary graph H(k,n) (1962). Minimum links
//     (⌈kn/2⌉) and k-connectivity, but linear diameter. The baseline.
//   - JD:       the Jenkins–Demers operational rule (ICDCS 2001). The first
//     logarithmic-diameter Harary family, but unbuildable for infinitely
//     many pairs (n,k).
//   - KTree:    the K-TREE graph constraint (Baldoni et al.). Exists for
//     every n >= 2k; k-regular when n = 2k + 2α(k-1).
//   - KDiamond: the K-DIAMOND graph constraint (Baldoni et al.). Exists for
//     every n >= 2k and is k-regular for twice as many sizes,
//     n = 2k + α(k-1).
//
// Quick start:
//
//	ctx := context.Background()
//	g, err := lhg.Build(ctx, lhg.KDiamond, 50, 4)
//	report, err := lhg.Verify(ctx, g, 4)     // proves P1..P4 via max-flow
//	res, err := lhg.Flood(ctx, g, 0, lhg.WithFailures(lhg.Failures{Nodes: []int{3, 7, 9}}))
//
// Every long-running entrypoint is context-first and options-based:
// cancel the context (or let its deadline fire) and the verification
// max-flow campaign, the flood simulation or the build stops promptly;
// pass functional options (WithWorkers, WithSeed, WithFailures,
// WithProperties) instead of reaching for signature variants. For serving
// topologies over HTTP with caching and request coalescing, see
// cmd/lhgd.
//
// See the examples directory for complete programs and cmd/experiments for
// the reproduction of every result in the paper.
package lhg

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"lhg/internal/ampguard"
	"lhg/internal/check"
	"lhg/internal/core"
	"lhg/internal/flood"
	"lhg/internal/graph"
	"lhg/internal/harary"
	"lhg/internal/member"
	"lhg/internal/obs"
	"lhg/internal/obs/trace"
	"lhg/internal/overlay"
	"lhg/internal/sim"
)

// Re-exported core types, so that typical use needs only this package.
type (
	// Graph is an undirected simple graph over nodes 0..n-1.
	Graph = graph.Graph
	// Edge is an undirected edge with U < V.
	Edge = graph.Edge
	// Report is the outcome of verifying the LHG properties.
	Report = check.Report
	// ScreenReport is the outcome of the certified scale screen.
	ScreenReport = check.ScreenReport
	// ScreenOptions configures a scale-screen run.
	ScreenOptions = check.ScreenOptions
	// Failures selects crashed nodes and failed links for a flood.
	Failures = flood.Failures
	// FloodResult reports rounds, messages and coverage of one flood.
	FloodResult = flood.Result
	// Builder is the mutable accumulator for graphs: add and remove edges
	// freely, then Freeze into an immutable Graph that is safe to share
	// across goroutines.
	Builder = graph.Builder
)

// NewBuilder returns an empty mutable builder on n nodes. Call Freeze to
// obtain the immutable, shareable Graph.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges bulk-loads a frozen graph on n nodes from an edge list in one
// pass (duplicates are coalesced). It is the fastest path from external
// data — e.g. decoded JSON — to a usable Graph.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// Constraint selects a topology construction.
type Constraint int

const (
	// Harary is the classic linear-diameter baseline H(k,n).
	Harary Constraint = iota + 1
	// JD is the Jenkins–Demers LHG rule (ICDCS 2001).
	JD
	// KTree is the K-TREE graph constraint.
	KTree
	// KDiamond is the K-DIAMOND graph constraint.
	KDiamond
)

func (c Constraint) String() string {
	switch c {
	case Harary:
		return "harary"
	case JD:
		return "jd"
	case KTree:
		return "ktree"
	case KDiamond:
		return "kdiamond"
	}
	return fmt.Sprintf("constraint(%d)", int(c))
}

// allConstraints is the canonical presentation order, shared by
// Constraints and ParseConstraint so iteration order is deterministic.
var allConstraints = [...]Constraint{Harary, JD, KTree, KDiamond}

// ParseConstraint maps a name ("harary", "jd", "ktree", "kdiamond") to its
// Constraint. It scans the constraints in presentation order, so behavior
// is deterministic and the parse allocates nothing.
func ParseConstraint(s string) (Constraint, error) {
	for _, c := range allConstraints {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("lhg: unknown constraint %q (want harary, jd, ktree or kdiamond)", s)
}

// Constraints lists every supported constraint in presentation order. The
// returned slice is the caller's to keep.
func Constraints() []Constraint { return append([]Constraint(nil), allConstraints[:]...) }

// ErrNotConstructible is returned (wrapped) by Build when no graph
// satisfying the constraint exists for the pair (n,k). Match it with
// errors.Is.
var ErrNotConstructible = core.ErrNotConstructible

// Properties selects which LHG properties Verify computes; combine the
// Prop* constants with |. The zero value means all of them.
type Properties = check.Properties

// Property selectors for Verify's WithProperties option.
const (
	// PropNodeConnectivity computes the exact κ(G) and P1 (κ >= k).
	PropNodeConnectivity = check.PropNodeConnectivity
	// PropLinkConnectivity computes the exact λ(G) and P2 (λ >= k).
	PropLinkConnectivity = check.PropLinkConnectivity
	// PropLinkMinimality sweeps every edge for P3 (implies P1 and P2).
	PropLinkMinimality = check.PropLinkMinimality
	// PropDiameter runs the distance sweep for P4 and the avg path length.
	PropDiameter = check.PropDiameter
	// PropRestrictedEdge computes the restricted edge connectivity λ′(G)
	// (smallest cut that disconnects without isolating a node; -1 when
	// undefined). Opt-in: not part of PropAll.
	PropRestrictedEdge = check.PropRestrictedEdge
	// PropSuperEdge decides super edge connectivity — every minimum edge
	// cut isolates a single node (implies P2 and PropRestrictedEdge).
	// Opt-in: not part of PropAll.
	PropSuperEdge = check.PropSuperEdge
	// PropAll selects every classic property — the full report.
	PropAll = check.PropAll
)

// options collects the knobs of the context-first entrypoints. Each
// entrypoint reads the subset that applies to it and ignores the rest, so
// a caller can build one option list and reuse it across Build, Verify
// and Flood.
type options struct {
	workers   int
	seed      uint64
	hasSeed   bool
	failures  Failures
	props     Properties
	sparsify  check.Sparsify
	prescreen check.Prescreen
}

// Option configures Build, Verify or Flood. Options are applied in order;
// later options win.
type Option func(*options)

// WithWorkers sets the goroutine budget for the probe fan-out of Verify
// (and IsLHG). n <= 0 means GOMAXPROCS — the default — and 1 forces the
// serial path. The result is deterministic regardless of the budget.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithSeed makes Build sample a random (seeded, reproducible) witness of
// the constraint instead of the canonical graph. Only the K-TREE and
// K-DIAMOND constraints admit variants; Build returns an error for the
// others. The same seed always yields the same graph.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed, o.hasSeed = seed, true }
}

// WithFailures sets the fault environment — crashed nodes and failed
// links — of a Flood run. The default is the failure-free environment.
func WithFailures(f Failures) Option { return func(o *options) { o.failures = f } }

// WithProperties restricts Verify to a subset of the LHG properties. The
// default (PropAll) computes the full report; a restricted run skips the
// phases the selection does not need — e.g. WithProperties(PropDiameter)
// never issues a max-flow probe.
func WithProperties(p Properties) Option { return func(o *options) { o.props = p } }

// WithSparsify toggles the sparse-certificate fast path of Verify and
// IsLHG. It is on by default: on graphs dense enough that the certificate
// pays for itself (m > check.SparsifyCutoff·k·n) the κ/λ max-flow probes
// run on a Nagamochi–Ibaraki certificate of at most (δ+1)(n−1) edges
// instead of the full edge set. The report is bit-identical either way —
// the fast path changes no value and no verdict — so WithSparsify(false)
// is purely an escape hatch (debugging, benchmarking the full pipeline).
func WithSparsify(enabled bool) Option {
	return func(o *options) {
		if enabled {
			o.sparsify = check.SparsifyAuto
		} else {
			o.sparsify = check.SparsifyOff
		}
	}
}

// WithPrescreen toggles the Monte Carlo cut prescreen of Verify and IsLHG.
// It is on by default: on large graphs (n >= check.PrescreenCutoff) a few
// seeded Karger contraction rounds run before the exact κ/λ sweeps and feed
// them a certified cut upper bound plus a critical-node probe ordering.
// Both only tighten early-exit limits and reorder probes, so the report is
// bit-identical either way — WithPrescreen(false) is purely an escape
// hatch, mirroring WithSparsify.
func WithPrescreen(enabled bool) Option {
	return func(o *options) {
		if enabled {
			o.prescreen = check.PrescreenAuto
		} else {
			o.prescreen = check.PrescreenOff
		}
	}
}

func applyOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Build constructs a graph of the given constraint for the pair (n,k):
// the canonical graph by default, or a seeded random witness under
// WithSeed (K-TREE and K-DIAMOND only). ctx cancellation is honored
// between construction stages; Build never returns a partial graph.
func Build(ctx context.Context, c Constraint, n, k int, opts ...Option) (*Graph, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, sp := trace.StartRoot(ctx, "lhg.Build")
	if sp.Live() {
		sp.SetAttr(trace.Str("constraint", c.String()))
		sp.SetAttr(trace.Int("n", int64(n)))
		sp.SetAttr(trace.Int("k", int64(k)))
	}
	defer sp.End()
	o := applyOptions(opts)
	if o.hasSeed {
		return buildVariant(c, n, k, o.seed)
	}
	g, err := buildCanonical(c, n, k)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

func buildCanonical(c Constraint, n, k int) (*Graph, error) {
	switch c {
	case Harary:
		return harary.Build(n, k)
	case JD:
		jd, err := core.BuildJD(n, k)
		if err != nil {
			return nil, err
		}
		return jd.Real.Graph, nil
	case KTree:
		kt, err := core.BuildKTree(n, k)
		if err != nil {
			return nil, err
		}
		return kt.Real.Graph, nil
	case KDiamond:
		kd, err := core.BuildKDiamond(n, k)
		if err != nil {
			return nil, err
		}
		return kd.Real.Graph, nil
	default:
		return nil, fmt.Errorf("lhg: unknown constraint %v", c)
	}
}

func buildVariant(c Constraint, n, k int, seed uint64) (*Graph, error) {
	rng := sim.NewRNG(seed)
	switch c {
	case KTree:
		kt, err := core.BuildKTreeVariant(n, k, rng)
		if err != nil {
			return nil, err
		}
		return kt.Real.Graph, nil
	case KDiamond:
		kd, err := core.BuildKDiamondVariant(n, k, rng)
		if err != nil {
			return nil, err
		}
		return kd.Real.Graph, nil
	default:
		return nil, fmt.Errorf("lhg: constraint %v has no variant builder (use ktree or kdiamond)", c)
	}
}

// Labeled builds the graph together with human-readable node labels
// (R<i> root copies, N<p>.<i> internal copies, L<p> shared leaves,
// U<p>.<i> unshared clique members) for DOT rendering. The Harary baseline
// has no tree structure, so its labels are the numeric ids.
func Labeled(c Constraint, n, k int) (*Graph, map[int]string, error) {
	switch c {
	case Harary:
		g, err := harary.Build(n, k)
		return g, nil, err
	case JD:
		jd, err := core.BuildJD(n, k)
		if err != nil {
			return nil, nil, err
		}
		return jd.Real.Graph, jd.Real.Labels, nil
	case KTree:
		kt, err := core.BuildKTree(n, k)
		if err != nil {
			return nil, nil, err
		}
		return kt.Real.Graph, kt.Real.Labels, nil
	case KDiamond:
		kd, err := core.BuildKDiamond(n, k)
		if err != nil {
			return nil, nil, err
		}
		return kd.Real.Graph, kd.Real.Labels, nil
	default:
		return nil, nil, fmt.Errorf("lhg: unknown constraint %v", c)
	}
}

// Exists is the characteristic function EX_Π(n,k): whether a graph
// satisfying the constraint exists for the pair. For K-TREE and K-DIAMOND
// this is the closed form n >= 2k proved by Theorems 2 and 5; for JD it is
// decided by the decomposition search; Harary exists for every 2 <= k < n.
func Exists(c Constraint, n, k int) bool {
	switch c {
	case Harary:
		return k >= 2 && n > k
	case JD:
		return core.ExistsJD(n, k)
	case KTree:
		return core.ExistsKTree(n, k)
	case KDiamond:
		return core.ExistsKDiamond(n, k)
	default:
		return false
	}
}

// Regular is the characteristic function REG_Π(n,k): whether a k-regular
// graph satisfying the constraint exists for the pair (Theorems 3 and 6).
// Harary graphs are k-regular iff k·n is even.
func Regular(c Constraint, n, k int) bool {
	switch c {
	case Harary:
		return Exists(c, n, k) && (k*n)%2 == 0
	case JD:
		return core.RegularJD(n, k)
	case KTree:
		return core.RegularKTree(n, k)
	case KDiamond:
		return core.RegularKDiamond(n, k)
	default:
		return false
	}
}

// Verify proves or refutes the LHG properties of g for target k, exactly
// (max-flow based). By default it computes the full report with the
// independent probes fanned across GOMAXPROCS goroutines; WithWorkers
// adjusts the budget and WithProperties restricts the run to a subset of
// the properties. The report is deterministic — identical values and the
// same P3 witness edge regardless of the worker count.
//
// Cancellation is honored between phases, between max-flow probes and —
// inside each probe — between augmenting-path iterations, so canceling
// ctx (or letting its deadline fire) stops even a verification dominated
// by one long max-flow campaign promptly, with every worker goroutine
// joined and the internal pools left reusable. A canceled run returns
// ctx.Err().
func Verify(ctx context.Context, g *Graph, k int, opts ...Option) (*Report, error) {
	ctx, sp := trace.StartRoot(ctx, "lhg.Verify")
	if sp.Live() {
		sp.SetAttr(trace.Int("n", int64(g.Order())))
		sp.SetAttr(trace.Int("k", int64(k)))
	}
	defer sp.End()
	o := applyOptions(opts)
	return check.VerifyCtx(ctx, g, k, check.Options{
		Workers:   o.workers,
		Props:     o.props,
		Sparsify:  o.sparsify,
		Prescreen: o.prescreen,
	})
}

// Screen runs the certified scale screen — the verification tier for
// instances too large for the exact campaign (n ~ 10^6). Every verdict in
// the report is honest three-valued state: refuted (exact witness found),
// confirmed (a sufficient exact check passed), or screened (linear checks,
// Monte Carlo contraction cuts and sampled exact probes all passed without
// exhaustively proving the property). See check.ScreenCtx.
func Screen(ctx context.Context, g *Graph, k int, opt ScreenOptions) (*ScreenReport, error) {
	ctx, sp := trace.StartRoot(ctx, "lhg.Screen")
	if sp.Live() {
		sp.SetAttr(trace.Int("n", int64(g.Order())))
		sp.SetAttr(trace.Int("k", int64(k)))
	}
	defer sp.End()
	return check.ScreenCtx(ctx, g, k, opt)
}

// DeltaVerifier carries verification state across a churn stream: the
// current graph, its full report, and an incrementally maintained sparse
// certificate. Advance re-verifies after an edge delta with a handful of
// localized max-flow probes when possible, falling back to the full
// campaign otherwise — the report is bit-identical to a fresh Verify
// either way. Not safe for concurrent use.
type DeltaVerifier = check.DeltaVerifier

// NewDeltaVerifier runs one full verification of g against target k and
// arms the incremental re-verification state. Of the options, WithWorkers,
// WithProperties and WithSparsify apply (as in Verify); note that
// property-selected runs always take the full-campaign path on Advance.
func NewDeltaVerifier(ctx context.Context, g *Graph, k int, opts ...Option) (*DeltaVerifier, error) {
	ctx, sp := trace.StartRoot(ctx, "lhg.NewDeltaVerifier")
	defer sp.End()
	o := applyOptions(opts)
	return check.NewDeltaVerifier(ctx, g, k, check.Options{
		Workers:   o.workers,
		Props:     o.props,
		Sparsify:  o.sparsify,
		Prescreen: o.prescreen,
	})
}

// VerifyDelta is the one-shot form of DeltaVerifier.Advance: given a graph,
// the report of its verification and an edge delta resizing it to n nodes,
// it returns the report of the resulting graph — bit-identical to a fresh
// Verify, at the cost of only the delta's localized probes when the
// incremental conditions hold.
func VerifyDelta(ctx context.Context, g *Graph, prev *Report, d EdgeDelta, n int, opts ...Option) (*Report, error) {
	ctx, sp := trace.StartRoot(ctx, "lhg.VerifyDelta")
	if sp.Live() {
		sp.SetAttr(trace.Int("n", int64(n)))
		sp.SetAttr(trace.Int("added", int64(len(d.Added))))
		sp.SetAttr(trace.Int("removed", int64(len(d.Removed))))
	}
	defer sp.End()
	o := applyOptions(opts)
	return check.VerifyDelta(ctx, g, prev, d, n, check.Options{
		Workers:   o.workers,
		Props:     o.props,
		Sparsify:  o.sparsify,
		Prescreen: o.prescreen,
	})
}

// VerifyParallel computes the same exact Report as Verify with the probes
// fanned across a pool of `workers` goroutines (workers <= 0 means
// GOMAXPROCS).
//
// Deprecated: Use Verify with a context and WithWorkers:
// lhg.Verify(ctx, g, k, lhg.WithWorkers(workers)).
func VerifyParallel(g *Graph, k, workers int) (*Report, error) {
	return Verify(context.Background(), g, k, WithWorkers(workers))
}

// IsLHG is the fast boolean check of the four mandatory properties
// (early-exit max flows, no exact connectivity values). Cancellation is
// honored as in Verify and surfaces as ctx.Err(). Of the options only
// WithSparsify applies — the quick path is serial and always checks every
// property.
func IsLHG(ctx context.Context, g *Graph, k int, opts ...Option) (bool, error) {
	ctx, sp := trace.StartRoot(ctx, "lhg.IsLHG")
	defer sp.End()
	o := applyOptions(opts)
	return check.QuickVerifyOpts(ctx, g, k, check.Options{Sparsify: o.sparsify, Prescreen: o.prescreen})
}

// Flood runs a round-synchronous flood from source, by default in the
// failure-free environment; inject crashed nodes and failed links with
// WithFailures. Cancellation is polled once per round and surfaces as
// ctx.Err().
func Flood(ctx context.Context, g *Graph, source int, opts ...Option) (*FloodResult, error) {
	ctx, sp := trace.StartRoot(ctx, "lhg.Flood")
	if sp.Live() {
		sp.SetAttr(trace.Int("n", int64(g.Order())))
		sp.SetAttr(trace.Int("source", int64(source)))
	}
	defer sp.End()
	o := applyOptions(opts)
	return flood.RunCtx(ctx, g, source, o.failures)
}

// Retry-amplification budgets: the static analyzer that prices the f ≤ k−1
// delivery guarantee under a reliable-flood retry policy — worst-case
// amplification and latency over the k disjoint path families, the
// enforceable per-broadcast frame ceiling, and the runtime guard plan
// (hop/retry budgets, retransmit token bucket, diversity gate) derived
// from it. See internal/ampguard and `floodsim -budget`.
type (
	// RetryPolicy is the per-edge retry policy being priced (timeout,
	// backoff series, retry count, jitter).
	RetryPolicy = ampguard.Policy
	// BudgetReport is the full analysis of one (topology, source, policy).
	BudgetReport = ampguard.Report
	// StormGuard is the runtime enforcement plan a BudgetReport derives.
	StormGuard = ampguard.Guard
)

// DefaultRetryPolicy returns the reliable protocol's default retry policy
// — the one a plain reliable cluster runs with.
func DefaultRetryPolicy() RetryPolicy { return ampguard.DefaultPolicy() }

// FloodBudget statically prices flooding g from source under the given
// retry policy: for every target it enumerates a maximum family of
// internally vertex-disjoint paths (the structure k-connectivity
// guarantees) and reports worst-case retry amplification, delivery latency
// and the enforceable frame ceiling. k is the design connectivity recorded
// in the report. Cancellation is polled between pairs and surfaces as
// ctx.Err().
func FloodBudget(ctx context.Context, g *Graph, source, k int, policy RetryPolicy) (*BudgetReport, error) {
	return ampguard.Analyze(ctx, g, source, k, policy)
}

// Incremental maintenance: the constructive procedures inside the proofs
// of Theorems 2 and 5, exposed as join-only growers. Each Grow admits one
// node with O(k²) edge churn (independent of n) and the topology satisfies
// every LHG property after every single step.
type (
	// KTreeGrower grows a K-TREE LHG one node at a time.
	KTreeGrower = core.KTreeGrower
	// KDiamondGrower grows a K-DIAMOND LHG one node at a time.
	KDiamondGrower = core.KDiamondGrower
	// EdgeDelta is the edge surgery performed by one growth step.
	EdgeDelta = core.EdgeDelta
)

// NewKTreeGrower starts an incremental K-TREE overlay at its minimum size
// 2k.
func NewKTreeGrower(k int) (*KTreeGrower, error) { return core.NewKTreeGrower(k) }

// NewKDiamondGrower starts an incremental K-DIAMOND overlay at its minimum
// size 2k.
func NewKDiamondGrower(k int) (*KDiamondGrower, error) { return core.NewKDiamondGrower(k) }

// Delta reconfiguration: both growers implement the full churn-engine
// contract — Grow (join), Shrink (leave, the proofs' inverse surgery) and
// Apply (batched changes merged into one net edge delta).
type (
	// Reconfigurer is the churn-engine interface of the growers.
	Reconfigurer = core.Reconfigurer
	// Change is one membership event in a batch (ChangeJoin/ChangeLeave).
	Change = core.Change
)

// Batch change kinds.
const (
	ChangeJoin  = core.ChangeJoin
	ChangeLeave = core.ChangeLeave
)

// NewKTreeGrowerAt fast-forwards a K-TREE engine to n nodes (n >= 2k).
func NewKTreeGrowerAt(k, n int) (*KTreeGrower, error) { return core.NewKTreeGrowerAt(k, n) }

// NewKDiamondGrowerAt fast-forwards a K-DIAMOND engine to n nodes (n >= 2k).
func NewKDiamondGrowerAt(k, n int) (*KDiamondGrower, error) { return core.NewKDiamondGrowerAt(k, n) }

// Router answers point-to-point routing queries from blueprint metadata
// alone (no search, no routing tables): tree paths within a copy, junction
// leaves across copies. Routes are bounded by 3·height(T)+3 hops — the
// Lemma 3 diameter argument as an algorithm.
type Router = core.Router

// BuildRouted constructs the canonical K-TREE or K-DIAMOND graph together
// with its structured router. The Harary and JD constraints are not
// supported (Harary has no tree structure; use KTree or KDiamond).
func BuildRouted(c Constraint, n, k int) (*Graph, *Router, error) {
	switch c {
	case KTree:
		kt, err := core.BuildKTree(n, k)
		if err != nil {
			return nil, nil, err
		}
		r, err := core.NewRouter(kt.Blue, kt.Real)
		if err != nil {
			return nil, nil, err
		}
		return kt.Real.Graph, r, nil
	case KDiamond:
		kd, err := core.BuildKDiamond(n, k)
		if err != nil {
			return nil, nil, err
		}
		r, err := core.NewRouter(kd.Blue, kd.Real)
		if err != nil {
			return nil, nil, err
		}
		return kd.Real.Graph, r, nil
	default:
		return nil, nil, fmt.Errorf("lhg: constraint %v has no structured router (use ktree or kdiamond)", c)
	}
}

// Overlay is a dynamic-membership topology manager (canonical rebuild per
// change, churn accounting). See also NewKTreeGrower/NewKDiamondGrower for
// the O(k²)-churn incremental alternative.
type Overlay = overlay.Overlay

// Membership is the self-healing membership service: view changes flooded
// over the current topology, crash windows, repair.
type Membership = member.System

// NewOverlay creates a rebuild-based overlay of `initial` members using the
// given constraint's canonical construction.
func NewOverlay(c Constraint, k, initial int) (*Overlay, error) {
	return overlay.New(k, initial, topologyFunc(c))
}

// NewMembership creates a self-healing membership service of `initial`
// members maintained by the given constraint's churn engine. Only the
// engine-backed constraints (KTree, KDiamond) are supported: membership
// repair is delta surgery, which Harary and JD cannot provide.
func NewMembership(c Constraint, k, initial int) (*Membership, error) {
	engine, err := engineFunc(c)
	if err != nil {
		return nil, err
	}
	return member.New(k, initial, engine)
}

func engineFunc(c Constraint) (member.EngineFunc, error) {
	switch c {
	case KTree:
		return func(k, n int) (core.Reconfigurer, error) { return core.NewKTreeGrowerAt(k, n) }, nil
	case KDiamond:
		return func(k, n int) (core.Reconfigurer, error) { return core.NewKDiamondGrowerAt(k, n) }, nil
	default:
		return nil, fmt.Errorf("lhg: constraint %v has no churn engine (use ktree or kdiamond)", c)
	}
}

func topologyFunc(c Constraint) func(n, k int) (*Graph, error) {
	return func(n, k int) (*Graph, error) { return buildCanonical(c, n, k) }
}

// Observability. The library carries an always-compiled metrics layer
// (counters, gauges, histograms, phase timers) over every hot path:
// verification phases and probe counts, max-flow augmenting paths,
// scratch/network pool recycling, flood messages/duplicates/latency, and
// socket-cluster traffic. The sink is off by default and costs one atomic
// load per update; EnableMetrics turns it on process-wide.

// EnableMetrics turns the metrics sink on: instrumented code starts
// accumulating counters, histograms and phase timers.
func EnableMetrics() { obs.Enable() }

// DisableMetrics turns the metrics sink off. Accumulated values are kept
// until ResetMetrics.
func DisableMetrics() { obs.Disable() }

// MetricsEnabled reports whether the sink is collecting.
func MetricsEnabled() bool { return obs.Enabled() }

// ResetMetrics zeroes every metric (the handles stay valid).
func ResetMetrics() { obs.Reset() }

// MetricsCounters returns a snapshot of all counter values by metric name
// — the convenient shape for tests and programmatic diffing.
func MetricsCounters() map[string]int64 { return obs.Counters() }

// WriteMetricsJSON dumps the full metrics snapshot (counters, gauges,
// histograms, timers, run metadata) as indented JSON.
func WriteMetricsJSON(w io.Writer) error { return obs.WriteJSON(w) }

// WriteMetricsPrometheus renders the metrics in the Prometheus text
// exposition format.
func WriteMetricsPrometheus(w io.Writer) error { return obs.WritePrometheus(w) }

// MetricsHandler returns the debug HTTP mux the CLIs serve under -http:
// /debug/vars (expvar), /metrics (Prometheus), /debug/trace (Chrome
// trace_event export) and /debug/pprof/.
func MetricsHandler() http.Handler { return obs.DebugHandler() }

// Tracing. Alongside the metrics layer, the library carries a
// request-scoped tracing layer: Build, Verify, Flood and the delta
// entrypoints mint a root span; verification phases, per-worker probe
// batches, delta fast-path decisions and netflood rounds record child
// spans and point events into a fixed-size lock-striped flight recorder.
// Off by default at one atomic load and zero allocations per would-be
// span; EnableTracing turns it on process-wide.

// EnableTracing turns the span recorder on: the facade entrypoints start
// minting trace ids and the instrumented layers record spans.
func EnableTracing() { trace.Enable() }

// DisableTracing turns the span recorder off. Recorded spans are kept
// until ResetTrace.
func DisableTracing() { trace.Disable() }

// TracingEnabled reports whether spans are being recorded.
func TracingEnabled() bool { return trace.Enabled() }

// ResetTrace clears the flight recorder.
func ResetTrace() { trace.Reset() }

// WriteTraceJSON dumps the flight recorder in the Chrome trace_event JSON
// format (load in chrome://tracing or Perfetto).
func WriteTraceJSON(w io.Writer) error {
	return trace.WriteChromeTrace(w, trace.Snapshot())
}

// BuildVariant constructs a randomly sampled (seeded, reproducible)
// witness of the K-TREE or K-DIAMOND constraint for (n,k).
//
// Deprecated: Use Build with a context and WithSeed:
// lhg.Build(ctx, c, n, k, lhg.WithSeed(seed)).
func BuildVariant(c Constraint, n, k int, seed uint64) (*Graph, error) {
	return Build(context.Background(), c, n, k, WithSeed(seed))
}

package core

import (
	"testing"
	"testing/quick"
)

func newTestRouter(t *testing.T, build func() (*Blueprint, *Realization)) *Router {
	t.Helper()
	blue, real := build()
	r, err := NewRouter(blue, real)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func ktreeRouter(t *testing.T, n, k int) *Router {
	t.Helper()
	kt, err := BuildKTree(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return newTestRouter(t, func() (*Blueprint, *Realization) { return kt.Blue, kt.Real })
}

func kdiamondRouter(t *testing.T, n, k int) *Router {
	t.Helper()
	kd, err := BuildKDiamond(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return newTestRouter(t, func() (*Blueprint, *Realization) { return kd.Blue, kd.Real })
}

func TestNewRouterErrors(t *testing.T) {
	if _, err := NewRouter(nil, nil); err == nil {
		t.Fatal("nil inputs must error")
	}
}

func TestRouteSelf(t *testing.T) {
	r := ktreeRouter(t, 10, 3)
	p, err := r.Route(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0] != 4 {
		t.Fatalf("self route = %v", p)
	}
}

func TestRouteErrors(t *testing.T) {
	r := ktreeRouter(t, 10, 3)
	if _, err := r.Route(-1, 3); err == nil {
		t.Fatal("bad endpoint must error")
	}
	if _, err := r.Route(3, 99); err == nil {
		t.Fatal("bad endpoint must error")
	}
}

// assertRoute checks the route is a simple valid path between the
// endpoints within the router's declared bound.
func assertRoute(t *testing.T, r *Router, u, v int) []int {
	t.Helper()
	path, err := r.Route(u, v)
	if err != nil {
		t.Fatalf("route %d->%d: %v", u, v, err)
	}
	if path[0] != u || path[len(path)-1] != v {
		t.Fatalf("route %d->%d endpoints wrong: %v", u, v, path)
	}
	g := r.real.Graph
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			t.Fatalf("route %d->%d uses missing edge (%d,%d): %v", u, v, path[i], path[i+1], path)
		}
	}
	if len(path)-1 > r.MaxRouteLength() {
		t.Fatalf("route %d->%d length %d exceeds bound %d", u, v, len(path)-1, r.MaxRouteLength())
	}
	return path
}

func TestRouteAllPairsKTree(t *testing.T) {
	for _, n := range []int{6, 9, 21, 38} {
		r := ktreeRouter(t, n, 3)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				assertRoute(t, r, u, v)
			}
		}
	}
}

func TestRouteAllPairsKDiamond(t *testing.T) {
	for _, n := range []int{7, 8, 13, 14, 26} {
		r := kdiamondRouter(t, n, 3)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				assertRoute(t, r, u, v)
			}
		}
	}
}

func TestRouteStretchIsBounded(t *testing.T) {
	// Structured routes are never more than ~3x the true shortest path on
	// these instances (typically much less; E19 reports the distribution).
	r := kdiamondRouter(t, 41, 4)
	g := r.real.Graph
	worst := 0.0
	for u := 0; u < g.Order(); u += 3 {
		dist := g.BFSFrom(u)
		for v := 0; v < g.Order(); v += 5 {
			if u == v {
				continue
			}
			path := assertRoute(t, r, u, v)
			stretch := float64(len(path)-1) / float64(dist[v])
			if stretch > worst {
				worst = stretch
			}
		}
	}
	if worst > 3.5 {
		t.Fatalf("worst stretch %v exceeds 3.5", worst)
	}
}

func TestPropertyRoutesValidAcrossSizes(t *testing.T) {
	f := func(nRaw, kRaw, uRaw, vRaw uint8) bool {
		k := int(kRaw%3) + 3
		n := 2*k + int(nRaw)%40
		kd, err := BuildKDiamond(n, k)
		if err != nil {
			return false
		}
		r, err := NewRouter(kd.Blue, kd.Real)
		if err != nil {
			return false
		}
		u, v := int(uRaw)%n, int(vRaw)%n
		path, err := r.Route(u, v)
		if err != nil {
			return false
		}
		if path[0] != u || path[len(path)-1] != v {
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			if !kd.Real.Graph.HasEdge(path[i], path[i+1]) {
				return false
			}
		}
		return len(path)-1 <= r.MaxRouteLength()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

GO ?= go

.PHONY: all build vet fmt test race bench clean

all: build vet fmt test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench2json turns `go test -bench` output into the BENCH_*.json shape:
# run metadata plus ns/op and allocs/op per benchmark, so successive PRs
# can diff throughput across machines and toolchains.
define bench2json
	awk \
		-v commit="$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
		-v gover="$$($(GO) env GOVERSION)" \
		-v maxprocs="$$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" \
		-v stamp="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		'BEGIN { \
			printf "{\n  \"meta\": {\"commit\": \"%s\", \"go\": \"%s\", \"gomaxprocs\": %s, \"timestamp\": \"%s\"},\n", commit, gover, maxprocs, stamp; \
			printf "  \"benchmarks\": [" \
		} \
		/^Benchmark/ { \
			name=$$1; sub(/-[0-9]+$$/, "", name); ns=""; allocs=""; frames=""; prescreen=""; confirm=""; \
			for (i=2; i<=NF; i++) { \
				if ($$i == "ns/op") ns=$$(i-1); \
				if ($$i == "allocs/op") allocs=$$(i-1); \
				if ($$i == "frames/op") frames=$$(i-1); \
				if ($$i == "prescreen_ms/op") prescreen=$$(i-1); \
				if ($$i == "confirm_ms/op") confirm=$$(i-1); \
			} \
			if (ns != "") { \
				printf "%s\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"frames_per_op\": %s, \"prescreen_ms_per_op\": %s, \"confirm_ms_per_op\": %s}", sep, name, ns, (allocs == "" ? "null" : allocs), (frames == "" ? "null" : frames), (prescreen == "" ? "null" : prescreen), (confirm == "" ? "null" : confirm); \
				sep=","; \
			} \
		} \
		END { printf "\n  ]\n}\n" }'
endef

# bench runs the perf-trajectory series (exact verification and flooding at
# n in {256, 1024, 4096}, the certified scale screen of a k-regular K-TREE
# at the grid point nearest n = 10^6 with its prescreen/confirm phase split,
# the steady-state 0-alloc probes, and their
# metrics-enabled twins) into BENCH_verify.json, then the dense-fixture
# full-vs-sparsified verification pair into BENCH_sparsify.json (the
# artifact that tracks the sparse-certificate fast-path speedup), then the
# churn-oscillation delta-vs-full re-verification pair into
# BENCH_reconfigure.json, which tracks the incremental re-verification
# speedup under ~1% membership churn, and finally the E29 guarded-vs-
# unguarded lossy-broadcast pair into BENCH_flood.json, which tracks the
# message cost of storm control (frames_per_op against the static ceiling).
bench:
	$(GO) test -run '^$$' \
		-bench '^(BenchmarkVerifySweep|BenchmarkVerifyMillionScreen|BenchmarkFlood|BenchmarkBFSSteadyState|BenchmarkEdgeProbeSteadyState|BenchmarkBFSSteadyStateMetricsOn|BenchmarkEdgeProbeSteadyStateMetricsOn)$$' \
		-benchmem -benchtime=1x . | tee bench.out
	@$(bench2json) bench.out > BENCH_verify.json
	@rm -f bench.out
	@echo "wrote BENCH_verify.json"
	$(GO) test -run '^$$' -bench '^BenchmarkVerifyDense$$' \
		-benchmem -benchtime=3x . | tee bench_sparsify.out
	@$(bench2json) bench_sparsify.out > BENCH_sparsify.json
	@rm -f bench_sparsify.out
	@echo "wrote BENCH_sparsify.json"
	$(GO) test -run '^$$' -bench '^BenchmarkReconfigureVerify(Delta|Full)$$' \
		-benchmem -benchtime=2x . | tee bench_reconfigure.out
	@$(bench2json) bench_reconfigure.out > BENCH_reconfigure.json
	@rm -f bench_reconfigure.out
	@echo "wrote BENCH_reconfigure.json"
	$(GO) test -run '^$$' -bench '^BenchmarkFloodCost(Guarded|Unguarded)$$' \
		-benchmem -benchtime=3x . | tee bench_flood.out
	@$(bench2json) bench_flood.out > BENCH_flood.json
	@rm -f bench_flood.out
	@echo "wrote BENCH_flood.json"

clean:
	rm -f bench.out bench_sparsify.out bench_reconfigure.out bench_flood.out \
		BENCH_verify.json BENCH_sparsify.json BENCH_reconfigure.json BENCH_flood.json

// Package member composes the repository's layers into a membership
// service: a system of processes whose topology is the canonical LHG for
// the current view, whose view changes are disseminated by flooding over
// that same topology, and which repairs itself after crashes by proposing
// leaves for the dead members and rebuilding.
//
// The service demonstrates the end-to-end guarantee chain:
//
//	k-connectivity  =>  view-change floods reach every alive member despite
//	                    up to k-1 crashed members still in the topology
//	                =>  all correct members apply the same view sequence
//	                =>  the next topology is consistent, and flooding keeps
//	                    working through the repair.
package member

import (
	"fmt"

	"lhg/internal/flood"
	"lhg/internal/graph"
	"lhg/internal/overlay"
)

// View is a membership epoch: a version counter and the member count of
// the epoch's topology.
type View struct {
	Version int
	Size    int
}

// ChangeReport describes the dissemination of one view change.
type ChangeReport struct {
	View     View // the view that was installed
	Rounds   int  // flood rounds to reach every alive member
	Messages int  // flood messages
	Applied  int  // alive members that applied the change
	Churn    overlay.Churn
}

// System is a simulated membership service. Member ids are dense in the
// current topology; crashed members stay in the topology (and keep
// wasting links) until a leave is proposed for them — exactly the window
// the k-connectivity guarantee must cover.
type System struct {
	k       int
	topo    overlay.TopologyFunc
	g       *graph.Graph
	view    View
	views   []View // per-member installed view
	crashed []bool
}

// New creates a system of `initial` members on the canonical topology.
func New(k, initial int, topo overlay.TopologyFunc) (*System, error) {
	if topo == nil {
		return nil, fmt.Errorf("member: nil topology func")
	}
	g, err := topo(initial, k)
	if err != nil {
		return nil, fmt.Errorf("member: initial topology: %w", err)
	}
	s := &System{
		k:       k,
		topo:    topo,
		g:       g,
		view:    View{Version: 0, Size: initial},
		views:   make([]View, initial),
		crashed: make([]bool, initial),
	}
	for i := range s.views {
		s.views[i] = s.view
	}
	return s, nil
}

// Size returns the current topology size (including crashed members not
// yet removed).
func (s *System) Size() int { return s.g.Order() }

// K returns the connectivity target.
func (s *System) K() int { return s.k }

// CurrentView returns the view of the latest installed epoch.
func (s *System) CurrentView() View { return s.view }

// Graph returns the current topology. Frozen graphs are immutable, so the
// caller shares the view without a defensive copy.
func (s *System) Graph() *graph.Graph { return s.g }

// CrashedCount returns how many members are crashed but still wired in.
func (s *System) CrashedCount() int {
	c := 0
	for _, dead := range s.crashed {
		if dead {
			c++
		}
	}
	return c
}

// Crash marks members as failed. They stop participating immediately but
// remain in the topology until repaired away.
func (s *System) Crash(ids ...int) error {
	for _, id := range ids {
		if id < 0 || id >= s.g.Order() {
			return fmt.Errorf("member: unknown member %d", id)
		}
		s.crashed[id] = true
	}
	return nil
}

// aliveSource returns the lowest-id alive member (the sequencer).
func (s *System) aliveSource() (int, error) {
	for id, dead := range s.crashed {
		if !dead {
			return id, nil
		}
	}
	return 0, fmt.Errorf("member: every member has crashed")
}

// disseminate floods a view change from the sequencer over the current
// topology and returns the flood result.
func (s *System) disseminate() (*flood.Result, int, error) {
	src, err := s.aliveSource()
	if err != nil {
		return nil, 0, err
	}
	var dead []int
	for id, d := range s.crashed {
		if d {
			dead = append(dead, id)
		}
	}
	res, err := flood.Run(s.g, src, flood.Failures{Nodes: dead})
	if err != nil {
		return nil, 0, err
	}
	return res, src, nil
}

// ProposeJoin admits one member: the view change floods over the current
// topology, every alive member applies it, and the topology is rebuilt for
// the grown view. The joiner starts with the new view installed.
func (s *System) ProposeJoin() (*ChangeReport, error) {
	res, _, err := s.disseminate()
	if err != nil {
		return nil, err
	}
	if !res.Complete {
		return nil, fmt.Errorf("member: view change failed to reach %d members (connectivity exhausted)",
			res.Alive-res.Reached)
	}
	newSize := s.g.Order() + 1
	ng, err := s.topo(newSize, s.k)
	if err != nil {
		return nil, fmt.Errorf("member: topology at n=%d: %w", newSize, err)
	}
	churn := diffChurn(s.g, ng)
	s.g = ng
	s.view = View{Version: s.view.Version + 1, Size: newSize}
	for id := range s.views {
		if !s.crashed[id] {
			s.views[id] = s.view
		}
	}
	s.views = append(s.views, s.view)
	s.crashed = append(s.crashed, false)
	return &ChangeReport{
		View: s.view, Rounds: res.Rounds, Messages: res.Messages,
		Applied: res.Reached, Churn: churn,
	}, nil
}

// Repair removes every crashed member in one view change: the change
// floods over the degraded topology (tolerable while crashed <= k-1),
// survivors relabel densely, and the topology is rebuilt at the surviving
// size.
func (s *System) Repair() (*ChangeReport, error) {
	deadCount := s.CrashedCount()
	if deadCount == 0 {
		return nil, fmt.Errorf("member: nothing to repair")
	}
	res, _, err := s.disseminate()
	if err != nil {
		return nil, err
	}
	if !res.Complete {
		return nil, fmt.Errorf("member: repair flood failed to reach %d members", res.Alive-res.Reached)
	}
	newSize := s.g.Order() - deadCount
	ng, err := s.topo(newSize, s.k)
	if err != nil {
		return nil, fmt.Errorf("member: topology at n=%d: %w", newSize, err)
	}
	// Survivors keep their relative order and take the dense ids.
	churn := diffChurn(s.survivorSubgraph(newSize), ng)
	s.g = ng
	s.view = View{Version: s.view.Version + 1, Size: newSize}
	views := make([]View, 0, newSize)
	for id := range s.views {
		if !s.crashed[id] {
			views = append(views, s.view)
		}
	}
	s.views = views
	s.crashed = make([]bool, newSize)
	return &ChangeReport{
		View: s.view, Rounds: res.Rounds, Messages: res.Messages,
		Applied: res.Reached, Churn: churn,
	}, nil
}

// survivorSubgraph renders the current topology restricted to alive
// members under their new dense ids.
func (s *System) survivorSubgraph(newSize int) *graph.Graph {
	relabel := make([]int, s.g.Order())
	next := 0
	for id := range relabel {
		if s.crashed[id] {
			relabel[id] = -1
			continue
		}
		relabel[id] = next
		next++
	}
	edges := make([]graph.Edge, 0, s.g.Size())
	for _, e := range s.g.Edges() {
		u, v := relabel[e.U], relabel[e.V]
		if u >= 0 && v >= 0 {
			if u > v {
				u, v = v, u
			}
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return graph.MustFromEdges(newSize, edges)
}

// Views returns the per-member installed views (crashed members report the
// last view they saw).
func (s *System) Views() []View { return append([]View(nil), s.views...) }

// ConsistentViews reports whether every alive member has installed the
// current view.
func (s *System) ConsistentViews() bool {
	for id, v := range s.views {
		if id < len(s.crashed) && s.crashed[id] {
			continue
		}
		if v != s.view {
			return false
		}
	}
	return true
}

// Broadcast floods an application message over the current (possibly
// degraded) topology from the sequencer; it reports delivery coverage.
func (s *System) Broadcast() (*flood.Result, error) {
	res, _, err := s.disseminate()
	return res, err
}

func diffChurn(oldG, newG *graph.Graph) overlay.Churn {
	var c overlay.Churn
	for _, e := range oldG.Edges() {
		if e.U < newG.Order() && e.V < newG.Order() && newG.HasEdge(e.U, e.V) {
			c.Kept++
		} else {
			c.Removed++
		}
	}
	c.Added = newG.Size() - c.Kept
	return c
}

package flow

import (
	"sync"
	"sync/atomic"

	"lhg/internal/graph"
	"lhg/internal/obs"
)

// Worker-pool telemetry: spawned counts pool members across all fan-out
// drivers; busy accumulates each worker's wall time inside its probe loop.
// Utilization over a phase is busy / (workers × phase wall time).
var (
	mWorkersSpawned = obs.NewCounter("flow.workers.spawned")
	tWorkerBusy     = obs.NewTimer("flow.workers.busy")
)

// Parallel global-connectivity sweeps. The frozen CSR graph is shared
// read-only by every worker; each worker owns a pooled network it rebuilds
// per probe. The running minimum is kept in an atomic and doubles as the
// early-exit limit for every in-flight max flow: a stale (too high) limit
// only costs extra augmentation, never correctness, because any flow value
// below the limit is exact.

// atomicMin lowers a to v if v is smaller, returning the post-update value.
func atomicMin(a *atomic.Int64, v int) int {
	for {
		cur := a.Load()
		if int64(v) >= cur {
			return int(cur)
		}
		if a.CompareAndSwap(cur, int64(v)) {
			return v
		}
	}
}

// EdgeConnectivityParallel is EdgeConnectivity with the per-target min-cut
// probes fanned across `workers` goroutines (<= 1 falls back to the serial
// sweep; <= 0 means GOMAXPROCS).
func EdgeConnectivityParallel(g *graph.Graph, workers int) int {
	n := g.Order()
	if n < 2 {
		return 0
	}
	workers = graph.ClampWorkers(workers, n-1)
	if workers == 1 {
		return EdgeConnectivity(g)
	}
	var (
		best atomic.Int64
		next atomic.Int64
		wg   sync.WaitGroup
	)
	best.Store(int64(inf))
	next.Store(1)
	mWorkersSpawned.Add(int64(workers))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer tWorkerBusy.Start().End()
			nw := getNetwork(n)
			defer putNetwork(nw)
			for {
				t := int(next.Add(1)) - 1
				if t >= n {
					return
				}
				limit := int(best.Load())
				if limit == 0 {
					return
				}
				nw.buildEdge(g, noEdge)
				if f := nw.maxflow(0, t, limit); f < limit {
					atomicMin(&best, f)
				}
			}
		}()
	}
	wg.Wait()
	return int(best.Load())
}

// VertexConnectivityParallel is VertexConnectivity (Esfahanian–Hakimi) with
// the per-pair vertex-cut probes fanned across `workers` goroutines.
func VertexConnectivityParallel(g *graph.Graph, workers int) int {
	n := g.Order()
	if n < 2 {
		return 0
	}
	if !g.Connected() {
		return 0
	}
	minDeg, v := g.MinDegree()
	if minDeg == n-1 { // complete graph
		return n - 1
	}
	// Collect the probe pairs of both reduction parts up front, then sweep
	// them with a shared running minimum.
	isNbr := make([]bool, n)
	nbrs := g.Neighbors(v)
	for _, w := range nbrs {
		isNbr[w] = true
	}
	type pair struct{ s, t int }
	var pairs []pair
	for t := 0; t < n; t++ {
		if t != v && !isNbr[t] {
			pairs = append(pairs, pair{v, t})
		}
	}
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if !g.HasEdge(nbrs[i], nbrs[j]) {
				pairs = append(pairs, pair{nbrs[i], nbrs[j]})
			}
		}
	}
	workers = graph.ClampWorkers(workers, len(pairs))
	if workers == 1 || len(pairs) == 0 {
		return VertexConnectivity(g)
	}
	var (
		best atomic.Int64
		next atomic.Int64
		wg   sync.WaitGroup
	)
	best.Store(int64(minDeg)) // κ(G) <= δ(G)
	mWorkersSpawned.Add(int64(workers))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer tWorkerBusy.Start().End()
			nw := getNetwork(2 * n)
			defer putNetwork(nw)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				limit := int(best.Load())
				if limit == 0 {
					return
				}
				p := pairs[i]
				nw.buildVertex(g, p.s, p.t, n+1, noEdge)
				if f := nw.maxflow(2*p.s+1, 2*p.t, limit); f < limit {
					atomicMin(&best, f)
				}
			}
		}()
	}
	wg.Wait()
	return int(best.Load())
}

// EdgesRemovable runs EdgeIsRemovable over a batch of edges across
// `workers` goroutines and returns a parallel bool slice: out[i] reports
// whether edges[i] can be removed without lowering κ below kappa or λ
// below lambda. It is the fan-out primitive of the P3 link-minimality
// sweep in internal/check.
func EdgesRemovable(g *graph.Graph, edges []graph.Edge, kappa, lambda, workers int) []bool {
	out := make([]bool, len(edges))
	workers = graph.ClampWorkers(workers, len(edges))
	if workers == 1 {
		for i, e := range edges {
			out[i] = EdgeIsRemovable(g, e, kappa, lambda)
		}
		return out
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	mWorkersSpawned.Add(int64(workers))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer tWorkerBusy.Start().End()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(edges) {
					return
				}
				out[i] = EdgeIsRemovable(g, edges[i], kappa, lambda)
			}
		}()
	}
	wg.Wait()
	return out
}
